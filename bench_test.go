package fractal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fractal/internal/codec"
	"fractal/internal/core"
	"fractal/internal/experiment"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
	"fractal/internal/proxy"
	"fractal/internal/workload"
)

// The benchmarks in this file regenerate the paper's evaluation, one bench
// per table/figure (see DESIGN.md's per-experiment index), plus ablations
// of the design choices. Use
//
//	go test -bench=. -benchmem
//
// or cmd/fractal-bench for the tabular series.

var (
	benchOnce  sync.Once
	benchSetup *experiment.Setup
	benchErr   error
)

func getSetup(b *testing.B) *experiment.Setup {
	b.Helper()
	benchOnce.Do(func() {
		benchSetup, benchErr = experiment.NewSetup(experiment.DefaultSetupConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSetup
}

// BenchmarkTable1BuildPADs measures building, signing, and packing the
// case-study PAD module set (Table 1).
func BenchmarkTable1BuildPADs(b *testing.B) {
	signer, err := mobilecode.NewSigner("bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mods, err := mobilecode.BuildBuiltins("1.0", signer)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range mods {
			if _, err := m.Pack(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig9aNegotiation measures one proxy negotiation, the quantity
// averaged in Figure 9(a): cold (path search) and warm (adaptation cache).
func BenchmarkFig9aNegotiation(b *testing.B) {
	s := getSetup(b)
	envs := make([]core.Env, 0, 3)
	for _, st := range netsim.Stations() {
		envs = append(envs, experiment.EnvFor(st))
	}
	b.Run("warm-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Proxy.Negotiate("webapp", envs[i%len(envs)], 75); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-search", func(b *testing.B) {
		// Distinct CPU speeds defeat the cache, measuring the raw
		// adaptation path search + Equation 3 marking.
		px, err := proxy.New(s.Model, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		if err := px.PushAppMeta(s.AppMeta); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			env := envs[i%len(envs)]
			env.Dev.CPUMHz = float64(400 + i%100000)
			if _, err := px.Negotiate("webapp", env, 75); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig9bPADRetrieval evaluates the contention model behind Figure
// 9(b) at 300 simultaneous clients.
func BenchmarkFig9bPADRetrieval(b *testing.B) {
	s := getSetup(b)
	if _, err := experiment.RunFig9b(s, []int{1}); err != nil { // publishes /pads/_avg
		b.Fatal(err)
	}
	b.Run("centralized-300", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := s.CDN.RetrieveCentralized("/pads/_avg", netsim.WLAN, 300)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(r.Time.Seconds(), "sim-sec/retrieval")
			}
		}
	})
	b.Run("distributed-300", func(b *testing.B) {
		perEdge := (300 + len(s.CDN.Edges()) - 1) / len(s.CDN.Edges())
		for i := 0; i < b.N; i++ {
			r, err := s.CDN.Retrieve("region-0", "/pads/_avg", netsim.WLAN, perEdge)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(r.Time.Seconds(), "sim-sec/retrieval")
			}
		}
	})
}

// benchPair returns a representative (old, cur) page pair from the corpus.
func benchPair(b *testing.B, s *experiment.Setup) (old, cur []byte) {
	b.Helper()
	return s.V1.Pages[0].Bytes(), s.V2.Pages[0].Bytes()
}

// BenchmarkFig10ComputeOverhead measures the real encode (server-side) and
// decode (client-side) computing cost of each protocol on the corpus, the
// quantities Figure 10 decomposes.
func BenchmarkFig10ComputeOverhead(b *testing.B) {
	s := getSetup(b)
	old, cur := benchPair(b, s)
	for _, name := range codec.Names() {
		c, err := codec.New(name)
		if err != nil {
			b.Fatal(err)
		}
		payload, err := c.Encode(old, cur)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/server-encode", func(b *testing.B) {
			b.SetBytes(int64(len(cur)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Encode(old, cur); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/client-decode", func(b *testing.B) {
			b.SetBytes(int64(len(cur)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Decode(old, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchCorpus returns all (old, cur) page pairs of the 75-page corpus.
func benchCorpus(b *testing.B, s *experiment.Setup) (olds, curs [][]byte) {
	b.Helper()
	olds = make([][]byte, len(s.V1.Pages))
	curs = make([][]byte, len(s.V2.Pages))
	for i := range s.V1.Pages {
		olds[i] = s.V1.Pages[i].Bytes()
		curs[i] = s.V2.Pages[i].Bytes()
	}
	return olds, curs
}

// BenchmarkVaryEncodeHot measures VaryBlock.Encode over the full corpus with
// a warm shared chunk-index cache — the appserver's steady state, where every
// session re-encodes pages whose indexes are already cached.
func BenchmarkVaryEncodeHot(b *testing.B) {
	s := getSetup(b)
	olds, curs := benchCorpus(b, s)
	vb, err := codec.NewVaryBlock()
	if err != nil {
		b.Fatal(err)
	}
	// Size the cache to hold both versions of every page so the timed loop
	// never evicts.
	cache := codec.NewChunkCache(2*len(olds) + 2)
	vb.UseChunkCache(cache)
	var total int64
	for i := range olds {
		out, err := vb.Encode(olds[i], curs[i])
		if err != nil {
			b.Fatal(err)
		}
		total += int64(len(curs[i]))
		_ = out
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range olds {
			if _, err := vb.Encode(olds[j], curs[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(total)
}

// BenchmarkVaryEncodeCold measures the same corpus sweep through a stateless
// VaryBlock: every encode re-chunks and re-digests both versions from
// scratch. The hot/cold ratio is the chunk-index cache's payoff.
func BenchmarkVaryEncodeCold(b *testing.B) {
	s := getSetup(b)
	olds, curs := benchCorpus(b, s)
	vb, err := codec.NewVaryBlock()
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	for i := range olds {
		total += int64(len(curs[i]))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range olds {
			if _, err := vb.Encode(olds[j], curs[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(total)
}

// BenchmarkBitmapDigestParallel measures per-block SHA-1 digesting of a
// corpus-sized buffer: "small" stays under the parallel threshold (serial
// path), "large" crosses it and fans out across the digest worker pool.
func BenchmarkBitmapDigestParallel(b *testing.B) {
	s := getSetup(b)
	_, curs := benchCorpus(b, s)
	var big []byte
	for _, c := range curs {
		big = append(big, c...)
	}
	bm, err := codec.NewBitmap(codec.DefaultBlockSize)
	if err != nil {
		b.Fatal(err)
	}
	small := big[:32<<10]
	b.Run("small-serial", func(b *testing.B) {
		b.SetBytes(int64(len(small)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = bm.BlockDigests(small)
		}
	})
	b.Run("large-parallel", func(b *testing.B) {
		b.SetBytes(int64(len(big)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = bm.BlockDigests(big)
		}
	})
}

// BenchmarkFig11aBytesTransferred reports the measured per-request bytes
// of each protocol (Figure 11(a)) as benchmark metrics.
func BenchmarkFig11aBytesTransferred(b *testing.B) {
	s := getSetup(b)
	for _, name := range []string{codec.NameDirect, codec.NameGzip, codec.NameBitmap, codec.NameVaryBlock} {
		b.Run(name, func(b *testing.B) {
			pad, err := s.PADByProtocol(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				_ = pad
			}
			b.ReportMetric(float64(pad.Overhead.TrafficBytes+pad.Overhead.UpstreamBytes), "wire-bytes/request")
		})
	}
}

// BenchmarkFig11TotalTime evaluates the full Figure 11(b)/(c) grids.
func BenchmarkFig11TotalTime(b *testing.B) {
	s := getSetup(b)
	b.Run("with-server-comp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiment.RunFig11Grid(s, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-server-comp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiment.RunFig11Grid(s, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHeadline evaluates the abstract's savings computation.
func BenchmarkHeadline(b *testing.B) {
	s := getSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunHeadline(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.BestVsNone*100, "savings-vs-none-%")
			b.ReportMetric(r.BestVsStatic*100, "savings-vs-static-%")
		}
	}
}

// --- ablations of design choices called out in DESIGN.md ---

// BenchmarkAblationAdaptationCache compares negotiation with the
// distribution manager's cache against repeated raw searches.
func BenchmarkAblationAdaptationCache(b *testing.B) {
	s := getSetup(b)
	env := experiment.EnvFor(netsim.PDA)
	b.Run("cache-on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Proxy.Negotiate("webapp", env, 75); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-off", func(b *testing.B) {
		pat, err := core.BuildPAT(s.AppMeta)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := core.FindPath(pat, s.Model, env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGzipLevel sweeps compression levels (server-side
// compute vs bytes trade-off).
func BenchmarkAblationGzipLevel(b *testing.B) {
	s := getSetup(b)
	_, cur := benchPair(b, s)
	for _, level := range []int{1, 6, 9} {
		b.Run(fmt.Sprintf("level-%d", level), func(b *testing.B) {
			g, err := codec.NewGzipLevel(level)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(cur)))
			var out []byte
			for i := 0; i < b.N; i++ {
				out, err = g.Encode(nil, cur)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(out)), "wire-bytes")
		})
	}
}

// BenchmarkAblationBitmapBlock sweeps the fixed block size.
func BenchmarkAblationBitmapBlock(b *testing.B) {
	s := getSetup(b)
	old, cur := benchPair(b, s)
	for _, block := range []int{256, 512, 2048, 8192} {
		b.Run(fmt.Sprintf("block-%d", block), func(b *testing.B) {
			bm, err := codec.NewBitmap(block)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(cur)))
			var out []byte
			for i := 0; i < b.N; i++ {
				out, err = bm.Encode(old, cur)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(int64(len(out))+bm.UpstreamBytes(old)), "wire-bytes")
		})
	}
}

// BenchmarkAblationVaryChunk sweeps the expected content-defined chunk
// size (mask width).
func BenchmarkAblationVaryChunk(b *testing.B) {
	s := getSetup(b)
	old, cur := benchPair(b, s)
	for _, bits := range []int{8, 9, 11, 13} {
		b.Run(fmt.Sprintf("maskbits-%d", bits), func(b *testing.B) {
			hosts, err := mobilecode.HostTable(map[string]string{"vary.maskbits": fmt.Sprint(bits)})
			if err != nil {
				b.Fatal(err)
			}
			var enc func([][]byte) ([][]byte, error)
			for _, h := range hosts {
				if h.Name == "vary.encode" {
					enc = h.Fn
				}
			}
			b.SetBytes(int64(len(cur)))
			var out [][]byte
			for i := 0; i < b.N; i++ {
				out, err = enc([][]byte{old, cur})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(out[0])), "wire-bytes")
		})
	}
}

// BenchmarkAblationPATDepth measures path-search cost on deeper trees than
// the case study's one-level PAT.
func BenchmarkAblationPATDepth(b *testing.B) {
	ms, err := core.Neutral([]string{"p"})
	if err != nil {
		b.Fatal(err)
	}
	model := core.OverheadModel{Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000, SessionRequests: 1}
	env := core.Env{
		Dev:  core.DevMeta{OSType: "os", CPUType: "cpu", CPUMHz: 500, MemMB: 64},
		Ntwk: core.NtwkMeta{NetworkType: "net", BandwidthKbps: 1000},
	}
	for _, depth := range []int{1, 3, 5, 7} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			app := deepApp(depth, 3)
			pat, err := core.BuildPAT(app)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.FindPath(pat, model, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// deepApp builds a complete tree of the given depth and fanout.
func deepApp(depth, fanout int) core.AppMeta {
	app := core.AppMeta{AppID: fmt.Sprintf("deep-%d", depth)}
	var build func(parent string, level int)
	id := 0
	build = func(parent string, level int) {
		if level > depth {
			return
		}
		for f := 0; f < fanout; f++ {
			id++
			name := fmt.Sprintf("n%d", id)
			meta := core.PADMeta{
				ID: name, Protocol: "p", Parent: parent,
				Overhead: core.PADOverhead{ClientCompStd: time.Duration(id) * time.Millisecond},
			}
			app.PADs = append(app.PADs, meta)
			build(name, level+1)
		}
	}
	build("", 1)
	// Fill Children links from Parent fields.
	children := map[string][]string{}
	for _, p := range app.PADs {
		if p.Parent != "" {
			children[p.Parent] = append(children[p.Parent], p.ID)
		}
	}
	for i := range app.PADs {
		app.PADs[i].Children = children[app.PADs[i].ID]
	}
	return app
}

// BenchmarkMobileCodeDeployment measures the client-side security +
// deployment pipeline (unpack, digest, signature, assemble VM).
func BenchmarkMobileCodeDeployment(b *testing.B) {
	signer, err := mobilecode.NewSigner("bench")
	if err != nil {
		b.Fatal(err)
	}
	mods, err := mobilecode.BuildBuiltins("1.0", signer)
	if err != nil {
		b.Fatal(err)
	}
	packed, err := mods[1].Pack()
	if err != nil {
		b.Fatal(err)
	}
	trust := mobilecode.NewTrustList()
	if err := trust.Add(signer.Entity, signer.PublicKey()); err != nil {
		b.Fatal(err)
	}
	loader, err := mobilecode.NewLoader(trust, mobilecode.DefaultSandbox())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loader.Load(packed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration measures corpus generation + mutation.
func BenchmarkWorkloadGeneration(b *testing.B) {
	cfg := workload.DefaultConfig(1)
	cfg.Pages = 8
	for i := 0; i < b.N; i++ {
		c, err := workload.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workload.MutateCorpus(c, workload.DefaultMutation(2)); err != nil {
			b.Fatal(err)
		}
	}
}
