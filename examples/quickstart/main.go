// Quickstart wires a complete Fractal deployment in one process — content
// corpus, application server with signed PAD modules, adaptation proxy,
// CDN — then walks one client through the full life cycle: negotiation,
// PAD download, security checks, sandboxed deployment, and an adapted
// application session.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fractal"
	"fractal/internal/client"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
	"fractal/internal/workload"
)

func main() {
	// 1. The application operator generates content and a signing key.
	signer, err := fractal.NewSigner("quickstart-operator")
	check(err)
	app, err := fractal.NewAppServer("webapp", signer)
	check(err)

	v1, err := fractal.GenerateCorpus(workload.Config{
		Pages: 8, TextBytes: 4096, Images: 4, ImageBytes: 32 * 1024, Seed: 7,
	})
	check(err)
	v2, err := fractal.MutateCorpus(v1, workload.DefaultMutation(8))
	check(err)
	check(app.InstallCorpus(v1, v2))

	// 2. Deploy the four case-study PADs (Table 1) and pre-measure their
	// overhead vectors on the corpus (Equation 1).
	check(app.DeployPADs("1.0"))
	appMeta, err := app.MeasureAppMeta(4)
	check(err)

	// 3. Stand up the adaptation proxy and push the topology to it.
	matrices, err := fractal.CaseStudyMatrices()
	check(err)
	px, err := fractal.NewProxy(fractal.OverheadModel{
		Matrices:          matrices,
		Rho:               netsim.DefaultRho,
		ServerCPUMHz:      netsim.ServerDevice.CPUMHz,
		IncludeServerComp: true,
		SessionRequests:   8,
	}, 256)
	check(err)
	check(px.PushAppMeta(appMeta))

	// 4. Publish the PAD modules through the CDN.
	topo, err := fractal.DefaultCDNTopology(4)
	check(err)
	check(app.PublishPADs(topo.Origin()))

	// 5. A PDA on Bluetooth appears. It trusts the operator's key.
	trust := fractal.NewTrustList()
	entity, key := app.TrustedKey()
	check(trust.Add(entity, key))

	c, err := fractal.NewClient(fractal.ClientConfig{
		Env:             fractal.EnvFor(netsim.PDA),
		SessionRequests: 8,
		Trust:           trust,
		Sandbox:         mobilecode.DefaultSandbox(),
	},
		px, // in-process negotiation
		&client.CDNFetcher{CDN: topo, Region: "region-1", Link: netsim.Bluetooth},
		client.LocalAppServer{Encode: func(ids []string, res string, have int) ([]byte, int, string, error) {
			r, err := app.Encode(ids, res, have)
			if err != nil {
				return nil, 0, "", err
			}
			return r.Payload, r.Version, r.PADID, nil
		}},
	)
	check(err)

	// 6. Negotiate: the proxy's path search picks the protocol for this
	// environment; the client downloads + verifies + deploys the PAD.
	pads, err := c.EnsureProtocol("webapp")
	check(err)
	fmt.Printf("negotiated protocol for PDA/Bluetooth: %s (PAD %s, %d-byte module)\n",
		pads[0].Protocol, pads[0].ID, pads[0].Size)

	// 7. Fetch a page, then fetch it again — the second transfer is a
	// differential update thanks to the version cache.
	data, err := c.Request("webapp", "page-000")
	check(err)
	afterFirst := c.Stats().PayloadBytes
	_, err = c.Request("webapp", "page-000")
	check(err)
	st := c.Stats()
	fmt.Printf("first fetch : %6d wire bytes for %d content bytes\n", afterFirst, len(data))
	fmt.Printf("second fetch: %6d wire bytes (differential)\n", st.PayloadBytes-afterFirst)
	fmt.Printf("totals: %d requests, %d negotiation(s), %d PAD download(s)\n",
		st.Requests, st.Negotiations, st.PADDownloads)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
