// Roaming follows the paper's introductory scenario: "a person uses a
// laptop with a cable modem at home, a cell phone ... on the way to the
// office, a desktop with Ethernet LAN in the office and a PDA with Wi-Fi
// in the meeting room." One logical user moves across the three
// experimental stations; at each hop the client re-probes its metadata,
// renegotiates with the adaptation proxy, deploys the newly selected PAD,
// and continues the same application session.
//
// Run with:
//
//	go run ./examples/roaming
package main

import (
	"fmt"
	"log"

	"fractal"
	"fractal/internal/client"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
)

func main() {
	s, err := fractal.NewExperimentSetup(fractal.DefaultExperimentConfig())
	check(err)

	trust := fractal.NewTrustList()
	entity, key := s.App.TrustedKey()
	check(trust.Add(entity, key))

	hops := []struct {
		where   string
		station netsim.Station
		region  string
	}{
		{"office desktop on Ethernet LAN", netsim.Desktop, "region-0"},
		{"home laptop on 802.11 WLAN", netsim.Laptop, "region-1"},
		{"meeting-room PDA on Bluetooth", netsim.PDA, "region-2"},
	}

	c, err := fractal.NewClient(fractal.ClientConfig{
		Env:             fractal.EnvFor(hops[0].station),
		SessionRequests: s.Config.SessionRequests,
		Trust:           trust,
		Sandbox:         mobilecode.DefaultSandbox(),
	},
		s.Proxy,
		&client.CDNFetcher{CDN: s.CDN, Region: hops[0].region, Link: hops[0].station.Link},
		client.LocalAppServer{Encode: func(ids []string, res string, have int) ([]byte, int, string, error) {
			r, err := s.App.Encode(ids, res, have)
			if err != nil {
				return nil, 0, "", err
			}
			return r.Payload, r.Version, r.PADID, nil
		}},
	)
	check(err)

	var lastWire int64
	for i, hop := range hops {
		if i > 0 {
			// Device/network handoff: re-probe metadata; the protocol
			// cache is invalidated and the next request renegotiates.
			check(c.SetEnv(fractal.EnvFor(hop.station)))
		}
		pads, err := c.EnsureProtocol("webapp")
		check(err)
		resource := fmt.Sprintf("page-%03d", i)
		_, err = c.Request("webapp", resource)
		check(err)
		st := c.Stats()
		fmt.Printf("%-34s negotiated %-9s  %7d wire bytes for %s\n",
			hop.where, pads[0].Protocol, st.PayloadBytes-lastWire, resource)
		lastWire = st.PayloadBytes
	}

	st := c.Stats()
	fmt.Printf("\nsession: %d requests, %d negotiations (one per environment), %d PAD downloads\n",
		st.Requests, st.Negotiations, st.PADDownloads)
	if st.SecurityRejections != 0 {
		log.Fatalf("unexpected security rejections: %d", st.SecurityRejections)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
