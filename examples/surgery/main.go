// Surgery reproduces the paper's motivating application: distributed
// computer-assisted surgery [29], where a medical application server holds
// studies of four 3D views (~130 KB of images per page) that are updated
// between accesses, and clinicians follow them from weak devices on slow
// links.
//
// The example streams five successive versions of one study to a PDA on
// Bluetooth and compares the wire cost of every protocol for the same
// update stream, then shows that the negotiated protocol matches the
// cheapest feasible choice under each server strategy.
//
// Run with:
//
//	go run ./examples/surgery
package main

import (
	"fmt"
	"log"

	"fractal"
	"fractal/internal/codec"
	"fractal/internal/experiment"
	"fractal/internal/netsim"
	"fractal/internal/workload"
)

const versions = 5

func main() {
	// A study evolving through five versions: each revision moves view
	// content around (slab reshuffles) and introduces some new imagery.
	chain := make([]*workload.Corpus, 0, versions)
	v, err := fractal.GenerateCorpus(workload.Config{
		Pages: 1, TextBytes: 4096, Images: 4, ImageBytes: 32 * 1024, Seed: 29,
	})
	check(err)
	chain = append(chain, v)
	for i := 1; i < versions; i++ {
		v, err = fractal.MutateCorpus(v, workload.DefaultMutation(int64(29+i)))
		check(err)
		chain = append(chain, v)
	}

	fmt.Println("wire bytes to follow one study across versions (PDA, Bluetooth):")
	fmt.Println("protocol   cold     v2→     v3→     v4→     v5      total")
	totals := map[string]int64{}
	for _, name := range []string{
		codec.NameDirect, codec.NameGzip, codec.NameBitmap, codec.NameVaryBlock,
	} {
		c, err := fractal.NewCodec(name)
		check(err)
		fmt.Printf("%-10s", name)
		var old []byte
		var total int64
		for i := 0; i < versions; i++ {
			cur := chain[i].Pages[0].Bytes()
			payload, err := c.Encode(old, cur)
			check(err)
			cost := int64(len(payload))
			if uc, ok := fractal.Codec(c).(codec.UpstreamCoster); ok {
				cost += uc.UpstreamBytes(old)
			}
			total += cost
			fmt.Printf("%8d", cost)
			// The client reconstructs and keeps the new version.
			got, err := c.Decode(old, payload)
			check(err)
			old = got
		}
		totals[name] = total
		fmt.Printf("%11d\n", total)
	}

	direct := totals[codec.NameDirect]
	fmt.Printf("\nupdate-stream savings vs direct sending: gzip %.0f%%, bitmap %.0f%%, vary %.0f%%\n",
		100*(1-float64(totals[codec.NameGzip])/float64(direct)),
		100*(1-float64(totals[codec.NameBitmap])/float64(direct)),
		100*(1-float64(totals[codec.NameVaryBlock])/float64(direct)))

	// What does Fractal negotiate for this clinic's PDA? Build the full
	// platform and ask, under both server strategies.
	s, err := fractal.NewExperimentSetup(fractal.DefaultExperimentConfig())
	check(err)
	for _, strategy := range []struct {
		name          string
		includeServer bool
	}{
		{"reactive server (differences computed per request)", true},
		{"proactive server (differences precomputed)", false},
	} {
		grid, err := experiment.RunFig11Grid(s, strategy.includeServer)
		check(err)
		fmt.Printf("%-52s -> PDA uses %s\n", strategy.name, grid.Winner[netsim.PDA.Device.Name])
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
