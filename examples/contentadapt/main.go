// Contentadapt demonstrates the generalization sketched in the paper's
// Section 5: "Fractal provides a general framework for other adaptation
// functionality as well by extending the PAD into other adaptation
// functions, e.g. content adaptation." The application deploys a TWO-LEVEL
// protocol adaptation tree — content renditions (full fidelity vs
// thumbnail) at the first level, communication-optimization protocols at
// the second — and the path search picks a complete path per client: the
// big-screen desktop keeps full fidelity, the PDA gets thumbnails diffed
// over Bluetooth.
//
// Run with:
//
//	go run ./examples/contentadapt
package main

import (
	"fmt"
	"log"

	"fractal"
	"fractal/internal/client"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
	"fractal/internal/workload"
)

func main() {
	signer, err := fractal.NewSigner("clinic-operator")
	check(err)
	app, err := fractal.NewAppServer("webapp-ca", signer)
	check(err)
	v1, err := fractal.GenerateCorpus(workload.Config{
		Pages: 6, TextBytes: 4096, Images: 4, ImageBytes: 32 * 1024, Seed: 51,
	})
	check(err)
	v2, err := fractal.MutateCorpus(v1, workload.DefaultMutation(52))
	check(err)
	check(app.InstallCorpus(v1, v2))
	check(app.DeployPADs("1.0"))
	check(app.DeployContentAdaptation("1.0"))

	appMeta, err := app.MeasureContentAdaptationAppMeta("webapp-ca", 4)
	check(err)
	pat, err := fractal.BuildPAT(appMeta)
	check(err)
	fmt.Printf("two-level PAT: %d nodes, %d root-to-leaf paths\n", pat.Len(), len(pat.Paths()))

	// The content-adaptation matrices add the screen-resolution-style
	// suitability parameter: thumbnails are disqualified on large
	// displays.
	matrices, err := fractal.ContentAdaptationMatrices()
	check(err)
	px, err := fractal.NewProxy(fractal.OverheadModel{
		Matrices:          matrices,
		Rho:               netsim.DefaultRho,
		ServerCPUMHz:      netsim.ServerDevice.CPUMHz,
		IncludeServerComp: true,
		SessionRequests:   6,
	}, 256)
	check(err)
	check(px.PushAppMeta(appMeta))

	topo, err := fractal.DefaultCDNTopology(4)
	check(err)
	check(app.PublishPADs(topo.Origin()))
	trust := fractal.NewTrustList()
	entity, key := app.TrustedKey()
	check(trust.Add(entity, key))

	for _, hop := range []struct {
		station netsim.Station
		region  string
	}{
		{netsim.Desktop, "region-0"},
		{netsim.PDA, "region-1"},
	} {
		c, err := fractal.NewClient(fractal.ClientConfig{
			Env:             fractal.EnvFor(hop.station),
			SessionRequests: 6,
			Trust:           trust,
			Sandbox:         mobilecode.DefaultSandbox(),
		},
			px,
			&client.CDNFetcher{CDN: topo, Region: hop.region, Link: hop.station.Link},
			client.LocalAppServer{Encode: func(ids []string, res string, have int) ([]byte, int, string, error) {
				r, err := app.Encode(ids, res, have)
				if err != nil {
					return nil, 0, "", err
				}
				return r.Payload, r.Version, r.PADID, nil
			}},
		)
		check(err)
		pads, err := c.EnsureProtocol("webapp-ca")
		check(err)
		path := ""
		for i, p := range pads {
			if i > 0 {
				path += " -> "
			}
			path += p.Protocol
		}
		data, err := c.Request("webapp-ca", "page-000")
		check(err)
		st := c.Stats()
		fmt.Printf("%-8s negotiated path [%s]: %6d content bytes over %6d wire bytes\n",
			hop.station.Device.Name, path, len(data), st.PayloadBytes)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
