// P2p demonstrates the peer-to-peer model the paper notes is
// "straightforward to support" (Section 3.1): three devices in a
// pervasive mesh — an office workstation, a laptop, and a PDA — each share
// their own content, trust each other's code-signing keys, and fetch from
// one another. Every direction negotiates independently against the
// provider's protocol adaptation tree, so the same pair of peers can use
// different protocols for the two directions of their relationship.
//
// Run with:
//
//	go run ./examples/p2p
package main

import (
	"fmt"
	"log"

	"fractal/internal/netsim"
	"fractal/internal/p2p"
	"fractal/internal/workload"
)

func main() {
	type node struct {
		name    string
		station netsim.Station
		seed    int64
	}
	nodes := []node{
		{"workstation", netsim.Desktop, 900},
		{"laptop", netsim.Laptop, 910},
		{"handheld", netsim.PDA, 920},
	}
	peers := make([]*p2p.Peer, len(nodes))
	for i, n := range nodes {
		v1, err := workload.Generate(workload.Config{
			Pages: 4, TextBytes: 4096, Images: 2, ImageBytes: 24 * 1024, Seed: n.seed,
		})
		check(err)
		v2, err := workload.MutateCorpus(v1, workload.DefaultMutation(n.seed+1))
		check(err)
		peer, err := p2p.NewPeer(p2p.Config{
			Name:            n.name,
			Station:         n.station,
			Versions:        []*workload.Corpus{v1, v2},
			SessionRequests: 20,
		})
		check(err)
		peers[i] = peer
	}
	// Pairwise trust: every peer installs the others' signing keys.
	for _, a := range peers {
		for _, b := range peers {
			if a != b {
				check(a.Trust(b))
			}
		}
	}

	fmt.Println("per-direction negotiated protocols (consumer <- provider):")
	for _, consumer := range peers {
		for _, provider := range peers {
			if consumer == provider {
				continue
			}
			pads, err := consumer.NegotiatedWith(provider)
			check(err)
			data, err := consumer.Fetch(provider, "page-000")
			check(err)
			st, err := consumer.Stats(provider)
			check(err)
			fmt.Printf("  %-11s <- %-11s  %-9s  %6d content bytes over %6d wire bytes\n",
				consumer.Name(), provider.Name(), pads[0].Protocol, len(data), st.PayloadBytes)
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
