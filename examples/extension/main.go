// Extension demonstrates the property the paper's introduction motivates:
// "dynamically retrieving the necessary protocol module in an on-demand
// manner". A deployment is running with the four case-study protocols; the
// operator then introduces a FIFTH protocol — fix-sized blocking as used
// by rsync — without restarting anything:
//
//  1. the application server signs and publishes the new PAD module,
//  2. pushes an updated AppMeta (the PAT grows a node; the proxy's
//     adaptation cache is invalidated),
//  3. the next client negotiation can select the new protocol, and the
//     client executes mobile code it had never seen before.
//
// Run with:
//
//	go run ./examples/extension
package main

import (
	"fmt"
	"log"

	"fractal"
	"fractal/internal/client"
	"fractal/internal/codec"
	"fractal/internal/core"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
)

func main() {
	s, err := fractal.NewExperimentSetup(fractal.DefaultExperimentConfig())
	check(err)

	trust := fractal.NewTrustList()
	entity, key := s.App.TrustedKey()
	check(trust.Add(entity, key))

	newClient := func() *fractal.Client {
		c, err := fractal.NewClient(fractal.ClientConfig{
			Env:             fractal.EnvFor(netsim.PDA),
			SessionRequests: s.Config.SessionRequests,
			Trust:           trust,
			Sandbox:         mobilecode.DefaultSandbox(),
		},
			s.Proxy,
			&client.CDNFetcher{CDN: s.CDN, Region: "region-0", Link: netsim.Bluetooth},
			client.LocalAppServer{Encode: func(ids []string, res string, have int) ([]byte, int, string, error) {
				r, err := s.App.Encode(ids, res, have)
				if err != nil {
					return nil, 0, "", err
				}
				return r.Payload, r.Version, r.PADID, nil
			}},
		)
		check(err)
		return c
	}

	before := newClient()
	pads, err := before.EnsureProtocol("webapp")
	check(err)
	fmt.Printf("before extension: PDA negotiates %s\n", pads[0].Protocol)

	// --- the operator introduces rsync at run time ---
	// Build, sign, register, and measure the new PAD on the live server;
	// republish the module set; extend and push the topology. The proxy's
	// adaptation cache is flushed by the push, so the very next
	// negotiation sees the grown PAT.
	meta, err := s.App.DeployExtraPAD(mobilecode.RsyncSpec(), "1.0", 4)
	check(err)
	check(s.App.PublishPADs(s.CDN.Origin()))
	app := s.AppMeta
	app.PADs = append(append([]core.PADMeta(nil), app.PADs...), meta)
	check(s.Proxy.PushAppMeta(app))
	fmt.Printf("operator added %s (%s, %d-byte module, measured %d wire bytes/request)\n",
		meta.ID, codec.NameRsync, meta.Size, meta.Overhead.TrafficBytes+meta.Overhead.UpstreamBytes)

	after := newClient()
	pads, err = after.EnsureProtocol("webapp")
	check(err)
	fmt.Printf("after extension:  PDA negotiates %s\n", pads[0].Protocol)

	data, err := after.Request("webapp", "page-000")
	check(err)
	st := after.Stats()
	fmt.Printf("fetched %d content bytes over %d wire bytes using freshly deployed mobile code\n",
		len(data), st.PayloadBytes)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
