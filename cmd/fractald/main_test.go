package main

import (
	"os"
	"path/filepath"
	"testing"

	"fractal/internal/core"
)

func TestLoadPolicy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.txt")
	content := `# comment
guest: direct, gzip

intern: direct
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pt, n, err := loadPolicy(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d principals, want 2", n)
	}
	pad := func(proto string) core.PADMeta { return core.PADMeta{ID: "p", Protocol: proto} }
	if !pt.Allow("guest", "app", pad("gzip")) || pt.Allow("guest", "app", pad("bitmap")) {
		t.Fatal("guest policy wrong")
	}
	if pt.Allow("intern", "app", pad("gzip")) {
		t.Fatal("intern policy wrong")
	}
	if !pt.Allow("admin", "app", pad("varyblock")) {
		t.Fatal("unrestricted principal denied")
	}
}

func TestLoadPolicyErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := loadPolicy(filepath.Join(dir, "absent")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("no colon here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadPolicy(bad); err == nil {
		t.Error("malformed line accepted")
	}
	anon := filepath.Join(dir, "anon.txt")
	if err := os.WriteFile(anon, []byte(": direct\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadPolicy(anon); err == nil {
		t.Error("anonymous restriction accepted")
	}
}
