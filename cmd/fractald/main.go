// Command fractald runs a Fractal adaptation proxy: it accepts AppMeta
// pushes from application servers and serves Interactive Negotiation
// Protocol sessions from clients.
//
// Usage:
//
//	fractald -listen :7001
//
// An application server (cmd/fractal-server) pushes its protocol
// adaptation topology with -proxy pointed here; clients negotiate against
// the same address.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"fractal/internal/core"
	"fractal/internal/netsim"
	"fractal/internal/proxy"
)

func main() {
	var (
		listen    = flag.String("listen", ":7001", "INP listen address")
		cacheCap  = flag.Int("cache", 4096, "adaptation cache capacity (entries)")
		rho       = flag.Float64("rho", netsim.DefaultRho, "application-level bandwidth fraction")
		serverMHz = flag.Float64("server-mhz", netsim.ServerDevice.CPUMHz, "application server CPU speed for the overhead model")
		session   = flag.Int("session", 75, "default requests per application session")
		maxConc   = flag.Int("max-concurrent", 256, "maximum simultaneous sessions")
		proactive = flag.Bool("proactive", false, "assume proactive adaptive content (exclude server-side computing from Equation 3)")
		policy    = flag.String("policy", "", "access-control policy file: one 'principal: proto1,proto2' line per restricted principal")
	)
	flag.Parse()

	ms, err := core.CaseStudyMatrices()
	if err != nil {
		log.Fatalf("fractald: %v", err)
	}
	px, err := proxy.New(core.OverheadModel{
		Matrices:          ms,
		Rho:               *rho,
		ServerCPUMHz:      *serverMHz,
		IncludeServerComp: !*proactive,
		SessionRequests:   *session,
	}, *cacheCap)
	if err != nil {
		log.Fatalf("fractald: %v", err)
	}
	if *policy != "" {
		pt, n, err := loadPolicy(*policy)
		if err != nil {
			log.Fatalf("fractald: %v", err)
		}
		px.SetAuthorizer(pt)
		log.Printf("fractald: loaded access policy for %d principal(s)", n)
	}
	srv, err := proxy.NewServer(px, *maxConc, log.Printf)
	if err != nil {
		log.Fatalf("fractald: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("fractald: listen %s: %v", *listen, err)
	}
	log.Printf("fractald: adaptation proxy listening on %s (cache %d entries, rho %.2f)", ln.Addr(), *cacheCap, *rho)

	go handleSignals(func() {
		st := px.Stats()
		log.Printf("fractald: shutting down (negotiations %d, cache hits %d, topology pushes %d)",
			st.Negotiations, st.CacheHits, st.TopologyPushes)
		_ = srv.Close()
	})
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("fractald: %v", err)
	}
}

// loadPolicy parses "principal: proto1,proto2" lines ('#' comments and
// blank lines ignored) into a policy table.
func loadPolicy(path string) (*proxy.PolicyTable, int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	pt := proxy.NewPolicyTable()
	n := 0
	for lineNo, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		principal, protos, ok := strings.Cut(line, ":")
		if !ok {
			return nil, 0, fmt.Errorf("policy %s line %d: want 'principal: protocols'", path, lineNo+1)
		}
		var list []string
		for _, p := range strings.Split(protos, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		if err := pt.Restrict(strings.TrimSpace(principal), list...); err != nil {
			return nil, 0, fmt.Errorf("policy %s line %d: %w", path, lineNo+1, err)
		}
		n++
	}
	return pt, n, nil
}

func handleSignals(stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	sig := <-ch
	fmt.Fprintf(os.Stderr, "fractald: received %v\n", sig)
	stop()
}
