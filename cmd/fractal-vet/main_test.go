package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fractal/internal/analysis"
	"fractal/internal/mobilecode"
)

// capture runs f with a temp file substituted for an output stream and
// returns what was written to it.
func capture(t *testing.T, f func(out *os.File)) string {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	f(tmp)
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunList(t *testing.T) {
	var code int
	out := capture(t, func(f *os.File) {
		code = run([]string{"-list"}, f, f)
	})
	if code != 0 {
		t.Fatalf("run -list = %d, want 0", code)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, out)
		}
	}
}

func TestRunJSONCleanPackage(t *testing.T) {
	var code int
	out := capture(t, func(f *os.File) {
		code = run([]string{"-json", "../../internal/netsim"}, f, f)
	})
	if code != 0 {
		t.Fatalf("run -json internal/netsim = %d, want 0 (output: %s)", code, out)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out)
	}
	if len(diags) != 0 {
		t.Fatalf("internal/netsim should be vet-clean, got %v", diags)
	}
}

// TestRunSARIFCleanPackage checks the -sarif mode emits a valid SARIF
// 2.1.0 log even when there is nothing to report: the CI upload step
// always needs a file, and a clean run is the common case.
func TestRunSARIFCleanPackage(t *testing.T) {
	var code int
	out := capture(t, func(f *os.File) {
		code = run([]string{"-sarif", "../../internal/netsim"}, f, f)
	})
	if code != 0 {
		t.Fatalf("run -sarif internal/netsim = %d, want 0 (output: %s)", code, out)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("output is not a JSON SARIF log: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one SARIF 2.1.0 run, got version %q with %d runs", log.Version, len(log.Runs))
	}
	if got := log.Runs[0].Tool.Driver.Name; got != "fractal-vet" {
		t.Fatalf("driver name = %q, want fractal-vet", got)
	}
	if len(log.Runs[0].Results) != 0 {
		t.Fatalf("internal/netsim should be vet-clean, got %d SARIF results", len(log.Runs[0].Results))
	}
	ruleIDs := map[string]bool{}
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range analysis.Analyzers() {
		if !ruleIDs[a.Name] {
			t.Errorf("SARIF rules missing analyzer %q", a.Name)
		}
	}
	if !ruleIDs["allowcheck"] {
		t.Errorf("SARIF rules missing the allowcheck pseudo-rule")
	}
}

// TestRunSARIFFindings checks findings carry module-relative artifact URIs
// and positions. The lockheld bad fixture is not loadable here (testdata
// is skipped by the loader), so this drives the SARIF encoder directly.
func TestRunSARIFFindings(t *testing.T) {
	diags := []analysis.Diagnostic{{
		Analyzer: "lockheld",
		File:     "/mod/internal/client/transport.go",
		Line:     229,
		Col:      12,
		Message:  "blocking op while mu is held",
	}}
	log := analysis.SARIF(diags, analysis.Analyzers(), "/mod")
	data, err := json.Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"uri":"internal/client/transport.go"`,
		`"startLine":229`,
		`"startColumn":12`,
		`"ruleId":"lockheld"`,
		`"level":"error"`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("SARIF output missing %s:\n%s", want, data)
		}
	}
}

// TestRunSARIFRelatedLocations checks an interprocedural finding's
// secondary positions (decode site, callee sink, lock acquisition) come
// through as SARIF relatedLocations with their own messages.
func TestRunSARIFRelatedLocations(t *testing.T) {
	diags := []analysis.Diagnostic{{
		Analyzer: "wiretaint",
		File:     "/mod/internal/inp/frame.go",
		Line:     40,
		Col:      15,
		Message:  "wire-decoded integer n flows into make size",
		Related: []analysis.Related{
			{File: "/mod/internal/inp/frame.go", Line: 31, Col: 12, Message: "wire-decoded here"},
			{File: "/mod/internal/inp/alloc.go", Line: 9, Col: 22, Message: "allocation sink inside the callee"},
		},
	}}
	log := analysis.SARIF(diags, analysis.Analyzers(), "/mod")
	data, err := json.Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"relatedLocations":[`,
		`"uri":"internal/inp/alloc.go"`,
		`"startLine":31`,
		`"message":{"text":"wire-decoded here"}`,
		`"message":{"text":"allocation sink inside the callee"}`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("SARIF output missing %s:\n%s", want, data)
		}
	}
}

// TestRunTiming checks -timing prints a per-analyzer report (to stderr)
// with the summaries pseudo-entry and the wall line the budget compares
// against.
func TestRunTiming(t *testing.T) {
	var code int
	out := capture(t, func(f *os.File) {
		code = run([]string{"-timing", "../../internal/netsim"}, f, f)
	})
	if code != 0 {
		t.Fatalf("run -timing internal/netsim = %d, want 0 (output: %s)", code, out)
	}
	for _, want := range []string{"fractal-vet timing", "(summaries)", "wall"} {
		if !strings.Contains(out, want) {
			t.Errorf("-timing output missing %q:\n%s", want, out)
		}
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-timing output missing analyzer %q:\n%s", a.Name, out)
		}
	}
}

// TestRunTimeBudget checks an absurdly small budget fails the run even
// on a clean package, and a generous one does not.
func TestRunTimeBudget(t *testing.T) {
	var code int
	out := capture(t, func(f *os.File) {
		code = run([]string{"-time-budget", "1ns", "../../internal/netsim"}, f, f)
	})
	if code != 1 {
		t.Fatalf("run -time-budget 1ns = %d, want 1 (output: %s)", code, out)
	}
	if !strings.Contains(out, "over the 1ns budget") {
		t.Errorf("budget failure not reported:\n%s", out)
	}
	if code := capture2(t, []string{"-time-budget", "10m", "../../internal/netsim"}); code != 0 {
		t.Fatalf("run -time-budget 10m = %d, want 0", code)
	}
}

func TestRunBadFlags(t *testing.T) {
	if code := capture2(t, []string{"-json", "-sarif"}); code != 2 {
		t.Fatalf("run -json -sarif = %d, want 2 (mutually exclusive)", code)
	}
	code := capture2(t, []string{"-enable", "nope"})
	if code != 2 {
		t.Fatalf("run -enable nope = %d, want 2", code)
	}
	if code := capture2(t, []string{"../../../outside"}); code != 2 {
		t.Fatalf("run with out-of-module target = %d, want 2", code)
	}
}

func capture2(t *testing.T, args []string) int {
	t.Helper()
	var code int
	capture(t, func(f *os.File) {
		code = run(args, f, f)
	})
	return code
}

func TestRunPadsBuiltinsClean(t *testing.T) {
	var code int
	out := capture(t, func(f *os.File) {
		code = run([]string{"-pads"}, f, f)
	})
	if code != 0 {
		t.Fatalf("run -pads = %d, want 0 (output: %s)", code, out)
	}
	for _, id := range []string{"pad-direct", "pad-gzip", "pad-bitmap", "pad-vary", "pad-rsync", "pad-cascade"} {
		if !strings.Contains(out, id) {
			t.Errorf("-pads output missing module %q:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "0 rejected") {
		t.Errorf("-pads output should report zero rejections:\n%s", out)
	}
}

func TestRunPadsJSON(t *testing.T) {
	var code int
	out := capture(t, func(f *os.File) {
		code = run([]string{"-pads", "-json"}, f, f)
	})
	if code != 0 {
		t.Fatalf("run -pads -json = %d, want 0 (output: %s)", code, out)
	}
	var reports []padReport
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("output is not a JSON report array: %v\n%s", err, out)
	}
	for _, r := range reports {
		if r.Error != "" {
			t.Errorf("builtin module %s rejected: %s", r.Module, r.Error)
		}
		if r.Encode == nil || !r.Encode.ExactCost {
			t.Errorf("builtin module %s should carry an exact encode cost bound", r.Module)
		}
	}
}

// TestRunPadsRejectsPackedFile packs a signed module whose decode program
// calls an undeclared capability and checks -pads fails on the file.
func TestRunPadsRejectsPackedFile(t *testing.T) {
	signer, err := mobilecode.NewSigner("vet-test")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := mobilecode.Assemble("CALL identity\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := mobilecode.Assemble("CALL backdoor.fetch\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	encBin, err := enc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decBin, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	m, err := mobilecode.NewModule("pad-evil", "1.0", mobilecode.Payload{
		Protocol: "evil",
		Encode:   encBin,
		Decode:   decBin,
	}, signer)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "evil.pad")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	out := capture(t, func(f *os.File) {
		code = run([]string{"-pads", path}, f, f)
	})
	if code != 1 {
		t.Fatalf("run -pads %s = %d, want 1 (output: %s)", path, code, out)
	}
	if !strings.Contains(out, "REJECTED") || !strings.Contains(out, "backdoor.fetch") {
		t.Errorf("-pads output should name the rejected capability:\n%s", out)
	}
}
