package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"fractal/internal/analysis"
)

// capture runs f with a temp file substituted for an output stream and
// returns what was written to it.
func capture(t *testing.T, f func(out *os.File)) string {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	f(tmp)
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunList(t *testing.T) {
	var code int
	out := capture(t, func(f *os.File) {
		code = run([]string{"-list"}, f, f)
	})
	if code != 0 {
		t.Fatalf("run -list = %d, want 0", code)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, out)
		}
	}
}

func TestRunJSONCleanPackage(t *testing.T) {
	var code int
	out := capture(t, func(f *os.File) {
		code = run([]string{"-json", "../../internal/netsim"}, f, f)
	})
	if code != 0 {
		t.Fatalf("run -json internal/netsim = %d, want 0 (output: %s)", code, out)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out)
	}
	if len(diags) != 0 {
		t.Fatalf("internal/netsim should be vet-clean, got %v", diags)
	}
}

func TestRunBadFlags(t *testing.T) {
	code := capture2(t, []string{"-enable", "nope"})
	if code != 2 {
		t.Fatalf("run -enable nope = %d, want 2", code)
	}
	if code := capture2(t, []string{"../../../outside"}); code != 2 {
		t.Fatalf("run with out-of-module target = %d, want 2", code)
	}
}

func capture2(t *testing.T, args []string) int {
	t.Helper()
	var code int
	capture(t, func(f *os.File) {
		code = run(args, f, f)
	})
	return code
}
