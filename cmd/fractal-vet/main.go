// Command fractal-vet runs the repo-specific static-analysis suite over
// the module: determinism (simtime, rawrand), error-handling (errdiscard),
// VM instruction-set completeness (opcomplete), and digest-comparison
// hygiene (digestsafe). See internal/analysis for the invariants and the
// //fractal:allow annotation syntax.
//
// Usage:
//
//	fractal-vet [-json] [-enable a,b] [-disable c] [packages]
//
// With no arguments (or "./...") every package of the enclosing module is
// analyzed. Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fractal/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("fractal-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.Select(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loadTargets(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	diags := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// loadTargets resolves the package arguments: none or "./..." means the
// whole module; otherwise each argument is a directory (absolute or
// relative) holding one package.
func loadTargets(loader *analysis.Loader, args []string) ([]*analysis.Package, error) {
	wholeModule := len(args) == 0
	for _, a := range args {
		if a == "./..." || a == "all" {
			wholeModule = true
		}
	}
	if wholeModule {
		return loader.LoadAll()
	}
	var pkgs []*analysis.Package
	for _, a := range args {
		dir, err := filepath.Abs(a)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.ModuleDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("fractal-vet: %s is outside module %s", a, loader.ModuleDir)
		}
		path := loader.ModulePath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
