// Command fractal-vet runs the repo-specific static-analysis suite over
// the module: determinism (simtime, rawrand), error-handling (errdiscard),
// VM instruction-set completeness (opcomplete), digest-comparison hygiene
// (digestsafe), conn-deadline safety (deadline), and the flow-sensitive
// checks built on the CFG/dataflow engine and its interprocedural
// call-graph summaries — lock discipline (lockheld), wire-length
// allocation taint (wiretaint), hot-path allocation hygiene (hotpath),
// and goroutine-leak detection (goleak). See internal/analysis for the
// invariants and the //fractal:allow annotation syntax.
//
// Usage:
//
//	fractal-vet [-json|-sarif] [-enable a,b] [-disable c] [-timing] [-time-budget d] [packages]
//	fractal-vet -pads [module.pad ...]
//
// With no arguments (or "./...") every package of the enclosing module is
// analyzed. -pads switches fractal-vet to the mobile-code plane: it runs
// the static bytecode verifier (internal/mobilecode/verify) over every
// builtin PAD module — and over each packed module file named on the
// command line — printing one proof summary per program. Exit status: 0
// clean, 1 findings/rejections, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"fractal/internal/analysis"
	"fractal/internal/mobilecode"
	"fractal/internal/mobilecode/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("fractal-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log (for CI code-scanning upload)")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list available analyzers and exit")
	timing := fs.Bool("timing", false, "print a per-analyzer wall-time report to stderr")
	budget := fs.Duration("time-budget", 0, "fail if the analysis wall time exceeds this duration (0 = no budget)")
	pads := fs.Bool("pads", false, "verify builtin PAD bytecode (and any packed module files given as arguments) instead of Go sources")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "fractal-vet: -json and -sarif are mutually exclusive")
		return 2
	}
	if *pads {
		return runPads(fs.Args(), *jsonOut, stdout, stderr)
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.Select(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loadTargets(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	start := time.Now()
	diags, timings := analysis.RunTimed(pkgs, analyzers)
	wall := time.Since(start)
	switch {
	case *sarifOut:
		// A clean run still emits a valid (empty-results) log so the CI
		// upload step always has a file.
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(analysis.SARIF(diags, analyzers, loader.ModuleDir)); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *timing {
		printTimings(stderr, timings, wall, len(pkgs))
	}
	if *budget > 0 && wall > *budget {
		fmt.Fprintf(stderr, "fractal-vet: analysis took %s, over the %s budget\n",
			wall.Round(time.Millisecond), *budget)
		return 1
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printTimings renders the per-analyzer wall-time report, slowest first.
// Analyzer entries are cumulative across packages and overlap (analyzers
// run concurrently within each package), so their sum exceeds the wall
// line; "(summaries)" is the one-off interprocedural program build. The
// wall line is what the -time-budget flag compares against.
func printTimings(w *os.File, timings []analysis.Timing, wall time.Duration, npkgs int) {
	sorted := make([]analysis.Timing, len(timings))
	copy(sorted, timings)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Duration > sorted[j].Duration })
	fmt.Fprintf(w, "fractal-vet timing (%d packages):\n", npkgs)
	for _, t := range sorted {
		fmt.Fprintf(w, "  %-12s %12s\n", t.Analyzer, t.Duration.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "  %-12s %12s\n", "wall", wall.Round(time.Microsecond))
}

// padReport is the JSON shape of one verified (or rejected) module in
// -pads -json output.
type padReport struct {
	Module  string         `json:"module"`
	Version string         `json:"version,omitempty"`
	Source  string         `json:"source"`
	Error   string         `json:"error,omitempty"`
	Encode  *verify.Report `json:"encode,omitempty"`
	Decode  *verify.Report `json:"decode,omitempty"`
}

// runPads verifies mobile-code modules rather than Go packages: every
// builtin PAD spec is built and put through the static verifier under the
// default sandbox, then each positional argument is read as a packed
// module file and verified the same way. One line per program summarizes
// the proof (exact cost, stack bounds, resolved capabilities); a rejection
// prints the typed verifier error and fails the run.
func runPads(args []string, jsonOut bool, stdout, stderr *os.File) int {
	signer, err := mobilecode.NewSigner("fractal-vet")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	specs := mobilecode.BuiltinSpecs()
	specs = append(specs, mobilecode.RsyncSpec(), mobilecode.CascadeSpec())
	specs = append(specs, mobilecode.TranscoderSpecs()...)
	sb := mobilecode.DefaultSandbox()

	var reports []padReport
	for _, spec := range specs {
		r := padReport{Module: spec.ID, Source: "builtin"}
		m, err := mobilecode.BuildModule(spec, "vet", signer)
		if err != nil {
			r.Error = err.Error()
		} else if rep, err := verify.Module(m, sb); err != nil {
			r.Error = err.Error()
		} else {
			r.Version, r.Encode, r.Decode = m.Version, rep.Encode, rep.Decode
		}
		reports = append(reports, r)
	}
	for _, path := range args {
		r := padReport{Module: path, Source: path}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if rep, err := verify.Packed(data, sb); err != nil {
			r.Error = err.Error()
		} else {
			r.Module, r.Version = rep.ID, rep.Version
			r.Encode, r.Decode = rep.Encode, rep.Decode
		}
		reports = append(reports, r)
	}

	rejected := 0
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, r := range reports {
			if r.Error != "" {
				rejected++
			}
		}
	} else {
		for _, r := range reports {
			if r.Error != "" {
				rejected++
				fmt.Fprintf(stdout, "%-16s REJECTED: %s\n", r.Module, r.Error)
				continue
			}
			fmt.Fprintf(stdout, "%-16s encode %s\n", r.Module, padSummary(r.Encode))
			fmt.Fprintf(stdout, "%-16s decode %s\n", "", padSummary(r.Decode))
		}
		fmt.Fprintf(stdout, "verified %d modules, %d rejected\n", len(reports)-rejected, rejected)
	}
	if rejected > 0 {
		return 1
	}
	return 0
}

// padSummary renders one program's proof on a single line.
func padSummary(rep *verify.Report) string {
	cost := fmt.Sprintf("cost<=%d", rep.MaxCost)
	if rep.ExactCost {
		cost = fmt.Sprintf("cost=%d", rep.MaxCost)
	}
	loops := ""
	if rep.Loops {
		loops = " guarded-loops"
	}
	return fmt.Sprintf("%d instr %s ints<=%d bufs<=%d%s calls=%s",
		rep.Instructions, cost, rep.MaxIntDepth, rep.MaxBufDepth, loops,
		strings.Join(rep.Calls, ","))
}

// loadTargets resolves the package arguments: none or "./..." means the
// whole module; otherwise each argument is a directory (absolute or
// relative) holding one package.
func loadTargets(loader *analysis.Loader, args []string) ([]*analysis.Package, error) {
	wholeModule := len(args) == 0
	for _, a := range args {
		if a == "./..." || a == "all" {
			wholeModule = true
		}
	}
	if wholeModule {
		return loader.LoadAll()
	}
	var pkgs []*analysis.Package
	for _, a := range args {
		dir, err := filepath.Abs(a)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.ModuleDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("fractal-vet: %s is outside module %s", a, loader.ModuleDir)
		}
		path := loader.ModulePath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
