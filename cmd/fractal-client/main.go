// Command fractal-client runs a Fractal client host against a live
// deployment: it negotiates with the adaptation proxy, downloads and
// verifies the negotiated PAD from a PAD server, and fetches resources
// from the application server with the adapted protocol.
//
// Usage:
//
//	fractal-client -proxy localhost:7001 -server localhost:7002 \
//	    -pads localhost:7003 -trust ./pads/trust.key \
//	    -device pda -resource page-000 -n 3
package main

import (
	"crypto/ed25519"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"fractal/internal/client"
	"fractal/internal/core"
	"fractal/internal/experiment"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
)

func main() {
	var (
		proxyAddr  = flag.String("proxy", "localhost:7001", "adaptation proxy address")
		serverAddr = flag.String("server", "localhost:7002", "application server address")
		padsAddr   = flag.String("pads", "localhost:7003", "PAD server address")
		trustFile  = flag.String("trust", "", "trust key file written by fractal-server (-publish)")
		device     = flag.String("device", "desktop", "client profile: desktop|laptop|pda|auto (auto probes this host)")
		netType    = flag.String("net", "LAN", "network type reported when -device auto")
		netKbps    = flag.Float64("bw", 100000, "network bandwidth (kbps) reported when -device auto")
		protoCache = flag.String("protocache", "", "protocol cache file to load/save (skips negotiation across runs)")
		appID      = flag.String("app", "webapp", "application id")
		resource   = flag.String("resource", "page-000", "resource to fetch")
		n          = flag.Int("n", 1, "number of requests (later ones are differential)")
		session    = flag.Int("session", 75, "expected requests per session (amortizes PAD download)")
		clientID   = flag.String("id", "", "principal identity for proxy access control (optional)")
	)
	flag.Parse()

	var env core.Env
	var err error
	if strings.EqualFold(*device, "auto") {
		env, err = client.ProbeEnv(*netType, *netKbps)
		if err == nil {
			log.Printf("fractal-client: probed %s/%s %.0fMHz %dMB on %s",
				env.Dev.OSType, env.Dev.CPUType, env.Dev.CPUMHz, env.Dev.MemMB, env.Ntwk.NetworkType)
		}
	} else {
		env, err = envFor(*device)
	}
	if err != nil {
		log.Fatalf("fractal-client: %v", err)
	}
	trust, err := loadTrust(*trustFile)
	if err != nil {
		log.Fatalf("fractal-client: %v", err)
	}
	sessionConn, err := client.DialApp(*serverAddr)
	if err != nil {
		log.Fatalf("fractal-client: %v", err)
	}
	defer sessionConn.Close()

	c, err := client.New(client.Config{
		Env:             env,
		SessionRequests: *session,
		Trust:           trust,
		Sandbox:         mobilecode.DefaultSandbox(),
	},
		&client.TCPNegotiator{Addr: *proxyAddr, ClientID: *clientID},
		&client.TCPPADFetcher{Addr: *padsAddr},
		sessionConn,
	)
	if err != nil {
		log.Fatalf("fractal-client: %v", err)
	}

	if *protoCache != "" {
		if n, err := c.LoadProtocolCache(*protoCache); err == nil && n > 0 {
			log.Printf("fractal-client: restored protocol cache for %d app(s)", n)
		}
	}
	pads, err := c.EnsureProtocol(*appID)
	if err != nil {
		log.Fatalf("fractal-client: %v", err)
	}
	if *protoCache != "" {
		if err := c.SaveProtocolCache(*protoCache); err != nil {
			log.Printf("fractal-client: saving protocol cache: %v", err)
		}
	}
	names := make([]string, len(pads))
	for i, p := range pads {
		names[i] = fmt.Sprintf("%s(%s)", p.ID, p.Protocol)
	}
	log.Printf("fractal-client: negotiated protocol path: %s", strings.Join(names, " -> "))

	for i := 0; i < *n; i++ {
		data, err := c.Request(*appID, *resource)
		if err != nil {
			log.Fatalf("fractal-client: request %d: %v", i+1, err)
		}
		st := c.Stats()
		log.Printf("fractal-client: request %d: %s v%d, %d content bytes (cumulative wire %d, PAD download %d)",
			i+1, *resource, c.HeldVersion(*resource), len(data), st.PayloadBytes, st.PADDownloadBytes)
	}
	st := c.Stats()
	fmt.Printf("requests=%d negotiations=%d pad_downloads=%d wire_bytes=%d content_bytes=%d\n",
		st.Requests, st.Negotiations, st.PADDownloads, st.PayloadBytes, st.ContentBytes)
}

func envFor(device string) (core.Env, error) {
	switch strings.ToLower(device) {
	case "desktop":
		return experiment.EnvFor(netsim.Desktop), nil
	case "laptop":
		return experiment.EnvFor(netsim.Laptop), nil
	case "pda":
		return experiment.EnvFor(netsim.PDA), nil
	default:
		return core.Env{}, fmt.Errorf("unknown device %q (want desktop|laptop|pda)", device)
	}
}

// loadTrust reads the "<entity>\n<hex pubkey>\n" file written by
// fractal-server -publish.
func loadTrust(path string) (*mobilecode.TrustList, error) {
	if path == "" {
		return nil, fmt.Errorf("a -trust file is required (written by fractal-server -publish)")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		return nil, fmt.Errorf("trust file %s: want 2 lines (entity, hex key), got %d", path, len(lines))
	}
	key, err := hex.DecodeString(strings.TrimSpace(lines[1]))
	if err != nil {
		return nil, fmt.Errorf("trust file %s: bad key: %w", path, err)
	}
	trust := mobilecode.NewTrustList()
	if err := trust.Add(strings.TrimSpace(lines[0]), ed25519.PublicKey(key)); err != nil {
		return nil, err
	}
	return trust, nil
}
