package main

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"fractal/internal/mobilecode"
)

func TestEnvFor(t *testing.T) {
	for device, wantNet := range map[string]string{
		"desktop": "LAN",
		"Laptop":  "WLAN",
		"PDA":     "Bluetooth",
	} {
		env, err := envFor(device)
		if err != nil {
			t.Fatalf("%s: %v", device, err)
		}
		if env.Ntwk.NetworkType != wantNet {
			t.Errorf("%s network = %s, want %s", device, env.Ntwk.NetworkType, wantNet)
		}
	}
	if _, err := envFor("mainframe"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestLoadTrust(t *testing.T) {
	signer, err := mobilecode.NewSigner("operator")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "trust.key")
	content := "operator\n" + hex.EncodeToString(signer.PublicKey()) + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	trust, err := loadTrust(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := trust.Entities(); len(got) != 1 || got[0] != "operator" {
		t.Fatalf("entities = %v", got)
	}
}

func TestLoadTrustErrors(t *testing.T) {
	if _, err := loadTrust(""); err == nil {
		t.Error("empty path accepted")
	}
	dir := t.TempDir()
	if _, err := loadTrust(filepath.Join(dir, "absent")); err == nil {
		t.Error("missing file accepted")
	}
	oneLine := filepath.Join(dir, "one.key")
	if err := os.WriteFile(oneLine, []byte("only-entity\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrust(oneLine); err == nil {
		t.Error("one-line file accepted")
	}
	badHex := filepath.Join(dir, "hex.key")
	if err := os.WriteFile(badHex, []byte("e\nnot-hex\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrust(badHex); err == nil {
		t.Error("bad hex accepted")
	}
	shortKey := filepath.Join(dir, "short.key")
	if err := os.WriteFile(shortKey, []byte("e\nabcd\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrust(shortKey); err == nil {
		t.Error("short key accepted")
	}
}
