package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fractal/internal/appserver"
	"fractal/internal/mobilecode"
	"fractal/internal/workload"
)

func TestPublishModulesWritesModulesAndTrustKey(t *testing.T) {
	signer, err := mobilecode.NewSigner("op")
	if err != nil {
		t.Fatal(err)
	}
	app, err := appserver.New("webapp", signer)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := workload.Generate(workload.Config{Pages: 1, TextBytes: 64, Images: 0, ImageBytes: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.InstallCorpus(v1); err != nil {
		t.Fatal(err)
	}
	if err := app.DeployPADs("1.0"); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "pads")
	if err := publishModules(app, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	mods, trustSeen := 0, false
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".fmc"):
			mods++
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			m, err := mobilecode.Unpack(data)
			if err != nil {
				t.Fatalf("%s does not unpack: %v", e.Name(), err)
			}
			if e.Name() != m.ID+".fmc" {
				t.Fatalf("module file %s does not match module id %s", e.Name(), m.ID)
			}
		case e.Name() == "trust.key":
			trustSeen = true
		}
	}
	if mods != 4 {
		t.Fatalf("published %d modules, want 4", mods)
	}
	if !trustSeen {
		t.Fatal("trust.key not written")
	}
	// The trust key must parse with the client loader.
	raw, err := os.ReadFile(filepath.Join(dir, "trust.key"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 || lines[0] != "op" {
		t.Fatalf("trust key format: %q", raw)
	}
}
