package main

import (
	"time"

	"fractal/internal/cdn"
	"fractal/internal/netsim"
)

// newMemOrigin builds a throwaway in-memory origin store used only as the
// publishing sink when writing modules to disk.
func newMemOrigin() (*cdn.Origin, error) {
	return cdn.NewOrigin(netsim.SharedServer{
		Name:       "publish-sink",
		UplinkKbps: 1,
		Rho:        1,
		BaseRTT:    time.Millisecond,
	})
}
