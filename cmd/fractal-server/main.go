// Command fractal-server runs a Fractal application server: it generates
// (or evolves) the versioned content corpus, deploys and signs the four
// case-study PADs, publishes the packed modules plus the trust key to a
// directory for PAD servers (cmd/fractal-edge), pushes its AppMeta to the
// adaptation proxy, and serves application sessions over INP.
//
// Usage:
//
//	fractal-server -listen :7002 -proxy localhost:7001 -publish ./pads
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"fractal/internal/appserver"
	"fractal/internal/mobilecode"
	"fractal/internal/workload"
)

func main() {
	var (
		listen    = flag.String("listen", ":7002", "INP listen address")
		proxyAddr = flag.String("proxy", "", "adaptation proxy address to push AppMeta to (optional)")
		publish   = flag.String("publish", "", "directory to write packed PAD modules + trust key (optional)")
		appID     = flag.String("app", "webapp", "application id")
		pages     = flag.Int("pages", workload.DefaultPages, "corpus size")
		seed      = flag.Int64("seed", 2005, "workload seed")
		versions  = flag.Int("versions", 2, "content versions to install (>= 1)")
		samples   = flag.Int("samples", 8, "pages sampled when pre-measuring PAD overheads")
		maxConc   = flag.Int("max-concurrent", 256, "maximum simultaneous sessions")
		proactive = flag.Bool("proactive", false, "precompute adaptive content (Figure 10(d) strategy)")
	)
	flag.Parse()

	signer, err := mobilecode.NewSigner(*appID + "-operator")
	if err != nil {
		log.Fatalf("fractal-server: %v", err)
	}
	app, err := appserver.New(*appID, signer)
	if err != nil {
		log.Fatalf("fractal-server: %v", err)
	}

	if *versions < 1 {
		log.Fatalf("fractal-server: need >= 1 content version")
	}
	cfg := workload.DefaultConfig(*seed)
	cfg.Pages = *pages
	corpus, err := workload.Generate(cfg)
	if err != nil {
		log.Fatalf("fractal-server: %v", err)
	}
	chain := []*workload.Corpus{corpus}
	for v := 1; v < *versions; v++ {
		next, err := workload.MutateCorpus(chain[len(chain)-1], workload.DefaultMutation(*seed+int64(v)))
		if err != nil {
			log.Fatalf("fractal-server: %v", err)
		}
		chain = append(chain, next)
	}
	if err := app.InstallCorpus(chain...); err != nil {
		log.Fatalf("fractal-server: %v", err)
	}
	if err := app.DeployPADs("1.0"); err != nil {
		log.Fatalf("fractal-server: %v", err)
	}
	if *proactive {
		log.Printf("fractal-server: precomputing adaptive content...")
		if err := app.SetStrategy(appserver.Proactive); err != nil {
			log.Fatalf("fractal-server: %v", err)
		}
	}
	appMeta, err := app.MeasureAppMeta(*samples)
	if err != nil {
		log.Fatalf("fractal-server: %v", err)
	}
	log.Printf("fractal-server: %d resources, %d PADs measured", app.Resources(), len(appMeta.PADs))

	if *publish != "" {
		if err := publishModules(app, *publish); err != nil {
			log.Fatalf("fractal-server: %v", err)
		}
		log.Printf("fractal-server: published PAD modules + trust key to %s", *publish)
	}
	if *proxyAddr != "" {
		if err := appserver.PushAppMetaTCP(*proxyAddr, appMeta); err != nil {
			log.Fatalf("fractal-server: %v", err)
		}
		log.Printf("fractal-server: pushed AppMeta to proxy %s", *proxyAddr)
	}

	srv, err := appserver.NewINPServer(app, *maxConc, log.Printf)
	if err != nil {
		log.Fatalf("fractal-server: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("fractal-server: listen %s: %v", *listen, err)
	}
	log.Printf("fractal-server: application server %q listening on %s (%s strategy)",
		*appID, ln.Addr(), app.Strategy())

	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
		sig := <-ch
		st := app.Stats()
		log.Printf("fractal-server: received %v (requests %d, reactive %d, precomputed %d)",
			sig, st.Requests, st.ReactiveEncod, st.PrecomputeHits)
		_ = srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("fractal-server: %v", err)
	}
}

// publishModules writes each PAD as <dir>/<id>.fmc plus <dir>/trust.key
// ("<entity>\n<hex pubkey>\n") for client trust bootstrap.
func publishModules(app *appserver.Server, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Reuse the CDN publishing path by packing via a throwaway origin.
	mods, err := packAll(app)
	if err != nil {
		return err
	}
	for id, packed := range mods {
		if err := os.WriteFile(filepath.Join(dir, id+".fmc"), packed, 0o644); err != nil {
			return err
		}
	}
	entity, key := app.TrustedKey()
	trust := fmt.Sprintf("%s\n%s\n", entity, hex.EncodeToString(key))
	return os.WriteFile(filepath.Join(dir, "trust.key"), []byte(trust), 0o644)
}

// packAll extracts packed modules through the CDN origin publishing path.
func packAll(app *appserver.Server) (map[string][]byte, error) {
	origin, err := newMemOrigin()
	if err != nil {
		return nil, err
	}
	if err := app.PublishPADs(origin); err != nil {
		return nil, err
	}
	out := map[string][]byte{}
	for _, path := range origin.Paths() {
		data, err := origin.Get(path)
		if err != nil {
			return nil, err
		}
		out[filepath.Base(path)] = data
	}
	return out, nil
}
