// Command bench-gate compares a fresh `go test -bench -benchmem` run
// against the committed BENCH_*.json snapshots and fails when the serving
// path regresses: a benchmark slower than max-ns-ratio (default 2x) times
// its snapshot ns/op, or carrying even one more alloc/op than the snapshot,
// exits nonzero. Allocation counts are deterministic, so the allocs gate is
// exact; wall-clock is noisy across hosts, so the ns gate is a wide ratio
// that still catches order-of-magnitude slips (a lost fast path, a pool
// that stopped pooling).
//
// Usage:
//
//	go test -run=NoTests -bench=. -benchmem ./internal/proxy/ | bench-gate -snapshot BENCH_proxy.json
//	bench-gate -snapshot BENCH_proxy.json -snapshot BENCH_codec.json bench.out
//
// Benchmarks named in a snapshot but absent from the run are reported and
// skipped (runs may gate a subset); benchmarks in the run but in no
// snapshot are ignored. Matching zero benchmarks is itself a failure, so a
// renamed benchmark cannot silently disarm the gate.
//
// With -fleet-snapshot the gate instead compares two `fractal-bench -mode
// fleet -json` envelopes — the committed BENCH_fleet.json against a fresh
// run on stdin (or a file argument). Fleet figures come from the
// harness's simulated clock and are machine-independent, so the p99 gate
// is tight (default 1.05x); the gate also enforces the 1->N shard
// throughput-scaling floor (default 6x) and per-session allocation
// flatness:
//
//	fractal-bench -mode fleet -json | bench-gate -fleet-snapshot BENCH_fleet.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchEntry is one benchmark in a BENCH_*.json snapshot.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// snapshotFile is the subset of the snapshot schema the gate needs.
type snapshotFile struct {
	Benchmarks []benchEntry `json:"benchmarks"`
}

// result is one parsed line of `go test -bench -benchmem` output.
type result struct {
	Name        string
	NsPerOp     float64
	AllocsPerOp float64
	HasAllocs   bool
}

// multiFlag collects a repeatable -snapshot flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var snapshots multiFlag
	flag.Var(&snapshots, "snapshot", "committed BENCH_*.json snapshot to gate against (repeatable)")
	maxRatio := flag.Float64("max-ns-ratio", 2.0, "fail when fresh ns/op exceeds snapshot ns/op by more than this ratio")
	fleetSnapshot := flag.String("fleet-snapshot", "", "committed fleet envelope (fractal-bench -mode fleet -json) to gate a fresh fleet run against")
	fleetP99Ratio := flag.Float64("max-fleet-p99-ratio", 1.05, "fail when a fleet row's simulated p99 exceeds its snapshot row by more than this ratio")
	fleetAllocsRatio := flag.Float64("max-fleet-allocs-ratio", 1.5, "fail when a fleet row's allocs/session exceeds its snapshot row by more than this ratio")
	minFleetScale := flag.Float64("min-fleet-scale", 6.0, "fail when the fleet sweep's widest/narrowest sim sessions/sec ratio is below this floor (0 disables)")
	flag.Parse()

	if *fleetSnapshot != "" {
		if len(snapshots) > 0 {
			fmt.Fprintln(os.Stderr, "bench-gate: -fleet-snapshot and -snapshot are separate modes; pass one")
			os.Exit(2)
		}
		candidate := ""
		if flag.NArg() > 0 {
			candidate = flag.Arg(0)
		}
		if failures := runFleetGate(*fleetSnapshot, candidate, *fleetP99Ratio, *fleetAllocsRatio, *minFleetScale); failures > 0 {
			fmt.Fprintf(os.Stderr, "bench-gate: %d fleet gate failure(s)\n", failures)
			os.Exit(1)
		}
		fmt.Printf("bench-gate: fleet gate passed (p99 <= %.2fx, allocs <= %.2fx, scaling >= %.1fx)\n",
			*fleetP99Ratio, *fleetAllocsRatio, *minFleetScale)
		return
	}

	if len(snapshots) == 0 {
		fmt.Fprintln(os.Stderr, "bench-gate: at least one -snapshot is required")
		os.Exit(2)
	}

	baseline := map[string]benchEntry{}
	for _, path := range snapshots {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		var sf snapshotFile
		if err := json.Unmarshal(data, &sf); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", path, err))
		}
		for _, b := range sf.Benchmarks {
			baseline[normalizeName(b.Name)] = b
		}
	}
	if len(baseline) == 0 {
		fmt.Fprintln(os.Stderr, "bench-gate: snapshots contain no benchmarks")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, err := parseBenchOutput(in)
	if err != nil {
		fatal(err)
	}

	matched := 0
	failures := 0
	seen := map[string]bool{}
	for _, r := range results {
		base, ok := baseline[normalizeName(r.Name)]
		if !ok {
			continue
		}
		matched++
		seen[normalizeName(r.Name)] = true
		status := "ok"
		if base.NsPerOp > 0 && r.NsPerOp > base.NsPerOp*(*maxRatio) {
			status = fmt.Sprintf("FAIL ns/op %.1f > %.1fx snapshot %.1f", r.NsPerOp, *maxRatio, base.NsPerOp)
			failures++
		} else if r.HasAllocs && r.AllocsPerOp > base.AllocsPerOp {
			status = fmt.Sprintf("FAIL allocs/op %.0f > snapshot %.0f", r.AllocsPerOp, base.AllocsPerOp)
			failures++
		}
		fmt.Printf("%-60s %12.1f ns/op (base %.1f) %6.0f allocs/op (base %.0f)  %s\n",
			r.Name, r.NsPerOp, base.NsPerOp, r.AllocsPerOp, base.AllocsPerOp, status)
	}
	for name := range baseline {
		if !seen[name] {
			fmt.Printf("%-60s not in this run (skipped)\n", name)
		}
	}

	if matched == 0 {
		fmt.Fprintln(os.Stderr, "bench-gate: no benchmark in the run matched any snapshot entry — renamed benchmark or wrong bench selector?")
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bench-gate: %d of %d gated benchmarks regressed\n", failures, matched)
		os.Exit(1)
	}
	fmt.Printf("bench-gate: %d benchmarks within gate (ns/op <= %.1fx snapshot, allocs/op <= snapshot)\n", matched, *maxRatio)
}

// normalizeName maps both snapshot names and bench-output names to one
// comparable form: the `-N` GOMAXPROCS suffix is stripped and the spaces Go
// rewrites to underscores in sub-benchmark names are folded.
func normalizeName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return strings.ReplaceAll(name, " ", "_")
}

// parseBenchOutput extracts benchmark result lines from `go test -bench`
// output, tolerating the goos/pkg preamble, PASS/ok trailers, and optional
// MB/s columns.
func parseBenchOutput(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		res := result{Name: fields[0]}
		// fields[1] is the iteration count; after it come value/unit pairs.
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad benchmark line %q", sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				ok = true
			case "allocs/op":
				res.AllocsPerOp = v
				res.HasAllocs = true
			}
		}
		if ok {
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-gate:", err)
	os.Exit(1)
}
