package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Fleet-snapshot gating: `fractal-bench -mode fleet -json` emits an
// envelope whose "fleet" section holds one row per shard count, all of
// whose latency and throughput figures come from the harness's simulated
// clock. Simulated figures are a pure function of (config, seed), so
// unlike the wall-clock benchmark gate the fleet gate can be tight: a
// fresh run on any machine should reproduce the committed snapshot almost
// exactly, and a p99 drift beyond a few percent means the serving model
// or the routing actually changed.
//
// The gate checks three things:
//
//   - p99: candidate p99_ns <= max-fleet-p99-ratio x snapshot p99_ns, per
//     matched row (rows match on shards+sessions+profiles+arrival+seed+
//     repushes+replicas).
//   - allocations: candidate allocs_per_session <= max-fleet-allocs-ratio
//     x snapshot, per matched row — the drive loop staying allocation-flat
//     is the point of the SoA session table.
//   - scaling: within the candidate, sim_sessions_per_sec at the widest
//     shard count >= min-fleet-scale x the narrowest. This pins the tier's
//     reason to exist.

// fleetEnvelope is the subset of fractal-bench's -json envelope the gate
// reads.
type fleetEnvelope struct {
	Sections []struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	} `json:"sections"`
}

// fleetRow is one parsed summary row of the "fleet" section.
type fleetRow struct {
	Shards            int
	Key               string // config identity: shards|sessions|profiles|arrival|seed|repushes|replicas
	SimSessionsPerSec float64
	P99               float64
	AllocsPerSession  float64
}

// parseFleetRows extracts the "fleet" section rows from an envelope.
func parseFleetRows(r io.Reader, src string) ([]fleetRow, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var env fleetEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", src, err)
	}
	for _, sec := range env.Sections {
		if sec.ID != "fleet" {
			continue
		}
		if len(sec.Rows) < 2 {
			return nil, fmt.Errorf("%s: fleet section has no data rows", src)
		}
		col := map[string]int{}
		for i, name := range sec.Rows[0] {
			col[name] = i
		}
		for _, name := range []string{"shards", "sessions", "profiles", "arrival", "seed", "repushes", "replicas",
			"sim_sessions_per_sec", "p99_ns", "allocs_per_session"} {
			if _, ok := col[name]; !ok {
				return nil, fmt.Errorf("%s: fleet section lacks column %q", src, name)
			}
		}
		var rows []fleetRow
		for _, raw := range sec.Rows[1:] {
			shards, err := strconv.Atoi(raw[col["shards"]])
			if err != nil {
				return nil, fmt.Errorf("%s: bad shards %q", src, raw[col["shards"]])
			}
			get := func(name string) (float64, error) {
				return strconv.ParseFloat(raw[col[name]], 64)
			}
			sps, err := get("sim_sessions_per_sec")
			if err != nil {
				return nil, fmt.Errorf("%s: bad sim_sessions_per_sec: %w", src, err)
			}
			p99, err := get("p99_ns")
			if err != nil {
				return nil, fmt.Errorf("%s: bad p99_ns: %w", src, err)
			}
			allocs, err := get("allocs_per_session")
			if err != nil {
				return nil, fmt.Errorf("%s: bad allocs_per_session: %w", src, err)
			}
			rows = append(rows, fleetRow{
				Shards: shards,
				Key: raw[col["shards"]] + "|" + raw[col["sessions"]] + "|" + raw[col["profiles"]] + "|" +
					raw[col["arrival"]] + "|" + raw[col["seed"]] + "|" + raw[col["repushes"]] + "|" + raw[col["replicas"]],
				SimSessionsPerSec: sps,
				P99:               p99,
				AllocsPerSession:  allocs,
			})
		}
		return rows, nil
	}
	return nil, fmt.Errorf("%s: no \"fleet\" section (not a -mode fleet -json envelope?)", src)
}

// runFleetGate compares a candidate fleet envelope against the committed
// snapshot and enforces the scaling floor. Returns the number of failures
// (0 = gate passes).
func runFleetGate(snapshotPath, candidatePath string, p99Ratio, allocsRatio, minScale float64) int {
	sf, err := os.Open(snapshotPath)
	if err != nil {
		fatal(err)
	}
	defer sf.Close()
	snapRows, err := parseFleetRows(sf, snapshotPath)
	if err != nil {
		fatal(err)
	}
	snap := map[string]fleetRow{}
	for _, r := range snapRows {
		snap[r.Key] = r
	}

	var in io.Reader = os.Stdin
	src := "stdin"
	if candidatePath != "" {
		f, err := os.Open(candidatePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		src = candidatePath
	}
	candRows, err := parseFleetRows(in, src)
	if err != nil {
		fatal(err)
	}

	failures, matched := 0, 0
	for _, c := range candRows {
		base, ok := snap[c.Key]
		if !ok {
			fmt.Printf("fleet %-44s no snapshot row (skipped)\n", c.Key)
			continue
		}
		matched++
		status := "ok"
		if base.P99 > 0 && c.P99 > base.P99*p99Ratio {
			status = fmt.Sprintf("FAIL p99 %.0fns > %.2fx snapshot %.0fns", c.P99, p99Ratio, base.P99)
			failures++
		} else if base.AllocsPerSession > 0 && c.AllocsPerSession > base.AllocsPerSession*allocsRatio {
			status = fmt.Sprintf("FAIL allocs/session %.2f > %.2fx snapshot %.2f", c.AllocsPerSession, allocsRatio, base.AllocsPerSession)
			failures++
		}
		fmt.Printf("fleet %-44s p99 %12.0fns (base %.0f)  %.2f allocs/session (base %.2f)  %s\n",
			c.Key, c.P99, base.P99, c.AllocsPerSession, base.AllocsPerSession, status)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "bench-gate: no candidate fleet row matched any snapshot row — config drift?")
		return 1
	}

	// Scaling floor across the candidate's own sweep.
	if minScale > 0 {
		lo, hi := candRows[0], candRows[0]
		for _, r := range candRows[1:] {
			if r.Shards < lo.Shards {
				lo = r
			}
			if r.Shards > hi.Shards {
				hi = r
			}
		}
		if lo.Shards == hi.Shards {
			fmt.Fprintln(os.Stderr, "bench-gate: candidate sweeps a single shard count; cannot check scaling")
			failures++
		} else if lo.SimSessionsPerSec <= 0 {
			fmt.Fprintln(os.Stderr, "bench-gate: zero baseline throughput in candidate")
			failures++
		} else {
			scale := hi.SimSessionsPerSec / lo.SimSessionsPerSec
			status := "ok"
			if scale < minScale {
				status = fmt.Sprintf("FAIL < %.1fx floor", minScale)
				failures++
			}
			fmt.Printf("fleet scaling %d->%d shards: %.2fx sim sessions/sec  %s\n", lo.Shards, hi.Shards, scale, status)
		}
	}
	return failures
}
