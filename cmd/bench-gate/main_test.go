package main

import (
	"strings"
	"testing"
)

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkServerThroughput-8":  "BenchmarkServerThroughput",
		"BenchmarkServerThroughput":    "BenchmarkServerThroughput",
		"BenchmarkINPRoundTrip/json-1": "BenchmarkINPRoundTrip/json",
		// Go rewrites spaces in sub-benchmark names to underscores; the
		// snapshot keeps the readable form. Both normalize the same.
		"BenchmarkAblationAdaptationCache/cache-off (raw FindPath, compiled index)":   "BenchmarkAblationAdaptationCache/cache-off_(raw_FindPath,_compiled_index)",
		"BenchmarkAblationAdaptationCache/cache-off_(raw_FindPath,_compiled_index)-1": "BenchmarkAblationAdaptationCache/cache-off_(raw_FindPath,_compiled_index)",
		// A trailing -word is part of the name, not a GOMAXPROCS suffix.
		"BenchmarkBitmapDigestParallel/small-serial": "BenchmarkBitmapDigestParallel/small-serial",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: fractal/internal/proxy
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServerThroughput-1   	  156112	     14987 ns/op	    1272 B/op	      29 allocs/op
BenchmarkINPRoundTrip/json-1  	  171124	      6997 ns/op	    1872 B/op	       9 allocs/op
BenchmarkVaryEncodeHot-1      	      82	  28981180 ns/op	 357.96 MB/s	 1467266 B/op	      75 allocs/op
BenchmarkNoAllocsCol-1        	  100000	      1000 ns/op
PASS
ok  	fractal/internal/proxy	12.3s
`
	got, err := parseBenchOutput(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(got), got)
	}
	if got[0].Name != "BenchmarkServerThroughput-1" || got[0].NsPerOp != 14987 || got[0].AllocsPerOp != 29 || !got[0].HasAllocs {
		t.Errorf("result 0 = %+v", got[0])
	}
	// The MB/s column must not shift the B/op and allocs/op parse.
	if got[2].NsPerOp != 28981180 || got[2].AllocsPerOp != 75 {
		t.Errorf("result 2 = %+v", got[2])
	}
	if got[3].HasAllocs {
		t.Errorf("result 3 should have no allocs column: %+v", got[3])
	}

	if _, err := parseBenchOutput(strings.NewReader("BenchmarkBroken-1  10  abc ns/op\n")); err == nil {
		t.Error("malformed value accepted")
	}
}
