package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fleetJSON renders a minimal fractal-bench fleet envelope with the given
// (shards, sps, p99, allocs) rows.
func fleetJSON(rows ...[4]string) string {
	var b strings.Builder
	b.WriteString(`{"goos":"linux","goarch":"amd64","gomaxprocs":1,"nproc":1,"sections":[{"id":"fleet","title":"t","rows":[`)
	b.WriteString(`["shards","sessions","profiles","arrival","seed","repushes","replicas","makespan_ns","sim_sessions_per_sec","wall_sessions_per_sec","p50_ns","p99_ns","p999_ns","max_ns","hit_rate","collapse_rate","allocs_per_session","invalidations","suppressed","replicated_fills"]`)
	for _, r := range rows {
		fmt.Fprintf(&b, `,["%s","1000000","4096","constant","2005","0","1","1","%s","1","1","%s","1","1","0.99","0.0","%s","1","0","0"]`,
			r[0], r[1], r[2], r[3])
	}
	b.WriteString(`]}]}`)
	return b.String()
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseFleetRows(t *testing.T) {
	doc := fleetJSON([4]string{"1", "68960", "12501147892", "1.04"}, [4]string{"8", "499966", "251658239", "1.04"})
	rows, err := parseFleetRows(strings.NewReader(doc), "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("parsed %d rows, want 2", len(rows))
	}
	if rows[0].Shards != 1 || rows[0].P99 != 12501147892 || rows[0].AllocsPerSession != 1.04 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[1].Key != "8|1000000|4096|constant|2005|0|1" {
		t.Errorf("row 1 key = %q", rows[1].Key)
	}

	if _, err := parseFleetRows(strings.NewReader(`{"sections":[]}`), "test"); err == nil {
		t.Error("envelope without a fleet section accepted")
	}
	if _, err := parseFleetRows(strings.NewReader(`{"sections":[{"id":"fleet","rows":[["shards"]]}]}`), "test"); err == nil {
		t.Error("fleet section with no data rows accepted")
	}
	noCol := strings.Replace(fleetJSON([4]string{"1", "1", "1", "1"}), `"p99_ns"`, `"p98_ns"`, 1)
	if _, err := parseFleetRows(strings.NewReader(noCol), "test"); err == nil {
		t.Error("fleet section missing p99_ns column accepted")
	}
}

func TestRunFleetGate(t *testing.T) {
	snap := writeTemp(t, "snap.json",
		fleetJSON([4]string{"1", "68960", "12501147892", "1.04"}, [4]string{"8", "499966", "251658239", "1.04"}))

	run := func(candidate string, p99Ratio, allocsRatio, minScale float64) int {
		return runFleetGate(snap, writeTemp(t, "cand.json", candidate), p99Ratio, allocsRatio, minScale)
	}

	// Identical candidate passes all gates.
	identical := fleetJSON([4]string{"1", "68960", "12501147892", "1.04"}, [4]string{"8", "499966", "251658239", "1.04"})
	if got := run(identical, 1.05, 1.5, 6.0); got != 0 {
		t.Errorf("identical candidate failed with %d failures", got)
	}

	// p99 regression on the 8-shard row.
	slow := fleetJSON([4]string{"1", "68960", "12501147892", "1.04"}, [4]string{"8", "499966", "400000000", "1.04"})
	if got := run(slow, 1.05, 1.5, 6.0); got != 1 {
		t.Errorf("p99 regression produced %d failures, want 1", got)
	}

	// Allocation growth on both rows.
	leaky := fleetJSON([4]string{"1", "68960", "12501147892", "2.5"}, [4]string{"8", "499966", "251658239", "2.5"})
	if got := run(leaky, 1.05, 1.5, 6.0); got != 2 {
		t.Errorf("alloc growth produced %d failures, want 2", got)
	}

	// Scaling collapse: 8 shards no faster than 1.
	flat := fleetJSON([4]string{"1", "68960", "12501147892", "1.04"}, [4]string{"8", "70000", "251658239", "1.04"})
	if got := run(flat, 1.05, 1.5, 6.0); got != 1 {
		t.Errorf("scaling collapse produced %d failures, want 1", got)
	}
	if got := run(flat, 1.05, 1.5, 0); got != 0 {
		t.Errorf("minScale=0 should disable the scaling check, got %d failures", got)
	}

	// No matching rows (different seed): hard failure.
	drifted := strings.ReplaceAll(identical, `"2005"`, `"2006"`)
	if got := run(drifted, 1.05, 1.5, 6.0); got != 1 {
		t.Errorf("config drift produced %d failures, want 1", got)
	}

	// Single shard count cannot prove scaling.
	single := fleetJSON([4]string{"8", "499966", "251658239", "1.04"})
	if got := run(single, 1.05, 1.5, 6.0); got != 1 {
		t.Errorf("single-row sweep produced %d failures, want 1", got)
	}
}
