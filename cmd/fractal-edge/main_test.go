package main

import (
	"os"
	"path/filepath"
	"testing"

	"fractal/internal/mobilecode"
)

func writeModules(t *testing.T, dir string) int {
	t.Helper()
	signer, err := mobilecode.NewSigner("op")
	if err != nil {
		t.Fatal(err)
	}
	mods, err := mobilecode.BuildBuiltins("1.0", signer)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mods {
		packed, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, m.ID+".fmc"), packed, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return len(mods)
}

func TestLoadModuleDir(t *testing.T) {
	dir := t.TempDir()
	want := writeModules(t, dir)
	// Unrelated files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "trust.key"), []byte("x\ny\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, loaded, err := loadModuleDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != want {
		t.Fatalf("loaded %d, want %d", loaded, want)
	}
	data, err := store.Get("/pads/pad-gzip")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mobilecode.Unpack(data); err != nil {
		t.Fatalf("stored module corrupt: %v", err)
	}
}

func TestLoadModuleDirErrors(t *testing.T) {
	if _, _, err := loadModuleDir(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("missing directory accepted")
	}
	empty := t.TempDir()
	if _, _, err := loadModuleDir(empty); err == nil {
		t.Error("empty directory accepted")
	}
	corrupt := t.TempDir()
	if err := os.WriteFile(filepath.Join(corrupt, "bad.fmc"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadModuleDir(corrupt); err == nil {
		t.Error("corrupt module accepted")
	}
}
