// Command fractal-edge runs a PAD server: it loads packed PAD modules
// from a directory (published by cmd/fractal-server) and serves
// PAD_DOWNLOAD_REQ over INP. Run one instance as the centralized PAD
// server baseline, or several as CDN edgeservers.
//
// Usage:
//
//	fractal-edge -listen :7003 -dir ./pads
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"fractal/internal/cdn"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
)

func main() {
	var (
		listen  = flag.String("listen", ":7003", "INP listen address")
		dir     = flag.String("dir", "./pads", "directory of packed PAD modules (*.fmc)")
		maxConc = flag.Int("max-concurrent", 256, "maximum simultaneous downloads")
	)
	flag.Parse()

	store, loaded, err := loadModuleDir(*dir)
	if err != nil {
		log.Fatalf("fractal-edge: %v", err)
	}

	srv, err := cdn.NewPADServer(store, *maxConc, log.Printf)
	if err != nil {
		log.Fatalf("fractal-edge: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("fractal-edge: listen %s: %v", *listen, err)
	}
	log.Printf("fractal-edge: serving %d PAD modules on %s", loaded, ln.Addr())

	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
		<-ch
		_ = srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("fractal-edge: %v", err)
	}
}

// loadModuleDir reads every *.fmc module in dir into a serving store,
// validating structure and payload digest first — a corrupt module in the
// store would fail every client.
func loadModuleDir(dir string) (*cdn.Origin, int, error) {
	store, err := cdn.NewOrigin(netsim.SharedServer{
		Name: "edge", UplinkKbps: 100000, Rho: netsim.DefaultRho, BaseRTT: 5 * time.Millisecond,
	})
	if err != nil {
		return nil, 0, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("reading %s: %w", dir, err)
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".fmc") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, 0, err
		}
		m, err := mobilecode.Unpack(data)
		if err != nil {
			return nil, 0, fmt.Errorf("%s is not a valid PAD module: %w", e.Name(), err)
		}
		if err := store.Publish("/pads/"+m.ID, data); err != nil {
			return nil, 0, err
		}
		loaded++
	}
	if loaded == 0 {
		return nil, 0, fmt.Errorf("no PAD modules in %s", dir)
	}
	return store, loaded, nil
}
