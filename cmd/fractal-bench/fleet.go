package main

import (
	"fmt"
	"time"

	"fractal/internal/experiment"
)

// runFleetMode sweeps the fleet load harness across shard counts and
// renders two sections: "fleet" (one summary row per shard count) and
// "fleet_shards" (per-shard breakdown). All latency figures come from the
// harness's simulated clock and are deterministic for a given
// configuration; wall_sessions_per_sec is the only wall-clock column and
// exists to show the drive loop itself keeps up, not to be gated.
func runFleetMode(shardCounts []int, sessions, profiles int, arrival string, seed int64, repushes, replicas int) (section, section, error) {
	summary := section{
		ID:    "fleet",
		Title: fmt.Sprintf("Fleet: %d sessions, %s arrivals, shard sweep", sessions, arrival),
		Rows: []string{"shards\tsessions\tprofiles\tarrival\tseed\trepushes\treplicas\tmakespan_ns\t" +
			"sim_sessions_per_sec\twall_sessions_per_sec\tp50_ns\tp99_ns\tp999_ns\tmax_ns\t" +
			"hit_rate\tcollapse_rate\tallocs_per_session\tinvalidations\tsuppressed\treplicated_fills"},
	}
	perShard := section{
		ID:    "fleet_shards",
		Title: "Fleet: per-shard load and saturation",
		Rows: []string{"shards\tshard\tsessions\thits\tsearches\tcollapsed\tutilization\tpeak_queue\t" +
			"p50_ns\tp99_ns\tp999_ns"},
	}
	for _, shards := range shardCounts {
		cfg := experiment.DefaultFleetLoadConfig()
		cfg.Shards = shards
		cfg.Sessions = sessions
		cfg.Profiles = profiles
		cfg.Arrival = arrival
		cfg.Seed = seed
		cfg.Repushes = repushes
		// A sweep that includes narrow tiers clamps the replication factor:
		// replicas can never exceed the shard count.
		cfg.Replicas = replicas
		if cfg.Replicas > shards {
			cfg.Replicas = shards
		}
		start := time.Now()
		res, err := experiment.RunFleetLoad(cfg)
		if err != nil {
			return summary, perShard, err
		}
		wall := time.Since(start).Seconds()
		wallRate := 0.0
		if wall > 0 {
			wallRate = float64(sessions) / wall
		}
		summary.Rows = append(summary.Rows, fmt.Sprintf(
			"%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%.0f\t%.0f\t%d\t%d\t%d\t%d\t%.4f\t%.4f\t%.2f\t%d\t%d\t%d",
			shards, sessions, res.Config.Profiles, arrival, seed, repushes, res.Config.Replicas,
			int64(res.Makespan), res.SimSessionsPerSec, wallRate,
			res.P50, res.P99, res.P999, res.Max,
			res.HitRate, res.CollapseRate, res.AllocsPerSession,
			res.Fleet.InvalidationsApplied, res.Fleet.InvalidationsSuppressed, res.Fleet.ReplicatedFills))
		for _, s := range res.Shards {
			perShard.Rows = append(perShard.Rows, fmt.Sprintf(
				"%d\t%s\t%d\t%d\t%d\t%d\t%.4f\t%d\t%d\t%d\t%d",
				shards, s.Name, s.Sessions, s.Hits, s.Searches, s.Collapsed,
				s.Utilization, s.PeakQueue, s.P50, s.P99, s.P999))
		}
	}
	return summary, perShard, nil
}
