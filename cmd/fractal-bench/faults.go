package main

import (
	"fmt"
	"os"

	"fractal/internal/experiment"
)

// runFaultsMode builds a small deterministic platform and runs the fault
// scenario suite against it over real TCP. The pages/seed/edges overrides
// mirror -mode exp; a zero seed uses the default workload seed for both
// the platform and the fault schedules.
func runFaultsMode(pages int, seed int64, edges int) (section, error) {
	cfg := experiment.DefaultSetupConfig()
	// The fault suite exercises transports, not corpus scaling: a small
	// corpus keeps setup fast without changing any scenario outcome.
	cfg.Pages = 8
	cfg.SamplePages = 4
	cfg.Edges = 3
	if pages > 0 {
		cfg.Pages = pages
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if edges > 0 {
		cfg.Edges = edges
	}
	fmt.Fprintf(os.Stderr, "fractal-bench: building fault platform (%d pages, %d edges, seed %d)...\n",
		cfg.Pages, cfg.Edges, cfg.Seed)
	s, err := experiment.NewSetup(cfg)
	if err != nil {
		return section{}, err
	}
	r, err := experiment.RunFaults(s, cfg.Seed)
	if err != nil {
		return section{}, err
	}
	sec := section{
		ID:    "faults",
		Title: fmt.Sprintf("Fault-injection scenarios (real TCP, schedule seed %d)", r.Seed),
		Rows:  r.Rows(),
	}
	return sec, nil
}
