package main

import "testing"

func TestParseCounts(t *testing.T) {
	got, err := parseCounts("1, 25,300")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 25 || got[2] != 300 {
		t.Fatalf("parseCounts = %v", got)
	}
	for _, bad := range []string{"", "0", "-3", "a", "1,,x"} {
		if _, err := parseCounts(bad); err == nil {
			t.Errorf("parseCounts(%q) accepted", bad)
		}
	}
	// Trailing commas and spaces are tolerated.
	got, err = parseCounts(" 5 , ")
	if err != nil || len(got) != 1 || got[0] != 5 {
		t.Fatalf("parseCounts lenient = %v, %v", got, err)
	}
}
