package main

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fractal/internal/core"
	"fractal/internal/inp"
	"fractal/internal/proxy"
)

// negotiateApp is the case-study web application used by the throughput
// driver: one-level PAT with the four communication protocols.
func negotiateApp() core.AppMeta {
	pad := func(id, proto string, clientStd time.Duration, traffic int64) core.PADMeta {
		return core.PADMeta{
			ID: id, Protocol: proto, Size: 4096,
			Overhead: core.PADOverhead{ClientCompStd: clientStd, TrafficBytes: traffic},
		}
	}
	return core.AppMeta{
		AppID: "webapp",
		PADs: []core.PADMeta{
			pad("pad-direct", "direct", 0, 140000),
			pad("pad-gzip", "gzip", 40*time.Millisecond, 50000),
			pad("pad-bitmap", "bitmap", 85*time.Millisecond, 30000),
		},
	}
}

func negotiateEnv(variant int) core.Env {
	return core.Env{
		Dev:  core.DevMeta{OSType: core.OSFedora, CPUType: core.CPUTypeP4, CPUMHz: float64(1000 + variant), MemMB: 512},
		Ntwk: core.NtwkMeta{NetworkType: core.NetLAN, BandwidthKbps: 100000},
	}
}

// runNegotiate drives the negotiation plane through three phases: warm
// (cache hits over a bounded key set), cold (every negotiation a distinct
// key), and loopback (full Figure 4 sessions over TCP).
func runNegotiate(workers, ops int) (section, error) {
	sec := section{Title: "Negotiation-plane throughput (compiled search, singleflight, sharded cache)"}
	if workers < 1 || ops < 1 {
		return sec, fmt.Errorf("negotiate mode needs workers >= 1 and ops >= 1, got %d/%d", workers, ops)
	}
	ms, err := core.CaseStudyMatrices()
	if err != nil {
		return sec, err
	}
	model := core.OverheadModel{
		Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000,
		IncludeServerComp: true, SessionRequests: 75,
	}
	p, err := proxy.New(model, 4096)
	if err != nil {
		return sec, err
	}
	if err := p.PushAppMeta(negotiateApp()); err != nil {
		return sec, err
	}

	sec.Rows = append(sec.Rows, "phase\tworkers\tops\tseconds\tops_per_sec")
	const warmKeys = 512

	runPhase := func(name string, phaseOps int, fn func(worker, i int) error) error {
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < phaseOps; i++ {
					if err := fn(w, i); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		close(errs)
		for err := range errs {
			return err
		}
		total := workers * phaseOps
		sec.Rows = append(sec.Rows, fmt.Sprintf("%s\t%d\t%d\t%.3f\t%.0f",
			name, workers, total, elapsed, float64(total)/elapsed))
		return nil
	}

	if err := runPhase("warm", ops, func(w, i int) error {
		_, err := p.Negotiate("webapp", negotiateEnv(i%warmKeys), 75)
		return err
	}); err != nil {
		return sec, err
	}

	var cold atomic.Int64
	if err := runPhase("cold", ops, func(w, i int) error {
		_, err := p.Negotiate("webapp", negotiateEnv(warmKeys+int(cold.Add(1))), 75)
		return err
	}); err != nil {
		return sec, err
	}

	srv, err := proxy.NewServer(p, workers*2, func(string, ...interface{}) {})
	if err != nil {
		return sec, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return sec, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()
	loopbackOps := ops / 10
	if loopbackOps < 1 {
		loopbackOps = 1
	}
	if err := runPhase("loopback", loopbackOps, func(w, i int) error {
		return negotiateSession(addr, negotiateEnv(i%warmKeys))
	}); err != nil {
		return sec, err
	}
	if err := srv.Close(); err != nil {
		return sec, err
	}
	if err := <-serveDone; err != nil {
		return sec, err
	}

	st := p.Stats()
	sec.Rows = append(sec.Rows, "counter\tvalue")
	sec.Rows = append(sec.Rows, fmt.Sprintf("negotiations\t%d", st.Negotiations))
	sec.Rows = append(sec.Rows, fmt.Sprintf("cache_hits\t%d", st.CacheHits))
	sec.Rows = append(sec.Rows, fmt.Sprintf("searches\t%d", st.Searches))
	sec.Rows = append(sec.Rows, fmt.Sprintf("collapsed_searches\t%d", st.CollapsedSearches))
	sec.Rows = append(sec.Rows, fmt.Sprintf("search_nanos_total\t%d", st.TotalSearchNanos))
	sec.Rows = append(sec.Rows, fmt.Sprintf("verifier_rejections\t%d", st.VerifierRejections))
	cs := p.CacheStats()
	sec.Rows = append(sec.Rows, fmt.Sprintf("adaptation_cache\thits=%d misses=%d evictions=%d", cs.Hits, cs.Misses, cs.Evictions))
	return sec, nil
}

// negotiateSession runs one client-side Figure 4 exchange, pipelined: the
// INIT_REQ (advertising the binary fast path) and the CLI_META_REP are
// queued and flushed as one vectored write, so the whole session costs one
// write and one read burst in the steady state.
func negotiateSession(addr string, env core.Env) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	c := inp.NewConn(conn)
	if err := c.Queue(inp.MsgInitReq, inp.InitReq{AppID: "webapp", Resource: "page-000", WireVersion: inp.Version2}); err != nil {
		return err
	}
	if err := c.Queue(inp.MsgCliMetaRep, inp.CliMetaRep{Dev: env.Dev, Ntwk: env.Ntwk, SessionRequests: 75}); err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	var initRep inp.InitRep
	if err := c.RecvInto(inp.MsgInitRep, &initRep); err != nil {
		return err
	}
	if !initRep.OK {
		return fmt.Errorf("INIT refused: %s", initRep.Reason)
	}
	var tmpl inp.CliMetaReq
	if err := c.RecvInto(inp.MsgCliMetaReq, &tmpl); err != nil {
		return err
	}
	var padRep inp.PADMetaRep
	return c.RecvInto(inp.MsgPADMetaRep, &padRep)
}
