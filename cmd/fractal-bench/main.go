// Command fractal-bench regenerates every table and figure of the paper's
// evaluation (Section 4.4) and prints the series as tab-separated rows.
//
// Usage:
//
//	fractal-bench -exp all
//	fractal-bench -exp fig9b -clients 1,50,100,200,300
//	fractal-bench -exp headline
//
// Experiments: table1, fig9a, fig9b, fig10, fig10d, fig11a, fig11b,
// fig11c, headline, capacity, timeline, premise, session, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fractal/internal/experiment"
	"fractal/internal/netsim"
	"fractal/internal/workload"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: table1|fig9a|fig9b|fig10|fig10d|fig11a|fig11b|fig11c|headline|capacity|timeline|premise|session|all")
		clients = flag.String("clients", "1,25,50,100,150,200,250,300", "comma-separated client counts for fig9a/fig9b")
		pages   = flag.Int("pages", 0, "override corpus size (default: the paper's 75)")
		seed    = flag.Int64("seed", 0, "override workload seed")
		edges   = flag.Int("edges", 0, "override CDN edgeserver count")
	)
	flag.Parse()

	cfg := experiment.DefaultSetupConfig()
	if *pages > 0 {
		cfg.Pages = *pages
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *edges > 0 {
		cfg.Edges = *edges
	}
	counts, err := parseCounts(*clients)
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "fractal-bench: building platform (%d pages, %d edges)...\n", cfg.Pages, cfg.Edges)
	s, err := experiment.NewSetup(cfg)
	if err != nil {
		fatal(err)
	}

	run := map[string]func() error{
		"table1":   func() error { return runTable1(s) },
		"fig9a":    func() error { return runFig9a(s, counts) },
		"fig9b":    func() error { return runFig9b(s, counts) },
		"fig10":    func() error { return runFig10(s, true) },
		"fig10d":   func() error { return runFig10(s, false) },
		"fig11a":   func() error { return runFig11a(s) },
		"fig11b":   func() error { return runFig11(s, true) },
		"fig11c":   func() error { return runFig11(s, false) },
		"headline": func() error { return runHeadline(s) },
		"capacity": func() error { return runCapacity(s) },
		"timeline": func() error { return runTimeline(s) },
		"premise":  func() error { return runPremise(cfg.Seed) },
		"session":  func() error { return runSession(s, cfg.SessionRequests) },
	}
	order := []string{"table1", "fig9a", "fig9b", "fig10", "fig10d", "fig11a", "fig11b", "fig11c", "headline", "capacity", "timeline", "premise", "session"}

	if *exp == "all" {
		for _, id := range order {
			if err := run[id](); err != nil {
				fatal(err)
			}
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (want one of %s, all)", *exp, strings.Join(order, ", ")))
	}
	if err := f(); err != nil {
		fatal(err)
	}
}

func header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func runTable1(s *experiment.Setup) error {
	header("Table 1: functions and implementations of PADs")
	rows, err := experiment.RunTable1(s)
	if err != nil {
		return err
	}
	fmt.Println("pad\tfunction\timplementation\tmodule_bytes")
	for _, r := range rows {
		fmt.Printf("%s\t%s\t%s\t%d\n", r.Name, r.Function, r.Implementation, r.ModuleBytes)
	}
	return nil
}

func runFig9a(s *experiment.Setup, counts []int) error {
	header("Figure 9(a): average negotiation time vs clients (real TCP)")
	r, err := experiment.RunFig9a(s, counts)
	if err != nil {
		return err
	}
	for _, row := range r.Rows() {
		fmt.Println(row)
	}
	return nil
}

func runFig9b(s *experiment.Setup, counts []int) error {
	header("Figure 9(b): PAD retrieval time, centralized vs CDN (simulated)")
	r, err := experiment.RunFig9b(s, counts)
	if err != nil {
		return err
	}
	for _, row := range r.Rows() {
		fmt.Println(row)
	}
	return nil
}

func runFig10(s *experiment.Setup, includeServer bool) error {
	if includeServer {
		header("Figure 10(a-c): computing overhead per scenario (reactive server)")
	} else {
		header("Figure 10(d): computing overhead per scenario (proactive server)")
	}
	r, err := experiment.RunScenarios(s, includeServer)
	if err != nil {
		return err
	}
	for _, row := range r.ComputingRows() {
		fmt.Println(row)
	}
	return nil
}

func runFig11a(s *experiment.Setup) error {
	header("Figure 11(a): bytes transferred per protocol")
	r, err := experiment.RunFig11a(s)
	if err != nil {
		return err
	}
	for _, row := range r.Render() {
		fmt.Println(row)
	}
	return nil
}

func runFig11(s *experiment.Setup, includeServer bool) error {
	if includeServer {
		header("Figure 11(b): total time with server-side difference computing")
	} else {
		header("Figure 11(c): total time without server-side difference computing")
	}
	g, err := experiment.RunFig11Grid(s, includeServer)
	if err != nil {
		return err
	}
	for _, row := range g.Rows() {
		fmt.Println(row)
	}
	sc, err := experiment.RunScenarios(s, includeServer)
	if err != nil {
		return err
	}
	for _, row := range sc.TotalRows() {
		fmt.Println(row)
	}
	return nil
}

func runHeadline(s *experiment.Setup) error {
	header("Headline: total overhead savings of adaptive protocol adaptation")
	r, err := experiment.RunHeadline(s)
	if err != nil {
		return err
	}
	for _, row := range r.Render() {
		fmt.Println(row)
	}
	return nil
}

func runCapacity(s *experiment.Setup) error {
	header("Extension: server capacity per adaptation scenario")
	trace, err := workload.GenerateTrace(s.V2, workload.DefaultTraceConfig(7))
	if err != nil {
		return err
	}
	r, err := experiment.RunCapacity(s, trace)
	if err != nil {
		return err
	}
	for _, row := range r.Render() {
		fmt.Println(row)
	}
	return nil
}

func runTimeline(s *experiment.Setup) error {
	header("Extension: first-contact timeline per station (Figure 4 sequence)")
	for _, st := range netsim.Stations() {
		tl, err := experiment.RunTimeline(s, st)
		if err != nil {
			return err
		}
		for _, row := range tl.Render() {
			fmt.Println(row)
		}
	}
	return nil
}

func runPremise(seed int64) error {
	header("Premise [30]: no single protocol wins across document classes")
	r, err := experiment.RunPremise(seed)
	if err != nil {
		return err
	}
	for _, row := range r.Render() {
		fmt.Println(row)
	}
	return nil
}

func runSession(s *experiment.Setup, requests int) error {
	header("Extension: whole-session client total delay per scenario")
	r, err := experiment.RunSessionTotals(s, requests)
	if err != nil {
		return err
	}
	for _, row := range r.Render() {
		fmt.Println(row)
	}
	return nil
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no client counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fractal-bench:", err)
	os.Exit(1)
}
