// Command fractal-bench regenerates every table and figure of the paper's
// evaluation (Section 4.4) and prints the series as tab-separated rows.
//
// Usage:
//
//	fractal-bench -exp all
//	fractal-bench -exp fig9b -clients 1,50,100,200,300
//	fractal-bench -exp headline -json
//	fractal-bench -exp fig10 -cpuprofile cpu.out -memprofile mem.out
//	fractal-bench -mode negotiate -workers 8 -ops 20000
//
// Experiments: table1, fig9a, fig9b, fig10, fig10d, fig11a, fig11b,
// fig11c, headline, capacity, timeline, premise, session, all.
//
// With -mode negotiate the tool skips the paper experiments and drives the
// proxy negotiation plane directly: a warm-key phase, a cold-key phase, and
// a loopback INP/TCP session phase, reporting throughput and the proxy's
// hit/search/collapse counters.
//
// With -mode faults the tool runs the deterministic fault-injection
// scenarios over real TCP: scripted refusals, stalls, corruption,
// truncation, and outages, reporting each scenario's contract outcome
// (completed, failed-fast, or degraded) and fault census. -seed selects
// the fault schedule; the same seed reproduces identical rows.
//
// With -json the sections are emitted as one JSON document (each TSV row
// split into fields) instead of the human-readable text, for consumption by
// plotting or regression-tracking scripts. The document is an envelope that
// records run provenance — goos, goarch, gomaxprocs, nproc, and an optional
// free-form -note — so snapshots taken on different hosts are never mistaken
// for comparable. -cpuprofile and -memprofile write pprof profiles covering
// the experiment runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"fractal/internal/experiment"
	"fractal/internal/netsim"
	"fractal/internal/workload"
)

// section is one experiment's output: a title plus TSV rows.
type section struct {
	ID    string
	Title string
	Rows  []string
}

// jsonSection is the -json wire form of a section, TSV rows split.
type jsonSection struct {
	ID    string     `json:"id"`
	Title string     `json:"title"`
	Rows  [][]string `json:"rows"`
}

// jsonEnvelope wraps -json output with the provenance a regression tracker
// needs to decide whether two runs are comparable at all: numbers taken at
// GOMAXPROCS=1 on a single-CPU host must not be gated against an 8-way run.
type jsonEnvelope struct {
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"nproc"`
	Note       string        `json:"note,omitempty"`
	Sections   []jsonSection `json:"sections"`
}

// emitJSON writes the sections wrapped in the provenance envelope.
func emitJSON(secs []jsonSection, note string) error {
	env := jsonEnvelope{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note:       note,
		Sections:   secs,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

func main() {
	var (
		mode          = flag.String("mode", "exp", "exp = paper experiments (see -exp); negotiate = negotiation-plane throughput driver; faults = deterministic fault-injection scenarios; fleet = sharded-tier discrete-event load harness")
		workers       = flag.Int("workers", 8, "concurrent workers for -mode negotiate")
		ops           = flag.Int("ops", 20000, "negotiations per worker per phase for -mode negotiate")
		exp           = flag.String("exp", "all", "experiment id: table1|fig9a|fig9b|fig10|fig10d|fig11a|fig11b|fig11c|headline|capacity|timeline|premise|session|all")
		clients       = flag.String("clients", "1,25,50,100,150,200,250,300", "comma-separated client counts for fig9a/fig9b")
		pages         = flag.Int("pages", 0, "override corpus size (default: the paper's 75)")
		seed          = flag.Int64("seed", 0, "override workload seed")
		edges         = flag.Int("edges", 0, "override CDN edgeserver count")
		jsonOut       = flag.Bool("json", false, "emit sections as one JSON document (with run provenance) instead of text")
		note          = flag.String("note", "", "free-form provenance note recorded in the -json envelope (e.g. host or run context)")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile covering the experiment runs to this file")
		memProfile    = flag.String("memprofile", "", "write a heap profile taken after the experiment runs to this file")
		fleetShards   = flag.String("fleet-shards", "1,2,4,8", "comma-separated shard counts swept by -mode fleet")
		fleetSessions = flag.Int("fleet-sessions", 1_000_000, "simulated client sessions per shard count for -mode fleet")
		fleetProfiles = flag.Int("fleet-profiles", 0, "distinct client profiles for -mode fleet (0 = harness default)")
		fleetArrival  = flag.String("fleet-arrival", "constant", "arrival curve for -mode fleet: constant|diurnal|flash")
		fleetRepush   = flag.Int("fleet-repushes", 0, "topology repushes injected during each -mode fleet run")
		fleetReplicas = flag.Int("fleet-replicas", 1, "warm cache replication factor for -mode fleet")
	)
	flag.Parse()

	if *mode == "negotiate" {
		sec, err := runNegotiate(*workers, *ops)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			if err := emitJSON([]jsonSection{sec.toJSON()}, *note); err != nil {
				fatal(err)
			}
		} else {
			sec.print()
		}
		return
	}
	if *mode == "faults" {
		sec, err := runFaultsMode(*pages, *seed, *edges)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			if err := emitJSON([]jsonSection{sec.toJSON()}, *note); err != nil {
				fatal(err)
			}
		} else {
			sec.print()
		}
		return
	}
	if *mode == "fleet" {
		bseed := *seed
		if bseed == 0 {
			bseed = 2005
		}
		counts, err := parseCounts(*fleetShards)
		if err != nil {
			fatal(err)
		}
		summary, perShard, err := runFleetMode(counts, *fleetSessions, *fleetProfiles, *fleetArrival, bseed, *fleetRepush, *fleetReplicas)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			if err := emitJSON([]jsonSection{summary.toJSON(), perShard.toJSON()}, *note); err != nil {
				fatal(err)
			}
		} else {
			summary.print()
			perShard.print()
		}
		return
	}
	if *mode != "exp" {
		fatal(fmt.Errorf("unknown mode %q (want exp, negotiate, faults, or fleet)", *mode))
	}

	cfg := experiment.DefaultSetupConfig()
	if *pages > 0 {
		cfg.Pages = *pages
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *edges > 0 {
		cfg.Edges = *edges
	}
	counts, err := parseCounts(*clients)
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "fractal-bench: building platform (%d pages, %d edges)...\n", cfg.Pages, cfg.Edges)
	s, err := experiment.NewSetup(cfg)
	if err != nil {
		fatal(err)
	}

	run := map[string]func() (section, error){
		"table1":   func() (section, error) { return runTable1(s) },
		"fig9a":    func() (section, error) { return runFig9a(s, counts) },
		"fig9b":    func() (section, error) { return runFig9b(s, counts) },
		"fig10":    func() (section, error) { return runFig10(s, true) },
		"fig10d":   func() (section, error) { return runFig10(s, false) },
		"fig11a":   func() (section, error) { return runFig11a(s) },
		"fig11b":   func() (section, error) { return runFig11(s, true) },
		"fig11c":   func() (section, error) { return runFig11(s, false) },
		"headline": func() (section, error) { return runHeadline(s) },
		"capacity": func() (section, error) { return runCapacity(s) },
		"timeline": func() (section, error) { return runTimeline(s) },
		"premise":  func() (section, error) { return runPremise(cfg.Seed) },
		"session":  func() (section, error) { return runSession(s, cfg.SessionRequests) },
	}
	order := []string{"table1", "fig9a", "fig9b", "fig10", "fig10d", "fig11a", "fig11b", "fig11c", "headline", "capacity", "timeline", "premise", "session"}

	var ids []string
	if *exp == "all" {
		ids = order
	} else {
		if _, ok := run[*exp]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (want one of %s, all)", *exp, strings.Join(order, ", ")))
		}
		ids = []string{*exp}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	var collected []jsonSection
	for _, id := range ids {
		sec, err := run[id]()
		if err != nil {
			fatal(err)
		}
		sec.ID = id
		if *jsonOut {
			collected = append(collected, sec.toJSON())
		} else {
			sec.print()
		}
	}
	if *jsonOut {
		if err := emitJSON(collected, *note); err != nil {
			fatal(err)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// print renders the section in the original human-readable text format.
func (s section) print() {
	fmt.Printf("\n== %s ==\n", s.Title)
	for _, row := range s.Rows {
		fmt.Println(row)
	}
}

// toJSON splits the TSV rows into fields for structured output.
func (s section) toJSON() jsonSection {
	js := jsonSection{ID: s.ID, Title: s.Title, Rows: make([][]string, len(s.Rows))}
	for i, row := range s.Rows {
		js.Rows[i] = strings.Split(row, "\t")
	}
	return js
}

func runTable1(s *experiment.Setup) (section, error) {
	sec := section{Title: "Table 1: functions and implementations of PADs"}
	rows, err := experiment.RunTable1(s)
	if err != nil {
		return sec, err
	}
	sec.Rows = append(sec.Rows, "pad\tfunction\timplementation\tmodule_bytes")
	for _, r := range rows {
		sec.Rows = append(sec.Rows, fmt.Sprintf("%s\t%s\t%s\t%d", r.Name, r.Function, r.Implementation, r.ModuleBytes))
	}
	return sec, nil
}

func runFig9a(s *experiment.Setup, counts []int) (section, error) {
	sec := section{Title: "Figure 9(a): average negotiation time vs clients (real TCP)"}
	r, err := experiment.RunFig9a(s, counts)
	if err != nil {
		return sec, err
	}
	sec.Rows = r.Rows()
	return sec, nil
}

func runFig9b(s *experiment.Setup, counts []int) (section, error) {
	sec := section{Title: "Figure 9(b): PAD retrieval time, centralized vs CDN (simulated)"}
	r, err := experiment.RunFig9b(s, counts)
	if err != nil {
		return sec, err
	}
	sec.Rows = r.Rows()
	return sec, nil
}

func runFig10(s *experiment.Setup, includeServer bool) (section, error) {
	var sec section
	if includeServer {
		sec.Title = "Figure 10(a-c): computing overhead per scenario (reactive server)"
	} else {
		sec.Title = "Figure 10(d): computing overhead per scenario (proactive server)"
	}
	r, err := experiment.RunScenarios(s, includeServer)
	if err != nil {
		return sec, err
	}
	sec.Rows = r.ComputingRows()
	return sec, nil
}

func runFig11a(s *experiment.Setup) (section, error) {
	sec := section{Title: "Figure 11(a): bytes transferred per protocol"}
	r, err := experiment.RunFig11a(s)
	if err != nil {
		return sec, err
	}
	sec.Rows = r.Render()
	return sec, nil
}

func runFig11(s *experiment.Setup, includeServer bool) (section, error) {
	var sec section
	if includeServer {
		sec.Title = "Figure 11(b): total time with server-side difference computing"
	} else {
		sec.Title = "Figure 11(c): total time without server-side difference computing"
	}
	g, err := experiment.RunFig11Grid(s, includeServer)
	if err != nil {
		return sec, err
	}
	sec.Rows = append(sec.Rows, g.Rows()...)
	sc, err := experiment.RunScenarios(s, includeServer)
	if err != nil {
		return sec, err
	}
	sec.Rows = append(sec.Rows, sc.TotalRows()...)
	return sec, nil
}

func runHeadline(s *experiment.Setup) (section, error) {
	sec := section{Title: "Headline: total overhead savings of adaptive protocol adaptation"}
	r, err := experiment.RunHeadline(s)
	if err != nil {
		return sec, err
	}
	sec.Rows = r.Render()
	return sec, nil
}

func runCapacity(s *experiment.Setup) (section, error) {
	sec := section{Title: "Extension: server capacity per adaptation scenario"}
	trace, err := workload.GenerateTrace(s.V2, workload.DefaultTraceConfig(7))
	if err != nil {
		return sec, err
	}
	r, err := experiment.RunCapacity(s, trace)
	if err != nil {
		return sec, err
	}
	sec.Rows = r.Render()
	return sec, nil
}

func runTimeline(s *experiment.Setup) (section, error) {
	sec := section{Title: "Extension: first-contact timeline per station (Figure 4 sequence)"}
	for _, st := range netsim.Stations() {
		tl, err := experiment.RunTimeline(s, st)
		if err != nil {
			return sec, err
		}
		sec.Rows = append(sec.Rows, tl.Render()...)
	}
	return sec, nil
}

func runPremise(seed int64) (section, error) {
	sec := section{Title: "Premise [30]: no single protocol wins across document classes"}
	r, err := experiment.RunPremise(seed)
	if err != nil {
		return sec, err
	}
	sec.Rows = r.Render()
	return sec, nil
}

func runSession(s *experiment.Setup, requests int) (section, error) {
	sec := section{Title: "Extension: whole-session client total delay per scenario"}
	r, err := experiment.RunSessionTotals(s, requests)
	if err != nil {
		return sec, err
	}
	sec.Rows = r.Render()
	return sec, nil
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no client counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fractal-bench:", err)
	os.Exit(1)
}
