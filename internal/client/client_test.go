package client

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"fractal/internal/appserver"
	"fractal/internal/cdn"
	"fractal/internal/core"
	"fractal/internal/inp"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
	"fractal/internal/proxy"
	"fractal/internal/workload"
)

// world is a fully wired in-process Fractal deployment.
type world struct {
	app   *appserver.Server
	proxy *proxy.Proxy
	cdn   *cdn.CDN
	v1    *workload.Corpus
	v2    *workload.Corpus
	trust *mobilecode.TrustList
}

func buildWorld(t testing.TB) *world {
	t.Helper()
	signer, err := mobilecode.NewSigner("app-operator")
	if err != nil {
		t.Fatal(err)
	}
	app, err := appserver.New("webapp", signer)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := workload.Generate(workload.Config{
		Pages: 6, TextBytes: 2048, Images: 2, ImageBytes: 16384, Seed: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := workload.MutateCorpus(v1, workload.DefaultMutation(201))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.InstallCorpus(v1, v2); err != nil {
		t.Fatal(err)
	}
	if err := app.DeployPADs("1.0"); err != nil {
		t.Fatal(err)
	}
	appMeta, err := app.MeasureAppMeta(4)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.CaseStudyMatrices()
	if err != nil {
		t.Fatal(err)
	}
	px, err := proxy.New(core.OverheadModel{
		Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000,
		IncludeServerComp: true, SessionRequests: 75,
	}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := px.PushAppMeta(appMeta); err != nil {
		t.Fatal(err)
	}
	topo, err := cdn.DefaultTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.PublishPADs(topo.Origin()); err != nil {
		t.Fatal(err)
	}
	trust := mobilecode.NewTrustList()
	entity, key := app.TrustedKey()
	if err := trust.Add(entity, key); err != nil {
		t.Fatal(err)
	}
	return &world{app: app, proxy: px, cdn: topo, v1: v1, v2: v2, trust: trust}
}

func (w *world) fetcher(region string, link netsim.Link) *CDNFetcher {
	return &CDNFetcher{CDN: w.cdn, Region: region, Link: link, Concurrent: 1}
}

func (w *world) local() LocalAppServer {
	return LocalAppServer{Encode: func(ids []string, res string, have int) ([]byte, int, string, error) {
		r, err := w.app.Encode(ids, res, have)
		if err != nil {
			return nil, 0, "", err
		}
		return r.Payload, r.Version, r.PADID, nil
	}}
}

func pdaConfig(trust *mobilecode.TrustList) Config {
	return Config{
		Env: core.Env{
			Dev:  core.DevMeta{OSType: core.OSWinCE, CPUType: core.CPUTypePXA255, CPUMHz: 400, MemMB: 64},
			Ntwk: core.NtwkMeta{NetworkType: core.NetBluetooth, BandwidthKbps: 723},
		},
		SessionRequests: 75,
		Trust:           trust,
		Sandbox:         mobilecode.DefaultSandbox(),
	}
}

func desktopConfig(trust *mobilecode.TrustList) Config {
	return Config{
		Env: core.Env{
			Dev:  core.DevMeta{OSType: core.OSFedora, CPUType: core.CPUTypeP4, CPUMHz: 2000, MemMB: 512},
			Ntwk: core.NtwkMeta{NetworkType: core.NetLAN, BandwidthKbps: 100000},
		},
		SessionRequests: 75,
		Trust:           trust,
		Sandbox:         mobilecode.DefaultSandbox(),
	}
}

func TestEndToEndRequest(t *testing.T) {
	w := buildWorld(t)
	c, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Request("webapp", "page-000")
	if err != nil {
		t.Fatal(err)
	}
	want := w.v2.Pages[0].Bytes()
	if !bytes.Equal(got, want) {
		t.Fatalf("content mismatch: %d vs %d bytes", len(got), len(want))
	}
	st := c.Stats()
	if st.Negotiations != 1 || st.PADDownloads == 0 || st.Requests != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if c.HeldVersion("page-000") != 2 {
		t.Fatalf("held version = %d, want 2", c.HeldVersion("page-000"))
	}
}

func TestProtocolCacheAvoidsRenegotiation(t *testing.T) {
	w := buildWorld(t)
	c, err := New(desktopConfig(w.trust), w.proxy, w.fetcher("region-1", netsim.LAN), w.local())
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []string{"page-000", "page-001", "page-002"} {
		if _, err := c.Request("webapp", res); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Negotiations != 1 {
		t.Fatalf("negotiations = %d, want 1 (protocol cache)", st.Negotiations)
	}
	if st.ProtocolCacheHits != 2 {
		t.Fatalf("protocol cache hits = %d, want 2", st.ProtocolCacheHits)
	}
	if st.Requests != 3 {
		t.Fatalf("requests = %d", st.Requests)
	}
}

func TestDifferentialSecondFetch(t *testing.T) {
	w := buildWorld(t)
	c, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Request("webapp", "page-003")
	if err != nil {
		t.Fatal(err)
	}
	stAfterFirst := c.Stats()
	again, err := c.Request("webapp", "page-003")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("repeat request returned different content")
	}
	st := c.Stats()
	secondPayload := st.PayloadBytes - stAfterFirst.PayloadBytes
	firstPayload := stAfterFirst.PayloadBytes
	if secondPayload >= firstPayload/2 {
		t.Fatalf("second fetch payload %d not differential (first was %d)", secondPayload, firstPayload)
	}
}

func TestForgetForcesColdStart(t *testing.T) {
	w := buildWorld(t)
	c, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request("webapp", "page-004"); err != nil {
		t.Fatal(err)
	}
	c.Forget("page-004")
	if c.HeldVersion("page-004") != 0 {
		t.Fatal("Forget did not clear version")
	}
	got, err := c.Request("webapp", "page-004")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, w.v2.Pages[4].Bytes()) {
		t.Fatal("cold restart returned wrong content")
	}
}

func TestEnvironmentsNegotiateDifferentProtocols(t *testing.T) {
	w := buildWorld(t)
	pda, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	desktop, err := New(desktopConfig(w.trust), w.proxy, w.fetcher("region-1", netsim.LAN), w.local())
	if err != nil {
		t.Fatal(err)
	}
	padsPDA, err := pda.EnsureProtocol("webapp")
	if err != nil {
		t.Fatal(err)
	}
	padsDesk, err := desktop.EnsureProtocol("webapp")
	if err != nil {
		t.Fatal(err)
	}
	if padsPDA[0].ID == padsDesk[0].ID {
		t.Fatalf("PDA and desktop negotiated the same PAD %s", padsPDA[0].ID)
	}
	if padsDesk[0].Protocol != "direct" {
		t.Errorf("desktop-LAN negotiated %s, want direct", padsDesk[0].Protocol)
	}
	if padsPDA[0].Protocol != "bitmap" {
		t.Errorf("PDA-Bluetooth negotiated %s, want bitmap", padsPDA[0].Protocol)
	}
}

func TestSetEnvRenegotiates(t *testing.T) {
	w := buildWorld(t)
	c, err := New(desktopConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.LAN), w.local())
	if err != nil {
		t.Fatal(err)
	}
	pads, err := c.EnsureProtocol("webapp")
	if err != nil {
		t.Fatal(err)
	}
	first := pads[0].Protocol
	// Roam to the PDA environment.
	if err := c.SetEnv(pdaConfig(w.trust).Env); err != nil {
		t.Fatal(err)
	}
	pads, err = c.EnsureProtocol("webapp")
	if err != nil {
		t.Fatal(err)
	}
	if pads[0].Protocol == first {
		t.Fatalf("renegotiation after roaming still picked %s", first)
	}
	if c.Stats().Negotiations != 2 {
		t.Fatalf("negotiations = %d, want 2", c.Stats().Negotiations)
	}
	if err := c.SetEnv(core.Env{}); err == nil {
		t.Error("invalid env accepted")
	}
}

func TestUntrustedModuleRejected(t *testing.T) {
	w := buildWorld(t)
	cfg := pdaConfig(mobilecode.NewTrustList()) // empty trust list
	c, err := New(cfg, w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Request("webapp", "page-000")
	if err == nil || !strings.Contains(err.Error(), "security") {
		t.Fatalf("err = %v, want security rejection", err)
	}
	if c.Stats().SecurityRejections == 0 {
		t.Fatal("security rejection not counted")
	}
}

func TestTamperedModuleRejected(t *testing.T) {
	w := buildWorld(t)
	// Republish a tampered pad-bitmap: valid signature from an unknown
	// signer (substitution attack).
	mallory, err := mobilecode.NewSigner("mallory")
	if err != nil {
		t.Fatal(err)
	}
	forged, err := mobilecode.BuildModule(mobilecode.BuiltinSpecs()[2], "6.66", mallory)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := forged.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.cdn.Origin().Publish("/pads/pad-bitmap", packed); err != nil {
		t.Fatal(err)
	}
	c, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Request("webapp", "page-000")
	if err == nil {
		t.Fatal("client deployed a module signed by an untrusted entity")
	}
}

func TestDigestBindingRejectsSubstitution(t *testing.T) {
	w := buildWorld(t)
	// A *trusted* but different module than negotiated: same signer,
	// different payload -> digest mismatch against PADMeta.
	entity, _ := w.app.TrustedKey()
	_ = entity
	signerOther, err := mobilecode.NewSigner("app-operator")
	if err != nil {
		t.Fatal(err)
	}
	// Trust the second signer too, so only the digest check can catch it.
	if err := w.trust.Add("app-operator-2", signerOther.PublicKey()); err != nil {
		t.Fatal(err)
	}
	spec := mobilecode.BuiltinSpecs()[2]
	spec.Params = map[string]string{"bitmap.block": "1024"} // different payload
	other, err := mobilecode.BuildModule(spec, "1.0", signerOther)
	if err != nil {
		t.Fatal(err)
	}
	other.Entity = "app-operator-2"
	// Re-sign under the new entity name.
	otherPacked, err := mobilecode.BuildModule(spec, "1.0", signerOther)
	if err != nil {
		t.Fatal(err)
	}
	_ = other
	packed, err := otherPacked.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.cdn.Origin().Publish("/pads/pad-bitmap", packed); err != nil {
		t.Fatal(err)
	}
	c, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request("webapp", "page-000"); err == nil {
		t.Fatal("client accepted a module whose digest differs from negotiated metadata")
	}
}

func TestNewValidation(t *testing.T) {
	w := buildWorld(t)
	good := pdaConfig(w.trust)
	if _, err := New(good, nil, w.fetcher("region-0", netsim.Bluetooth), w.local()); err == nil {
		t.Error("nil negotiator accepted")
	}
	bad := good
	bad.SessionRequests = 0
	if _, err := New(bad, w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local()); err == nil {
		t.Error("zero session requests accepted")
	}
	bad = good
	bad.Trust = nil
	if _, err := New(bad, w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local()); err == nil {
		t.Error("nil trust accepted")
	}
	bad = good
	bad.Sandbox = mobilecode.Sandbox{}
	if _, err := New(bad, w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local()); err == nil {
		t.Error("zero sandbox accepted")
	}
}

// Full TCP deployment: proxy daemon + application INP server + TCP client
// transports, the complete Figure 4 exchange on real sockets.
func TestEndToEndOverTCP(t *testing.T) {
	w := buildWorld(t)

	psrv, err := proxy.NewServer(w.proxy, 8, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pdone := make(chan error, 1)
	go func() { pdone <- psrv.Serve(pln) }()
	defer func() { _ = psrv.Close(); <-pdone }()

	asrv, err := appserver.NewINPServer(w.app, 8, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adone := make(chan error, 1)
	go func() { adone <- asrv.Serve(aln) }()
	defer func() { _ = asrv.Close(); <-adone }()

	session, err := DialApp(aln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	c, err := New(pdaConfig(w.trust),
		&TCPNegotiator{Addr: pln.Addr().String()},
		w.fetcher("region-2", netsim.Bluetooth),
		session)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Request("webapp", "page-001")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, w.v2.Pages[1].Bytes()) {
		t.Fatal("TCP end-to-end content mismatch")
	}
	// Second differential request over the same session.
	if _, err := c.Request("webapp", "page-001"); err != nil {
		t.Fatal(err)
	}
	// And an in-band server error does not kill the session.
	_, err = session.FetchContent(inp.AppReq{AppID: "webapp", Resource: "page-404"})
	if err == nil {
		t.Fatal("missing resource served")
	}
	if _, err := c.Request("webapp", "page-002"); err != nil {
		t.Fatal(err)
	}
}
