package client

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fractal/internal/core"
	"fractal/internal/inp"
	"fractal/internal/mobilecode"
)

// directWorld is a minimal wired client environment around the builtin
// Direct module: a scriptable negotiator, a PAD store serving the packed
// module, and a scriptable content fetcher. It isolates client-plane
// logic (races, singleflight, degradation) from the full appserver.
type directWorld struct {
	trust  *mobilecode.TrustList
	meta   core.PADMeta
	packed []byte
}

func buildDirectWorld(t testing.TB) *directWorld {
	t.Helper()
	signer, err := mobilecode.NewSigner("app-operator")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := mobilecode.BuildModule(mobilecode.BuiltinSpecs()[0], "1.0", signer)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := mod.Pack()
	if err != nil {
		t.Fatal(err)
	}
	trust := mobilecode.NewTrustList()
	if err := trust.Add(signer.Entity, signer.PublicKey()); err != nil {
		t.Fatal(err)
	}
	return &directWorld{
		trust: trust,
		meta: core.PADMeta{
			ID: mod.ID, Version: mod.Version, Protocol: "direct",
			Size: mod.Size(), Digest: mod.Digest, URL: "/pads/" + mod.ID,
		},
		packed: packed,
	}
}

func (w *directWorld) config() Config {
	cfg := pdaConfig(w.trust)
	return cfg
}

// funcNeg adapts a function to the Negotiator interface.
type funcNeg func(appID string, env core.Env, n int) ([]core.PADMeta, error)

func (f funcNeg) Negotiate(appID string, env core.Env, n int) ([]core.PADMeta, error) {
	return f(appID, env, n)
}

// funcFetcher adapts a function to the PADFetcher interface.
type funcFetcher func(meta core.PADMeta) ([]byte, error)

func (f funcFetcher) FetchPAD(meta core.PADMeta) ([]byte, error) { return f(meta) }

// funcContent adapts a function to the ContentFetcher interface.
type funcContent func(req inp.AppReq) (inp.AppRep, error)

func (f funcContent) FetchContent(req inp.AppReq) (inp.AppRep, error) { return f(req) }

func (w *directWorld) negotiator() Negotiator {
	return funcNeg(func(string, core.Env, int) ([]core.PADMeta, error) {
		return []core.PADMeta{w.meta}, nil
	})
}

func (w *directWorld) padStore() PADFetcher {
	return funcFetcher(func(meta core.PADMeta) ([]byte, error) {
		if meta.ID != w.meta.ID {
			return nil, fmt.Errorf("unknown PAD %s", meta.ID)
		}
		return w.packed, nil
	})
}

// TestRequestDropsStaleVersionReply is the deterministic regression test
// for the version-commit race: a reply carrying an older version than the
// one already held (a slow response overtaken by a faster one, or a
// replayed frame) must not regress the content cache.
func TestRequestDropsStaleVersionReply(t *testing.T) {
	w := buildDirectWorld(t)
	var calls int32
	content := funcContent(func(req inp.AppReq) (inp.AppRep, error) {
		// First reply is version 2; the second is a stale version-1 reply
		// arriving late.
		v, body := 2, "content v2"
		if atomic.AddInt32(&calls, 1) > 1 {
			v, body = 1, "content v1"
		}
		return inp.AppRep{Resource: req.Resource, Version: v, PADID: w.meta.ID, Payload: []byte(body)}, nil
	})
	c, err := New(w.config(), w.negotiator(), w.padStore(), content)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request("webapp", "page"); err != nil {
		t.Fatal(err)
	}
	if got := c.HeldVersion("page"); got != 2 {
		t.Fatalf("held version = %d, want 2", got)
	}
	if _, err := c.Request("webapp", "page"); err != nil {
		t.Fatal(err)
	}
	if got := c.HeldVersion("page"); got != 2 {
		t.Fatalf("stale reply regressed held version to %d, want 2", got)
	}
	st := c.Stats()
	if st.StaleVersionDrops != 1 {
		t.Fatalf("stale drops = %d, want 1", st.StaleVersionDrops)
	}
	if st.Requests != 2 {
		t.Fatalf("requests = %d, want 2", st.Requests)
	}
}

// TestRequestVersionMonotonicUnderRace hammers Request from many
// goroutines against a server handing out versions in arbitrary order and
// checks (under -race) that the held version only ever advances.
func TestRequestVersionMonotonicUnderRace(t *testing.T) {
	w := buildDirectWorld(t)
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(42))
	var maxServed int
	content := funcContent(func(req inp.AppReq) (inp.AppRep, error) {
		mu.Lock()
		v := 1 + rng.Intn(100)
		if v > maxServed {
			maxServed = v
		}
		mu.Unlock()
		return inp.AppRep{Resource: req.Resource, Version: v, PADID: w.meta.ID,
			Payload: []byte(fmt.Sprintf("content v%d", v))}, nil
	})
	c, err := New(w.config(), w.negotiator(), w.padStore(), content)
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for i := 0; i < rounds; i++ {
				if _, err := c.Request("webapp", "page"); err != nil {
					t.Error(err)
					return
				}
				held := c.HeldVersion("page")
				if held < last {
					t.Errorf("held version regressed %d -> %d", last, held)
					return
				}
				last = held
			}
		}()
	}
	wg.Wait()
	if held := c.HeldVersion("page"); held != maxServed {
		t.Fatalf("final held version = %d, want max served %d", held, maxServed)
	}
}

// TestEnsureProtocolCollapsesStampede: a cold-start stampede of
// concurrent sessions must produce exactly one negotiation; everyone else
// joins it through the singleflight.
func TestEnsureProtocolCollapsesStampede(t *testing.T) {
	w := buildDirectWorld(t)
	var negotiations int32
	release := make(chan struct{})
	neg := funcNeg(func(string, core.Env, int) ([]core.PADMeta, error) {
		atomic.AddInt32(&negotiations, 1)
		<-release
		return []core.PADMeta{w.meta}, nil
	})
	c, err := New(w.config(), neg, w.padStore(), funcContent(nil))
	if err != nil {
		t.Fatal(err)
	}
	const stampede = 16
	var wg sync.WaitGroup
	errs := make([]error, stampede)
	for g := 0; g < stampede; g++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.EnsureProtocol("webapp")
		}(g)
	}
	// Give every goroutine time to reach the singleflight (the leader is
	// parked inside Negotiate until released, so none can finish early).
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if n := atomic.LoadInt32(&negotiations); n != 1 {
		t.Fatalf("stampede opened %d negotiations, want 1", n)
	}
	st := c.Stats()
	if st.Negotiations != 1 {
		t.Fatalf("stats.Negotiations = %d, want 1", st.Negotiations)
	}
	if st.CollapsedNegotiations != stampede-1 {
		t.Fatalf("collapsed = %d, want %d", st.CollapsedNegotiations, stampede-1)
	}
	// Warm path afterwards: cache hits, still one negotiation.
	if _, err := c.EnsureProtocol("webapp"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Negotiations != 1 || st.ProtocolCacheHits != 1 {
		t.Fatalf("warm path stats = %+v", st)
	}
}

// TestDegradesToFallbackDirect: when the adaptation plane is down and a
// local Direct module is configured, the session degrades instead of
// failing — and the fallback still passes the security checks.
func TestDegradesToFallbackDirect(t *testing.T) {
	w := buildDirectWorld(t)
	cfg := w.config()
	cfg.FallbackDirect = w.packed
	down := funcNeg(func(string, core.Env, int) ([]core.PADMeta, error) {
		return nil, errors.New("proxy unreachable")
	})
	content := funcContent(func(req inp.AppReq) (inp.AppRep, error) {
		return inp.AppRep{Resource: req.Resource, Version: 1, PADID: w.meta.ID, Payload: []byte("direct body")}, nil
	})
	c, err := New(cfg, down, w.padStore(), content)
	if err != nil {
		t.Fatal(err)
	}
	pads, err := c.EnsureProtocol("webapp")
	if err != nil {
		t.Fatalf("degradation failed: %v", err)
	}
	if len(pads) != 1 || pads[0].ID != w.meta.ID {
		t.Fatalf("degraded pads = %+v", pads)
	}
	data, err := c.Request("webapp", "page")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "direct body" {
		t.Fatalf("degraded content = %q", data)
	}
	st := c.Stats()
	if st.Degradations != 1 {
		t.Fatalf("degradations = %d, want 1", st.Degradations)
	}
	if st.Negotiations != 0 {
		t.Fatalf("negotiations = %d, want 0", st.Negotiations)
	}
	// The degraded protocol is cached: later sessions reuse it without
	// re-touching the dead proxy.
	if _, err := c.EnsureProtocol("webapp"); err != nil {
		t.Fatal(err)
	}
	// Two cache hits: one inside Request, one from the explicit call.
	if st := c.Stats(); st.Degradations != 1 || st.ProtocolCacheHits != 2 {
		t.Fatalf("post-degradation stats = %+v", st)
	}
}

// TestDegradeOnDeployFailure: negotiation succeeds but every PAD download
// fails — the client still degrades rather than erroring.
func TestDegradeOnDeployFailure(t *testing.T) {
	w := buildDirectWorld(t)
	cfg := w.config()
	cfg.FallbackDirect = w.packed
	deadStore := funcFetcher(func(core.PADMeta) ([]byte, error) {
		return nil, errors.New("every edge down")
	})
	c, err := New(cfg, w.negotiator(), deadStore, funcContent(nil))
	if err != nil {
		t.Fatal(err)
	}
	pads, err := c.EnsureProtocol("webapp")
	if err != nil {
		t.Fatalf("degradation failed: %v", err)
	}
	if len(pads) != 1 || pads[0].Protocol != "direct" {
		t.Fatalf("degraded pads = %+v", pads)
	}
	if st := c.Stats(); st.Degradations != 1 {
		t.Fatalf("degradations = %d, want 1", st.Degradations)
	}
}

// TestNoFallbackSurfacesCause: without a configured fallback the original
// failure comes through untouched.
func TestNoFallbackSurfacesCause(t *testing.T) {
	w := buildDirectWorld(t)
	sentinel := errors.New("proxy unreachable")
	down := funcNeg(func(string, core.Env, int) ([]core.PADMeta, error) { return nil, sentinel })
	c, err := New(w.config(), down, w.padStore(), funcContent(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnsureProtocol("webapp"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if st := c.Stats(); st.Degradations != 0 {
		t.Fatalf("degradations = %d, want 0", st.Degradations)
	}
}

// TestRetryPolicyBackoffDeterministic checks the exponential schedule and
// the cap with jitter disabled, and the jitter bounds with it enabled.
func TestRetryPolicyBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{Attempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	want := []time.Duration{10, 20, 40, 50, 50}
	for i, w := range want {
		if got := p.backoff(i+1, rng); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	j := RetryPolicy{Attempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := j.backoff(1, rng)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [50ms, 100ms]", d)
		}
	}
	// Same seed, same jitter draws: the schedule is reproducible.
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 1; i <= 5; i++ {
		if j.backoff(i, a) != j.backoff(i, b) {
			t.Fatal("equal seeds produced different backoff schedules")
		}
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	if err := DefaultRetryPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []RetryPolicy{
		{Attempts: 0},
		{Attempts: 1, BaseDelay: -time.Second},
		{Attempts: 1, Jitter: 1.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("policy %+v accepted", bad)
		}
	}
}

// TestRetryingNegotiatorRecovers: two transient failures then success,
// with the backoff sleeps captured instead of slept.
func TestRetryingNegotiatorRecovers(t *testing.T) {
	w := buildDirectWorld(t)
	var calls int32
	flaky := funcNeg(func(string, core.Env, int) ([]core.PADMeta, error) {
		if atomic.AddInt32(&calls, 1) < 3 {
			return nil, errors.New("transient")
		}
		return []core.PADMeta{w.meta}, nil
	})
	rn, err := NewRetryingNegotiator(flaky, RetryPolicy{Attempts: 3, BaseDelay: 10 * time.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	rn.r.sleep = func(d time.Duration) { slept = append(slept, d) }
	pads, err := rn.Negotiate("webapp", w.config().Env, 75)
	if err != nil {
		t.Fatal(err)
	}
	if len(pads) != 1 {
		t.Fatalf("pads = %+v", pads)
	}
	if got := rn.Stats(); got.Attempts != 3 || got.Retries != 2 || got.Exhausted != 0 {
		t.Fatalf("stats = %+v", got)
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Fatalf("backoff sleeps = %v", slept)
	}
}

// TestRetryingNegotiatorExhausts: a hard-down proxy fails after exactly
// Attempts tries with the last error wrapped.
func TestRetryingNegotiatorExhausts(t *testing.T) {
	sentinel := errors.New("proxy down hard")
	var calls int32
	down := funcNeg(func(string, core.Env, int) ([]core.PADMeta, error) {
		atomic.AddInt32(&calls, 1)
		return nil, sentinel
	})
	rn, err := NewRetryingNegotiator(down, RetryPolicy{Attempts: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rn.r.sleep = func(time.Duration) {}
	if _, err := rn.Negotiate("webapp", core.Env{}, 1); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if n := atomic.LoadInt32(&calls); n != 4 {
		t.Fatalf("calls = %d, want 4", n)
	}
	if got := rn.Stats(); got.Exhausted != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

// TestRetryingPADFetcherFailsOver: the first edge is dead; attempt two
// rotates to the second source and succeeds.
func TestRetryingPADFetcherFailsOver(t *testing.T) {
	w := buildDirectWorld(t)
	dead := funcFetcher(func(core.PADMeta) ([]byte, error) { return nil, errors.New("edge down") })
	var aliveCalls int32
	alive := funcFetcher(func(meta core.PADMeta) ([]byte, error) {
		atomic.AddInt32(&aliveCalls, 1)
		return w.packed, nil
	})
	rf, err := NewRetryingPADFetcher(RetryPolicy{Attempts: 3}, 1, dead, alive)
	if err != nil {
		t.Fatal(err)
	}
	rf.r.sleep = func(time.Duration) {}
	packed, err := rf.FetchPAD(w.meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != len(w.packed) {
		t.Fatalf("failover returned %d bytes, want %d", len(packed), len(w.packed))
	}
	if got := rf.Stats(); got.Attempts != 2 || got.Retries != 1 {
		t.Fatalf("stats = %+v", got)
	}
	if atomic.LoadInt32(&aliveCalls) != 1 {
		t.Fatalf("second source called %d times, want 1", aliveCalls)
	}
}

func TestRetryWrapperConstructorsReject(t *testing.T) {
	if _, err := NewRetryingNegotiator(nil, DefaultRetryPolicy(), 1); err == nil {
		t.Error("nil negotiator accepted")
	}
	if _, err := NewRetryingNegotiator(funcNeg(nil), RetryPolicy{}, 1); err == nil {
		t.Error("invalid policy accepted")
	}
	if _, err := NewRetryingPADFetcher(DefaultRetryPolicy(), 1); err == nil {
		t.Error("zero sources accepted")
	}
	if _, err := NewRetryingPADFetcher(DefaultRetryPolicy(), 1, nil); err == nil {
		t.Error("nil source accepted")
	}
}
