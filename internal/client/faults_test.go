package client

import (
	"bytes"
	"errors"
	"net"
	"os"
	"reflect"
	"testing"
	"time"

	"fractal/internal/appserver"
	"fractal/internal/core"
	"fractal/internal/faultnet"
	"fractal/internal/inp"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
	"fractal/internal/proxy"
)

// The fault suite drives the real TCP client plane through faultnet's
// deterministic injector and asserts the contract of the hardening work:
// every session either completes, fails fast with a typed error, or
// degrades to the Direct builtin — and a fixed fault seed reproduces
// identical stats run after run. Nothing here may hang: go test runs the
// suite under a finite -timeout in CI.

// faultCallTimeout bounds each read/write in the suite: long enough for a
// loopback exchange, short enough that an injected stall fails fast.
const faultCallTimeout = 250 * time.Millisecond

func startProxyTCP(t *testing.T, w *world) string {
	t.Helper()
	srv, err := proxy.NewServer(w.proxy, 8, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close(); <-done })
	return ln.Addr().String()
}

func startAppTCP(t *testing.T, w *world) string {
	t.Helper()
	srv, err := appserver.NewINPServer(w.app, 8, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close(); <-done })
	return ln.Addr().String()
}

func TestNegotiationRefusalIsTypedAndRetried(t *testing.T) {
	w := buildWorld(t)
	addr := startProxyTCP(t, w)

	// Bare negotiator against a refusing dialer: fails fast and typed.
	refuse := &faultnet.Dialer{Schedule: faultnet.NewSchedule(1, faultnet.Fault{Kind: faultnet.Refuse})}
	bare := &TCPNegotiator{Addr: addr, CallTimeout: faultCallTimeout, Dial: refuse.Dial}
	if _, err := bare.Negotiate("webapp", pdaConfig(w.trust).Env, 75); !errors.Is(err, faultnet.ErrRefused) {
		t.Fatalf("refused dial err = %v, want ErrRefused", err)
	}

	// Retry wrapper over a refuse-then-clean schedule: recovers.
	sched := faultnet.NewSchedule(1, faultnet.Fault{Kind: faultnet.Refuse}, faultnet.Fault{})
	d := &faultnet.Dialer{Schedule: sched}
	rn, err := NewRetryingNegotiator(
		&TCPNegotiator{Addr: addr, CallTimeout: faultCallTimeout, Dial: d.Dial},
		RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pads, err := rn.Negotiate("webapp", pdaConfig(w.trust).Env, 75)
	if err != nil {
		t.Fatalf("negotiation did not survive one refusal: %v", err)
	}
	if len(pads) == 0 {
		t.Fatal("no PADs negotiated")
	}
	if st := rn.Stats(); st.Attempts != 2 || st.Retries != 1 {
		t.Fatalf("retry stats = %+v", st)
	}
	if got := sched.Counts(); got["refuse"] != 1 || got["none"] != 1 {
		t.Fatalf("schedule counts = %v", got)
	}
}

func TestNegotiationStallFailsFastThenRetries(t *testing.T) {
	w := buildWorld(t)
	addr := startProxyTCP(t, w)

	sched := faultnet.NewSchedule(2, faultnet.Fault{Kind: faultnet.StallRead}, faultnet.Fault{})
	d := &faultnet.Dialer{Schedule: sched}
	neg := &TCPNegotiator{Addr: addr, CallTimeout: faultCallTimeout, Dial: d.Dial}

	start := time.Now()
	_, err := neg.Negotiate("webapp", pdaConfig(w.trust).Env, 75)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled negotiation err = %v, want deadline exceeded", err)
	}
	if el := time.Since(start); el > 10*faultCallTimeout {
		t.Fatalf("stalled negotiation took %v, deadline did not bound it", el)
	}
	// The next dial draws the clean schedule slot and completes.
	if _, err := neg.Negotiate("webapp", pdaConfig(w.trust).Env, 75); err != nil {
		t.Fatalf("clean retry after stall: %v", err)
	}
}

// TestAppSessionTruncationRedial is the regression test for the stream
// desync bug: a mid-frame truncation used to leave the session reading
// from an unknown stream position; now it breaks the session, the call
// fails typed, and the next call transparently redials.
func TestAppSessionTruncationRedial(t *testing.T) {
	w := buildWorld(t)
	addr := startAppTCP(t, w)

	// Cut the inbound stream 20 bytes in: past the 16-byte INP header of
	// the first reply, mid-body — the worst-case desync.
	sched := faultnet.NewSchedule(3, faultnet.Fault{Kind: faultnet.Truncate, After: 20}, faultnet.Fault{})
	d := &faultnet.Dialer{Schedule: sched}
	session, err := DialAppSession(addr, SessionConfig{CallTimeout: faultCallTimeout, Dial: d.Dial})
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	req := inp.AppReq{AppID: "webapp", Resource: "page-000", ProtocolIDs: []string{"pad-direct"}}
	_, err = session.FetchContent(req)
	if !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("truncated session err = %v, want ErrSessionBroken", err)
	}
	if !session.Broken() {
		t.Fatal("session not marked broken after mid-frame truncation")
	}
	rep, err := session.FetchContent(req)
	if err != nil {
		t.Fatalf("redial after truncation failed: %v", err)
	}
	if rep.Resource != "page-000" || len(rep.Payload) == 0 {
		t.Fatalf("post-redial reply = %+v", rep)
	}
	if session.Redials() != 1 {
		t.Fatalf("redials = %d, want 1", session.Redials())
	}
	// An in-band error still leaves the (fresh) stream healthy.
	if _, err := session.FetchContent(inp.AppReq{AppID: "webapp", Resource: "page-404", ProtocolIDs: []string{"pad-direct"}}); err == nil {
		t.Fatal("missing resource served")
	}
	if session.Broken() {
		t.Fatal("in-band peer error broke the session")
	}
}

func TestPADDownloadResetFailsTypedThenFailsOver(t *testing.T) {
	addr, mods, shutdown := startPADServer(t, 0)
	defer shutdown()
	meta := core.PADMeta{ID: mods[0].ID, URL: "/pads/" + mods[0].ID}

	reset := &faultnet.Dialer{Schedule: faultnet.NewSchedule(4, faultnet.Fault{Kind: faultnet.Reset, After: 4})}
	faulty := &TCPPADFetcher{Addr: addr, CallTimeout: faultCallTimeout, Dial: reset.Dial}
	if _, err := faulty.FetchPAD(meta); !errors.Is(err, faultnet.ErrReset) {
		t.Fatalf("reset download err = %v, want ErrReset", err)
	}

	// Failover: the dead transport rotates to a clean one on attempt 2.
	stillDead := &faultnet.Dialer{Schedule: faultnet.NewSchedule(4,
		faultnet.Fault{Kind: faultnet.Reset, After: 4}, faultnet.Fault{Kind: faultnet.Reset, After: 4})}
	rf, err := NewRetryingPADFetcher(RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond}, 4,
		&TCPPADFetcher{Addr: addr, CallTimeout: faultCallTimeout, Dial: stillDead.Dial},
		&TCPPADFetcher{Addr: addr, CallTimeout: faultCallTimeout})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rf.FetchPAD(meta)
	if err != nil {
		t.Fatalf("failover download: %v", err)
	}
	packed, err := mods[0].Pack()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, packed) {
		t.Fatal("failover returned wrong module bytes")
	}
}

func TestNegotiationCorruptionDetectedThenRetried(t *testing.T) {
	w := buildWorld(t)
	addr := startProxyTCP(t, w)

	// Corrupt the first four inbound bytes: the INP magic of the first
	// reply frame. The framing layer must reject it, never deliver it.
	sched := faultnet.NewSchedule(5, faultnet.Fault{Kind: faultnet.Corrupt, Count: 4}, faultnet.Fault{})
	d := &faultnet.Dialer{Schedule: sched}
	rn, err := NewRetryingNegotiator(
		&TCPNegotiator{Addr: addr, CallTimeout: faultCallTimeout, Dial: d.Dial},
		RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond}, 5)
	if err != nil {
		t.Fatal(err)
	}
	pads, err := rn.Negotiate("webapp", pdaConfig(w.trust).Env, 75)
	if err != nil {
		t.Fatalf("negotiation did not survive frame corruption: %v", err)
	}
	if len(pads) == 0 {
		t.Fatal("no PADs negotiated")
	}
	if st := rn.Stats(); st.Retries != 1 {
		t.Fatalf("retry stats = %+v, want one retry", st)
	}
}

// TestClientDegradesWhenProxyUnreachable: the whole adaptation plane is
// down (every dial refused, retries exhausted), but the session still
// serves content through the locally shipped Direct module.
func TestClientDegradesWhenProxyUnreachable(t *testing.T) {
	w := buildWorld(t)
	addr := startProxyTCP(t, w)

	signer, err := mobilecode.NewSigner("device-vendor")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.trust.Add(signer.Entity, signer.PublicKey()); err != nil {
		t.Fatal(err)
	}
	mod, err := mobilecode.BuildModule(mobilecode.BuiltinSpecs()[0], "1.0", signer)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := mod.Pack()
	if err != nil {
		t.Fatal(err)
	}

	dead := &faultnet.Dialer{Schedule: faultnet.NewSchedule(6,
		faultnet.Fault{Kind: faultnet.Refuse}, faultnet.Fault{Kind: faultnet.Refuse})}
	rn, err := NewRetryingNegotiator(
		&TCPNegotiator{Addr: addr, CallTimeout: faultCallTimeout, Dial: dead.Dial},
		RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond}, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pdaConfig(w.trust)
	cfg.FallbackDirect = packed
	c, err := New(cfg, rn, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Request("webapp", "page-000")
	if err != nil {
		t.Fatalf("degraded request failed: %v", err)
	}
	if !bytes.Equal(got, w.v2.Pages[0].Bytes()) {
		t.Fatal("degraded session served wrong content")
	}
	st := c.Stats()
	if st.Degradations != 1 || st.Negotiations != 0 {
		t.Fatalf("stats = %+v, want one degradation and zero negotiations", st)
	}
	if rn.Stats().Exhausted != 1 {
		t.Fatalf("retry stats = %+v, want exhausted once", rn.Stats())
	}
}

// TestFaultScheduleReproducesIdenticalStats runs the same faulty session
// twice from scratch — same world seeds, same fault schedule seed — and
// requires byte-identical client stats and fault counts: the determinism
// contract of the injector.
func TestFaultScheduleReproducesIdenticalStats(t *testing.T) {
	run := func() (Stats, map[string]int64) {
		w := buildWorld(t)
		addr := startProxyTCP(t, w)
		sched := faultnet.NewSchedule(7,
			faultnet.Fault{Kind: faultnet.Refuse},
			faultnet.Fault{Kind: faultnet.Corrupt, Count: 2},
			faultnet.Fault{},
		)
		d := &faultnet.Dialer{Schedule: sched}
		rn, err := NewRetryingNegotiator(
			&TCPNegotiator{Addr: addr, CallTimeout: faultCallTimeout, Dial: d.Dial},
			RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond}, 7)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(pdaConfig(w.trust), rn, w.fetcher("region-0", netsim.Bluetooth), w.local())
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range []string{"page-000", "page-001", "page-000"} {
			if _, err := c.Request("webapp", res); err != nil {
				t.Fatalf("request %s: %v", res, err)
			}
		}
		return c.Stats(), sched.Counts()
	}
	stats1, counts1 := run()
	stats2, counts2 := run()
	if stats1 != stats2 {
		t.Fatalf("same fault seed, different stats:\n  run1 %+v\n  run2 %+v", stats1, stats2)
	}
	if !reflect.DeepEqual(counts1, counts2) {
		t.Fatalf("same fault seed, different fault counts: %v vs %v", counts1, counts2)
	}
}
