package client

import (
	"bufio"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"fractal/internal/core"
)

// ProbeEnv gathers the client's device metadata from the running host —
// the paper's "the client gets the content of DevMeta and NtwkMeta locally
// by probing the system using system calls" — combined with the caller's
// knowledge of its network attachment (link type and bandwidth cannot be
// probed reliably without traffic). Unknown values fall back to
// conservative defaults rather than failing, since negotiation degrades
// gracefully with approximate metadata.
func ProbeEnv(networkType string, bandwidthKbps float64) (core.Env, error) {
	ntwk := core.NtwkMeta{NetworkType: networkType, BandwidthKbps: bandwidthKbps}
	if err := ntwk.Validate(); err != nil {
		return core.Env{}, err
	}
	dev := core.DevMeta{
		OSType:  runtime.GOOS,
		CPUType: runtime.GOARCH,
		CPUMHz:  probeCPUMHz(),
		MemMB:   probeMemMB(),
	}
	if err := dev.Validate(); err != nil {
		return core.Env{}, fmt.Errorf("client: probe produced invalid metadata: %w", err)
	}
	return core.Env{Dev: dev, Ntwk: ntwk}, nil
}

// probeCPUMHz reads the processor speed from /proc/cpuinfo on Linux and
// falls back to a 1 GHz estimate elsewhere.
func probeCPUMHz() float64 {
	if mhz := cpuMHzFromProc("/proc/cpuinfo"); mhz > 0 {
		return mhz
	}
	return 1000
}

// cpuMHzFromProc parses the first "cpu MHz" line of a cpuinfo-format file.
func cpuMHzFromProc(path string) float64 {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "cpu MHz") {
			continue
		}
		_, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		mhz, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err == nil && mhz > 0 {
			return mhz
		}
	}
	return 0
}

// probeMemMB reads total memory from /proc/meminfo on Linux and falls
// back to 1 GiB elsewhere.
func probeMemMB() int {
	if mb := memMBFromProc("/proc/meminfo"); mb > 0 {
		return mb
	}
	return 1024
}

// memMBFromProc parses the MemTotal line of a meminfo-format file.
func memMBFromProc(path string) int {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "MemTotal:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err == nil && kb > 0 {
			return int(kb / 1024)
		}
	}
	return 0
}
