package client

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"fractal/internal/inp"
)

// startStaleV2Server runs a malicious application server: the first
// exchange on each connection is answered correctly, the second is
// answered with a verbatim replay of the first reply re-stamped as a
// Version2 binary frame — a stale frame a conforming client must refuse
// with the typed sequence error, without adopting the forged version.
func startStaleV2Server(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				c := inp.NewConn(conn)
				var req inp.AppReq
				if err := c.RecvInto(inp.MsgAppReq, &req); err != nil {
					return
				}
				rep := inp.AppRep{Resource: req.Resource, PADID: "pad-direct", Payload: []byte("ok")}
				if err := c.Send(inp.MsgAppRep, rep); err != nil {
					return
				}
				if err := c.RecvInto(inp.MsgAppReq, &req); err != nil {
					return
				}
				// Replay of reply #1: stale seq 1, forged Version2 binary
				// framing. The legitimate next reply would be v1 seq 2.
				var buf bytes.Buffer
				fw := inp.NewFrameWriter(&buf)
				h := inp.Header{Version: inp.Version2, Type: inp.MsgAppRep, Seq: 1}
				if fw.WriteMessage(h, rep) != nil || fw.Flush() != nil {
					return
				}
				_, _ = conn.Write(buf.Bytes())
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestSessionRejectsStaleReplayedFrame: a replayed reply must surface as
// inp.ErrSeqMismatch, break the session (the stream position is
// unknown), and the next call must transparently redial and succeed.
func TestSessionRejectsStaleReplayedFrame(t *testing.T) {
	addr := startStaleV2Server(t)
	s, err := DialAppSession(addr, SessionConfig{
		DialTimeout: 2 * time.Second,
		CallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.FetchContent(inp.AppReq{AppID: "webapp", Resource: "page-000"}); err != nil {
		t.Fatalf("first exchange: %v", err)
	}

	_, err = s.FetchContent(inp.AppReq{AppID: "webapp", Resource: "page-001"})
	if !errors.Is(err, inp.ErrSeqMismatch) {
		t.Fatalf("stale replayed frame => %v, want inp.ErrSeqMismatch", err)
	}
	if !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("stale replayed frame => %v, want ErrSessionBroken", err)
	}
	if !s.Broken() {
		t.Fatal("session not marked broken after sequence violation")
	}

	rep, err := s.FetchContent(inp.AppReq{AppID: "webapp", Resource: "page-002"})
	if err != nil {
		t.Fatalf("redial after sequence violation: %v", err)
	}
	if string(rep.Payload) != "ok" {
		t.Fatalf("post-redial payload = %q, want %q", rep.Payload, "ok")
	}
	if got := s.Redials(); got != 1 {
		t.Fatalf("redials = %d, want 1", got)
	}
}
