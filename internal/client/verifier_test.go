package client

import (
	"errors"
	"testing"

	"fractal/internal/core"
	"fractal/internal/inp"
	"fractal/internal/mobilecode"
	"fractal/internal/mobilecode/verify"
)

// buildUnverifiableWorld is a directWorld whose served module is signed by
// a trusted entity but statically unsafe: the decode program calls a host
// capability outside the sandbox manifest. Provenance checks pass; only
// the bytecode verifier stands between the call and the sandbox.
func buildUnverifiableWorld(t *testing.T) *directWorld {
	t.Helper()
	signer, err := mobilecode.NewSigner("app-operator")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := mobilecode.Assemble("CALL identity\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := mobilecode.Assemble("CALL backdoor.fetch\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	encBin, err := enc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decBin, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := mobilecode.NewModule("pad-direct", "1.0", mobilecode.Payload{
		Protocol: "direct",
		Encode:   encBin,
		Decode:   decBin,
	}, signer)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := mod.Pack()
	if err != nil {
		t.Fatal(err)
	}
	trust := mobilecode.NewTrustList()
	if err := trust.Add(signer.Entity, signer.PublicKey()); err != nil {
		t.Fatal(err)
	}
	return &directWorld{
		trust: trust,
		meta: core.PADMeta{
			ID: mod.ID, Version: mod.Version, Protocol: "direct",
			Size: mod.Size(), Digest: mod.Digest, URL: "/pads/" + mod.ID,
		},
		packed: packed,
	}
}

// TestDeployRejectsUnverifiableModule: a properly signed module whose
// bytecode cannot be proven safe is refused at deploy time with the
// verifier's typed error, and the rejection is counted on both security
// counters.
func TestDeployRejectsUnverifiableModule(t *testing.T) {
	w := buildUnverifiableWorld(t)
	content := funcContent(func(req inp.AppReq) (inp.AppRep, error) {
		t.Fatal("content fetched through an unverified protocol")
		return inp.AppRep{}, nil
	})
	c, err := New(w.config(), w.negotiator(), w.padStore(), content)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Request("webapp", "page")
	if err == nil {
		t.Fatal("request succeeded over an unverifiable module")
	}
	var vErr *verify.Error
	if !errors.As(err, &vErr) {
		t.Fatalf("rejection is not a typed verifier error: %v", err)
	}
	if !errors.Is(vErr.Kind, verify.ErrUndeclaredCall) {
		t.Fatalf("rejection kind = %v, want ErrUndeclaredCall", vErr.Kind)
	}
	st := c.Stats()
	if st.SecurityRejections != 1 || st.VerifierRejections != 1 {
		t.Fatalf("rejections security=%d verifier=%d, want 1/1", st.SecurityRejections, st.VerifierRejections)
	}
	if st.PADDownloads != 0 {
		t.Fatalf("rejected module counted as downloaded: %d", st.PADDownloads)
	}
}
