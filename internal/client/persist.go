package client

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"fractal/internal/core"
)

// persistedCache is the on-disk form of the client's protocol cache: the
// PADMeta the client negotiated per application, keyed by the environment
// it negotiated under so a device/network change invalidates the entry
// naturally on load.
type persistedCache struct {
	EnvKey string                    `json:"env_key"`
	Apps   map[string][]core.PADMeta `json:"apps"`
}

// envKey canonicalizes the environment for cache binding.
func envKey(env core.Env) string {
	return env.Dev.Key() + "|" + env.Ntwk.Key()
}

// SaveProtocolCache writes the protocol cache to path so a later session
// on the same device can skip negotiation entirely (though it still
// re-downloads PAD modules, which are not persisted). The write is
// crash-safe: the cache lands in a temp file in the same directory and is
// atomically renamed over path, so a crash mid-save leaves either the old
// complete cache or the new complete cache — never a truncated file.
func (c *Client) SaveProtocolCache(path string) error {
	c.mu.Lock()
	out := persistedCache{
		EnvKey: envKey(c.cfg.Env),
		Apps:   map[string][]core.PADMeta{},
	}
	for app, pads := range c.protocolCache {
		out.Apps[app] = append([]core.PADMeta(nil), pads...)
	}
	c.mu.Unlock()
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("client: encoding protocol cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("client: writing protocol cache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := tmp.Chmod(0o600); err != nil {
		tmp.Close()
		return fmt.Errorf("client: writing protocol cache: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("client: writing protocol cache: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("client: syncing protocol cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("client: writing protocol cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("client: committing protocol cache: %w", err)
	}
	return nil
}

// LoadProtocolCache restores a saved protocol cache. Entries recorded
// under a different environment than the client's current one are
// discarded (the negotiation result is environment-specific). It returns
// the number of applications restored. A cache that does not parse —
// e.g. truncated by a crash predating the atomic-rename save — is
// treated as absent (0 restored, no error): the protocol cache is an
// optimization, and the client simply renegotiates.
func (c *Client) LoadProtocolCache(path string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("client: reading protocol cache: %w", err)
	}
	var in persistedCache
	if err := json.Unmarshal(raw, &in); err != nil {
		return 0, nil // corrupt/truncated: fall back to negotiation
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if in.EnvKey != envKey(c.cfg.Env) {
		return 0, nil // stale: recorded for a different environment
	}
	n := 0
	for app, pads := range in.Apps {
		if len(pads) == 0 {
			continue
		}
		ok := true
		for _, p := range pads {
			if p.Validate() != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		c.protocolCache[app] = pads
		n++
	}
	return n, nil
}
