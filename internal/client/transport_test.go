package client

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"fractal/internal/cdn"
	"fractal/internal/core"
	"fractal/internal/inp"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
)

// startPADServer publishes the builtin modules on a TCP PAD server.
func startPADServer(t *testing.T, idle time.Duration) (addr string, mods []*mobilecode.Module, shutdown func()) {
	t.Helper()
	signer, err := mobilecode.NewSigner("pad-operator")
	if err != nil {
		t.Fatal(err)
	}
	mods, err = mobilecode.BuildBuiltins("1.0", signer)
	if err != nil {
		t.Fatal(err)
	}
	store, err := cdn.NewOrigin(netsim.SharedServer{Name: "store", UplinkKbps: 1000, Rho: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mods {
		packed, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Publish("/pads/"+m.ID, packed); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := cdn.NewPADServer(store, 8, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if idle > 0 {
		srv.SetIdleTimeout(idle)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), mods, func() {
		_ = srv.Close()
		if err := <-done; err != nil {
			t.Errorf("pad server: %v", err)
		}
	}
}

func TestTCPPADFetcherRoundTrip(t *testing.T) {
	addr, mods, shutdown := startPADServer(t, 0)
	defer shutdown()
	f := &TCPPADFetcher{Addr: addr}
	want := mods[0]
	got, err := f.FetchPAD(core.PADMeta{ID: want.ID, URL: "/pads/" + want.ID})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := want.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, packed) {
		t.Fatal("fetched module bytes differ from published")
	}
	// URL defaulting from PAD id.
	if _, err := f.FetchPAD(core.PADMeta{ID: want.ID}); err != nil {
		t.Fatalf("fetch by id alone failed: %v", err)
	}
	// Missing PAD is an in-band error; session-level fetches still work.
	if _, err := f.FetchPAD(core.PADMeta{ID: "pad-ghost", URL: "/pads/pad-ghost"}); err == nil {
		t.Fatal("missing PAD fetched")
	}
	if _, err := f.FetchPAD(core.PADMeta{ID: want.ID, URL: "/pads/" + want.ID}); err != nil {
		t.Fatalf("fetch after error failed: %v", err)
	}
}

func TestTCPPADFetcherBadAddress(t *testing.T) {
	f := &TCPPADFetcher{Addr: "127.0.0.1:1"}
	if _, err := f.FetchPAD(core.PADMeta{ID: "x"}); err == nil {
		t.Fatal("fetch against dead address succeeded")
	}
}

func TestPADServerIdleTimeoutDropsSlowloris(t *testing.T) {
	addr, _, shutdown := startPADServer(t, 150*time.Millisecond)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the server must close the connection.
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if err == nil {
		t.Fatal("server kept an idle connection open past the timeout")
	}
	if strings.Contains(err.Error(), "i/o timeout") {
		t.Fatal("server never closed the idle connection (client read timed out)")
	}
}

func TestCDNFetcherRecordsRetrievals(t *testing.T) {
	topo, err := cdn.DefaultTopology(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Origin().Publish("/pads/x", bytes.Repeat([]byte("x"), 2048)); err != nil {
		t.Fatal(err)
	}
	f := &CDNFetcher{CDN: topo, Region: "region-0", Link: netsim.WLAN}
	if _, err := f.FetchPAD(core.PADMeta{ID: "x", URL: "/pads/x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.FetchPAD(core.PADMeta{ID: "x", URL: "/pads/x"}); err != nil {
		t.Fatal(err)
	}
	rs := f.Retrievals()
	if len(rs) != 2 {
		t.Fatalf("recorded %d retrievals, want 2", len(rs))
	}
	if rs[0].CacheHit || !rs[1].CacheHit {
		t.Fatalf("cache pattern = %v/%v, want miss then hit", rs[0].CacheHit, rs[1].CacheHit)
	}
}

func TestCDNFetcherSurvivesEdgeFailure(t *testing.T) {
	topo, err := cdn.DefaultTopology(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Origin().Publish("/pads/x", []byte("module")); err != nil {
		t.Fatal(err)
	}
	home, err := topo.EdgeFor("region-0")
	if err != nil {
		t.Fatal(err)
	}
	home.SetFailed(true)
	f := &CDNFetcher{CDN: topo, Region: "region-0", Link: netsim.WLAN}
	got, err := f.FetchPAD(core.PADMeta{ID: "x", URL: "/pads/x"})
	if err != nil {
		t.Fatalf("fetch with failed home edge: %v", err)
	}
	if string(got) != "module" {
		t.Fatal("failover fetched wrong bytes")
	}
	if f.Retrievals()[0].EdgeID == home.ID {
		t.Fatal("retrieval recorded against the failed edge")
	}
}

func TestLocalAppServerErrorPropagation(t *testing.T) {
	l := LocalAppServer{Encode: func([]string, string, int) ([]byte, int, string, error) {
		return nil, 0, "", net.ErrClosed
	}}
	if _, err := l.FetchContent(inp.AppReq{}); err == nil {
		t.Fatal("local server error swallowed")
	}
}

// startStallServer accepts one connection, signals once the request
// header has arrived, then swallows everything without ever replying —
// the pathological peer a session must survive.
func startStallServer(t *testing.T) (addr string, reqArrived chan struct{}) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	reqArrived = make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		hdr := make([]byte, 16)
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		close(reqArrived)
		_, _ = io.Copy(io.Discard, conn)
	}()
	return ln.Addr().String(), reqArrived
}

// TestAppSessionCloseUnblocksStalledCall is the regression test for the
// lock split: with a single mutex held across the INP round trip, a
// stalled server left Close and Broken parked behind the in-flight
// exchange forever. Now Broken answers while the call is mid-stall, and
// Close tears down the conn, which fails the blocked call promptly.
func TestAppSessionCloseUnblocksStalledCall(t *testing.T) {
	addr, reqArrived := startStallServer(t)
	s, err := DialApp(addr)
	if err != nil {
		t.Fatal(err)
	}
	callErr := make(chan error, 1)
	go func() {
		_, err := s.FetchContent(inp.AppReq{AppID: "webapp", Resource: "page-1"})
		callErr <- err
	}()
	select {
	case <-reqArrived:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the stall server")
	}

	brokenDone := make(chan bool, 1)
	go func() { brokenDone <- s.Broken() }()
	select {
	case b := <-brokenDone:
		if b {
			t.Error("session reported broken before any failure")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Broken() blocked behind a stalled exchange")
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close during stalled exchange: %v", err)
	}
	select {
	case err := <-callErr:
		if err == nil {
			t.Fatal("stalled FetchContent returned success after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the stalled FetchContent")
	}
}

// TestAppSessionUseAfterClose pins the closed-session contract: calls
// after Close fail with a "session closed" error (they must not redial
// and resurrect the session), and Close is idempotent.
func TestAppSessionUseAfterClose(t *testing.T) {
	addr, _ := startStallServer(t)
	s, err := DialApp(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = s.FetchContent(inp.AppReq{AppID: "webapp", Resource: "page-1"})
	if err == nil || !strings.Contains(err.Error(), "session closed") {
		t.Fatalf("FetchContent after Close = %v, want session-closed error", err)
	}
	if s.Redials() != 0 {
		t.Fatal("closed session redialed")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
