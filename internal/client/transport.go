package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"fractal/internal/cdn"
	"fractal/internal/core"
	"fractal/internal/inp"
	"fractal/internal/netsim"
)

// DialFunc opens a connection; it matches net.Dial so a faultnet.Dialer
// (or any other wrapper) can be injected in place of the real dialer.
type DialFunc func(network, addr string) (net.Conn, error)

// ErrSessionBroken marks an application session whose INP stream
// position is unknown (a mid-frame read error, timeout, or sequence
// violation desynchronized it). The session redials on the next call;
// ErrSessionBroken surfaces only when that redial fails too.
var ErrSessionBroken = errors.New("client: app session broken")

// dialBounded opens a TCP connection through the injected dialer if one
// is set, otherwise through net.DialTimeout (zero timeout = unbounded,
// the historical behaviour).
func dialBounded(dial DialFunc, timeout time.Duration, addr string) (net.Conn, error) {
	if dial != nil {
		return dial("tcp", addr)
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// TCPNegotiator performs the Figure 4 negotiation against a live
// adaptation proxy over INP/TCP. ClientID, when set, identifies the
// principal for the proxy's access-control policy. The zero timeouts
// reproduce the historical fair-weather behaviour (block forever);
// production configurations should set both.
type TCPNegotiator struct {
	Addr     string
	ClientID string
	// DialTimeout bounds the TCP dial; zero means no bound.
	DialTimeout time.Duration
	// CallTimeout bounds every individual read and write of the
	// negotiation exchange; zero means no bound.
	CallTimeout time.Duration
	// Dial, when set, replaces the real dialer (fault injection, SOCKS,
	// in-process transports). DialTimeout is then the dialer's concern.
	Dial DialFunc
}

// Negotiate implements Negotiator.
func (t *TCPNegotiator) Negotiate(appID string, env core.Env, sessionRequests int) ([]core.PADMeta, error) {
	conn, err := dialBounded(t.Dial, t.DialTimeout, t.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing proxy %s: %w", t.Addr, err)
	}
	defer conn.Close()
	c := inp.NewConn(conn)
	c.SetTimeout(t.CallTimeout)
	// Pipelined burst: INIT_REQ and CLI_META_REP leave in one write. The
	// wire still carries Figure 4's messages in order — the client just
	// does not wait for the CLI_META_REQ template before sending the
	// metadata it has already probed ("the client gets the content of
	// DevMeta and NtwkMeta locally"; here, the configured environment). A
	// fast-path proxy answers all three replies in one vectored write; a
	// classic proxy simply finds CLI_META_REP already buffered when it
	// asks for it.
	// WireVersion advertises the binary fast path: a new proxy answers all
	// three replies as Version2 binary frames, an old one ignores the field.
	if err := c.Queue(inp.MsgInitReq,
		inp.InitReq{AppID: appID, ClientID: t.ClientID, WireVersion: inp.Version2}); err != nil {
		return nil, fmt.Errorf("client: INIT exchange: %w", err)
	}
	if err := c.Queue(inp.MsgCliMetaRep,
		inp.CliMetaRep{Dev: env.Dev, Ntwk: env.Ntwk, SessionRequests: sessionRequests}); err != nil {
		return nil, fmt.Errorf("client: metadata exchange: %w", err)
	}
	if err := c.Flush(); err != nil {
		return nil, fmt.Errorf("client: INIT exchange: %w", err)
	}
	var initRep inp.InitRep
	if err := c.RecvInto(inp.MsgInitRep, &initRep); err != nil {
		return nil, fmt.Errorf("client: INIT exchange: %w", err)
	}
	if !initRep.OK {
		return nil, fmt.Errorf("client: proxy refused negotiation: %s", initRep.Reason)
	}
	var tmpl inp.CliMetaReq
	if err := c.RecvInto(inp.MsgCliMetaReq, &tmpl); err != nil {
		return nil, fmt.Errorf("client: CLI_META_REQ: %w", err)
	}
	var rep inp.PADMetaRep
	if err := c.RecvInto(inp.MsgPADMetaRep, &rep); err != nil {
		return nil, fmt.Errorf("client: metadata exchange: %w", err)
	}
	return rep.PADs, nil
}

// CDNFetcher downloads PAD modules from the simulated CDN, recording
// simulated retrieval times.
type CDNFetcher struct {
	CDN    *cdn.CDN
	Region string
	Link   netsim.Link
	// Concurrent models how many simultaneous downloads share the edge.
	Concurrent int

	mu        sync.Mutex
	lastTimes []cdn.Retrieval
}

// FetchPAD implements PADFetcher via the closest edgeserver.
func (f *CDNFetcher) FetchPAD(meta core.PADMeta) ([]byte, error) {
	conc := f.Concurrent
	if conc < 1 {
		conc = 1
	}
	r, err := f.CDN.Retrieve(f.Region, meta.URL, f.Link, conc)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.lastTimes = append(f.lastTimes, r)
	f.mu.Unlock()
	return r.Data, nil
}

// Retrievals returns the accumulated retrieval records.
func (f *CDNFetcher) Retrievals() []cdn.Retrieval {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]cdn.Retrieval(nil), f.lastTimes...)
}

// TCPPADFetcher downloads PAD modules from a PAD server (edgeserver or
// centralized) over INP/TCP, one connection per download.
type TCPPADFetcher struct {
	Addr string
	// DialTimeout bounds the TCP dial; zero means no bound.
	DialTimeout time.Duration
	// CallTimeout bounds each read/write of the download; zero means no
	// bound.
	CallTimeout time.Duration
	// Dial, when set, replaces the real dialer.
	Dial DialFunc
}

// FetchPAD implements PADFetcher.
func (f *TCPPADFetcher) FetchPAD(meta core.PADMeta) ([]byte, error) {
	conn, err := dialBounded(f.Dial, f.DialTimeout, f.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing PAD server %s: %w", f.Addr, err)
	}
	defer conn.Close()
	c := inp.NewConn(conn)
	c.SetTimeout(f.CallTimeout)
	var rep inp.PADDownloadRep
	// WireVersion advertises the binary fast path; a new PAD server ships
	// the module raw instead of base64-in-JSON, an old one ignores it.
	err = c.Call(inp.MsgPADDownloadReq,
		&inp.PADDownloadReq{PADID: meta.ID, URL: meta.URL, WireVersion: inp.Version2},
		inp.MsgPADDownloadRep, &rep)
	if err != nil {
		return nil, fmt.Errorf("client: downloading %s: %w", meta.ID, err)
	}
	if rep.PADID != meta.ID {
		return nil, fmt.Errorf("client: PAD server returned %s, requested %s", rep.PADID, meta.ID)
	}
	return rep.Module, nil
}

// SessionConfig bounds a TCPAppSession's I/O. The zero value reproduces
// the historical unbounded behaviour.
type SessionConfig struct {
	// DialTimeout bounds the TCP dial (and each redial); zero = none.
	DialTimeout time.Duration
	// CallTimeout bounds each read/write of a content exchange; zero =
	// none.
	CallTimeout time.Duration
	// Dial, when set, replaces the real dialer.
	Dial DialFunc
}

// TCPAppSession is a persistent APP_REQ/APP_REP session with the
// application server over INP/TCP. After a transport-level failure the
// stream position is unknown, so the session marks itself broken and
// transparently redials on the next call rather than reading garbage
// from a half-consumed stream. TCPAppSession is safe for concurrent use.
//
// Two locks split the two jobs the old single mutex conflated. sessMu
// serializes content exchanges: an INP stream is a strict request/reply
// sequence, so exchanges must not interleave, and sessMu is therefore —
// deliberately — held across network I/O. mu guards only the state fields
// (conn, c, broken, closed, redials) and is never held across I/O, so
// Close and Broken stay responsive while a peer stalls mid-exchange;
// Close tears down the live conn, which unblocks the in-flight Call.
type TCPAppSession struct {
	addr string
	cfg  SessionConfig

	// sessMu is the exchange lock (see type comment); acquired before mu,
	// never the other way around.
	sessMu sync.Mutex

	mu      sync.Mutex
	conn    net.Conn
	c       *inp.Conn
	broken  bool
	closed  bool
	redials int64
}

// DialApp opens an application session with unbounded I/O.
func DialApp(addr string) (*TCPAppSession, error) {
	return DialAppSession(addr, SessionConfig{})
}

// DialAppSession opens an application session with the given bounds.
func DialAppSession(addr string, cfg SessionConfig) (*TCPAppSession, error) {
	s := &TCPAppSession{addr: addr, cfg: cfg}
	conn, c, err := s.dial()
	if err != nil {
		return nil, err
	}
	s.conn, s.c = conn, c
	return s, nil
}

// dial establishes a fresh connection. It takes no locks: dialing can
// block for the full dial timeout, and holding either lock across it
// would park Close behind an unresponsive network.
func (s *TCPAppSession) dial() (net.Conn, *inp.Conn, error) {
	conn, err := dialBounded(s.cfg.Dial, s.cfg.DialTimeout, s.addr)
	if err != nil {
		return nil, nil, fmt.Errorf("client: dialing application server %s: %w", s.addr, err)
	}
	c := inp.NewConn(conn)
	c.SetTimeout(s.cfg.CallTimeout)
	return conn, c, nil
}

// FetchContent implements ContentFetcher. An in-band peer error (the
// server answered MsgError) leaves the stream framed and the session
// healthy; any transport-level failure breaks the session, and the next
// call redials before retrying.
func (s *TCPAppSession) FetchContent(req inp.AppReq) (inp.AppRep, error) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()

	s.mu.Lock()
	closed, broken := s.closed, s.broken
	s.mu.Unlock()
	if closed {
		return inp.AppRep{}, fmt.Errorf("client: app session to %s: session closed", s.addr)
	}
	if broken {
		if old := s.swapConn(nil, nil); old != nil {
			_ = old.Close() // drop the dead conn before redialing
		}
		// sessMu serializes the whole exchange including its redial; Close
		// takes only mu, so it is never parked behind the dial timeout.
		//fractal:allow lockheld redial is part of the serialized exchange; Close takes only mu
		conn, c, err := s.dial()
		if err != nil {
			return inp.AppRep{}, fmt.Errorf("%w; redial failed: %w", ErrSessionBroken, err)
		}
		s.mu.Lock()
		if s.closed {
			// Close won the race while we were dialing: do not resurrect.
			s.mu.Unlock()
			_ = conn.Close()
			return inp.AppRep{}, fmt.Errorf("client: app session to %s: session closed", s.addr)
		}
		s.conn, s.c = conn, c
		s.broken = false
		s.redials++
		s.mu.Unlock()
	}

	s.mu.Lock()
	conn, c := s.conn, s.c
	s.mu.Unlock()
	if c == nil {
		return inp.AppRep{}, fmt.Errorf("client: app session to %s: session closed", s.addr)
	}

	var rep inp.AppRep
	// Advertise the binary fast path; after the server's first Version2
	// reply the session's own requests upgrade to binary automatically.
	req.WireVersion = inp.Version2
	// sessMu (and only sessMu) is held across this round trip: it is the
	// exchange-serialization lock, and Close can still interrupt the call
	// by closing conn under mu.
	//fractal:allow lockheld sessMu deliberately serializes the INP exchange; Close interrupts via conn.Close
	if err := c.Call(inp.MsgAppReq, &req, inp.MsgAppRep, &rep); err != nil {
		var pe *inp.PeerError
		if !errors.As(err, &pe) {
			s.mu.Lock()
			s.broken = true
			s.mu.Unlock()
			_ = conn.Close()
			return inp.AppRep{}, fmt.Errorf("client: app session to %s: %w: %w", s.addr, ErrSessionBroken, err)
		}
		return inp.AppRep{}, err
	}
	return rep, nil
}

// swapConn installs a new connection pair under mu, returning the
// previous net.Conn (nil if none).
func (s *TCPAppSession) swapConn(conn net.Conn, c *inp.Conn) net.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.conn
	s.conn, s.c = conn, c
	return prev
}

// Broken reports whether the next call will have to redial. It does not
// wait for an in-flight exchange.
func (s *TCPAppSession) Broken() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.broken
}

// Redials reports how many times the session recovered by redialing.
func (s *TCPAppSession) Redials() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.redials
}

// Close ends the session. It does not wait for an in-flight exchange:
// closing the connection forces any blocked Call to fail promptly.
func (s *TCPAppSession) Close() error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	conn := s.conn
	s.conn, s.c = nil, nil
	s.mu.Unlock()
	if alreadyClosed || conn == nil {
		return nil
	}
	return conn.Close()
}

// LocalAppServer adapts an in-process application server to the
// ContentFetcher interface for simulation and tests.
type LocalAppServer struct {
	Encode func(padIDs []string, resource string, haveVersion int) (payload []byte, version int, padID string, err error)
}

// FetchContent implements ContentFetcher.
func (l LocalAppServer) FetchContent(req inp.AppReq) (inp.AppRep, error) {
	payload, version, padID, err := l.Encode(req.ProtocolIDs, req.Resource, req.HaveVersion)
	if err != nil {
		return inp.AppRep{}, err
	}
	return inp.AppRep{Resource: req.Resource, Version: version, PADID: padID, Payload: payload}, nil
}
