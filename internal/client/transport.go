package client

import (
	"fmt"
	"net"
	"sync"

	"fractal/internal/cdn"
	"fractal/internal/core"
	"fractal/internal/inp"
	"fractal/internal/netsim"
)

// TCPNegotiator performs the Figure 4 negotiation against a live
// adaptation proxy over INP/TCP. ClientID, when set, identifies the
// principal for the proxy's access-control policy.
type TCPNegotiator struct {
	Addr     string
	ClientID string
}

// Negotiate implements Negotiator.
func (t *TCPNegotiator) Negotiate(appID string, env core.Env, sessionRequests int) ([]core.PADMeta, error) {
	conn, err := net.Dial("tcp", t.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing proxy %s: %w", t.Addr, err)
	}
	defer conn.Close()
	c := inp.NewConn(conn)
	var initRep inp.InitRep
	if err := c.Call(inp.MsgInitReq, inp.InitReq{AppID: appID, ClientID: t.ClientID}, inp.MsgInitRep, &initRep); err != nil {
		return nil, fmt.Errorf("client: INIT exchange: %w", err)
	}
	if !initRep.OK {
		return nil, fmt.Errorf("client: proxy refused negotiation: %s", initRep.Reason)
	}
	var tmpl inp.CliMetaReq
	if err := c.RecvInto(inp.MsgCliMetaReq, &tmpl); err != nil {
		return nil, fmt.Errorf("client: CLI_META_REQ: %w", err)
	}
	// "The client gets the content of DevMeta and NtwkMeta locally by
	// probing the system" — here the probe is the configured environment.
	var rep inp.PADMetaRep
	err = c.Call(inp.MsgCliMetaRep,
		inp.CliMetaRep{Dev: env.Dev, Ntwk: env.Ntwk, SessionRequests: sessionRequests},
		inp.MsgPADMetaRep, &rep)
	if err != nil {
		return nil, fmt.Errorf("client: metadata exchange: %w", err)
	}
	return rep.PADs, nil
}

// CDNFetcher downloads PAD modules from the simulated CDN, recording
// simulated retrieval times.
type CDNFetcher struct {
	CDN    *cdn.CDN
	Region string
	Link   netsim.Link
	// Concurrent models how many simultaneous downloads share the edge.
	Concurrent int

	mu        sync.Mutex
	lastTimes []cdn.Retrieval
}

// FetchPAD implements PADFetcher via the closest edgeserver.
func (f *CDNFetcher) FetchPAD(meta core.PADMeta) ([]byte, error) {
	conc := f.Concurrent
	if conc < 1 {
		conc = 1
	}
	r, err := f.CDN.Retrieve(f.Region, meta.URL, f.Link, conc)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.lastTimes = append(f.lastTimes, r)
	f.mu.Unlock()
	return r.Data, nil
}

// Retrievals returns the accumulated retrieval records.
func (f *CDNFetcher) Retrievals() []cdn.Retrieval {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]cdn.Retrieval(nil), f.lastTimes...)
}

// TCPPADFetcher downloads PAD modules from a PAD server (edgeserver or
// centralized) over INP/TCP, one connection per download.
type TCPPADFetcher struct {
	Addr string
}

// FetchPAD implements PADFetcher.
func (f *TCPPADFetcher) FetchPAD(meta core.PADMeta) ([]byte, error) {
	conn, err := net.Dial("tcp", f.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing PAD server %s: %w", f.Addr, err)
	}
	defer conn.Close()
	c := inp.NewConn(conn)
	var rep inp.PADDownloadRep
	err = c.Call(inp.MsgPADDownloadReq,
		inp.PADDownloadReq{PADID: meta.ID, URL: meta.URL},
		inp.MsgPADDownloadRep, &rep)
	if err != nil {
		return nil, fmt.Errorf("client: downloading %s: %w", meta.ID, err)
	}
	if rep.PADID != meta.ID {
		return nil, fmt.Errorf("client: PAD server returned %s, requested %s", rep.PADID, meta.ID)
	}
	return rep.Module, nil
}

// TCPAppSession is a persistent APP_REQ/APP_REP session with the
// application server over INP/TCP.
type TCPAppSession struct {
	mu   sync.Mutex
	conn net.Conn
	c    *inp.Conn
}

// DialApp opens an application session.
func DialApp(addr string) (*TCPAppSession, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing application server %s: %w", addr, err)
	}
	return &TCPAppSession{conn: conn, c: inp.NewConn(conn)}, nil
}

// FetchContent implements ContentFetcher.
func (s *TCPAppSession) FetchContent(req inp.AppReq) (inp.AppRep, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep inp.AppRep
	if err := s.c.Call(inp.MsgAppReq, req, inp.MsgAppRep, &rep); err != nil {
		return inp.AppRep{}, err
	}
	return rep, nil
}

// Close ends the session.
func (s *TCPAppSession) Close() error { return s.conn.Close() }

// LocalAppServer adapts an in-process application server to the
// ContentFetcher interface for simulation and tests.
type LocalAppServer struct {
	Encode func(padIDs []string, resource string, haveVersion int) (payload []byte, version int, padID string, err error)
}

// FetchContent implements ContentFetcher.
func (l LocalAppServer) FetchContent(req inp.AppReq) (inp.AppRep, error) {
	payload, version, padID, err := l.Encode(req.ProtocolIDs, req.Resource, req.HaveVersion)
	if err != nil {
		return inp.AppRep{}, err
	}
	return inp.AppRep{Resource: req.Resource, Version: version, PADID: padID, Payload: payload}, nil
}
