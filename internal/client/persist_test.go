package client

import (
	"os"
	"path/filepath"
	"testing"

	"fractal/internal/netsim"
)

func TestProbeEnv(t *testing.T) {
	env, err := ProbeEnv("LAN", 100000)
	if err != nil {
		t.Fatal(err)
	}
	if env.Dev.CPUMHz <= 0 || env.Dev.MemMB <= 0 {
		t.Fatalf("probe produced %+v", env.Dev)
	}
	if env.Dev.OSType == "" || env.Dev.CPUType == "" {
		t.Fatalf("probe missing identity: %+v", env.Dev)
	}
	if _, err := ProbeEnv("", 1000); err == nil {
		t.Error("empty network type accepted")
	}
	if _, err := ProbeEnv("LAN", 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestCPUAndMemParsers(t *testing.T) {
	dir := t.TempDir()
	cpuinfo := filepath.Join(dir, "cpuinfo")
	if err := os.WriteFile(cpuinfo, []byte("processor : 0\ncpu MHz : 2100.123\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := cpuMHzFromProc(cpuinfo); got != 2100.123 {
		t.Fatalf("cpu MHz = %v", got)
	}
	if got := cpuMHzFromProc(filepath.Join(dir, "absent")); got != 0 {
		t.Fatalf("missing file cpu MHz = %v", got)
	}
	meminfo := filepath.Join(dir, "meminfo")
	if err := os.WriteFile(meminfo, []byte("MemTotal: 2097152 kB\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := memMBFromProc(meminfo); got != 2048 {
		t.Fatalf("mem MB = %v", got)
	}
	if got := memMBFromProc(filepath.Join(dir, "absent")); got != 0 {
		t.Fatalf("missing file mem = %v", got)
	}
}

func TestProtocolCachePersistence(t *testing.T) {
	w := buildWorld(t)
	path := filepath.Join(t.TempDir(), "protocols.json")

	first, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.EnsureProtocol("webapp"); err != nil {
		t.Fatal(err)
	}
	if err := first.SaveProtocolCache(path); err != nil {
		t.Fatal(err)
	}

	// A fresh client on the same device restores the cache and never
	// negotiates — but still downloads + verifies the modules.
	second, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	n, err := second.LoadProtocolCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d apps, want 1", n)
	}
	if _, err := second.Request("webapp", "page-000"); err != nil {
		t.Fatal(err)
	}
	st := second.Stats()
	if st.Negotiations != 0 {
		t.Fatalf("restored client negotiated %d times, want 0", st.Negotiations)
	}
	if st.PADDownloads == 0 {
		t.Fatal("restored client deployed nothing")
	}

	// A client in a different environment must ignore the stale cache.
	other, err := New(desktopConfig(w.trust), w.proxy, w.fetcher("region-1", netsim.LAN), w.local())
	if err != nil {
		t.Fatal(err)
	}
	n, err = other.LoadProtocolCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("different-env client restored %d apps, want 0", n)
	}
}

func TestLoadProtocolCacheErrors(t *testing.T) {
	w := buildWorld(t)
	c, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadProtocolCache(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("missing cache file accepted")
	}
	// A cache that does not parse (e.g. truncated by a crash) is treated
	// as absent, not fatal: the client restores nothing and renegotiates.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := c.LoadProtocolCache(bad)
	if err != nil {
		t.Errorf("corrupt cache errored: %v", err)
	}
	if n != 0 {
		t.Errorf("corrupt cache restored %d apps, want 0", n)
	}
}

// TestSaveProtocolCacheCrashSafety is the regression test for the
// non-atomic save: a truncated cache (the observable crash artifact of
// the old in-place WriteFile) must not poison a later session, and a
// successful save must be all-or-nothing via temp-file + rename.
func TestSaveProtocolCacheCrashSafety(t *testing.T) {
	w := buildWorld(t)
	path := filepath.Join(t.TempDir(), "protocols.json")

	first, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.EnsureProtocol("webapp"); err != nil {
		t.Fatal(err)
	}
	if err := first.SaveProtocolCache(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// No temp residue next to the committed cache.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("save left %d files in cache dir, want 1", len(entries))
	}

	// Simulate a crash mid-write under the OLD scheme: the file holds a
	// prefix of the JSON. A fresh client must shrug it off and negotiate.
	if err := os.WriteFile(path, good[:len(good)/2], 0o600); err != nil {
		t.Fatal(err)
	}
	second, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	n, err := second.LoadProtocolCache(path)
	if err != nil {
		t.Fatalf("truncated cache errored: %v", err)
	}
	if n != 0 {
		t.Fatalf("truncated cache restored %d apps, want 0", n)
	}
	if _, err := second.Request("webapp", "page-000"); err != nil {
		t.Fatal(err)
	}
	if second.Stats().Negotiations != 1 {
		t.Fatalf("negotiations = %d, want 1 after discarding truncated cache", second.Stats().Negotiations)
	}

	// Re-saving over the truncated file restores a complete cache.
	if err := second.SaveProtocolCache(path); err != nil {
		t.Fatal(err)
	}
	third, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := third.LoadProtocolCache(path); err != nil || n != 1 {
		t.Fatalf("re-saved cache restored (%d, %v), want (1, nil)", n, err)
	}
}

func TestStaleCacheFallsBackToNegotiation(t *testing.T) {
	w := buildWorld(t)
	path := filepath.Join(t.TempDir(), "protocols.json")
	c, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnsureProtocol("webapp"); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveProtocolCache(path); err != nil {
		t.Fatal(err)
	}
	// Republish a different module under the negotiated PAD's URL: the
	// cached digest no longer matches, so the restored client must fall
	// back to a fresh negotiation (which returns updated metadata).
	app2 := w.app
	appMeta, err := app2.MeasureAppMeta(4)
	if err != nil {
		t.Fatal(err)
	}
	_ = appMeta
	fresh, err := New(pdaConfig(w.trust), w.proxy, w.fetcher("region-0", netsim.Bluetooth), w.local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.LoadProtocolCache(path); err != nil {
		t.Fatal(err)
	}
	// Corrupt the cached digest to simulate a module rollover.
	fresh.mu.Lock()
	pads := fresh.protocolCache["webapp"]
	pads[0].Digest[0] ^= 0xFF
	fresh.mu.Unlock()
	if _, err := fresh.EnsureProtocol("webapp"); err != nil {
		t.Fatalf("stale cache did not fall back to negotiation: %v", err)
	}
	if fresh.Stats().Negotiations != 1 {
		t.Fatalf("negotiations = %d, want 1 (fallback)", fresh.Stats().Negotiations)
	}
}
