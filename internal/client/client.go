// Package client implements a Fractal client host: it probes its own
// environment metadata, negotiates with the adaptation proxy (keeping the
// paper's client-side protocol cache), retrieves PAD modules from the CDN,
// performs the security checks (digest + code signing) before sandboxed
// deployment, and then runs application sessions using the negotiated
// protocol.
package client

import (
	"errors"
	"fmt"
	"sync"

	"fractal/internal/codec"
	"fractal/internal/core"
	"fractal/internal/inp"
	"fractal/internal/mobilecode"
	"fractal/internal/mobilecode/verify"
	"fractal/internal/syncx"
)

// Negotiator reaches an adaptation proxy. *proxy.Proxy satisfies this for
// in-process wiring; TCPNegotiator implements it over INP.
type Negotiator interface {
	Negotiate(appID string, env core.Env, sessionRequests int) ([]core.PADMeta, error)
}

// PADFetcher retrieves a packed PAD module, normally from the closest CDN
// edgeserver.
type PADFetcher interface {
	FetchPAD(meta core.PADMeta) ([]byte, error)
}

// ContentFetcher performs APP_REQ/APP_REP exchanges with the application
// server.
type ContentFetcher interface {
	FetchContent(req inp.AppReq) (inp.AppRep, error)
}

// Config parameterizes a client host.
type Config struct {
	Env             core.Env
	SessionRequests int
	Trust           *mobilecode.TrustList
	Sandbox         mobilecode.Sandbox
	// FallbackDirect, when set, is a packed Direct-protocol PAD module the
	// client holds locally (shipped with the host). If negotiation or PAD
	// deployment ultimately fails, the client degrades to this module —
	// after the same security checks as any downloaded PAD — instead of
	// failing the session. Nil disables degradation.
	FallbackDirect []byte
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Env.Validate(); err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if c.SessionRequests < 1 {
		return fmt.Errorf("client: session must expect >= 1 request, got %d", c.SessionRequests)
	}
	if c.Trust == nil {
		return fmt.Errorf("client: needs a trust list")
	}
	return c.Sandbox.Validate()
}

// Stats counts client-side activity.
type Stats struct {
	Negotiations       int64
	ProtocolCacheHits  int64
	PADDownloads       int64
	PADDownloadBytes   int64
	Requests           int64
	PayloadBytes       int64
	ContentBytes       int64
	SecurityRejections int64
	// VerifierRejections counts the subset of SecurityRejections where the
	// static bytecode verifier — not the digest or signature check —
	// rejected a module: the code's provenance was fine but its programs
	// could not be proven safe to execute.
	VerifierRejections int64
	// CollapsedNegotiations counts EnsureProtocol callers that joined an
	// in-flight negotiation for the same application instead of opening a
	// duplicate one (cold-start stampede collapse).
	CollapsedNegotiations int64
	// Degradations counts sessions that fell back to the local Direct
	// module after the adaptation plane failed.
	Degradations int64
	// StaleVersionDrops counts replies whose version did not advance the
	// held one and were therefore not committed to the content cache.
	StaleVersionDrops int64
}

// contentEntry is the cached newest version of a resource.
type contentEntry struct {
	version int
	data    []byte
}

// Client is one Fractal client host. Client is safe for concurrent use:
// the protocol cache, deployed PADs, content versions, and stats are all
// guarded by one mutex, so concurrent fetches from multiple goroutines
// are race-free.
type Client struct {
	cfg     Config
	neg     Negotiator
	pads    PADFetcher
	content ContentFetcher
	loader  *mobilecode.Loader

	// negFlight collapses concurrent cold-start negotiations per appID:
	// one leader negotiates and deploys, stampeding callers share its
	// result instead of opening duplicate proxy exchanges.
	negFlight syncx.Group[[]core.PADMeta]

	mu sync.Mutex
	// protocolCache is the paper's client-side protocol cache: PADMeta
	// saved from previous negotiations keyed by application id.
	protocolCache map[string][]core.PADMeta
	deployed      map[string]*mobilecode.DeployedPAD
	versions      map[string]contentEntry
	stats         Stats
}

// New wires a client to its three peers.
func New(cfg Config, neg Negotiator, pads PADFetcher, content ContentFetcher) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if neg == nil || pads == nil || content == nil {
		return nil, fmt.Errorf("client: negotiator, PAD fetcher, and content fetcher are all required")
	}
	loader, err := mobilecode.NewLoader(cfg.Trust, cfg.Sandbox)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	loader.SetVerifier(verify.LoaderVerifier())
	return &Client{
		cfg: cfg, neg: neg, pads: pads, content: content, loader: loader,
		protocolCache: map[string][]core.PADMeta{},
		deployed:      map[string]*mobilecode.DeployedPAD{},
		versions:      map[string]contentEntry{},
	}, nil
}

// EnsureProtocol makes sure the client holds deployed PADs for an
// application: first the local protocol cache, then negotiation, CDN
// download, security checks, and sandbox deployment.
func (c *Client) EnsureProtocol(appID string) ([]core.PADMeta, error) {
	c.mu.Lock()
	cached, hasCached := c.protocolCache[appID]
	c.mu.Unlock()
	if hasCached {
		// Deploy any PADs missing locally (e.g. a cache restored from
		// disk) without renegotiating; only if deployment fails — say the
		// published modules changed — fall through to a fresh negotiation.
		ok := true
		for _, m := range cached {
			if err := c.deployPAD(m); err != nil {
				ok = false
				break
			}
		}
		if ok {
			c.mu.Lock()
			c.stats.ProtocolCacheHits++
			c.mu.Unlock()
			return cached, nil
		}
	}

	// Cold start: collapse concurrent negotiations for the same app into
	// one proxy exchange. The leader runs the full negotiate → download →
	// deploy → cache pipeline (degrading if it fails); joined callers
	// share its outcome.
	pads, err, joined := c.negFlight.Do(appID, func() ([]core.PADMeta, error) {
		return c.negotiateAndDeploy(appID)
	})
	if joined {
		c.mu.Lock()
		c.stats.CollapsedNegotiations++
		c.mu.Unlock()
	}
	return pads, err
}

// negotiateAndDeploy is the cold-start pipeline run by a singleflight
// leader: negotiate with the proxy, deploy every returned PAD, and cache
// the result. If any step ultimately fails (after whatever retries the
// configured Negotiator and PADFetcher perform) it degrades to the local
// Direct fallback module rather than failing the session outright.
func (c *Client) negotiateAndDeploy(appID string) ([]core.PADMeta, error) {
	pads, err := c.neg.Negotiate(appID, c.cfg.Env, c.cfg.SessionRequests)
	if err != nil {
		return c.degrade(appID, fmt.Errorf("client: negotiation: %w", err))
	}
	c.mu.Lock()
	c.stats.Negotiations++
	c.mu.Unlock()
	if len(pads) == 0 {
		return c.degrade(appID, fmt.Errorf("client: proxy returned no PADs for %s", appID))
	}
	for _, meta := range pads {
		if err := c.deployPAD(meta); err != nil {
			return c.degrade(appID, err)
		}
	}
	c.mu.Lock()
	c.protocolCache[appID] = pads
	c.mu.Unlock()
	return pads, nil
}

// degrade falls back to the locally shipped Direct module after the
// adaptation plane failed with cause. The fallback passes the same
// security checks (signature + sandbox limits) as a downloaded PAD; if it
// cannot be deployed, or no fallback is configured, cause is surfaced.
func (c *Client) degrade(appID string, cause error) ([]core.PADMeta, error) {
	if len(c.cfg.FallbackDirect) == 0 {
		return nil, cause
	}
	pad, err := c.loader.Load(c.cfg.FallbackDirect)
	if err != nil {
		c.noteSecurityRejection(err)
		return nil, fmt.Errorf("%w (and fallback module failed security checks: %v)", cause, err)
	}
	meta := core.PADMeta{
		ID:       pad.ID(),
		Version:  pad.Module().Version,
		Protocol: pad.Name(),
		Size:     pad.Module().Size(),
		Digest:   pad.Module().Digest,
	}
	pads := []core.PADMeta{meta}
	c.mu.Lock()
	if _, live := c.deployed[meta.ID]; !live {
		c.deployed[meta.ID] = pad
	}
	c.protocolCache[appID] = pads
	c.stats.Degradations++
	c.mu.Unlock()
	return pads, nil
}

// noteSecurityRejection counts a deploy-pipeline failure. Every failure is
// a security rejection; ones originating in the static bytecode verifier —
// good provenance, unprovable safety — are additionally counted as
// verifier rejections.
func (c *Client) noteSecurityRejection(err error) {
	c.mu.Lock()
	c.stats.SecurityRejections++
	var vErr *verify.Error
	if errors.As(err, &vErr) {
		c.stats.VerifierRejections++
	}
	c.mu.Unlock()
}

// deployPAD downloads, verifies, and deploys one PAD unless it is already
// live.
func (c *Client) deployPAD(meta core.PADMeta) error {
	c.mu.Lock()
	_, live := c.deployed[meta.ID]
	c.mu.Unlock()
	if live {
		return nil
	}
	packed, err := c.pads.FetchPAD(meta)
	if err != nil {
		return fmt.Errorf("client: downloading PAD %s: %w", meta.ID, err)
	}
	pad, err := c.loader.Load(packed)
	if err != nil {
		c.noteSecurityRejection(err)
		return fmt.Errorf("client: PAD %s failed security checks: %w", meta.ID, err)
	}
	// Bind the downloaded module to the negotiated metadata: the digest
	// the proxy advertised must match the module we actually received.
	if !mobilecode.DigestEqual(pad.Module().Digest, meta.Digest) {
		c.mu.Lock()
		c.stats.SecurityRejections++
		c.mu.Unlock()
		return fmt.Errorf("client: PAD %s digest does not match negotiated metadata", meta.ID)
	}
	c.mu.Lock()
	c.deployed[meta.ID] = pad
	c.stats.PADDownloads++
	c.stats.PADDownloadBytes += int64(len(packed))
	c.mu.Unlock()
	return nil
}

// Request fetches a resource through the negotiated protocol, decoding the
// adapted payload with the deployed mobile code and updating the local
// version cache so later requests are differential.
func (c *Client) Request(appID, resource string) ([]byte, error) {
	pads, err := c.EnsureProtocol(appID)
	if err != nil {
		return nil, err
	}
	ids := make([]string, len(pads))
	for i, m := range pads {
		ids[i] = m.ID
	}
	c.mu.Lock()
	have := c.versions[resource]
	c.mu.Unlock()

	rep, err := c.content.FetchContent(inp.AppReq{
		AppID:       appID,
		Resource:    resource,
		ProtocolIDs: ids,
		HaveVersion: have.version,
	})
	if err != nil {
		return nil, fmt.Errorf("client: app request for %s: %w", resource, err)
	}
	c.mu.Lock()
	pad, ok := c.deployed[rep.PADID]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("client: server encoded %s with undeployed PAD %s", resource, rep.PADID)
	}
	data, err := pad.Decode(have.data, rep.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: decoding %s via %s: %w", resource, rep.PADID, err)
	}
	c.mu.Lock()
	// Only commit when the reply advances the held version: a concurrent
	// request may have already cached a newer version, and overwriting it
	// with this (older) one would silently regress the cache — later
	// differential requests would then claim a base version the client no
	// longer holds the newest data for.
	if cur := c.versions[resource]; rep.Version > cur.version {
		c.versions[resource] = contentEntry{version: rep.Version, data: data}
	} else {
		c.stats.StaleVersionDrops++
	}
	c.stats.Requests++
	c.stats.PayloadBytes += int64(len(rep.Payload))
	c.stats.ContentBytes += int64(len(data))
	c.mu.Unlock()
	return data, nil
}

// DecodeCacheStats sums the chunk-index cache counters of every deployed
// PAD: the hot-path engine's client-side effect. On a session issuing
// differential requests against held versions, Hits grows with every
// request after the first touch of a version.
func (c *Client) DecodeCacheStats() codec.ChunkCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total codec.ChunkCacheStats
	for _, pad := range c.deployed {
		st := pad.ChunkCacheStats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Entries += st.Entries
	}
	return total
}

// HeldVersion reports which version of a resource the client caches.
func (c *Client) HeldVersion(resource string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.versions[resource].version
}

// Forget drops the cached content for a resource (e.g. evicted storage),
// forcing the next request to be a cold start.
func (c *Client) Forget(resource string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.versions, resource)
}

// DropProtocols clears the protocol cache (but not deployed PADs), forcing
// renegotiation — used when the client's environment changes, e.g. the
// roaming scenario.
func (c *Client) DropProtocols() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.protocolCache = map[string][]core.PADMeta{}
}

// SetEnv updates the client's environment metadata (device switch or
// network handoff) and clears the protocol cache so the next request
// renegotiates.
func (c *Client) SetEnv(env core.Env) error {
	if err := env.Validate(); err != nil {
		return fmt.Errorf("client: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.Env = env
	c.protocolCache = map[string][]core.PADMeta{}
	return nil
}

// Env returns the client's current environment metadata.
func (c *Client) Env() core.Env {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Env
}

// Stats returns a snapshot of client counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
