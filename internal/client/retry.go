package client

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fractal/internal/core"
)

// RetryPolicy parameterizes capped jittered exponential backoff: retry n
// waits base·2^(n-1) capped at MaxDelay, with the top Jitter fraction of
// that wait randomized from a seeded generator so stampeding clients
// decorrelate reproducibly.
type RetryPolicy struct {
	// Attempts is the total number of tries (first call included); must
	// be >= 1.
	Attempts int
	// BaseDelay is the wait before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; zero means uncapped.
	MaxDelay time.Duration
	// Jitter in [0,1] is the fraction of each wait drawn uniformly at
	// random (0 = fully deterministic waits).
	Jitter float64
}

// DefaultRetryPolicy suits interactive clients: three tries, 50ms base,
// 2s cap, half-jittered.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.5}
}

// Validate reports whether the policy is usable.
func (p RetryPolicy) Validate() error {
	if p.Attempts < 1 {
		return fmt.Errorf("client: retry policy needs >= 1 attempt, got %d", p.Attempts)
	}
	if p.BaseDelay < 0 || p.MaxDelay < 0 {
		return fmt.Errorf("client: retry policy has negative delays: %+v", p)
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		return fmt.Errorf("client: retry jitter %v out of [0,1]", p.Jitter)
	}
	return nil
}

// backoff computes the wait before the retry-th retry (1-based), drawing
// jitter from rng.
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 && d > 0 {
		fixed := time.Duration(float64(d) * (1 - p.Jitter))
		span := d - fixed
		if span > 0 {
			d = fixed + time.Duration(rng.Int63n(int64(span)+1))
		}
	}
	return d
}

// RetryStats counts a retrier's activity.
type RetryStats struct {
	// Attempts is every call of the wrapped operation, including firsts.
	Attempts int64
	// Retries is how many attempts were repeats after a failure.
	Retries int64
	// Exhausted counts operations that failed every attempt.
	Exhausted int64
}

// retrier runs operations under a RetryPolicy with a seeded jitter
// source. It is safe for concurrent use.
type retrier struct {
	policy RetryPolicy
	sleep  func(time.Duration)

	mu    sync.Mutex
	rng   *rand.Rand
	stats RetryStats
}

func newRetrier(p RetryPolicy, seed int64) (*retrier, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &retrier{policy: p, sleep: time.Sleep, rng: rand.New(rand.NewSource(seed))}, nil
}

// do runs fn until it succeeds or the policy is exhausted. fn receives
// the 1-based attempt number so callers can rotate across failover
// sources.
func (r *retrier) do(op string, fn func(attempt int) error) error {
	var last error
	for a := 1; a <= r.policy.Attempts; a++ {
		r.mu.Lock()
		r.stats.Attempts++
		if a > 1 {
			r.stats.Retries++
		}
		r.mu.Unlock()
		if last = fn(a); last == nil {
			return nil
		}
		if a < r.policy.Attempts {
			r.mu.Lock()
			d := r.policy.backoff(a, r.rng)
			r.mu.Unlock()
			if d > 0 {
				r.sleep(d)
			}
		}
	}
	r.mu.Lock()
	r.stats.Exhausted++
	r.mu.Unlock()
	return fmt.Errorf("client: %s failed after %d attempts: %w", op, r.policy.Attempts, last)
}

// Stats snapshots the retry counters.
func (r *retrier) Stats() RetryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// RetryingNegotiator wraps a Negotiator with retry/backoff: transient
// proxy failures (refused dials, stalls cut by deadlines, resets) are
// retried on fresh connections before the failure is surfaced.
type RetryingNegotiator struct {
	next Negotiator
	r    *retrier
}

// NewRetryingNegotiator wraps next. The seed drives backoff jitter.
func NewRetryingNegotiator(next Negotiator, p RetryPolicy, seed int64) (*RetryingNegotiator, error) {
	if next == nil {
		return nil, fmt.Errorf("client: retrying negotiator needs a next negotiator")
	}
	r, err := newRetrier(p, seed)
	if err != nil {
		return nil, err
	}
	return &RetryingNegotiator{next: next, r: r}, nil
}

// Negotiate implements Negotiator.
func (n *RetryingNegotiator) Negotiate(appID string, env core.Env, sessionRequests int) ([]core.PADMeta, error) {
	var pads []core.PADMeta
	err := n.r.do("negotiation for "+appID, func(int) error {
		var ferr error
		pads, ferr = n.next.Negotiate(appID, env, sessionRequests)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	return pads, nil
}

// Stats snapshots the retry counters.
func (n *RetryingNegotiator) Stats() RetryStats { return n.r.Stats() }

// RetryingPADFetcher wraps one or more PADFetchers with retry/backoff
// and multi-source failover: attempt k goes to source (k-1) mod len, so
// a dead edge rotates to the next one instead of being hammered.
type RetryingPADFetcher struct {
	sources []PADFetcher
	r       *retrier
}

// NewRetryingPADFetcher wraps the sources in failover order.
func NewRetryingPADFetcher(p RetryPolicy, seed int64, sources ...PADFetcher) (*RetryingPADFetcher, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("client: retrying PAD fetcher needs >= 1 source")
	}
	for i, s := range sources {
		if s == nil {
			return nil, fmt.Errorf("client: retrying PAD fetcher source %d is nil", i)
		}
	}
	r, err := newRetrier(p, seed)
	if err != nil {
		return nil, err
	}
	return &RetryingPADFetcher{sources: append([]PADFetcher(nil), sources...), r: r}, nil
}

// FetchPAD implements PADFetcher.
func (f *RetryingPADFetcher) FetchPAD(meta core.PADMeta) ([]byte, error) {
	var out []byte
	err := f.r.do("PAD download "+meta.ID, func(attempt int) error {
		var ferr error
		out, ferr = f.sources[(attempt-1)%len(f.sources)].FetchPAD(meta)
		return ferr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats snapshots the retry counters.
func (f *RetryingPADFetcher) Stats() RetryStats { return f.r.Stats() }
