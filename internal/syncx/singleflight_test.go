package syncx

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoSequentialCallsReexecute(t *testing.T) {
	var g Group[int]
	var runs int32
	for i := 1; i <= 3; i++ {
		v, err, joined := g.Do("k", func() (int, error) {
			return int(atomic.AddInt32(&runs, 1)), nil
		})
		if err != nil || joined {
			t.Fatalf("call %d: v=%d err=%v joined=%v", i, v, err, joined)
		}
		if v != i {
			t.Fatalf("call %d returned %d; sequential calls must re-execute", i, v)
		}
	}
}

func TestDoPropagatesError(t *testing.T) {
	var g Group[string]
	want := errors.New("boom")
	_, err, _ := g.Do("k", func() (string, error) { return "", want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	// The failed call must be forgotten so the next call retries.
	v, err, joined := g.Do("k", func() (string, error) { return "ok", nil })
	if v != "ok" || err != nil || joined {
		t.Fatalf("retry = %q, %v, joined=%v", v, err, joined)
	}
}

func TestDoCollapsesConcurrentCallers(t *testing.T) {
	var g Group[int]
	var runs atomic.Int32
	gate := make(chan struct{})
	arrived := make(chan struct{})

	const followers = 16
	var wg sync.WaitGroup
	var joinedCount atomic.Int32
	// Leader blocks in fn until the gate opens.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, joined := g.Do("k", func() (int, error) {
			close(arrived)
			<-gate
			runs.Add(1)
			return 42, nil
		})
		if v != 42 || err != nil {
			t.Errorf("leader got %d, %v", v, err)
		}
		if joined {
			joinedCount.Add(1)
		}
	}()
	<-arrived
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, joined := g.Do("k", func() (int, error) {
				runs.Add(1)
				return 42, nil
			})
			if v != 42 || err != nil {
				t.Errorf("follower got %d, %v", v, err)
			}
			if joined {
				joinedCount.Add(1)
			}
		}()
	}
	close(gate)
	wg.Wait()
	// Followers that arrived before the leader finished joined it; any that
	// arrived after re-executed. At minimum the leader ran once, and every
	// caller that did not run fn is reported as joined.
	if int(runs.Load())+int(joinedCount.Load()) != followers+1 {
		t.Fatalf("runs=%d joined=%d, want runs+joined=%d", runs.Load(), joinedCount.Load(), followers+1)
	}
	if runs.Load() < 1 {
		t.Fatal("fn never ran")
	}
}

func TestDoLeaderPanicSurfacesErrorToFollowers(t *testing.T) {
	var g Group[int]
	arrived := make(chan struct{})
	gate := make(chan struct{})
	followerDone := make(chan error, 1)

	go func() {
		defer func() { _ = recover() }()
		_, _, _ = g.Do("k", func() (int, error) {
			close(arrived)
			<-gate
			panic("leader exploded")
		})
	}()
	<-arrived
	go func() {
		_, err, joined := g.Do("k", func() (int, error) { return 7, nil })
		if joined {
			followerDone <- err
			return
		}
		// The follower arrived after the leader's panic cleanup and ran
		// fresh; that is legal — report success.
		followerDone <- nil
	}()
	close(gate)
	if err := <-followerDone; err == nil {
		// Either the follower ran fresh (nil) or it joined and must have
		// received the panic error; a joined nil would be a silent loss.
		return
	} else if err.Error() == "" {
		t.Fatal("joined follower got empty error from panicked leader")
	}
}
