// Package syncx provides small concurrency primitives shared by the
// serving-path packages. Its centerpiece is a singleflight Group used to
// collapse duplicate concurrent work: the proxy's negotiation plane runs
// one adaptation path search per unique cache key no matter how many
// identical clients stampede a cold cache, and a CDN edgeserver performs
// one origin fill per object however many concurrent misses arrive.
package syncx

import (
	"fmt"
	"sync"
)

// call is one in-flight execution of a Group function.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group collapses concurrent Do calls with the same key into a single
// execution of fn: the first caller (the leader) runs fn, every caller
// that arrives before it finishes blocks and shares the leader's result.
// Once the leader finishes the key is forgotten, so later calls execute
// fn again. The zero value is ready to use; a Group must not be copied
// after first use.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

// Do executes fn once per concurrent set of callers sharing key. It
// returns fn's value and error, plus joined=true when this caller shared
// a leader's execution instead of running fn itself.
func (g *Group[V]) Do(key string, fn func() (V, error)) (v V, err error, joined bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*call[V]{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &call[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	finished := false
	defer func() {
		if !finished {
			// fn panicked: the panic propagates to the leader, but
			// followers must not observe a zero value with a nil error.
			c.err = fmt.Errorf("syncx: singleflight leader panicked for key %q", key)
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	finished = true
	return c.val, c.err, false
}
