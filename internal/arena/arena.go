// Package arena is the unified buffer arena of the serving path: one
// size-classed recycling layer under every hot byte buffer — INP frame
// assembly, codec op buffers, per-connection read buffers, and message
// body scratch — replacing the per-package sync.Pools that used to each
// retain their own storage.
//
// Two lifetimes are offered:
//
//   - Buffer: an append-style builder whose backing storage comes from the
//     class pools and is recycled on Release (or when growth promotes it to
//     a larger class). Encoders hold one per writer.
//   - Session: a lifetime scope acquired when a connection is accepted and
//     released when it closes. Every borrow (Bytes, Grow) is recorded and
//     returned to the class pools in one Release call, so per-connection
//     code never pairs individual gets and puts.
//
// Buffers above the largest class fall through to the allocator: a giant
// PAD module must not pin a megabyte in a pool forever. All pools are
// package-global and safe for concurrent use; an individual Buffer or
// Session is single-goroutine, like the connection it serves.
//
// The hotpath analyzer's arena-escape check enforces the lifetime rule
// statically: a session-scoped buffer must not be stored into a field or
// sent on a channel, because it is recycled at Release and would be
// overwritten under the escapee.
package arena

import "sync"

// classSizes are the buffer capacities the arena recycles, tuned to the
// serving path: 512 B covers negotiation frames and op headers, 4 KB the
// connection read buffer and typical bodies, 64 KB a large PAD_META_REP or
// codec op stream, 1 MB the decode-reserve cap used by hostile-header
// handling across inp and codec.
var classSizes = [...]int{512, 4 << 10, 64 << 10, 1 << 20}

// box carries a pooled backing array. Pools hold *box so neither Get nor
// Put boxes a slice header per call; the box travels with its buffer.
type box struct {
	b []byte
}

var classPools [len(classSizes)]sync.Pool

func init() {
	for i := range classPools {
		size := classSizes[i]
		classPools[i] = sync.Pool{New: func() interface{} { return &box{b: make([]byte, 0, size)} }}
	}
}

// classFor returns the index of the smallest class with capacity >= n, or
// -1 when n exceeds the largest class.
func classFor(n int) int {
	for i, size := range classSizes {
		if n <= size {
			return i
		}
	}
	return -1
}

// getBox borrows a box with capacity >= n. Oversized requests get a fresh
// allocator-backed box that putBox will drop rather than pool.
//
//fractal:hotpath every arena borrow on the serving path lands here
func getBox(n int) *box {
	ci := classFor(n)
	if ci < 0 {
		return &box{b: make([]byte, 0, n)}
	}
	bx := classPools[ci].Get().(*box)
	bx.b = bx.b[:0]
	return bx
}

// putBox recycles a box into the pool of the largest class its capacity
// still satisfies; capacities that match no class are dropped.
//
//fractal:hotpath every arena return on the serving path lands here
func putBox(bx *box) {
	c := cap(bx.b)
	for i := len(classSizes) - 1; i >= 0; i-- {
		if c >= classSizes[i] {
			if c > classSizes[len(classSizes)-1] {
				return // oversized: let the allocator reclaim it
			}
			bx.b = bx.b[:0]
			classPools[i].Put(bx)
			return
		}
	}
}

// Buffer is an append-style byte builder over arena storage. The zero
// value is ready to use; Write/WriteByte grow it through the size classes,
// and Release returns the backing storage to the arena. It implements
// io.Writer and never returns an error.
type Buffer struct {
	bx *box
}

// ensure arranges capacity for n more bytes, promoting to a larger class
// (copying the contents) when the current backing is full.
func (w *Buffer) ensure(n int) {
	if w.bx == nil {
		w.bx = getBox(n)
		return
	}
	b := w.bx.b
	if cap(b)-len(b) >= n {
		return
	}
	grown := getBox(len(b) + n)
	grown.b = append(grown.b, b...)
	putBox(w.bx)
	w.bx = grown
}

// Write implements io.Writer.
//
//fractal:hotpath frame and op assembly write through here
func (w *Buffer) Write(p []byte) (int, error) {
	w.ensure(len(p))
	w.bx.b = append(w.bx.b, p...)
	return len(p), nil
}

// WriteString appends s without an intermediate []byte conversion.
//
//fractal:hotpath binary body strings are appended here
func (w *Buffer) WriteString(s string) (int, error) {
	w.ensure(len(s))
	w.bx.b = append(w.bx.b, s...)
	return len(s), nil
}

// WriteByte appends one byte.
//
//fractal:hotpath codec op tags are written byte-at-a-time
func (w *Buffer) WriteByte(c byte) error {
	w.ensure(1)
	w.bx.b = append(w.bx.b, c)
	return nil
}

// Bytes returns the accumulated bytes. The slice is valid until the next
// Write, Reset, or Release.
func (w *Buffer) Bytes() []byte {
	if w.bx == nil {
		return nil
	}
	return w.bx.b
}

// SetBytes replaces the accumulated bytes with b, which must be a slice of
// the buffer's own storage (a truncation or tail cut of Bytes()).
func (w *Buffer) SetBytes(b []byte) {
	if w.bx != nil {
		w.bx.b = b
	}
}

// Len reports the accumulated byte count.
func (w *Buffer) Len() int {
	if w.bx == nil {
		return 0
	}
	return len(w.bx.b)
}

// Reset truncates the buffer, keeping its storage for reuse.
func (w *Buffer) Reset() {
	if w.bx != nil {
		w.bx.b = w.bx.b[:0]
	}
}

// Release returns the backing storage to the arena. The Buffer remains
// usable; the next Write borrows fresh storage.
func (w *Buffer) Release() {
	if w.bx != nil {
		putBox(w.bx)
		w.bx = nil
	}
}

// Session is a lifetime scope over arena storage: every borrow is recorded
// and returned in one Release when the owning connection closes. A Session
// serves one connection and is not safe for concurrent use.
type Session struct {
	boxes []*box
}

var sessionPool = sync.Pool{New: func() interface{} {
	return &Session{boxes: make([]*box, 0, 8)}
}}

// AcquireSession borrows a session scope from the arena. Pair it with
// Release, typically at connection accept/close.
func AcquireSession() *Session {
	return sessionPool.Get().(*Session)
}

// Release returns every borrowed buffer to the class pools and recycles
// the session itself. All slices obtained from the session are invalid
// afterwards.
func (s *Session) Release() {
	for i, bx := range s.boxes {
		putBox(bx)
		s.boxes[i] = nil
	}
	s.boxes = s.boxes[:0]
	sessionPool.Put(s)
}

// Bytes borrows a zero-length buffer with capacity >= n, returned to the
// arena at Release. Growing it beyond its capacity must go through Grow so
// the session keeps tracking the storage.
//
//fractal:hotpath per-connection read and body buffers come from here
func (s *Session) Bytes(n int) []byte {
	bx := getBox(n)
	s.boxes = append(s.boxes, bx)
	return bx.b
}

// Grow returns a buffer holding b's bytes with at least n spare capacity,
// replacing the tracked storage when promotion to a larger class is
// needed. The argument slice is invalid afterwards; callers must use only
// the returned slice.
//
//fractal:hotpath incremental body growth under hostile-header caps
func (s *Session) Grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b
	}
	grown := getBox(len(b) + n)
	grown.b = append(grown.b, b...)
	if old := s.findBox(b); old >= 0 {
		putBox(s.boxes[old])
		s.boxes[old] = grown
	} else {
		s.boxes = append(s.boxes, grown)
	}
	return grown.b
}

// findBox locates the tracked box whose storage backs b, or -1. Sessions
// hold a handful of buffers, so a linear scan is cheaper than any index.
func (s *Session) findBox(b []byte) int {
	if cap(b) == 0 {
		return -1
	}
	probe := &b[:cap(b)][cap(b)-1]
	for i, bx := range s.boxes {
		bb := bx.b
		if cap(bb) == cap(b) && cap(bb) > 0 && &bb[:cap(bb)][cap(bb)-1] == probe {
			return i
		}
	}
	return -1
}
