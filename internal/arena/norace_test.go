//go:build !race

package arena

const raceEnabled = false
