package arena

import (
	"bytes"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, 0}, {1, 0}, {512, 0}, {513, 1}, {4096, 1}, {4097, 2},
		{64 << 10, 2}, {64<<10 + 1, 3}, {1 << 20, 3}, {1<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBufferRoundTrip(t *testing.T) {
	var w Buffer
	defer w.Release()
	var want bytes.Buffer
	chunk := bytes.Repeat([]byte("abc"), 100)
	for i := 0; i < 50; i++ {
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
		want.Write(chunk)
		if err := w.WriteByte(byte(i)); err != nil {
			t.Fatal(err)
		}
		want.WriteByte(byte(i))
	}
	if !bytes.Equal(w.Bytes(), want.Bytes()) {
		t.Fatalf("Buffer diverged from bytes.Buffer after growth: %d vs %d bytes", w.Len(), want.Len())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if string(w.Bytes()) != "x" {
		t.Fatalf("Bytes after Reset+Write = %q", w.Bytes())
	}
}

func TestBufferOversized(t *testing.T) {
	var w Buffer
	big := make([]byte, classSizes[len(classSizes)-1]+1)
	if _, err := w.Write(big); err != nil {
		t.Fatal(err)
	}
	if w.Len() != len(big) {
		t.Fatalf("oversized write lost bytes: %d vs %d", w.Len(), len(big))
	}
	w.Release() // must not pool the oversized backing (covered by putBox)
	if w.Bytes() != nil {
		t.Fatal("Bytes non-nil after Release")
	}
}

func TestSessionBytesAndGrow(t *testing.T) {
	s := AcquireSession()
	b := s.Bytes(100)
	if len(b) != 0 || cap(b) < 100 {
		t.Fatalf("Bytes(100): len %d cap %d", len(b), cap(b))
	}
	b = append(b, bytes.Repeat([]byte("z"), 100)...)
	// Grow past the first class: contents must be preserved and the old
	// storage swapped out of the tracked set (no double-count at Release).
	before := len(s.boxes)
	b = s.Grow(b, 8<<10)
	if len(b) != 100 || cap(b) < 100+8<<10 {
		t.Fatalf("after Grow: len %d cap %d", len(b), cap(b))
	}
	for i := range b {
		if b[i] != 'z' {
			t.Fatalf("Grow lost contents at %d", i)
		}
	}
	if len(s.boxes) != before {
		t.Fatalf("Grow changed tracked box count %d -> %d (leak or double-track)", before, len(s.boxes))
	}
	s.Release()
	if len(s.boxes) != 0 {
		t.Fatalf("boxes not cleared by Release: %d", len(s.boxes))
	}
}

func TestSessionGrowForeignSlice(t *testing.T) {
	s := AcquireSession()
	defer s.Release()
	foreign := make([]byte, 3, 3)
	copy(foreign, "abc")
	grown := s.Grow(foreign, 1<<10)
	if string(grown[:3]) != "abc" {
		t.Fatalf("foreign Grow lost contents: %q", grown[:3])
	}
	if len(s.boxes) != 1 {
		t.Fatalf("foreign Grow must adopt the new storage into the session, boxes = %d", len(s.boxes))
	}
}

// TestSessionReuseIsolation pins that a released session's storage, once
// re-borrowed, starts empty — the recycling must not leak bytes between
// connections.
func TestSessionReuseIsolation(t *testing.T) {
	s := AcquireSession()
	b := s.Bytes(64)
	b = append(b, "secret"...)
	_ = b
	s.Release()
	s2 := AcquireSession()
	defer s2.Release()
	b2 := s2.Bytes(64)
	if len(b2) != 0 {
		t.Fatalf("recycled buffer not empty: len %d", len(b2))
	}
}

// TestSessionSteadyStateAllocs pins the arena promise: after warmup, a
// borrow/release cycle costs zero allocations. The bench-gate keeps this
// honest at the benchmark level; this is the direct unit pin.
func TestSessionSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	for i := 0; i < 8; i++ { // warm the pools
		s := AcquireSession()
		_ = s.Bytes(4096)
		_ = s.Bytes(512)
		s.Release()
	}
	avg := testing.AllocsPerRun(200, func() {
		s := AcquireSession()
		_ = s.Bytes(4096)
		_ = s.Bytes(512)
		s.Release()
	})
	if avg > 0 {
		t.Errorf("session borrow cycle allocates %.1f per run, want 0", avg)
	}
}

// TestBufferSteadyStateAllocs pins that rewriting a warmed Buffer
// allocates nothing.
func TestBufferSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	var w Buffer
	defer w.Release()
	payload := bytes.Repeat([]byte("p"), 600)
	w.Write(payload)
	avg := testing.AllocsPerRun(200, func() {
		w.Reset()
		if _, err := w.Write(payload); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("warm Buffer write allocates %.1f per run, want 0", avg)
	}
}
