package proxy

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"fractal/internal/core"
	"fractal/internal/mobilecode"
	"fractal/internal/mobilecode/verify"
)

// gateModule assembles, signs, and packs a module with the given program
// sources.
func gateModule(t *testing.T, id, encodeSrc, decodeSrc string) (*mobilecode.Module, []byte) {
	t.Helper()
	signer, err := mobilecode.NewSigner("gate-test")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := mobilecode.Assemble(encodeSrc)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := mobilecode.Assemble(decodeSrc)
	if err != nil {
		t.Fatal(err)
	}
	encBin, err := enc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decBin, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	m, err := mobilecode.NewModule(id, "1.0", mobilecode.Payload{
		Protocol: "direct",
		Encode:   encBin,
		Decode:   decBin,
	}, signer)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return m, packed
}

// gateApp advertises one PAD whose metadata binds the given module.
func gateApp(m *mobilecode.Module) core.AppMeta {
	return core.AppMeta{
		AppID: "gated",
		PADs: []core.PADMeta{{
			ID: m.ID, Protocol: "direct", Size: 4096,
			Digest: m.Digest, URL: "/pads/" + m.ID,
		}},
	}
}

// TestPushAppMetaGateAcceptsVerifiableModule: with a module source armed,
// a topology whose module proves safe registers normally.
func TestPushAppMetaGateAcceptsVerifiableModule(t *testing.T) {
	p, err := New(testModel(t), 128)
	if err != nil {
		t.Fatal(err)
	}
	m, packed := gateModule(t, "pad-good", "CALL identity\nHALT", "CALL identity\nHALT")
	fetch := func(meta core.PADMeta) ([]byte, error) {
		if meta.ID != m.ID {
			return nil, fmt.Errorf("unexpected module fetch %s", meta.ID)
		}
		return packed, nil
	}
	if err := p.SetModuleSource(fetch, mobilecode.DefaultSandbox()); err != nil {
		t.Fatal(err)
	}
	if err := p.PushAppMeta(gateApp(m)); err != nil {
		t.Fatalf("verifiable topology rejected: %v", err)
	}
	if got := p.Stats().VerifierRejections; got != 0 {
		t.Fatalf("VerifierRejections = %d, want 0", got)
	}
}

// TestPushAppMetaGateRejectsUnverifiableModule: a module whose program
// calls an undeclared capability never enters the PAT, and the rejection
// is counted.
func TestPushAppMetaGateRejectsUnverifiableModule(t *testing.T) {
	p, err := New(testModel(t), 128)
	if err != nil {
		t.Fatal(err)
	}
	m, packed := gateModule(t, "pad-evil", "CALL identity\nHALT", "CALL backdoor.fetch\nHALT")
	if err := p.SetModuleSource(func(core.PADMeta) ([]byte, error) { return packed, nil }, mobilecode.DefaultSandbox()); err != nil {
		t.Fatal(err)
	}
	err = p.PushAppMeta(gateApp(m))
	if err == nil {
		t.Fatal("unverifiable topology accepted")
	}
	var vErr *verify.Error
	if !errors.As(err, &vErr) {
		t.Fatalf("rejection is not a typed verifier error: %v", err)
	}
	if got := p.Stats().VerifierRejections; got != 1 {
		t.Fatalf("VerifierRejections = %d, want 1", got)
	}
	if _, err := p.Negotiate("gated", desktopEnv(), 75); err == nil {
		t.Fatal("rejected topology is negotiable")
	}
}

// TestPushAppMetaGateRejectsDigestMismatch: serving different bytes than
// the advertised digest fails registration before the verifier runs.
func TestPushAppMetaGateRejectsDigestMismatch(t *testing.T) {
	p, err := New(testModel(t), 128)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := gateModule(t, "pad-good", "CALL identity\nHALT", "CALL identity\nHALT")
	_, otherPacked := gateModule(t, "pad-good", "CALL gzip.encode\nHALT", "CALL gzip.decode\nHALT")
	if err := p.SetModuleSource(func(core.PADMeta) ([]byte, error) { return otherPacked, nil }, mobilecode.DefaultSandbox()); err != nil {
		t.Fatal(err)
	}
	err = p.PushAppMeta(gateApp(m))
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("digest mismatch not reported: %v", err)
	}
	if got := p.Stats().VerifierRejections; got != 0 {
		t.Fatalf("digest mismatch counted as verifier rejection: %d", got)
	}
}
