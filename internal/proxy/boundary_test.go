package proxy

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"fractal/internal/inp"
	"fractal/internal/netsim"
)

// These tests pin ServeConn's persistent-connection boundary semantics:
// a peer that disconnects *between* sessions is a clean goodbye
// (ServeConn returns nil), while EOF mid-header or mid-body is a
// protocol error — and the distinction must hold identically whether the
// session ran v1 JSON or the Version2 binary fast path, over real TCP or
// the in-memory netsim stream the simulations use.

var boundaryMatrix = []struct {
	transport string
	binary    bool
}{
	{"tcp", false},
	{"tcp", true},
	{"netsim", false},
	{"netsim", true},
}

// startServeConn runs ServeConn on the server end of a fresh transport
// pair and returns the client end plus the ServeConn result channel.
func startServeConn(t *testing.T, transport string, srv *Server) (net.Conn, chan error) {
	t.Helper()
	errc := make(chan error, 1)
	if transport == "netsim" {
		client, server := netsim.StreamPair()
		go func() {
			defer server.Close()
			errc <- srv.ServeConn(server)
		}()
		return client, errc
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, aerr := ln.Accept()
		if aerr != nil {
			errc <- aerr
			return
		}
		defer conn.Close()
		errc <- srv.ServeConn(conn)
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return client, errc
}

func closeWriteEnd(t *testing.T, conn net.Conn) {
	t.Helper()
	cw, ok := conn.(interface{ CloseWrite() error })
	if !ok {
		t.Fatalf("%T does not support CloseWrite", conn)
	}
	if err := cw.CloseWrite(); err != nil {
		t.Fatal(err)
	}
}

// negotiateOnce drives one full Figure 4 exchange from the client end,
// optionally advertising the binary fast path.
func negotiateOnce(t *testing.T, c *inp.Conn, binary bool) {
	t.Helper()
	wv := 0
	if binary {
		wv = inp.Version2
	}
	var initRep inp.InitRep
	if err := c.Call(inp.MsgInitReq, inp.InitReq{AppID: "webapp", WireVersion: wv}, inp.MsgInitRep, &initRep); err != nil {
		t.Fatalf("INIT: %v", err)
	}
	if !initRep.OK {
		t.Fatalf("INIT refused: %s", initRep.Reason)
	}
	var tmpl inp.CliMetaReq
	if err := c.RecvInto(inp.MsgCliMetaReq, &tmpl); err != nil {
		t.Fatalf("CLI_META_REQ: %v", err)
	}
	env := desktopEnv()
	var padRep inp.PADMetaRep
	if err := c.Call(inp.MsgCliMetaRep,
		inp.CliMetaRep{Dev: env.Dev, Ntwk: env.Ntwk, SessionRequests: 75},
		inp.MsgPADMetaRep, &padRep); err != nil {
		t.Fatalf("metadata exchange: %v", err)
	}
	if len(padRep.PADs) == 0 {
		t.Fatal("negotiated zero PADs")
	}
	if c.BinaryEnabled() != binary {
		t.Fatalf("client binary state = %v after negotiation, want %v", c.BinaryEnabled(), binary)
	}
}

func waitServeConn(t *testing.T, errc chan error) error {
	t.Helper()
	select {
	case err := <-errc:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn did not return")
		return nil
	}
}

// renderInitFrame builds the wire bytes of an INIT_REQ frame with the
// given sequence number, in the requested encoding.
func renderInitFrame(t *testing.T, seq uint32, binary bool) []byte {
	t.Helper()
	h := inp.Header{Version: inp.Version, Type: inp.MsgInitReq, Seq: seq}
	wv := 0
	if binary {
		h.Version = inp.Version2
		wv = inp.Version2
	}
	var buf bytes.Buffer
	fw := inp.NewFrameWriter(&buf)
	if err := fw.WriteMessage(h, inp.InitReq{AppID: "webapp", WireVersion: wv}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeConnCleanEOFAtSessionBoundary: two back-to-back negotiations
// on one connection (the persistent-conn case), then a half-close at the
// boundary. ServeConn must report a clean nil.
func TestServeConnCleanEOFAtSessionBoundary(t *testing.T) {
	for _, tc := range boundaryMatrix {
		t.Run(tc.transport+"/"+encName(tc.binary), func(t *testing.T) {
			srv, err := NewServer(newTestProxy(t), 4, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			conn, errc := startServeConn(t, tc.transport, srv)
			defer conn.Close()
			c := inp.NewConn(conn)
			negotiateOnce(t, c, tc.binary)
			negotiateOnce(t, c, tc.binary) // re-negotiation on the same conn
			closeWriteEnd(t, conn)
			if err := waitServeConn(t, errc); err != nil {
				t.Fatalf("clean boundary EOF => %v, want nil", err)
			}
		})
	}
}

// TestServeConnEOFBeforeFirstMessage: a connection that closes without a
// single frame is an error, not a clean session.
func TestServeConnEOFBeforeFirstMessage(t *testing.T) {
	for _, tc := range boundaryMatrix {
		t.Run(tc.transport, func(t *testing.T) {
			srv, err := NewServer(newTestProxy(t), 4, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			conn, errc := startServeConn(t, tc.transport, srv)
			defer conn.Close()
			closeWriteEnd(t, conn)
			err = waitServeConn(t, errc)
			if err == nil || !strings.Contains(err.Error(), "reading first message") {
				t.Fatalf("EOF before first message => %v, want reading-first-message error", err)
			}
		})
	}
}

// TestServeConnEOFMidHeader: a partial header after a completed session
// is a protocol error, not a boundary.
func TestServeConnEOFMidHeader(t *testing.T) {
	for _, tc := range boundaryMatrix {
		t.Run(tc.transport+"/"+encName(tc.binary), func(t *testing.T) {
			srv, err := NewServer(newTestProxy(t), 4, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			conn, errc := startServeConn(t, tc.transport, srv)
			defer conn.Close()
			c := inp.NewConn(conn)
			negotiateOnce(t, c, tc.binary)
			frame := renderInitFrame(t, 3, tc.binary)
			if _, err := conn.Write(frame[:7]); err != nil {
				t.Fatal(err)
			}
			closeWriteEnd(t, conn)
			err = waitServeConn(t, errc)
			if err == nil || !strings.Contains(err.Error(), "reading next session") {
				t.Fatalf("EOF mid-header => %v, want reading-next-session error", err)
			}
		})
	}
}

// TestServeConnEOFMidBody: a complete header whose body never finishes
// is a protocol error, under both encodings.
func TestServeConnEOFMidBody(t *testing.T) {
	for _, tc := range boundaryMatrix {
		t.Run(tc.transport+"/"+encName(tc.binary), func(t *testing.T) {
			srv, err := NewServer(newTestProxy(t), 4, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			conn, errc := startServeConn(t, tc.transport, srv)
			defer conn.Close()
			c := inp.NewConn(conn)
			negotiateOnce(t, c, tc.binary)
			frame := renderInitFrame(t, 3, tc.binary)
			if _, err := conn.Write(frame[:len(frame)-3]); err != nil {
				t.Fatal(err)
			}
			closeWriteEnd(t, conn)
			err = waitServeConn(t, errc)
			if err == nil || !strings.Contains(err.Error(), "reading next session") {
				t.Fatalf("EOF mid-body => %v, want reading-next-session error", err)
			}
		})
	}
}

func encName(binary bool) string {
	if binary {
		return "binary"
	}
	return "json"
}
