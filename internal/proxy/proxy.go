// Package proxy implements Fractal's adaptation proxy (Section 3.2): a
// negotiation manager that keeps one protocol adaptation tree per
// application and runs the adaptation path search, and a distribution
// manager that caches negotiation results, inserts digest/URL information,
// hides tree links, and handles the network exchange with clients.
package proxy

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fractal/internal/core"
	"fractal/internal/mobilecode"
	"fractal/internal/mobilecode/verify"
	"fractal/internal/syncx"
)

// NegotiationManager maps client metadata to the PADs the client needs.
// It is safe for concurrent use; the PAT registry is guarded by an
// RWMutex so negotiations may proceed while applications register.
type NegotiationManager struct {
	mu    sync.RWMutex
	pats  map[string]*core.PAT
	model core.OverheadModel
}

// NewNegotiationManager builds a manager around an overhead model.
func NewNegotiationManager(model core.OverheadModel) (*NegotiationManager, error) {
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("proxy: %w", err)
	}
	return &NegotiationManager{pats: map[string]*core.PAT{}, model: model}, nil
}

// PushAppMeta installs or replaces an application's protocol adaptation
// topology, as the application server does "when the protocol adaptation
// topology is first created or changed later".
func (nm *NegotiationManager) PushAppMeta(app core.AppMeta) error {
	pat, err := core.BuildPAT(app)
	if err != nil {
		return fmt.Errorf("proxy: rejecting AppMeta: %w", err)
	}
	nm.mu.Lock()
	defer nm.mu.Unlock()
	nm.pats[app.AppID] = pat
	return nil
}

// Apps returns the application ids with installed topologies.
func (nm *NegotiationManager) Apps() []string {
	nm.mu.RLock()
	defer nm.mu.RUnlock()
	out := make([]string, 0, len(nm.pats))
	for id := range nm.pats {
		out = append(out, id)
	}
	return out
}

// Negotiate runs the adaptation path search for one client environment.
// sessionRequests amortizes the PAD download term; values < 1 are treated
// as 1.
func (nm *NegotiationManager) Negotiate(appID string, env core.Env, sessionRequests int) (core.PathResult, error) {
	nm.mu.RLock()
	pat, ok := nm.pats[appID]
	model := nm.model
	nm.mu.RUnlock()
	if !ok {
		return core.PathResult{}, fmt.Errorf("proxy: no protocol adaptation topology for app %q", appID)
	}
	if sessionRequests > 0 {
		model.SessionRequests = sessionRequests
	}
	res, err := core.FindPath(pat, model, env)
	if err != nil {
		return core.PathResult{}, fmt.Errorf("proxy: app %s: %w", appID, err)
	}
	return res, nil
}

// Stats are the proxy's negotiation counters. On every successful
// negotiation exactly one of CacheHits, Searches, or CollapsedSearches is
// incremented, so Negotiations = CacheHits + Searches + CollapsedSearches
// when all negotiations succeed.
type Stats struct {
	Negotiations   int64
	CacheHits      int64
	TopologyPushes int64
	// Searches counts path searches actually executed on cache misses.
	Searches int64
	// CollapsedSearches counts negotiations that joined another caller's
	// in-flight search for the same cache key instead of running their own.
	CollapsedSearches int64
	// TotalSearchNanos accumulates time spent in cache-miss searches.
	TotalSearchNanos int64
	// VerifierRejections counts topology pushes refused because the static
	// bytecode verifier rejected a referenced PAD module (only gated pushes
	// — see SetModuleSource — can increment it).
	VerifierRejections int64
}

// Proxy couples the negotiation manager with the distribution manager's
// adaptation cache and the INP server front end. Proxy is safe for
// concurrent use: the authorizer swap is guarded by its own RWMutex,
// stats are atomic, and the manager and cache synchronize themselves.
type Proxy struct {
	nm    *NegotiationManager
	cache *core.AdaptationCache
	// sf collapses concurrent cache-miss negotiations for the same cache
	// key into one path search (the negotiation-plane singleflight).
	sf syncx.Group[[]core.PADMeta]

	authzMu sync.RWMutex
	authz   Authorizer

	srcMu         sync.RWMutex
	moduleSrc     ModuleSourceFunc
	verifySandbox mobilecode.Sandbox

	negotiations       atomic.Int64
	cacheHits          atomic.Int64
	topologyPushes     atomic.Int64
	searches           atomic.Int64
	collapsedSearches  atomic.Int64
	searchNanos        atomic.Int64
	verifierRejections atomic.Int64
}

// ModuleSourceFunc retrieves the packed module bytes behind a PADMeta —
// typically the CDN origin the application server publishes to. Installed
// with SetModuleSource to gate topology registration on bytecode
// verification.
type ModuleSourceFunc func(meta core.PADMeta) ([]byte, error)

// New builds a proxy with the given overhead model and adaptation-cache
// capacity.
func New(model core.OverheadModel, cacheCapacity int) (*Proxy, error) {
	nm, err := NewNegotiationManager(model)
	if err != nil {
		return nil, err
	}
	cache, err := core.NewAdaptationCache(cacheCapacity)
	if err != nil {
		return nil, fmt.Errorf("proxy: %w", err)
	}
	return &Proxy{nm: nm, cache: cache}, nil
}

// SetModuleSource arms the registration gate: every subsequent PushAppMeta
// fetches each referenced PAD's packed module through fetch, checks it
// against the advertised digest, and runs the static bytecode verifier on
// its programs under sb before any metadata may enter the PAT. A nil fetch
// disarms the gate (metadata-only pushes, the historical behaviour, for
// deployments where the proxy cannot reach the module store).
func (p *Proxy) SetModuleSource(fetch ModuleSourceFunc, sb mobilecode.Sandbox) error {
	if fetch != nil {
		if err := sb.Validate(); err != nil {
			return fmt.Errorf("proxy: module source sandbox: %w", err)
		}
	}
	p.srcMu.Lock()
	p.moduleSrc = fetch
	p.verifySandbox = sb
	p.srcMu.Unlock()
	return nil
}

// verifyModules is the armed registration gate: malformed modules never
// enter the PAT.
func (p *Proxy) verifyModules(app core.AppMeta) error {
	p.srcMu.RLock()
	fetch, sb := p.moduleSrc, p.verifySandbox
	p.srcMu.RUnlock()
	if fetch == nil {
		return nil
	}
	for _, meta := range app.PADs {
		packed, err := fetch(meta)
		if err != nil {
			return fmt.Errorf("proxy: app %s: fetching module for PAD %s: %w", app.AppID, meta.ID, err)
		}
		m, err := mobilecode.Unpack(packed)
		if err != nil {
			return fmt.Errorf("proxy: app %s: PAD %s: %w", app.AppID, meta.ID, err)
		}
		if !mobilecode.DigestEqual(m.Digest, meta.Digest) {
			return fmt.Errorf("proxy: app %s: PAD %s module digest does not match advertised metadata", app.AppID, meta.ID)
		}
		if _, err := verify.Module(m, sb); err != nil {
			p.verifierRejections.Add(1)
			return fmt.Errorf("proxy: app %s: rejecting topology: %w", app.AppID, err)
		}
	}
	return nil
}

// PushAppMeta installs a topology and invalidates cached negotiations for
// that application. With a module source installed (SetModuleSource), every
// referenced PAD module is fetched and statically verified first.
func (p *Proxy) PushAppMeta(app core.AppMeta) error {
	if err := p.verifyModules(app); err != nil {
		return err
	}
	if err := p.nm.PushAppMeta(app); err != nil {
		return err
	}
	p.cache.Invalidate(app.AppID)
	p.topologyPushes.Add(1)
	return nil
}

// Negotiate is the full proxy-side negotiation for an anonymous client:
// consult the adaptation cache, run the path search on a miss, then
// prepare client-facing metadata (redacted links, URL filled). This is the
// in-process entry point; ServeConn wraps it with the INP exchange.
// Authenticated clients use NegotiateFor.
func (p *Proxy) Negotiate(appID string, env core.Env, sessionRequests int) ([]core.PADMeta, error) {
	return p.NegotiateFor("", appID, env, sessionRequests)
}

// prepareForClient is the distribution manager's post-processing: hide
// parent/child links and ensure each PAD has a download URL.
func prepareForClient(pads []core.PADMeta) []core.PADMeta {
	out := make([]core.PADMeta, 0, len(pads))
	for _, p := range pads {
		q := p.Redacted()
		if q.URL == "" {
			q.URL = "/pads/" + q.ID
		}
		out = append(out, q)
	}
	return out
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Negotiations:       p.negotiations.Load(),
		CacheHits:          p.cacheHits.Load(),
		TopologyPushes:     p.topologyPushes.Load(),
		Searches:           p.searches.Load(),
		CollapsedSearches:  p.collapsedSearches.Load(),
		TotalSearchNanos:   p.searchNanos.Load(),
		VerifierRejections: p.verifierRejections.Load(),
	}
}

// CacheStats exposes the adaptation cache counters.
func (p *Proxy) CacheStats() core.CacheStats { return p.cache.Stats() }
