package proxy

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fractal/internal/core"
	"fractal/internal/inp"
)

// testApp builds a one-level PAT like the case study (Figure 8) with
// distinguishable costs so different environments pick different PADs.
func testApp() core.AppMeta {
	pad := func(id, proto string, clientStd time.Duration, traffic int64) core.PADMeta {
		return core.PADMeta{
			ID: id, Protocol: proto, Size: 4096,
			Overhead: core.PADOverhead{ClientCompStd: clientStd, TrafficBytes: traffic},
		}
	}
	return core.AppMeta{
		AppID: "webapp",
		PADs: []core.PADMeta{
			pad("pad-direct", "direct", 0, 140000),
			pad("pad-gzip", "gzip", 40*time.Millisecond, 50000),
			pad("pad-bitmap", "bitmap", 85*time.Millisecond, 30000),
		},
	}
}

func testModel(t testing.TB) core.OverheadModel {
	t.Helper()
	ms, err := core.CaseStudyMatrices()
	if err != nil {
		t.Fatal(err)
	}
	return core.OverheadModel{
		Matrices:          ms,
		Rho:               0.8,
		ServerCPUMHz:      2000,
		IncludeServerComp: true,
		SessionRequests:   75,
	}
}

func desktopEnv() core.Env {
	return core.Env{
		Dev:  core.DevMeta{OSType: core.OSFedora, CPUType: core.CPUTypeP4, CPUMHz: 2000, MemMB: 512},
		Ntwk: core.NtwkMeta{NetworkType: core.NetLAN, BandwidthKbps: 100000},
	}
}

func pdaEnv() core.Env {
	return core.Env{
		Dev:  core.DevMeta{OSType: core.OSWinCE, CPUType: core.CPUTypePXA255, CPUMHz: 400, MemMB: 64},
		Ntwk: core.NtwkMeta{NetworkType: core.NetBluetooth, BandwidthKbps: 723},
	}
}

func newTestProxy(t testing.TB) *Proxy {
	t.Helper()
	p, err := New(testModel(t), 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PushAppMeta(testApp()); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNegotiateSelectsPerEnvironment(t *testing.T) {
	p := newTestProxy(t)
	fast, err := p.Negotiate("webapp", desktopEnv(), 75)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := p.Negotiate("webapp", pdaEnv(), 75)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != 1 || len(slow) != 1 {
		t.Fatalf("path lengths %d/%d, want 1/1 (one-level tree)", len(fast), len(slow))
	}
	if fast[0].ID == slow[0].ID {
		t.Fatalf("both environments selected %s; adaptation is not environment-sensitive", fast[0].ID)
	}
	if fast[0].ID != "pad-direct" {
		t.Errorf("desktop-LAN selected %s, want pad-direct", fast[0].ID)
	}
	if slow[0].ID != "pad-bitmap" {
		t.Errorf("PDA-Bluetooth selected %s, want pad-bitmap", slow[0].ID)
	}
}

func TestNegotiateRedactsAndFillsURL(t *testing.T) {
	p := newTestProxy(t)
	pads, err := p.Negotiate("webapp", desktopEnv(), 75)
	if err != nil {
		t.Fatal(err)
	}
	for _, pm := range pads {
		if pm.Parent != "" || pm.Children != nil {
			t.Errorf("PAD %s leaked tree links to the client", pm.ID)
		}
		if pm.URL == "" {
			t.Errorf("PAD %s missing download URL", pm.ID)
		}
	}
}

func TestNegotiateCacheHit(t *testing.T) {
	p := newTestProxy(t)
	env := desktopEnv()
	if _, err := p.Negotiate("webapp", env, 75); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Negotiate("webapp", env, 75); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Negotiations != 2 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 2 negotiations / 1 cache hit", st)
	}
	// A different environment misses.
	if _, err := p.Negotiate("webapp", pdaEnv(), 75); err != nil {
		t.Fatal(err)
	}
	if p.Stats().CacheHits != 1 {
		t.Fatal("different environment hit the cache")
	}
}

func TestPushAppMetaInvalidatesCache(t *testing.T) {
	p := newTestProxy(t)
	env := desktopEnv()
	if _, err := p.Negotiate("webapp", env, 75); err != nil {
		t.Fatal(err)
	}
	// Change the topology so direct disappears; cached result must go.
	app := testApp()
	app.PADs = app.PADs[1:]
	if err := p.PushAppMeta(app); err != nil {
		t.Fatal(err)
	}
	pads, err := p.Negotiate("webapp", env, 75)
	if err != nil {
		t.Fatal(err)
	}
	if pads[0].ID == "pad-direct" {
		t.Fatal("stale cached negotiation survived a topology push")
	}
	if p.Stats().CacheHits != 0 {
		t.Fatal("cache hit recorded across invalidation")
	}
}

func TestNegotiateErrors(t *testing.T) {
	p := newTestProxy(t)
	if _, err := p.Negotiate("unknown-app", desktopEnv(), 1); err == nil {
		t.Error("negotiation for unknown app succeeded")
	}
	bad := desktopEnv()
	bad.Dev.CPUMHz = 0
	if _, err := p.Negotiate("webapp", bad, 1); err == nil {
		t.Error("negotiation with invalid metadata succeeded")
	}
	if err := p.PushAppMeta(core.AppMeta{AppID: "x"}); err == nil {
		t.Error("invalid AppMeta accepted")
	}
}

func TestNegotiationManagerDirect(t *testing.T) {
	nm, err := NewNegotiationManager(testModel(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.PushAppMeta(testApp()); err != nil {
		t.Fatal(err)
	}
	if apps := nm.Apps(); len(apps) != 1 || apps[0] != "webapp" {
		t.Fatalf("apps = %v", apps)
	}
	res, err := nm.Negotiate("webapp", desktopEnv(), 75)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 {
		t.Fatalf("total overhead = %v", res.Total)
	}
	// Session override: negative falls back to the model default.
	if _, err := nm.Negotiate("webapp", desktopEnv(), -1); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(core.OverheadModel{}, 10); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := New(testModel(t), 0); err == nil {
		t.Error("zero cache capacity accepted")
	}
	if _, err := NewServer(nil, 1, nil); err == nil {
		t.Error("nil proxy accepted")
	}
	p := newTestProxy(t)
	if _, err := NewServer(p, 0, nil); err == nil {
		t.Error("zero concurrency accepted")
	}
}

// runNegotiation performs the client side of Figure 4 against an INP
// endpoint and returns the negotiated PADs.
func runNegotiation(t *testing.T, addr string, env core.Env) ([]core.PADMeta, error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	c := inp.NewConn(conn)
	var initRep inp.InitRep
	if err := c.Call(inp.MsgInitReq, inp.InitReq{AppID: "webapp", Resource: "page-000"}, inp.MsgInitRep, &initRep); err != nil {
		return nil, err
	}
	if !initRep.OK {
		return nil, fmt.Errorf("INIT refused: %s", initRep.Reason)
	}
	var tmpl inp.CliMetaReq
	if err := c.RecvInto(inp.MsgCliMetaReq, &tmpl); err != nil {
		return nil, err
	}
	var padRep inp.PADMetaRep
	if err := c.Call(inp.MsgCliMetaRep, inp.CliMetaRep{Dev: env.Dev, Ntwk: env.Ntwk, SessionRequests: 75}, inp.MsgPADMetaRep, &padRep); err != nil {
		return nil, err
	}
	return padRep.PADs, nil
}

func startServer(t *testing.T, p *Proxy) (addr string, shutdown func()) {
	t.Helper()
	srv, err := NewServer(p, 16, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), func() {
		if err := srv.Close(); err != nil {
			t.Logf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned %v", err)
		}
	}
}

func TestServerFullNegotiationOverTCP(t *testing.T) {
	p := newTestProxy(t)
	addr, shutdown := startServer(t, p)
	defer shutdown()
	pads, err := runNegotiation(t, addr, desktopEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(pads) != 1 || pads[0].ID != "pad-direct" {
		t.Fatalf("negotiated %v, want pad-direct", pads)
	}
}

func TestServerReportsNegotiationFailure(t *testing.T) {
	p := newTestProxy(t)
	addr, shutdown := startServer(t, p)
	defer shutdown()
	bad := desktopEnv()
	bad.Ntwk.BandwidthKbps = 0
	_, err := runNegotiation(t, addr, bad)
	if err == nil || !strings.Contains(err.Error(), "peer error") {
		t.Fatalf("err = %v, want peer error", err)
	}
}

func TestServerRejectsEmptyAppID(t *testing.T) {
	p := newTestProxy(t)
	addr, shutdown := startServer(t, p)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := inp.NewConn(conn)
	var rep inp.InitRep
	err = c.Call(inp.MsgInitReq, inp.InitReq{}, inp.MsgInitRep, &rep)
	if err == nil || !strings.Contains(err.Error(), "missing application id") {
		t.Fatalf("err = %v, want missing-app-id", err)
	}
}

func TestServerConcurrentNegotiations(t *testing.T) {
	p := newTestProxy(t)
	addr, shutdown := startServer(t, p)
	defer shutdown()
	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env := desktopEnv()
			if i%2 == 1 {
				env = pdaEnv()
			}
			pads, err := runNegotiation(t, addr, env)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			want := "pad-direct"
			if i%2 == 1 {
				want = "pad-bitmap"
			}
			if pads[0].ID != want {
				errs <- fmt.Errorf("client %d negotiated %s, want %s", i, pads[0].ID, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := p.Stats(); st.Negotiations != clients {
		t.Errorf("negotiations = %d, want %d", st.Negotiations, clients)
	}
}

func TestServerRejectsGarbageAndSurvives(t *testing.T) {
	p := newTestProxy(t)
	addr, shutdown := startServer(t, p)
	defer shutdown()
	// Raw garbage bytes: the session errors out server-side without
	// taking down the accept loop.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// A real negotiation still works afterwards.
	pads, err := runNegotiation(t, addr, desktopEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(pads) != 1 {
		t.Fatalf("pads = %d", len(pads))
	}
}

func TestServerRejectsWrongOpeningMessage(t *testing.T) {
	p := newTestProxy(t)
	addr, shutdown := startServer(t, p)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := inp.NewConn(conn)
	var rep inp.AppRep
	err = c.Call(inp.MsgAppReq, inp.AppReq{AppID: "webapp"}, inp.MsgAppRep, &rep)
	if err == nil || !strings.Contains(err.Error(), "unexpected") {
		t.Fatalf("err = %v, want unexpected-opening-message", err)
	}
}

func TestServerIdleTimeout(t *testing.T) {
	p := newTestProxy(t)
	srv, err := NewServer(p, 4, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetIdleTimeout(150 * time.Millisecond)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() { _ = srv.Close(); <-done }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection kept open")
	} else if strings.Contains(err.Error(), "i/o timeout") {
		t.Fatal("server never dropped the idle connection")
	}
}

func TestAppMetaPushOverTCP(t *testing.T) {
	p, err := New(testModel(t), 64)
	if err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, p)
	defer shutdown()
	// No topology yet: negotiation fails.
	if _, err := runNegotiation(t, addr, desktopEnv()); err == nil {
		t.Fatal("negotiation succeeded without a topology")
	}
	// Push over the wire, then negotiate.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := inp.NewConn(conn)
	var ack inp.AppMetaAck
	if err := c.Call(inp.MsgAppMetaPush, inp.AppMetaPush{App: testApp()}, inp.MsgAppMetaAck, &ack); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if !ack.OK {
		t.Fatalf("push rejected: %s", ack.Reason)
	}
	pads, err := runNegotiation(t, addr, desktopEnv())
	if err != nil {
		t.Fatal(err)
	}
	if pads[0].ID != "pad-direct" {
		t.Fatalf("negotiated %s after push", pads[0].ID)
	}
	// An invalid push is NACKed.
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c = inp.NewConn(conn)
	if err := c.Call(inp.MsgAppMetaPush, inp.AppMetaPush{App: core.AppMeta{AppID: "x"}}, inp.MsgAppMetaAck, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.OK {
		t.Fatal("invalid AppMeta acknowledged")
	}
}
