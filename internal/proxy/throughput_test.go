package proxy

import (
	"net"
	"sync"
	"testing"
	"time"

	"fractal/internal/core"
	"fractal/internal/inp"
)

// TestNegotiateSingleflightExactlyOneSearchPerKey is the cold-cache
// hammer (run under -race in CI): many goroutines negotiate a small set of
// unique cache keys concurrently, and the proxy must run exactly one path
// search per unique key — every other caller either joins the in-flight
// search or hits the cache the leader filled.
func TestNegotiateSingleflightExactlyOneSearchPerKey(t *testing.T) {
	p := newTestProxy(t)
	const (
		uniqueKeys = 8
		perKey     = 16
	)
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, uniqueKeys*perKey)
	for k := 0; k < uniqueKeys; k++ {
		env := desktopEnv()
		env.Dev.CPUMHz = float64(1000 + k) // distinct cache key per k
		for g := 0; g < perKey; g++ {
			wg.Add(1)
			go func(env core.Env) {
				defer wg.Done()
				<-start
				if _, err := p.Negotiate("webapp", env, 75); err != nil {
					errs <- err
				}
			}(env)
		}
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Searches != uniqueKeys {
		t.Errorf("Searches = %d, want exactly %d (one per unique key)", st.Searches, uniqueKeys)
	}
	if st.Negotiations != uniqueKeys*perKey {
		t.Errorf("Negotiations = %d, want %d", st.Negotiations, uniqueKeys*perKey)
	}
	if got := st.CacheHits + st.Searches + st.CollapsedSearches; got != st.Negotiations {
		t.Errorf("CacheHits(%d) + Searches(%d) + CollapsedSearches(%d) = %d, want Negotiations = %d",
			st.CacheHits, st.Searches, st.CollapsedSearches, got, st.Negotiations)
	}
}

// TestNegotiateCollapsesConcurrentMisses pins that followers arriving while
// a search is in flight join it rather than queueing their own: a blocking
// authorizer holds the leader inside the search until every follower has
// reached NegotiateFor.
func TestNegotiateCollapsesConcurrentMisses(t *testing.T) {
	p := newTestProxy(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	p.SetAuthorizer(AuthorizerFunc(func(principal, appID string, pad core.PADMeta) bool {
		once.Do(func() {
			close(entered)
			<-release
		})
		return true
	}))
	const followers = 8
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Negotiate("webapp", desktopEnv(), 75); err != nil {
			t.Error(err)
		}
	}()
	<-entered // the leader is now blocked mid-search
	var ready sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		ready.Add(1)
		go func() {
			defer wg.Done()
			ready.Done()
			if _, err := p.Negotiate("webapp", desktopEnv(), 75); err != nil {
				t.Error(err)
			}
		}()
	}
	ready.Wait()
	time.Sleep(100 * time.Millisecond) // let followers reach the singleflight
	close(release)
	wg.Wait()
	st := p.Stats()
	if st.Searches != 1 {
		t.Errorf("Searches = %d, want 1", st.Searches)
	}
	if st.CollapsedSearches < 1 {
		t.Errorf("CollapsedSearches = %d, want >= 1 (followers blocked behind the leader)", st.CollapsedSearches)
	}
	if got := st.CacheHits + st.Searches + st.CollapsedSearches; got != st.Negotiations {
		t.Errorf("counter invariant broken: %d hits + %d searches + %d collapsed != %d negotiations",
			st.CacheHits, st.Searches, st.CollapsedSearches, st.Negotiations)
	}
}

// TestNegotiateStatsSequential pins the counter semantics on the simple
// paths: a cold negotiation is a Search, a repeat is a CacheHit.
func TestNegotiateStatsSequential(t *testing.T) {
	p := newTestProxy(t)
	if _, err := p.Negotiate("webapp", desktopEnv(), 75); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Searches != 1 || st.CacheHits != 0 || st.CollapsedSearches != 0 {
		t.Fatalf("after cold negotiation: %+v", st)
	}
	if _, err := p.Negotiate("webapp", desktopEnv(), 75); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Searches != 1 || st.CacheHits != 1 {
		t.Fatalf("after warm negotiation: %+v", st)
	}
}

// partialNegotiation opens a session and stops after receiving the
// CLI_META_REQ template, leaving the server goroutine blocked waiting for
// the client metadata. finish completes the exchange.
func partialNegotiation(t *testing.T, addr string) (finish func() error, abort func()) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := inp.NewConn(conn)
	var initRep inp.InitRep
	if err := c.Call(inp.MsgInitReq, inp.InitReq{AppID: "webapp"}, inp.MsgInitRep, &initRep); err != nil {
		conn.Close()
		t.Fatal(err)
	}
	var tmpl inp.CliMetaReq
	if err := c.RecvInto(inp.MsgCliMetaReq, &tmpl); err != nil {
		conn.Close()
		t.Fatal(err)
	}
	env := desktopEnv()
	return func() error {
		defer conn.Close()
		var padRep inp.PADMetaRep
		return c.Call(inp.MsgCliMetaRep, inp.CliMetaRep{Dev: env.Dev, Ntwk: env.Ntwk, SessionRequests: 75}, inp.MsgPADMetaRep, &padRep)
	}, func() { conn.Close() }
}

// TestServerCloseDrainsInFlightSessions is the regression test for Close
// returning while sessions were still running: Close must block until the
// in-flight negotiation completes.
func TestServerCloseDrainsInFlightSessions(t *testing.T) {
	p := newTestProxy(t)
	srv, err := NewServer(p, 4, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	finish, abort := partialNegotiation(t, ln.Addr().String())
	defer abort()

	closeDone := make(chan error, 1)
	go func() { closeDone <- srv.Close() }()

	select {
	case err := <-closeDone:
		t.Fatalf("Close returned (%v) while a session was still in flight", err)
	case <-time.After(100 * time.Millisecond):
		// Close is correctly blocked on the open session.
	}

	if err := finish(); err != nil {
		t.Fatalf("in-flight session failed to complete during shutdown: %v", err)
	}
	if err := <-closeDone; err != nil {
		t.Errorf("close: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve returned %v", err)
	}
}

// TestServerCloseUnblocksSemaphoreWait covers the second half of the
// shutdown bug: with the concurrency limit saturated, the accept loop sits
// blocked handing a new connection a semaphore slot; Close must unblock it
// (dropping the pending connection) instead of letting the connection be
// served after shutdown began.
func TestServerCloseUnblocksSemaphoreWait(t *testing.T) {
	p := newTestProxy(t)
	srv, err := NewServer(p, 1, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// Session 1 occupies the only slot and stays in flight.
	finish, abort := partialNegotiation(t, ln.Addr().String())
	defer abort()

	// Session 2 is accepted but cannot get a slot.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	time.Sleep(50 * time.Millisecond) // let the accept loop block on the semaphore

	closeDone := make(chan error, 1)
	go func() { closeDone <- srv.Close() }()

	// The pending connection must be dropped, not served.
	_ = conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn2.Read(make([]byte, 1)); err == nil {
		t.Error("pending connection was served after Close")
	}

	if err := finish(); err != nil {
		t.Fatalf("in-flight session failed during shutdown: %v", err)
	}
	if err := <-closeDone; err != nil {
		t.Errorf("close: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve returned %v", err)
	}
}
