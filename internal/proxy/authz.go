package proxy

import (
	"fmt"
	"sync"
	"time"

	"fractal/internal/core"
)

// Authorizer decides whether a principal may use a PAD for an application,
// realizing the access-control integration the paper lists as future work
// (Section 6). The empty principal is an anonymous client.
type Authorizer interface {
	Allow(principal, appID string, pad core.PADMeta) bool
}

// AuthorizerFunc adapts a function to the Authorizer interface.
type AuthorizerFunc func(principal, appID string, pad core.PADMeta) bool

// Allow implements Authorizer.
func (f AuthorizerFunc) Allow(principal, appID string, pad core.PADMeta) bool {
	return f(principal, appID, pad)
}

// PolicyTable is a simple concrete Authorizer: per-principal protocol
// allowlists with a default-allow fallback for unlisted principals. It is
// safe for concurrent use.
type PolicyTable struct {
	mu    sync.RWMutex
	rules map[string]map[string]bool // principal -> allowed protocol set
}

// NewPolicyTable returns an empty table (every principal allowed
// everything until restricted).
func NewPolicyTable() *PolicyTable {
	return &PolicyTable{rules: map[string]map[string]bool{}}
}

// Restrict limits a principal to the listed protocol names.
func (p *PolicyTable) Restrict(principal string, protocols ...string) error {
	if principal == "" {
		return fmt.Errorf("proxy: cannot restrict the anonymous principal")
	}
	set := map[string]bool{}
	for _, proto := range protocols {
		if proto == "" {
			return fmt.Errorf("proxy: empty protocol in policy for %q", principal)
		}
		set[proto] = true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules[principal] = set
	return nil
}

// Clear removes a principal's restrictions.
func (p *PolicyTable) Clear(principal string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.rules, principal)
}

// Allow implements Authorizer.
func (p *PolicyTable) Allow(principal, appID string, pad core.PADMeta) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	set, restricted := p.rules[principal]
	if !restricted {
		return true
	}
	return set[pad.Protocol]
}

// SetAuthorizer installs (or clears, with nil) the proxy's access-control
// policy. Installing a policy invalidates nothing retroactively: callers
// should install policy before serving, or push AppMeta again to flush the
// adaptation cache.
func (p *Proxy) SetAuthorizer(a Authorizer) {
	p.authzMu.Lock()
	defer p.authzMu.Unlock()
	p.authz = a
}

// authorizer returns the current policy (nil = allow all).
func (p *Proxy) authorizer() Authorizer {
	p.authzMu.RLock()
	defer p.authzMu.RUnlock()
	return p.authz
}

// Outcome classifies how one negotiation was satisfied: served from the
// adaptation cache, by running a path search, or by joining another
// caller's in-flight search for the same key. Exactly one outcome is
// reported per successful negotiation, mirroring the Stats invariant
// Negotiations = CacheHits + Searches + CollapsedSearches.
type Outcome uint8

// Negotiation outcomes.
const (
	OutcomeHit Outcome = iota
	OutcomeSearch
	OutcomeCollapsed
)

// String names the outcome for logs and experiment rows.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeSearch:
		return "search"
	case OutcomeCollapsed:
		return "collapsed"
	}
	return "unknown"
}

// NegotiateFor is Negotiate with an authenticated principal: the
// adaptation cache is partitioned per principal and the path search only
// considers PADs the policy allows. Concurrent misses for the same cache
// key collapse into one search: one caller becomes the leader and runs the
// search, the rest block on its result and are counted as
// CollapsedSearches.
func (p *Proxy) NegotiateFor(principal, appID string, env core.Env, sessionRequests int) ([]core.PADMeta, error) {
	key := core.CacheKey{AppID: appID, Principal: principal, Dev: env.Dev, Ntwk: env.Ntwk}.String()
	pads, _, err := p.NegotiateKeyed(key, principal, appID, env, sessionRequests)
	return pads, err
}

// NegotiateKeyed is NegotiateFor for a caller that already rendered the
// canonical cache key (core.CacheKey.String over the same principal, app,
// and environment), so a front router that routed on the key does not
// build it twice. It additionally reports how the negotiation was
// satisfied; the fleet tier uses the outcome to drive warm-path
// replication and the load harness uses it to assign simulated service
// times. The warm path (cache hit) allocates only the defensive result
// copy; the singleflight closure below is built on misses only.
func (p *Proxy) NegotiateKeyed(key, principal, appID string, env core.Env, sessionRequests int) ([]core.PADMeta, Outcome, error) {
	if err := env.Validate(); err != nil {
		return nil, OutcomeHit, fmt.Errorf("proxy: client metadata: %w", err)
	}
	p.negotiations.Add(1)
	if pads, ok := p.cache.GetKeyed(key); ok {
		p.cacheHits.Add(1)
		return pads, OutcomeHit, nil
	}
	outcome := OutcomeSearch
	pads, err, joined := p.sf.Do(key, func() ([]core.PADMeta, error) {
		// Double-check under leadership: a previous leader may have filled
		// the cache between our miss and this call, so each unique key runs
		// at most one search no matter how callers interleave.
		if pads, ok := p.cache.GetKeyed(key); ok {
			p.cacheHits.Add(1)
			outcome = OutcomeHit
			return pads, nil
		}
		return p.searchAndFill(key, principal, appID, env, sessionRequests)
	})
	if joined {
		outcome = OutcomeCollapsed
		p.collapsedSearches.Add(1)
		if err == nil {
			// Followers share the leader's slice; hand each caller its own
			// copy, matching the cache's defensive-copy contract.
			pads = append([]core.PADMeta(nil), pads...)
		}
	}
	return pads, outcome, err
}

// SeedCache installs an already-prepared negotiation result under its
// canonical key, bypassing the path search. The fleet tier uses it for
// warm-path replication: when one shard fills a cold key, the prepared
// result may be copied to the key's rendezvous successors so a later
// membership change finds them warm. pads must already be client-prepared
// (links redacted, URLs filled); the cache stores a defensive copy.
func (p *Proxy) SeedCache(key string, pads []core.PADMeta) {
	p.cache.PutKeyed(key, pads)
}

// searchAndFill runs the authorized path search for a cache miss and
// stores the prepared result under the canonical key.
func (p *Proxy) searchAndFill(key, principal, appID string, env core.Env, sessionRequests int) ([]core.PADMeta, error) {
	authz := p.authorizer()
	var filter func(core.PADMeta) bool
	if authz != nil {
		filter = func(meta core.PADMeta) bool {
			return authz.Allow(principal, appID, meta)
		}
	}
	p.searches.Add(1)
	//fractal:allow simtime — wall-clock metric on the real serving path
	start := time.Now()
	res, err := p.nm.negotiateFiltered(appID, env, sessionRequests, filter)
	p.searchNanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return nil, err
	}
	pads := prepareForClient(res.PADs)
	p.cache.PutKeyed(key, pads)
	return pads, nil
}

// negotiateFiltered runs the path search with an optional authorization
// filter.
func (nm *NegotiationManager) negotiateFiltered(appID string, env core.Env, sessionRequests int, allow func(core.PADMeta) bool) (core.PathResult, error) {
	nm.mu.RLock()
	pat, ok := nm.pats[appID]
	model := nm.model
	nm.mu.RUnlock()
	if !ok {
		return core.PathResult{}, fmt.Errorf("proxy: no protocol adaptation topology for app %q", appID)
	}
	if sessionRequests > 0 {
		model.SessionRequests = sessionRequests
	}
	res, err := core.FindPathFiltered(pat, model, env, allow)
	if err != nil {
		return core.PathResult{}, fmt.Errorf("proxy: app %s: %w", appID, err)
	}
	return res, nil
}
