package proxy

import (
	"strings"
	"testing"

	"fractal/internal/core"
)

func TestPolicyTableBasics(t *testing.T) {
	pt := NewPolicyTable()
	pad := func(proto string) core.PADMeta { return core.PADMeta{ID: "p", Protocol: proto} }
	// Unrestricted principals get everything.
	if !pt.Allow("alice", "app", pad("varyblock")) {
		t.Fatal("unrestricted principal denied")
	}
	if err := pt.Restrict("guest", "direct", "gzip"); err != nil {
		t.Fatal(err)
	}
	if pt.Allow("guest", "app", pad("varyblock")) {
		t.Fatal("restricted principal allowed disallowed protocol")
	}
	if !pt.Allow("guest", "app", pad("gzip")) {
		t.Fatal("restricted principal denied allowed protocol")
	}
	pt.Clear("guest")
	if !pt.Allow("guest", "app", pad("varyblock")) {
		t.Fatal("cleared principal still restricted")
	}
	if err := pt.Restrict("", "direct"); err == nil {
		t.Fatal("anonymous restriction accepted")
	}
	if err := pt.Restrict("x", ""); err == nil {
		t.Fatal("empty protocol accepted")
	}
}

func TestNegotiateForAppliesPolicy(t *testing.T) {
	p := newTestProxy(t)
	pt := NewPolicyTable()
	// The PDA environment normally negotiates bitmap; deny it for guest.
	if err := pt.Restrict("guest", "direct", "gzip"); err != nil {
		t.Fatal(err)
	}
	p.SetAuthorizer(pt)

	admin, err := p.NegotiateFor("admin", "webapp", pdaEnv(), 75)
	if err != nil {
		t.Fatal(err)
	}
	if admin[0].Protocol != "bitmap" {
		t.Fatalf("admin negotiated %s, want bitmap", admin[0].Protocol)
	}
	guest, err := p.NegotiateFor("guest", "webapp", pdaEnv(), 75)
	if err != nil {
		t.Fatal(err)
	}
	if guest[0].Protocol == "bitmap" {
		t.Fatal("guest was granted a denied protocol")
	}
	if guest[0].Protocol != "gzip" {
		t.Fatalf("guest negotiated %s, want the next-best allowed (gzip)", guest[0].Protocol)
	}
}

func TestNegotiateForCacheIsolation(t *testing.T) {
	p := newTestProxy(t)
	pt := NewPolicyTable()
	if err := pt.Restrict("guest", "direct"); err != nil {
		t.Fatal(err)
	}
	p.SetAuthorizer(pt)
	// Same environment, different principals: results must not be shared
	// through the adaptation cache.
	full, err := p.NegotiateFor("admin", "webapp", pdaEnv(), 75)
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := p.NegotiateFor("guest", "webapp", pdaEnv(), 75)
	if err != nil {
		t.Fatal(err)
	}
	if full[0].Protocol == restricted[0].Protocol {
		t.Fatalf("cache leaked %s across principals", full[0].Protocol)
	}
	// Repeat negotiations hit per-principal entries.
	before := p.Stats().CacheHits
	if _, err := p.NegotiateFor("guest", "webapp", pdaEnv(), 75); err != nil {
		t.Fatal(err)
	}
	if p.Stats().CacheHits != before+1 {
		t.Fatal("per-principal cache entry missing")
	}
}

func TestNegotiateForDenyAllFails(t *testing.T) {
	p := newTestProxy(t)
	p.SetAuthorizer(AuthorizerFunc(func(principal, appID string, pad core.PADMeta) bool {
		return principal != "banned"
	}))
	_, err := p.NegotiateFor("banned", "webapp", desktopEnv(), 75)
	if err == nil || !strings.Contains(err.Error(), "no feasible adaptation path") {
		t.Fatalf("err = %v, want no-feasible-path for fully denied principal", err)
	}
	if _, err := p.NegotiateFor("ok", "webapp", desktopEnv(), 75); err != nil {
		t.Fatalf("unrelated principal affected: %v", err)
	}
}

func TestSetAuthorizerNilAllowsAll(t *testing.T) {
	p := newTestProxy(t)
	pt := NewPolicyTable()
	if err := pt.Restrict("guest", "direct"); err != nil {
		t.Fatal(err)
	}
	p.SetAuthorizer(pt)
	p.SetAuthorizer(nil)
	pads, err := p.NegotiateFor("guest", "webapp", pdaEnv(), 75)
	if err != nil {
		t.Fatal(err)
	}
	if pads[0].Protocol != "bitmap" {
		t.Fatalf("policy still applied after clearing: %s", pads[0].Protocol)
	}
}
