package proxy

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"fractal/internal/core"
	"fractal/internal/inp"
)

// BenchmarkNegotiateHot measures the cache-hit fast path: one key, warmed
// once, then hit repeatedly.
func BenchmarkNegotiateHot(b *testing.B) {
	p := newTestProxy(b)
	env := desktopEnv()
	if _, err := p.Negotiate("webapp", env, 75); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Negotiate("webapp", env, 75); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNegotiateCold measures the miss path end to end — key build,
// cache probe, singleflight, compiled path search, cache fill — by giving
// every iteration a distinct environment.
func BenchmarkNegotiateCold(b *testing.B) {
	p := newTestProxy(b)
	env := desktopEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Dev.CPUMHz = float64(1000 + i)
		if _, err := p.Negotiate("webapp", env, 75); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNegotiateParallel measures negotiation throughput across
// GOMAXPROCS goroutines over a sharded cache: a realistic mix of a few
// hundred distinct client configurations, mostly hits after warmup.
func BenchmarkNegotiateParallel(b *testing.B) {
	p, err := New(testModel(b), 4096)
	if err != nil {
		b.Fatal(err)
	}
	if err := p.PushAppMeta(testApp()); err != nil {
		b.Fatal(err)
	}
	const distinctEnvs = 512
	for i := 0; i < distinctEnvs; i++ {
		env := desktopEnv()
		env.Dev.CPUMHz = float64(1000 + i)
		if _, err := p.Negotiate("webapp", env, 75); err != nil {
			b.Fatal(err)
		}
	}
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		env := desktopEnv()
		for pb.Next() {
			env.Dev.CPUMHz = float64(1000 + ctr.Add(1)%distinctEnvs)
			if _, err := p.Negotiate("webapp", env, 75); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchNegotiation runs one Figure 4 session over a fresh connection,
// like runNegotiation without the *testing.T plumbing.
func benchNegotiation(addr string, env core.Env) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return benchSession(inp.NewConn(conn), env)
}

// benchSession runs one negotiation session over an established INP
// connection, the way a swarm client amortizes its dial: pipelined like
// TCPNegotiator — one write carries both requests, one fast-path server
// write carries all three replies — and advertising WireVersion so every
// session after the first runs fully binary in both directions.
func benchSession(c *inp.Conn, env core.Env) error {
	if err := c.Queue(inp.MsgInitReq,
		inp.InitReq{AppID: "webapp", Resource: "page-000", WireVersion: inp.Version2}); err != nil {
		return err
	}
	if err := c.Queue(inp.MsgCliMetaRep, inp.CliMetaRep{Dev: env.Dev, Ntwk: env.Ntwk, SessionRequests: 75}); err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	var initRep inp.InitRep
	if err := c.RecvInto(inp.MsgInitRep, &initRep); err != nil {
		return err
	}
	if !initRep.OK {
		return fmt.Errorf("INIT refused: %s", initRep.Reason)
	}
	var tmpl inp.CliMetaReq
	if err := c.RecvInto(inp.MsgCliMetaReq, &tmpl); err != nil {
		return err
	}
	var padRep inp.PADMetaRep
	return c.RecvInto(inp.MsgPADMetaRep, &padRep)
}

// benchServer starts a throughput-benchmark server and returns its
// address and a shutdown func.
func benchServer(b *testing.B) (addr string, shutdown func()) {
	b.Helper()
	p := newTestProxy(b)
	srv, err := NewServer(p, 64, func(string, ...interface{}) {})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	return ln.Addr().String(), func() {
		b.StopTimer()
		if err := srv.Close(); err != nil {
			b.Fatal(err)
		}
		if err := <-serveDone; err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerThroughput measures steady-state negotiation sessions
// over loopback INP/TCP with parallel clients, each holding a persistent
// connection — the swarm-client shape the serving path is built for. The
// first session on each connection negotiates the binary fast path; the
// measured loop then exercises the accept-side arena session, batched
// vectored framing, the binary codec in both directions, and the
// negotiation plane together.
func BenchmarkServerThroughput(b *testing.B) {
	addr, shutdown := benchServer(b)
	defer shutdown()
	env := desktopEnv()
	if err := benchNegotiation(addr, env); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		c := inp.NewConn(conn)
		// Warm session: upgrades the connection to the binary wire.
		if err := benchSession(c, env); err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			if err := benchSession(c, env); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServerThroughputColdDial is the old per-session-connection
// shape — dial, negotiate once, close — dominated by connection setup
// and teardown syscalls; kept as the baseline the persistent-connection
// path is measured against.
func BenchmarkServerThroughputColdDial(b *testing.B) {
	addr, shutdown := benchServer(b)
	defer shutdown()
	env := desktopEnv()
	if err := benchNegotiation(addr, env); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := benchNegotiation(addr, env); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
