package proxy

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"fractal/internal/core"
	"fractal/internal/inp"
)

// BenchmarkNegotiateHot measures the cache-hit fast path: one key, warmed
// once, then hit repeatedly.
func BenchmarkNegotiateHot(b *testing.B) {
	p := newTestProxy(b)
	env := desktopEnv()
	if _, err := p.Negotiate("webapp", env, 75); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Negotiate("webapp", env, 75); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNegotiateCold measures the miss path end to end — key build,
// cache probe, singleflight, compiled path search, cache fill — by giving
// every iteration a distinct environment.
func BenchmarkNegotiateCold(b *testing.B) {
	p := newTestProxy(b)
	env := desktopEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Dev.CPUMHz = float64(1000 + i)
		if _, err := p.Negotiate("webapp", env, 75); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNegotiateParallel measures negotiation throughput across
// GOMAXPROCS goroutines over a sharded cache: a realistic mix of a few
// hundred distinct client configurations, mostly hits after warmup.
func BenchmarkNegotiateParallel(b *testing.B) {
	p, err := New(testModel(b), 4096)
	if err != nil {
		b.Fatal(err)
	}
	if err := p.PushAppMeta(testApp()); err != nil {
		b.Fatal(err)
	}
	const distinctEnvs = 512
	for i := 0; i < distinctEnvs; i++ {
		env := desktopEnv()
		env.Dev.CPUMHz = float64(1000 + i)
		if _, err := p.Negotiate("webapp", env, 75); err != nil {
			b.Fatal(err)
		}
	}
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		env := desktopEnv()
		for pb.Next() {
			env.Dev.CPUMHz = float64(1000 + ctr.Add(1)%distinctEnvs)
			if _, err := p.Negotiate("webapp", env, 75); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchNegotiation is runNegotiation without the *testing.T plumbing, for
// benchmarks.
func benchNegotiation(addr string, env core.Env) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	c := inp.NewConn(conn)
	var initRep inp.InitRep
	if err := c.Call(inp.MsgInitReq, inp.InitReq{AppID: "webapp", Resource: "page-000"}, inp.MsgInitRep, &initRep); err != nil {
		return err
	}
	if !initRep.OK {
		return fmt.Errorf("INIT refused: %s", initRep.Reason)
	}
	var tmpl inp.CliMetaReq
	if err := c.RecvInto(inp.MsgCliMetaReq, &tmpl); err != nil {
		return err
	}
	var padRep inp.PADMetaRep
	return c.Call(inp.MsgCliMetaRep, inp.CliMetaRep{Dev: env.Dev, Ntwk: env.Ntwk, SessionRequests: 75}, inp.MsgPADMetaRep, &padRep)
}

// BenchmarkServerThroughput measures full negotiation sessions over
// loopback INP/TCP — connect, Figure 4 exchange, close — with parallel
// clients, exercising the accept loop, pooled framing, and the negotiation
// plane together.
func BenchmarkServerThroughput(b *testing.B) {
	p := newTestProxy(b)
	srv, err := NewServer(p, 64, func(string, ...interface{}) {})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()
	env := desktopEnv()
	if err := benchNegotiation(addr, env); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := benchNegotiation(addr, env); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		b.Fatal(err)
	}
}
