package proxy

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"fractal/internal/arena"
	"fractal/internal/core"
	"fractal/internal/inp"
)

// Server is the proxy's INP front end: goroutine-per-connection with a
// bounded concurrency semaphore, running the Figure 4 negotiation exchange
// (INIT_REQ -> INIT_REP + CLI_META_REQ -> CLI_META_REP -> PAD_META_REP)
// on each connection. Server is safe for concurrent use: its own fields
// are immutable after construction and the Proxy it fronts synchronizes
// itself.
type Server struct {
	proxy *Proxy
	sem   chan struct{}
	logf  func(format string, args ...interface{})
	// idle bounds how long a session may sit between messages; zero
	// means no limit.
	idle   time.Duration
	mu     sync.Mutex
	ln     net.Listener
	closed bool
	// done is closed by Close so an accept loop blocked on the concurrency
	// semaphore abandons its pending connection instead of serving it after
	// shutdown began.
	done chan struct{}
	wg   sync.WaitGroup
}

// SetIdleTimeout bounds the gap between messages on each session; it must
// be called before Serve.
func (s *Server) SetIdleTimeout(d time.Duration) { s.idle = d }

// armDeadline applies the idle timeout to a connection if configured.
// Both directions are bounded: a peer that stops reading mid-reply (a
// stalled or reset client) must not pin the serving goroutine any longer
// than one that stops sending.
func (s *Server) armDeadline(conn net.Conn) {
	if s.idle > 0 {
		//fractal:allow simtime — real socket read deadline, not simulated time
		_ = conn.SetReadDeadline(time.Now().Add(s.idle))
		//fractal:allow simtime — real socket write deadline, not simulated time
		_ = conn.SetWriteDeadline(time.Now().Add(s.idle))
	}
}

// NewServer wraps a proxy. maxConcurrent bounds simultaneously served
// negotiations; logf defaults to log.Printf.
func NewServer(p *Proxy, maxConcurrent int, logf func(string, ...interface{})) (*Server, error) {
	if p == nil {
		return nil, errors.New("proxy: server needs a proxy")
	}
	if maxConcurrent < 1 {
		return nil, fmt.Errorf("proxy: server concurrency must be >= 1, got %d", maxConcurrent)
	}
	if logf == nil {
		logf = log.Printf
	}
	return &Server{proxy: p, sem: make(chan struct{}, maxConcurrent), logf: logf, done: make(chan struct{})}, nil
}

// Serve accepts connections from l until Close. It returns nil after a
// clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("proxy: server already closed")
	}
	s.ln = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("proxy: accept: %w", err)
		}
		select {
		case s.sem <- struct{}{}:
		case <-s.done:
			// Close ran while we waited for a concurrency slot: drop the
			// pending connection rather than serving it after shutdown.
			conn.Close()
			s.wg.Wait()
			return nil
		}
		s.wg.Add(1)
		go func() {
			defer func() {
				<-s.sem
				s.wg.Done()
			}()
			defer conn.Close()
			if err := s.ServeConn(conn); err != nil {
				s.logf("proxy: session from %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Close stops accepting and does not return until every in-flight session
// has drained. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if !alreadyClosed {
		close(s.done)
		if ln != nil {
			err = ln.Close()
		}
	}
	s.wg.Wait()
	return err
}

// ServeConn serves sessions over an established connection until the
// peer disconnects: any number of client negotiations (INIT_REQ) — the
// connection is persistent, so a client can run session after session
// without paying a dial per negotiation — or application-server topology
// pushes (APP_META_PUSH). The connection's buffers come from one arena
// session released when the connection is done, and a client that
// pipelines CLI_META_REP behind INIT_REQ gets the whole negotiation
// phase answered in a single vectored write (the serving fast path).
func (s *Server) ServeConn(rw net.Conn) error {
	sess := arena.AcquireSession()
	defer sess.Release()
	c := inp.NewConnSession(rw, sess)

	for first := true; ; first = false {
		s.armDeadline(rw)
		h, raw, err := c.Recv()
		if err != nil {
			if !first && errors.Is(err, io.EOF) {
				// Clean disconnect at a session boundary ends the
				// persistent connection.
				return nil
			}
			if first {
				return fmt.Errorf("reading first message: %w", err)
			}
			return fmt.Errorf("reading next session: %w", err)
		}
		switch h.Type {
		case inp.MsgAppMetaPush:
			var push inp.AppMetaPush
			if err := inp.DecodeBody(raw, &push); err != nil {
				return err
			}
			if err := s.proxy.PushAppMeta(push.App); err != nil {
				_ = c.Send(inp.MsgAppMetaAck, inp.AppMetaAck{OK: false, Reason: err.Error()})
				return err
			}
			if err := c.Send(inp.MsgAppMetaAck, inp.AppMetaAck{OK: true}); err != nil {
				return err
			}
		case inp.MsgInitReq:
			if err := s.negotiate(c, rw, h, raw); err != nil {
				return err
			}
		default:
			_ = c.SendError(fmt.Sprintf("unexpected %v to open a session", h.Type))
			return fmt.Errorf("unexpected opening message %v", h.Type)
		}
	}
}

// negotiate runs one Figure 4 exchange whose opening INIT_REQ has just
// been read into raw.
func (s *Server) negotiate(c *inp.Conn, rw net.Conn, h inp.Header, raw []byte) error {
	// Decode before any further Recv: the raw slice is session-scoped and
	// the next frame overwrites it.
	var initReq inp.InitReq
	if err := inp.DecodeRaw(h, raw, &initReq); err != nil {
		return fmt.Errorf("reading INIT_REQ: %w", err)
	}
	// A client advertising Version2 decodes binary bodies, so every hot
	// reply from here on ships on the binary fast path.
	if initReq.WireVersion >= inp.Version2 {
		c.EnableBinary()
	}
	// A pipelined client has already flushed CLI_META_REP behind INIT_REQ;
	// drain it before any refusal so an error reply is not lost to a
	// connection reset over unread input, and before the fast-path reply
	// burst below.
	fast := c.InputPending()
	var meta inp.CliMetaRep
	if fast {
		if err := c.RecvInto(inp.MsgCliMetaRep, &meta); err != nil {
			return fmt.Errorf("reading pipelined CLI_META_REP: %w", err)
		}
	}
	if initReq.AppID == "" {
		_ = c.SendError("INIT_REQ missing application id")
		return errors.New("INIT_REQ missing application id")
	}
	if err := c.Queue(inp.MsgInitRep, inp.InitRep{OK: true}); err != nil {
		return fmt.Errorf("sending INIT_REP: %w", err)
	}
	// Empty templates for the client to fill by probing its system.
	if err := c.Queue(inp.MsgCliMetaReq, inp.CliMetaReq{}); err != nil {
		return fmt.Errorf("sending CLI_META_REQ: %w", err)
	}
	if !fast {
		// Classic exchange: flush the two requests, wait for the client's
		// metadata before the negotiation answer.
		if err := c.Flush(); err != nil {
			return fmt.Errorf("sending INIT_REP: %w", err)
		}
		s.armDeadline(rw)
		if err := c.RecvInto(inp.MsgCliMetaRep, &meta); err != nil {
			return fmt.Errorf("reading CLI_META_REP: %w", err)
		}
	}

	env := core.Env{Dev: meta.Dev, Ntwk: meta.Ntwk}
	pads, err := s.proxy.NegotiateFor(initReq.ClientID, initReq.AppID, env, meta.SessionRequests)
	if err != nil {
		// SendError flushes any queued fast-path replies ahead of the
		// error frame, keeping the stream sequential for the client.
		_ = c.SendError(err.Error())
		return err
	}
	if err := c.Queue(inp.MsgPADMetaRep, inp.PADMetaRep{PADs: pads}); err != nil {
		return fmt.Errorf("sending PAD_META_REP: %w", err)
	}
	// On the fast path this single flush answers INIT_REP, CLI_META_REQ,
	// and PAD_META_REP in one vectored write.
	if err := c.Flush(); err != nil {
		return fmt.Errorf("sending PAD_META_REP: %w", err)
	}
	return nil
}
