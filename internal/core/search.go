package core

import (
	"fmt"
	"math"
	"sort"
)

// PathResult is the outcome of the adaptation path search: the PADs (with
// symbolic links resolved) forming the least-total-overhead root-to-leaf
// path, their summed overhead in seconds, and the per-node breakdowns.
type PathResult struct {
	PADs      []PADMeta
	NodeIDs   []string // tree node ids, which may include symbolic links
	Total     float64
	Breakdown map[string]Breakdown // keyed by tree node id
}

// ErrNoFeasiblePath is returned (wrapped) when every root-to-leaf path has
// infinite total overhead for the environment.
var ErrNoFeasiblePath = fmt.Errorf("core: no feasible adaptation path")

// FindPath implements the adaptation path search algorithm (Figure 6):
// mark every PAT node with its total overhead from Equation 3 — infinity
// meaning "not suitable for this client environment" — then traverse each
// root-to-leaf path depth-first and return the one with the least sum.
//
//fractal:hotpath every negotiation cache miss runs the path search
func FindPath(t *PAT, m OverheadModel, env Env) (PathResult, error) {
	return FindPathFiltered(t, m, env, nil)
}

// FindPathFiltered is FindPath with an authorization filter: PADs for
// which allow returns false are marked infeasible before the search, the
// hook used by the proxy's access-control extension. A nil filter allows
// everything.
//
// The search runs over the PAT's compiled index (see searchindex.go) and
// returns results identical — node order, tie-breaking, totals, breakdowns
// — to the reference algorithm below.
//
//fractal:hotpath the compiled search is the negotiation plane's inner loop
func FindPathFiltered(t *PAT, m OverheadModel, env Env, allow func(PADMeta) bool) (PathResult, error) {
	if t == nil {
		return PathResult{}, fmt.Errorf("core: FindPath on nil PAT")
	}
	if err := m.Validate(); err != nil {
		return PathResult{}, err
	}
	if err := env.Validate(); err != nil {
		return PathResult{}, err
	}
	idx := t.index
	if idx == nil {
		// A PAT that never compiled (not produced by BuildPAT) still
		// searches correctly through the reference algorithm.
		return findPathReference(t, m, env, allow)
	}

	// Step 1: mark each node slot with its total overhead, into a pooled
	// slice instead of a fresh map. Symbolic links were resolved at
	// compile time.
	mp := marksPool.Get().(*[]Breakdown)
	marks := *mp
	if cap(marks) < len(idx.ids) {
		marks = make([]Breakdown, len(idx.ids))
	} else {
		marks = marks[:len(idx.ids)]
	}
	// Point mp at the (possibly regrown) backing array now, so the defer
	// is a plain pooled put — a capturing closure here would itself
	// allocate on every search.
	*mp = marks[:0]
	defer marksPool.Put(mp)
	for i := range idx.ids {
		if allow != nil && !allow(idx.metas[i]) {
			marks[i] = Breakdown{ClientComp: math.Inf(1)}
			continue
		}
		marks[i] = m.padTotal(idx.metas[i], env)
	}

	// Step 2: scan the flattened root-to-leaf paths keeping the least
	// total; strict < preserves the reference tie-breaking (first path in
	// Paths() order wins).
	bestTotal := math.Inf(1)
	bestPath := -1
	for pi, path := range idx.paths {
		total := 0.0
		for _, s := range path {
			total += marks[s].Total()
		}
		if total < bestTotal {
			bestTotal = total
			bestPath = pi
		}
	}
	if math.IsInf(bestTotal, 1) {
		return PathResult{}, fmt.Errorf("%w for app %s in env {%s %s}", ErrNoFeasiblePath, t.AppID(), env.Dev.Key(), env.Ntwk.Key())
	}

	path := idx.paths[bestPath]
	best := PathResult{
		PADs:      make([]PADMeta, 0, len(path)),
		NodeIDs:   make([]string, len(path)),
		Total:     bestTotal,
		Breakdown: make(map[string]Breakdown, len(path)),
	}
	for j, s := range path {
		id := idx.ids[s]
		best.NodeIDs[j] = id
		best.PADs = append(best.PADs, idx.metas[s])
		best.Breakdown[id] = marks[s]
	}
	return best, nil
}

// findPathReference is the original map-and-walk implementation of the
// adaptation path search. It is kept verbatim as the behavioural pin for
// the compiled index (the differential test drives both over the full
// case-study sweep) and as the fallback for a PAT without an index.
func findPathReference(t *PAT, m OverheadModel, env Env, allow func(PADMeta) bool) (PathResult, error) {
	// Step 1: mark each node with its total overhead (resolving symbolic
	// links so an alias inherits its target's cost).
	marks := map[string]Breakdown{}
	for _, id := range t.allIDs() {
		meta, err := t.Resolve(id)
		if err != nil {
			return PathResult{}, err
		}
		if allow != nil && !allow(meta) {
			marks[id] = Breakdown{ClientComp: math.Inf(1)}
			continue
		}
		b, err := m.PADTotal(meta, env)
		if err != nil {
			return PathResult{}, fmt.Errorf("core: marking PAD %s: %w", id, err)
		}
		marks[id] = b
	}

	// Step 2: DFS over root-to-leaf paths keeping the least total.
	best := PathResult{Total: math.Inf(1)}
	for _, path := range t.Paths() {
		total := 0.0
		for _, id := range path {
			total += marks[id].Total()
		}
		if total < best.Total {
			best = PathResult{NodeIDs: append([]string(nil), path...), Total: total}
		}
	}
	if math.IsInf(best.Total, 1) {
		return PathResult{}, fmt.Errorf("%w for app %s in env {%s %s}", ErrNoFeasiblePath, t.AppID(), env.Dev.Key(), env.Ntwk.Key())
	}

	best.Breakdown = map[string]Breakdown{}
	for _, id := range best.NodeIDs {
		meta, err := t.Resolve(id)
		if err != nil {
			return PathResult{}, err
		}
		best.PADs = append(best.PADs, meta)
		best.Breakdown[id] = marks[id]
	}
	return best, nil
}

// allIDs returns every node id in deterministic order.
func (t *PAT) allIDs() []string {
	ids := make([]string, 0, len(t.nodes))
	for id := range t.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
