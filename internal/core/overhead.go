package core

import (
	"fmt"
	"math"
)

// Reference constants of the linear model (Section 3.4.2): overheads are
// pre-measured on a 500 MHz processor and a 1 Mbps network and scaled
// linearly to the client's hardware.
const (
	StdCPUMHz        = 500.0
	StdBandwidthKbps = 1000.0
)

// Breakdown is the per-term decomposition of Equation 3 for one PAD in one
// environment, in seconds. Any term may be +Inf when a normalized ratio
// disqualifies the combination.
type Breakdown struct {
	Download   float64 // retrieving the PAD itself
	ServerComp float64 // server-side computing (zero when precomputed)
	ClientComp float64 // client-side computing
	Traffic    float64 // transmitting the PAD-encoded content
}

// Total returns the summed overhead.
func (b Breakdown) Total() float64 {
	return b.Download + b.ServerComp + b.ClientComp + b.Traffic
}

// IsFeasible reports whether the PAD can run at all in the environment.
func (b Breakdown) IsFeasible() bool { return !math.IsInf(b.Total(), 1) }

// OverheadModel evaluates Equation 3. It is immutable after construction
// and safe for concurrent use.
type OverheadModel struct {
	// Matrices are the normalized ratio corrections (Equation 2).
	Matrices Matrices
	// Rho is the application-level available-bandwidth fraction (≈0.8).
	Rho float64
	// ServerCPUMHz scales the pre-measured reference server computing
	// cost to the deployment's application server.
	ServerCPUMHz float64
	// IncludeServerComp distinguishes reactive adaptive content (true,
	// Figures 10(a–c)/11(b)) from proactively precomputed content (false,
	// Figures 10(d)/11(c)).
	IncludeServerComp bool
	// SessionRequests amortizes the one-time PAD download over the
	// expected number of requests in the application session (>= 1).
	SessionRequests int
}

// Validate reports whether the model parameters are usable.
func (m OverheadModel) Validate() error {
	if err := m.Matrices.Validate(); err != nil {
		return err
	}
	if m.Rho <= 0 || m.Rho > 1 {
		return fmt.Errorf("core: rho must be in (0,1], got %v", m.Rho)
	}
	if m.ServerCPUMHz <= 0 {
		return fmt.Errorf("core: server CPU speed must be positive, got %v", m.ServerCPUMHz)
	}
	if m.SessionRequests < 1 {
		return fmt.Errorf("core: session must have >= 1 request, got %d", m.SessionRequests)
	}
	return nil
}

// PADTotal evaluates Equation 3 for one PAD in one client environment:
//
//	total = PADsize/(ρ·CliBW)/session                (download, amortized)
//	      + serverComp·(StdCPU/ServerCPU)            (if reactive)
//	      + α(p,cpu)·β(p,os)·clientComp·(StdCPU/CliCPU)
//	      + γ(p,net)·(traffic+upstream)/(ρ·CliBW)
//
// Symbolic links must be resolved by the caller before evaluation.
func (m OverheadModel) PADTotal(p PADMeta, env Env) (Breakdown, error) {
	if err := m.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := env.Validate(); err != nil {
		return Breakdown{}, err
	}
	if p.Alias != "" {
		return Breakdown{}, fmt.Errorf("core: PADTotal on unresolved symbolic link %s -> %s", p.ID, p.Alias)
	}
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	return m.padTotal(p, env), nil
}

// padTotal is PADTotal without the input validation, for the compiled
// search path where the model, environment, and every resolved PADMeta
// were validated up front (FindPathFiltered validates the model and
// environment per call; BuildPAT/AddPAD validate the metadata).
func (m OverheadModel) padTotal(p PADMeta, env Env) Breakdown {
	effBps := m.Rho * env.Ntwk.BandwidthKbps * 1000.0
	var b Breakdown

	b.Download = float64(p.Size) * 8.0 / effBps / float64(m.SessionRequests)

	if m.IncludeServerComp {
		b.ServerComp = p.Overhead.ServerCompStd.Seconds() * StdCPUMHz / m.ServerCPUMHz
	}

	alpha := m.Matrices.A.Ratio(p.Protocol, env.Dev.CPUType)
	beta := m.Matrices.B.Ratio(p.Protocol, env.Dev.OSType)
	gamma := m.Matrices.R.Ratio(p.Protocol, env.Ntwk.NetworkType)
	// An infinite ratio disqualifies the PAD outright, even when the
	// scaled term would be zero (Inf * 0 is NaN, not a disqualifier).
	if math.IsInf(alpha, 1) || math.IsInf(beta, 1) {
		b.ClientComp = math.Inf(1)
	} else {
		b.ClientComp = alpha * beta * p.Overhead.ClientCompStd.Seconds() * StdCPUMHz / env.Dev.CPUMHz
	}
	if math.IsInf(gamma, 1) && p.Overhead.TrafficBytes+p.Overhead.UpstreamBytes == 0 {
		b.Traffic = math.Inf(1)
	} else {
		b.Traffic = gamma * float64(p.Overhead.TrafficBytes+p.Overhead.UpstreamBytes) * 8.0 / effBps
	}

	return b
}
