package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// --- metadata ---

func validEnv() Env {
	return Env{
		Dev:  DevMeta{OSType: OSFedora, CPUType: CPUTypeP4, CPUMHz: 2000, MemMB: 512},
		Ntwk: NtwkMeta{NetworkType: NetLAN, BandwidthKbps: 100000},
	}
}

func TestMetadataValidation(t *testing.T) {
	if err := validEnv().Validate(); err != nil {
		t.Fatalf("valid env rejected: %v", err)
	}
	bad := []Env{
		{Dev: DevMeta{CPUType: "x", CPUMHz: 1, MemMB: 1}, Ntwk: NtwkMeta{NetworkType: "n", BandwidthKbps: 1}},
		{Dev: DevMeta{OSType: "o", CPUType: "x", CPUMHz: 0, MemMB: 1}, Ntwk: NtwkMeta{NetworkType: "n", BandwidthKbps: 1}},
		{Dev: DevMeta{OSType: "o", CPUType: "x", CPUMHz: 1, MemMB: 0}, Ntwk: NtwkMeta{NetworkType: "n", BandwidthKbps: 1}},
		{Dev: DevMeta{OSType: "o", CPUType: "x", CPUMHz: 1, MemMB: 1}, Ntwk: NtwkMeta{NetworkType: "", BandwidthKbps: 1}},
		{Dev: DevMeta{OSType: "o", CPUType: "x", CPUMHz: 1, MemMB: 1}, Ntwk: NtwkMeta{NetworkType: "n", BandwidthKbps: 0}},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: invalid env validated", i)
		}
	}
}

func TestPADMetaValidation(t *testing.T) {
	good := PADMeta{ID: "p", Protocol: "direct"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid PADMeta rejected: %v", err)
	}
	bad := []PADMeta{
		{Protocol: "direct"},               // no id
		{ID: "p"},                          // no protocol, no alias
		{ID: "p", Alias: "p"},              // self alias
		{ID: "p", Protocol: "d", Size: -1}, // negative size
		{ID: "p", Protocol: "d", Children: []string{"p"}}, // self child
		{ID: "p", Protocol: "d", Overhead: PADOverhead{TrafficBytes: -1}},
		{ID: "p", Protocol: "d", Overhead: PADOverhead{ServerCompStd: -time.Second}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid PADMeta validated: %+v", i, p)
		}
	}
}

func TestPADMetaRedacted(t *testing.T) {
	p := PADMeta{ID: "p", Protocol: "d", Parent: "q", Children: []string{"a", "b"}}
	r := p.Redacted()
	if r.Parent != "" || r.Children != nil {
		t.Fatal("Redacted did not hide tree links")
	}
	if p.Parent != "q" || len(p.Children) != 2 {
		t.Fatal("Redacted modified the original")
	}
}

// --- ratio matrices ---

func TestRatioMatrixBasics(t *testing.T) {
	m, err := NewRatioMatrix("A", []string{"gzip"}, []string{"P", "D"}, [][]float64{{1.1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Ratio("gzip", "P"); got != 1.1 {
		t.Fatalf("Ratio = %v, want 1.1", got)
	}
	// Unknown protocol or env type falls back to the neutral ratio.
	if got := m.Ratio("direct", "P"); got != 1 {
		t.Fatalf("unknown protocol ratio = %v, want 1", got)
	}
	if got := m.Ratio("gzip", "SPARC"); got != 1 {
		t.Fatalf("unknown column ratio = %v, want 1", got)
	}
}

func TestRatioMatrixValidation(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols []string
		vals       [][]float64
	}{
		{"", []string{"a"}, []string{"b"}, [][]float64{{1}}},
		{"m", nil, []string{"b"}, nil},
		{"m", []string{"a"}, nil, [][]float64{{}}},
		{"m", []string{"a"}, []string{"b"}, [][]float64{}},
		{"m", []string{"a"}, []string{"b"}, [][]float64{{1, 2}}},
		{"m", []string{"a"}, []string{"b"}, [][]float64{{0}}},
		{"m", []string{"a"}, []string{"b"}, [][]float64{{-1}}},
		{"m", []string{"a", "a"}, []string{"b"}, [][]float64{{1}, {1}}},
		{"m", []string{"a"}, []string{"b", "b"}, [][]float64{{1, 1}}},
	}
	for i, c := range cases {
		if _, err := NewRatioMatrix(c.name, c.rows, c.cols, c.vals); err == nil {
			t.Errorf("case %d: invalid matrix accepted", i)
		}
	}
}

// The paper's WinMedia/Kinoma example: the linearly-cheaper player is
// disqualified by an infinite OS ratio.
func TestMediaPlayerExample(t *testing.T) {
	m, err := MediaPlayerExampleMatrix()
	if err != nil {
		t.Fatal(err)
	}
	// Linear estimates: WinMedia 5s, Kinoma 2s. On WinCE the matrix flips
	// the decision.
	winmedia := 5.0 * m.Ratio("winmedia", "WinCE")
	kinoma := 2.0 * m.Ratio("kinoma", "WinCE")
	if !math.IsInf(kinoma, 1) {
		t.Fatalf("Kinoma on WinCE = %v, want +Inf", kinoma)
	}
	if winmedia >= kinoma {
		t.Fatal("WinMedia should win on WinCE")
	}
	// And on PalmOS the reverse.
	if !math.IsInf(5.0*m.Ratio("winmedia", "PalmOS"), 1) {
		t.Fatal("WinMedia on PalmOS should be infinite")
	}
}

func TestNeutralMatrices(t *testing.T) {
	ms, err := Neutral([]string{"p1", "p2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
	if ms.A.Ratio("p1", "whatever") != 1 || ms.R.Ratio("p2", "x") != 1 {
		t.Fatal("neutral matrices are not all ones")
	}
}

// --- PAT ---

// figure5App reproduces the shape of the paper's Figure 5: PAD1..PAD8 with
// PAD6 a symbolic link to PAD7 (needed by both PAD1 and PAD2).
func figure5App() AppMeta {
	pad := func(id, parent string, children []string, clientStd time.Duration) PADMeta {
		return PADMeta{
			ID: id, Protocol: "proto-" + id, Parent: parent, Children: children,
			Overhead: PADOverhead{ClientCompStd: clientStd},
		}
	}
	link := func(id, parent, target string) PADMeta {
		return PADMeta{ID: id, Parent: parent, Alias: target}
	}
	return AppMeta{
		AppID: "fig5",
		PADs: []PADMeta{
			pad("PAD1", "", []string{"PAD4", "PAD5", "PAD6"}, 8*time.Second),
			pad("PAD2", "", []string{"PAD7"}, 4*time.Second),
			pad("PAD3", "", []string{"PAD8a"}, 20*time.Second),
			pad("PAD4", "PAD1", nil, 6*time.Second),
			pad("PAD5", "PAD1", nil, 9*time.Second),
			link("PAD6", "PAD1", "PAD7"),
			pad("PAD7", "PAD2", nil, 5*time.Second),
			pad("PAD8a", "PAD3", nil, 7*time.Second),
		},
	}
}

func TestBuildPATFigure5(t *testing.T) {
	tr, err := BuildPAT(figure5App())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 8 {
		t.Fatalf("tree has %d nodes, want 8", tr.Len())
	}
	paths := tr.Paths()
	// Leaves: PAD4, PAD5, PAD6(link), PAD7, PAD8a => 5 paths.
	if len(paths) != 5 {
		t.Fatalf("got %d paths, want 5 (= number of leaves): %v", len(paths), paths)
	}
	leaves := tr.Leaves()
	if len(leaves) != len(paths) {
		t.Fatalf("paths (%d) != leaves (%d)", len(paths), len(leaves))
	}
	// The symbolic link resolves to its target's metadata.
	meta, err := tr.Resolve("PAD6")
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != "PAD7" {
		t.Fatalf("PAD6 resolves to %s, want PAD7", meta.ID)
	}
	direct, err := tr.Resolve("PAD4")
	if err != nil || direct.ID != "PAD4" {
		t.Fatalf("PAD4 resolves to %v, %v", direct.ID, err)
	}
	if _, err := tr.Resolve("PAD99"); err == nil {
		t.Fatal("resolving unknown PAD succeeded")
	}
}

func TestBuildPATRejectsBadTopologies(t *testing.T) {
	base := figure5App()
	mutate := func(f func(*AppMeta)) AppMeta {
		app := AppMeta{AppID: base.AppID, PADs: append([]PADMeta(nil), base.PADs...)}
		f(&app)
		return app
	}
	cases := []struct {
		name string
		app  AppMeta
	}{
		{"empty", AppMeta{AppID: "x"}},
		{"no app id", AppMeta{PADs: base.PADs}},
		{"duplicate id", mutate(func(a *AppMeta) { a.PADs = append(a.PADs, a.PADs[0]) })},
		{"unknown child", mutate(func(a *AppMeta) { a.PADs[0].Children = append(a.PADs[0].Children, "ghost") })},
		{"unknown parent", mutate(func(a *AppMeta) { a.PADs[3].Parent = "ghost" })},
		{"parent not listing child", mutate(func(a *AppMeta) { a.PADs[3].Parent = "PAD2" })},
		{"alias to unknown", mutate(func(a *AppMeta) { a.PADs[5].Alias = "ghost" })},
		{"alias with children", mutate(func(a *AppMeta) {
			a.PADs[5].Alias = "PAD7"
			a.PADs[5].Children = []string{"PAD4"}
		})},
	}
	for _, c := range cases {
		if _, err := BuildPAT(c.app); err == nil {
			t.Errorf("%s: invalid topology accepted", c.name)
		}
	}
}

func TestBuildPATRejectsCycle(t *testing.T) {
	app := AppMeta{
		AppID: "cyclic",
		PADs: []PADMeta{
			{ID: "a", Protocol: "pa", Parent: "b", Children: []string{"b"}},
			{ID: "b", Protocol: "pb", Parent: "a", Children: []string{"a"}},
		},
	}
	if _, err := BuildPAT(app); err == nil {
		t.Fatal("cyclic topology accepted")
	}
}

func TestPATAddPAD(t *testing.T) {
	tr, err := BuildPAT(figure5App())
	if err != nil {
		t.Fatal(err)
	}
	before := len(tr.Paths())
	// Extending a leaf (PAD4) turns it into an internal node: same path
	// count. Adding a child to PAD3 (internal after PAD8a) adds one.
	if err := tr.AddPAD(PADMeta{ID: "PAD9", Protocol: "p9", Parent: "PAD4"}); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Paths()); got != before {
		t.Fatalf("paths after extending a leaf = %d, want %d", got, before)
	}
	if err := tr.AddPAD(PADMeta{ID: "PAD10", Protocol: "p10", Parent: "PAD3"}); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Paths()); got != before+1 {
		t.Fatalf("paths after new branch = %d, want %d", got, before+1)
	}
	// New top-level protocol.
	if err := tr.AddPAD(PADMeta{ID: "PAD11", Protocol: "p11"}); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Paths()); got != before+2 {
		t.Fatalf("paths after new root = %d, want %d", got, before+2)
	}
	// Error cases.
	if err := tr.AddPAD(PADMeta{ID: "PAD9", Protocol: "dup"}); err == nil {
		t.Error("duplicate AddPAD accepted")
	}
	if err := tr.AddPAD(PADMeta{ID: "PADx", Protocol: "p", Parent: "ghost"}); err == nil {
		t.Error("AddPAD under unknown parent accepted")
	}
	if err := tr.AddPAD(PADMeta{ID: "PADy", Protocol: "p", Parent: "PAD6"}); err == nil {
		t.Error("AddPAD under symbolic link accepted")
	}
	if err := tr.AddPAD(PADMeta{ID: "PADz", Protocol: "p", Children: []string{"PAD4"}}); err == nil {
		t.Error("AddPAD with children accepted")
	}
}

// --- overhead model ---

func testModel(t *testing.T) OverheadModel {
	t.Helper()
	ms, err := Neutral([]string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	return OverheadModel{
		Matrices:          ms,
		Rho:               0.8,
		ServerCPUMHz:      2000,
		IncludeServerComp: true,
		SessionRequests:   1,
	}
}

func TestPADTotalEquation3(t *testing.T) {
	m := testModel(t)
	env := Env{
		Dev:  DevMeta{OSType: "os", CPUType: "cpu", CPUMHz: 1000, MemMB: 64},
		Ntwk: NtwkMeta{NetworkType: "net", BandwidthKbps: 1000}, // 0.8 Mbps effective
	}
	p := PADMeta{
		ID: "p", Protocol: "p", Size: 10000, // 10 KB download
		Overhead: PADOverhead{
			ServerCompStd: 2 * time.Second, // /4 on the 2 GHz server = 0.5s
			ClientCompStd: 1 * time.Second, // /2 on the 1 GHz client = 0.5s
			TrafficBytes:  100000,          // 100 KB at 0.8 Mbps = 1s
			UpstreamBytes: 0,
		},
	}
	b, err := m.PADTotal(p, env)
	if err != nil {
		t.Fatal(err)
	}
	wantDownload := 10000 * 8.0 / (0.8 * 1000 * 1000) // 0.1s
	if !close1e9(b.Download, wantDownload) {
		t.Errorf("download = %v, want %v", b.Download, wantDownload)
	}
	if !close1e9(b.ServerComp, 0.5) {
		t.Errorf("server comp = %v, want 0.5", b.ServerComp)
	}
	if !close1e9(b.ClientComp, 0.5) {
		t.Errorf("client comp = %v, want 0.5", b.ClientComp)
	}
	if !close1e9(b.Traffic, 1.0) {
		t.Errorf("traffic = %v, want 1.0", b.Traffic)
	}
	if !close1e9(b.Total(), 2.1) {
		t.Errorf("total = %v, want 2.1", b.Total())
	}
	if !b.IsFeasible() {
		t.Error("finite breakdown reported infeasible")
	}
}

func close1e9(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPADTotalSessionAmortization(t *testing.T) {
	m := testModel(t)
	m.SessionRequests = 10
	env := validEnv()
	p := PADMeta{ID: "p", Protocol: "p", Size: 80000}
	b, err := m.PADTotal(p, env)
	if err != nil {
		t.Fatal(err)
	}
	m.SessionRequests = 1
	b1, err := m.PADTotal(p, env)
	if err != nil {
		t.Fatal(err)
	}
	if !close1e9(b.Download*10, b1.Download) {
		t.Fatalf("amortized download %v * 10 != %v", b.Download, b1.Download)
	}
}

func TestPADTotalServerCompToggle(t *testing.T) {
	m := testModel(t)
	env := validEnv()
	p := PADMeta{ID: "p", Protocol: "p", Overhead: PADOverhead{ServerCompStd: time.Second}}
	b, err := m.PADTotal(p, env)
	if err != nil {
		t.Fatal(err)
	}
	if b.ServerComp <= 0 {
		t.Fatal("server comp missing in reactive mode")
	}
	m.IncludeServerComp = false
	b, err = m.PADTotal(p, env)
	if err != nil {
		t.Fatal(err)
	}
	if b.ServerComp != 0 {
		t.Fatalf("server comp = %v in proactive mode, want 0", b.ServerComp)
	}
}

func TestPADTotalInfiniteRatioDisqualifies(t *testing.T) {
	bm, err := MediaPlayerExampleMatrix()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Neutral([]string{"kinoma", "winmedia"})
	if err != nil {
		t.Fatal(err)
	}
	ms.B = bm
	m := OverheadModel{Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000, SessionRequests: 1}
	env := Env{
		Dev:  DevMeta{OSType: "WinCE", CPUType: "cpu", CPUMHz: 400, MemMB: 64},
		Ntwk: NtwkMeta{NetworkType: "net", BandwidthKbps: 1000},
	}
	p := PADMeta{ID: "k", Protocol: "kinoma", Overhead: PADOverhead{ClientCompStd: time.Second}}
	b, err := m.PADTotal(p, env)
	if err != nil {
		t.Fatal(err)
	}
	if b.IsFeasible() {
		t.Fatal("Kinoma on WinCE should be infeasible")
	}
}

func TestPADTotalValidation(t *testing.T) {
	m := testModel(t)
	env := validEnv()
	if _, err := m.PADTotal(PADMeta{ID: "l", Alias: "x"}, env); err == nil {
		t.Error("unresolved symbolic link evaluated")
	}
	bad := m
	bad.Rho = 0
	if _, err := bad.PADTotal(PADMeta{ID: "p", Protocol: "p"}, env); err == nil {
		t.Error("rho=0 model evaluated")
	}
	bad = m
	bad.ServerCPUMHz = 0
	if _, err := bad.PADTotal(PADMeta{ID: "p", Protocol: "p"}, env); err == nil {
		t.Error("zero server CPU evaluated")
	}
	bad = m
	bad.SessionRequests = 0
	if _, err := bad.PADTotal(PADMeta{ID: "p", Protocol: "p"}, env); err == nil {
		t.Error("zero session requests evaluated")
	}
}

// --- path search ---

func TestFindPathFigure5Example(t *testing.T) {
	// Mirror the paper's walkthrough: the first examined path (PAD1,
	// PAD4) totals 14; (PAD2, PAD7) totals 9 and wins.
	tr, err := BuildPAT(figure5App())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Neutral([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	// Make compute the only term: client at the reference speed, huge
	// bandwidth, no sizes/traffic.
	m := OverheadModel{Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000, SessionRequests: 1}
	env := Env{
		Dev:  DevMeta{OSType: "os", CPUType: "cpu", CPUMHz: StdCPUMHz, MemMB: 64},
		Ntwk: NtwkMeta{NetworkType: "net", BandwidthKbps: 1e9},
	}
	res, err := FindPath(tr, m, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeIDs) != 2 || res.NodeIDs[0] != "PAD2" || res.NodeIDs[1] != "PAD7" {
		t.Fatalf("selected path %v, want [PAD2 PAD7]", res.NodeIDs)
	}
	if !close1e9(res.Total, 9) {
		t.Fatalf("total = %v, want 9", res.Total)
	}
	if len(res.PADs) != 2 || res.PADs[1].ID != "PAD7" {
		t.Fatalf("resolved PADs = %v", res.PADs)
	}
	if len(res.Breakdown) != 2 {
		t.Fatalf("breakdown has %d entries, want 2", len(res.Breakdown))
	}
}

func TestFindPathUsesSymbolicLinkCost(t *testing.T) {
	// Force PAD2's branch to be expensive; the best path is then
	// PAD1 -> PAD6, because the symbolic link inherits PAD7's cost
	// (8 + 5 = 13), beating PAD1 -> PAD4 (8 + 6 = 14).
	app := figure5App()
	for i := range app.PADs {
		if app.PADs[i].ID == "PAD2" {
			app.PADs[i].Overhead.ClientCompStd = 100 * time.Second
		}
	}
	tr, err := BuildPAT(app)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Neutral([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	m := OverheadModel{Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000, SessionRequests: 1}
	env := Env{
		Dev:  DevMeta{OSType: "os", CPUType: "cpu", CPUMHz: StdCPUMHz, MemMB: 64},
		Ntwk: NtwkMeta{NetworkType: "net", BandwidthKbps: 1e9},
	}
	res, err := FindPath(tr, m, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeIDs[0] != "PAD1" || res.NodeIDs[1] != "PAD6" {
		t.Fatalf("selected %v, want [PAD1 PAD6]", res.NodeIDs)
	}
	if !close1e9(res.Total, 13) {
		t.Fatalf("total = %v, want 13", res.Total)
	}
	// The client must be told to fetch PAD7, the link's target.
	if res.PADs[1].ID != "PAD7" {
		t.Fatalf("resolved PAD = %s, want PAD7", res.PADs[1].ID)
	}
}

func TestFindPathNoFeasible(t *testing.T) {
	bm, err := NewRatioMatrix("B", []string{"only"}, []string{"BadOS"}, [][]float64{{math.Inf(1)}})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Neutral([]string{"only"})
	if err != nil {
		t.Fatal(err)
	}
	ms.B = bm
	app := AppMeta{AppID: "one", PADs: []PADMeta{{ID: "p", Protocol: "only"}}}
	tr, err := BuildPAT(app)
	if err != nil {
		t.Fatal(err)
	}
	m := OverheadModel{Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000, SessionRequests: 1}
	env := Env{
		Dev:  DevMeta{OSType: "BadOS", CPUType: "cpu", CPUMHz: 500, MemMB: 64},
		Ntwk: NtwkMeta{NetworkType: "net", BandwidthKbps: 1000},
	}
	_, err = FindPath(tr, m, env)
	if err == nil || !strings.Contains(err.Error(), "no feasible adaptation path") {
		t.Fatalf("err = %v, want no-feasible-path", err)
	}
}

// Property: FindPath's total equals the minimum over explicit path sums.
func TestFindPathIsOptimalProperty(t *testing.T) {
	ms, err := Neutral([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	m := OverheadModel{Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000, SessionRequests: 1}
	env := Env{
		Dev:  DevMeta{OSType: "os", CPUType: "cpu", CPUMHz: StdCPUMHz, MemMB: 64},
		Ntwk: NtwkMeta{NetworkType: "net", BandwidthKbps: 1e9},
	}
	f := func(costs [8]uint16) bool {
		app := figure5App()
		for i := range app.PADs {
			if app.PADs[i].Alias != "" {
				continue
			}
			app.PADs[i].Overhead.ClientCompStd = time.Duration(costs[i%len(costs)]) * time.Millisecond
		}
		tr, err := BuildPAT(app)
		if err != nil {
			return false
		}
		res, err := FindPath(tr, m, env)
		if err != nil {
			return false
		}
		minTotal := math.Inf(1)
		for _, path := range tr.Paths() {
			sum := 0.0
			for _, id := range path {
				meta, err := tr.Resolve(id)
				if err != nil {
					return false
				}
				b, err := m.PADTotal(meta, env)
				if err != nil {
					return false
				}
				sum += b.Total()
			}
			if sum < minTotal {
				minTotal = sum
			}
		}
		return close1e9(res.Total, minTotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of paths equals the number of leaves for random
// chains attached to the Figure 5 tree.
func TestPathsEqualLeavesProperty(t *testing.T) {
	f := func(extra uint8) bool {
		tr, err := BuildPAT(figure5App())
		if err != nil {
			return false
		}
		parent := "PAD4"
		for i := 0; i < int(extra%10); i++ {
			id := "X" + string(rune('a'+i))
			if err := tr.AddPAD(PADMeta{ID: id, Protocol: "px", Parent: parent}); err != nil {
				return false
			}
			parent = id
		}
		return len(tr.Paths()) == len(tr.Leaves())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- adaptation cache ---

func TestAdaptationCacheBasics(t *testing.T) {
	c, err := NewAdaptationCache(2)
	if err != nil {
		t.Fatal(err)
	}
	env := validEnv()
	k1 := CacheKey{AppID: "app", Dev: env.Dev, Ntwk: env.Ntwk}
	if _, ok := c.Get(k1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k1, []PADMeta{{ID: "p1", Protocol: "x"}})
	got, ok := c.Get(k1)
	if !ok || len(got) != 1 || got[0].ID != "p1" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Mutating the returned slice must not corrupt the cache.
	got[0].ID = "corrupted"
	got2, _ := c.Get(k1)
	if got2[0].ID != "p1" {
		t.Fatal("cache entry aliased to caller's slice")
	}
}

func TestAdaptationCacheLRUEviction(t *testing.T) {
	c, err := NewAdaptationCache(2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(mhz float64) CacheKey {
		e := validEnv()
		e.Dev.CPUMHz = mhz
		return CacheKey{AppID: "app", Dev: e.Dev, Ntwk: e.Ntwk}
	}
	c.Put(mk(1), nil)
	c.Put(mk(2), nil)
	c.Get(mk(1)) // touch 1 so 2 is LRU
	c.Put(mk(3), nil)
	if _, ok := c.Get(mk(2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(mk(1)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestAdaptationCacheInvalidate(t *testing.T) {
	c, err := NewAdaptationCache(10)
	if err != nil {
		t.Fatal(err)
	}
	env := validEnv()
	c.Put(CacheKey{AppID: "app-a", Dev: env.Dev, Ntwk: env.Ntwk}, nil)
	c.Put(CacheKey{AppID: "app-b", Dev: env.Dev, Ntwk: env.Ntwk}, nil)
	if n := c.Invalidate("app-a"); n != 1 {
		t.Fatalf("invalidated %d entries, want 1", n)
	}
	if c.Len() != 1 {
		t.Fatalf("cache len = %d after invalidate, want 1", c.Len())
	}
	if _, ok := c.Get(CacheKey{AppID: "app-b", Dev: env.Dev, Ntwk: env.Ntwk}); !ok {
		t.Fatal("unrelated app entry dropped")
	}
}

func TestAdaptationCacheValidation(t *testing.T) {
	if _, err := NewAdaptationCache(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestCaseStudyMatrices(t *testing.T) {
	ms, err := CaseStudyMatrices()
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
	// The PXA255 penalty from Equation 4.
	if got := ms.A.Ratio("gzip", CPUTypePXA255); got != 1.1 {
		t.Fatalf("A[gzip][P] = %v, want 1.1", got)
	}
	if got := ms.A.Ratio("gzip", CPUTypeP4); got != 1 {
		t.Fatalf("A[gzip][D] = %v, want 1", got)
	}
	// Direct is not a row: neutral fallback.
	if got := ms.A.Ratio("direct", CPUTypePXA255); got != 1 {
		t.Fatalf("A[direct][P] = %v, want 1 (fallback)", got)
	}
	if got := ms.R.Ratio("bitmap", NetBluetooth); got != 1 {
		t.Fatalf("R[bitmap][BT] = %v, want 1", got)
	}
}

// Property: the total overhead is non-increasing in client bandwidth and
// the client-compute term non-increasing in CPU speed — the monotonicity
// the linear model promises.
func TestPADTotalMonotonicityProperty(t *testing.T) {
	m := testModel(t)
	p := PADMeta{
		ID: "p", Protocol: "p", Size: 20000,
		Overhead: PADOverhead{
			ServerCompStd: 40 * time.Millisecond,
			ClientCompStd: 80 * time.Millisecond,
			TrafficBytes:  50000,
			UpstreamBytes: 5000,
		},
	}
	f := func(bwA, bwB uint32, cpuA, cpuB uint16) bool {
		mkEnv := func(bw float64, cpu float64) Env {
			return Env{
				Dev:  DevMeta{OSType: "os", CPUType: "cpu", CPUMHz: cpu, MemMB: 64},
				Ntwk: NtwkMeta{NetworkType: "net", BandwidthKbps: bw},
			}
		}
		bw1 := float64(bwA%1000000) + 1
		bw2 := float64(bwB%1000000) + 1
		if bw1 > bw2 {
			bw1, bw2 = bw2, bw1
		}
		cpu := float64(cpuA%4000) + 100
		slow, err1 := m.PADTotal(p, mkEnv(bw1, cpu))
		fast, err2 := m.PADTotal(p, mkEnv(bw2, cpu))
		if err1 != nil || err2 != nil {
			return false
		}
		if fast.Total() > slow.Total()+1e-12 {
			return false
		}
		c1 := float64(cpuA%4000) + 100
		c2 := float64(cpuB%4000) + 100
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		slowCPU, err1 := m.PADTotal(p, mkEnv(1000, c1))
		fastCPU, err2 := m.PADTotal(p, mkEnv(1000, c2))
		if err1 != nil || err2 != nil {
			return false
		}
		return fastCPU.ClientComp <= slowCPU.ClientComp+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a PAD to a PAT never improves the best path beyond the
// new PAD's own paths — i.e. FindPath is stable under irrelevant
// extensions with worse costs.
func TestFindPathStableUnderWorseExtensions(t *testing.T) {
	ms, err := Neutral([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	m := OverheadModel{Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000, SessionRequests: 1}
	env := Env{
		Dev:  DevMeta{OSType: "os", CPUType: "cpu", CPUMHz: StdCPUMHz, MemMB: 64},
		Ntwk: NtwkMeta{NetworkType: "net", BandwidthKbps: 1e9},
	}
	tr, err := BuildPAT(figure5App())
	if err != nil {
		t.Fatal(err)
	}
	before, err := FindPath(tr, m, env)
	if err != nil {
		t.Fatal(err)
	}
	// Add an expensive top-level PAD: the winner must not change.
	if err := tr.AddPAD(PADMeta{
		ID: "expensive", Protocol: "px",
		Overhead: PADOverhead{ClientCompStd: time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	after, err := FindPath(tr, m, env)
	if err != nil {
		t.Fatal(err)
	}
	if before.Total != after.Total || before.NodeIDs[0] != after.NodeIDs[0] {
		t.Fatalf("worse extension changed the result: %v -> %v", before.NodeIDs, after.NodeIDs)
	}
}
