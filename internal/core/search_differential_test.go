package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// caseStudyApp builds an AppMeta shaped like the case study's one-level
// PAT: the four communication protocols as top-level leaves, with the
// calibration-era overhead vectors scaled so each environment prefers a
// different PAD.
func caseStudyApp() AppMeta {
	pad := func(id, proto string, server, client time.Duration, size, traffic, upstream int64) PADMeta {
		return PADMeta{
			ID: id, Protocol: proto, Size: size,
			Overhead: PADOverhead{
				ServerCompStd: server, ClientCompStd: client,
				TrafficBytes: traffic, UpstreamBytes: upstream,
			},
		}
	}
	return AppMeta{
		AppID: "webapp",
		PADs: []PADMeta{
			pad("pad-direct", "direct", 0, 0, 9000, 136000, 0),
			pad("pad-gzip", "gzip", 39*time.Millisecond, 39*time.Millisecond, 15000, 53000, 0),
			pad("pad-bitmap", "bitmap", 54*time.Millisecond, 224*time.Millisecond, 27000, 22000, 7000),
			pad("pad-vary", "varyblock", 2500*time.Millisecond, 283*time.Millisecond, 31000, 18000, 0),
		},
	}
}

// multiLevelApp builds a two-level PAT with a symbolic link, the Figure 5
// shape, so the differential sweep also covers deep paths and aliases.
func multiLevelApp() AppMeta {
	return AppMeta{
		AppID: "layered",
		PADs: []PADMeta{
			{ID: "rend-full", Protocol: "full", Children: []string{"c-gzip", "c-vary"},
				Overhead: PADOverhead{ClientCompStd: 5 * time.Millisecond, TrafficBytes: 100000}},
			{ID: "rend-thumb", Protocol: "thumbnail", Children: []string{"link-gzip"},
				Overhead: PADOverhead{ClientCompStd: 2 * time.Millisecond, TrafficBytes: 12000}},
			{ID: "c-gzip", Protocol: "gzip", Parent: "rend-full",
				Overhead: PADOverhead{ClientCompStd: 39 * time.Millisecond, TrafficBytes: 53000}},
			{ID: "c-vary", Protocol: "varyblock", Parent: "rend-full", Size: 31000,
				Overhead: PADOverhead{ServerCompStd: 2500 * time.Millisecond, ClientCompStd: 283 * time.Millisecond, TrafficBytes: 18000}},
			{ID: "link-gzip", Alias: "c-gzip", Parent: "rend-thumb"},
		},
	}
}

// sweepEnvs enumerates the case-study environment grid: both CPU types ×
// both OS types × all three networks × several CPU speeds and bandwidths.
func sweepEnvs() []Env {
	var envs []Env
	for _, cpu := range []string{CPUTypePXA255, CPUTypeP4} {
		for _, os := range []string{OSWinCE, OSFedora} {
			for _, net := range []string{NetLAN, NetWLAN, NetBluetooth} {
				for _, mhz := range []float64{400, 2000, 3060} {
					for _, bw := range []float64{723, 11000, 100000} {
						envs = append(envs, Env{
							Dev:  DevMeta{OSType: os, CPUType: cpu, CPUMHz: mhz, MemMB: 64},
							Ntwk: NtwkMeta{NetworkType: net, BandwidthKbps: bw},
						})
					}
				}
			}
		}
	}
	return envs
}

// TestFindPathCompiledMatchesReference is the byte-identical-search pin:
// for every environment in the case-study sweep, over flat and multi-level
// trees, with and without filters, at several session lengths and server
// strategies, the compiled-index FindPathFiltered must return exactly the
// PathResult (NodeIDs, Total, Breakdown, PADs) of the reference algorithm.
func TestFindPathCompiledMatchesReference(t *testing.T) {
	ms, err := CaseStudyMatrices()
	if err != nil {
		t.Fatal(err)
	}
	msContent, err := ContentAdaptationMatrices()
	if err != nil {
		t.Fatal(err)
	}
	filters := map[string]func(PADMeta) bool{
		"nil":         nil,
		"no-vary":     func(p PADMeta) bool { return p.Protocol != "varyblock" },
		"only-direct": func(p PADMeta) bool { return p.Protocol == "direct" },
		"deny-all":    func(PADMeta) bool { return false },
	}
	apps := map[string]struct {
		app AppMeta
		ms  Matrices
	}{
		"case-study":  {caseStudyApp(), ms},
		"multi-level": {multiLevelApp(), msContent},
	}
	for appName, tc := range apps {
		pat, err := BuildPAT(tc.app)
		if err != nil {
			t.Fatal(err)
		}
		for _, includeServer := range []bool{true, false} {
			for _, session := range []int{1, 75} {
				model := OverheadModel{
					Matrices: tc.ms, Rho: 0.8, ServerCPUMHz: 2000,
					IncludeServerComp: includeServer, SessionRequests: session,
				}
				for ei, env := range sweepEnvs() {
					for fname, filter := range filters {
						got, gotErr := FindPathFiltered(pat, model, env, filter)
						want, wantErr := findPathReference(pat, model, env, filter)
						label := fmt.Sprintf("%s/server=%v/session=%d/env=%d/filter=%s", appName, includeServer, session, ei, fname)
						if (gotErr == nil) != (wantErr == nil) {
							t.Fatalf("%s: err mismatch: compiled %v, reference %v", label, gotErr, wantErr)
						}
						if gotErr != nil {
							if gotErr.Error() != wantErr.Error() {
								t.Fatalf("%s: error text diverged:\ncompiled:  %v\nreference: %v", label, gotErr, wantErr)
							}
							continue
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s: result diverged:\ncompiled:  %+v\nreference: %+v", label, got, want)
						}
					}
				}
			}
		}
	}
}

// TestFindPathCompiledMatchesReferenceAfterAddPAD verifies the index is
// recompiled when the tree is extended at run time.
func TestFindPathCompiledMatchesReferenceAfterAddPAD(t *testing.T) {
	ms, err := CaseStudyMatrices()
	if err != nil {
		t.Fatal(err)
	}
	model := OverheadModel{Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000, SessionRequests: 1}
	pat, err := BuildPAT(caseStudyApp())
	if err != nil {
		t.Fatal(err)
	}
	if err := pat.AddPAD(PADMeta{ID: "pad-rsync", Protocol: "rsync",
		Overhead: PADOverhead{ClientCompStd: time.Millisecond, TrafficBytes: 100}}); err != nil {
		t.Fatal(err)
	}
	if err := pat.AddPAD(PADMeta{ID: "pad-link", Alias: "pad-gzip"}); err != nil {
		t.Fatal(err)
	}
	for _, env := range sweepEnvs() {
		got, gotErr := FindPath(pat, model, env)
		want, wantErr := findPathReference(pat, model, env, nil)
		if (gotErr == nil) != (wantErr == nil) || !reflect.DeepEqual(got, want) {
			t.Fatalf("post-AddPAD divergence for %v: compiled %+v (%v), reference %+v (%v)",
				env, got, gotErr, want, wantErr)
		}
		// The freshly added cheap protocol must actually win somewhere.
		if math.IsInf(want.Total, 1) {
			t.Fatalf("reference returned infinite total without error for %v", env)
		}
	}
}

// TestFindPathCompiledProperty drives randomized trees through both
// implementations.
func TestFindPathCompiledProperty(t *testing.T) {
	ms, err := Neutral([]string{"p0", "p1", "p2"})
	if err != nil {
		t.Fatal(err)
	}
	model := OverheadModel{Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000, SessionRequests: 1}
	f := func(fanout, depth uint8, mhzSeed uint16) bool {
		fo := int(fanout%3) + 1
		dp := int(depth%3) + 1
		app := AppMeta{AppID: "prop"}
		id := 0
		var build func(parent string, level int)
		build = func(parent string, level int) {
			if level > dp {
				return
			}
			for i := 0; i < fo; i++ {
				id++
				name := fmt.Sprintf("n%d", id)
				app.PADs = append(app.PADs, PADMeta{
					ID: name, Protocol: fmt.Sprintf("p%d", id%3), Parent: parent,
					Overhead: PADOverhead{ClientCompStd: time.Duration(id*7919%97) * time.Millisecond},
				})
				build(name, level+1)
			}
		}
		build("", 1)
		children := map[string][]string{}
		for _, p := range app.PADs {
			if p.Parent != "" {
				children[p.Parent] = append(children[p.Parent], p.ID)
			}
		}
		for i := range app.PADs {
			app.PADs[i].Children = children[app.PADs[i].ID]
		}
		pat, err := BuildPAT(app)
		if err != nil {
			return false
		}
		env := Env{
			Dev:  DevMeta{OSType: "os", CPUType: "cpu", CPUMHz: float64(mhzSeed%4000) + 100, MemMB: 64},
			Ntwk: NtwkMeta{NetworkType: "net", BandwidthKbps: 1000},
		}
		got, gotErr := FindPath(pat, model, env)
		want, wantErr := findPathReference(pat, model, env, nil)
		return (gotErr == nil) == (wantErr == nil) && reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCacheKeyStringMatchesFmtReference pins the hand-rolled key builders
// to the original fmt-based rendering.
func TestCacheKeyStringMatchesFmtReference(t *testing.T) {
	f := func(app, who, os, cpu, net string, mhz, bw float64, mem uint16) bool {
		mhzAbs, bwAbs := math.Abs(mhz), math.Abs(bw)
		d := DevMeta{OSType: os, CPUType: cpu, CPUMHz: mhzAbs, MemMB: int(mem)}
		n := NtwkMeta{NetworkType: net, BandwidthKbps: bwAbs}
		k := CacheKey{AppID: app, Principal: who, Dev: d, Ntwk: n}
		wantDev := fmt.Sprintf("os=%s|cpu=%s|mhz=%.0f|mem=%d", os, cpu, mhzAbs, int(mem))
		wantNtwk := fmt.Sprintf("net=%s|bw=%.0f", net, bwAbs)
		wantKey := fmt.Sprintf("app=%s|who=%s|%s|%s", app, who, wantDev, wantNtwk)
		return d.Key() == wantDev && n.Key() == wantNtwk && k.String() == wantKey
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
