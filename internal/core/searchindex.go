package core

import "sync"

// searchIndex is the compiled form of a PAT for the negotiation hot path.
// BuildPAT (and AddPAD, after a mutation) precomputes everything FindPath
// otherwise re-derives per call: the deterministic node order, each node's
// symbolic link resolved to concrete metadata, and every root-to-leaf path
// flattened to integer offsets. With the index in place a search marks
// overheads into a pooled []Breakdown slice indexed by node slot — no
// per-call map, no sort, no tree walk — while producing a PathResult
// identical to the reference algorithm (pinned by the differential test in
// search_differential_test.go).
type searchIndex struct {
	// ids holds every node id in sorted order — the exact order the
	// reference algorithm marks nodes in.
	ids []string
	// metas[i] is ids[i]'s metadata with symbolic links resolved.
	metas []PADMeta
	// paths are the root-to-leaf paths of Paths(), in the same order
	// (the tie-breaking order of the search), as offsets into ids.
	paths [][]int32
}

// compile builds the search index from the current tree shape. It is called
// with the tree fully validated, so resolution cannot fail in practice; an
// error is still propagated rather than swallowed.
func (t *PAT) compile() error {
	ids := t.allIDs()
	slot := make(map[string]int32, len(ids))
	for i, id := range ids {
		slot[id] = int32(i)
	}
	metas := make([]PADMeta, len(ids))
	for i, id := range ids {
		m, err := t.Resolve(id)
		if err != nil {
			return err
		}
		metas[i] = m
	}
	raw := t.Paths()
	paths := make([][]int32, len(raw))
	for i, p := range raw {
		ip := make([]int32, len(p))
		for j, id := range p {
			ip[j] = slot[id]
		}
		paths[i] = ip
	}
	t.index = &searchIndex{ids: ids, metas: metas, paths: paths}
	return nil
}

// marksPool recycles the per-search overhead-mark slices so a steady-state
// negotiation allocates nothing for marking.
var marksPool = sync.Pool{
	New: func() interface{} {
		b := make([]Breakdown, 0, 64)
		return &b
	},
}
