package core

import (
	"fmt"
	"math"
	"sort"
)

// RatioMatrix is a normalized ratio matrix (Section 3.4.2): rows are
// protocols, columns are environment types (processor types for matrix A,
// operating systems for B, network types for R). Entry (p, e) multiplies
// the linear-model estimate for protocol p in environment e; +Inf
// disqualifies the combination outright, like Kinoma on WinCE in the
// paper's example.
type RatioMatrix struct {
	name string
	rows map[string]int
	cols map[string]int
	vals [][]float64
}

// NewRatioMatrix builds a matrix. vals is indexed [row][col]; entries must
// be > 0 (use math.Inf(1) for incompatible combinations).
func NewRatioMatrix(name string, rows, cols []string, vals [][]float64) (*RatioMatrix, error) {
	if name == "" {
		return nil, fmt.Errorf("core: ratio matrix needs a name")
	}
	if len(rows) == 0 || len(cols) == 0 {
		return nil, fmt.Errorf("core: ratio matrix %s needs rows and columns", name)
	}
	if len(vals) != len(rows) {
		return nil, fmt.Errorf("core: ratio matrix %s has %d value rows for %d row labels", name, len(vals), len(rows))
	}
	m := &RatioMatrix{name: name, rows: map[string]int{}, cols: map[string]int{}}
	for i, r := range rows {
		if _, dup := m.rows[r]; dup {
			return nil, fmt.Errorf("core: ratio matrix %s: duplicate row %q", name, r)
		}
		m.rows[r] = i
	}
	for j, c := range cols {
		if _, dup := m.cols[c]; dup {
			return nil, fmt.Errorf("core: ratio matrix %s: duplicate column %q", name, c)
		}
		m.cols[c] = j
	}
	m.vals = make([][]float64, len(rows))
	for i := range vals {
		if len(vals[i]) != len(cols) {
			return nil, fmt.Errorf("core: ratio matrix %s row %d has %d values for %d columns", name, i, len(vals[i]), len(cols))
		}
		for j, v := range vals[i] {
			if v <= 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("core: ratio matrix %s[%d][%d] = %v must be positive or +Inf", name, i, j, v)
			}
		}
		m.vals[i] = append([]float64(nil), vals[i]...)
	}
	return m, nil
}

// Name returns the matrix name (A, B, or R in the paper).
func (m *RatioMatrix) Name() string { return m.name }

// Rows returns the sorted row (protocol) labels.
func (m *RatioMatrix) Rows() []string { return sortedKeys(m.rows) }

// Cols returns the sorted column (environment type) labels.
func (m *RatioMatrix) Cols() []string { return sortedKeys(m.cols) }

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Ratio returns the normalized ratio for a protocol in an environment
// type. Per the paper, consumer environments are few, so the column "will
// be found with high probability; otherwise a similar type with close
// parameters will be chosen instead" — an unknown protocol or environment
// falls back to the neutral ratio 1 (the pure linear model).
func (m *RatioMatrix) Ratio(protocol, envType string) float64 {
	i, okR := m.rows[protocol]
	j, okC := m.cols[envType]
	if !okR || !okC {
		return 1
	}
	return m.vals[i][j]
}

// Matrices bundles the three normalized ratio matrices of Equation 2.
type Matrices struct {
	A *RatioMatrix // processor types
	B *RatioMatrix // operating systems
	R *RatioMatrix // network types
}

// Validate reports whether all three matrices are present.
func (ms Matrices) Validate() error {
	if ms.A == nil || ms.B == nil || ms.R == nil {
		return fmt.Errorf("core: matrices A, B, R must all be set")
	}
	return nil
}

// Neutral returns matrices of all-ones over the given protocols, the pure
// linear model with no environment corrections.
func Neutral(protocols []string) (Matrices, error) {
	ones := func(name string, cols []string) (*RatioMatrix, error) {
		vals := make([][]float64, len(protocols))
		for i := range vals {
			vals[i] = make([]float64, len(cols))
			for j := range vals[i] {
				vals[i][j] = 1
			}
		}
		return NewRatioMatrix(name, protocols, cols, vals)
	}
	a, err := ones("A", []string{"any-cpu"})
	if err != nil {
		return Matrices{}, err
	}
	b, err := ones("B", []string{"any-os"})
	if err != nil {
		return Matrices{}, err
	}
	r, err := ones("R", []string{"any-net"})
	if err != nil {
		return Matrices{}, err
	}
	return Matrices{A: a, B: b, R: r}, nil
}
