package core

import (
	"fmt"
	"sort"
)

// PAT is the protocol adaptation tree (Section 3.4.1). Each node is a
// protocol adaptor; a child PAD is an auxiliary component of its parent,
// and exactly one child must accompany the parent at run time, so a
// complete application protocol is a path from the (virtual) application
// root to a leaf. Symbolic links let one PAD serve multiple parents while
// keeping the structure a tree.
type PAT struct {
	appID string
	nodes map[string]*patNode
	// roots are the top-level PADs in insertion order.
	roots []string
	// index is the compiled search index (see searchindex.go), rebuilt by
	// BuildPAT and AddPAD. Mutating a PAT concurrently with searches has
	// never been supported; the index follows the same contract.
	index *searchIndex
}

type patNode struct {
	meta     PADMeta
	children []string
}

// BuildPAT constructs and validates the tree from pushed application
// metadata. Parent/Child links in the metadata must be consistent; alias
// targets must exist and not themselves be aliases; the structure must be
// acyclic.
func BuildPAT(app AppMeta) (*PAT, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	t := &PAT{appID: app.AppID, nodes: map[string]*patNode{}}
	for _, p := range app.PADs {
		t.nodes[p.ID] = &patNode{meta: p}
	}
	for _, p := range app.PADs {
		if p.Alias != "" {
			target, ok := t.nodes[p.Alias]
			if !ok {
				return nil, fmt.Errorf("core: PAT %s: PAD %s aliases unknown PAD %s", app.AppID, p.ID, p.Alias)
			}
			if target.meta.Alias != "" {
				return nil, fmt.Errorf("core: PAT %s: PAD %s aliases %s which is itself an alias", app.AppID, p.ID, p.Alias)
			}
			if len(p.Children) > 0 {
				return nil, fmt.Errorf("core: PAT %s: symbolic link %s cannot have children", app.AppID, p.ID)
			}
		}
		for _, c := range p.Children {
			child, ok := t.nodes[c]
			if !ok {
				return nil, fmt.Errorf("core: PAT %s: PAD %s lists unknown child %s", app.AppID, p.ID, c)
			}
			if child.meta.Parent != p.ID {
				return nil, fmt.Errorf("core: PAT %s: PAD %s lists child %s whose Parent is %q", app.AppID, p.ID, c, child.meta.Parent)
			}
		}
		if p.Parent != "" {
			parent, ok := t.nodes[p.Parent]
			if !ok {
				return nil, fmt.Errorf("core: PAT %s: PAD %s has unknown parent %s", app.AppID, p.ID, p.Parent)
			}
			found := false
			for _, c := range parent.meta.Children {
				if c == p.ID {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("core: PAT %s: PAD %s names parent %s, which does not list it", app.AppID, p.ID, p.Parent)
			}
		}
	}
	for _, p := range app.PADs {
		t.nodes[p.ID].children = append([]string(nil), p.Children...)
		if p.Parent == "" {
			t.roots = append(t.roots, p.ID)
		}
	}
	if len(t.roots) == 0 {
		return nil, fmt.Errorf("core: PAT %s has no top-level PADs", app.AppID)
	}
	if err := t.checkAcyclic(); err != nil {
		return nil, err
	}
	if err := t.compile(); err != nil {
		return nil, err
	}
	return t, nil
}

// checkAcyclic verifies the parent/child structure is a forest reachable
// from the roots with each node visited once.
func (t *PAT) checkAcyclic() error {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := map[string]int{}
	var visit func(id string) error
	visit = func(id string) error {
		switch state[id] {
		case inStack:
			return fmt.Errorf("core: PAT %s contains a cycle through PAD %s", t.appID, id)
		case done:
			return fmt.Errorf("core: PAT %s: PAD %s is reachable from two parents (use a symbolic link)", t.appID, id)
		}
		state[id] = inStack
		for _, c := range t.nodes[id].children {
			if err := visit(c); err != nil {
				return err
			}
		}
		state[id] = done
		return nil
	}
	for _, r := range t.roots {
		if err := visit(r); err != nil {
			return err
		}
	}
	for id := range t.nodes {
		if state[id] != done {
			return fmt.Errorf("core: PAT %s: PAD %s is not reachable from any root", t.appID, id)
		}
	}
	return nil
}

// AppID returns the application the tree describes.
func (t *PAT) AppID() string { return t.appID }

// Len returns the number of nodes (including symbolic links).
func (t *PAT) Len() int { return len(t.nodes) }

// PAD returns the metadata for an id.
func (t *PAT) PAD(id string) (PADMeta, bool) {
	n, ok := t.nodes[id]
	if !ok {
		return PADMeta{}, false
	}
	return n.meta, true
}

// Resolve follows a symbolic link to its target metadata; non-links
// resolve to themselves.
func (t *PAT) Resolve(id string) (PADMeta, error) {
	n, ok := t.nodes[id]
	if !ok {
		return PADMeta{}, fmt.Errorf("core: PAT %s has no PAD %s", t.appID, id)
	}
	if n.meta.Alias == "" {
		return n.meta, nil
	}
	target, ok := t.nodes[n.meta.Alias]
	if !ok {
		return PADMeta{}, fmt.Errorf("core: PAT %s: dangling symbolic link %s -> %s", t.appID, id, n.meta.Alias)
	}
	return target.meta, nil
}

// Paths enumerates every root-to-leaf path as slices of node ids, in
// deterministic order. The number of paths equals the number of leaves.
func (t *PAT) Paths() [][]string {
	var out [][]string
	var walk func(id string, prefix []string)
	walk = func(id string, prefix []string) {
		prefix = append(prefix, id)
		n := t.nodes[id]
		if len(n.children) == 0 {
			out = append(out, append([]string(nil), prefix...))
			return
		}
		for _, c := range n.children {
			walk(c, prefix)
		}
	}
	for _, r := range t.roots {
		walk(r, nil)
	}
	return out
}

// Leaves returns the sorted ids of leaf nodes.
func (t *PAT) Leaves() []string {
	var out []string
	for id, n := range t.nodes {
		if len(n.children) == 0 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// AddPAD extends the tree with a new adaptor at run time, the
// extensibility property of Section 3.4.1: a PAD whose Parent is empty
// becomes a new top-level protocol; otherwise it is attached as a new
// child of the named parent (in "reasonable time", i.e. O(1) here).
func (t *PAT) AddPAD(p PADMeta) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, dup := t.nodes[p.ID]; dup {
		return fmt.Errorf("core: PAT %s already has PAD %s", t.appID, p.ID)
	}
	if len(p.Children) > 0 {
		return fmt.Errorf("core: PAT %s: AddPAD(%s) cannot introduce children; add them separately", t.appID, p.ID)
	}
	if p.Alias != "" {
		target, ok := t.nodes[p.Alias]
		if !ok {
			return fmt.Errorf("core: PAT %s: AddPAD(%s) aliases unknown PAD %s", t.appID, p.ID, p.Alias)
		}
		if target.meta.Alias != "" {
			return fmt.Errorf("core: PAT %s: AddPAD(%s) aliases an alias", t.appID, p.ID)
		}
	}
	if p.Parent != "" {
		parent, ok := t.nodes[p.Parent]
		if !ok {
			return fmt.Errorf("core: PAT %s: AddPAD(%s) names unknown parent %s", t.appID, p.ID, p.Parent)
		}
		if parent.meta.Alias != "" {
			return fmt.Errorf("core: PAT %s: AddPAD(%s) cannot attach under symbolic link %s", t.appID, p.ID, p.Parent)
		}
		parent.children = append(parent.children, p.ID)
		parent.meta.Children = append(parent.meta.Children, p.ID)
	}
	t.nodes[p.ID] = &patNode{meta: p}
	if p.Parent == "" {
		t.roots = append(t.roots, p.ID)
	}
	return t.compile()
}
