package core

import (
	"container/list"
	"fmt"
	"sync"
)

// CacheKey identifies one negotiation outcome: the paper's adaptation
// cache maps { DevMeta, Application ID, NtwkMeta } to the PADMeta array
// the client needs. Principal extends the key for the access-control
// extension — two clients with identical environments but different
// authorization must not share results.
type CacheKey struct {
	AppID     string
	Principal string
	Dev       DevMeta
	Ntwk      NtwkMeta
}

// String renders the canonical key.
func (k CacheKey) String() string {
	return fmt.Sprintf("app=%s|who=%s|%s|%s", k.AppID, k.Principal, k.Dev.Key(), k.Ntwk.Key())
}

// CacheStats counts adaptation-cache behaviour.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// AdaptationCache is the distribution manager's negotiation-result cache,
// bounded by entry count with LRU eviction. It is safe for concurrent use.
type AdaptationCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *adaptEntry
	entries map[string]*list.Element
	stats   CacheStats
}

type adaptEntry struct {
	key  string
	pads []PADMeta
}

// NewAdaptationCache builds a cache holding at most capacity entries.
func NewAdaptationCache(capacity int) (*AdaptationCache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("core: adaptation cache capacity must be positive, got %d", capacity)
	}
	return &AdaptationCache{
		cap:     capacity,
		order:   list.New(),
		entries: map[string]*list.Element{},
	}, nil
}

// Get returns the cached negotiation result for a client configuration.
func (c *AdaptationCache) Get(k CacheKey) ([]PADMeta, bool) {
	key := k.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.order.MoveToFront(el)
	pads := el.Value.(*adaptEntry).pads
	return append([]PADMeta(nil), pads...), true
}

// Put stores a negotiation result, evicting the least recently used entry
// if the cache is full.
func (c *AdaptationCache) Put(k CacheKey, pads []PADMeta) {
	key := k.String()
	cp := append([]PADMeta(nil), pads...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*adaptEntry).pads = cp
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&adaptEntry{key: key, pads: cp})
	for len(c.entries) > c.cap {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*adaptEntry)
		c.order.Remove(back)
		delete(c.entries, ent.key)
		c.stats.Evictions++
	}
}

// Invalidate drops every entry for an application, used when the server
// pushes a new AppMeta (topology change).
func (c *AdaptationCache) Invalidate(appID string) int {
	prefix := fmt.Sprintf("app=%s|", appID)
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*adaptEntry)
		if len(ent.key) >= len(prefix) && ent.key[:len(prefix)] == prefix {
			c.order.Remove(el)
			delete(c.entries, ent.key)
			dropped++
		}
		el = next
	}
	return dropped
}

// Len returns the number of cached configurations.
func (c *AdaptationCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the hit/miss/eviction counters.
func (c *AdaptationCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
