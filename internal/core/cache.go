package core

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
)

// CacheKey identifies one negotiation outcome: the paper's adaptation
// cache maps { DevMeta, Application ID, NtwkMeta } to the PADMeta array
// the client needs. Principal extends the key for the access-control
// extension — two clients with identical environments but different
// authorization must not share results.
type CacheKey struct {
	AppID     string
	Principal string
	Dev       DevMeta
	Ntwk      NtwkMeta
}

// String renders the canonical key ("app=%s|who=%s|%s|%s" over the Dev and
// Ntwk fragments), built in a single buffer so the negotiation hot path
// pays one allocation for the whole key.
func (k CacheKey) String() string {
	b := make([]byte, 0, 128)
	b = append(b, "app="...)
	b = append(b, k.AppID...)
	b = append(b, "|who="...)
	b = append(b, k.Principal...)
	b = append(b, '|')
	b = k.Dev.appendKey(b)
	b = append(b, '|')
	b = k.Ntwk.appendKey(b)
	return string(b)
}

// appIDOfKey recovers the application id from a canonical key string, the
// inverse of the "app=<id>|" prefix String writes. Used to maintain the
// per-application invalidation index without carrying the CacheKey around.
func appIDOfKey(key string) string {
	rest, ok := strings.CutPrefix(key, "app=")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(rest, '|'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// CacheStats counts adaptation-cache behaviour.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// AdaptationCache is the distribution manager's negotiation-result cache,
// bounded by entry count with LRU eviction. It is safe for concurrent use.
//
// Internally the cache is split into a power-of-two number of shards, each
// with its own lock, LRU list, and counters, so concurrent sessions do not
// serialize on one mutex. Small caches (where per-shard capacity would
// drop below shardMinCap) use a single shard and therefore keep exact
// global LRU semantics; large caches trade global recency ordering for
// per-shard ordering, the standard sharded-LRU design.
type AdaptationCache struct {
	shards []*cacheShard
	mask   uint32
}

// Sharding bounds: at most maxShards shards, and only when every shard
// keeps at least shardMinCap entries.
const (
	maxShards   = 16
	shardMinCap = 64
)

// cacheShard is one lock domain of the adaptation cache.
type cacheShard struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *adaptEntry
	entries map[string]*list.Element
	// byApp indexes live entries by application id so a topology push
	// invalidates in O(entries-for-app) instead of scanning the LRU.
	byApp map[string]map[string]*list.Element
	stats CacheStats
}

type adaptEntry struct {
	key   string
	appID string
	pads  []PADMeta
}

// NewAdaptationCache builds a cache holding at most capacity entries in
// total across all shards.
func NewAdaptationCache(capacity int) (*AdaptationCache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("core: adaptation cache capacity must be positive, got %d", capacity)
	}
	shards := 1
	for shards < maxShards && capacity/(shards*2) >= shardMinCap {
		shards *= 2
	}
	c := &AdaptationCache{shards: make([]*cacheShard, shards), mask: uint32(shards - 1)}
	base, rem := capacity/shards, capacity%shards
	for i := range c.shards {
		sc := base
		if i < rem {
			sc++
		}
		c.shards[i] = &cacheShard{
			cap:     sc,
			order:   list.New(),
			entries: map[string]*list.Element{},
			byApp:   map[string]map[string]*list.Element{},
		}
	}
	return c, nil
}

// shard maps a canonical key string to its lock domain (FNV-1a).
func (c *AdaptationCache) shard(key string) *cacheShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return c.shards[h&c.mask]
}

// Shards reports the number of lock domains (always a power of two).
func (c *AdaptationCache) Shards() int { return len(c.shards) }

// Get returns the cached negotiation result for a client configuration.
func (c *AdaptationCache) Get(k CacheKey) ([]PADMeta, bool) {
	return c.GetKeyed(k.String())
}

// GetKeyed is Get for a caller that already rendered k.String(), so the
// hot path builds the canonical key exactly once per negotiation.
//
//fractal:hotpath every negotiation hits the cache before searching
func (c *AdaptationCache) GetKeyed(key string) ([]PADMeta, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	s.order.MoveToFront(el)
	pads := el.Value.(*adaptEntry).pads
	return append([]PADMeta(nil), pads...), true
}

// Put stores a negotiation result, evicting the least recently used entry
// of the key's shard if that shard is full.
func (c *AdaptationCache) Put(k CacheKey, pads []PADMeta) {
	c.PutKeyed(k.String(), pads)
}

// PutKeyed is Put for a caller that already rendered k.String(); key must
// be the canonical CacheKey.String() form.
//
//fractal:hotpath every cache miss stores its search result here
func (c *AdaptationCache) PutKeyed(key string, pads []PADMeta) {
	cp := append([]PADMeta(nil), pads...)
	appID := appIDOfKey(key)
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*adaptEntry).pads = cp
		s.order.MoveToFront(el)
		return
	}
	el := s.order.PushFront(&adaptEntry{key: key, appID: appID, pads: cp})
	s.entries[key] = el
	keys := s.byApp[appID]
	if keys == nil {
		keys = map[string]*list.Element{}
		s.byApp[appID] = keys
	}
	keys[key] = el
	for len(s.entries) > s.cap {
		back := s.order.Back()
		if back == nil {
			break
		}
		s.removeLocked(back)
		s.stats.Evictions++
	}
}

// removeLocked unlinks an element from the LRU order, the key map, and the
// per-app index. The shard lock must be held.
func (s *cacheShard) removeLocked(el *list.Element) {
	ent := el.Value.(*adaptEntry)
	s.order.Remove(el)
	delete(s.entries, ent.key)
	if keys := s.byApp[ent.appID]; keys != nil {
		delete(keys, ent.key)
		if len(keys) == 0 {
			delete(s.byApp, ent.appID)
		}
	}
}

// Invalidate drops every entry for an application, used when the server
// pushes a new AppMeta (topology change). The per-app index makes this
// proportional to the application's entries, not the cache size.
func (c *AdaptationCache) Invalidate(appID string) int {
	dropped := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for _, el := range s.byApp[appID] {
			ent := el.Value.(*adaptEntry)
			s.order.Remove(el)
			delete(s.entries, ent.key)
			dropped++
		}
		delete(s.byApp, appID)
		s.mu.Unlock()
	}
	return dropped
}

// Len returns the number of cached configurations.
func (c *AdaptationCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats returns the hit/miss/eviction counters aggregated across shards.
func (c *AdaptationCache) Stats() CacheStats {
	var st CacheStats
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.stats.Hits
		st.Misses += s.stats.Misses
		st.Evictions += s.stats.Evictions
		s.mu.Unlock()
	}
	return st
}
