package core

import "math"

// Case-study environment type labels (Figure 7). These mirror
// netsim's profiles; core keeps its own strings so the framework does not
// depend on the simulator.
const (
	CPUTypePXA255 = "PXA255"    // P: Intel PXA 255 (Pocket PC)
	CPUTypeP4     = "PentiumIV" // D/L: Pentium IV desktop & laptop
	OSWinCE       = "WinCE4.2"
	OSFedora      = "FedoraCore2"
	NetLAN        = "LAN"
	NetWLAN       = "WLAN"
	NetBluetooth  = "Bluetooth"
)

// CaseStudyMatrices returns the normalized ratio matrices of Equations
// 4–6: the PXA255 column carries a 1.1 penalty for the three computing
// protocols ("some of the data come from the test, others we set as 1 to
// follow the linear model"); the OS and network matrices are all ones.
// Row labels are codec registry names; Direct is omitted and therefore
// falls back to the neutral ratio 1.
func CaseStudyMatrices() (Matrices, error) {
	rows := []string{"gzip", "varyblock", "bitmap"}
	a, err := NewRatioMatrix("A", rows,
		[]string{CPUTypePXA255, CPUTypeP4},
		[][]float64{
			{1.1, 1},
			{1.1, 1},
			{1.1, 1},
		})
	if err != nil {
		return Matrices{}, err
	}
	b, err := NewRatioMatrix("B", rows,
		[]string{OSWinCE, OSFedora},
		[][]float64{
			{1, 1},
			{1, 1},
			{1, 1},
		})
	if err != nil {
		return Matrices{}, err
	}
	r, err := NewRatioMatrix("R", rows,
		[]string{NetLAN, NetWLAN, NetBluetooth},
		[][]float64{
			{1, 1, 1},
			{1, 1, 1},
			{1, 1, 1},
		})
	if err != nil {
		return Matrices{}, err
	}
	return Matrices{A: a, B: b, R: r}, nil
}

// ContentAdaptationMatrices extends the case-study matrices for the
// two-level content-adaptation topology, exercising the paper's remark
// that "it is easy to introduce more parameters if necessary, e.g., the
// screen resolution": the thumbnail rendition is unsuitable (infinite
// ratio) on the large-display Fedora hosts and suitable on the WinCE
// handheld, while the full rendition runs anywhere.
func ContentAdaptationMatrices() (Matrices, error) {
	ms, err := CaseStudyMatrices()
	if err != nil {
		return Matrices{}, err
	}
	b, err := NewRatioMatrix("B",
		[]string{"gzip", "varyblock", "bitmap", "thumbnail", "full"},
		[]string{OSWinCE, OSFedora},
		[][]float64{
			{1, 1},
			{1, 1},
			{1, 1},
			{1, math.Inf(1)}, // thumbnails waste large displays
			{1, 1},
		})
	if err != nil {
		return Matrices{}, err
	}
	ms.B = b
	return ms, nil
}

// MediaPlayerExampleMatrix reproduces the motivating example of Section
// 3.4.2: Windows Media runs on WinCE but not PalmOS, Kinoma the reverse.
// It is used by tests and documentation to demonstrate how an infinite
// ratio disqualifies an otherwise-cheaper PAD.
func MediaPlayerExampleMatrix() (*RatioMatrix, error) {
	inf := math.Inf(1)
	return NewRatioMatrix("B-players",
		[]string{"winmedia", "kinoma"},
		[]string{"WinCE", "PalmOS"},
		[][]float64{
			{1, inf},
			{inf, 1},
		})
}
