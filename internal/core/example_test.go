package core_test

import (
	"fmt"
	"time"

	"fractal/internal/core"
)

// The paper's Figure 5/6 walkthrough: a tree with a symbolic link, marked
// with total overheads, searched for the least-cost root-to-leaf path.
func ExampleFindPath() {
	pad := func(id, parent string, children []string, cost time.Duration) core.PADMeta {
		return core.PADMeta{
			ID: id, Protocol: "proto-" + id, Parent: parent, Children: children,
			Overhead: core.PADOverhead{ClientCompStd: cost},
		}
	}
	app := core.AppMeta{
		AppID: "fig5",
		PADs: []core.PADMeta{
			pad("PAD1", "", []string{"PAD4", "PAD5", "PAD6"}, 8*time.Second),
			pad("PAD2", "", []string{"PAD7"}, 4*time.Second),
			pad("PAD4", "PAD1", nil, 6*time.Second),
			pad("PAD5", "PAD1", nil, 9*time.Second),
			{ID: "PAD6", Parent: "PAD1", Alias: "PAD7"}, // symbolic link
			pad("PAD7", "PAD2", nil, 5*time.Second),
		},
	}
	pat, err := core.BuildPAT(app)
	if err != nil {
		fmt.Println(err)
		return
	}
	ms, err := core.Neutral([]string{"any"})
	if err != nil {
		fmt.Println(err)
		return
	}
	model := core.OverheadModel{
		Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000, SessionRequests: 1,
	}
	env := core.Env{
		Dev:  core.DevMeta{OSType: "os", CPUType: "cpu", CPUMHz: core.StdCPUMHz, MemMB: 64},
		Ntwk: core.NtwkMeta{NetworkType: "net", BandwidthKbps: 1e9},
	}
	res, err := core.FindPath(pat, model, env)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("path %v, total %.0fs\n", res.NodeIDs, res.Total)
	// Output: path [PAD2 PAD7], total 9s
}

// The motivating normalized-ratio example (Section 3.4.2): the linearly
// cheaper Kinoma player is disqualified on WinCE by an infinite ratio.
func ExampleRatioMatrix() {
	m, err := core.MediaPlayerExampleMatrix()
	if err != nil {
		fmt.Println(err)
		return
	}
	winmedia := 5.0 * m.Ratio("winmedia", "WinCE")
	kinoma := 2.0 * m.Ratio("kinoma", "WinCE")
	fmt.Printf("WinMedia %.0fs, Kinoma %v -> pick WinMedia\n", winmedia, kinoma)
	// Output: WinMedia 5s, Kinoma +Inf -> pick WinMedia
}
