package core

import (
	"fmt"
	"sync"
	"testing"
)

func shardedTestKey(app string, i int) CacheKey {
	return CacheKey{
		AppID:     app,
		Principal: "tester",
		Dev:       DevMeta{OSType: OSFedora, CPUType: CPUTypeP4, CPUMHz: float64(1000 + i), MemMB: 512},
		Ntwk:      NtwkMeta{NetworkType: NetLAN, BandwidthKbps: 100000},
	}
}

func TestAdaptationCacheShardCount(t *testing.T) {
	cases := []struct {
		capacity int
		shards   int
	}{
		{1, 1},       // tiny caches stay single-sharded (exact LRU)
		{2, 1},       // pinned by TestAdaptationCacheLRUEviction
		{127, 1},     // 127/2 < 64: splitting would starve shards
		{128, 2},     // first capacity where two shards keep >= 64 each
		{512, 8},     // 512/8 = 64, but 512/16 would starve shards
		{1024, 16},   // 1024/16 = 64 exactly
		{100000, 16}, // capped at maxShards
	}
	for _, tc := range cases {
		c, err := NewAdaptationCache(tc.capacity)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Shards(); got != tc.shards {
			t.Errorf("capacity %d: got %d shards, want %d", tc.capacity, got, tc.shards)
		}
	}
}

func TestAdaptationCacheShardedAggregation(t *testing.T) {
	c, err := NewAdaptationCache(1024)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() < 2 {
		t.Fatalf("want multi-shard cache, got %d shards", c.Shards())
	}
	pads := []PADMeta{{ID: "p", Protocol: "gzip"}}
	const n = 300
	for i := 0; i < n; i++ {
		c.Put(shardedTestKey("app-a", i), pads)
	}
	if got := c.Len(); got != n {
		t.Fatalf("Len() = %d, want %d (aggregated across shards)", got, n)
	}
	for i := 0; i < n; i++ {
		if _, ok := c.Get(shardedTestKey("app-a", i)); !ok {
			t.Fatalf("entry %d missing after fill", i)
		}
	}
	c.Get(shardedTestKey("app-a", n+1)) // one miss
	st := c.Stats()
	if st.Hits != n || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("aggregated stats = %+v, want {Hits:%d Misses:1 Evictions:0}", st, n)
	}
}

// TestAdaptationCacheInterleavedPutInvalidateGet is the satellite pin for
// the per-app invalidation index: interleaving Put/Invalidate/Get across
// two applications must never leak an invalidated entry, never drop a live
// one, and keep the index consistent with the LRU under re-puts.
func TestAdaptationCacheInterleavedPutInvalidateGet(t *testing.T) {
	for _, capacity := range []int{10, 1024} { // single-shard and sharded
		c, err := NewAdaptationCache(capacity)
		if err != nil {
			t.Fatal(err)
		}
		padsA := []PADMeta{{ID: "a", Protocol: "gzip"}}
		padsB := []PADMeta{{ID: "b", Protocol: "bitmap"}}

		c.Put(shardedTestKey("app-a", 1), padsA)
		c.Put(shardedTestKey("app-b", 1), padsB)
		c.Put(shardedTestKey("app-a", 2), padsA)

		if dropped := c.Invalidate("app-a"); dropped != 2 {
			t.Fatalf("cap %d: Invalidate(app-a) dropped %d, want 2", capacity, dropped)
		}
		if _, ok := c.Get(shardedTestKey("app-a", 1)); ok {
			t.Fatalf("cap %d: invalidated app-a entry survived", capacity)
		}
		if got, ok := c.Get(shardedTestKey("app-b", 1)); !ok || got[0].ID != "b" {
			t.Fatalf("cap %d: app-b entry lost by app-a invalidation", capacity)
		}

		// Re-put after invalidation, update in place, then invalidate again:
		// the per-app index must track the latest state, not history.
		c.Put(shardedTestKey("app-a", 1), padsA)
		c.Put(shardedTestKey("app-a", 1), padsB) // overwrite same key
		if got, ok := c.Get(shardedTestKey("app-a", 1)); !ok || got[0].ID != "b" {
			t.Fatalf("cap %d: overwrite lost", capacity)
		}
		if dropped := c.Invalidate("app-a"); dropped != 1 {
			t.Fatalf("cap %d: second Invalidate dropped %d, want 1 (overwrite must not double-index)", capacity, dropped)
		}
		if dropped := c.Invalidate("app-a"); dropped != 0 {
			t.Fatalf("cap %d: empty Invalidate dropped %d, want 0", capacity, dropped)
		}
		if got := c.Len(); got != 1 {
			t.Fatalf("cap %d: Len() = %d, want 1 (only app-b left)", capacity, got)
		}
	}
}

// TestAdaptationCacheEvictionMaintainsAppIndex checks that LRU eviction
// removes entries from the per-app index too, so Invalidate after heavy
// eviction reports only live entries.
func TestAdaptationCacheEvictionMaintainsAppIndex(t *testing.T) {
	c, err := NewAdaptationCache(4)
	if err != nil {
		t.Fatal(err)
	}
	pads := []PADMeta{{ID: "p", Protocol: "gzip"}}
	for i := 0; i < 100; i++ {
		c.Put(shardedTestKey("app-a", i), pads)
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("Len() = %d, want 4", got)
	}
	if st := c.Stats(); st.Evictions != 96 {
		t.Fatalf("Evictions = %d, want 96", st.Evictions)
	}
	if dropped := c.Invalidate("app-a"); dropped != 4 {
		t.Fatalf("Invalidate dropped %d, want 4 (evicted entries must leave the index)", dropped)
	}
}

func TestAdaptationCacheConcurrentMixedOps(t *testing.T) {
	c, err := NewAdaptationCache(2048)
	if err != nil {
		t.Fatal(err)
	}
	pads := []PADMeta{{ID: "p", Protocol: "gzip"}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			app := fmt.Sprintf("app-%d", w%3)
			for i := 0; i < 500; i++ {
				k := shardedTestKey(app, i%50)
				switch i % 5 {
				case 0, 1:
					c.Put(k, pads)
				case 2, 3:
					c.Get(k)
				default:
					c.Invalidate(app)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	if c.Len() > 2048 {
		t.Fatalf("Len() = %d exceeds capacity", c.Len())
	}
}
