// Package core implements the paper's primary contribution: the Fractal
// adaptation machinery. It provides the negotiation metadata formats
// (Figure 3), the protocol adaptation tree with symbolic links (Section
// 3.4.1), the normalized ratio matrices and linear overhead model
// (Equations 1–3), the adaptation path search algorithm (Figure 6), and
// the adaptation cache used by the proxy's distribution manager.
package core

import (
	"crypto/sha1"
	"fmt"
	"strconv"
	"time"
)

// DevMeta is the device metadata a client reports during negotiation:
// { Operating system type, CPU type, CPU speed, memory size }.
type DevMeta struct {
	OSType  string
	CPUType string
	CPUMHz  float64
	MemMB   int
}

// Validate reports whether the device metadata is usable.
func (d DevMeta) Validate() error {
	if d.OSType == "" || d.CPUType == "" {
		return fmt.Errorf("core: DevMeta needs OS and CPU types, got %q/%q", d.OSType, d.CPUType)
	}
	if d.CPUMHz <= 0 {
		return fmt.Errorf("core: DevMeta CPU speed must be positive, got %v", d.CPUMHz)
	}
	if d.MemMB <= 0 {
		return fmt.Errorf("core: DevMeta memory must be positive, got %d", d.MemMB)
	}
	return nil
}

// Key returns a canonical cache-key fragment.
func (d DevMeta) Key() string {
	return string(d.appendKey(make([]byte, 0, 64)))
}

// appendKey appends the canonical fragment ("os=%s|cpu=%s|mhz=%.0f|mem=%d"
// rendered without fmt) so CacheKey.String builds the whole key in one
// buffer. strconv.AppendFloat with 'f'/0 matches %.0f exactly.
func (d DevMeta) appendKey(b []byte) []byte {
	b = append(b, "os="...)
	b = append(b, d.OSType...)
	b = append(b, "|cpu="...)
	b = append(b, d.CPUType...)
	b = append(b, "|mhz="...)
	b = strconv.AppendFloat(b, d.CPUMHz, 'f', 0, 64)
	b = append(b, "|mem="...)
	b = strconv.AppendInt(b, int64(d.MemMB), 10)
	return b
}

// NtwkMeta is the network metadata a client reports:
// { Network type, Network bandwidth }.
type NtwkMeta struct {
	NetworkType   string
	BandwidthKbps float64
}

// Validate reports whether the network metadata is usable.
func (n NtwkMeta) Validate() error {
	if n.NetworkType == "" {
		return fmt.Errorf("core: NtwkMeta needs a network type")
	}
	if n.BandwidthKbps <= 0 {
		return fmt.Errorf("core: NtwkMeta bandwidth must be positive, got %v", n.BandwidthKbps)
	}
	return nil
}

// Key returns a canonical cache-key fragment.
func (n NtwkMeta) Key() string {
	return string(n.appendKey(make([]byte, 0, 32)))
}

// appendKey appends the canonical fragment ("net=%s|bw=%.0f" rendered
// without fmt).
func (n NtwkMeta) appendKey(b []byte) []byte {
	b = append(b, "net="...)
	b = append(b, n.NetworkType...)
	b = append(b, "|bw="...)
	b = strconv.AppendFloat(b, n.BandwidthKbps, 'f', 0, 64)
	return b
}

// Env is one client environment: the pair the negotiation manager adapts
// for.
type Env struct {
	Dev  DevMeta
	Ntwk NtwkMeta
}

// Validate reports whether the environment is usable.
func (e Env) Validate() error {
	if err := e.Dev.Validate(); err != nil {
		return err
	}
	return e.Ntwk.Validate()
}

// PADOverhead is the pre-measured overhead vector of one PAD (Equation 1):
// computing overheads on the reference 500 MHz processor and the expected
// traffic for a standard request, which the linear model scales to a
// concrete client.
type PADOverhead struct {
	// ServerCompStd is the server-side computing overhead per request on
	// the reference CPU.
	ServerCompStd time.Duration
	// ClientCompStd is the client-side computing overhead per request on
	// the reference CPU.
	ClientCompStd time.Duration
	// TrafficBytes is the expected downstream bytes per request.
	TrafficBytes int64
	// UpstreamBytes is the expected request-direction bytes per request
	// beyond the request itself (e.g. Bitmap's client digests).
	UpstreamBytes int64
}

// Validate reports whether the overhead vector is usable.
func (o PADOverhead) Validate() error {
	if o.ServerCompStd < 0 || o.ClientCompStd < 0 {
		return fmt.Errorf("core: negative computing overhead %v/%v", o.ServerCompStd, o.ClientCompStd)
	}
	if o.TrafficBytes < 0 || o.UpstreamBytes < 0 {
		return fmt.Errorf("core: negative traffic overhead %d/%d", o.TrafficBytes, o.UpstreamBytes)
	}
	return nil
}

// PADMeta is the per-adaptor metadata exchanged in negotiation (Figure 3):
// { PAD ID, PAD size, PAD overhead, Message digest, URL, Parent link,
// Child links }. Protocol names the implementation the PAD carries; Alias,
// when non-empty, marks this entry as a symbolic copy of another PAD that
// is required by more than one parent (Section 3.4.1).
type PADMeta struct {
	ID       string
	Version  string
	Protocol string
	Size     int64
	Overhead PADOverhead
	Digest   [sha1.Size]byte
	URL      string
	Parent   string   // empty = child of the application root
	Children []string // ids of child PADs (one must accompany this PAD)
	Alias    string   // symbolic link target, if any
}

// Validate reports whether the metadata is structurally usable.
func (p PADMeta) Validate() error {
	if p.ID == "" {
		return fmt.Errorf("core: PADMeta needs an id")
	}
	if p.Alias == "" && p.Protocol == "" {
		return fmt.Errorf("core: PAD %s needs a protocol name", p.ID)
	}
	if p.Alias == p.ID {
		return fmt.Errorf("core: PAD %s is a symbolic link to itself", p.ID)
	}
	if p.Size < 0 {
		return fmt.Errorf("core: PAD %s has negative size %d", p.ID, p.Size)
	}
	if err := p.Overhead.Validate(); err != nil {
		return fmt.Errorf("core: PAD %s: %w", p.ID, err)
	}
	for _, c := range p.Children {
		if c == p.ID {
			return fmt.Errorf("core: PAD %s lists itself as a child", p.ID)
		}
	}
	return nil
}

// Redacted returns a copy with the tree-structure links hidden, as the
// distribution manager does before sending PADMeta to a client ("hides the
// parent and child links since the exposure to the client is
// unnecessary").
func (p PADMeta) Redacted() PADMeta {
	q := p
	q.Parent = ""
	q.Children = nil
	return q
}

// AppMeta is the application metadata the server pushes to the adaptation
// proxy: { Application ID, PADMeta 1..n }, from which the proxy builds the
// protocol adaptation tree.
type AppMeta struct {
	AppID string
	PADs  []PADMeta
}

// Validate reports whether the application metadata is structurally
// usable (full referential checks happen in BuildPAT).
func (a AppMeta) Validate() error {
	if a.AppID == "" {
		return fmt.Errorf("core: AppMeta needs an application id")
	}
	if len(a.PADs) == 0 {
		return fmt.Errorf("core: AppMeta %s has no PADs", a.AppID)
	}
	seen := map[string]bool{}
	for _, p := range a.PADs {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("core: AppMeta %s: %w", a.AppID, err)
		}
		if seen[p.ID] {
			return fmt.Errorf("core: AppMeta %s has duplicate PAD id %s", a.AppID, p.ID)
		}
		seen[p.ID] = true
	}
	return nil
}
