package analysis

// A generic forward worklist fixpoint over CFG blocks — the dataflow half
// of the flow-sensitive engine. An analyzer supplies the lattice (Join,
// Equal), the per-block transfer function, and optionally a per-edge
// refinement (how a branch condition sharpens facts on its true/false
// edges). The engine returns the block-entry facts at the fixpoint; the
// analyzer then replays each reached block once to report.
//
// Contract: Transfer, Refine, and Join must treat their inputs as
// immutable — facts are shared between blocks, so implementations
// copy-on-write.

// FlowAnalysis defines one dataflow problem over facts of type F.
type FlowAnalysis[F any] struct {
	// Entry produces the fact at function entry.
	Entry func() F
	// Transfer pushes a fact through a block's nodes.
	Transfer func(b *Block, in F) F
	// Refine (optional) sharpens a block's out-fact along one edge, using
	// the edge's branch condition.
	Refine func(e Edge, out F) F
	// Join merges facts arriving over two edges.
	Join func(a, b F) F
	// Equal decides convergence.
	Equal func(a, b F) bool
}

// ForwardFixpoint iterates the analysis to a fixpoint and returns the
// entry fact of every reached block. Unreachable blocks are absent from
// the result. The iteration is capped well above what any monotone
// analysis on these CFGs needs, so a non-monotone transfer cannot hang
// the vet run.
func ForwardFixpoint[F any](g *CFG, an FlowAnalysis[F]) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	in[g.Entry] = an.Entry()
	// FIFO worklist with membership dedup: a block whose input changes
	// while it is already pending is not enqueued again — the pending
	// visit will see the joined fact. Without the dedup, a wide join point
	// (a 200-case switch funnelling into one block) would be enqueued once
	// per incoming edge and transfer quadratically. Popping advances a
	// head index instead of re-slicing so the queue memory is reused once
	// the head catches up.
	work := make([]*Block, 1, len(g.Blocks)+1)
	work[0] = g.Entry
	head := 0
	queued := make([]bool, len(g.Blocks))
	queued[g.Entry.Index] = true
	maxSteps := 64*len(g.Blocks) + 256
	for steps := 0; head < len(work) && steps < maxSteps; steps++ {
		b := work[head]
		head++
		if head == len(work) {
			work, head = work[:0], 0
		}
		queued[b.Index] = false
		out := an.Transfer(b, in[b])
		for _, e := range b.Succs {
			f := out
			if an.Refine != nil {
				f = an.Refine(e, out)
			}
			cur, seen := in[e.To]
			next := f
			if seen {
				next = an.Join(cur, f)
			}
			if seen && an.Equal(cur, next) {
				continue
			}
			in[e.To] = next
			if !queued[e.To.Index] {
				queued[e.To.Index] = true
				work = append(work, e.To)
			}
		}
	}
	return in
}
