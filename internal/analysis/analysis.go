// Package analysis is fractal-vet: a repo-specific static-analysis suite
// built entirely on the stdlib go/ast + go/parser + go/types stack (the
// module is dependency-free and must stay that way).
//
// The repo's core correctness properties — "simulation results are
// repeatable" and "PADs are verified before deployment" — are invariants
// about how code is written, not just runtime behaviour. Each analyzer
// machine-checks one of them:
//
//   - simtime:    wall-clock time sources are forbidden in
//     simulation-deterministic packages; virtual time flows
//     through netsim.Clock.
//   - rawrand:    the global math/rand source is forbidden; randomness
//     comes from injected, seeded *rand.Rand values.
//   - errdiscard: io.Reader/io.Writer and codec encode/decode errors (and
//     Read byte counts — the short-read bug class) must not be
//     discarded.
//   - opcomplete: every VM opcode has an assembler mnemonic and a
//     dispatch-switch handler.
//   - digestsafe: digest equality goes through the designated constant-time
//     helper, never ad-hoc ==/bytes.Equal.
//   - deadline:   conn Read/Write and INP frame calls in the networking
//     packages must be guarded by a deadline or SetTimeout, so a
//     stalled peer cannot park a session goroutine forever.
//   - lockheld:   (flow-sensitive) no mutex is provably held across a
//     blocking operation, no lock is re-acquired while held, and
//     known locks are acquired in a consistent order.
//   - wiretaint:  (flow-sensitive) integers decoded from the wire must
//     pass an upper-bound check before sizing an allocation.
//   - hotpath:    (flow-sensitive) functions annotated //fractal:hotpath
//     avoid per-call allocation constructs, pinning the
//     benchmarked allocs/op.
//   - goleak:     (interprocedural) goroutines spawned in the serving-plane
//     packages are tied to a context/close/deadline exit signal,
//     so a stalled peer cannot leak a goroutine per session.
//
// The flow-sensitive analyzers run on a shared intraprocedural CFG +
// forward-dataflow engine (cfg.go, dataflow.go) — the host-language
// sibling of the PAD bytecode verifier's stack checker. On top of that,
// a call graph with bottom-up function summaries (callgraph.go,
// summary.go) lets lockheld, wiretaint, and goleak see through calls:
// taint transfer, blocking behaviour, and spawn obligations compose
// across any number of in-set hops.
//
// A finding can be suppressed at a genuine exception site (for example a
// real-I/O read deadline) with a checked annotation comment on the same or
// the preceding line:
//
//	//fractal:allow simtime — real socket deadline, not simulated time
//
// Annotations are "checked" in that an allow comment which suppresses
// nothing is itself reported, so stale allowlists cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	// Related points at the other ends of an interprocedural finding: the
	// decode site feeding a sink, the lock acquisition a blocking call
	// violates, the unguarded operation inside a leaked goroutine.
	Related []Related `json:"related,omitempty"`
}

// Related is one secondary location attached to a diagnostic.
type Related struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package and collects its
// diagnostics. Prog is the interprocedural view of the whole Run package
// set (call graph + function summaries); it is shared and read-only.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Prog     *Program
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.ReportRelated(pos, nil, format, args...)
}

// ReportRelated records a finding at pos carrying secondary locations.
func (p *Pass) ReportRelated(pos token.Pos, related []Related, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Related:  related,
	})
}

// RelatedAt builds one Related entry from a position in this pass's
// file set. An invalid position yields a zero entry the caller should
// drop; every current call site passes positions of nodes it just
// visited, so the guard is belt and braces.
func (p *Pass) RelatedAt(pos token.Pos, message string) Related {
	if !pos.IsValid() {
		return Related{Message: message}
	}
	position := p.Fset.Position(pos)
	return Related{File: position.Filename, Line: position.Line, Col: position.Column, Message: message}
}

// AllowPrefix introduces a suppression annotation comment.
const AllowPrefix = "fractal:allow"

// allowAnnotation is one parsed //fractal:allow comment.
type allowAnnotation struct {
	analyzer string
	file     string
	line     int
	pos      token.Pos
	used     bool
}

// collectAllows parses every fractal:allow annotation in the package.
func collectAllows(fset *token.FileSet, files []*ast.File) []*allowAnnotation {
	var out []*allowAnnotation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, AllowPrefix))
				if len(fields) == 0 {
					continue
				}
				p := fset.Position(c.Pos())
				out = append(out, &allowAnnotation{
					analyzer: fields[0],
					file:     p.Filename,
					line:     p.Line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// Timing is one analyzer's cumulative wall time across the whole run
// (the pseudo-entry "(summaries)" is the interprocedural program build:
// call graph plus bottom-up function summaries).
type Timing struct {
	Analyzer string        `json:"analyzer"`
	Duration time.Duration `json:"duration"`
}

// Run executes the analyzers over the packages, applies allow annotations,
// reports unused annotations, and returns the surviving diagnostics sorted
// by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(pkgs, analyzers)
	return diags
}

// RunTimed is Run plus per-analyzer wall-time accounting. Within each
// package the analyzers execute concurrently (they are independent by
// construction: each gets its own Pass, and Package/Program are read-only
// by the time analyzers run), bounded by GOMAXPROCS so vet time stays
// flat as the suite grows.
func RunTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	t0 := time.Now()
	prog := BuildProgram(pkgs)
	progDur := time.Since(t0)

	durations := make([]atomic.Int64, len(analyzers))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		passes := make([]*Pass, len(analyzers))
		var wg sync.WaitGroup
		for i, a := range analyzers {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, a *Analyzer) {
				defer func() {
					<-sem
					wg.Done()
				}()
				start := time.Now()
				pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, Prog: prog}
				a.Run(pass)
				durations[i].Add(int64(time.Since(start)))
				passes[i] = pass
			}(i, a)
		}
		wg.Wait()
		// Sequential collection in analyzer order keeps the output (and the
		// allow bookkeeping) deterministic regardless of scheduling.
		for _, pass := range passes {
			for _, d := range pass.diags {
				if suppressed(d, allows) {
					continue
				}
				out = append(out, d)
			}
		}
		// An allow annotation naming an enabled analyzer that suppressed
		// nothing is stale; report it so allowlists stay honest.
		enabled := map[string]bool{}
		for _, a := range analyzers {
			enabled[a.Name] = true
		}
		for _, al := range allows {
			if al.used || !enabled[al.analyzer] {
				continue
			}
			p := pkg.Fset.Position(al.pos)
			out = append(out, Diagnostic{
				Analyzer: "allowcheck",
				Pos:      p,
				File:     p.Filename,
				Line:     p.Line,
				Col:      p.Column,
				Message:  fmt.Sprintf("unused //%s %s annotation (nothing to suppress here; remove it)", AllowPrefix, al.analyzer),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	timings := make([]Timing, 0, len(analyzers)+1)
	timings = append(timings, Timing{Analyzer: "(summaries)", Duration: progDur})
	for i, a := range analyzers {
		timings = append(timings, Timing{Analyzer: a.Name, Duration: time.Duration(durations[i].Load())})
	}
	return out, timings
}

// suppressed reports whether an annotation on the diagnostic's line or the
// line above covers it, marking the annotation used.
func suppressed(d Diagnostic, allows []*allowAnnotation) bool {
	hit := false
	for _, al := range allows {
		if al.analyzer != d.Analyzer || al.file != d.File {
			continue
		}
		if al.line == d.Line || al.line == d.Line-1 {
			al.used = true
			hit = true
		}
	}
	return hit
}

// Analyzers returns the full fractal-vet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SimtimeAnalyzer,
		RawrandAnalyzer,
		ErrdiscardAnalyzer,
		OpcompleteAnalyzer,
		DigestsafeAnalyzer,
		DeadlineAnalyzer,
		LockheldAnalyzer,
		WiretaintAnalyzer,
		HotpathAnalyzer,
		GoleakAnalyzer,
	}
}

// Select filters the suite by enable/disable comma lists ("" means all).
func Select(enable, disable string) ([]*Analyzer, error) {
	all := Analyzers()
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	picked := all
	if enable != "" {
		picked = nil
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
			}
			picked = append(picked, a)
		}
	}
	if disable != "" {
		drop := map[string]bool{}
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
			}
			drop[name] = true
		}
		var kept []*Analyzer
		for _, a := range picked {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		picked = kept
	}
	return picked, nil
}
