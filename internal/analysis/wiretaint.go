package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// wiretaintScope lists the packages that decode attacker-controlled bytes:
// the INP framing plane and the delta codec. Everywhere else, integers do
// not arrive from a peer.
var wiretaintScope = map[string]bool{
	"fractal/internal/inp":   true,
	"fractal/internal/codec": true,
}

// taintBoundMax is the largest constant upper bound that counts as a
// sanitizer. Comparing a wire integer against 64 MB and then allocating it
// is exactly the hostile-header bug, so huge constants do not launder
// taint.
const taintBoundMax = 1 << 24

// WiretaintAnalyzer runs a may-taint dataflow over each function's CFG:
// integers produced by wire decoders (binary.ReadUvarint, ByteOrder
// Uint16/32/64, and one-level local wrappers around them) are tainted;
// branch conditions that upper-bound a tainted variable against a sane
// limit sanitize it on the guarded edge; tainted values reaching an
// allocation-size sink (make, slices.Grow, io.CopyN) are reported.
var WiretaintAnalyzer = &Analyzer{
	Name: "wiretaint",
	Doc:  "flag wire-decoded integers flowing into allocation sizes without a bound check",
	Run:  runWiretaint,
}

// taintFact is the may-tainted set of integer variables. Join is union.
type taintFact map[*types.Var]bool

func taintJoin(a, b taintFact) taintFact {
	out := make(taintFact, len(a)+len(b))
	for v := range a {
		out[v] = true
	}
	for v := range b {
		out[v] = true
	}
	return out
}

func taintEqual(a, b taintFact) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

func runWiretaint(pass *Pass) {
	if !wiretaintScope[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			wrappers := sourceWrappers(pass, fd.Body)
			for _, g := range funcCFGs(fd.Body) {
				wiretaintFunc(pass, g, wrappers)
			}
		}
	}
}

// sourceWrappers finds one level of local indirection over the wire
// decoders: `readU := func(...) ... { ... binary.ReadUvarint ... }`. Calls
// through such a variable taint their first result like the decoder
// itself.
func sourceWrappers(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	wrappers := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		var v *types.Var
		if def, ok := pass.Pkg.Info.Defs[id].(*types.Var); ok {
			v = def
		} else if use, ok := pass.Pkg.Info.Uses[id].(*types.Var); ok {
			v = use
		}
		if v == nil {
			return true
		}
		callsSource := false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && isWireSource(pass, call, nil) {
				callsSource = true
				return false
			}
			return true
		})
		if callsSource {
			wrappers[v] = true
		}
		return true
	})
	return wrappers
}

type taintCtx struct {
	pass     *Pass
	wrappers map[*types.Var]bool
}

func wiretaintFunc(pass *Pass, g *CFG, wrappers map[*types.Var]bool) {
	ctx := &taintCtx{pass: pass, wrappers: wrappers}
	an := FlowAnalysis[taintFact]{
		Entry:    func() taintFact { return taintFact{} },
		Transfer: func(b *Block, in taintFact) taintFact { return ctx.transfer(b, in, false) },
		Refine:   ctx.refine,
		Join:     taintJoin,
		Equal:    taintEqual,
	}
	entry := ForwardFixpoint(g, an)
	for _, b := range g.Blocks {
		in, reached := entry[b]
		if !reached {
			continue
		}
		ctx.transfer(b, in, true)
	}
}

// transfer pushes the taint set through one block; with report set it also
// flags tainted values reaching allocation sinks.
func (c *taintCtx) transfer(b *Block, in taintFact, report bool) taintFact {
	fact := in
	cloned := false
	mutate := func() taintFact {
		if !cloned {
			cp := make(taintFact, len(fact))
			for v := range fact {
				cp[v] = true
			}
			fact, cloned = cp, true
		}
		return fact
	}

	for _, node := range b.Nodes {
		switch n := node.(type) {
		case *ast.AssignStmt:
			if report {
				c.checkSinks(n, fact)
			}
			c.assign(n, fact, mutate)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) && c.exprTainted(vs.Values[i], fact) {
							if v, ok := c.pass.Pkg.Info.Defs[name].(*types.Var); ok {
								mutate()[v] = true
							}
						}
					}
				}
			}
		default:
			if report {
				c.checkSinks(node, fact)
			}
		}
	}
	return fact
}

// assign applies strong updates: a variable assigned from a tainted
// expression becomes tainted, one assigned from a clean expression becomes
// clean. Multi-value assignments from a wire source taint position 0.
func (c *taintCtx) assign(as *ast.AssignStmt, fact taintFact, mutate func() taintFact) {
	fromSource := false
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isWireSource(c.pass, call, c.wrappers) {
			fromSource = true
		}
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		var v *types.Var
		if def, ok := c.pass.Pkg.Info.Defs[id].(*types.Var); ok {
			v = def
		} else if use, ok := c.pass.Pkg.Info.Uses[id].(*types.Var); ok {
			v = use
		}
		if v == nil || !isIntegerVar(v) {
			continue
		}
		tainted := false
		switch {
		case fromSource:
			tainted = i == 0
		case len(as.Rhs) == len(as.Lhs):
			rhs := as.Rhs[i]
			if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
				// Compound (+=, <<=, ...): taint accumulates.
				tainted = fact[v] || c.exprTainted(rhs, fact)
			} else {
				tainted = c.exprTainted(rhs, fact)
			}
		default:
			// Multi-value from a non-source call: conservatively clean.
		}
		if tainted {
			mutate()[v] = true
		} else if fact[v] {
			delete(mutate(), v)
		}
	}
}

// exprTainted reports whether evaluating e may yield a wire-controlled
// integer under the current fact.
func (c *taintCtx) exprTainted(e ast.Expr, fact taintFact) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := c.pass.Pkg.Info.Uses[e].(*types.Var); ok {
			return fact[v]
		}
		return false
	case *ast.ParenExpr:
		return c.exprTainted(e.X, fact)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return false // booleans
		}
		return c.exprTainted(e.X, fact) || c.exprTainted(e.Y, fact)
	case *ast.UnaryExpr:
		return c.exprTainted(e.X, fact)
	case *ast.CallExpr:
		if isWireSource(c.pass, e, c.wrappers) {
			return true
		}
		// Conversion: T(x) is as tainted as x.
		if tv, ok := c.pass.Pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.exprTainted(e.Args[0], fact)
		}
		// min(x, smallConst) clamps; min/max of all-tainted stays tainted.
		if id, ok := e.Fun.(*ast.Ident); ok {
			if bi, ok := c.pass.Pkg.Info.Uses[id].(*types.Builtin); ok {
				switch bi.Name() {
				case "min":
					for _, a := range e.Args {
						if !c.exprTainted(a, fact) && smallConstOrClean(c.pass, a) {
							return false
						}
					}
					return true
				case "max", "len", "cap":
					for _, a := range e.Args {
						if c.exprTainted(a, fact) {
							return bi.Name() == "max"
						}
					}
					return false
				}
			}
		}
		return false
	}
	// Selectors, index expressions, literals: clean.
	return false
}

// smallConstOrClean reports whether e is an untainted bound that genuinely
// clamps: any non-constant clean expression, or a constant <= taintBoundMax.
func smallConstOrClean(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	if tv.Value == nil {
		return true
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return exact && v >= 0 && v <= taintBoundMax
}

// refine sanitizes variables along branch edges whose condition proves an
// upper bound: on the true edge of `n <= limit` (or the false edge of
// `n > limit`), n is no longer attacker-sized, provided limit is itself
// untainted and not an absurd constant.
func (c *taintCtx) refine(e Edge, out taintFact) taintFact {
	if e.Cond == nil {
		return out
	}
	fact := out
	cloned := false
	sanitize := func(id *ast.Ident) {
		v, ok := c.pass.Pkg.Info.Uses[id].(*types.Var)
		if !ok || !fact[v] {
			return
		}
		if !cloned {
			cp := make(taintFact, len(fact))
			for w := range fact {
				cp[w] = true
			}
			fact, cloned = cp, true
		}
		delete(fact, v)
	}
	c.refineCond(e.Cond, e.Negated, fact, sanitize)
	return fact
}

// refineCond walks a branch condition, applying sanitization for each
// conjunct that holds on this edge. negated means the edge is taken when
// the condition is false.
func (c *taintCtx) refineCond(cond ast.Expr, negated bool, fact taintFact, sanitize func(*ast.Ident)) {
	switch cond := cond.(type) {
	case *ast.ParenExpr:
		c.refineCond(cond.X, negated, fact, sanitize)
		return
	case *ast.UnaryExpr:
		if cond.Op == token.NOT {
			c.refineCond(cond.X, !negated, fact, sanitize)
		}
		return
	case *ast.BinaryExpr:
		switch cond.Op {
		case token.LAND:
			if !negated {
				// Both conjuncts hold on the true edge.
				c.refineCond(cond.X, false, fact, sanitize)
				c.refineCond(cond.Y, false, fact, sanitize)
			}
			return
		case token.LOR:
			if negated {
				// Both disjuncts are false on the false edge.
				c.refineCond(cond.X, true, fact, sanitize)
				c.refineCond(cond.Y, true, fact, sanitize)
			}
			return
		}
		op := cond.Op
		if negated {
			switch op {
			case token.LSS:
				op = token.GEQ
			case token.LEQ:
				op = token.GTR
			case token.GTR:
				op = token.LEQ
			case token.GEQ:
				op = token.LSS
			case token.EQL:
				op = token.NEQ
			case token.NEQ:
				op = token.EQL
			}
		}
		// v <op> bound with an upper bound proven on this edge.
		if id, ok := identOf(cond.X); ok {
			switch op {
			case token.LSS, token.LEQ, token.EQL:
				if !c.exprTainted(cond.Y, fact) && smallConstOrClean(c.pass, cond.Y) {
					sanitize(id)
				}
			}
		}
		if id, ok := identOf(cond.Y); ok {
			switch op {
			case token.GTR, token.GEQ, token.EQL:
				if !c.exprTainted(cond.X, fact) && smallConstOrClean(c.pass, cond.X) {
					sanitize(id)
				}
			}
		}
	}
}

func identOf(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.CallExpr:
			// Look through conversions: int(n) > bound sanitizes n.
			if len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil, false
		case *ast.Ident:
			return x, true
		default:
			return nil, false
		}
	}
}

// isWireSource recognizes the decoder calls that introduce taint.
func isWireSource(pass *Pass, call *ast.CallExpr, wrappers map[*types.Var]bool) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, ok := pass.Pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return false
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
			switch fn.Name() {
			case "ReadUvarint", "ReadVarint":
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				switch fn.Name() {
				case "Uint16", "Uint32", "Uint64":
					return true
				}
			}
		}
		return false
	case *ast.Ident:
		if wrappers == nil {
			return false
		}
		if v, ok := pass.Pkg.Info.Uses[fun].(*types.Var); ok {
			return wrappers[v]
		}
	}
	return false
}

// checkSinks reports tainted values reaching allocation-size positions in
// any call under node (skipping nested function literals, which get their
// own pass).
func (c *taintCtx) checkSinks(node ast.Node, fact taintFact) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if bi, ok := c.pass.Pkg.Info.Uses[fun].(*types.Builtin); ok && bi.Name() == "make" {
				for _, arg := range call.Args[1:] {
					c.reportIfTainted(arg, fact, "make size")
				}
			}
		case *ast.SelectorExpr:
			fn, ok := c.pass.Pkg.Info.Uses[fun.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "slices" && fn.Name() == "Grow" && len(call.Args) >= 2:
				c.reportIfTainted(call.Args[1], fact, "slices.Grow size")
			case fn.Pkg().Path() == "io" && fn.Name() == "CopyN" && len(call.Args) >= 3:
				c.reportIfTainted(call.Args[2], fact, "io.CopyN limit")
			}
		}
		return true
	})
}

func (c *taintCtx) reportIfTainted(arg ast.Expr, fact taintFact, sink string) {
	if !c.exprTainted(arg, fact) {
		return
	}
	c.pass.Reportf(arg.Pos(),
		"wire-decoded integer %s flows into %s without an upper-bound check; a hostile header sizes this allocation (clamp it, or annotate with //%s wiretaint)",
		types.ExprString(arg), sink, AllowPrefix)
}

// isIntegerVar reports whether v holds an integer (signed or unsigned),
// the only type taint tracks.
func isIntegerVar(v *types.Var) bool {
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
