package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// wiretaintScope lists the packages that decode attacker-controlled bytes:
// the INP framing plane and the delta codec. Everywhere else, integers do
// not arrive from a peer.
var wiretaintScope = map[string]bool{
	"fractal/internal/inp":   true,
	"fractal/internal/codec": true,
}

// taintBoundMax is the largest constant upper bound that counts as a
// sanitizer. Comparing a wire integer against 64 MB and then allocating it
// is exactly the hostile-header bug, so huge constants do not launder
// taint.
const taintBoundMax = 1 << 24

// WiretaintAnalyzer runs a may-taint dataflow over each function's CFG:
// integers produced by wire decoders (binary.ReadUvarint, ByteOrder
// Uint16/32/64, local wrappers, and — via the summary engine — any
// in-set function whose result is wire-derived) are tainted; branch
// conditions that upper-bound a tainted variable against a sane limit
// sanitize it on the guarded edge; tainted values reaching an
// allocation-size sink (make, slices.Grow, io.CopyN — directly or as an
// argument to a function whose summary says the parameter reaches such a
// sink) are reported. The interprocedural halves both come from
// summary.go, so taint laundered through any number of helper calls is
// still caught.
var WiretaintAnalyzer = &Analyzer{
	Name: "wiretaint",
	Doc:  "flag wire-decoded integers flowing into allocation sizes without a bound check",
	Run:  runWiretaint,
}

// taintedBit marks a value as wire-derived. The remaining bits are
// parameter indices — "tainted iff parameter i is" — used only while
// computing a function's summary.
const taintedBit = uint64(1) << 63

// taintVal is the abstract value of one integer variable: which taint it
// may carry, and (when wire-derived) the earliest decode site that
// introduced it, for related-location reporting.
type taintVal struct {
	mask uint64
	src  token.Pos
}

func (v taintVal) tainted() bool { return v.mask&taintedBit != 0 }
func (v taintVal) zero() bool    { return v.mask == 0 }

// joinVal unions the masks and keeps the earliest valid source.
func joinVal(a, b taintVal) taintVal {
	out := taintVal{mask: a.mask | b.mask, src: a.src}
	if !out.src.IsValid() || (b.src.IsValid() && b.src < out.src) {
		out.src = b.src
	}
	return out
}

// taintFact is the may-taint set. Join is pointwise union.
type taintFact map[*types.Var]taintVal

func taintJoin(a, b taintFact) taintFact {
	out := make(taintFact, len(a)+len(b))
	for v, tv := range a {
		out[v] = tv
	}
	for v, tv := range b {
		if cur, ok := out[v]; ok {
			out[v] = joinVal(cur, tv)
		} else {
			out[v] = tv
		}
	}
	return out
}

func taintEqual(a, b taintFact) bool {
	if len(a) != len(b) {
		return false
	}
	for v, tv := range a {
		if b[v] != tv {
			return false
		}
	}
	return true
}

func runWiretaint(pass *Pass) {
	if !wiretaintScope[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			wrappers := sourceWrappers(pass.Pkg, fd.Body)
			var pf *ProgFunc
			if pass.Prog != nil {
				if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					pf = pass.Prog.FuncOf(fn)
				}
			}
			for _, g := range funcCFGs(fd.Body) {
				ctx := &taintCtx{pkg: pass.Pkg, prog: pass.Prog, pf: pf, wrappers: wrappers, pass: pass}
				ctx.run(g, nil)
			}
		}
	}
}

// summarizeTaint computes the taint-transfer half of pf's summary: which
// results are wire-derived (unconditionally or via parameters) and which
// integer parameters flow into allocation sinks unchecked. It reuses the
// same engine the analyzer runs, with parameters seeded as symbolic taint
// and no reporting.
func summarizeTaint(p *Program, pf *ProgFunc, s *FuncSummary) {
	sig, ok := pf.Fn.Type().(*types.Signature)
	if !ok {
		return
	}
	ctx := &taintCtx{
		pkg:      pf.Pkg,
		prog:     p,
		pf:       pf,
		wrappers: sourceWrappers(pf.Pkg, pf.Decl.Body),
		collect:  true,
		numRes:   sig.Results().Len(),
		resIndex: map[*types.Var]int{},
	}
	entry := taintFact{}
	for i := 0; i < sig.Params().Len() && i < 62; i++ {
		v := sig.Params().At(i)
		if isIntegerVar(v) {
			entry[v] = taintVal{mask: uint64(1) << uint(i)}
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		ctx.resIndex[sig.Results().At(i)] = i
	}
	ctx.entry = entry
	g := BuildCFG(pf.Decl.Body)
	ctx.run(g, entry)
	if len(ctx.resultSpecs) > 0 {
		s.Results = ctx.resultSpecs
	}
	if len(ctx.sinkParams) > 0 {
		s.SinkParams = ctx.sinkParams
	}
}

// taintCtx is one engine instance: reporting mode (pass != nil) for the
// analyzer, collect mode for summaries.
type taintCtx struct {
	pkg      *Package
	prog     *Program
	pf       *ProgFunc
	wrappers map[*types.Var]bool
	pass     *Pass

	// collect mode
	collect     bool
	entry       taintFact
	numRes      int
	resIndex    map[*types.Var]int
	resultSpecs []TaintSpec
	sinkParams  map[int]SinkSite
}

// run executes the fixpoint and the reporting/collection replay.
func (c *taintCtx) run(g *CFG, entry taintFact) {
	an := FlowAnalysis[taintFact]{
		Entry: func() taintFact {
			if entry == nil {
				return taintFact{}
			}
			return entry
		},
		Transfer: func(b *Block, in taintFact) taintFact { return c.transfer(b, in, false) },
		Refine:   c.refine,
		Join:     taintJoin,
		Equal:    taintEqual,
	}
	facts := ForwardFixpoint(g, an)
	for _, b := range g.Blocks {
		in, reached := facts[b]
		if !reached {
			continue
		}
		c.transfer(b, in, true)
	}
}

// sourceWrappers finds one level of local indirection over the wire
// decoders: `readU := func(...) ... { ... binary.ReadUvarint ... }`. Calls
// through such a variable taint their first result like the decoder
// itself.
func sourceWrappers(pkg *Package, body *ast.BlockStmt) map[*types.Var]bool {
	wrappers := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		var v *types.Var
		if def, ok := pkg.Info.Defs[id].(*types.Var); ok {
			v = def
		} else if use, ok := pkg.Info.Uses[id].(*types.Var); ok {
			v = use
		}
		if v == nil {
			return true
		}
		callsSource := false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && isWireSource(pkg, call, nil) {
				callsSource = true
				return false
			}
			return true
		})
		if callsSource {
			wrappers[v] = true
		}
		return true
	})
	return wrappers
}

// transfer pushes the taint set through one block; with final set it also
// flags (or, in collect mode, records) taint reaching allocation sinks
// and accumulates result specs at returns.
func (c *taintCtx) transfer(b *Block, in taintFact, final bool) taintFact {
	fact := in
	cloned := false
	mutate := func() taintFact {
		if !cloned {
			cp := make(taintFact, len(fact))
			for v, tv := range fact {
				cp[v] = tv
			}
			fact, cloned = cp, true
		}
		return fact
	}

	for _, node := range b.Nodes {
		switch n := node.(type) {
		case *ast.AssignStmt:
			if final {
				c.checkSinks(n, fact)
			}
			c.assign(n, fact, mutate)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							if tv := c.exprTaint(vs.Values[i], fact); !tv.zero() {
								if v, ok := c.pkg.Info.Defs[name].(*types.Var); ok {
									mutate()[v] = tv
								}
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			if final {
				c.checkSinks(node, fact)
				if c.collect {
					c.collectReturn(n, fact)
				}
			}
		default:
			if final {
				c.checkSinks(node, fact)
			}
		}
	}
	return fact
}

// collectReturn folds one return statement into the result specs.
func (c *taintCtx) collectReturn(ret *ast.ReturnStmt, fact taintFact) {
	if c.numRes == 0 {
		return
	}
	if c.resultSpecs == nil {
		c.resultSpecs = make([]TaintSpec, c.numRes)
	}
	vals := make([]taintVal, c.numRes)
	switch {
	case len(ret.Results) == c.numRes:
		for i, e := range ret.Results {
			vals[i] = c.exprTaint(e, fact)
		}
	case len(ret.Results) == 0:
		// Bare return: named results carry their current fact.
		for v, tv := range fact {
			if i, ok := c.resIndex[v]; ok {
				vals[i] = tv
			}
		}
	case len(ret.Results) == 1:
		// return f() forwarding a multi-value call.
		if call, ok := ret.Results[0].(*ast.CallExpr); ok {
			if isWireSource(c.pkg, call, c.wrappers) {
				vals[0] = taintVal{mask: taintedBit, src: call.Pos()}
			} else if specs := c.specsForCall(call, fact); specs != nil {
				copy(vals, specs)
			}
		}
	}
	for i, tv := range vals {
		spec := &c.resultSpecs[i]
		if tv.tainted() {
			spec.Always = true
			if !spec.SrcPos.IsValid() || (tv.src.IsValid() && tv.src < spec.SrcPos) {
				spec.SrcPos = tv.src
			}
		}
		spec.Params |= tv.mask &^ taintedBit
	}
}

// specsForCall instantiates the callee's per-result taint specs against
// the argument taints at this call site, or nil when the callee has no
// summary.
func (c *taintCtx) specsForCall(call *ast.CallExpr, fact taintFact) []taintVal {
	sum := c.calleeSummary(call)
	if sum == nil || len(sum.Results) == 0 {
		return nil
	}
	out := make([]taintVal, len(sum.Results))
	for i, spec := range sum.Results {
		out[i] = c.instantiate(spec, call, fact)
	}
	return out
}

// calleeSummary resolves the call through the program, if possible.
func (c *taintCtx) calleeSummary(call *ast.CallExpr) *FuncSummary {
	if c.prog == nil {
		return nil
	}
	callee := c.resolveCallee(call)
	if callee == nil {
		return nil
	}
	return callee.Summary
}

func (c *taintCtx) resolveCallee(call *ast.CallExpr) *ProgFunc {
	return c.prog.resolveCall(c.pkg, c.pf, call)
}

// instantiate maps one result spec to a concrete taint value at a call
// site: unconditional taint keeps the callee's decode site as source;
// parameter-conditional taint substitutes the argument taints.
func (c *taintCtx) instantiate(spec TaintSpec, call *ast.CallExpr, fact taintFact) taintVal {
	var out taintVal
	if spec.Always {
		out.mask |= taintedBit
		out.src = spec.SrcPos
	}
	for p := 0; p < 62; p++ {
		if spec.Params&(uint64(1)<<uint(p)) == 0 || p >= len(call.Args) {
			continue
		}
		out = joinVal(out, c.exprTaint(call.Args[p], fact))
	}
	return out
}

// assign applies strong updates: a variable assigned from a tainted
// expression becomes tainted, one assigned from a clean expression becomes
// clean. Multi-value assignments from a wire source taint position 0;
// multi-value assignments from a summarized callee follow its specs.
func (c *taintCtx) assign(as *ast.AssignStmt, fact taintFact, mutate func() taintFact) {
	var multiVals []taintVal
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			if isWireSource(c.pkg, call, c.wrappers) {
				multiVals = make([]taintVal, len(as.Lhs))
				multiVals[0] = taintVal{mask: taintedBit, src: call.Pos()}
			} else if specs := c.specsForCall(call, fact); specs != nil {
				multiVals = make([]taintVal, len(as.Lhs))
				copy(multiVals, specs)
			}
		}
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		var v *types.Var
		if def, ok := c.pkg.Info.Defs[id].(*types.Var); ok {
			v = def
		} else if use, ok := c.pkg.Info.Uses[id].(*types.Var); ok {
			v = use
		}
		if v == nil || !isIntegerVar(v) {
			continue
		}
		var tv taintVal
		switch {
		case multiVals != nil:
			tv = multiVals[i]
		case len(as.Rhs) == len(as.Lhs):
			rhs := as.Rhs[i]
			tv = c.exprTaint(rhs, fact)
			if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
				// Compound (+=, <<=, ...): taint accumulates.
				tv = joinVal(tv, fact[v])
			}
		default:
			// Multi-value from an unsummarized call: conservatively clean.
		}
		if !tv.zero() {
			mutate()[v] = tv
		} else if _, had := fact[v]; had {
			delete(mutate(), v)
		}
	}
}

// exprTaint reports the taint an expression's value may carry under the
// current fact.
func (c *taintCtx) exprTaint(e ast.Expr, fact taintFact) taintVal {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := c.pkg.Info.Uses[e].(*types.Var); ok {
			return fact[v]
		}
		return taintVal{}
	case *ast.ParenExpr:
		return c.exprTaint(e.X, fact)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return taintVal{} // booleans
		}
		return joinVal(c.exprTaint(e.X, fact), c.exprTaint(e.Y, fact))
	case *ast.UnaryExpr:
		return c.exprTaint(e.X, fact)
	case *ast.CallExpr:
		if isWireSource(c.pkg, e, c.wrappers) {
			return taintVal{mask: taintedBit, src: e.Pos()}
		}
		// Conversion: T(x) is as tainted as x.
		if tv, ok := c.pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.exprTaint(e.Args[0], fact)
		}
		// min(x, smallConst) clamps; min/max of all-tainted stays tainted.
		if id, ok := e.Fun.(*ast.Ident); ok {
			if bi, ok := c.pkg.Info.Uses[id].(*types.Builtin); ok {
				switch bi.Name() {
				case "min":
					out := taintVal{}
					for _, a := range e.Args {
						av := c.exprTaint(a, fact)
						if av.zero() && smallConstOrClean(c.pkg, a) {
							return taintVal{}
						}
						out = joinVal(out, av)
					}
					return out
				case "max":
					out := taintVal{}
					for _, a := range e.Args {
						out = joinVal(out, c.exprTaint(a, fact))
					}
					return out
				case "len", "cap":
					return taintVal{}
				}
				return taintVal{}
			}
		}
		// A summarized callee's first result.
		if specs := c.specsForCall(e, fact); specs != nil {
			return specs[0]
		}
		return taintVal{}
	}
	// Selectors, index expressions, literals: clean.
	return taintVal{}
}

// smallConstOrClean reports whether e is an untainted bound that genuinely
// clamps: any non-constant clean expression, or a constant <= taintBoundMax.
func smallConstOrClean(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	if tv.Value == nil {
		return true
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return exact && v >= 0 && v <= taintBoundMax
}

// refine sanitizes variables along branch edges whose condition proves an
// upper bound: on the true edge of `n <= limit` (or the false edge of
// `n > limit`), n is no longer attacker-sized, provided limit is itself
// untainted and not an absurd constant.
func (c *taintCtx) refine(e Edge, out taintFact) taintFact {
	if e.Cond == nil {
		return out
	}
	fact := out
	cloned := false
	sanitize := func(id *ast.Ident) {
		v, ok := c.pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return
		}
		if _, had := fact[v]; !had {
			return
		}
		if !cloned {
			cp := make(taintFact, len(fact))
			for w, tv := range fact {
				cp[w] = tv
			}
			fact, cloned = cp, true
		}
		delete(fact, v)
	}
	c.refineCond(e.Cond, e.Negated, fact, sanitize)
	return fact
}

// refineCond walks a branch condition, applying sanitization for each
// conjunct that holds on this edge. negated means the edge is taken when
// the condition is false.
func (c *taintCtx) refineCond(cond ast.Expr, negated bool, fact taintFact, sanitize func(*ast.Ident)) {
	switch cond := cond.(type) {
	case *ast.ParenExpr:
		c.refineCond(cond.X, negated, fact, sanitize)
		return
	case *ast.UnaryExpr:
		if cond.Op == token.NOT {
			c.refineCond(cond.X, !negated, fact, sanitize)
		}
		return
	case *ast.BinaryExpr:
		switch cond.Op {
		case token.LAND:
			if !negated {
				// Both conjuncts hold on the true edge.
				c.refineCond(cond.X, false, fact, sanitize)
				c.refineCond(cond.Y, false, fact, sanitize)
			}
			return
		case token.LOR:
			if negated {
				// Both disjuncts are false on the false edge.
				c.refineCond(cond.X, true, fact, sanitize)
				c.refineCond(cond.Y, true, fact, sanitize)
			}
			return
		}
		op := cond.Op
		if negated {
			switch op {
			case token.LSS:
				op = token.GEQ
			case token.LEQ:
				op = token.GTR
			case token.GTR:
				op = token.LEQ
			case token.GEQ:
				op = token.LSS
			case token.EQL:
				op = token.NEQ
			case token.NEQ:
				op = token.EQL
			}
		}
		// v <op> bound with an upper bound proven on this edge.
		if id, ok := identOf(cond.X); ok {
			switch op {
			case token.LSS, token.LEQ, token.EQL:
				if c.exprTaint(cond.Y, fact).zero() && smallConstOrClean(c.pkg, cond.Y) {
					sanitize(id)
				}
			}
		}
		if id, ok := identOf(cond.Y); ok {
			switch op {
			case token.GTR, token.GEQ, token.EQL:
				if c.exprTaint(cond.X, fact).zero() && smallConstOrClean(c.pkg, cond.X) {
					sanitize(id)
				}
			}
		}
	}
}

func identOf(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.CallExpr:
			// Look through conversions: int(n) > bound sanitizes n.
			if len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil, false
		case *ast.Ident:
			return x, true
		default:
			return nil, false
		}
	}
}

// isWireSource recognizes the decoder calls that introduce taint.
func isWireSource(pkg *Package, call *ast.CallExpr, wrappers map[*types.Var]bool) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return false
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
			switch fn.Name() {
			case "ReadUvarint", "ReadVarint":
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				switch fn.Name() {
				case "Uint16", "Uint32", "Uint64":
					return true
				}
			}
		}
		return false
	case *ast.Ident:
		if wrappers == nil {
			return false
		}
		if v, ok := pkg.Info.Uses[fun].(*types.Var); ok {
			return wrappers[v]
		}
	}
	return false
}

// checkSinks reports (or records) taint reaching allocation-size
// positions in any call under node — make/slices.Grow/io.CopyN directly,
// or a call whose callee summary says the parameter reaches such a sink
// (skipping nested function literals, which get their own pass).
func (c *taintCtx) checkSinks(node ast.Node, fact taintFact) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if bi, ok := c.pkg.Info.Uses[fun].(*types.Builtin); ok {
				if bi.Name() == "make" {
					for _, arg := range call.Args[1:] {
						c.sinkHit(arg, fact, "make size", arg.Pos(), nil)
					}
				}
				return true
			}
		case *ast.SelectorExpr:
			if fn, ok := c.pkg.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "slices" && fn.Name() == "Grow" && len(call.Args) >= 2:
					c.sinkHit(call.Args[1], fact, "slices.Grow size", call.Args[1].Pos(), nil)
					return true
				case fn.Pkg().Path() == "io" && fn.Name() == "CopyN" && len(call.Args) >= 3:
					c.sinkHit(call.Args[2], fact, "io.CopyN limit", call.Args[2].Pos(), nil)
					return true
				}
			}
		}
		// Arguments feeding a callee whose summary reaches a sink.
		if callee := c.resolveCallee(call); callee != nil && callee.Summary != nil && len(callee.Summary.SinkParams) > 0 {
			for p, sink := range callee.Summary.SinkParams {
				if p >= len(call.Args) {
					continue
				}
				desc := sink.Desc
				if c.pass != nil {
					desc += " inside " + shortFuncName(callee)
				}
				c.sinkHit(call.Args[p], fact, desc, sink.Pos, &sink)
			}
		}
		return true
	})
}

// sinkHit handles taint arriving at one sink position: report mode flags
// wire-derived values; collect mode records parameter-derived ones in the
// summary being built.
func (c *taintCtx) sinkHit(arg ast.Expr, fact taintFact, sinkDesc string, sinkPos token.Pos, callee *SinkSite) {
	tv := c.exprTaint(arg, fact)
	if tv.zero() {
		return
	}
	if c.pass != nil && tv.tainted() {
		var related []Related
		if tv.src.IsValid() && tv.src != arg.Pos() {
			related = append(related, c.pass.RelatedAt(tv.src, "wire-decoded here"))
		}
		if callee != nil && callee.Pos.IsValid() {
			related = append(related, c.pass.RelatedAt(callee.Pos, "allocation sink inside the callee"))
		}
		c.pass.ReportRelated(arg.Pos(), related,
			"wire-decoded integer %s flows into %s without an upper-bound check; a hostile header sizes this allocation (clamp it, or annotate with //%s wiretaint)",
			types.ExprString(arg), sinkDesc, AllowPrefix)
	}
	if c.collect {
		if params := tv.mask &^ taintedBit; params != 0 {
			if c.sinkParams == nil {
				c.sinkParams = map[int]SinkSite{}
			}
			for p := 0; p < 62; p++ {
				if params&(uint64(1)<<uint(p)) == 0 {
					continue
				}
				site := SinkSite{Pos: sinkPos, Desc: sinkDesc}
				if cur, ok := c.sinkParams[p]; !ok || site.Pos < cur.Pos {
					c.sinkParams[p] = site
				}
			}
		}
	}
}

// isIntegerVar reports whether v holds an integer (signed or unsigned),
// the only type taint tracks.
func isIntegerVar(v *types.Var) bool {
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
