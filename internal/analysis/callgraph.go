package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file builds the interprocedural substrate the summary engine
// (summary.go) and the upgraded flow-sensitive analyzers run on: an index
// of every function declaration in the analyzed package set and a static
// call graph over it. The graph is deliberately modest — exactly what a
// bottom-up summary computation needs:
//
//   - Direct calls (`f(...)`, `pkg.F(...)`) and method calls on concrete
//     receivers resolve through go/types to their *types.Func, which is
//     shared across packages because the loader type-checks the module as
//     one program.
//   - Method calls through an interface-typed expression are devirtualized
//     only when the concrete type is locally evident: the receiver is a
//     local variable assigned exactly once, from an expression whose
//     static type is concrete. Everything else stays unresolved.
//   - Calls through func values resolve only when the value is a local
//     variable assigned exactly once from an expression that directly
//     names an in-set function.
//
// Unresolved calls (interface dispatch, func-typed fields, channels of
// functions) contribute no edges: the summaries treat them as
// non-blocking and taint-free. That is an unsoundness, documented in
// DESIGN.md ("Interprocedural analysis" — soundness caveats); the repo's
// blocking and decoding primitives are concrete calls in practice, and
// the conformance/differential dynamic layers backstop what the static
// layer cannot see.

// Program is the interprocedural view of one Run's package set: the
// function index, the call graph, and (once Summarize ran) the per-function
// summaries.
type Program struct {
	fns map[*types.Func]*ProgFunc
	// order lists every indexed function bottom-up: callees before callers
	// wherever the graph is acyclic, members of a cycle adjacent.
	order []*ProgFunc
	// sccID groups mutually recursive functions; equal IDs share a cycle.
	sccID map[*ProgFunc]int
	// chans caches per-package channel facts for the goroutine-obligation
	// analysis (close sites, visible buffering).
	chans map[*Package]*chanFacts
}

// ProgFunc is one declared function or method of the package set.
type ProgFunc struct {
	Fn      *types.Func
	Pkg     *Package
	Decl    *ast.FuncDecl
	Summary *FuncSummary

	callees []*ProgFunc
	// devirtVar maps interface-typed locals to the concrete type they are
	// provably bound to (single assignment, concrete RHS).
	devirtVar map[*types.Var]types.Type
	// funcVar maps func-typed locals to the in-set function they are
	// provably bound to (single assignment from a function name).
	funcVar map[*types.Var]*types.Func
}

// BuildProgram indexes the package set, resolves the call graph, and
// computes bottom-up function summaries.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		fns:   map[*types.Func]*ProgFunc{},
		sccID: map[*ProgFunc]int{},
		chans: map[*Package]*chanFacts{},
	}
	// Pass 1: index declarations.
	var all []*ProgFunc
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				pf := &ProgFunc{Fn: fn, Pkg: pkg, Decl: fd}
				p.fns[fn] = pf
				all = append(all, pf)
			}
		}
	}
	// Pass 2: local bindings, then call edges (deduped, in source order so
	// everything downstream is deterministic).
	for _, pf := range all {
		pf.devirtVar, pf.funcVar = localBindings(p, pf)
	}
	for _, pf := range all {
		seen := map[*ProgFunc]bool{}
		ast.Inspect(pf.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := p.resolve(pf, call); callee != nil && !seen[callee] {
				seen[callee] = true
				pf.callees = append(pf.callees, callee)
			}
			return true
		})
	}
	p.computeSCCs(all)
	for _, pkg := range pkgs {
		p.chans[pkg] = collectChanFacts(pkg)
	}
	p.summarize()
	return p
}

// FuncOf returns the indexed function for fn, or nil when fn has no body
// in the analyzed set (imports, interface methods, builtins).
func (p *Program) FuncOf(fn *types.Func) *ProgFunc {
	if p == nil || fn == nil {
		return nil
	}
	return p.fns[fn]
}

// SummaryOf returns fn's summary, or nil when fn is outside the set.
func (p *Program) SummaryOf(fn *types.Func) *FuncSummary {
	if pf := p.FuncOf(fn); pf != nil {
		return pf.Summary
	}
	return nil
}

// resolveCall is resolve for callers outside the program build: it
// tolerates a nil Program (no interprocedural view) and a nil enclosing
// function (direct names still resolve; locally-evident bindings do not).
func (p *Program) resolveCall(pkg *Package, pf *ProgFunc, call *ast.CallExpr) *ProgFunc {
	if p == nil {
		return nil
	}
	if pf == nil {
		pf = &ProgFunc{Pkg: pkg}
	}
	return p.resolve(pf, call)
}

// resolve maps one call expression to its in-set callee, or nil. pf (the
// enclosing function) supplies the locally-evident bindings; it may be nil
// for calls outside any indexed body.
func (p *Program) resolve(pf *ProgFunc, call *ast.CallExpr) *ProgFunc {
	pkg := pf.Pkg
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			return p.fns[obj]
		case *types.Var:
			if pf.funcVar != nil {
				if target, ok := pf.funcVar[obj]; ok {
					return p.fns[target]
				}
			}
		}
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			// Func-typed field or variable selector: unresolved.
			return nil
		}
		if target := p.fns[fn]; target != nil {
			return target
		}
		// Interface method: devirtualize when the receiver's concrete type
		// is locally evident.
		if isInterfaceMethod(fn) && pf.devirtVar != nil {
			if id, ok := fun.X.(*ast.Ident); ok {
				if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
					if concrete, ok := pf.devirtVar[v]; ok {
						if m := lookupMethod(concrete, pkg, fn.Name()); m != nil {
							return p.fns[m]
						}
					}
				}
			}
		}
	}
	return nil
}

// isInterfaceMethod reports whether fn's receiver is an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isIface := sig.Recv().Type().Underlying().(*types.Interface)
	return isIface
}

// lookupMethod resolves name on the concrete type t (or *t).
func lookupMethod(t types.Type, pkg *Package, name string) *types.Func {
	var tpkg *types.Package
	if pkg.Types != nil {
		tpkg = pkg.Types
	}
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(typ, true, tpkg, name)
		if m, ok := obj.(*types.Func); ok {
			return m
		}
	}
	return nil
}

// localBindings computes the two locally-evident maps for one function:
// interface-typed locals bound to a single concrete type, and func-typed
// locals bound to a single named function. A variable assigned more than
// once (or whose address is taken) is dropped — the binding is no longer
// evident.
func localBindings(p *Program, pf *ProgFunc) (map[*types.Var]types.Type, map[*types.Var]*types.Func) {
	pkg := pf.Pkg
	assigns := map[*types.Var]int{}
	concrete := map[*types.Var]types.Type{}
	fnBind := map[*types.Var]*types.Func{}
	record := func(id *ast.Ident, rhs ast.Expr) {
		var v *types.Var
		if def, ok := pkg.Info.Defs[id].(*types.Var); ok {
			v = def
		} else if use, ok := pkg.Info.Uses[id].(*types.Var); ok {
			v = use
		}
		if v == nil || v.IsField() {
			return
		}
		assigns[v]++
		if assigns[v] > 1 {
			delete(concrete, v)
			delete(fnBind, v)
			return
		}
		// Interface-typed variable, concrete RHS type.
		if _, isIface := v.Type().Underlying().(*types.Interface); isIface {
			if tv, ok := pkg.Info.Types[rhs]; ok && tv.Type != nil {
				if _, rhsIface := tv.Type.Underlying().(*types.Interface); !rhsIface {
					concrete[v] = tv.Type
				}
			}
		}
		// Func-typed variable bound to a named in-set function.
		if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
			var named *types.Func
			switch r := rhs.(type) {
			case *ast.Ident:
				named, _ = pkg.Info.Uses[r].(*types.Func)
			case *ast.SelectorExpr:
				named, _ = pkg.Info.Uses[r.Sel].(*types.Func)
			}
			if named != nil && p.fns[named] != nil {
				fnBind[v] = named
			}
		}
	}
	ast.Inspect(pf.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, nil)
						record(id, nil) // multi-value: never evident
					}
				}
				return true
			}
			for i := range n.Lhs {
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					record(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) {
					record(id, n.Values[i])
				}
			}
		case *ast.UnaryExpr:
			// &x: the variable can be rebound through the pointer.
			if id, ok := n.X.(*ast.Ident); ok {
				record(id, nil)
				record(id, nil)
			}
		}
		return true
	})
	if len(concrete) == 0 {
		concrete = nil
	}
	if len(fnBind) == 0 {
		fnBind = nil
	}
	return concrete, fnBind
}

// computeSCCs runs Tarjan's algorithm over the call graph, filling
// p.order with a deterministic bottom-up ordering (SCCs in completion
// order, callees before callers across SCCs) and p.sccID.
func (p *Program) computeSCCs(all []*ProgFunc) {
	// Deterministic node order: by source position.
	sort.Slice(all, func(i, j int) bool { return all[i].Decl.Pos() < all[j].Decl.Pos() })
	index := map[*ProgFunc]int{}
	low := map[*ProgFunc]int{}
	onStack := map[*ProgFunc]bool{}
	var stack []*ProgFunc
	next := 0
	sccs := 0

	var strongconnect func(v *ProgFunc)
	strongconnect = func(v *ProgFunc) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range v.callees {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			id := sccs
			sccs++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				p.sccID[w] = id
				p.order = append(p.order, w)
				if w == v {
					break
				}
			}
		}
	}
	for _, v := range all {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
}
