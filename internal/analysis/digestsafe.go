package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// digestSize is sha1.Size: the length of the digest arrays this analyzer
// protects.
const digestSize = 20

// digestHelperNames are the designated comparison helpers whose bodies are
// exempt — everything else must call them instead of comparing raw digest
// bytes. Signature checks go through ed25519.Verify, which never exposes
// raw bytes for comparison in the first place.
var digestHelperNames = map[string]bool{
	"DigestEqual": true,
	"digestEqual": true,
}

// digestsafeScope lists the packages forming the PAD verification
// pipeline. Digest comparisons elsewhere (for example the rsync encoder's
// block-dedup hash-table probe) are content addressing, not verification,
// and stay free to use plain comparisons in hot paths.
var digestsafeScope = map[string]bool{
	"fractal/internal/mobilecode": true,
	"fractal/internal/cdn":        true,
	"fractal/internal/client":     true,
}

// DigestsafeAnalyzer requires SHA-1 digest equality checks in the PAD
// deployment pipeline to go through the designated constant-time helper
// (mobilecode.DigestEqual) rather than ad-hoc == / bytes.Equal on raw
// digests, so verification policy (constant-time compare, future
// algorithm agility) lives in exactly one place.
var DigestsafeAnalyzer = &Analyzer{
	Name: "digestsafe",
	Doc:  "compare SHA-1 digests via the designated DigestEqual helper, not ==/bytes.Equal",
	Run:  runDigestsafe,
}

func runDigestsafe(pass *Pass) {
	if !digestsafeScope[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if digestHelperNames[fd.Name.Name] {
				continue // the one place allowed to touch raw digest bytes
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.BinaryExpr:
					if e.Op != token.EQL && e.Op != token.NEQ {
						return true
					}
					if isDigestArray(pass, e.X) || isDigestArray(pass, e.Y) {
						pass.Reportf(e.OpPos,
							"raw SHA-1 digest compared with %s; use the designated DigestEqual helper", e.Op)
					}
				case *ast.CallExpr:
					sel, ok := e.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Equal" || packageOf(pass, f, sel) != "bytes" {
						return true
					}
					for _, arg := range e.Args {
						if sl, ok := arg.(*ast.SliceExpr); ok && isDigestArray(pass, sl.X) {
							pass.Reportf(e.Pos(),
								"raw SHA-1 digest compared with bytes.Equal; use the designated DigestEqual helper")
							break
						}
					}
				}
				return true
			})
		}
	}
}

// isDigestArray reports whether the expression's static type is a
// [20]byte digest array (directly or behind a defined type).
func isDigestArray(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	arr, ok := tv.Type.Underlying().(*types.Array)
	return ok && arr.Len() == digestSize && isByte(arr.Elem())
}
