// Package mobilecode is the opcomplete good fixture: every exported
// opcode has a mnemonic and a dispatch case; validation switches smaller
// than the dispatch switch do not confuse the analyzer.
package mobilecode

// Op is the fixture VM opcode type.
type Op uint8

// The fixture instruction set.
const (
	OpNop Op = iota
	OpHalt
	OpJmp
	opMax
)

var opNames = map[Op]string{OpNop: "NOP", OpHalt: "HALT", OpJmp: "JMP"}

func validate(o Op) bool {
	switch o {
	case OpJmp:
		return true
	}
	return o < opMax
}

func dispatch(o Op) string {
	switch o {
	case OpNop:
		return "nop"
	case OpHalt:
		return "halt"
	case OpJmp:
		return "jmp"
	}
	return opNames[o]
}
