// Package mobilecode is the opcomplete bad fixture: OpOrphan can be
// encoded but has neither an assembler mnemonic nor a dispatch handler.
package mobilecode

// Op is the fixture VM opcode type.
type Op uint8

// The fixture instruction set.
const (
	OpNop Op = iota
	OpHalt
	OpOrphan //want opcomplete:2 opcomplete:2
	opMax
)

var opNames = map[Op]string{OpNop: "NOP", OpHalt: "HALT"}

func dispatch(o Op) string {
	switch o {
	case OpNop:
		return "nop"
	case OpHalt:
		return "halt"
	}
	if o >= opMax {
		return ""
	}
	return opNames[o]
}
