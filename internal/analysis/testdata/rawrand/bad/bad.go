// Package workload is the rawrand bad fixture: draws from the global
// math/rand source are not reproducible.
package workload

import "math/rand"

func bad(xs []int) (int, float64) {
	n := rand.Intn(10)                                                    //want rawrand:7
	f := rand.Float64()                                                   //want rawrand:7
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) //want rawrand:2
	return n, f
}
