// Package workload is the rawrand good fixture: randomness flows from an
// injected, seeded generator.
package workload

import "math/rand"

func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func good(rng *rand.Rand) int {
	return rng.Intn(10)
}
