// Package client (fixture): goroutines whose exit is tied to nothing —
// no context case, no close anywhere in the package, no deadline. Each
// stalled peer leaks one goroutine forever.
package client

// Watcher fans updates out to a subscriber.
type Watcher struct {
	updates chan int
}

// Run pumps updates forever: the receive has no exit signal, and nobody
// closes updates in this package.
func (w *Watcher) Run() {
	go func() { //want goleak:2
		for {
			v := <-w.updates
			_ = v
		}
	}()
}

// forward loops forever with no way out.
func forward(in chan int, out chan int) {
	for {
		out <- <-in
	}
}

// Start spawns the forwarder: leaked per call.
func Start(in, out chan int) {
	go forward(in, out) //want goleak:2
}
