// Package client (fixture): every spawned goroutine observes a shutdown
// signal (context case in its select), drains a channel this package
// closes, or hands off into visible buffering.
package client

import "context"

// Watcher owns channels closed at shutdown.
type Watcher struct {
	updates chan int
	done    chan struct{}
}

// Run pumps updates until the context ends.
func (w *Watcher) Run(ctx context.Context) {
	go func() {
		for {
			select {
			case v := <-w.updates:
				_ = v
			case <-ctx.Done():
				return
			}
		}
	}()
}

// drainUpdates consumes the updates channel; Close closes it.
func (w *Watcher) drainUpdates() {
	for range w.updates {
	}
}

// Flush spawns the drain; Close (closing updates) ends it.
func (w *Watcher) Flush() {
	go w.drainUpdates()
}

// Close releases the pump and the drain.
func (w *Watcher) Close() {
	close(w.done)
	close(w.updates)
}

// Count ships one result into a buffered slot: bounded handoff, the
// send cannot park the goroutine.
func Count() chan int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return out
}
