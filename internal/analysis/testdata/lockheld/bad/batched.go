// batched.go extends the bad fixture to the batched write path: Queue
// stages a frame that obligates a Flush, so holding a lock across either
// half is the same discipline violation as holding it across Send.
package client

import (
	"sync"

	"fractal/internal/inp"
)

type batchedState struct {
	mu sync.Mutex
}

func heldAcrossQueueFlush(s *batchedState, c *inp.Conn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := c.Queue(inp.MsgInitRep, inp.InitRep{OK: true}); err != nil { //want lockheld:12
		return err
	}
	return c.Flush() //want lockheld:9
}
