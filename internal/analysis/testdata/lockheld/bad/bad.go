// Package client is the lockheld bad fixture: mutexes provably held
// across blocking operations, self-deadlocks, and lock-order inversions.
package client

import (
	"sync"
	"time"

	"fractal/internal/syncx"
)

// conn has the net.Conn deadline shape, so Read is a blocking conn op.
type conn struct{}

func (conn) Read(p []byte) (int, error)      { return 0, nil }
func (conn) Write(p []byte) (int, error)     { return 0, nil }
func (conn) SetReadDeadline(time.Time) error { return nil }

type state struct {
	mu sync.Mutex
	rw sync.RWMutex
}

func heldAcrossRead(s *state, c conn, buf []byte) {
	s.mu.Lock()
	c.Read(buf) //want lockheld:2
	s.mu.Unlock()
}

func heldAcrossChannel(s *state, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- 1 //want lockheld:2
	<-ch    //want lockheld:2
}

func heldAcrossSelect(s *state, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { //want lockheld:2
	case <-ch:
	}
}

func heldAcrossSleep(s *state) {
	s.rw.RLock()
	time.Sleep(time.Millisecond) //want lockheld:2
	s.rw.RUnlock()
}

func selfDeadlock(s *state) {
	s.mu.Lock()
	s.mu.Lock() //want lockheld:2
	s.mu.Unlock()
}

func heldAcrossSingleflight(s *state, g *syncx.Group[int]) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g.Do("k", func() (int, error) { return 0, nil }) //want lockheld:2
}

type pairState struct {
	a sync.Mutex
	b sync.Mutex
}

func lockAB(p *pairState) {
	p.a.Lock()
	p.b.Lock() //want lockheld:2
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA(p *pairState) {
	p.b.Lock()
	p.a.Lock() //want lockheld:2
	p.a.Unlock()
	p.b.Unlock()
}
