// Package client is the lockheld good fixture: correct lock discipline
// the analyzer must not flag, plus one justified allow annotation.
package client

import (
	"sync"
	"time"
)

// conn has the net.Conn deadline shape.
type conn struct{}

func (conn) Read(p []byte) (int, error)      { return 0, nil }
func (conn) Write(p []byte) (int, error)     { return 0, nil }
func (conn) SetReadDeadline(time.Time) error { return nil }

type state struct {
	mu sync.Mutex
	n  int
}

func lockedCounter(s *state) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func releasedBeforeRead(s *state, c conn, buf []byte) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	_, _ = c.Read(buf)
}

// heldOnOnePath: the lock is held only on the if-path and released there,
// so the must-analysis join proves nothing is held at the Read.
func heldOnOnePath(s *state, c conn, buf []byte, cond bool) {
	if cond {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
	_, _ = c.Read(buf)
}

// bothBranchesRelease: each branch releases before the blocking op.
func bothBranchesRelease(s *state, c conn, buf []byte, cond bool) {
	s.mu.Lock()
	if cond {
		s.n++
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
	_, _ = c.Read(buf)
}

// selectWithDefault never blocks: not a finding.
func selectWithDefault(s *state, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-ch:
		s.n = v
	default:
	}
}

// goroutineBodyIsSeparate: the literal runs on its own goroutine with its
// own (empty) entry fact; the sleep inside it is not "under" the lock.
func goroutineBodyIsSeparate(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
	s.n++
}

// deliberateSerialization holds the session lock across the exchange on
// purpose; the annotation documents and suppresses it.
func deliberateSerialization(s *state, c conn, buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//fractal:allow lockheld — fixture: deliberate serialization point
	_, _ = c.Read(buf)
}
