// Package fleet is the lockheld fleet good fixture: the invalidation
// fan-out snapshots its ledger under the mutex, releases it, and only
// then sends to shards — the discipline fleet.Fleet.PushAppMeta follows.
package fleet

import (
	"sync"

	"fractal/internal/core"
	"fractal/internal/proxy"
)

type tier struct {
	mu      sync.Mutex
	applied map[string]bool
	shards  []*proxy.Proxy
}

// pushSnapshotThenSend decides the fan-out under the lock, releases it,
// and re-acquires only briefly to record each applied push. No lock is
// held across a shard send.
func pushSnapshotThenSend(t *tier, app core.AppMeta) error {
	t.mu.Lock()
	targets := make([]*proxy.Proxy, 0, len(t.shards))
	if !t.applied[app.AppID] {
		targets = append(targets, t.shards...)
	}
	t.mu.Unlock()

	for _, s := range targets {
		if err := s.PushAppMeta(app); err != nil {
			return err
		}
		t.mu.Lock()
		t.applied[app.AppID] = true
		t.mu.Unlock()
	}
	return nil
}

// negotiateUnlocked routes without touching the ledger at all: the
// routing function is pure and the shard owns its own synchronization.
func negotiateUnlocked(t *tier, key string, env core.Env) ([]core.PADMeta, error) {
	pads, _, err := t.shards[0].NegotiateKeyed(key, "", "app", env, 1)
	return pads, err
}
