// Package fleet is the lockheld fleet bad fixture: the coherence ledger
// held across cross-shard sends. A shard push rebuilds the target's PAT
// (and may verify modules) and a routed negotiation can run a full path
// search, so one slow shard stalls the entire tier behind the lock.
package fleet

import (
	"sync"

	"fractal/internal/core"
	"fractal/internal/proxy"
)

// tier is the fan-out shape: a ledger mutex guarding applied digests and
// the shard set the push iterates.
type tier struct {
	mu      sync.Mutex
	applied map[string]bool
	shards  []*proxy.Proxy
}

// pushHoldingLedger holds the ledger across every shard push in the
// invalidation fan-out.
func pushHoldingLedger(t *tier, app core.AppMeta) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.shards {
		s.PushAppMeta(app) //want lockheld:3
		t.applied[app.AppID] = true
	}
}

// negotiateHoldingLedger routes a session while holding the ledger: the
// shard-side negotiation may join or run a collapsed search.
func negotiateHoldingLedger(t *tier, key string, env core.Env) ([]core.PADMeta, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pads, _, err := t.shards[0].NegotiateKeyed(key, "", "app", env, 1) //want lockheld:18
	return pads, err
}
