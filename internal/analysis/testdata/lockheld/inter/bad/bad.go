// Package client (fixture): a mutex held across a call whose callee
// transitively blocks is the same pile-up as holding it across the
// blocking primitive itself. The interprocedural pass sees through the
// helper chain via function summaries.
package client

import (
	"net"
	"sync"
	"time"
)

// Session wraps a conn behind a mutex.
type Session struct {
	mu   sync.Mutex
	conn net.Conn
}

// ping performs conn I/O: it may block on the peer.
func (s *Session) ping() error {
	_, err := s.conn.Write([]byte("ping"))
	return err
}

// heartbeat wraps ping: still blocking, one more hop away.
func (s *Session) heartbeat() error {
	return s.ping()
}

// Beat holds mu across the transitively-blocking helper chain.
func (s *Session) Beat() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heartbeat() //want lockheld:9
}

// reconnect dials: it can block for the full dial timeout.
func reconnect() (net.Conn, error) {
	return net.DialTimeout("tcp", "127.0.0.1:9", time.Second)
}

// Redial holds mu across the dialing helper.
func (s *Session) Redial() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := reconnect() //want lockheld:12
	if err != nil {
		return err
	}
	s.conn = c
	return nil
}
