// Package client (fixture): the same helper chains as the bad fixture,
// restructured so the lock is never held across a transitively-blocking
// call — snapshot under the lock, block outside it.
package client

import (
	"net"
	"sync"
	"time"
)

// Session wraps a conn behind a mutex.
type Session struct {
	mu   sync.Mutex
	conn net.Conn
}

// ping performs conn I/O: it may block on the peer.
func (s *Session) ping() error {
	_, err := s.conn.Write([]byte("ping"))
	return err
}

// heartbeat wraps ping: still blocking, one more hop away.
func (s *Session) heartbeat() error {
	return s.ping()
}

// Beat releases mu before the blocking helper chain.
func (s *Session) Beat() error {
	s.mu.Lock()
	s.mu.Unlock()
	return s.heartbeat()
}

// reconnect dials: it can block for the full dial timeout.
func reconnect() (net.Conn, error) {
	return net.DialTimeout("tcp", "127.0.0.1:9", time.Second)
}

// Redial dials first and installs the result under the lock.
func (s *Session) Redial() error {
	c, err := reconnect()
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.conn = c
	s.mu.Unlock()
	return nil
}
