// Package netsim is the simtime good fixture: duration arithmetic is
// fine, and a genuine real-I/O site may read the wall clock under a
// checked annotation.
package netsim

import "time"

func goodDuration(d time.Duration) time.Duration {
	return d + time.Millisecond
}

func goodAnnotated() time.Time {
	//fractal:allow simtime — fixture real-I/O site
	return time.Now()
}
