// Package netsim is the simtime bad fixture: it is loaded under the
// import path fractal/internal/netsim, so introducing a time.Now() call
// into the real netsim package fails the suite exactly as these lines do.
package netsim

import "time"

func bad() (time.Time, <-chan time.Time) {
	now := time.Now()                //want simtime:9
	time.Sleep(time.Millisecond)     //want simtime:2
	after := time.After(time.Second) //want simtime:11
	return now, after
}

//fractal:allow simtime stale annotation suppressing nothing //want allowcheck:1
var unusedGap time.Duration
