// arena.go is the arena-escape half of the bad fixture: session-scoped
// borrows stored into storage that outlives the session.
package core

import "fractal/internal/arena"

type frameHolder struct{ buf []byte }

type frameWrap struct{ h frameHolder }

var leakedBuf []byte

func fieldEscape(h *frameHolder, sess *arena.Session) {
	h.buf = sess.Bytes(64) //want hotpath:2
}

func fieldEscapeViaLocal(h *frameHolder, sess *arena.Session) {
	b := sess.Bytes(64)
	b = sess.Grow(b, 128)
	h.buf = b[:0] //want hotpath:2
}

func packageEscape(sess *arena.Session) {
	b := sess.Bytes(8)
	leakedBuf = b //want hotpath:2
}

func channelEscape(ch chan []byte, sess *arena.Session) {
	b := sess.Bytes(8)
	ch <- b //want hotpath:2
}

func compositeEscape(w *frameWrap, sess *arena.Session) {
	b := sess.Bytes(16)
	w.h = frameHolder{buf: b} //want hotpath:2
}
