// Package core is the hotpath bad fixture: annotated hot functions using
// per-call allocation constructs.
package core

import "fmt"

func sink(v interface{}) {}
func use(f func() int)   {}
func global() int        { return 0 }

//fractal:hotpath fixture
func closureCapture(n int) {
	use(func() int { return n }) //want hotpath:6
}

//fractal:hotpath fixture
func formats(name string) string {
	return fmt.Sprintf("hello %s", name) //want hotpath:9
}

//fractal:hotpath fixture
func literalInLoop(keys []string) int {
	total := 0
	for range keys {
		m := map[string]int{} //want hotpath:8
		total += len(m)
	}
	return total
}

//fractal:hotpath fixture
func sliceLiteralInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		s := []int{i} //want hotpath:8
		total += s[0]
	}
	return total
}

//fractal:hotpath fixture
func appendGrowth(items []int) []int {
	var out []int
	for _, it := range items {
		out = append(out, it) //want hotpath:9
	}
	return out
}

//fractal:hotpath fixture
func boxesInt(n int) {
	sink(n) //want hotpath:7
}
