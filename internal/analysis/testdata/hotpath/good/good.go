// Package core is the hotpath good fixture: hot functions written
// allocation-free, the same constructs in unannotated functions, and one
// justified allow annotation.
package core

import "fmt"

func sink(v interface{}) {}

var sharedTable = map[string]int{}

//fractal:hotpath fixture
func preallocated(items []int) []int {
	out := make([]int, 0, len(items))
	for _, it := range items {
		out = append(out, it)
	}
	return out
}

//fractal:hotpath fixture
func reusesBuffer(buf []int, items []int) []int {
	out := buf[:0]
	for _, it := range items {
		out = append(out, it)
	}
	return out
}

//fractal:hotpath fixture
func pointerNotBoxed(n *int) {
	sink(n)
}

//fractal:hotpath fixture
func capturelessClosure(items []int) int {
	add := func(a, b int) int { return a + b }
	total := 0
	for _, it := range items {
		total = add(total, it)
	}
	return total
}

//fractal:hotpath fixture
func packageLevelIsNotACapture() int {
	f := func() int { return len(sharedTable) }
	return f()
}

//fractal:hotpath fixture
func errorPathMayFormat(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d", n)
	}
	return nil
}

// coldFunctionsMayAllocate is not annotated: nothing here is checked.
func coldFunctionsMayAllocate(names []string) []string {
	var out []string
	for _, n := range names {
		out = append(out, fmt.Sprintf("cold %s", n))
	}
	return out
}

//fractal:hotpath fixture
func allowedFormatting(name string) string {
	// Rare slow path kept for readability; measured as irrelevant.
	//fractal:allow hotpath — fixture: formatting on a measured-cold branch
	return fmt.Sprintf("slow %s", name)
}
