// arena.go is the arena-escape half of the good fixture: borrows used
// within their session scope, the documented return-to-caller contract,
// and one justified allow on an owner that shares the session's lifetime.
package core

import "fractal/internal/arena"

type sessConn struct {
	sess *arena.Session
	body []byte
}

func newSessConn(sess *arena.Session) *sessConn {
	c := &sessConn{sess: sess}
	//fractal:allow hotpath — sessConn and its session share a lifetime; body is recycled with it
	c.body = sess.Bytes(512)
	return c
}

func localUse(sess *arena.Session) int {
	b := sess.Bytes(64)
	b = append(b, 1, 2, 3)
	b = sess.Grow(b, 128)
	return len(b)
}

// returnedToCaller hands the borrow up the stack, which the arena
// contract permits: the slice is documented valid until Release.
func returnedToCaller(sess *arena.Session) []byte {
	return sess.Bytes(32)
}
