// Package mobilecode is the digestsafe good fixture: all digest equality
// flows through the designated helper, whose body is exempt.
package mobilecode

import (
	"crypto/sha1"
	"crypto/subtle"
)

func digestEqual(a, b [sha1.Size]byte) bool {
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

func good(a, b [sha1.Size]byte) bool {
	return digestEqual(a, b)
}
