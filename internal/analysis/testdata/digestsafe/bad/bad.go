// Package mobilecode is the digestsafe bad fixture: ad-hoc comparisons of
// raw SHA-1 digests inside the verification pipeline.
package mobilecode

import (
	"bytes"
	"crypto/sha1"
)

func bad(a, b [sha1.Size]byte) (bool, bool) {
	eq := a == b                  //want digestsafe:10
	be := bytes.Equal(a[:], b[:]) //want digestsafe:8
	return eq, be
}
