// Package codec is the errdiscard bad fixture: discarded Read counts and
// discarded errors on I/O and codec paths.
package codec

import "io"

type enc struct{}

func (enc) Encode(v int) error { return nil }

func bad(r io.Reader, w io.Writer, e enc, buf []byte) error {
	_, err := r.Read(buf) //want errdiscard:2
	_, _ = w.Write(buf)   //want errdiscard:5
	e.Encode(1)           //want errdiscard:2
	return err
}
