// Package codec is the errdiscard good fixture: counts and errors are
// consumed, io.ReadFull replaces bare short-read-prone Reads, and
// bytes.Buffer writes (which cannot fail) are exempt.
package codec

import (
	"bytes"
	"io"
)

func good(r io.Reader, buf *bytes.Buffer, b []byte) (int, error) {
	buf.Write(b)
	n, err := io.ReadFull(r, b)
	if err != nil {
		return n, err
	}
	m, err := r.Read(b)
	return m, err
}
