// Package inp is the wiretaint bad fixture: wire-decoded integers sizing
// allocations without a sane upper-bound check.
package inp

import (
	"bufio"
	"encoding/binary"
	"io"
	"slices"
)

func unboundedMake(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n) //want wiretaint:22
	return buf, nil
}

func hugeBoundIsNoBound(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	// 1<<32 is not a sanitizer: a hostile header still forces gigabytes.
	if n > 1<<32 {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n) //want wiretaint:22
	return buf, nil
}

func taintThroughArithmetic(hdr []byte) []byte {
	n := binary.BigEndian.Uint32(hdr)
	total := int(n) * 8
	return make([]byte, total) //want wiretaint:22
}

func taintedCopyN(r *bufio.Reader, w io.Writer) error {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	_, err = io.CopyN(w, r, int64(n)) //want wiretaint:26
	return err
}

func taintedGrow(r *bufio.Reader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	return slices.Grow(buf, int(n)), nil //want wiretaint:26
}

func taintSurvivesJoin(r *bufio.Reader, fallback uint64, wire bool) []byte {
	var n uint64
	if wire {
		n, _ = binary.ReadUvarint(r)
	} else {
		n = fallback
	}
	// May-analysis: tainted on one arm means tainted after the join.
	return make([]byte, n) //want wiretaint:22
}

func checkedThenOverwritten(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, io.ErrUnexpectedEOF
	}
	// Re-reading from the wire re-taints n after the check.
	n, err = binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil //want wiretaint:22
}
