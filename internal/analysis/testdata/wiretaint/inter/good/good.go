// Package inp (fixture): the same helper chains as the bad fixture, but
// every wire-derived length is bounded before it can size an allocation
// — by a caller-side guard, a callee-internal clamp, or the min builtin.
package inp

import (
	"bufio"
	"encoding/binary"
	"errors"
)

const maxFrame = 1 << 16

var errTooBig = errors.New("frame too large")

// readLen is the decoder: its first result is wire-derived.
func readLen(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

// scale passes its parameter's taint through.
func scale(n uint64) uint64 {
	return n * 3
}

// alloc sinks its parameter; callers must bound what they pass.
func alloc(n uint64) []byte {
	return make([]byte, n)
}

// decodeBounded checks the decoded length before the helper chain: the
// guarded edge sanitizes the taint and nothing downstream fires.
func decodeBounded(r *bufio.Reader) ([]byte, error) {
	n, err := readLen(r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, errTooBig
	}
	return alloc(scale(n)), nil
}

// clampAlloc bounds its parameter internally, so its summary records no
// sink parameters and tainted callers stay clean.
func clampAlloc(n uint64) []byte {
	if n > 4096 {
		n = 4096
	}
	return make([]byte, n)
}

// decodeClamped relies on the callee's internal clamp.
func decodeClamped(r *bufio.Reader) []byte {
	n, _ := readLen(r)
	return clampAlloc(n)
}

// decodeMin clamps through the min builtin before the sinking helper.
func decodeMin(r *bufio.Reader) []byte {
	n, _ := readLen(r)
	return alloc(min(n, maxFrame))
}
