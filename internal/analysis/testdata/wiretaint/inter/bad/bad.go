// Package inp (fixture): wire-derived lengths laundered through helper
// calls still reach allocation sinks. The interprocedural pass follows
// taint through two call hops (decoder result -> arithmetic helper ->
// sinking callee) without any body inlining.
package inp

import (
	"bufio"
	"encoding/binary"
)

// readLen is hop one: its first result is wire-derived.
func readLen(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

// scale is hop two: the result carries its parameter's taint.
func scale(n uint64) uint64 {
	return n * 3
}

// alloc sinks its parameter into an allocation size with no bound.
func alloc(n uint64) []byte {
	return make([]byte, n)
}

// grow forwards its parameter into alloc: the sink is two hops deep.
func grow(n uint64) []byte {
	return alloc(n + 8)
}

// decodeBody launders a wire length through both helpers before sizing
// the buffer: flagged at the argument feeding the sinking callee.
func decodeBody(r *bufio.Reader) ([]byte, error) {
	n, err := readLen(r)
	if err != nil {
		return nil, err
	}
	m := scale(n)
	return alloc(m), nil //want wiretaint:15
}

// decodeDirect consumes a summarized decoder's result directly in a
// local make.
func decodeDirect(r *bufio.Reader) []byte {
	buf := make([]byte, scale(mustLen(r))) //want wiretaint:22
	return buf
}

// mustLen is a decoder that swallows the error (single-result hop).
func mustLen(r *bufio.Reader) uint64 {
	n, _ := readLen(r)
	return n
}

// readPayload hits a sink two call hops away.
func readPayload(r *bufio.Reader) []byte {
	n, _ := readLen(r)
	return grow(n) //want wiretaint:14
}
