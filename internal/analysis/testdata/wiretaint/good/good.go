// Package inp is the wiretaint good fixture: wire-decoded integers that
// pass a sane upper-bound check (or never size an allocation), plus one
// justified allow annotation.
package inp

import (
	"bufio"
	"encoding/binary"
	"io"
)

const maxSane = 1 << 20

func checkedMake(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxSane {
		return nil, io.ErrUnexpectedEOF
	}
	return make([]byte, n), nil
}

func clampedMake(r *bufio.Reader) []byte {
	n, _ := binary.ReadUvarint(r)
	reserve := n
	if reserve > maxSane {
		reserve = maxSane
	}
	return make([]byte, 0, reserve)
}

func minClamped(r *bufio.Reader) []byte {
	n, _ := binary.ReadUvarint(r)
	return make([]byte, min(n, maxSane))
}

func boundAgainstRemaining(r *bufio.Reader, remaining int) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	// A non-constant clean bound (bytes actually available) sanitizes.
	if int(n) > remaining {
		return nil, io.ErrUnexpectedEOF
	}
	return make([]byte, n), nil
}

func constantSizes(r *bufio.Reader) []byte {
	// Reading the value without sizing anything from it is fine.
	_, _ = binary.ReadUvarint(r)
	return make([]byte, 64)
}

func allowedSite(r *bufio.Reader) []byte {
	n, _ := binary.ReadUvarint(r)
	// The caller guarantees the reader is length-limited upstream.
	//fractal:allow wiretaint — fixture: reader is length-capped upstream
	return make([]byte, n)
}
