// Package inp is the deadline bad fixture: unbounded Read/Write and frame
// calls on deadline-capable connections in functions that never arm one.
package inp

import (
	"io"
	"time"
)

// conn has the net.Conn deadline shape.
type conn struct{}

func (conn) Read(p []byte) (int, error)      { return 0, nil }
func (conn) Write(p []byte) (int, error)     { return 0, nil }
func (conn) SetReadDeadline(time.Time) error { return nil }

// ReadMessage stands in for the INP framing entry point.
func ReadMessage(r io.Reader) ([]byte, error) { return nil, nil }

func unbounded(c conn, buf []byte) {
	c.Read(buf)  //want deadline:2
	c.Write(buf) //want deadline:2
}

func unboundedFrame(c conn) {
	ReadMessage(c) //want deadline:2
}

func allowed(c conn, buf []byte) {
	// The accept loop's first byte is deliberately unbounded here.
	c.Read(buf) //fractal:allow deadline — fixture exception site
}
