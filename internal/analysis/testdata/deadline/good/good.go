// Package inp is the deadline good fixture: every conn operation is
// either guarded by a deadline/SetTimeout in the same function or runs on
// a stream with no deadline support (which cannot be bounded and is
// therefore not flagged).
package inp

import (
	"bytes"
	"io"
	"time"
)

type conn struct{}

func (conn) Read(p []byte) (int, error)       { return 0, nil }
func (conn) Write(p []byte) (int, error)      { return 0, nil }
func (conn) SetReadDeadline(time.Time) error  { return nil }
func (conn) SetWriteDeadline(time.Time) error { return nil }

type session struct{ c conn }

func (s *session) SetTimeout(time.Duration) {}

func ReadMessage(r io.Reader) ([]byte, error) { return nil, nil }

func guardedDirect(c conn, buf []byte) {
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	c.Read(buf)
	c.Write(buf)
}

func guardedByHelper(s *session, buf []byte) {
	s.SetTimeout(time.Second)
	s.c.Read(buf)
}

func guardedFrame(c conn) {
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	ReadMessage(c)
}

func plainStream(buf *bytes.Buffer, p []byte) {
	// No deadline support: an in-memory buffer cannot stall.
	buf.Read(p)
	buf.Write(p)
	ReadMessage(buf)
}
