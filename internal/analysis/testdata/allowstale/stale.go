// Package client is the stale-allow fixture: every annotation here names
// an enabled flow-sensitive analyzer but suppresses nothing, so allowcheck
// must report each one.
package client

import "sync"

type state struct {
	mu sync.Mutex
	n  int
}

func nothingBlocksHere(s *state) {
	s.mu.Lock()
	//fractal:allow lockheld — stale: no blocking op under the lock //want allowcheck:2
	s.n++
	s.mu.Unlock()
}

func nothingTaintedHere() []byte {
	//fractal:allow wiretaint — stale: constant size //want allowcheck:2
	return make([]byte, 64)
}

//fractal:hotpath fixture
func nothingAllocatesHere(n *int) int {
	//fractal:allow hotpath — stale: pointer arguments do not box //want allowcheck:2
	return *n + 1
}
