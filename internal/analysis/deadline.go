package analysis

import (
	"go/ast"
	"go/types"
)

// deadlineScope lists the packages that perform real network I/O and must
// bound every conn operation with a deadline: an unguarded Read on a
// stalled peer parks the session goroutine forever, which is exactly the
// failure mode the transport hardening work (bounded calls, degraded mode)
// exists to prevent.
var deadlineScope = map[string]bool{
	"fractal/internal/client":          true,
	"fractal/internal/proxy":           true,
	"fractal/internal/appserver":       true,
	"fractal/internal/inp":             true,
	"fractal/internal/inp/conformance": true,
}

// deadlineFrameFns are the INP framing entry points that read or write a
// whole message on a raw stream; passing them a deadline-capable conn
// without arming a deadline is as unbounded as calling Read directly.
var deadlineFrameFns = map[string]bool{
	"ReadMessage":  true,
	"WriteMessage": true,
}

// DeadlineAnalyzer flags unbounded conn I/O: Read/Write (and INP frame
// calls) on deadline-capable connections inside functions that never arm a
// deadline. Genuine unbounded sites (an accept loop's first byte, a pipe
// that cannot stall) carry //fractal:allow deadline.
var DeadlineAnalyzer = &Analyzer{
	Name: "deadline",
	Doc:  "flag net.Conn Read/Write/frame calls not guarded by a deadline or SetTimeout",
	Run:  runDeadline,
}

func runDeadline(pass *Pass) {
	if !deadlineScope[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if armsDeadline(fd.Body) {
				continue
			}
			checkUnboundedIO(pass, fd)
		}
	}
}

// armsDeadline reports whether the function body contains any call that
// arms an I/O bound: a *Deadline setter (SetReadDeadline, SetDeadline, the
// repo's armDeadline helpers) or inp.Conn's SetTimeout.
func armsDeadline(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		}
		if name == "SetTimeout" || containsDeadline(name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// containsDeadline matches the Deadline-setter naming convention without
// pulling in strings for a two-site check.
func containsDeadline(name string) bool {
	for i := 0; i+len("Deadline") <= len(name); i++ {
		if name[i:i+len("Deadline")] == "Deadline" {
			return true
		}
	}
	return false
}

// checkUnboundedIO reports every deadline-capable conn operation in a
// function that never arms one.
func checkUnboundedIO(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			switch {
			case (fun.Sel.Name == "Read" || fun.Sel.Name == "Write") && isConnMethod(pass, fun):
				pass.Reportf(call.Pos(),
					"unbounded %s on a deadline-capable connection in %s; arm a deadline/SetTimeout first (or annotate a genuinely unbounded site with //%s deadline)",
					fun.Sel.Name, fd.Name.Name, AllowPrefix)
			case deadlineFrameFns[fun.Sel.Name] && firstArgDeadlineCapable(pass, call):
				pass.Reportf(call.Pos(),
					"unbounded %s frame call on a deadline-capable connection in %s; arm a deadline/SetTimeout first (or annotate with //%s deadline)",
					fun.Sel.Name, fd.Name.Name, AllowPrefix)
			}
		case *ast.Ident:
			// Unqualified ReadMessage/WriteMessage inside package inp.
			if deadlineFrameFns[fun.Name] && firstArgDeadlineCapable(pass, call) {
				pass.Reportf(call.Pos(),
					"unbounded %s frame call on a deadline-capable connection in %s; arm a deadline/SetTimeout first (or annotate with //%s deadline)",
					fun.Name, fd.Name.Name, AllowPrefix)
			}
		}
		return true
	})
}

// isConnMethod reports whether sel resolves to a method whose receiver's
// static type also offers SetReadDeadline — the net.Conn shape, as opposed
// to a plain io.Reader/io.Writer or an in-memory buffer. *os.File carries
// the deadline methods too but local file I/O has no stalled peer to
// guard against, so it is exempt.
func isConnMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if named(recv) == "os.File" {
		return false
	}
	return hasDeadlineMethods(recv)
}

// firstArgDeadlineCapable reports whether the call's first argument is a
// deadline-capable stream.
func firstArgDeadlineCapable(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	if named(tv.Type) == "os.File" {
		return false
	}
	return hasDeadlineMethods(tv.Type)
}

// hasDeadlineMethods reports whether t's method set (or its pointer's)
// includes SetReadDeadline — the marker of a conn that can be bounded and
// therefore must be.
func hasDeadlineMethods(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "SetReadDeadline" {
				return true
			}
		}
	}
	return false
}
