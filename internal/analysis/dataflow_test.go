package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// TestFixpointWideSwitchBounded pins the worklist's pending-block dedup:
// a 200-case switch funnels 200 edges into the statement after it;
// without dedup the join block would be enqueued once per incoming edge
// and the fixpoint would transfer quadratically. The bound is generous
// (2x the block count) but a regression to per-edge enqueueing blows
// straight through it — even with the maxSteps backstop, the step cap
// (64x blocks) sits far above this bound.
func TestFixpointWideSwitchBounded(t *testing.T) {
	const cases = 200
	var sb strings.Builder
	sb.WriteString("x := 0\nswitch x {\n")
	for i := 0; i < cases; i++ {
		fmt.Fprintf(&sb, "case %d:\n\tx = %d\n", i+1, i+1)
	}
	sb.WriteString("}\nx++")
	g, _ := buildTestCFG(t, sb.String())
	if len(g.Blocks) < cases {
		t.Fatalf("CFG too small: %d blocks for a %d-case switch", len(g.Blocks), cases)
	}
	transfers := 0
	an := FlowAnalysis[int]{
		Entry: func() int { return 0 },
		Transfer: func(b *Block, in int) int {
			transfers++
			return in
		},
		Join: func(a, b int) int {
			if b > a {
				return b
			}
			return a
		},
		Equal: func(a, b int) bool { return a == b },
	}
	facts := ForwardFixpoint(g, an)
	if len(facts) == 0 {
		t.Fatal("no blocks reached")
	}
	if bound := 2 * len(g.Blocks); transfers > bound {
		t.Fatalf("fixpoint ran Transfer %d times over %d blocks (bound %d): worklist dedup lost",
			transfers, len(g.Blocks), bound)
	}
}

// TestFixpointWideSwitchConverges verifies the same CFG converges to the
// joined fact at the block after the switch even though each case writes
// a different value — the join really does see every edge despite the
// dedup coalescing the visits.
func TestFixpointWideSwitchConverges(t *testing.T) {
	const cases = 50
	var sb strings.Builder
	sb.WriteString("x := 0\nswitch x {\n")
	for i := 0; i < cases; i++ {
		fmt.Fprintf(&sb, "case %d:\n\tx = %d\n", i+1, i+1)
	}
	sb.WriteString("}\nx++")
	g, fset := buildTestCFG(t, sb.String())
	// Fact: the maximum case index whose block was traversed on some path.
	caseOf := map[*Block]int{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			var idx int
			if _, err := fmt.Sscanf(nodeText(fset, n), "x = %d", &idx); err == nil {
				caseOf[b] = idx
			}
		}
	}
	an := FlowAnalysis[int]{
		Entry: func() int { return 0 },
		Transfer: func(b *Block, in int) int {
			if idx, ok := caseOf[b]; ok && idx > in {
				return idx
			}
			return in
		},
		Join: func(a, b int) int {
			if b > a {
				return b
			}
			return a
		},
		Equal: func(a, b int) bool { return a == b },
	}
	facts := ForwardFixpoint(g, an)
	after := blockWith(t, g, fset, "x++")
	if got := facts[after]; got != cases {
		t.Fatalf("join after the switch saw max case %d, want %d", got, cases)
	}
}
