package analysis

import (
	"go/ast"
)

// rawrandAllowed are the math/rand package-level names that construct or
// parameterize an explicit generator rather than consuming the shared
// global source.
var rawrandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// Types referenced in declarations.
	"Rand":   true,
	"Source": true,
	"Zipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":       true,
	"NewChaCha8":   true,
	"NewZipfian":   true,
	"PCG":          true,
	"ChaCha8":      true,
	"Source64":     true,
	"Int64Source":  true,
	"Uint64Source": true,
}

// RawrandAnalyzer forbids the global math/rand top-level functions:
// workload generation and mobile-code blobs must be reproducible, so every
// random draw comes from an injected, seeded *rand.Rand.
var RawrandAnalyzer = &Analyzer{
	Name: "rawrand",
	Doc:  "forbid the global math/rand source; use an injected seeded *rand.Rand",
	Run:  runRawrand,
}

func runRawrand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || rawrandAllowed[sel.Sel.Name] {
				return true
			}
			switch packageOf(pass, f, sel) {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the non-reproducible global math/rand source; thread a seeded *rand.Rand instead",
				sel.Sel.Name)
			return true
		})
	}
}
