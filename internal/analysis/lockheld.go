package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockheldScope lists the concurrent serving-plane packages whose lock
// discipline the analyzer proves: a mutex held across a blocking operation
// (conn I/O, INP frame calls, channel ops, singleflight joins, timed
// waits) turns one stalled peer into a pile-up behind the lock — the
// deadlock class the -race job cannot see because nothing races.
var lockheldScope = map[string]bool{
	"fractal/internal/client":    true,
	"fractal/internal/proxy":     true,
	"fractal/internal/cdn":       true,
	"fractal/internal/appserver": true,
	"fractal/internal/p2p":       true,
	// fleet's coherence ledger must never hold its mutex across a shard
	// push or negotiation: one slow shard would serialize the whole
	// invalidation fan-out behind the lock.
	"fractal/internal/fleet": true,
}

// LockheldAnalyzer runs a must-hold dataflow over each function's CFG: the
// fact is the set of mutexes provably held on every path to a program
// point. It reports (a) a blocking operation executed while any lock is
// held, (b) re-acquiring a lock already held (self-deadlock), and (c)
// inconsistent acquisition order between two known locks across the
// package (AB in one function, BA in another).
var LockheldAnalyzer = &Analyzer{
	Name: "lockheld",
	Doc:  "flag mutexes held across blocking ops, self-deadlocks, and lock-order inversions",
	Run:  runLockheld,
}

// lockInfo describes one held lock.
type lockInfo struct {
	pos     token.Pos
	typeKey string // "pkg.Type.field" identity for cross-function ordering
}

// lockFact is the must-held set, keyed by the rendered lock expression
// ("s.mu"). Must-analysis: the join is set intersection.
type lockFact map[string]lockInfo

func lockJoin(a, b lockFact) lockFact {
	out := lockFact{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func lockEqual(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// orderSite records one "second acquired while first held" observation for
// the package-wide lock-order check.
type orderSite struct {
	first, second string // type-level lock keys
	pos           token.Pos
}

func runLockheld(pass *Pass) {
	if !lockheldScope[pass.Pkg.Path] {
		return
	}
	var orders []orderSite
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The enclosing ProgFunc supplies the locally-evident bindings
			// for interprocedural call resolution; its binding maps cover
			// nested literals too (localBindings walks the whole decl body).
			var pf *ProgFunc
			if pass.Prog != nil {
				if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					pf = pass.Prog.FuncOf(fn)
				}
			}
			for _, g := range funcCFGs(fd.Body) {
				orders = append(orders, lockheldFunc(pass, g, pf)...)
			}
		}
	}
	reportLockOrders(pass, orders)
}

// lockheldFunc runs the fixpoint over one function (or function literal)
// and replays each reached block once to report, returning the lock-order
// observations for the package-wide pass.
func lockheldFunc(pass *Pass, g *CFG, pf *ProgFunc) []orderSite {
	an := FlowAnalysis[lockFact]{
		Entry:    func() lockFact { return lockFact{} },
		Transfer: func(b *Block, in lockFact) lockFact { return lockTransfer(pass, g, b, in, nil, nil, pf) },
		Join:     lockJoin,
		Equal:    lockEqual,
	}
	entry := ForwardFixpoint(g, an)
	var orders []orderSite
	for _, b := range g.Blocks {
		in, reached := entry[b]
		if !reached {
			continue
		}
		lockTransfer(pass, g, b, in, pass, &orders, pf)
	}
	return orders
}

// lockTransfer pushes the held-set through one block. With rep non-nil it
// also reports findings and records lock-order observations — the replay
// pass after the fixpoint converged.
func lockTransfer(pass *Pass, g *CFG, b *Block, in lockFact, rep *Pass, orders *[]orderSite, pf *ProgFunc) lockFact {
	held := in
	cloned := false
	mutate := func() lockFact {
		if !cloned {
			c := make(lockFact, len(held))
			for k, v := range held {
				c[k] = v
			}
			held, cloned = c, true
		}
		return held
	}

	if rep != nil && len(held) > 0 {
		if b.Select != nil && !selectHasDefault(b.Select) && len(b.Select.Body.List) > 0 {
			rep.Reportf(b.Select.Pos(), "select with no default blocks while %s is held; release the lock first", heldNames(held))
		}
		if b.Range != nil && isChannelType(pass, b.Range.X) {
			rep.Reportf(b.Range.Pos(), "ranging over a channel blocks each iteration while %s is held; release the lock first", heldNames(held))
		}
	}

	for _, node := range b.Nodes {
		ast.Inspect(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // analyzed as its own function
			case *ast.DeferStmt:
				// Registration only; the call replays in the exit chain.
				return false
			case *ast.GoStmt:
				// Runs on another goroutine with its own CFG.
				return false
			case *ast.CallExpr:
				if key, tk, op, ok := lockOpOf(pass, n); ok {
					switch op {
					case "Lock", "RLock":
						if rep != nil {
							if prev, dup := held[key]; dup {
								rep.Reportf(n.Pos(), "%s of %s while already held (acquired at %s): self-deadlock", op, key, pass.Fset.Position(prev.pos))
							}
							for _, h := range held {
								if h.typeKey != "" && tk != "" && h.typeKey != tk {
									*orders = append(*orders, orderSite{first: h.typeKey, second: tk, pos: n.Pos()})
								}
							}
						}
						mutate()[key] = lockInfo{pos: n.Pos(), typeKey: tk}
					case "Unlock", "RUnlock":
						delete(mutate(), key)
					}
					return true
				}
				if rep != nil && len(held) > 0 {
					if desc, ok := blockingCall(pass, n); ok {
						rep.Reportf(n.Pos(), "%s while %s is held; a stalled peer parks every caller behind the lock (release it, or annotate a deliberate serialization point with //%s lockheld)", desc, heldNames(held), AllowPrefix)
					} else if callee := pass.Prog.resolveCall(pass.Pkg, pf, n); callee != nil && callee.Summary != nil && callee.Summary.Blocks {
						// Interprocedural: the callee is not itself a blocking
						// primitive, but its summary says some operation it
						// (transitively) performs can block indefinitely.
						cs := callee.Summary
						related := []Related{
							rep.RelatedAt(heldAcquisition(held), "lock acquired here"),
							rep.RelatedAt(cs.LeafPos, "blocking operation inside the callee: "+cs.LeafDesc),
						}
						rep.ReportRelated(n.Pos(), related, "call to %s (may block: %s) while %s is held; a stalled peer parks every caller behind the lock (release it, or annotate a deliberate serialization point with //%s lockheld)",
							shortFuncName(callee), cs.LeafDesc, heldNames(held), AllowPrefix)
					}
				}
			case *ast.SendStmt:
				if rep != nil && len(held) > 0 && !g.IsSelectComm(n) {
					rep.Reportf(n.Pos(), "channel send while %s is held; release the lock first", heldNames(held))
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && rep != nil && len(held) > 0 && !underSelectComm(g, b, n) {
					rep.Reportf(n.Pos(), "channel receive while %s is held; release the lock first", heldNames(held))
				}
			}
			return true
		})
	}
	return held
}

// underSelectComm reports whether the receive expression belongs to a
// select communication clause in this block (reported at the select head
// instead).
func underSelectComm(g *CFG, b *Block, recv *ast.UnaryExpr) bool {
	for _, node := range b.Nodes {
		if !g.IsSelectComm(node) {
			continue
		}
		found := false
		ast.Inspect(node, func(n ast.Node) bool {
			if n == ast.Node(recv) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// heldAcquisition returns the acquisition site of the first held lock in
// name order — the deterministic anchor for related-location reporting.
func heldAcquisition(held lockFact) token.Pos {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return token.NoPos
	}
	return held[keys[0]].pos
}

// heldNames renders the held set deterministically for messages.
func heldNames(held lockFact) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// lockOpOf recognizes (R)Lock/(R)Unlock calls on sync.Mutex/sync.RWMutex
// values, returning the rendered lock expression, its type-level identity,
// and the operation name.
func lockOpOf(pass *Pass, call *ast.CallExpr) (key, typeKey, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", "", false
	}
	fn, isFn := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", "", false
	}
	switch named(sig.Recv().Type()) {
	case "sync.Mutex", "sync.RWMutex":
	default:
		return "", "", "", false
	}
	return types.ExprString(sel.X), lockTypeKey(pass, sel.X), name, true
}

// lockTypeKey derives a cross-function identity for a lock: the owning
// named type plus field name for struct-field locks ("core.cacheShard.mu"),
// the package-qualified name for package-level locks, "" when the lock is
// a local variable (no meaningful global order).
func lockTypeKey(pass *Pass, lockExpr ast.Expr) string {
	switch x := lockExpr.(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.Pkg.Info.Selections[x]; ok {
			if owner := named(s.Recv()); owner != "" {
				return owner + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		if v, ok := pass.Pkg.Info.Uses[x].(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
	}
	return ""
}

// blockingCall recognizes calls that can block indefinitely on a peer or
// another goroutine: conn Read/Write, INP framing and Conn exchanges,
// singleflight joins, sync waits, timed sleeps, and dials.
func blockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if (sel.Sel.Name == "Read" || sel.Sel.Name == "Write") && isConnMethod(pass, sel) {
			return "conn " + sel.Sel.Name, true
		}
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return "", false
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		switch recv := named(sig.Recv().Type()); {
		case recv == "fractal/internal/inp.Conn" && inpConnExchanges[fn.Name()]:
			return "inp.Conn." + fn.Name() + " (network round trip)", true
		case recv == "fractal/internal/syncx.Group" && fn.Name() == "Do":
			return "syncx.Group.Do (may join an in-flight call)", true
		case recv == "fractal/internal/proxy.Proxy" && proxyShardSends[fn.Name()]:
			return "proxy.Proxy." + fn.Name() + " (shard send: PAT build or collapsed search)", true
		case recv == "sync.WaitGroup" && fn.Name() == "Wait":
			return "sync.WaitGroup.Wait", true
		case recv == "sync.Cond" && fn.Name() == "Wait":
			return "sync.Cond.Wait", true
		case recv == "net.Dialer" && strings.HasPrefix(fn.Name(), "Dial"):
			return "net.Dialer." + fn.Name(), true
		}
		return "", false
	}
	switch {
	case pkgPath == "fractal/internal/inp" && deadlineFrameFns[fn.Name()]:
		return "inp." + fn.Name() + " frame call", true
	case pkgPath == "time" && fn.Name() == "Sleep":
		return "time.Sleep", true
	case pkgPath == "net" && strings.HasPrefix(fn.Name(), "Dial"):
		return "net." + fn.Name(), true
	}
	return "", false
}

// proxyShardSends are the proxy.Proxy methods a fleet-tier caller treats
// as sends to a shard: a topology push rebuilds the shard's PAT (and may
// verify modules), and a negotiation can join or run a path search behind
// the shard's singleflight. Holding a fleet-level lock across either
// serializes the whole tier behind one slow shard, so the cross-shard
// fan-out must snapshot its ledger and release before sending.
var proxyShardSends = map[string]bool{
	"PushAppMeta":    true,
	"Negotiate":      true,
	"NegotiateFor":   true,
	"NegotiateKeyed": true,
}

// inpConnExchanges are the inp.Conn methods that perform (or commit the
// caller to) network I/O. Queue only stages bytes, but a queued frame
// obligates a Flush on the same conn, so holding a lock across either
// half of the batched write path is the same discipline violation as
// holding it across Send.
var inpConnExchanges = map[string]bool{
	"Send":      true,
	"Recv":      true,
	"RecvInto":  true,
	"Call":      true,
	"SendError": true,
	"Queue":     true,
	"Flush":     true,
}

// calleeFunc resolves a call's target to its types.Func, for both
// qualified (pkg.F, recv.M) and unqualified (F) call forms.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.Pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isChannelType reports whether the expression's static type is a channel.
func isChannelType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// reportLockOrders flags pairs of type-level locks acquired in both orders
// somewhere in the package: whichever order is correct, the other is a
// potential ABBA deadlock.
func reportLockOrders(pass *Pass, orders []orderSite) {
	type pair struct{ a, b string }
	sites := map[pair][]orderSite{}
	for _, o := range orders {
		sites[pair{o.first, o.second}] = append(sites[pair{o.first, o.second}], o)
	}
	var keys []pair
	for p := range sites {
		if p.a < p.b {
			if _, inverted := sites[pair{p.b, p.a}]; inverted {
				keys = append(keys, p)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, p := range keys {
		for _, dir := range []pair{p, {p.b, p.a}} {
			ss := sites[dir]
			sort.Slice(ss, func(i, j int) bool { return ss[i].pos < ss[j].pos })
			for _, s := range ss {
				other := sites[pair{dir.b, dir.a}][0]
				pass.Reportf(s.pos, "lock order inversion: %s acquired while %s is held here, but the opposite order occurs at %s",
					fmt.Sprintf("%q", dir.b), fmt.Sprintf("%q", dir.a), pass.Fset.Position(other.pos))
			}
		}
	}
}
