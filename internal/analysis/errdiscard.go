package analysis

import (
	"go/ast"
	"go/types"
)

// errdiscardWatched are the method/function names on I/O and codec paths
// whose errors must not be discarded. Close is deliberately absent: `_ =
// c.Close()` in a defer is idiomatic and harmless.
var errdiscardWatched = map[string]bool{
	"Read":   true,
	"Write":  true,
	"Encode": true,
	"Decode": true,
	"Flush":  true,
}

// ErrdiscardAnalyzer flags discarded error returns (and discarded Read
// byte counts — the short-read bug class latent in codec framing code) on
// io.Reader/io.Writer and codec encode/decode paths.
var ErrdiscardAnalyzer = &Analyzer{
	Name: "errdiscard",
	Doc:  "flag ignored errors and Read byte counts on io.Reader/io.Writer/codec paths",
	Run:  runErrdiscard,
}

func runErrdiscard(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				checkAssignedCall(pass, st, call)
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn, sig := watchedCallee(pass, call); fn != nil && hasErrorResult(sig) {
					pass.Reportf(call.Pos(),
						"all results of %s dropped, including its error; handle or explicitly check it",
						calleeLabel(fn))
				}
			}
			return true
		})
	}
}

// checkAssignedCall flags blank identifiers in the short-read-prone count
// position of Read and in the error position of any watched call.
func checkAssignedCall(pass *Pass, st *ast.AssignStmt, call *ast.CallExpr) {
	fn, sig := watchedCallee(pass, call)
	if fn == nil {
		return
	}
	results := sig.Results()
	if len(st.Lhs) != results.Len() {
		return
	}
	if fn.Name() == "Read" && isReaderShape(sig) && isBlank(st.Lhs[0]) {
		pass.Reportf(st.Lhs[0].Pos(),
			"discarding the byte count from %s risks acting on a silent short read; use io.ReadFull",
			calleeLabel(fn))
	}
	for i := 0; i < results.Len(); i++ {
		if !isErrorType(results.At(i).Type()) || !isBlank(st.Lhs[i]) {
			continue
		}
		pass.Reportf(st.Lhs[i].Pos(),
			"error from %s discarded; handle it or propagate it",
			calleeLabel(fn))
	}
}

// watchedCallee resolves a call to a watched I/O/codec function, returning
// nil for unwatched or exempt callees (bytes.Buffer, strings.Builder, and
// arena.Buffer writes cannot fail by contract).
func watchedCallee(pass *Pass, call *ast.CallExpr) (*types.Func, *types.Signature) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil, nil
	}
	if !errdiscardWatched[id.Name] {
		return nil, nil
	}
	fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	if recv := sig.Recv(); recv != nil {
		switch named(recv.Type()) {
		case "bytes.Buffer", "strings.Builder", "fractal/internal/arena.Buffer":
			return nil, nil
		}
	}
	return fn, sig
}

// isReaderShape reports whether sig is Read([]byte) (int, error) — the
// io.Reader method shape whose count result encodes short reads.
func isReaderShape(sig *types.Signature) bool {
	if sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	if s, ok := sig.Params().At(0).Type().(*types.Slice); !ok || !isByte(s.Elem()) {
		return false
	}
	r0, ok := sig.Results().At(0).Type().(*types.Basic)
	return ok && r0.Kind() == types.Int && isErrorType(sig.Results().At(1).Type())
}

// hasErrorResult reports whether the signature's last result is an error.
func hasErrorResult(sig *types.Signature) bool {
	n := sig.Results().Len()
	return n > 0 && isErrorType(sig.Results().At(n-1).Type())
}

// calleeLabel renders "(recv).Name" or "pkg.Name" for diagnostics.
func calleeLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil {
			return "(" + types.TypeString(recv.Type(), nil) + ")." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// named returns the "pkg.Type" form of a possibly-pointer named type.
func named(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// isBlank reports whether the expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isByte reports whether t is byte/uint8.
func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
