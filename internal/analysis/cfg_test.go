package analysis

import (
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses a function body and builds its CFG.
func buildTestCFG(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body), fset
}

// reachable returns the blocks reachable from Entry in index order.
func reachable(g *CFG) []*Block {
	seen := make([]bool, len(g.Blocks))
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	walk(g.Entry)
	var out []*Block
	for _, b := range g.Blocks {
		if seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

// nodeText renders a node compactly for assertions.
func nodeText(fset *token.FileSet, n ast.Node) string {
	var sb strings.Builder
	_ = printer.Fprint(&sb, fset, n)
	return strings.Join(strings.Fields(sb.String()), " ")
}

// blockWith returns the reachable block containing a node whose rendering
// equals text.
func blockWith(t *testing.T, g *CFG, fset *token.FileSet, text string) *Block {
	t.Helper()
	for _, b := range reachable(g) {
		for _, n := range b.Nodes {
			if nodeText(fset, n) == text {
				return b
			}
		}
	}
	t.Fatalf("no reachable block contains %q", text)
	return nil
}

// pathExists reports whether to is reachable from from.
func pathExists(g *CFG, from, to *Block) bool {
	seen := make([]bool, len(g.Blocks))
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		for _, e := range b.Succs {
			if walk(e.To) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestCFGIfElseJoins(t *testing.T) {
	g, fset := buildTestCFG(t, `
	a := 1
	if a > 0 {
		a = 2
	} else {
		a = 3
	}
	a = 4`)
	cond := blockWith(t, g, fset, "a > 0")
	if len(cond.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2", len(cond.Succs))
	}
	var sawTrue, sawFalse bool
	for _, e := range cond.Succs {
		if e.Cond == nil {
			t.Fatalf("if-branch edge missing condition")
		}
		if e.Negated {
			sawFalse = true
		} else {
			sawTrue = true
		}
	}
	if !sawTrue || !sawFalse {
		t.Fatalf("want one true and one negated edge, got true=%v false=%v", sawTrue, sawFalse)
	}
	join := blockWith(t, g, fset, "a = 4")
	then := blockWith(t, g, fset, "a = 2")
	els := blockWith(t, g, fset, "a = 3")
	if !pathExists(g, then, join) || !pathExists(g, els, join) {
		t.Fatalf("both branches must reach the join block")
	}
	if !pathExists(g, join, g.Exit) {
		t.Fatalf("join block must reach Exit")
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	g, fset := buildTestCFG(t, `
	s := 0
	for i := 0; i < 10; i++ {
		s += i
	}
	s = -1`)
	body := blockWith(t, g, fset, "s += i")
	if body.LoopDepth != 1 {
		t.Fatalf("loop body LoopDepth = %d, want 1", body.LoopDepth)
	}
	head := blockWith(t, g, fset, "i < 10")
	if head.LoopDepth != 0 {
		t.Fatalf("loop head LoopDepth = %d, want 0 (condition evaluates outside the body)", head.LoopDepth)
	}
	// Back edge: body -> post (i++) -> head.
	post := blockWith(t, g, fset, "i++")
	if !pathExists(g, body, post) || !pathExists(g, post, head) {
		t.Fatalf("loop body must reach the head again through the post statement")
	}
	out := blockWith(t, g, fset, "s = -1")
	if !pathExists(g, head, out) {
		t.Fatalf("loop head must reach the after-loop block")
	}
}

func TestCFGLabelledBreak(t *testing.T) {
	g, fset := buildTestCFG(t, `
	n := 0
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == i {
				break outer
			}
			n++
		}
	}
	n = -1`)
	brkCond := blockWith(t, g, fset, "j == i")
	after := blockWith(t, g, fset, "n = -1")
	// The labelled break must exit both loops: its true edge leads to the
	// after-loop block without passing the inner-loop increment again.
	var trueEdge *Edge
	for i := range brkCond.Succs {
		if !brkCond.Succs[i].Negated {
			trueEdge = &brkCond.Succs[i]
		}
	}
	if trueEdge == nil {
		t.Fatalf("break condition has no true edge")
	}
	if !pathExists(g, trueEdge.To, after) {
		t.Fatalf("labelled break must reach the statement after the outer loop")
	}
	inner := blockWith(t, g, fset, "n++")
	if inner.LoopDepth != 2 {
		t.Fatalf("inner body LoopDepth = %d, want 2", inner.LoopDepth)
	}
	if pathExists(g, trueEdge.To, inner) {
		t.Fatalf("labelled break edge must not re-enter the loops")
	}
}

func TestCFGDeferChainLIFO(t *testing.T) {
	g, fset := buildTestCFG(t, `
	defer first()
	defer second()
	work()`)
	var deferred []*Block
	for _, b := range reachable(g) {
		if b.Deferred {
			deferred = append(deferred, b)
		}
	}
	if len(deferred) != 2 {
		t.Fatalf("got %d deferred blocks, want 2", len(deferred))
	}
	// LIFO: the last-registered defer replays first on the way to Exit.
	if got := nodeText(fset, deferred[0].Nodes[0]); got != "second()" {
		t.Fatalf("first replayed deferred call = %q, want %q", got, "second()")
	}
	if got := nodeText(fset, deferred[1].Nodes[0]); got != "first()" {
		t.Fatalf("second replayed deferred call = %q, want %q", got, "first()")
	}
	if !pathExists(g, deferred[0], deferred[1]) {
		t.Fatalf("deferred chain must run second() before first()")
	}
	if !pathExists(g, deferred[1], g.Exit) {
		t.Fatalf("deferred chain must end at Exit")
	}
	work := blockWith(t, g, fset, "work()")
	if work.Deferred {
		t.Fatalf("in-line statements must not be marked Deferred")
	}
}

func TestCFGSelectHead(t *testing.T) {
	g, fset := buildTestCFG(t, `
	ch := make(chan int)
	select {
	case v := <-ch:
		use(v)
	case ch <- 1:
		done()
	}`)
	var head *Block
	for _, b := range reachable(g) {
		if b.Select != nil {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no reachable block carries the select marker")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("select head has %d successors, want 2 (one per case)", len(head.Succs))
	}
	// Both comm statements are registered so analyzers report the select
	// head, not the individual channel ops.
	comms := 0
	for _, b := range reachable(g) {
		for _, n := range b.Nodes {
			if g.IsSelectComm(n) {
				comms++
			}
		}
	}
	if comms != 2 {
		t.Fatalf("found %d registered comm statements, want 2", comms)
	}
	use := blockWith(t, g, fset, "use(v)")
	if !pathExists(g, head, use) {
		t.Fatalf("select head must reach its case bodies")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g, fset := buildTestCFG(t, `
	switch x() {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
	after()`)
	one := blockWith(t, g, fset, "one()")
	two := blockWith(t, g, fset, "two()")
	other := blockWith(t, g, fset, "other()")
	after := blockWith(t, g, fset, "after()")
	if !pathExists(g, one, two) {
		t.Fatalf("fallthrough must connect case 1 to case 2")
	}
	for _, b := range []*Block{two, other} {
		if !pathExists(g, b, after) {
			t.Fatalf("every case must reach the statement after the switch")
		}
	}
	if pathExists(g, two, one) {
		t.Fatalf("cases must not loop back")
	}
}

func TestCFGRangeHead(t *testing.T) {
	g, fset := buildTestCFG(t, `
	for _, v := range items {
		use(v)
	}
	after()`)
	var head *Block
	for _, b := range reachable(g) {
		if b.Range != nil {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no reachable block carries the range marker")
	}
	body := blockWith(t, g, fset, "use(v)")
	after := blockWith(t, g, fset, "after()")
	if body.LoopDepth != 1 {
		t.Fatalf("range body LoopDepth = %d, want 1", body.LoopDepth)
	}
	if !pathExists(g, head, body) || !pathExists(g, body, head) {
		t.Fatalf("range head and body must form a cycle")
	}
	if !pathExists(g, head, after) {
		t.Fatalf("range head must reach the after-loop block")
	}
}

// TestForwardFixpointGenKill exercises the engine end to end with a tiny
// must-analysis: "x is definitely assigned", joined by intersection. The
// if-arm assigns, the else arm does not, so after the join the fact must
// be dropped; inside the loop the fact must stabilize without looping
// forever.
func TestForwardFixpointGenKill(t *testing.T) {
	g, fset := buildTestCFG(t, `
	if c {
		gen()
	} else {
		skip()
	}
	after()
	for i := 0; i < 3; i++ {
		gen()
	}
	end()`)
	type fact map[string]bool
	an := FlowAnalysis[fact]{
		Entry: func() fact { return fact{} },
		Transfer: func(b *Block, in fact) fact {
			out := in
			for _, n := range b.Nodes {
				if nodeText(fset, n) == "gen()" {
					cp := fact{}
					for k := range out {
						cp[k] = true
					}
					cp["x"] = true
					out = cp
				}
			}
			return out
		},
		Join: func(a, b fact) fact {
			out := fact{}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
	entry := ForwardFixpoint(g, an)
	after := blockWith(t, g, fset, "after()")
	if entry[after]["x"] {
		t.Fatalf("must-analysis: x cannot be definitely assigned after an if/else where only one arm assigns")
	}
	end := blockWith(t, g, fset, "end()")
	if got, ok := entry[end]; !ok {
		t.Fatalf("end block unreached by fixpoint")
	} else if got["x"] {
		t.Fatalf("must-analysis: the loop may run zero times, so x is not definitely assigned at end()")
	}
}
