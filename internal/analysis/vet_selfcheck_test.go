package analysis

import "testing"

// TestVetSelfCheck runs the full fractal-vet suite against this repository
// itself, so tier-1 verification (`go test ./...`) enforces the
// determinism, digest-safety, and error-handling invariants forever: a
// change that reads the wall clock in internal/netsim, draws from the
// global math/rand source, discards a codec error, leaves a VM opcode
// unhandled, or compares digests ad hoc fails this test.
func TestVetSelfCheck(t *testing.T) {
	loader := getLoader(t)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("module walk found no packages")
	}
	for _, pkg := range pkgs {
		for _, te := range pkg.TypeErrs {
			t.Errorf("%s: type error: %v", pkg.Path, te)
		}
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
