package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// OpcompleteAnalyzer checks the VM instruction set for completeness: every
// exported opcode constant of the defined type Op must have an assembler
// mnemonic registered in the opNames table and a handler case in the VM's
// dispatch switch. An opcode that can be encoded but not executed (or
// executed but not assembled) is exactly the drift this guards against as
// the instruction set grows.
var OpcompleteAnalyzer = &Analyzer{
	Name: "opcomplete",
	Doc:  "every VM opcode needs an assembler mnemonic and a dispatch-switch handler",
	Run:  runOpcomplete,
}

func runOpcomplete(pass *Pass) {
	opType := lookupOpType(pass.Pkg)
	if opType == nil {
		return // not a VM package
	}
	type opConst struct {
		name string
		pos  token.Pos
	}
	var ops []opConst
	for id, obj := range pass.Pkg.Info.Defs {
		c, ok := obj.(*types.Const)
		if !ok || !id.IsExported() || !types.Identical(c.Type(), opType) {
			continue
		}
		ops = append(ops, opConst{name: id.Name, pos: id.Pos()})
	}
	if len(ops) == 0 {
		return
	}

	mnemonics, namesPos := opNameKeys(pass)
	handled := dispatchCases(pass, opType)

	if mnemonics == nil {
		pass.Reportf(namesPos, "package defines %d Op constants but no opNames mnemonic table", len(ops))
		return
	}
	for _, op := range ops {
		if !mnemonics[op.name] {
			pass.Reportf(op.pos, "opcode %s has no assembler mnemonic in opNames", op.name)
		}
		if !handled[op.name] {
			pass.Reportf(op.pos, "opcode %s has no handler case in the VM dispatch switch", op.name)
		}
	}
}

// lookupOpType finds the defined integer type named Op in package scope.
func lookupOpType(pkg *Package) types.Type {
	if pkg.Types == nil {
		return nil
	}
	obj := pkg.Types.Scope().Lookup("Op")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	b, ok := tn.Type().Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	return tn.Type()
}

// opNameKeys collects the identifier keys of the opNames composite
// literal. The returned position anchors a missing-table diagnostic at the
// Op type declaration when the table is absent.
func opNameKeys(pass *Pass) (map[string]bool, token.Pos) {
	var keys map[string]bool
	anchor := token.NoPos
	for _, f := range pass.Pkg.Files {
		if anchor == token.NoPos {
			anchor = f.Pos()
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "opNames" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					keys = map[string]bool{}
					for _, el := range lit.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if id, ok := kv.Key.(*ast.Ident); ok {
							keys[id.Name] = true
						}
					}
				}
			}
		}
	}
	return keys, anchor
}

// dispatchCases returns the opcode constants handled by the largest switch
// over an Op-typed tag — the VM dispatch loop. Smaller Op switches (for
// example operand validation in Validate) do not count as handlers.
func dispatchCases(pass *Pass, opType types.Type) map[string]bool {
	best := map[string]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[sw.Tag]
			if !ok || !types.Identical(tv.Type, opType) {
				return true
			}
			cases := map[string]bool{}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if id, ok := e.(*ast.Ident); ok {
						cases[id.Name] = true
					}
				}
			}
			if len(cases) > len(best) {
				best = cases
			}
			return true
		})
	}
	return best
}
