package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// fixtureLoader is shared across fixture tests so the source importer's
// stdlib cache is built once.
var (
	fixtureLoaderOnce sync.Once
	fixtureLoader     *Loader
	fixtureLoaderErr  error
)

func getLoader(t *testing.T) *Loader {
	t.Helper()
	fixtureLoaderOnce.Do(func() {
		fixtureLoader, fixtureLoaderErr = NewLoader(".")
	})
	if fixtureLoaderErr != nil {
		t.Fatal(fixtureLoaderErr)
	}
	return fixtureLoader
}

// diagKey is the exact identity a fixture asserts: analyzer, file, line,
// and column.
type diagKey struct {
	analyzer string
	file     string
	line     int
	col      int
}

func (k diagKey) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", k.file, k.line, k.col, k.analyzer)
}

// parseWants extracts the expected diagnostics from //want markers in the
// fixture sources. Each marker lists space-separated analyzer:col pairs
// expected on its own line.
func parseWants(t *testing.T, dir string) []diagKey {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	var wants []diagKey
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, spec, ok := strings.Cut(line, "//want ")
			if !ok {
				continue
			}
			for _, field := range strings.Fields(spec) {
				name, colStr, ok := strings.Cut(field, ":")
				if !ok {
					t.Fatalf("%s:%d: malformed want field %q", file, i+1, field)
				}
				col, err := strconv.Atoi(colStr)
				if err != nil {
					t.Fatalf("%s:%d: malformed want column %q", file, i+1, field)
				}
				wants = append(wants, diagKey{analyzer: name, file: file, line: i + 1, col: col})
			}
		}
	}
	return wants
}

// checkFixture loads one fixture directory under the given import path,
// runs the analyzer, and compares the diagnostics against the //want
// markers exactly.
func checkFixture(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	loader := getLoader(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, asPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, te := range pkg.TypeErrs {
		t.Errorf("fixture %s failed to type-check: %v", dir, te)
	}
	want := parseWants(t, abs)
	var got []diagKey
	for _, d := range Run([]*Package{pkg}, []*Analyzer{a}) {
		got = append(got, diagKey{analyzer: d.Analyzer, file: d.File, line: d.Line, col: d.Col})
	}
	sortKeys(want)
	sortKeys(got)
	if len(want) != len(got) {
		t.Fatalf("fixture %s: got %d diagnostics, want %d\ngot:  %v\nwant: %v", dir, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("fixture %s: diagnostic %d at %s, want %s", dir, i, got[i], want[i])
		}
	}
}

func sortKeys(ks []diagKey) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].file != ks[j].file {
			return ks[i].file < ks[j].file
		}
		if ks[i].line != ks[j].line {
			return ks[i].line < ks[j].line
		}
		if ks[i].col != ks[j].col {
			return ks[i].col < ks[j].col
		}
		return ks[i].analyzer < ks[j].analyzer
	})
}

// The bad fixtures are loaded under the same import paths the analyzers
// scope to, so (for example) the simtime bad fixture demonstrates exactly
// what happens when a time.Now() call is introduced into internal/netsim:
// the suite — and therefore the self-check test — fails.
func TestSimtimeFixtures(t *testing.T) {
	checkFixture(t, SimtimeAnalyzer, filepath.Join("testdata", "simtime", "bad"), "fractal/internal/netsim")
	checkFixture(t, SimtimeAnalyzer, filepath.Join("testdata", "simtime", "good"), "fractal/internal/netsim")
}

func TestRawrandFixtures(t *testing.T) {
	checkFixture(t, RawrandAnalyzer, filepath.Join("testdata", "rawrand", "bad"), "fractal/internal/workload")
	checkFixture(t, RawrandAnalyzer, filepath.Join("testdata", "rawrand", "good"), "fractal/internal/workload")
}

func TestErrdiscardFixtures(t *testing.T) {
	checkFixture(t, ErrdiscardAnalyzer, filepath.Join("testdata", "errdiscard", "bad"), "fractal/internal/codec")
	checkFixture(t, ErrdiscardAnalyzer, filepath.Join("testdata", "errdiscard", "good"), "fractal/internal/codec")
}

func TestOpcompleteFixtures(t *testing.T) {
	checkFixture(t, OpcompleteAnalyzer, filepath.Join("testdata", "opcomplete", "bad"), "fractal/internal/mobilecode")
	checkFixture(t, OpcompleteAnalyzer, filepath.Join("testdata", "opcomplete", "good"), "fractal/internal/mobilecode")
}

func TestDigestsafeFixtures(t *testing.T) {
	checkFixture(t, DigestsafeAnalyzer, filepath.Join("testdata", "digestsafe", "bad"), "fractal/internal/mobilecode")
	checkFixture(t, DigestsafeAnalyzer, filepath.Join("testdata", "digestsafe", "good"), "fractal/internal/mobilecode")
}

func TestDeadlineFixtures(t *testing.T) {
	checkFixture(t, DeadlineAnalyzer, filepath.Join("testdata", "deadline", "bad"), "fractal/internal/inp")
	checkFixture(t, DeadlineAnalyzer, filepath.Join("testdata", "deadline", "good"), "fractal/internal/inp")
}

// TestDeadlineScope verifies unbounded conn I/O outside the networking
// packages (for example in a simulator) is not the deadline analyzer's
// business.
func TestDeadlineScope(t *testing.T) {
	loader := getLoader(t)
	abs, err := filepath.Abs(filepath.Join("testdata", "deadline", "bad"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, "fractal/internal/netsim")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run([]*Package{pkg}, []*Analyzer{DeadlineAnalyzer}) {
		// The fixture's allow annotation goes stale out of scope and is
		// rightly reported by allowcheck; only deadline findings themselves
		// would be a scoping bug.
		if d.Analyzer == DeadlineAnalyzer.Name {
			t.Fatalf("deadline fired outside its scope: %v", d)
		}
	}
}

// TestDigestsafeScope verifies comparisons outside the verification
// pipeline (for example the rsync encoder's dedup probe) are not flagged.
func TestDigestsafeScope(t *testing.T) {
	loader := getLoader(t)
	abs, err := filepath.Abs(filepath.Join("testdata", "digestsafe", "bad"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, "fractal/internal/codec")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{DigestsafeAnalyzer}); len(diags) != 0 {
		t.Fatalf("digestsafe fired outside its scope: %v", diags)
	}
}

func TestLockheldFixtures(t *testing.T) {
	checkFixture(t, LockheldAnalyzer, filepath.Join("testdata", "lockheld", "bad"), "fractal/internal/client")
	checkFixture(t, LockheldAnalyzer, filepath.Join("testdata", "lockheld", "good"), "fractal/internal/client")
}

// TestLockheldFleetFixtures pins the cross-shard fan-out discipline: a
// fleet-tier lock held across a shard send (topology push or routed
// negotiation) is reported, and the snapshot-then-send shape the real
// fleet.Fleet.PushAppMeta uses is clean.
func TestLockheldFleetFixtures(t *testing.T) {
	checkFixture(t, LockheldAnalyzer, filepath.Join("testdata", "lockheld", "fleet", "bad"), "fractal/internal/fleet")
	checkFixture(t, LockheldAnalyzer, filepath.Join("testdata", "lockheld", "fleet", "good"), "fractal/internal/fleet")
}

func TestWiretaintFixtures(t *testing.T) {
	checkFixture(t, WiretaintAnalyzer, filepath.Join("testdata", "wiretaint", "bad"), "fractal/internal/inp")
	checkFixture(t, WiretaintAnalyzer, filepath.Join("testdata", "wiretaint", "good"), "fractal/internal/inp")
}

// TestWiretaintInterFixtures pins the interprocedural taint paths: a
// wire length laundered through two call hops still reaches the sink
// (and is reported at the caller's argument), while caller-side guards,
// callee-internal clamps, and min() all sanitize.
func TestWiretaintInterFixtures(t *testing.T) {
	checkFixture(t, WiretaintAnalyzer, filepath.Join("testdata", "wiretaint", "inter", "bad"), "fractal/internal/inp")
	checkFixture(t, WiretaintAnalyzer, filepath.Join("testdata", "wiretaint", "inter", "good"), "fractal/internal/inp")
}

// TestLockheldInterFixtures pins the interprocedural lock discipline: a
// mutex held across a call to a transitively-blocking helper (conn I/O
// or a dial, one or two hops down) is reported; snapshot-then-call is
// clean.
func TestLockheldInterFixtures(t *testing.T) {
	checkFixture(t, LockheldAnalyzer, filepath.Join("testdata", "lockheld", "inter", "bad"), "fractal/internal/client")
	checkFixture(t, LockheldAnalyzer, filepath.Join("testdata", "lockheld", "inter", "good"), "fractal/internal/client")
}

// TestGoleakFixtures pins the goroutine-leak verdicts: spawns blocking
// on channels nobody closes (or looping forever) are reported; spawns
// tied to a context case, a package-closed channel, or visible
// buffering are clean.
func TestGoleakFixtures(t *testing.T) {
	checkFixture(t, GoleakAnalyzer, filepath.Join("testdata", "goleak", "bad"), "fractal/internal/client")
	checkFixture(t, GoleakAnalyzer, filepath.Join("testdata", "goleak", "good"), "fractal/internal/client")
}

func TestHotpathFixtures(t *testing.T) {
	checkFixture(t, HotpathAnalyzer, filepath.Join("testdata", "hotpath", "bad"), "fractal/internal/core")
	checkFixture(t, HotpathAnalyzer, filepath.Join("testdata", "hotpath", "good"), "fractal/internal/core")
}

// TestLockheldScope verifies lock discipline outside the concurrent
// serving-plane packages (for example a test helper package) is not the
// analyzer's business.
func TestLockheldScope(t *testing.T) {
	loader := getLoader(t)
	abs, err := filepath.Abs(filepath.Join("testdata", "lockheld", "bad"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, "fractal/internal/netsim")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run([]*Package{pkg}, []*Analyzer{LockheldAnalyzer}) {
		if d.Analyzer == LockheldAnalyzer.Name {
			t.Fatalf("lockheld fired outside its scope: %v", d)
		}
	}
}

// TestWiretaintScope verifies integers decoded outside the wire-facing
// packages are not treated as hostile.
func TestWiretaintScope(t *testing.T) {
	loader := getLoader(t)
	abs, err := filepath.Abs(filepath.Join("testdata", "wiretaint", "bad"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, "fractal/internal/netsim")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run([]*Package{pkg}, []*Analyzer{WiretaintAnalyzer}) {
		if d.Analyzer == WiretaintAnalyzer.Name {
			t.Fatalf("wiretaint fired outside its scope: %v", d)
		}
	}
}

// TestStaleAllowsForFlowAnalyzers verifies allowcheck covers the new
// analyzer names: an annotation naming lockheld/wiretaint/hotpath that
// suppresses nothing is itself reported.
func TestStaleAllowsForFlowAnalyzers(t *testing.T) {
	loader := getLoader(t)
	abs, err := filepath.Abs(filepath.Join("testdata", "allowstale"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, "fractal/internal/client")
	if err != nil {
		t.Fatal(err)
	}
	for _, te := range pkg.TypeErrs {
		t.Errorf("fixture failed to type-check: %v", te)
	}
	want := parseWants(t, abs)
	var got []diagKey
	for _, d := range Run([]*Package{pkg}, []*Analyzer{LockheldAnalyzer, WiretaintAnalyzer, HotpathAnalyzer}) {
		got = append(got, diagKey{analyzer: d.Analyzer, file: d.File, line: d.Line, col: d.Col})
	}
	sortKeys(want)
	sortKeys(got)
	if len(want) != len(got) {
		t.Fatalf("got %d diagnostics, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("diagnostic %d at %s, want %s", i, got[i], want[i])
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("", "")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("Select(\"\",\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := Select("simtime,rawrand", "")
	if err != nil || len(two) != 2 {
		t.Fatalf("enable list: got %d analyzers, err %v", len(two), err)
	}
	rest, err := Select("", "opcomplete")
	if err != nil || len(rest) != len(Analyzers())-1 {
		t.Fatalf("disable list: got %d analyzers, err %v", len(rest), err)
	}
	if _, err := Select("nope", ""); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}
