package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module under
// analysis.
type Package struct {
	Path     string // import path
	Dir      string
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	TypeErrs []error // non-fatal type errors (analysis degrades gracefully)
}

// Loader parses and type-checks the module's packages without any tooling
// beyond the standard library: module-internal imports are resolved by
// loading the imported directory recursively, and standard-library imports
// go through the source importer (which needs no precompiled export data).
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		d = parent
	}
}

// NewLoader builds a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(modBytes), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	// The source importer honours go/build's context; cgo-tagged files in
	// packages like net would otherwise defeat pure-source type checking.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// LoadAll loads every package of the module (skipping testdata and hidden
// directories), returning them sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			rel, err := filepath.Rel(l.ModuleDir, p)
			if err != nil {
				return err
			}
			if rel == "." {
				paths = append(paths, l.ModulePath)
			} else {
				paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// hasGoFiles reports whether dir directly contains non-test Go sources.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile selects the non-test Go files analysis runs over.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// Load parses and type-checks one module package by import path.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.ModuleDir
	if path != l.ModulePath {
		rel, ok := strings.CutPrefix(path, l.ModulePath+"/")
		if !ok {
			return nil, fmt.Errorf("analysis: %s is outside module %s", path, l.ModulePath)
		}
		dir = filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	}
	pkg, err := l.LoadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir parses and type-checks the Go package in dir under the given
// import path. The path does not need to exist inside the module, which
// lets fixture tests type-check testdata sources as if they lived in a
// scoped package such as fractal/internal/netsim.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go sources in %s", dir)
	}
	pkg := &Package{
		Path:  asPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{
		Importer:    importerFunc(func(p string) (*types.Package, error) { return l.importPkg(p) }),
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrs = append(pkg.TypeErrs, err) },
	}
	// Type errors are collected, not fatal: analyzers degrade to syntactic
	// checks on whatever Info the checker managed to fill in.
	tpkg, _ := conf.Check(asPath, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// importPkg resolves an import: module-internal paths recurse into the
// loader, everything else is standard library via the source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: %s failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
