package analysis

import (
	"path/filepath"
	"strings"
)

// SARIF output for CI: the Static Analysis Results Interchange Format
// (2.1.0), the shape code-scanning services ingest to annotate pull
// requests inline. The encoding is deliberately minimal — one run, one
// rule per analyzer, one result per diagnostic — and deterministic, so
// repeated runs over an unchanged tree produce byte-identical files.

// sarifLog is the document root.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	// RelatedLocations carries the other ends of an interprocedural
	// finding (decode site and callee sink, lock acquisition and blocking
	// leaf, the unguarded operation inside a leaked goroutine) so code
	// scanning renders the full chain, not just the report line.
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	Message          *sarifMessage         `json:"message,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF builds a SARIF 2.1.0 log from the diagnostics. moduleDir, when
// non-empty, is stripped from file paths so artifact URIs are
// repo-relative (what PR annotation needs); analyzers supplies the rule
// metadata, and the allowcheck pseudo-rule is always present because Run
// can emit it regardless of the enabled set.
func SARIF(diags []Diagnostic, analyzers []*Analyzer, moduleDir string) *sarifLog {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "allowcheck",
		ShortDescription: sarifMessage{Text: "flag //fractal:allow annotations that no longer suppress anything"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		var related []sarifLocation
		for _, r := range d.Related {
			if r.File == "" {
				continue
			}
			related = append(related, sarifLocation{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(r.File, moduleDir)},
					Region:           sarifRegion{StartLine: r.Line, StartColumn: r.Col},
				},
				Message: &sarifMessage{Text: r.Message},
			})
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(d.File, moduleDir)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
			RelatedLocations: related,
		})
	}
	return &sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "fractal-vet", Rules: rules}},
			Results: results,
		}},
	}
}

// sarifURI renders a diagnostic's file as a forward-slash URI relative to
// the module root (falling back to the absolute path for files outside
// it).
func sarifURI(file, moduleDir string) string {
	if moduleDir != "" {
		if rel, err := filepath.Rel(moduleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
