package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathPrefix marks a function whose allocs/op are pinned by the
// benchmark snapshots: `//fractal:hotpath` on the line above (or in the
// doc comment of) a function declaration opts it into per-call allocation
// checks.
const HotpathPrefix = "fractal:hotpath"

// HotpathAnalyzer checks annotated hot functions for constructs that
// allocate on every call: function literals capturing outer variables
// (heap-escaping closures), fmt formatting, map/slice composite literals
// inside loops, append growth in loops without preallocation, and
// interface boxing of non-pointer values. It is annotation-driven and runs
// in every package.
//
// Independent of annotations it also enforces the arena lifetime rule:
// a session-scoped buffer (arena.Session Bytes/Grow) is recycled when the
// connection releases its session, so storing one into a struct field, a
// package-level variable, or a channel would let the storage be
// overwritten under the escapee. The rare legitimate store — a field of
// an object that provably shares the session's lifetime — is annotated.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "flag per-call allocation constructs in functions annotated //fractal:hotpath, and session arena buffers escaping their lifetime scope",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		marked := hotpathLines(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkArenaEscape(pass, fd)
			if !isHotFunc(pass, fd, marked) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

// checkArenaEscape flags session-scoped arena buffers escaping into
// storage that outlives the session: struct fields, package-level
// variables, and channel sends. Taint starts at (*arena.Session)
// Bytes/Grow calls and propagates through local assignments (including
// slicing) to a fixpoint.
func checkArenaEscape(pass *Pass, fd *ast.FuncDecl) {
	tainted := map[*types.Var]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Rhs {
				if !arenaDerived(pass, as.Rhs[i], tainted) {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := pass.Pkg.Info.Defs[id].(*types.Var)
				if !ok {
					v, ok = pass.Pkg.Info.Uses[id].(*types.Var)
				}
				if ok && v != nil && !v.IsField() && !tainted[v] {
					tainted[v] = true
					changed = true
				}
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Rhs {
				if !arenaDerived(pass, n.Rhs[i], tainted) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.SelectorExpr:
					pass.Reportf(n.Lhs[i].Pos(),
						"session arena buffer stored into field %s outlives its session in %s; the storage is recycled at Session.Release (or annotate with //%s hotpath if the field shares the session's lifetime)",
						types.ExprString(lhs), fd.Name.Name, AllowPrefix)
				case *ast.Ident:
					if v, ok := pass.Pkg.Info.Uses[lhs].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						pass.Reportf(n.Lhs[i].Pos(),
							"session arena buffer stored into package variable %s outlives its session in %s (or annotate with //%s hotpath)",
							lhs.Name, fd.Name.Name, AllowPrefix)
					}
				}
			}
		case *ast.SendStmt:
			if arenaDerived(pass, n.Value, tainted) {
				pass.Reportf(n.Pos(),
					"session arena buffer sent on a channel escapes its session in %s; the storage is recycled at Session.Release (or annotate with //%s hotpath)",
					fd.Name.Name, AllowPrefix)
			}
		}
		return true
	})
}

// arenaDerived reports whether e evaluates to (or visibly contains) a
// session arena borrow: a direct Session.Bytes/Grow call, a tainted
// local, a slice/paren/address-of wrapper over one, or a composite
// literal embedding one.
func arenaDerived(pass *Pass, e ast.Expr, tainted map[*types.Var]bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := pass.Pkg.Info.Uses[e].(*types.Var)
		return ok && tainted[v]
	case *ast.CallExpr:
		return isSessionBorrow(pass, e)
	case *ast.SliceExpr:
		return arenaDerived(pass, e.X, tainted)
	case *ast.ParenExpr:
		return arenaDerived(pass, e.X, tainted)
	case *ast.UnaryExpr:
		return e.Op == token.AND && arenaDerived(pass, e.X, tainted)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if arenaDerived(pass, kv.Value, tainted) {
					return true
				}
			} else if arenaDerived(pass, elt, tainted) {
				return true
			}
		}
	}
	return false
}

// isSessionBorrow reports whether call borrows storage from an arena
// session ((*arena.Session).Bytes or Grow).
func isSessionBorrow(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	if named(sig.Recv().Type()) != "fractal/internal/arena.Session" {
		return false
	}
	return fn.Name() == "Bytes" || fn.Name() == "Grow"
}

// hotpathLines collects the lines on which a //fractal:hotpath comment
// ends, so a marker directly above a declaration is honoured even when the
// parser did not attach it as the doc comment.
func hotpathLines(f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, HotpathPrefix) {
				lines[-1] = true // marker seen somewhere; real check below
			}
		}
	}
	return lines
}

// isHotFunc reports whether fd carries the hotpath marker: in its doc
// comment, or as a standalone comment on the line directly above the
// declaration (above the doc comment counts too, matching how
// //fractal:allow binds to the following line).
func isHotFunc(pass *Pass, fd *ast.FuncDecl, marked map[int]bool) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), HotpathPrefix) {
				return true
			}
		}
	}
	if !marked[-1] {
		return false
	}
	declLine := pass.Fset.Position(fd.Pos()).Line
	if fd.Doc != nil {
		declLine = pass.Fset.Position(fd.Doc.Pos()).Line
	}
	for _, cg := range fileOf(pass, fd).Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, HotpathPrefix) {
				continue
			}
			if pass.Fset.Position(c.End()).Line == declLine-1 {
				return true
			}
		}
	}
	return false
}

// fileOf returns the *ast.File containing the declaration.
func fileOf(pass *Pass, fd *ast.FuncDecl) *ast.File {
	for _, f := range pass.Pkg.Files {
		if f.Pos() <= fd.Pos() && fd.End() <= f.End() {
			return f
		}
	}
	return nil
}

// checkHotFunc applies the per-call allocation checks to one annotated
// function, using its CFG (and those of nested literals) for loop depth.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	prealloc := preallocatedKeys(pass, fd.Body)
	for _, g := range funcCFGs(fd.Body) {
		for _, b := range g.Blocks {
			if b.Deferred {
				// The deferred-call replay duplicates expressions already
				// present in-line at the DeferStmt.
				continue
			}
			for _, node := range b.Nodes {
				checkHotNode(pass, fd, node, b.LoopDepth, prealloc)
			}
		}
	}
}

// preallocatedKeys records the expressions whose backing storage was
// visibly sized up front — `x := make([]T, 0, n)`, `x = slices.Grow(x, n)`,
// and composite-literal fields initialised with make — so append growth to
// them inside loops is amortised, not per-iteration.
func preallocatedKeys(pass *Pass, body *ast.BlockStmt) map[string]bool {
	keys := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lhsKey := types.ExprString(as.Lhs[i])
			switch r := rhs.(type) {
			case *ast.CallExpr:
				if isMakeCall(pass, r) || isGrowCall(pass, r) {
					keys[lhsKey] = true
				}
			case *ast.CompositeLit:
				for _, elt := range r.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if call, ok := kv.Value.(*ast.CallExpr); ok && isMakeCall(pass, call) {
						keys[lhsKey+"."+types.ExprString(kv.Key)] = true
					}
				}
			case *ast.SliceExpr:
				// x := buf[:0] reuses existing storage.
				keys[lhsKey] = true
			}
		}
		return true
	})
	return keys
}

func isMakeCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && bi.Name() == "make"
}

func isGrowCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "slices" && fn.Name() == "Grow"
}

// checkHotNode walks one block node reporting per-call allocation
// constructs. Nested function literals are not descended into (their
// bodies have their own CFGs); the literal itself is checked for captures.
func checkHotNode(pass *Pass, fd *ast.FuncDecl, node ast.Node, loopDepth int, prealloc map[string]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := capturedVar(pass, n); capt != nil {
				pass.Reportf(n.Pos(),
					"closure capturing %q allocates per call in hot function %s; hoist it to a named function or restructure (or annotate with //%s hotpath)",
					capt.Name(), fd.Name.Name, AllowPrefix)
			}
			return false
		case *ast.CompositeLit:
			if loopDepth > 0 && isMapOrSliceLit(pass, n) {
				pass.Reportf(n.Pos(),
					"map/slice literal inside a loop allocates per iteration in hot function %s; hoist it out of the loop (or annotate with //%s hotpath)",
					fd.Name.Name, AllowPrefix)
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, loopDepth, prealloc)
		}
		return true
	})
}

// capturedVar returns a variable the literal captures from an enclosing
// function scope (forcing both the closure and the variable to the heap),
// or nil when the literal only uses its own and package-level names.
func capturedVar(pass *Pass, lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own parameter or local
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: no capture
		}
		captured = v
		return false
	})
	return captured
}

// isMapOrSliceLit reports whether the composite literal builds a map or
// slice (both allocate; struct and array literals need not).
func isMapOrSliceLit(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.Pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

// checkHotCall flags fmt formatting, unpreallocated append growth in
// loops, and interface boxing of non-pointer values.
func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, loopDepth int, prealloc map[string]bool) {
	// fmt formatting allocates for the format machinery and boxes every
	// operand. fmt.Errorf is exempt: error paths are off the hot path.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			if fmtFormatting[fn.Name()] {
				pass.Reportf(call.Pos(),
					"fmt.%s formats (and boxes its operands) per call in hot function %s; build the string by hand (or annotate with //%s hotpath)",
					fn.Name(), fd.Name.Name, AllowPrefix)
			}
			return // don't double-report operand boxing on any fmt call
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if bi, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok {
			if bi.Name() == "append" && loopDepth > 0 && len(call.Args) > 0 {
				dst := types.ExprString(call.Args[0])
				if !prealloc[dst] {
					pass.Reportf(call.Pos(),
						"append to %s inside a loop without visible preallocation reallocates as it grows in hot function %s; size it with make(..., 0, n) first (or annotate with //%s hotpath)",
						dst, fd.Name.Name, AllowPrefix)
				}
			}
			return
		}
	}
	checkBoxing(pass, fd, call)
}

// fmtFormatting is the fmt API that formats into fresh storage.
var fmtFormatting = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// checkBoxing reports non-constant basic/struct/array values passed to
// interface parameters: converting them to an interface allocates.
func checkBoxing(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := pass.Pkg.Info.Types[arg]
		if !ok || atv.Type == nil || atv.Value != nil {
			continue // untyped or constant: may be folded, skip
		}
		switch atv.Type.Underlying().(type) {
		case *types.Basic, *types.Struct, *types.Array:
			pass.Reportf(arg.Pos(),
				"passing %s (%s) to an interface parameter boxes it on the heap per call in hot function %s; pass a pointer or avoid the interface (or annotate with //%s hotpath)",
				types.ExprString(arg), shortType(atv.Type), fd.Name.Name, AllowPrefix)
		}
	}
}

// shortType renders a type compactly for messages.
func shortType(t types.Type) string {
	s := t.String()
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	if len(s) > 40 {
		s = fmt.Sprintf("%.37s...", s)
	}
	return s
}
