package analysis

import (
	"go/ast"
	"go/token"
)

// This file builds intraprocedural control-flow graphs over Go statements
// — the substrate the flow-sensitive analyzers (lockheld, wiretaint,
// hotpath) run their dataflow fixpoints on. It is deliberately the same
// shape as the PR 5 bytecode verifier's CFG, but for the host language:
// basic blocks of leaf statements, explicit branch/loop/defer edges, and
// enough structure (loop depth, select/range markers) for the analyzers to
// stay simple.

// Edge is one control transfer between blocks. When Cond is non-nil the
// edge is taken iff Cond evaluates to true (Negated false) or false
// (Negated true); dataflow analyses can refine facts on such edges (the
// wiretaint bound-check sanitizer does).
type Edge struct {
	To      *Block
	Cond    ast.Expr
	Negated bool
}

// Block is one basic block: a maximal straight-line run of leaf statements
// and condition expressions in execution order. Compound statements are
// never stored whole — their pieces are distributed over blocks — so a
// node walk over Block.Nodes visits each leaf exactly once.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
	// LoopDepth counts the enclosing for/range loops of the block's
	// statements (0 = straight-line code).
	LoopDepth int
	// Deferred marks blocks of the synthetic exit chain that replays
	// deferred calls (in LIFO order) between every return and Exit.
	Deferred bool
	// Select is set on the head block of a select statement, so an
	// analyzer can treat the select itself as one (possibly blocking)
	// operation.
	Select *ast.SelectStmt
	// Range is set on the head block of a range loop; the ranged-over
	// expression was evaluated in a predecessor, but a channel range
	// blocks at the head on every iteration.
	Range *ast.RangeStmt
}

// CFG is the control-flow graph of one function body. Entry dominates all
// reachable blocks; every terminating path reaches Exit through the
// deferred-call chain.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// commStmt marks the communication clauses of select statements: their
	// channel operation blocks as part of the select, not on its own, so
	// analyzers report the select head instead.
	commStmt map[ast.Node]bool
}

// IsSelectComm reports whether n is the communication statement of a
// select case (its channel operation is the select's, not a free-standing
// blocking op).
func (g *CFG) IsSelectComm(n ast.Node) bool { return g.commStmt[n] }

// cfgBuilder holds the construction state for one function body.
type cfgBuilder struct {
	cfg       *CFG
	loopDepth int
	// ret collects every return and the fall-off end of the body; the
	// deferred chain is routed from it to Exit.
	ret    *Block
	defers []*ast.DeferStmt

	breakT, contT *Block
	labelBreak    map[string]*Block
	labelCont     map[string]*Block
	labelBlocks   map[string]*Block
	gotos         []pendingGoto
	// pendingLabel is the label wrapping the next loop/switch/select, so
	// labelled break/continue resolve to that construct's targets.
	pendingLabel string
	// nextCase is the fallthrough target inside a switch case body.
	nextCase *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:         &CFG{commStmt: map[ast.Node]bool{}},
		labelBreak:  map[string]*Block{},
		labelCont:   map[string]*Block{},
		labelBlocks: map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.ret = b.newBlock()
	end := b.stmt(body, b.cfg.Entry)
	b.edge(end, Edge{To: b.ret})
	for _, g := range b.gotos {
		if t, ok := b.labelBlocks[g.label]; ok {
			b.edge(g.from, Edge{To: t})
		}
	}
	// Deferred calls replay in LIFO order on the way to Exit. Conditionally
	// registered defers are replayed unconditionally — a sound
	// over-approximation for the release-style defers the analyzers track.
	cur := b.ret
	for i := len(b.defers) - 1; i >= 0; i-- {
		d := b.newBlock()
		d.Deferred = true
		d.Nodes = append(d.Nodes, b.defers[i].Call)
		b.edge(cur, Edge{To: d})
		cur = d
	}
	b.cfg.Exit = b.newBlock()
	b.edge(cur, Edge{To: b.cfg.Exit})
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks), LoopDepth: b.loopDepth}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from *Block, e Edge) {
	from.Succs = append(from.Succs, e)
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// stmt threads statement s through the graph starting at cur and returns
// the block where control continues. Diverging statements (return, break,
// goto) return a fresh unreachable block.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			cur = b.stmt(st, cur)
		}
		return cur

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		out := b.newBlock()
		then := b.newBlock()
		b.edge(cur, Edge{To: then, Cond: s.Cond})
		tend := b.stmt(s.Body, then)
		b.edge(tend, Edge{To: out})
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, Edge{To: els, Cond: s.Cond, Negated: true})
			eend := b.stmt(s.Else, els)
			b.edge(eend, Edge{To: out})
		} else {
			b.edge(cur, Edge{To: out, Cond: s.Cond, Negated: true})
		}
		return out

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		head := b.newBlock()
		out := b.newBlock()
		b.edge(cur, Edge{To: head})
		b.loopDepth++
		body := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, Edge{To: body, Cond: s.Cond})
			b.edge(head, Edge{To: out, Cond: s.Cond, Negated: true})
		} else {
			b.edge(head, Edge{To: body})
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		savedB, savedC := b.breakT, b.contT
		b.breakT, b.contT = out, post
		if label != "" {
			b.labelBreak[label], b.labelCont[label] = out, post
		}
		end := b.stmt(s.Body, body)
		b.edge(end, Edge{To: post})
		if s.Post != nil {
			pend := b.stmt(s.Post, post)
			b.edge(pend, Edge{To: head})
		}
		b.breakT, b.contT = savedB, savedC
		if label != "" {
			delete(b.labelBreak, label)
			delete(b.labelCont, label)
		}
		b.loopDepth--
		return out

	case *ast.RangeStmt:
		label := b.takeLabel()
		cur.Nodes = append(cur.Nodes, s.X)
		head := b.newBlock()
		head.Range = s
		out := b.newBlock()
		b.edge(cur, Edge{To: head})
		b.edge(head, Edge{To: out})
		b.loopDepth++
		body := b.newBlock()
		b.edge(head, Edge{To: body})
		savedB, savedC := b.breakT, b.contT
		b.breakT, b.contT = out, head
		if label != "" {
			b.labelBreak[label], b.labelCont[label] = out, head
		}
		end := b.stmt(s.Body, body)
		b.edge(end, Edge{To: head})
		b.breakT, b.contT = savedB, savedC
		if label != "" {
			delete(b.labelBreak, label)
			delete(b.labelCont, label)
		}
		b.loopDepth--
		return out

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchClauses(cur, label, s.Body, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchClauses(cur, label, s.Body, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.newBlock()
		head.Select = s
		b.edge(cur, Edge{To: head})
		out := b.newBlock()
		savedB := b.breakT
		b.breakT = out
		if label != "" {
			b.labelBreak[label] = out
		}
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(head, Edge{To: cb})
			end := cb
			if cc.Comm != nil {
				b.cfg.commStmt[cc.Comm] = true
				end = b.stmt(cc.Comm, end)
			}
			for _, st := range cc.Body {
				end = b.stmt(st, end)
			}
			b.edge(end, Edge{To: out})
		}
		b.breakT = savedB
		if label != "" {
			delete(b.labelBreak, label)
		}
		// A select with no cases blocks forever: head keeps zero edges.
		return out

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(cur, Edge{To: lb})
		b.labelBlocks[s.Label.Name] = lb
		saved := b.pendingLabel
		b.pendingLabel = s.Label.Name
		out := b.stmt(s.Stmt, lb)
		b.pendingLabel = saved
		return out

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			t := b.breakT
			if s.Label != nil {
				t = b.labelBreak[s.Label.Name]
			}
			if t != nil {
				b.edge(cur, Edge{To: t})
			}
		case token.CONTINUE:
			t := b.contT
			if s.Label != nil {
				t = b.labelCont[s.Label.Name]
			}
			if t != nil {
				b.edge(cur, Edge{To: t})
			}
		case token.GOTO:
			if t, ok := b.labelBlocks[s.Label.Name]; ok {
				b.edge(cur, Edge{To: t})
			} else {
				b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
			}
		case token.FALLTHROUGH:
			if b.nextCase != nil {
				b.edge(cur, Edge{To: b.nextCase})
			}
		}
		return b.newBlock() // unreachable continuation

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, Edge{To: b.ret})
		return b.newBlock()

	case *ast.DeferStmt:
		// The registration point stays in line (arguments are evaluated
		// here); the call itself replays in the exit chain.
		cur.Nodes = append(cur.Nodes, s)
		b.defers = append(b.defers, s)
		return cur

	case *ast.EmptyStmt:
		return cur

	default:
		// Leaf statements: assignments, expressions, sends, declarations,
		// inc/dec, go statements.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchClauses builds the shared case-dispatch shape of switch and type
// switch. valueCases controls whether clause expressions are recorded as
// evaluated nodes (type-switch case lists name types, not values).
func (b *cfgBuilder) switchClauses(cur *Block, label string, body *ast.BlockStmt, valueCases bool) *Block {
	out := b.newBlock()
	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		clauses = append(clauses, cl.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		bodies[i] = b.newBlock()
		b.edge(cur, Edge{To: bodies[i]})
		if cc.List == nil {
			hasDefault = true
		} else if valueCases {
			for _, e := range cc.List {
				bodies[i].Nodes = append(bodies[i].Nodes, e)
			}
		}
	}
	if !hasDefault {
		b.edge(cur, Edge{To: out})
	}
	savedB := b.breakT
	b.breakT = out
	if label != "" {
		b.labelBreak[label] = out
	}
	for i, cc := range clauses {
		savedNext := b.nextCase
		if i+1 < len(clauses) {
			b.nextCase = bodies[i+1]
		} else {
			b.nextCase = nil
		}
		end := bodies[i]
		for _, st := range cc.Body {
			end = b.stmt(st, end)
		}
		b.nextCase = savedNext
		b.edge(end, Edge{To: out})
	}
	b.breakT = savedB
	if label != "" {
		delete(b.labelBreak, label)
	}
	return out
}

// funcCFGs builds a CFG for fn's body plus one per nested function
// literal, so each function (named or anonymous) is analyzed with its own
// entry state. The FuncLit bodies are not reachable through the enclosing
// CFG's nodes-walks because analyzers skip FuncLit subtrees.
func funcCFGs(body *ast.BlockStmt) []*CFG {
	out := []*CFG{BuildCFG(body)}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, BuildCFG(lit.Body))
		}
		return true
	})
	return out
}
