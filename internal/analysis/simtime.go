package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// simtimeScope lists the packages where wall-clock time sources are
// forbidden. netsim, experiment, and core must be strictly deterministic —
// simulated time flows through netsim.Clock — while the protocol servers
// (cdn, appserver, proxy) are in scope so that their genuine real-I/O
// sites (socket read deadlines, serving-path metrics) carry checked
// //fractal:allow simtime annotations instead of silently drifting.
// faultnet is in scope because its injection decisions must never depend
// on the wall clock: only a stall blocks, and only until the victim's own
// deadline fires (time.Until/NewTimer are not in the forbidden set).
var simtimeScope = map[string]bool{
	"fractal/internal/netsim":     true,
	"fractal/internal/experiment": true,
	"fractal/internal/core":       true,
	"fractal/internal/cdn":        true,
	"fractal/internal/appserver":  true,
	"fractal/internal/proxy":      true,
	"fractal/internal/faultnet":   true,
	// fleet's latency histograms and routing feed the load harness's
	// simulated figures; a wall-clock read here would make the committed
	// BENCH_fleet.json figures machine-dependent.
	"fractal/internal/fleet": true,
}

// simtimeForbidden are the time package functions that read or block on
// the wall clock.
var simtimeForbidden = map[string]bool{
	"Now":   true,
	"Sleep": true,
	"After": true,
	"Tick":  true,
}

// SimtimeAnalyzer forbids wall-clock time in simulation-deterministic
// packages.
var SimtimeAnalyzer = &Analyzer{
	Name: "simtime",
	Doc:  "forbid time.Now/Sleep/After in simulation-deterministic packages; use netsim.Clock",
	Run:  runSimtime,
}

func runSimtime(pass *Pass) {
	if !simtimeScope[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !simtimeForbidden[sel.Sel.Name] {
				return true
			}
			if packageOf(pass, f, sel) != "time" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s is wall-clock time in simulation-deterministic package %s; route virtual time through netsim.Clock (or annotate a genuine real-I/O site with //%s simtime)",
				sel.Sel.Name, pass.Pkg.Path, AllowPrefix)
			return true
		})
	}
}

// packageOf resolves the import path of the package a qualified selector's
// base identifier denotes, or "" if it is not a package reference. It
// prefers type information and falls back to matching the file's imports
// when type checking was incomplete.
func packageOf(pass *Pass, file *ast.File, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj, ok := pass.Pkg.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // a variable or type, not a package qualifier
	}
	// Syntactic fallback: match the identifier against the file imports.
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else {
			name = path[strings.LastIndex(path, "/")+1:]
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}
