package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// goleakScope lists the packages whose goroutines serve live traffic: a
// goroutine there that blocks forever on a channel nobody closes is a
// session leaked per stalled peer — the shape behind the PR 7 sessMu
// stall. Harness and simulation packages spawn plenty of goroutines too,
// but their lifetimes end with the test process.
var goleakScope = map[string]bool{
	"fractal/internal/client":          true,
	"fractal/internal/proxy":           true,
	"fractal/internal/fleet":           true,
	"fractal/internal/inp":             true,
	"fractal/internal/inp/conformance": true,
}

// GoleakAnalyzer reports `go` statements whose goroutine is not tied to
// an exit signal on every path: it blocks on a channel that is never
// closed in its package, has no context/deadline case, and loops with no
// way out. The verdicts come from the summary engine's spawn-site
// analysis (summary.go); this analyzer only scopes and reports them.
var GoleakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc:  "flag goroutines whose exit is not tied to a context/close/deadline signal",
	Run:  runGoleak,
}

func runGoleak(pass *Pass) {
	if !goleakScope[pass.Pkg.Path] || pass.Prog == nil {
		return
	}
	for _, pf := range pass.Prog.order {
		if pf.Pkg != pass.Pkg || pf.Summary == nil {
			continue
		}
		for _, sp := range pf.Summary.Spawns {
			if sp.Tied {
				continue
			}
			pass.ReportRelated(sp.GoPos,
				[]Related{pass.RelatedAt(sp.ObPos, "the operation with no exit signal")},
				"goroutine spawned in %s can block forever: %s has no context/close/deadline tie on this path (select on a done signal, close the channel at shutdown, or annotate with //%s goleak)",
				pf.Fn.Name(), sp.ObDesc, AllowPrefix)
		}
	}
}

// chanFacts is the per-package channel knowledge the obligation analysis
// keys off: which channel objects (locals, package variables, struct
// fields) are closed somewhere in the package, and which are visibly
// buffered at their make site.
type chanFacts struct {
	closed   map[types.Object]bool
	buffered map[types.Object]bool
}

// collectChanFacts walks every file of the package once.
func collectChanFacts(pkg *Package) *chanFacts {
	facts := &chanFacts{closed: map[types.Object]bool{}, buffered: map[types.Object]bool{}}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) == 1 {
					if bi, ok := pkg.Info.Uses[id].(*types.Builtin); ok && bi.Name() == "close" {
						if obj := chanObj(pkg, n.Args[0]); obj != nil {
							facts.closed[obj] = true
						}
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Rhs {
					if isBufferedMakeChan(pkg, n.Rhs[i]) {
						if obj := chanObj(pkg, n.Lhs[i]); obj != nil {
							facts.buffered[obj] = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) && isBufferedMakeChan(pkg, n.Values[i]) {
						if obj := pkg.Info.Defs[name]; obj != nil {
							facts.buffered[obj] = true
						}
					}
				}
			case *ast.KeyValueExpr:
				// Server{sem: make(chan struct{}, n)} records the field.
				if isBufferedMakeChan(pkg, n.Value) {
					if id, ok := n.Key.(*ast.Ident); ok {
						if obj := pkg.Info.Uses[id]; obj != nil {
							facts.buffered[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return facts
}

// isBufferedMakeChan reports whether e is make(chan T, n) with a capacity
// that is not the constant 0: the sends the capacity was sized for do not
// block.
func isBufferedMakeChan(pkg *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := pkg.Info.Uses[id].(*types.Builtin)
	if !ok || bi.Name() != "make" {
		return false
	}
	if tv, ok := pkg.Info.Types[call.Args[0]]; !ok || tv.Type == nil {
		return false
	} else if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	if tv, ok := pkg.Info.Types[call.Args[1]]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && v == 0 {
			return false
		}
	}
	return true
}

// chanObj resolves a channel expression to its package-level identity: a
// local/package variable or a struct field object (shared by every
// instance of the struct — close(s.done) anywhere ties s.done
// everywhere, which is exactly the close-at-shutdown contract).
func chanObj(pkg *Package, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return chanObj(pkg, e.X)
	case *ast.Ident:
		if obj := pkg.Info.Uses[e]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[e.Sel]
	}
	return nil
}

// tiedChanExpr reports whether the channel expression is an exit signal
// or otherwise cannot park the goroutine forever: a context Done
// channel, a timer/ticker channel, a channel closed somewhere in the
// package, a visibly buffered channel (bounded handoff), or a channel
// whose name declares it a shutdown signal.
func tiedChanExpr(pkg *Package, facts *chanFacts, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return tiedChanExpr(pkg, facts, e.X)
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Done" {
				return true // ctx.Done() and anything shaped like it
			}
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
				switch fn.Name() {
				case "After", "Tick":
					return true
				}
			}
		}
		return false
	case *ast.SelectorExpr:
		// timer.C / ticker.C fire on a deadline.
		if e.Sel.Name == "C" {
			if tv, ok := pkg.Info.Types[e.X]; ok && tv.Type != nil {
				switch named(tv.Type) {
				case "time.Timer", "time.Ticker":
					return true
				}
			}
		}
	}
	obj := chanObj(pkg, e)
	if obj == nil {
		return false
	}
	if facts.closed[obj] || facts.buffered[obj] {
		return true
	}
	return doneLikeName(obj.Name())
}

// doneLikeName matches the shutdown-signal naming conventions.
func doneLikeName(name string) bool {
	l := strings.ToLower(name)
	for _, m := range []string{"done", "stop", "quit", "close", "exit", "cancel", "shutdown"} {
		if strings.Contains(l, m) {
			return true
		}
	}
	return false
}
