package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The bottom-up function-summary engine. For every function of the
// analyzed package set (in the call graph's bottom-up order, iterating
// cycles to a fixpoint) it computes:
//
//	(a) taint transfer  — which results carry wire-derived integers
//	    (TaintSpec per result: unconditionally, or conditionally on the
//	    taint of specific parameters) and which integer parameters reach
//	    an allocation-size sink (make, slices.Grow, io.CopyN) unchecked
//	    — possibly through further calls;
//	(b) blocking        — whether the function may block indefinitely on a
//	    peer or another goroutine (conn I/O, INP frame/Conn calls,
//	    channel operations, singleflight joins, dials, sleeps), directly
//	    or transitively through in-set callees;
//	(c) goroutine
//	    obligations     — every `go` statement in the function, with a
//	    verdict on whether the spawned goroutine's exit is tied to a
//	    context/close/deadline signal (the goleak analyzer's input).
//
// Summaries let the flow-sensitive analyzers (wiretaint, lockheld,
// goleak) see one call deep — and, because summaries compose, arbitrarily
// many calls deep — without ever inlining bodies.

// FuncSummary is the interprocedural abstract of one function.
type FuncSummary struct {
	// Blocking behaviour.
	Blocks    bool
	BlockPos  token.Pos // earliest site in this function that may block
	BlockDesc string    // what that site is
	LeafPos   token.Pos // the ultimate primitive operation (== BlockPos when direct)
	LeafDesc  string

	// Taint transfer.
	Results    []TaintSpec      // per result, in signature order
	SinkParams map[int]SinkSite // parameter index → the sink it reaches

	// Goroutine obligations.
	Spawns []SpawnSite
}

// TaintSpec describes the taint of one function result.
type TaintSpec struct {
	// Always marks a result that is wire-derived regardless of the
	// arguments (the function is itself a decoder); SrcPos is the decode
	// site that introduces the taint.
	Always bool
	SrcPos token.Pos
	// Params is a bitmask of parameter indices: the result is tainted iff
	// any of those arguments is tainted at the call site.
	Params uint64
}

// SinkSite is the allocation sink a tainted parameter reaches.
type SinkSite struct {
	Pos  token.Pos
	Desc string
}

// SpawnSite is one `go` statement and its exit-signal verdict.
type SpawnSite struct {
	GoPos token.Pos
	Tied  bool
	// For untied spawns, the first obligation that can block forever.
	ObPos  token.Pos
	ObDesc string
}

// summarize computes every summary bottom-up, iterating each call-graph
// cycle until its members stabilize.
func (p *Program) summarize() {
	for i := 0; i < len(p.order); {
		j := i
		id := p.sccID[p.order[i]]
		for j < len(p.order) && p.sccID[p.order[j]] == id {
			j++
		}
		batch := p.order[i:j]
		for _, pf := range batch {
			pf.Summary = &FuncSummary{}
		}
		for round := 0; ; round++ {
			changed := false
			for _, pf := range batch {
				ns := p.computeSummary(pf)
				if !summaryEqual(pf.Summary, ns) {
					changed = true
				}
				pf.Summary = ns
			}
			// A monotone lattice over a finite SCC converges; the round cap
			// is a backstop against a non-monotone bug, not a budget.
			if !changed || round > len(batch)+8 {
				break
			}
		}
		i = j
	}
	for _, pf := range p.order {
		pf.Summary.Spawns = p.spawnSites(pf)
	}
}

// computeSummary builds one function's summary against the current
// (possibly still converging) summaries of its callees.
func (p *Program) computeSummary(pf *ProgFunc) *FuncSummary {
	s := &FuncSummary{}
	p.summarizeBlocking(pf, s)
	summarizeTaint(p, pf, s)
	return s
}

func summaryEqual(a, b *FuncSummary) bool {
	if a.Blocks != b.Blocks || a.BlockPos != b.BlockPos || len(a.Results) != len(b.Results) || len(a.SinkParams) != len(b.SinkParams) {
		return false
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			return false
		}
	}
	for k, v := range a.SinkParams {
		if b.SinkParams[k] != v {
			return false
		}
	}
	return true
}

// summarizeBlocking scans the body for the earliest operation that may
// block: a primitive blocking call (the lockheld leaf set), a channel
// operation outside a select-with-default, a defaultless select, a range
// over a channel, or a call to an in-set function whose summary blocks.
// Function-literal bodies and `go` statements are excluded — they do not
// block the caller at this point (literals are summarized only through
// the named functions that invoke them; a spawn's blocking belongs to the
// spawned goroutine).
func (p *Program) summarizeBlocking(pf *ProgFunc, s *FuncSummary) {
	note := func(pos token.Pos, desc string, leafPos token.Pos, leafDesc string) {
		if s.Blocks && s.BlockPos <= pos {
			return
		}
		s.Blocks = true
		s.BlockPos, s.BlockDesc = pos, desc
		s.LeafPos, s.LeafDesc = leafPos, leafDesc
	}
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.SelectStmt:
				if !selectHasDefault(n) && len(n.Body.List) > 0 {
					note(n.Pos(), "select with no default", n.Pos(), "select with no default")
				}
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							walk(st)
						}
					}
				}
				return false
			case *ast.SendStmt:
				note(n.Pos(), "channel send", n.Pos(), "channel send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					note(n.Pos(), "channel receive", n.Pos(), "channel receive")
				}
			case *ast.RangeStmt:
				if isChannelType(pkgAsPass(pf.Pkg), n.X) {
					note(n.Pos(), "range over channel", n.Pos(), "range over channel")
				}
			case *ast.CallExpr:
				if desc, ok := blockingCall(pkgAsPass(pf.Pkg), n); ok {
					note(n.Pos(), desc, n.Pos(), desc)
					return true
				}
				if callee := p.resolve(pf, n); callee != nil && callee.Summary != nil && callee.Summary.Blocks {
					cs := callee.Summary
					note(n.Pos(),
						fmt.Sprintf("call to %s (may block: %s)", shortFuncName(callee), cs.LeafDesc),
						cs.LeafPos, cs.LeafDesc)
				}
			}
			return true
		})
	}
	walk(pf.Decl.Body)
}

// pkgAsPass adapts a Package to the *Pass the shared helpers take (they
// only touch Pkg.Info).
func pkgAsPass(pkg *Package) *Pass { return &Pass{Pkg: pkg, Fset: pkg.Fset} }

// shortFuncName renders a function compactly: "inp.ReadMessage",
// "proxy.Proxy.Negotiate".
func shortFuncName(pf *ProgFunc) string {
	fn := pf.Fn
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name() + "."
	}
	if pf.Decl.Recv != nil && len(pf.Decl.Recv.List) > 0 {
		recv := pf.Decl.Recv.List[0].Type
		if star, ok := recv.(*ast.StarExpr); ok {
			recv = star.X
		}
		if id, ok := recv.(*ast.Ident); ok {
			return pkgName + id.Name + "." + fn.Name()
		}
	}
	return pkgName + fn.Name()
}

// spawnSites analyzes every `go` statement in pf (including inside nested
// literals — each distinct `go` is one site). A spawn whose target cannot
// be resolved to a body (interface method, func value from elsewhere)
// yields no site: the analyzer stays silent rather than guessing.
func (p *Program) spawnSites(pf *ProgFunc) []SpawnSite {
	var out []SpawnSite
	ast.Inspect(pf.Decl.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body, bodyPkg := p.spawnTarget(pf, gs)
		if body == nil {
			return true
		}
		ob := p.obligation(bodyPkg, body)
		site := SpawnSite{GoPos: gs.Pos(), Tied: ob == nil}
		if ob != nil {
			site.ObPos, site.ObDesc = ob.pos, ob.desc
		}
		out = append(out, site)
		return true
	})
	return out
}

// spawnTarget resolves the body the spawned goroutine runs: a literal's
// body, or the declaration of a directly named in-set function.
func (p *Program) spawnTarget(pf *ProgFunc, gs *ast.GoStmt) (ast.Node, *Package) {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, pf.Pkg
	}
	if callee := p.resolve(pf, gs.Call); callee != nil {
		return callee.Decl.Body, callee.Pkg
	}
	return nil, nil
}

// oblig is one operation that can park the goroutine forever.
type oblig struct {
	pos  token.Pos
	desc string
}

// obligation scans a goroutine body for the earliest operation not tied
// to an exit signal: a channel send/receive/range on a channel that is
// never closed in its package, carries no done-like name, and has no
// visible buffering; a defaultless select none of whose cases receives
// from such a signal; or an endless `for` with no break/return/goto. A
// nil result means every path is tied.
func (p *Program) obligation(pkg *Package, body ast.Node) *oblig {
	facts := p.chans[pkg]
	if facts == nil {
		facts = collectChanFacts(pkg)
		p.chans[pkg] = facts
	}
	var best *oblig
	note := func(pos token.Pos, desc string) {
		if best == nil || pos < best.pos {
			best = &oblig{pos: pos, desc: desc}
		}
	}
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				// Nested literals run only if called; nested spawns are
				// their own sites.
				return false
			case *ast.SelectStmt:
				if selectHasDefault(n) {
					// Non-blocking by construction; case bodies still count.
				} else if !selectTied(pkg, facts, n) {
					note(n.Pos(), "select with no default and no context/close-tied case")
				}
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							walk(st)
						}
					}
				}
				return false
			case *ast.SendStmt:
				if !tiedChanExpr(pkg, facts, n.Chan) {
					note(n.Pos(), fmt.Sprintf("send on %q", exprText(n.Chan)))
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !tiedChanExpr(pkg, facts, n.X) {
					note(n.Pos(), fmt.Sprintf("receive from %q", exprText(n.X)))
				}
			case *ast.RangeStmt:
				if isChannelType(pkgAsPass(pkg), n.X) && !tiedChanExpr(pkg, facts, n.X) {
					note(n.Pos(), fmt.Sprintf("range over %q", exprText(n.X)))
				}
			case *ast.ForStmt:
				if n.Cond == nil && !loopHasExit(n) {
					note(n.Pos(), "endless for loop with no break/return")
				}
			}
			return true
		})
	}
	walk(body)
	return best
}

// selectTied reports whether any case of the select receives from an
// exit-signal channel — the shape that lets the goroutine observe
// shutdown however long the other cases stall.
func selectTied(pkg *Package, facts *chanFacts, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if ue, ok := comm.X.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				recv = ue.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if ue, ok := comm.Rhs[0].(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					recv = ue.X
				}
			}
		}
		if recv != nil && tiedChanExpr(pkg, facts, recv) {
			return true
		}
	}
	return false
}

// loopHasExit reports whether an endless for loop contains any statement
// that can leave it (return, break, goto) outside nested function
// literals. Breaks of nested loops count too — a deliberate
// under-approximation that keeps the check quiet on intricate loops.
func loopHasExit(loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.CallExpr:
			// panic/Fatal-style calls end the goroutine too; the vet run
			// only needs "can this loop ever stop".
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprText renders a channel expression for messages, bounded.
func exprText(e ast.Expr) string {
	s := strings.TrimSpace(types.ExprString(e))
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}
