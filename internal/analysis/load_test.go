package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out files under root from rel-path -> content.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFindModuleRootMissing(t *testing.T) {
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Fatal("FindModuleRoot found a go.mod above a bare temp dir")
	}
}

func TestNewLoaderNoModuleDirective(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{"go.mod": "// no module line\n"})
	if _, err := NewLoader(dir); err == nil || !strings.Contains(err.Error(), "no module directive") {
		t.Fatalf("NewLoader error = %v, want a no-module-directive error", err)
	}
}

// newTempLoader builds a loader over a scratch module.
func newTempLoader(t *testing.T, files map[string]string) *Loader {
	t.Helper()
	dir := t.TempDir()
	all := map[string]string{"go.mod": "module scratch\n\ngo 1.24\n"}
	for k, v := range files {
		all[k] = v
	}
	writeTree(t, dir, all)
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLoadOutsideModule(t *testing.T) {
	l := newTempLoader(t, nil)
	if _, err := l.Load("othermod/pkg"); err == nil || !strings.Contains(err.Error(), "outside module") {
		t.Fatalf("Load error = %v, want an outside-module error", err)
	}
}

func TestLoadDirMissing(t *testing.T) {
	l := newTempLoader(t, nil)
	if _, err := l.LoadDir(filepath.Join(l.ModuleDir, "nope"), "scratch/nope"); err == nil {
		t.Fatal("LoadDir succeeded on a missing directory")
	}
}

func TestLoadDirNoSources(t *testing.T) {
	l := newTempLoader(t, map[string]string{
		"empty/README.md":      "not Go\n",
		"empty/skip_test.go":   "package empty\n", // test files are not analyzed
		"empty/sub/deeper.txt": "also not Go\n",
	})
	if _, err := l.LoadDir(filepath.Join(l.ModuleDir, "empty"), "scratch/empty"); err == nil || !strings.Contains(err.Error(), "no Go sources") {
		t.Fatalf("LoadDir error = %v, want a no-Go-sources error", err)
	}
}

func TestLoadDirParseError(t *testing.T) {
	l := newTempLoader(t, map[string]string{
		"broken/broken.go": "package broken\n\nfunc oops( {\n",
	})
	if _, err := l.LoadDir(filepath.Join(l.ModuleDir, "broken"), "scratch/broken"); err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Fatalf("LoadDir error = %v, want a parse error", err)
	}
}

func TestLoadImportCycle(t *testing.T) {
	l := newTempLoader(t, map[string]string{
		"a/a.go": "package a\n\nimport \"scratch/b\"\n\nvar A = b.B\n",
		"b/b.go": "package b\n\nimport \"scratch/a\"\n\nvar B = a.A\n",
	})
	pkg, err := l.Load("scratch/a")
	if err != nil {
		// The cycle may surface as a load error on the first package...
		if !strings.Contains(err.Error(), "import cycle") {
			t.Fatalf("Load error = %v, want an import-cycle error", err)
		}
		return
	}
	// ...or land in the type errors of whichever package's check hit the
	// back edge (b imports a while a is still loading, so b records it and
	// a then checks against b's partial result). Either way the loader
	// must terminate and say "cycle" somewhere.
	pkgs := []*Package{pkg}
	if b := l.pkgs["scratch/b"]; b != nil {
		pkgs = append(pkgs, b)
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrs {
			if strings.Contains(te.Error(), "import cycle") {
				return
			}
		}
	}
	t.Fatalf("import cycle not reported; a.TypeErrs = %v", pkg.TypeErrs)
}

// TestLoadDirTypeErrorsNonFatal pins the degrade-gracefully contract: a
// package with type errors still loads (with Info partially filled) and
// the suite runs over it without panicking.
func TestLoadDirTypeErrorsNonFatal(t *testing.T) {
	l := newTempLoader(t, map[string]string{
		"semibad/semibad.go": "package semibad\n\nfunc F() int {\n\treturn undefinedIdent\n}\n",
	})
	pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, "semibad"), "scratch/semibad")
	if err != nil {
		t.Fatalf("LoadDir failed hard on a type error: %v", err)
	}
	if len(pkg.TypeErrs) == 0 {
		t.Fatal("type error not collected in TypeErrs")
	}
	// The full suite (including the interprocedural program build) must
	// tolerate the partial Info.
	if diags := Run([]*Package{pkg}, Analyzers()); diags != nil {
		for _, d := range diags {
			t.Errorf("unexpected diagnostic on type-broken package: %v", d)
		}
	}
}

// TestLoaderCachesPackages verifies Load memoizes: the same *Package
// pointer comes back, so cross-package object identity (which the call
// graph depends on) holds.
func TestLoaderCachesPackages(t *testing.T) {
	l := newTempLoader(t, map[string]string{
		"p/p.go": "package p\n\nfunc F() int { return 1 }\n",
	})
	first, err := l.Load("scratch/p")
	if err != nil {
		t.Fatal(err)
	}
	second, err := l.Load("scratch/p")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("Load did not memoize the package")
	}
}
