// Package fleet is Fractal's multi-proxy tier: rendezvous-hash routing of
// client sessions across N adaptation-proxy shards, cross-shard
// adaptation-cache coherence (digest-keyed invalidation fan-out on
// topology pushes, optional warm-path replication of freshly searched
// entries), and the fixed-bucket latency histograms the fleet load
// harness reports through. The paper evaluates one proxy (Figures 9–11);
// this package is the piece that turns "one proxy, a handful of clients"
// into "N shards, a million simulated sessions" without touching the INP
// wire: the front router speaks to each shard through the same in-process
// negotiation entry points the single-proxy deployment uses.
package fleet

import "fmt"

// Router assigns canonical session keys to shards by highest random
// weight (rendezvous) hashing: every (key, shard) pair gets a pseudorandom
// 64-bit score and the key lives on the shard with the highest score.
// Unlike a mod-N table, membership changes are minimally disruptive —
// adding or removing one shard moves only the keys whose top score
// involved that shard, ~1/N of them — and unlike a consistent-hash ring
// there are no virtual-node tables to size or rebalance: the score is
// recomputed from (key hash, shard seed) on every lookup.
//
// A Router is immutable after construction and therefore safe for
// concurrent use.
type Router struct {
	names []string
	seeds []uint64
}

// NewRouter builds a router over the named shards. Names must be
// non-empty and unique: the shard's score stream is derived from its
// name, so a duplicate name would be the same shard twice.
func NewRouter(names []string) (*Router, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("fleet: router needs at least one shard")
	}
	r := &Router{names: append([]string(nil), names...), seeds: make([]uint64, len(names))}
	seen := map[string]bool{}
	for i, name := range r.names {
		if name == "" {
			return nil, fmt.Errorf("fleet: shard %d has an empty name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("fleet: duplicate shard name %q", name)
		}
		seen[name] = true
		r.seeds[i] = mix64(hash64(name))
	}
	return r, nil
}

// Shards reports the number of shards routed over.
func (r *Router) Shards() int { return len(r.names) }

// Name returns the i'th shard's name.
func (r *Router) Name(i int) string { return r.names[i] }

// Shard returns the index of the shard owning key: the one whose
// (key, shard) score is highest. Ties — a 2^-64 event — resolve to the
// lower index, deterministically.
//
//fractal:hotpath one routing decision per fleet session
func (r *Router) Shard(key string) int {
	h := hash64(key)
	best := 0
	bestScore := mix64(h ^ r.seeds[0])
	for i := 1; i < len(r.seeds); i++ {
		if score := mix64(h ^ r.seeds[i]); score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// TopK fills out with the indices of the k highest-scoring shards for
// key, best first, and returns the filled prefix. out's capacity bounds
// the work; no allocation occurs. The prefix [0] equals Shard(key); the
// rest are the key's rendezvous successors — where the key would move if
// higher-ranked shards left, and therefore where warm-path replication
// pays off.
//
//fractal:hotpath replication ranking on every cold fill
func (r *Router) TopK(key string, k int, out []int) []int {
	n := len(r.seeds)
	if k > n {
		k = n
	}
	if k <= 0 {
		return out[:0]
	}
	out = out[:0]
	h := hash64(key)
	// Selection by repeated scan: k and n are both small (k <= replicas,
	// n = shard count), so the quadratic bound beats sorting's allocation.
	for len(out) < k {
		best := -1
		var bestScore uint64
		for i := 0; i < n; i++ {
			taken := false
			for _, o := range out {
				if o == i {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			if score := mix64(h ^ r.seeds[i]); best < 0 || score > bestScore {
				best, bestScore = i, score
			}
		}
		out = append(out, best)
	}
	return out
}

// hash64 is FNV-1a over the key bytes: allocation-free and stable across
// processes, so a snapshot taken on one host routes identically on
// another.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the SplitMix64 finalizer: a full-avalanche bijection that
// turns the xor of key hash and shard seed into an independent uniform
// score per (key, shard) pair.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
