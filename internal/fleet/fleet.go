package fleet

import (
	"crypto/sha1"
	"fmt"
	"sync"
	"sync/atomic"

	"fractal/internal/core"
	"fractal/internal/proxy"
)

// Config parameterizes a proxy tier.
type Config struct {
	// Shards is the number of adaptation-proxy shards (>= 1).
	Shards int
	// Model is the overhead model every shard negotiates with.
	Model core.OverheadModel
	// CacheCapacity is each shard's adaptation-cache capacity.
	CacheCapacity int
	// Replicas is the number of shards holding each warm cache entry:
	// 1 (the default when 0) keeps entries only on their rendezvous owner;
	// k > 1 copies every fresh search result to the key's k-1 rendezvous
	// successors, so a membership change finds the moved keys warm.
	Replicas int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("fleet: need at least one shard, got %d", c.Shards)
	}
	if c.CacheCapacity < 1 {
		return fmt.Errorf("fleet: cache capacity must be positive, got %d", c.CacheCapacity)
	}
	if c.Replicas > c.Shards {
		return fmt.Errorf("fleet: %d replicas exceed %d shards", c.Replicas, c.Shards)
	}
	return nil
}

// maxReplicas bounds the warm-replication fan-out so the per-fill ranking
// buffer can live on the stack.
const maxReplicas = 4

// Stats aggregates the tier's coherence counters. Per-shard negotiation
// counters live on the shards themselves (ShardStats).
type Stats struct {
	// InvalidationsApplied counts (shard × app) topology applications that
	// actually reached a shard's negotiation manager.
	InvalidationsApplied int64
	// InvalidationsSuppressed counts fan-out legs skipped because the
	// shard had already applied an identical topology digest.
	InvalidationsSuppressed int64
	// ReplicatedFills counts warm-path cache seeds pushed to rendezvous
	// successors after a cold search.
	ReplicatedFills int64
}

// Fleet is a sharded adaptation-proxy tier behind one front router:
// sessions are routed to shards by rendezvous hashing on the canonical
// cache key (application + principal + client profile), topology pushes
// fan out to every shard keyed by a digest of the pushed metadata so
// duplicate pushes are suppressed per shard, and — optionally — fresh
// search results are replicated to the key's rendezvous successors.
//
// A Fleet is safe for concurrent use: the router is immutable, shards
// synchronize themselves, and the coherence ledger has its own mutex that
// is never held across a shard call.
type Fleet struct {
	cfg    Config
	router *Router
	shards []*proxy.Proxy

	// mu guards applied, the coherence ledger: per shard, the digest of
	// the topology version last applied per application. The lock is
	// released before any shard push; the fan-out below therefore
	// tolerates (and re-suppresses) concurrent pushers.
	mu      sync.Mutex
	applied []map[string][sha1.Size]byte

	invalidationsApplied    atomic.Int64
	invalidationsSuppressed atomic.Int64
	replicatedFills         atomic.Int64
}

// New builds the tier: cfg.Shards independent proxies sharing one
// overhead model, behind a rendezvous router whose shard names are
// "shard-0".."shard-N-1".
func New(cfg Config) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > maxReplicas {
		return nil, fmt.Errorf("fleet: at most %d replicas supported, got %d", maxReplicas, cfg.Replicas)
	}
	names := make([]string, cfg.Shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	router, err := NewRouter(names)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:     cfg,
		router:  router,
		shards:  make([]*proxy.Proxy, cfg.Shards),
		applied: make([]map[string][sha1.Size]byte, cfg.Shards),
	}
	for i := range f.shards {
		p, err := proxy.New(cfg.Model, cfg.CacheCapacity)
		if err != nil {
			return nil, fmt.Errorf("fleet: building %s: %w", names[i], err)
		}
		f.shards[i] = p
		f.applied[i] = map[string][sha1.Size]byte{}
	}
	return f, nil
}

// Shards reports the tier width.
func (f *Fleet) Shards() int { return len(f.shards) }

// Router exposes the routing function (for tests and the load harness's
// shard accounting).
func (f *Fleet) Router() *Router { return f.router }

// Shard exposes shard i's proxy, for per-shard stats and direct drives.
func (f *Fleet) Shard(i int) *proxy.Proxy { return f.shards[i] }

// TopologyDigest renders the coherence key of an application's metadata:
// a SHA-1 over the identity and module digest of every PAD, in push
// order. Two AppMeta values with the same digest install identical
// adaptation topologies, so a shard that has applied the digest may skip
// a duplicate push.
func TopologyDigest(app core.AppMeta) [sha1.Size]byte {
	pre := make([]byte, 0, 64+64*len(app.PADs))
	pre = append(pre, app.AppID...)
	for _, p := range app.PADs {
		pre = append(pre, 0)
		pre = append(pre, p.ID...)
		pre = append(pre, 0)
		pre = append(pre, p.Version...)
		pre = append(pre, 0)
		pre = append(pre, p.Protocol...)
		pre = append(pre, 0)
		pre = append(pre, p.Parent...)
		pre = append(pre, 0)
		pre = append(pre, p.Alias...)
		pre = append(pre, p.Digest[:]...)
	}
	return sha1.Sum(pre)
}

// PushAppMeta installs a topology across the tier: the digest-keyed
// invalidation fan-out. Every shard whose last applied digest for the
// application differs receives the push (which rebuilds its PAT and
// invalidates its adaptation-cache entries for the app); shards already
// at this digest are suppressed. The coherence ledger is snapshotted and
// updated under its mutex, but no lock is held across a shard push.
func (f *Fleet) PushAppMeta(app core.AppMeta) error {
	digest := TopologyDigest(app)

	// Decide the fan-out under the ledger lock, then release it: a shard
	// push runs a full PAT build and may verify modules, and holding the
	// ledger across it would serialize the tier behind one slow shard.
	targets := make([]int, 0, len(f.shards))
	f.mu.Lock()
	for i := range f.shards {
		if f.applied[i][app.AppID] == digest {
			continue
		}
		targets = append(targets, i)
	}
	f.mu.Unlock()

	suppressed := int64(len(f.shards) - len(targets))
	for _, i := range targets {
		if err := f.shards[i].PushAppMeta(app); err != nil {
			return fmt.Errorf("fleet: %s: %w", f.router.Name(i), err)
		}
		f.mu.Lock()
		f.applied[i][app.AppID] = digest
		f.mu.Unlock()
		f.invalidationsApplied.Add(1)
	}
	f.invalidationsSuppressed.Add(suppressed)
	return nil
}

// Key renders the canonical routing/cache key for one session. It is the
// same core.CacheKey canonical form the single-proxy cache uses, so a
// routed session and a single-proxy session index identical cache
// entries.
func Key(appID, principal string, env core.Env) string {
	return core.CacheKey{AppID: appID, Principal: principal, Dev: env.Dev, Ntwk: env.Ntwk}.String()
}

// Negotiate routes an anonymous client session to its rendezvous shard
// and negotiates there. The INP wire is unchanged: a front router
// terminates the client exchange exactly as a single proxy does, and this
// is its in-process entry point.
func (f *Fleet) Negotiate(appID string, env core.Env, sessionRequests int) ([]core.PADMeta, error) {
	pads, _, _, err := f.NegotiateKeyed(Key(appID, "", env), "", appID, env, sessionRequests)
	return pads, err
}

// NegotiateFor is Negotiate with an authenticated principal.
func (f *Fleet) NegotiateFor(principal, appID string, env core.Env, sessionRequests int) ([]core.PADMeta, error) {
	pads, _, _, err := f.NegotiateKeyed(Key(appID, principal, env), principal, appID, env, sessionRequests)
	return pads, err
}

// NegotiateKeyed is the routed negotiation for a caller that already
// rendered the canonical key (the load harness renders each profile's key
// once): rendezvous-route, negotiate on the owning shard, and on a fresh
// search optionally replicate the prepared result to the key's rendezvous
// successors. It reports the owning shard and the shard-side outcome.
//
// Collapse of concurrent cold keys needs no fleet-level machinery:
// routing sends every caller of a key to one shard, whose singleflight
// (syncx.Group) already runs at most one search per key, so a fleet-wide
// stampede on a cold key still triggers exactly one path search.
func (f *Fleet) NegotiateKeyed(key, principal, appID string, env core.Env, sessionRequests int) ([]core.PADMeta, proxy.Outcome, int, error) {
	shard := f.router.Shard(key)
	pads, outcome, err := f.shards[shard].NegotiateKeyed(key, principal, appID, env, sessionRequests)
	if err != nil {
		return nil, outcome, shard, err
	}
	if outcome == proxy.OutcomeSearch && f.cfg.Replicas > 1 {
		var buf [maxReplicas]int
		ranked := f.router.TopK(key, f.cfg.Replicas, buf[:0])
		for _, idx := range ranked[1:] {
			f.shards[idx].SeedCache(key, pads)
			f.replicatedFills.Add(1)
		}
	}
	return pads, outcome, shard, nil
}

// Stats returns the tier's coherence counters.
func (f *Fleet) Stats() Stats {
	return Stats{
		InvalidationsApplied:    f.invalidationsApplied.Load(),
		InvalidationsSuppressed: f.invalidationsSuppressed.Load(),
		ReplicatedFills:         f.replicatedFills.Load(),
	}
}

// ShardStats returns shard i's negotiation counters.
func (f *Fleet) ShardStats(i int) proxy.Stats { return f.shards[i].Stats() }

// AggregateStats sums the negotiation counters across shards.
func (f *Fleet) AggregateStats() proxy.Stats {
	var out proxy.Stats
	for _, s := range f.shards {
		st := s.Stats()
		out.Negotiations += st.Negotiations
		out.CacheHits += st.CacheHits
		out.TopologyPushes += st.TopologyPushes
		out.Searches += st.Searches
		out.CollapsedSearches += st.CollapsedSearches
		out.TotalSearchNanos += st.TotalSearchNanos
		out.VerifierRejections += st.VerifierRejections
	}
	return out
}
