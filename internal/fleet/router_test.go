package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

func shardNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	return names
}

func testKeys(n int) []string {
	rng := rand.New(rand.NewSource(1887))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("app=webapp|who=|os=OS%d|cpu=C%d|mhz=%d|mem=%d|net=N%d|bw=%d",
			rng.Intn(4), rng.Intn(3), 200+rng.Intn(4000), 16+rng.Intn(1024), rng.Intn(4), 16+rng.Intn(200000))
	}
	return keys
}

func TestRouterErrors(t *testing.T) {
	if _, err := NewRouter(nil); err == nil {
		t.Fatal("empty router accepted")
	}
	if _, err := NewRouter([]string{"a", ""}); err == nil {
		t.Fatal("empty shard name accepted")
	}
	if _, err := NewRouter([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate shard name accepted")
	}
}

func TestRouterBalance(t *testing.T) {
	const shards, keys = 8, 40000
	r, err := NewRouter(shardNames(shards))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for _, k := range testKeys(keys) {
		counts[r.Shard(k)]++
	}
	want := keys / shards
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("shard %d holds %d keys, want %d +-20%%", i, c, want)
		}
	}
}

// TestRouterAddShardMovesFraction is the rendezvous stability property:
// growing the tier from N to N+1 shards moves ~1/(N+1) of the keys, and
// every moved key moves to the new shard — no key shuffles between
// surviving shards.
func TestRouterAddShardMovesFraction(t *testing.T) {
	const keys = 40000
	for _, n := range []int{2, 4, 8, 15} {
		before, err := NewRouter(shardNames(n))
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRouter(shardNames(n + 1))
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range testKeys(keys) {
			a, b := before.Shard(k), after.Shard(k)
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("n=%d: key moved %d->%d, not to the new shard %d", n, a, b, n)
			}
		}
		frac := float64(moved) / keys
		ideal := 1.0 / float64(n+1)
		if frac < ideal*0.7 || frac > ideal*1.3 {
			t.Errorf("n=%d->%d: moved %.4f of keys, want ~%.4f (+-30%%)", n, n+1, frac, ideal)
		}
	}
}

// TestRouterRemoveShardMovesOnlyItsKeys checks the complementary
// property: removing a shard relocates exactly the keys it owned, and
// every other key keeps its owner.
func TestRouterRemoveShardMovesOnlyItsKeys(t *testing.T) {
	const n, keys = 8, 40000
	names := shardNames(n)
	full, err := NewRouter(names)
	if err != nil {
		t.Fatal(err)
	}
	const removed = 3
	rest := append(append([]string(nil), names[:removed]...), names[removed+1:]...)
	shrunk, err := NewRouter(rest)
	if err != nil {
		t.Fatal(err)
	}
	nameOf := func(r *Router, k string) string { return r.Name(r.Shard(k)) }
	movedFromRemoved := 0
	for _, k := range testKeys(keys) {
		before, after := nameOf(full, k), nameOf(shrunk, k)
		if before == names[removed] {
			movedFromRemoved++
			continue // owner left; any surviving shard may take it
		}
		if before != after {
			t.Fatalf("key on surviving shard moved %s->%s after removing %s", before, after, names[removed])
		}
	}
	ideal := float64(keys) / n
	if f := float64(movedFromRemoved); f < ideal*0.8 || f > ideal*1.2 {
		t.Errorf("removed shard owned %d keys, want ~%.0f +-20%%", movedFromRemoved, ideal)
	}
}

func TestRouterTopK(t *testing.T) {
	r, err := NewRouter(shardNames(6))
	if err != nil {
		t.Fatal(err)
	}
	var buf [8]int
	for _, k := range testKeys(500) {
		ranked := r.TopK(k, 3, buf[:0])
		if len(ranked) != 3 {
			t.Fatalf("TopK(3) returned %d entries", len(ranked))
		}
		if ranked[0] != r.Shard(k) {
			t.Fatalf("TopK[0] = %d, Shard = %d", ranked[0], r.Shard(k))
		}
		seen := map[int]bool{}
		for _, s := range ranked {
			if s < 0 || s >= 6 || seen[s] {
				t.Fatalf("TopK returned invalid/duplicate shard %d in %v", s, ranked)
			}
			seen[s] = true
		}
	}
	if got := r.TopK("k", 99, buf[:0]); len(got) != 6 {
		t.Fatalf("TopK clamps to shard count: got %d", len(got))
	}
	if got := r.TopK("k", 0, buf[:0]); len(got) != 0 {
		t.Fatalf("TopK(0) = %v, want empty", got)
	}
}

// TestRouterSuccessorConsistency ties TopK to the removal property: when
// a key's owner leaves, the new owner is the key's first rendezvous
// successor — the shard warm-path replication seeded.
func TestRouterSuccessorConsistency(t *testing.T) {
	names := shardNames(5)
	full, err := NewRouter(names)
	if err != nil {
		t.Fatal(err)
	}
	var buf [8]int
	for _, k := range testKeys(2000) {
		ranked := full.TopK(k, 2, buf[:0])
		owner, successor := ranked[0], ranked[1]
		rest := make([]string, 0, len(names)-1)
		for i, nm := range names {
			if i != owner {
				rest = append(rest, nm)
			}
		}
		shrunk, err := NewRouter(rest)
		if err != nil {
			t.Fatal(err)
		}
		if got := shrunk.Name(shrunk.Shard(k)); got != names[successor] {
			t.Fatalf("after removing owner %s, key went to %s, want successor %s", names[owner], got, names[successor])
		}
	}
}

func TestRouterShardZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocs-per-run is meaningless")
	}
	r, err := NewRouter(shardNames(8))
	if err != nil {
		t.Fatal(err)
	}
	key := testKeys(1)[0]
	var buf [4]int
	if avg := testing.AllocsPerRun(200, func() { r.Shard(key) }); avg != 0 {
		t.Fatalf("Shard allocates %.1f times per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { r.TopK(key, 3, buf[:0]) }); avg != 0 {
		t.Fatalf("TopK allocates %.1f times per call, want 0", avg)
	}
}

func BenchmarkRouterShard8(b *testing.B) {
	r, err := NewRouter(shardNames(8))
	if err != nil {
		b.Fatal(err)
	}
	keys := testKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for b.Loop() {
		r.Shard(keys[i&1023])
		i++
	}
}
