package fleet

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"fractal/internal/core"
	"fractal/internal/proxy"
)

// Test fixtures mirror the proxy package's case-study setup (Figure 8):
// a one-level PAT whose three PADs win under different environments.

func testApp() core.AppMeta {
	pad := func(id, proto string, clientStd time.Duration, traffic int64) core.PADMeta {
		return core.PADMeta{
			ID: id, Protocol: proto, Size: 4096,
			Overhead: core.PADOverhead{ClientCompStd: clientStd, TrafficBytes: traffic},
		}
	}
	return core.AppMeta{
		AppID: "webapp",
		PADs: []core.PADMeta{
			pad("pad-direct", "direct", 0, 140000),
			pad("pad-gzip", "gzip", 40*time.Millisecond, 50000),
			pad("pad-bitmap", "bitmap", 85*time.Millisecond, 30000),
		},
	}
}

func testModel(t testing.TB) core.OverheadModel {
	t.Helper()
	ms, err := core.CaseStudyMatrices()
	if err != nil {
		t.Fatal(err)
	}
	return core.OverheadModel{
		Matrices:          ms,
		Rho:               0.8,
		ServerCPUMHz:      2000,
		IncludeServerComp: true,
		SessionRequests:   75,
	}
}

// testEnvs spans the case-study hardware/network grid with varied scalar
// profiles, so the differential test covers many distinct cache keys and
// several distinct winning PADs.
func testEnvs() []core.Env {
	type hw struct {
		os, cpu string
		mhz     float64
		mem     int
	}
	type nw struct {
		net string
		bw  float64
	}
	hws := []hw{
		{core.OSFedora, core.CPUTypeP4, 2000, 512},
		{core.OSFedora, core.CPUTypeP4, 1000, 256},
		{core.OSWinCE, core.CPUTypePXA255, 400, 64},
		{core.OSWinCE, core.CPUTypePXA255, 200, 32},
	}
	nws := []nw{
		{core.NetLAN, 100000},
		{core.NetWLAN, 11000},
		{core.NetWLAN, 2000},
		{core.NetBluetooth, 723},
		{core.NetBluetooth, 150},
	}
	var envs []core.Env
	for _, h := range hws {
		for _, n := range nws {
			envs = append(envs, core.Env{
				Dev:  core.DevMeta{OSType: h.os, CPUType: h.cpu, CPUMHz: h.mhz, MemMB: h.mem},
				Ntwk: core.NtwkMeta{NetworkType: n.net, BandwidthKbps: n.bw},
			})
		}
	}
	return envs
}

func newTestFleet(t testing.TB, shards, replicas int) *Fleet {
	t.Helper()
	f, err := New(Config{Shards: shards, Model: testModel(t), CacheCapacity: 256, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.PushAppMeta(testApp()); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFleetConfigValidate(t *testing.T) {
	model := testModel(t)
	bad := []Config{
		{Shards: 0, Model: model, CacheCapacity: 16},
		{Shards: 4, Model: model, CacheCapacity: 0},
		{Shards: 2, Model: model, CacheCapacity: 16, Replicas: 3},
		{Shards: 16, Model: model, CacheCapacity: 16, Replicas: maxReplicas + 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestFleetDifferentialSingleProxy pins the routing-transparency contract:
// for every environment, the sharded tier returns byte-identical prepared
// PAD lists to a single proxy over the same model and topology —
// rendezvous routing, coherence, and replication change where work runs,
// never what the client receives.
func TestFleetDifferentialSingleProxy(t *testing.T) {
	single, err := proxy.New(testModel(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.PushAppMeta(testApp()); err != nil {
		t.Fatal(err)
	}
	for _, replicas := range []int{1, 3} {
		f := newTestFleet(t, 5, replicas)
		for pass := 0; pass < 2; pass++ { // pass 0 fills caches, pass 1 hits them
			for _, env := range testEnvs() {
				want, err := single.Negotiate("webapp", env, 75)
				if err != nil {
					t.Fatal(err)
				}
				got, err := f.Negotiate("webapp", env, 75)
				if err != nil {
					t.Fatal(err)
				}
				wantJSON, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				gotJSON, err := json.Marshal(got)
				if err != nil {
					t.Fatal(err)
				}
				if string(wantJSON) != string(gotJSON) {
					t.Fatalf("replicas=%d pass=%d env=%+v:\n fleet  %s\n single %s",
						replicas, pass, env, gotJSON, wantJSON)
				}
			}
		}
	}
}

func TestFleetRoutesToOwner(t *testing.T) {
	f := newTestFleet(t, 8, 1)
	perShard := make([]int64, 8)
	for _, env := range testEnvs() {
		key := Key("webapp", "", env)
		_, _, shard, err := f.NegotiateKeyed(key, "", "webapp", env, 75)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Router().Shard(key); shard != want {
			t.Fatalf("negotiation ran on shard %d, router owns %d", shard, want)
		}
		perShard[shard]++
	}
	agg := f.AggregateStats()
	if agg.Negotiations != int64(len(testEnvs())) {
		t.Fatalf("aggregate negotiations %d, want %d", agg.Negotiations, len(testEnvs()))
	}
	var busy int
	for i := range perShard {
		if st := f.ShardStats(i); st.Negotiations != perShard[i] {
			t.Fatalf("shard %d counted %d negotiations, routed %d", i, st.Negotiations, perShard[i])
		}
		if perShard[i] > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("all sessions landed on %d shard(s); routing is degenerate", busy)
	}
}

// TestFleetDigestSuppression exercises the coherence ledger: re-pushing an
// identical topology reaches no shard, while a changed PAD version fans
// out to (and invalidates) all of them.
func TestFleetDigestSuppression(t *testing.T) {
	f := newTestFleet(t, 4, 1)
	if s := f.Stats(); s.InvalidationsApplied != 4 || s.InvalidationsSuppressed != 0 {
		t.Fatalf("after first push: %+v", s)
	}

	// Identical push: every leg suppressed, no shard-side invalidation.
	pushes := f.AggregateStats().TopologyPushes
	if err := f.PushAppMeta(testApp()); err != nil {
		t.Fatal(err)
	}
	if s := f.Stats(); s.InvalidationsApplied != 4 || s.InvalidationsSuppressed != 4 {
		t.Fatalf("after duplicate push: %+v", s)
	}
	if got := f.AggregateStats().TopologyPushes; got != pushes {
		t.Fatalf("duplicate push reached shards: %d pushes, want %d", got, pushes)
	}

	// Fill a cache entry, then push a changed topology: the fan-out must
	// reach every shard and invalidate the entry (next negotiate searches).
	env := testEnvs()[0]
	if _, err := f.Negotiate("webapp", env, 75); err != nil {
		t.Fatal(err)
	}
	app := testApp()
	app.PADs[1].Version = "v2"
	if err := f.PushAppMeta(app); err != nil {
		t.Fatal(err)
	}
	if s := f.Stats(); s.InvalidationsApplied != 8 || s.InvalidationsSuppressed != 4 {
		t.Fatalf("after changed push: %+v", s)
	}
	searches := f.AggregateStats().Searches
	if _, outcome, _, err := f.NegotiateKeyed(Key("webapp", "", env), "", "webapp", env, 75); err != nil {
		t.Fatal(err)
	} else if outcome != proxy.OutcomeSearch {
		t.Fatalf("post-invalidation negotiation outcome %v, want search", outcome)
	}
	if got := f.AggregateStats().Searches; got != searches+1 {
		t.Fatalf("post-invalidation searches %d, want %d", got, searches+1)
	}
}

func TestFleetWarmReplication(t *testing.T) {
	f := newTestFleet(t, 5, 3)
	env := testEnvs()[0]
	key := Key("webapp", "", env)

	pads, outcome, _, err := f.NegotiateKeyed(key, "", "webapp", env, 75)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != proxy.OutcomeSearch {
		t.Fatalf("first negotiation outcome %v, want search", outcome)
	}
	if s := f.Stats(); s.ReplicatedFills != 2 {
		t.Fatalf("replicated fills %d, want 2 (replicas-1)", s.ReplicatedFills)
	}

	// Each rendezvous successor must now answer from cache, with no search
	// of its own, and return the identical prepared result.
	var buf [maxReplicas]int
	ranked := f.Router().TopK(key, 3, buf[:0])
	for _, idx := range ranked[1:] {
		before := f.ShardStats(idx)
		got, outcome, err := f.Shard(idx).NegotiateKeyed(key, "", "webapp", env, 75)
		if err != nil {
			t.Fatal(err)
		}
		if outcome != proxy.OutcomeHit {
			t.Fatalf("successor shard %d outcome %v, want hit", idx, outcome)
		}
		if after := f.ShardStats(idx); after.Searches != before.Searches {
			t.Fatalf("successor shard %d searched", idx)
		}
		wantJSON, _ := json.Marshal(pads)
		gotJSON, _ := json.Marshal(got)
		if string(wantJSON) != string(gotJSON) {
			t.Fatalf("successor shard %d replica differs:\n %s\n %s", idx, gotJSON, wantJSON)
		}
	}

	// A shard outside the replica set must not have been seeded.
	for i := 0; i < f.Shards(); i++ {
		inSet := false
		for _, idx := range ranked {
			if i == idx {
				inSet = true
			}
		}
		if inSet {
			continue
		}
		before := f.ShardStats(i)
		if _, outcome, err := f.Shard(i).NegotiateKeyed(key, "", "webapp", env, 75); err != nil {
			t.Fatal(err)
		} else if outcome == proxy.OutcomeHit {
			t.Fatalf("non-replica shard %d unexpectedly warm", i)
		}
		if after := f.ShardStats(i); after.Searches != before.Searches+1 {
			t.Fatalf("non-replica shard %d searches %d->%d, want +1", i, before.Searches, after.Searches)
		}
	}
}

// TestFleetColdKeyStampedeCollapses pins the ISSUE's coherence guarantee:
// a fleet-wide stampede on one cold key triggers exactly one path search —
// routing concentrates the key on one shard, whose singleflight collapses
// the rest.
func TestFleetColdKeyStampedeCollapses(t *testing.T) {
	f := newTestFleet(t, 8, 1)
	env := testEnvs()[3]
	key := Key("webapp", "", env)

	const callers = 64
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	start := make(chan struct{})
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, _, _, err := f.NegotiateKeyed(key, "", "webapp", env, 75)
			errs <- err
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	agg := f.AggregateStats()
	if agg.Searches != 1 {
		t.Fatalf("fleet-wide stampede ran %d searches, want exactly 1", agg.Searches)
	}
	if agg.Negotiations != callers {
		t.Fatalf("negotiations %d, want %d", agg.Negotiations, callers)
	}
	if agg.CacheHits+agg.CollapsedSearches != callers-1 {
		t.Fatalf("hits %d + collapsed %d, want %d", agg.CacheHits, agg.CollapsedSearches, callers-1)
	}
}

func TestFleetPrincipalPartitioning(t *testing.T) {
	f := newTestFleet(t, 4, 1)
	env := testEnvs()[0]
	if _, err := f.NegotiateFor("alice", "webapp", env, 75); err != nil {
		t.Fatal(err)
	}
	if _, err := f.NegotiateFor("bob", "webapp", env, 75); err != nil {
		t.Fatal(err)
	}
	// Distinct principals must not share cache entries even in one env.
	if agg := f.AggregateStats(); agg.Searches != 2 {
		t.Fatalf("two principals shared a search: %+v", agg)
	}
	if _, err := f.NegotiateFor("alice", "webapp", env, 75); err != nil {
		t.Fatal(err)
	}
	if agg := f.AggregateStats(); agg.CacheHits != 1 {
		t.Fatalf("repeat principal negotiation missed: %+v", agg)
	}
}

func TestTopologyDigestSensitivity(t *testing.T) {
	base := TopologyDigest(testApp())
	if TopologyDigest(testApp()) != base {
		t.Fatal("digest not deterministic")
	}
	mutations := []func(*core.AppMeta){
		func(a *core.AppMeta) { a.AppID = "webapp2" },
		func(a *core.AppMeta) { a.PADs[0].Version = "v9" },
		func(a *core.AppMeta) { a.PADs[1].Protocol = "lzma" },
		func(a *core.AppMeta) { a.PADs[2].Parent = "pad-direct" },
		func(a *core.AppMeta) { a.PADs[0].Alias = "x" },
		func(a *core.AppMeta) { a.PADs[0].Digest[0] ^= 1 },
		func(a *core.AppMeta) { a.PADs = a.PADs[:2] },
	}
	for i, mutate := range mutations {
		app := testApp()
		mutate(&app)
		if TopologyDigest(app) == base {
			t.Errorf("mutation %d left the topology digest unchanged", i)
		}
	}
}
