package fleet

import (
	"fmt"
	"math/bits"
)

// Histogram geometry: values 0..31 are recorded exactly; above that, each
// power-of-two octave is split into 32 linear sub-buckets, so any recorded
// value is reproduced to within 1/32 (~3.1%) relative error. With int64
// nanosecond values the full range needs (63-5)+2 = 60 blocks of 32
// buckets — 1920 counters, 15KiB — so per-shard histograms are cheap to
// hold and to merge.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	histBlocks   = 64 - histSubBits + 1
	histBuckets  = histBlocks * histSubCount
)

// Hist is a fixed-bucket log-linear histogram of non-negative int64
// samples (negotiation latencies in simulated nanoseconds). Record is
// integer-only — no floats, no allocation, no branching beyond the
// linear/log split — so it sits directly on the harness's per-session hot
// path. Two histograms always share the same geometry, so Merge is
// element-wise addition and percentile queries commute with merging:
// merging per-shard histograms and querying equals querying the global
// histogram.
//
// A Hist is confined to one goroutine (each simulated shard records into
// its own); merge and query after the run.
type Hist struct {
	counts [histBuckets]int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{min: -1} }

// bucketOf maps a sample to its bucket index. Negative samples clamp to
// bucket zero (the harness never produces them; clamping keeps Record
// total).
func bucketOf(v int64) int {
	if v < 0 {
		return 0
	}
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	shift := exp - histSubBits
	return (shift+1)<<histSubBits + int((uint64(v)>>uint(shift))&(histSubCount-1))
}

// bucketHigh returns the largest value mapping to bucket idx, the
// conservative representative percentile queries report.
func bucketHigh(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	shift := idx>>histSubBits - 1
	sub := idx & (histSubCount - 1)
	low := (uint64(histSubCount) + uint64(sub)) << uint(shift)
	return int64(low + (1 << uint(shift)) - 1)
}

// Record adds one sample.
//
//fractal:hotpath one record per completed session
func (h *Hist) Record(v int64) {
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.total }

// Sum returns the exact sum of recorded samples.
func (h *Hist) Sum() int64 { return h.sum }

// Mean returns the exact-sum mean, or 0 for an empty histogram.
func (h *Hist) Mean() int64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / h.total
}

// Min returns the smallest recorded sample (exact), or 0 when empty.
func (h *Hist) Min() int64 {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (exact).
func (h *Hist) Max() int64 { return h.max }

// Quantile returns the q'th quantile (0 <= q <= 1) as the upper bound of
// the bucket holding the rank-ceil(q*total) sample, so the reported value
// is >= the true quantile and within one bucket width (1/32 relative) of
// it. Quantile(1) reports the exact maximum. An empty histogram reports 0.
func (h *Hist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(q * float64(h.total))
	if float64(rank) < q*float64(h.total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			v := bucketHigh(i)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds o's samples into h. Geometry is fixed at compile time, so
// any two histograms merge; merging is associative and commutative
// bucket-by-bucket.
func (h *Hist) Merge(o *Hist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 {
		if h.min < 0 || (o.min >= 0 && o.min < h.min) {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Clone returns an independent copy.
func (h *Hist) Clone() *Hist {
	c := *h
	return &c
}

// String summarizes the distribution for logs.
func (h *Hist) String() string {
	return fmt.Sprintf("hist{n=%d p50=%d p99=%d p999=%d max=%d}",
		h.total, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.max)
}
