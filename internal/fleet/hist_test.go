package fleet

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refQuantile is the sort-based reference: the rank-ceil(q*n) smallest
// sample, matching Hist.Quantile's rank definition.
func refQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > int64(n) {
		rank = int64(n)
	}
	return sorted[rank-1]
}

func histDistributions() map[string][]int64 {
	out := map[string][]int64{}

	rng := rand.New(rand.NewSource(41))
	uniform := make([]int64, 20000)
	for i := range uniform {
		uniform[i] = rng.Int63n(5_000_000) // up to 5ms in ns
	}
	out["uniform"] = uniform

	rng = rand.New(rand.NewSource(42))
	exp := make([]int64, 20000)
	for i := range exp {
		exp[i] = int64(rng.ExpFloat64() * 300_000) // mean 300us, long tail
	}
	out["exponential"] = exp

	rng = rand.New(rand.NewSource(43))
	bimodal := make([]int64, 20000)
	for i := range bimodal {
		if rng.Intn(100) < 95 {
			bimodal[i] = 40_000 + rng.Int63n(5_000) // hits
		} else {
			bimodal[i] = 3_000_000 + rng.Int63n(800_000) // searches
		}
	}
	out["bimodal"] = bimodal

	small := make([]int64, 0, 64)
	for v := int64(0); v < 32; v++ {
		small = append(small, v, v) // exact linear region, with ties
	}
	out["small-exact"] = small

	return out
}

func TestHistQuantileVsSortReference(t *testing.T) {
	for name, samples := range histDistributions() {
		h := NewHist()
		sorted := append([]int64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, v := range samples {
			h.Record(v)
		}
		if h.Count() != int64(len(samples)) {
			t.Fatalf("%s: count %d, want %d", name, h.Count(), len(samples))
		}
		if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
			t.Fatalf("%s: min/max %d/%d, want %d/%d", name, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			got := h.Quantile(q)
			ref := refQuantile(sorted, q)
			// Quantile reports the bucket's upper bound: >= the true
			// quantile, within one sub-bucket (1/32 relative) above it.
			if got < ref {
				t.Errorf("%s q=%v: hist %d < reference %d (must be conservative)", name, q, got, ref)
			}
			if limit := ref + ref/histSubCount + 1; got > limit {
				t.Errorf("%s q=%v: hist %d exceeds reference %d by more than 1/%d", name, q, got, ref, histSubCount)
			}
		}
	}
}

func TestHistLinearRegionExact(t *testing.T) {
	h := NewHist()
	for v := int64(0); v < histSubCount; v++ {
		h.Record(v)
	}
	for v := int64(0); v < histSubCount; v++ {
		q := (float64(v) + 1) / float64(histSubCount)
		if got := h.Quantile(q); got != v {
			t.Fatalf("linear region not exact: Quantile(%v) = %d, want %d", q, got, v)
		}
	}
}

func TestHistBucketRoundTrip(t *testing.T) {
	// Every sample must land in a bucket whose upper bound is >= it and
	// whose width respects the 1/32 relative-error contract.
	rng := rand.New(rand.NewSource(44))
	check := func(v int64) {
		idx := bucketOf(v)
		high := bucketHigh(idx)
		if high < v {
			t.Fatalf("bucketHigh(bucketOf(%d)) = %d < sample", v, high)
		}
		if v >= histSubCount && high-v > v/histSubCount {
			t.Fatalf("bucket width too wide at %d: high %d", v, high)
		}
		if idx > 0 && bucketHigh(idx-1) >= v {
			t.Fatalf("sample %d should be in bucket %d, but bucket %d also covers it", v, idx, idx-1)
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	for i := 0; i < 100000; i++ {
		check(rng.Int63())
	}
	check(math.MaxInt64)
	if got := bucketOf(-5); got != 0 {
		t.Fatalf("negative sample bucketed at %d, want 0", got)
	}
}

func TestHistMergeEqualsGlobal(t *testing.T) {
	// The harness merges per-shard histograms; merging must be exact:
	// merged buckets equal the buckets of one histogram fed everything.
	rng := rand.New(rand.NewSource(45))
	global := NewHist()
	parts := []*Hist{NewHist(), NewHist(), NewHist(), NewHist()}
	for i := 0; i < 50000; i++ {
		v := int64(rng.ExpFloat64() * 123_456)
		global.Record(v)
		parts[rng.Intn(len(parts))].Record(v)
	}
	merged := NewHist()
	for _, p := range parts {
		merged.Merge(p)
	}
	if *merged != *global {
		t.Fatalf("merged per-shard histograms differ from global:\n merged %v\n global %v", merged, global)
	}
}

func TestHistMergeAssociative(t *testing.T) {
	mk := func(seed int64, n int, scale float64) *Hist {
		rng := rand.New(rand.NewSource(seed))
		h := NewHist()
		for i := 0; i < n; i++ {
			h.Record(int64(rng.ExpFloat64() * scale))
		}
		return h
	}
	a, b, c := mk(46, 9000, 50_000), mk(47, 11000, 700_000), mk(48, 5000, 2_000)

	left := a.Clone()
	left.Merge(b)
	left.Merge(c)

	bc := b.Clone()
	bc.Merge(c)
	right := a.Clone()
	right.Merge(bc)

	if *left != *right {
		t.Fatalf("merge not associative:\n (a+b)+c %v\n a+(b+c) %v", left, right)
	}

	ba := b.Clone()
	ba.Merge(a)
	ab := a.Clone()
	ab.Merge(b)
	if *ab != *ba {
		t.Fatalf("merge not commutative:\n a+b %v\n b+a %v", ab, ba)
	}
}

func TestHistEmptyAndMergeEmpty(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Merge(NewHist())
	if h.Count() != 0 {
		t.Fatal("merging two empties must stay empty")
	}
	h.Record(7)
	h.Merge(NewHist())
	if h.Min() != 7 || h.Max() != 7 || h.Count() != 1 {
		t.Fatalf("merging an empty histogram disturbed state: %v", h)
	}
	e := NewHist()
	e.Merge(h)
	if e.Min() != 7 || e.Max() != 7 || e.Count() != 1 {
		t.Fatalf("merging into an empty histogram lost state: %v", e)
	}
}

func TestHistRecordZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocs-per-run is meaningless")
	}
	h := NewHist()
	v := int64(123_456)
	if avg := testing.AllocsPerRun(200, func() { h.Record(v); v += 997 }); avg != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", avg)
	}
}

func BenchmarkHistRecord(b *testing.B) {
	h := NewHist()
	b.ReportAllocs()
	v := int64(1)
	for b.Loop() {
		h.Record(v)
		v = v*6364136223846793005 + 1442695040888963407
		if v < 0 {
			v = -v
		}
	}
}
