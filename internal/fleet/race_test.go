//go:build race

package fleet

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it.
const raceEnabled = true
