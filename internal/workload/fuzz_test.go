package workload

import "testing"

// FuzzParse hardens page parsing against corrupt serialized streams.
func FuzzParse(f *testing.F) {
	c, err := Generate(Config{Pages: 1, TextBytes: 64, Images: 1, ImageBytes: 64, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(c.Pages[0].Bytes())
	f.Add([]byte("PAGE p v000001\nTEXT\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		if p.ID == "" {
			t.Fatal("parsed page without id")
		}
	})
}
