package workload

import (
	"bytes"
	"testing"
)

// TestSeedDeterminism asserts the property fractal-vet's rawrand analyzer
// protects: every random decision flows from an explicit seeded
// *rand.Rand, so two runs with the same seed are byte-identical — corpus,
// mutated corpus, and request trace alike.
func TestSeedDeterminism(t *testing.T) {
	const seed = 421

	run := func() (*Corpus, *Corpus, []Request) {
		cfg := DefaultConfig(seed)
		cfg.Pages = 8 // keep the double run cheap
		c, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := MutateCorpus(c, DefaultMutation(seed+1))
		if err != nil {
			t.Fatal(err)
		}
		tcfg := DefaultTraceConfig(seed + 2)
		tcfg.Requests = 200
		trace, err := GenerateTrace(c, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		return c, c2, trace
	}

	a1, a2, atrace := run()
	b1, b2, btrace := run()

	for i := range a1.Pages {
		if !bytes.Equal(a1.Pages[i].Bytes(), b1.Pages[i].Bytes()) {
			t.Errorf("corpus page %d differs across identically-seeded runs", i)
		}
		if !bytes.Equal(a2.Pages[i].Bytes(), b2.Pages[i].Bytes()) {
			t.Errorf("mutated page %d differs across identically-seeded runs", i)
		}
	}
	if len(atrace) != len(btrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(atrace), len(btrace))
	}
	for i := range atrace {
		if atrace[i] != btrace[i] {
			t.Fatalf("trace request %d differs: %+v vs %+v", i, atrace[i], btrace[i])
		}
	}

	// The explicit-generator entry points are the seed-based ones: same
	// seed, same output.
	cfg := DefaultConfig(seed)
	cfg.Pages = 4
	viaSeed, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaRand, err := GenerateRand(NewRand(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaSeed.Pages {
		if !bytes.Equal(viaSeed.Pages[i].Bytes(), viaRand.Pages[i].Bytes()) {
			t.Errorf("Generate and GenerateRand(NewRand(seed)) diverge at page %d", i)
		}
	}
}
