// Package workload generates the deterministic content corpus the paper's
// case study serves: 75 web pages averaging ~135 KB, each composed of ~5 KB
// of text and four images totalling ~130 KB, modeled on a medical
// application server holding four 3D views per study (Section 4.2). Pages
// can be evolved into new versions with controlled mutation so that the
// differencing protocols (Bitmap, Vary-sized blocking) have realistic
// old/new pairs to work on.
package workload

import (
	"bytes"
	"fmt"
	"math/rand"
)

// Defaults matching the paper's corpus description.
const (
	DefaultPages     = 75
	DefaultTextBytes = 5 * 1024
	DefaultImages    = 4
	// DefaultImageBytes is sized so four images total ~130 KB.
	DefaultImageBytes = 130 * 1024 / 4
)

// Page is one adaptive-content unit: a text part and a set of image parts.
type Page struct {
	ID      string
	Version int
	Text    []byte
	Images  [][]byte
	// PoolSeed derives the page's slab dictionary (see genImages); versions
	// of the same page share it so mutations can swap dictionary slabs.
	PoolSeed int64
	// NoiseEvery is the slab noise density the page was generated with
	// (see Config.NoiseEvery); mutations reuse it so fresh slabs match the
	// page's entropy class.
	NoiseEvery int
}

// Bytes serializes the page into the single byte stream that an
// application session transfers: a fixed-width header, each image prefixed
// with a fixed-width marker, then the variable-length text. Fixed-width
// markers and images-before-text keep image offsets stable across versions
// even when text insertions change the text length, matching how real
// image assets live at stable positions while markup shifts — the property
// that gives fixed-size blocking a fair workload.
func (p *Page) Bytes() []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "PAGE %s v%06d\n", p.ID, p.Version)
	for i, img := range p.Images {
		fmt.Fprintf(&buf, "IMG %d %08d\n", i, len(img))
		buf.Write(img)
	}
	buf.WriteString("TEXT\n")
	buf.Write(p.Text)
	return buf.Bytes()
}

// Size returns the serialized size in bytes.
func (p *Page) Size() int { return len(p.Bytes()) }

// Clone returns a deep copy of the page.
func (p *Page) Clone() *Page {
	q := &Page{ID: p.ID, Version: p.Version, PoolSeed: p.PoolSeed, NoiseEvery: p.NoiseEvery}
	q.Text = append([]byte(nil), p.Text...)
	q.Images = make([][]byte, len(p.Images))
	for i, img := range p.Images {
		q.Images[i] = append([]byte(nil), img...)
	}
	return q
}

// Corpus is a versioned set of pages.
type Corpus struct {
	Pages []*Page
}

// Config controls corpus generation.
type Config struct {
	Pages      int
	TextBytes  int
	Images     int
	ImageBytes int
	Seed       int64
	// NoiseEvery controls image entropy: every NoiseEvery-th slab byte
	// receives sensor noise. 1 makes images nearly incompressible, large
	// values make them highly compressible; 0 selects the default (2),
	// which yields realistic medical-image gzip ratios.
	NoiseEvery int
}

// DefaultConfig returns the paper's corpus shape with the given seed.
func DefaultConfig(seed int64) Config {
	return Config{
		Pages:      DefaultPages,
		TextBytes:  DefaultTextBytes,
		Images:     DefaultImages,
		ImageBytes: DefaultImageBytes,
		Seed:       seed,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Pages < 1 {
		return fmt.Errorf("workload: page count must be >= 1, got %d", c.Pages)
	}
	if c.TextBytes < 0 || c.ImageBytes < 0 {
		return fmt.Errorf("workload: negative part size (text %d, image %d)", c.TextBytes, c.ImageBytes)
	}
	if c.Images < 0 {
		return fmt.Errorf("workload: negative image count %d", c.Images)
	}
	if c.NoiseEvery < 0 {
		return fmt.Errorf("workload: negative noise density %d", c.NoiseEvery)
	}
	return nil
}

// words is a small medical-flavored vocabulary used to synthesize text with
// natural-language redundancy, so Gzip achieves realistic (not degenerate)
// compression ratios.
var words = []string{
	"patient", "study", "series", "axial", "coronal", "sagittal", "slice",
	"contrast", "lesion", "volume", "render", "view", "cranial", "scan",
	"surgical", "plan", "navigation", "registration", "fiducial", "probe",
	"the", "of", "and", "with", "shows", "measured", "region", "interest",
	"left", "right", "anterior", "posterior", "update", "annotation",
}

// NewRand returns the seeded generator all workload randomness flows
// through. Threading an explicit *rand.Rand (rather than touching the
// global math/rand source, which fractal-vet's rawrand analyzer forbids)
// is what keeps corpus generation, mutation, and traces reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Generate builds a corpus deterministically from the configuration; the
// same Config always yields byte-identical content.
func Generate(cfg Config) (*Corpus, error) {
	return GenerateRand(NewRand(cfg.Seed), cfg)
}

// GenerateRand is Generate drawing from an explicit generator. Page slab
// dictionaries are still derived from cfg.Seed so that later mutations of
// the same corpus can regenerate them.
func GenerateRand(rng *rand.Rand, cfg Config) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	noise := cfg.NoiseEvery
	if noise == 0 {
		noise = 2
	}
	c := &Corpus{Pages: make([]*Page, cfg.Pages)}
	for i := range c.Pages {
		p := &Page{
			ID:         fmt.Sprintf("page-%03d", i),
			Version:    1,
			PoolSeed:   cfg.Seed*1_000_003 + int64(i),
			NoiseEvery: noise,
		}
		p.Text = genText(rng, cfg.TextBytes)
		p.Images = genImages(rng, slabPool(p.PoolSeed, noise), cfg.Images, cfg.ImageBytes)
		c.Pages[i] = p
	}
	return c, nil
}

// genText emits space-separated vocabulary words with sentence structure
// until it reaches n bytes.
func genText(rng *rand.Rand, n int) []byte {
	var buf bytes.Buffer
	buf.Grow(n + 16)
	sentence := 0
	for buf.Len() < n {
		w := words[rng.Intn(len(words))]
		if sentence == 0 {
			buf.WriteString("<p>")
		}
		buf.WriteString(w)
		sentence++
		if sentence >= 8+rng.Intn(8) {
			buf.WriteString(".</p>\n")
			sentence = 0
		} else {
			buf.WriteByte(' ')
		}
	}
	return buf.Bytes()[:n]
}

// SlabSize is the granularity of the per-page image dictionary. Each page
// owns a pool of SlabSize-byte texture slabs; every image in every version
// of the page is a sequence of pool slabs (plus occasional fresh ones after
// mutation). This models the paper's medical workload — four 3D views of
// the same volume share large displaced regions of identical data — and is
// what lets content-defined chunking (Vary-sized blocking) dedupe content
// that fixed-offset blocking (Bitmap) cannot.
const SlabSize = 8192

// slabPoolLen is the number of distinct slabs in a page's dictionary.
const slabPoolLen = 48

// slabPool deterministically derives a page's slab dictionary from its
// PoolSeed. Both versions of a page regenerate the identical pool.
func slabPool(seed int64, noiseEvery int) [][]byte {
	rng := NewRand(seed)
	pool := make([][]byte, slabPoolLen)
	for i := range pool {
		pool[i] = genSlab(rng, noiseEvery)
	}
	return pool
}

// genSlab synthesizes one image-like texture slab: smooth gradient tiles
// with light noise, giving moderate gzip compressibility like the
// DICOM/BMP images the paper's Bitmap protocol targets.
func genSlab(rng *rand.Rand, noiseEvery int) []byte {
	if noiseEvery < 1 {
		noiseEvery = 2
	}
	s := make([]byte, SlabSize)
	const tile = 256
	var base byte
	for i := range s {
		if i%tile == 0 {
			base = byte(rng.Intn(256))
		}
		s[i] = base + byte(i%tile)/8
		if i%noiseEvery == 0 { // sensor noise controls compressibility
			if noiseEvery == 1 {
				s[i] = byte(rng.Intn(256)) // fully random: incompressible
			} else {
				s[i] += byte(rng.Intn(3)) - 1
			}
		}
	}
	return s
}

// genImages builds the page's images as sequences of dictionary slabs (the
// final slab of each image truncated to fit). Slabs are drawn without
// replacement while the pool lasts, so a fresh page contains no duplicated
// regions; duplication only appears through mutation, where it represents
// genuinely shared view content.
func genImages(rng *rand.Rand, pool [][]byte, count, size int) [][]byte {
	perm := rng.Perm(len(pool))
	next := 0
	draw := func() []byte {
		s := pool[perm[next%len(perm)]]
		next++
		return s
	}
	images := make([][]byte, count)
	for j := range images {
		img := make([]byte, 0, size)
		for len(img) < size {
			s := draw()
			take := size - len(img)
			if take > len(s) {
				take = len(s)
			}
			img = append(img, s[:take]...)
		}
		images[j] = img
	}
	return images
}

// TotalBytes returns the sum of serialized page sizes.
func (c *Corpus) TotalBytes() int64 {
	var total int64
	for _, p := range c.Pages {
		total += int64(p.Size())
	}
	return total
}

// Clone deep-copies the corpus.
func (c *Corpus) Clone() *Corpus {
	out := &Corpus{Pages: make([]*Page, len(c.Pages))}
	for i, p := range c.Pages {
		out.Pages[i] = p.Clone()
	}
	return out
}

// Page returns the page with the given ID, or an error if absent.
func (c *Corpus) Page(id string) (*Page, error) {
	for _, p := range c.Pages {
		if p.ID == id {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: no page %q in corpus", id)
}
