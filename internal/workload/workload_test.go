package workload

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGenerateDefaultMatchesPaperShape(t *testing.T) {
	c, err := Generate(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Pages) != 75 {
		t.Fatalf("pages = %d, want 75", len(c.Pages))
	}
	p := c.Pages[0]
	if len(p.Text) != DefaultTextBytes {
		t.Fatalf("text = %d bytes, want %d", len(p.Text), DefaultTextBytes)
	}
	if len(p.Images) != 4 {
		t.Fatalf("images = %d, want 4", len(p.Images))
	}
	// Average serialized page size should be ~135 KB (the paper's figure),
	// allow a small header margin.
	avg := c.TotalBytes() / int64(len(c.Pages))
	if avg < 130*1024 || avg > 140*1024 {
		t.Fatalf("average page size = %d, want ~135KB", avg)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pages {
		if !bytes.Equal(a.Pages[i].Bytes(), b.Pages[i].Bytes()) {
			t.Fatalf("page %d differs across identical-seed generations", i)
		}
	}
	c, err := Generate(DefaultConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Pages[0].Bytes(), c.Pages[0].Bytes()) {
		t.Fatal("different seeds produced identical content")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{Pages: 0, TextBytes: 10, Images: 1, ImageBytes: 10},
		{Pages: 1, TextBytes: -1, Images: 1, ImageBytes: 10},
		{Pages: 1, TextBytes: 10, Images: -1, ImageBytes: 10},
		{Pages: 1, TextBytes: 10, Images: 1, ImageBytes: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestPageBytesRoundTripStructure(t *testing.T) {
	c, err := Generate(Config{Pages: 1, TextBytes: 100, Images: 2, ImageBytes: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b := c.Pages[0].Bytes()
	if !bytes.HasPrefix(b, []byte("PAGE page-000 v000001\n")) {
		t.Fatalf("serialized page missing header: %q", b[:24])
	}
	if n := bytes.Count(b, []byte("IMG ")); n != 2 {
		t.Fatalf("found %d image markers, want 2", n)
	}
	if !bytes.Contains(b, []byte("TEXT\n")) {
		t.Fatal("serialized page missing text section")
	}
	if c.Pages[0].Size() != len(b) {
		t.Fatalf("Size() = %d, len(Bytes()) = %d", c.Pages[0].Size(), len(b))
	}
}

func TestCloneIsDeep(t *testing.T) {
	c, err := Generate(Config{Pages: 1, TextBytes: 64, Images: 1, ImageBytes: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Pages[0]
	q := p.Clone()
	q.Text[0] ^= 0xFF
	q.Images[0][0] ^= 0xFF
	if p.Text[0] == q.Text[0] || p.Images[0][0] == q.Images[0][0] {
		t.Fatal("Clone shares backing arrays with original")
	}
	cc := c.Clone()
	cc.Pages[0].Text[1] ^= 0xFF
	if c.Pages[0].Text[1] == cc.Pages[0].Text[1] {
		t.Fatal("Corpus.Clone shares page data")
	}
}

func TestCorpusPageLookup(t *testing.T) {
	c, err := Generate(Config{Pages: 3, TextBytes: 16, Images: 0, ImageBytes: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Page("page-001")
	if err != nil || p.ID != "page-001" {
		t.Fatalf("lookup page-001 = %v, %v", p, err)
	}
	if _, err := c.Page("page-999"); err == nil {
		t.Fatal("lookup of absent page succeeded")
	}
}

func TestMutatePreservesOriginalAndBumpsVersion(t *testing.T) {
	c, err := Generate(Config{Pages: 1, TextBytes: 2048, Images: 2, ImageBytes: 2048, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Pages[0]
	orig := append([]byte(nil), p.Bytes()...)
	q, err := Mutate(p, DefaultMutation(99))
	if err != nil {
		t.Fatal(err)
	}
	if q.Version != p.Version+1 {
		t.Fatalf("version = %d, want %d", q.Version, p.Version+1)
	}
	if !bytes.Equal(p.Bytes(), orig) {
		t.Fatal("Mutate modified the original page")
	}
	if bytes.Equal(q.Bytes(), orig) {
		t.Fatal("Mutate produced an identical page at default rates")
	}
}

func TestMutateZeroRatesChangesNothingButVersion(t *testing.T) {
	c, err := Generate(Config{Pages: 1, TextBytes: 512, Images: 1, ImageBytes: 512, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Pages[0]
	q, err := Mutate(p, Mutation{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Text, q.Text) {
		t.Fatal("zero-rate mutation changed text")
	}
	for i := range p.Images {
		if !bytes.Equal(p.Images[i], q.Images[i]) {
			t.Fatalf("zero-rate mutation changed image %d", i)
		}
	}
}

func TestMutateValidation(t *testing.T) {
	c, _ := Generate(Config{Pages: 1, TextBytes: 64, Images: 0, ImageBytes: 0, Seed: 1})
	bad := []Mutation{
		{TextEditFrac: -0.1},
		{TextInsertFrac: 1.5},
		{ImageRegionFrac: 2},
	}
	for i, m := range bad {
		if _, err := Mutate(c.Pages[0], m); err == nil {
			t.Errorf("case %d: invalid mutation accepted", i)
		}
	}
}

func TestMutateInsertionsGrowText(t *testing.T) {
	c, err := Generate(Config{Pages: 1, TextBytes: 4096, Images: 0, ImageBytes: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Mutate(c.Pages[0], Mutation{TextInsertFrac: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Text) <= len(c.Pages[0].Text) {
		t.Fatalf("insertion mutation did not grow text: %d <= %d", len(q.Text), len(c.Pages[0].Text))
	}
}

func TestMutateCorpusIndependentStreams(t *testing.T) {
	c, err := Generate(Config{Pages: 3, TextBytes: 1024, Images: 1, ImageBytes: 1024, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := MutateCorpus(c, DefaultMutation(17))
	if err != nil {
		t.Fatal(err)
	}
	if len(v2.Pages) != 3 {
		t.Fatalf("mutated corpus has %d pages, want 3", len(v2.Pages))
	}
	// Each page must differ from its original, and mutation must be
	// deterministic for a fixed seed.
	v2b, err := MutateCorpus(c, DefaultMutation(17))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v2.Pages {
		if bytes.Equal(v2.Pages[i].Bytes(), c.Pages[i].Bytes()) {
			t.Errorf("page %d unchanged by corpus mutation", i)
		}
		if !bytes.Equal(v2.Pages[i].Bytes(), v2b.Pages[i].Bytes()) {
			t.Errorf("page %d mutation nondeterministic", i)
		}
	}
}

// Property: mutation at moderate image rates preserves image length (tiles
// are redrawn in place), a precondition for the Bitmap protocol's
// fixed-size model to be meaningful.
func TestMutateImagePreservesLengthProperty(t *testing.T) {
	f := func(seed int64, frac uint8) bool {
		m := Mutation{ImageRegionFrac: float64(frac%101) / 100, Seed: seed}
		c, err := Generate(Config{Pages: 1, TextBytes: 0, Images: 1, ImageBytes: 3000, Seed: seed})
		if err != nil {
			return false
		}
		q, err := Mutate(c.Pages[0], m)
		if err != nil {
			return false
		}
		return len(q.Images[0]) == len(c.Pages[0].Images[0])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
