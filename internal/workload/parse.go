package workload

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Parse is the inverse of Page.Bytes: it reconstructs the structured page
// from its serialized stream. Content-adaptation PADs use it to transform
// individual parts (e.g. downscale images) while preserving the layout.
func Parse(data []byte) (*Page, error) {
	rest := data
	line, rest, err := cutLine(rest)
	if err != nil {
		return nil, fmt.Errorf("workload: parse: missing page header")
	}
	fields := strings.Fields(string(line))
	if len(fields) != 3 || fields[0] != "PAGE" || !strings.HasPrefix(fields[2], "v") {
		return nil, fmt.Errorf("workload: parse: bad page header %q", line)
	}
	version, err := strconv.Atoi(strings.TrimPrefix(fields[2], "v"))
	if err != nil {
		return nil, fmt.Errorf("workload: parse: bad version in header %q: %w", line, err)
	}
	p := &Page{ID: fields[1], Version: version}
	for {
		if bytes.HasPrefix(rest, []byte("TEXT\n")) {
			p.Text = append([]byte(nil), rest[len("TEXT\n"):]...)
			return p, nil
		}
		line, next, err := cutLine(rest)
		if err != nil {
			return nil, fmt.Errorf("workload: parse: truncated before TEXT section")
		}
		mf := strings.Fields(string(line))
		if len(mf) != 3 || mf[0] != "IMG" {
			return nil, fmt.Errorf("workload: parse: bad image marker %q", line)
		}
		idx, err1 := strconv.Atoi(mf[1])
		size, err2 := strconv.Atoi(mf[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("workload: parse: bad image marker %q", line)
		}
		if idx != len(p.Images) {
			return nil, fmt.Errorf("workload: parse: image %d out of order (have %d)", idx, len(p.Images))
		}
		if size < 0 || size > len(next) {
			return nil, fmt.Errorf("workload: parse: image %d of %d bytes exceeds remaining %d", idx, size, len(next))
		}
		p.Images = append(p.Images, append([]byte(nil), next[:size]...))
		rest = next[size:]
	}
}

// cutLine splits data at the first newline.
func cutLine(data []byte) (line, rest []byte, err error) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return nil, nil, fmt.Errorf("workload: no newline")
	}
	return data[:i], data[i+1:], nil
}
