package workload

import (
	"testing"
)

func traceCorpus(t testing.TB) *Corpus {
	t.Helper()
	c, err := Generate(Config{Pages: 20, TextBytes: 16, Images: 0, ImageBytes: 0, Seed: 90})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateTraceShape(t *testing.T) {
	c := traceCorpus(t)
	cfg := DefaultTraceConfig(1)
	trace, err := GenerateTrace(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != cfg.Requests {
		t.Fatalf("trace length = %d, want %d", len(trace), cfg.Requests)
	}
	valid := map[string]bool{}
	for _, p := range c.Pages {
		valid[p.ID] = true
	}
	counts := map[string]int{}
	clients := map[int]bool{}
	for _, r := range trace {
		if !valid[r.Resource] {
			t.Fatalf("trace references unknown resource %q", r.Resource)
		}
		if r.Client < 0 || r.Client >= cfg.Clients {
			t.Fatalf("trace client %d out of range", r.Client)
		}
		counts[r.Resource]++
		clients[r.Client] = true
	}
	if len(clients) != cfg.Clients {
		t.Fatalf("trace used %d clients, want %d", len(clients), cfg.Clients)
	}
	// Zipf skew: the most popular page must dominate the median page.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < cfg.Requests/4 {
		t.Fatalf("head page got %d of %d requests; no Zipf skew", max, cfg.Requests)
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	c := traceCorpus(t)
	a, err := GenerateTrace(c, DefaultTraceConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(c, DefaultTraceConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace entry %d nondeterministic", i)
		}
	}
}

func TestGenerateTraceValidation(t *testing.T) {
	c := traceCorpus(t)
	bad := []TraceConfig{
		{Clients: 0, Requests: 1, ZipfS: 1.2},
		{Clients: 1, Requests: 0, ZipfS: 1.2},
		{Clients: 1, Requests: 1, ZipfS: 1.0},
	}
	for i, cfg := range bad {
		if _, err := GenerateTrace(c, cfg); err == nil {
			t.Errorf("case %d: invalid trace config accepted", i)
		}
	}
	if _, err := GenerateTrace(&Corpus{}, DefaultTraceConfig(1)); err == nil {
		t.Error("trace over empty corpus accepted")
	}
}
