package workload

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	c, err := Generate(Config{Pages: 2, TextBytes: 777, Images: 3, ImageBytes: 1000, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Pages {
		got, err := Parse(p.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != p.ID || got.Version != p.Version {
			t.Fatalf("identity = %s v%d, want %s v%d", got.ID, got.Version, p.ID, p.Version)
		}
		if !bytes.Equal(got.Text, p.Text) {
			t.Fatal("text mismatch")
		}
		if len(got.Images) != len(p.Images) {
			t.Fatalf("images = %d, want %d", len(got.Images), len(p.Images))
		}
		for i := range p.Images {
			if !bytes.Equal(got.Images[i], p.Images[i]) {
				t.Fatalf("image %d mismatch", i)
			}
		}
		if !bytes.Equal(got.Bytes(), p.Bytes()) {
			t.Fatal("re-serialization mismatch")
		}
	}
}

func TestParseNoImages(t *testing.T) {
	c, err := Generate(Config{Pages: 1, TextBytes: 64, Images: 0, ImageBytes: 0, Seed: 56})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(c.Pages[0].Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Images) != 0 {
		t.Fatalf("images = %d", len(got.Images))
	}
}

func TestParseRejectsCorrupt(t *testing.T) {
	c, err := Generate(Config{Pages: 1, TextBytes: 64, Images: 1, ImageBytes: 64, Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	good := c.Pages[0].Bytes()
	cases := [][]byte{
		nil,
		[]byte("no newline at all"),
		[]byte("WRONG header\nTEXT\nx"),
		[]byte("PAGE p v000001\nIMG 1 00000010\n0123456789TEXT\n"), // out of order
		[]byte("PAGE p v000001\nIMG 0 99999999\nshort"),            // oversized image
		good[:len(good)/4],                                  // truncated
		[]byte("PAGE p vNaN\nTEXT\n"),                       // bad version
		[]byte("PAGE p v000001\nIMG zero 00000010\nTEXT\n"), // bad index
	}
	for i, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("case %d: corrupt page parsed", i)
		}
	}
}

// Property: Parse(Bytes()) is the identity on generated pages of arbitrary
// shape.
func TestParseRoundTripProperty(t *testing.T) {
	f := func(seed int64, textLen uint16, imgs uint8, imgLen uint16) bool {
		cfg := Config{
			Pages:      1,
			TextBytes:  int(textLen % 2048),
			Images:     int(imgs % 5),
			ImageBytes: int(imgLen%4096) + 1,
			Seed:       seed,
		}
		c, err := Generate(cfg)
		if err != nil {
			return false
		}
		p := c.Pages[0]
		got, err := Parse(p.Bytes())
		if err != nil {
			return false
		}
		return bytes.Equal(got.Bytes(), p.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
