package workload

import (
	"bytes"
	"fmt"
	"math/rand"
)

// Mutation controls how a page evolves between versions. The three knobs
// map to the behaviours that discriminate the case-study protocols:
//
//   - TextEditFrac: fraction of text words replaced in place. In-place
//     changes are friendly to both differencing protocols.
//   - TextInsertFrac: fraction of text positions receiving insertions.
//     Insertions shift all following bytes, which defeats fixed-size
//     blocking (Bitmap) but not content-defined chunking (Vary-sized
//     blocking) — the LBFS property the paper cites.
//   - ImageRegionFrac: fraction of image slab positions changed between
//     versions. A changed position either receives the *content of another
//     slab position in the same page* — data that still exists in the old
//     version but at a different offset, which Vary-sized blocking dedupes
//     and Bitmap must retransmit — or, with probability ImageFreshFrac, a
//     genuinely new slab that every differencing protocol must send. This
//     models the paper's medical workload: successive 3D views of one
//     volume share large displaced regions.
type Mutation struct {
	TextEditFrac    float64
	TextInsertFrac  float64
	ImageRegionFrac float64
	ImageFreshFrac  float64
	Seed            int64
}

// DefaultMutation models a between-visit update of a medical study: a few
// text edits, sparse insertions, ~15% of image slabs changed with a third
// of those being genuinely new content.
func DefaultMutation(seed int64) Mutation {
	return Mutation{
		TextEditFrac:    0.05,
		TextInsertFrac:  0.01,
		ImageRegionFrac: 0.17,
		ImageFreshFrac:  0.30,
		Seed:            seed,
	}
}

// Validate reports whether the mutation rates are usable.
func (m Mutation) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"TextEditFrac", m.TextEditFrac},
		{"TextInsertFrac", m.TextInsertFrac},
		{"ImageRegionFrac", m.ImageRegionFrac},
		{"ImageFreshFrac", m.ImageFreshFrac},
	} {
		if f.v < 0 || f.v > 1 || f.v != f.v {
			return fmt.Errorf("workload: %s = %v out of [0,1]", f.name, f.v)
		}
	}
	return nil
}

// Mutate returns a new version of the page. The original is not modified.
func Mutate(p *Page, m Mutation) (*Page, error) {
	return MutateRand(NewRand(m.Seed^int64(len(p.Text))), p, m)
}

// MutateRand is Mutate drawing every random decision from an explicit
// seeded generator.
func MutateRand(rng *rand.Rand, p *Page, m Mutation) (*Page, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	q := p.Clone()
	q.Version = p.Version + 1
	q.Text = mutateText(rng, q.Text, m.TextEditFrac, m.TextInsertFrac)
	mutateImages(rng, p.Images, q.Images, m.ImageRegionFrac, m.ImageFreshFrac, p.NoiseEvery)
	return q, nil
}

// MutateCorpus evolves every page of the corpus into its next version.
func MutateCorpus(c *Corpus, m Mutation) (*Corpus, error) {
	out := &Corpus{Pages: make([]*Page, len(c.Pages))}
	for i, p := range c.Pages {
		pm := m
		pm.Seed = m.Seed + int64(i)*7919 // distinct per-page stream
		q, err := Mutate(p, pm)
		if err != nil {
			return nil, fmt.Errorf("workload: mutating %s: %w", p.ID, err)
		}
		out.Pages[i] = q
	}
	return out, nil
}

func mutateText(rng *rand.Rand, text []byte, editFrac, insertFrac float64) []byte {
	toks := bytes.Split(text, []byte(" "))
	var out [][]byte
	for _, tok := range toks {
		t := tok
		if len(t) > 0 && rng.Float64() < editFrac {
			t = []byte(words[rng.Intn(len(words))])
		}
		out = append(out, t)
		if rng.Float64() < insertFrac {
			out = append(out, []byte(words[rng.Intn(len(words))]))
		}
	}
	return bytes.Join(out, []byte(" "))
}

// slabPos addresses one slab-aligned region of one image.
type slabPos struct {
	img, start, end int
}

// slabPositions enumerates the slab-aligned regions of a set of images.
func slabPositions(images [][]byte) []slabPos {
	var ps []slabPos
	for i, img := range images {
		for start := 0; start < len(img); start += SlabSize {
			end := start + SlabSize
			if end > len(img) {
				end = len(img)
			}
			ps = append(ps, slabPos{img: i, start: start, end: end})
		}
	}
	return ps
}

// mutateImages rewrites whole slab positions of dst in place: a changed
// position either receives the content of another position of the OLD
// images (moved view data, dedupable by content-defined chunking) or, with
// probability freshFrac, a brand-new slab.
func mutateImages(rng *rand.Rand, old, dst [][]byte, regionFrac, freshFrac float64, noiseEvery int) {
	positions := slabPositions(old)
	if len(positions) == 0 {
		return
	}
	for _, p := range positions {
		if rng.Float64() >= regionFrac {
			continue
		}
		var slab []byte
		if rng.Float64() < freshFrac {
			slab = genSlab(rng, noiseEvery)
		} else {
			src := positions[rng.Intn(len(positions))]
			slab = old[src.img][src.start:src.end]
		}
		copy(dst[p.img][p.start:p.end], slab)
	}
}
