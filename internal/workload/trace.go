package workload

import (
	"fmt"
	"math/rand"
)

// Request is one entry of an application request trace.
type Request struct {
	Client   int    // which client issues the request
	Resource string // page id
}

// TraceConfig parameterizes request-trace generation.
type TraceConfig struct {
	Clients  int
	Requests int // total requests across all clients
	// ZipfS is the skew parameter (> 1); web page popularity is
	// classically Zipf-like. 1.2 is a mild, realistic skew.
	ZipfS float64
	Seed  int64
}

// DefaultTraceConfig returns a mild-skew trace over the corpus.
func DefaultTraceConfig(seed int64) TraceConfig {
	return TraceConfig{Clients: 10, Requests: 500, ZipfS: 1.2, Seed: seed}
}

// Validate reports whether the configuration is usable.
func (c TraceConfig) Validate() error {
	if c.Clients < 1 {
		return fmt.Errorf("workload: trace needs >= 1 client, got %d", c.Clients)
	}
	if c.Requests < 1 {
		return fmt.Errorf("workload: trace needs >= 1 request, got %d", c.Requests)
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("workload: zipf skew must be > 1, got %v", c.ZipfS)
	}
	return nil
}

// GenerateTrace builds a deterministic request trace against a corpus:
// page popularity follows a Zipf distribution and requests round-robin
// across clients.
func GenerateTrace(c *Corpus, cfg TraceConfig) ([]Request, error) {
	return GenerateTraceRand(NewRand(cfg.Seed), c, cfg)
}

// GenerateTraceRand is GenerateTrace drawing from an explicit seeded
// generator.
func GenerateTraceRand(rng *rand.Rand, c *Corpus, cfg TraceConfig) ([]Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(c.Pages) == 0 {
		return nil, fmt.Errorf("workload: trace over empty corpus")
	}
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(c.Pages)-1))
	if zipf == nil {
		return nil, fmt.Errorf("workload: bad zipf parameters (s=%v, n=%d)", cfg.ZipfS, len(c.Pages))
	}
	out := make([]Request, cfg.Requests)
	for i := range out {
		out[i] = Request{
			Client:   i % cfg.Clients,
			Resource: c.Pages[int(zipf.Uint64())].ID,
		}
	}
	return out, nil
}
