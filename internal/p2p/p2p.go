// Package p2p realizes the paper's claim that "it is straightforward to
// support the peer-to-peer model" (Section 3.1): a Peer bundles all three
// Fractal roles — application server for its own content, negotiation
// manager for its own protocol adaptation tree, and client host toward
// other peers. Two peers with different environments negotiate different
// protocols for the two directions of the same relationship, and PAD
// modules travel directly between peers with the same digest/signature
// checks as in the client/server deployment.
package p2p

import (
	"fmt"
	"sync"

	"fractal/internal/appserver"
	"fractal/internal/cdn"
	"fractal/internal/client"
	"fractal/internal/core"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
	"fractal/internal/proxy"
	"fractal/internal/workload"
)

// Config parameterizes a peer.
type Config struct {
	Name    string
	Station netsim.Station
	// Corpus versions this peer shares (at least one).
	Versions []*workload.Corpus
	// SessionRequests amortizes PAD downloads in the overhead model.
	SessionRequests int
	// Matrices for the peer's own negotiation manager; nil selects the
	// case-study matrices.
	Matrices *core.Matrices
}

// Peer is one Fractal peer-to-peer endpoint.
type Peer struct {
	name    string
	station netsim.Station
	app     *appserver.Server
	proxy   *proxy.Proxy
	trust   *mobilecode.TrustList
	signer  *mobilecode.Signer

	sessions int

	mu      sync.Mutex
	clients map[string]*client.Client // per remote peer
}

// NewPeer builds a peer sharing the given content.
func NewPeer(cfg Config) (*Peer, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("p2p: peer needs a name")
	}
	if len(cfg.Versions) == 0 {
		return nil, fmt.Errorf("p2p: peer %s shares no content", cfg.Name)
	}
	if cfg.SessionRequests < 1 {
		cfg.SessionRequests = 1
	}
	signer, err := mobilecode.NewSigner(cfg.Name)
	if err != nil {
		return nil, err
	}
	app, err := appserver.New("peer:"+cfg.Name, signer)
	if err != nil {
		return nil, err
	}
	if err := app.InstallCorpus(cfg.Versions...); err != nil {
		return nil, err
	}
	if err := app.DeployPADs("1.0"); err != nil {
		return nil, err
	}
	appMeta, err := app.MeasureAppMeta(4)
	if err != nil {
		return nil, err
	}
	ms := cfg.Matrices
	if ms == nil {
		m, err := core.CaseStudyMatrices()
		if err != nil {
			return nil, err
		}
		ms = &m
	}
	px, err := proxy.New(core.OverheadModel{
		Matrices:          *ms,
		Rho:               netsim.DefaultRho,
		ServerCPUMHz:      cfg.Station.Device.CPUMHz, // the peer serves on its own CPU
		IncludeServerComp: true,
		SessionRequests:   cfg.SessionRequests,
	}, 128)
	if err != nil {
		return nil, err
	}
	if err := px.PushAppMeta(appMeta); err != nil {
		return nil, err
	}
	return &Peer{
		name:     cfg.Name,
		station:  cfg.Station,
		app:      app,
		proxy:    px,
		trust:    mobilecode.NewTrustList(),
		signer:   signer,
		sessions: cfg.SessionRequests,
		clients:  map[string]*client.Client{},
	}, nil
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.name }

// AppID returns the peer's shared-content application id.
func (p *Peer) AppID() string { return p.app.AppID() }

// Trust records that this peer trusts code signed by the other peer, the
// peer-to-peer analogue of installing an operator key.
func (p *Peer) Trust(q *Peer) error {
	entity, key := q.app.TrustedKey()
	return p.trust.Add(entity, key)
}

// modules serves this peer's PAD modules to another peer.
func (p *Peer) fetchModule(meta core.PADMeta) ([]byte, error) {
	// Reuse the publishing path: pack on demand.
	origin, err := memOrigin()
	if err != nil {
		return nil, err
	}
	if err := p.app.PublishPADs(origin); err != nil {
		return nil, err
	}
	return origin.Get(meta.URL)
}

// clientFor lazily builds this peer's client role toward q.
func (p *Peer) clientFor(q *Peer) (*client.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.clients[q.name]; ok {
		return c, nil
	}
	c, err := client.New(client.Config{
		Env:             envFor(p.station),
		SessionRequests: p.sessions,
		Trust:           p.trust,
		Sandbox:         mobilecode.DefaultSandbox(),
	},
		q.proxy, // negotiate with the remote peer's negotiation manager
		padFetcherFunc(q.fetchModule),
		client.LocalAppServer{Encode: func(ids []string, res string, have int) ([]byte, int, string, error) {
			r, err := q.app.Encode(ids, res, have)
			if err != nil {
				return nil, 0, "", err
			}
			return r.Payload, r.Version, r.PADID, nil
		}},
	)
	if err != nil {
		return nil, fmt.Errorf("p2p: %s -> %s: %w", p.name, q.name, err)
	}
	p.clients[q.name] = c
	return c, nil
}

// Fetch retrieves a resource from another peer with full Fractal
// machinery: negotiation against q's PAT, PAD transfer + verification,
// and adapted (differential on repeat) content transfer.
func (p *Peer) Fetch(q *Peer, resource string) ([]byte, error) {
	c, err := p.clientFor(q)
	if err != nil {
		return nil, err
	}
	return c.Request(q.AppID(), resource)
}

// NegotiatedWith reports the PAD metadata p uses toward q (negotiating
// first if needed).
func (p *Peer) NegotiatedWith(q *Peer) ([]core.PADMeta, error) {
	c, err := p.clientFor(q)
	if err != nil {
		return nil, err
	}
	return c.EnsureProtocol(q.AppID())
}

// Stats exposes the client-role counters toward q.
func (p *Peer) Stats(q *Peer) (client.Stats, error) {
	c, err := p.clientFor(q)
	if err != nil {
		return client.Stats{}, err
	}
	return c.Stats(), nil
}

// padFetcherFunc adapts a function to client.PADFetcher.
type padFetcherFunc func(core.PADMeta) ([]byte, error)

// FetchPAD implements client.PADFetcher.
func (f padFetcherFunc) FetchPAD(meta core.PADMeta) ([]byte, error) { return f(meta) }

// envFor converts a station to negotiation metadata (duplicated from the
// experiment package to keep p2p free of the evaluation harness).
func envFor(st netsim.Station) core.Env {
	return core.Env{
		Dev: core.DevMeta{
			OSType:  string(st.Device.OS),
			CPUType: string(st.Device.CPU),
			CPUMHz:  st.Device.CPUMHz,
			MemMB:   st.Device.MemMB,
		},
		Ntwk: core.NtwkMeta{
			NetworkType:   string(st.Link.Type),
			BandwidthKbps: st.Link.BandwidthKbps,
		},
	}
}

// memOrigin is a throwaway in-memory module store used as the packing
// sink for peer-to-peer module transfer.
func memOrigin() (*cdn.Origin, error) {
	return cdn.NewOrigin(netsim.SharedServer{Name: "p2p", UplinkKbps: 1, Rho: 1})
}
