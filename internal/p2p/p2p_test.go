package p2p

import (
	"bytes"
	"testing"

	"fractal/internal/netsim"
	"fractal/internal/workload"
)

func corpusChain(t testing.TB, seed int64) []*workload.Corpus {
	t.Helper()
	v1, err := workload.Generate(workload.Config{
		Pages: 3, TextBytes: 2048, Images: 2, ImageBytes: 16384, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := workload.MutateCorpus(v1, workload.DefaultMutation(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return []*workload.Corpus{v1, v2}
}

func twoPeers(t testing.TB) (*Peer, *Peer, []*workload.Corpus, []*workload.Corpus) {
	t.Helper()
	chainA := corpusChain(t, 300)
	chainB := corpusChain(t, 400)
	a, err := NewPeer(Config{Name: "workstation", Station: netsim.Desktop, Versions: chainA, SessionRequests: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPeer(Config{Name: "handheld", Station: netsim.PDA, Versions: chainB, SessionRequests: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Trust(b); err != nil {
		t.Fatal(err)
	}
	if err := b.Trust(a); err != nil {
		t.Fatal(err)
	}
	return a, b, chainA, chainB
}

func TestNewPeerValidation(t *testing.T) {
	chain := corpusChain(t, 500)
	if _, err := NewPeer(Config{Station: netsim.Desktop, Versions: chain}); err == nil {
		t.Error("anonymous peer accepted")
	}
	if _, err := NewPeer(Config{Name: "x", Station: netsim.Desktop}); err == nil {
		t.Error("contentless peer accepted")
	}
}

func TestPeerFetchBothDirections(t *testing.T) {
	a, b, chainA, chainB := twoPeers(t)
	// The PDA peer fetches from the workstation...
	got, err := b.Fetch(a, "page-000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chainA[1].Pages[0].Bytes()) {
		t.Fatal("b<-a content mismatch")
	}
	// ...and the workstation fetches from the PDA.
	got, err = a.Fetch(b, "page-001")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chainB[1].Pages[1].Bytes()) {
		t.Fatal("a<-b content mismatch")
	}
}

func TestPeerDirectionsNegotiateIndependently(t *testing.T) {
	a, b, _, _ := twoPeers(t)
	// Both directions share the Bluetooth bottleneck (the PDA end), but
	// the negotiation happens per-direction against different PATs and
	// environments; both must succeed and deliver adapted protocols.
	toA, err := b.NegotiatedWith(a)
	if err != nil {
		t.Fatal(err)
	}
	toB, err := a.NegotiatedWith(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(toA) == 0 || len(toB) == 0 {
		t.Fatal("empty negotiation result")
	}
	// The PDA consumer over Bluetooth should land on a differencing
	// protocol, never plain direct.
	if toA[0].Protocol == "direct" {
		t.Errorf("PDA<-workstation negotiated direct over Bluetooth")
	}
}

func TestPeerDifferentialRepeatFetch(t *testing.T) {
	a, b, _, _ := twoPeers(t)
	if _, err := b.Fetch(a, "page-002"); err != nil {
		t.Fatal(err)
	}
	first, err := b.Stats(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Fetch(a, "page-002"); err != nil {
		t.Fatal(err)
	}
	second, err := b.Stats(a)
	if err != nil {
		t.Fatal(err)
	}
	delta := second.PayloadBytes - first.PayloadBytes
	if delta >= first.PayloadBytes/2 {
		t.Fatalf("repeat fetch cost %d, first cost %d; not differential", delta, first.PayloadBytes)
	}
}

func TestPeerRefusesUntrustedPeer(t *testing.T) {
	chainA := corpusChain(t, 600)
	chainB := corpusChain(t, 700)
	a, err := NewPeer(Config{Name: "a", Station: netsim.Desktop, Versions: chainA})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPeer(Config{Name: "b", Station: netsim.PDA, Versions: chainB})
	if err != nil {
		t.Fatal(err)
	}
	// b never trusted a: the PAD must fail the code-signing check.
	if _, err := b.Fetch(a, "page-000"); err == nil {
		t.Fatal("fetch from untrusted peer succeeded")
	}
}

func TestThreePeerMesh(t *testing.T) {
	// A small pervasive mesh: every peer trusts the others and can fetch
	// from both, with per-relationship client roles.
	chains := [][]*workload.Corpus{
		corpusChain(t, 800), corpusChain(t, 810), corpusChain(t, 820),
	}
	stations := []netsim.Station{netsim.Desktop, netsim.Laptop, netsim.PDA}
	peers := make([]*Peer, 3)
	for i := range peers {
		p, err := NewPeer(Config{
			Name:            []string{"desk", "lap", "pda"}[i],
			Station:         stations[i],
			Versions:        chains[i],
			SessionRequests: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	for i := range peers {
		for j := range peers {
			if i == j {
				continue
			}
			if err := peers[i].Trust(peers[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range peers {
		for j := range peers {
			if i == j {
				continue
			}
			got, err := peers[i].Fetch(peers[j], "page-000")
			if err != nil {
				t.Fatalf("%s <- %s: %v", peers[i].Name(), peers[j].Name(), err)
			}
			want := chains[j][1].Pages[0].Bytes()
			if !bytes.Equal(got, want) {
				t.Fatalf("%s <- %s: content mismatch", peers[i].Name(), peers[j].Name())
			}
		}
	}
	// Six independent client relationships, each negotiated once.
	for i := range peers {
		for j := range peers {
			if i == j {
				continue
			}
			st, err := peers[i].Stats(peers[j])
			if err != nil {
				t.Fatal(err)
			}
			if st.Negotiations != 1 {
				t.Errorf("%s->%s negotiations = %d", peers[i].Name(), peers[j].Name(), st.Negotiations)
			}
		}
	}
}
