// Package transcode implements content-adaptation transforms, the
// extension the paper sketches in Section 5: "Fractal provides a general
// framework for other adaptation functionality as well by extending the
// PAD into other adaptation functions, e.g. content adaptation." A
// Transcoder is a server-side PAD layer that rewrites the content itself —
// here, full fidelity versus a downscaled thumbnail rendition for weak
// devices — before a communication-optimization PAD encodes it for the
// wire. Transcoders are deterministic, so old and new versions transform
// consistently and differential protocols keep working on the adapted
// stream.
package transcode

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"fractal/internal/codec"
	"fractal/internal/workload"
)

// Transcoder rewrites application content into an adapted rendition. The
// transform must be deterministic: two calls on equal input yield equal
// output. Implementations must also be safe for concurrent use — the
// application server calls Transform from many sessions at once — which
// in practice means keeping them stateless, as Identity and Thumbnail
// are.
type Transcoder interface {
	// Name returns the registry name.
	Name() string
	// Transform rewrites one serialized page.
	Transform(page []byte) ([]byte, error)
	// Cost reports the server-side computing cost of the transform on the
	// 500 MHz reference CPU (client side is zero: the adapted content IS
	// the content the client consumes).
	Cost() codec.CostModel
}

// Registry names.
const (
	NameIdentity  = "full"
	NameThumbnail = "thumbnail"
)

var (
	regMu    sync.RWMutex
	registry = map[string]func() (Transcoder, error){}
)

// Register installs a transcoder constructor.
func Register(name string, ctor func() (Transcoder, error)) error {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("transcode: %q already registered", name)
	}
	registry[name] = ctor
	return nil
}

// New constructs a registered transcoder.
func New(name string) (Transcoder, error) {
	regMu.RLock()
	ctor, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transcode: unknown transcoder %q", name)
	}
	return ctor()
}

// Names returns the sorted registry names.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(Register(NameIdentity, func() (Transcoder, error) { return Identity{}, nil }))
	must(Register(NameThumbnail, func() (Transcoder, error) { return NewThumbnail(2) }))
}

// Identity is the full-fidelity rendition: content passes through
// untouched.
type Identity struct{}

// Name implements Transcoder.
func (Identity) Name() string { return NameIdentity }

// Transform implements Transcoder.
func (Identity) Transform(page []byte) ([]byte, error) {
	return append([]byte(nil), page...), nil
}

// Cost implements Transcoder.
func (Identity) Cost() codec.CostModel { return codec.CostModel{} }

// Thumbnail downscales every image of a page by the configured factor
// (averaging runs of bytes, an intensity decimation of the synthetic
// medical imagery) and leaves text intact. A factor of 2 roughly halves
// the page.
type Thumbnail struct {
	factor int
}

// NewThumbnail returns a downscaler with the given reduction factor.
func NewThumbnail(factor int) (*Thumbnail, error) {
	if factor < 2 || factor > 64 {
		return nil, fmt.Errorf("transcode: thumbnail factor %d out of range [2,64]", factor)
	}
	return &Thumbnail{factor: factor}, nil
}

// Name implements Transcoder.
func (t *Thumbnail) Name() string { return NameThumbnail }

// Factor returns the reduction factor.
func (t *Thumbnail) Factor() int { return t.factor }

// Cost implements Transcoder: a cheap linear pass over the content.
func (t *Thumbnail) Cost() codec.CostModel {
	return codec.CostModel{ServerNsPerByte: 45, ServerFixed: 100 * time.Microsecond}
}

// Transform implements Transcoder.
func (t *Thumbnail) Transform(page []byte) ([]byte, error) {
	p, err := workload.Parse(page)
	if err != nil {
		return nil, fmt.Errorf("transcode: thumbnail: %w", err)
	}
	for i, img := range p.Images {
		p.Images[i] = decimate(img, t.factor)
	}
	return p.Bytes(), nil
}

// decimate averages each run of `factor` bytes into one output byte.
func decimate(img []byte, factor int) []byte {
	if len(img) == 0 {
		return nil
	}
	out := make([]byte, 0, (len(img)+factor-1)/factor)
	for i := 0; i < len(img); i += factor {
		end := i + factor
		if end > len(img) {
			end = len(img)
		}
		sum := 0
		for _, b := range img[i:end] {
			sum += int(b)
		}
		out = append(out, byte(sum/(end-i)))
	}
	return out
}
