package transcode

import (
	"bytes"
	"testing"
	"testing/quick"

	"fractal/internal/workload"
)

func samplePage(t testing.TB) []byte {
	t.Helper()
	c, err := workload.Generate(workload.Config{
		Pages: 1, TextBytes: 1024, Images: 2, ImageBytes: 8192, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.Pages[0].Bytes()
}

func TestRegistry(t *testing.T) {
	names := Names()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	if !have[NameIdentity] || !have[NameThumbnail] {
		t.Fatalf("registry = %v", names)
	}
	if _, err := New("sepia-filter"); err == nil {
		t.Fatal("unknown transcoder constructed")
	}
	if err := Register(NameIdentity, func() (Transcoder, error) { return Identity{}, nil }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestIdentityPassThrough(t *testing.T) {
	page := samplePage(t)
	tc, err := New(NameIdentity)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tc.Transform(page)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, page) {
		t.Fatal("identity changed content")
	}
	// Output must not alias the input.
	out[0] ^= 0xFF
	if page[0] == out[0] {
		t.Fatal("identity aliases input")
	}
	if c := (Identity{}).Cost(); c.ServerNsPerByte != 0 {
		t.Fatal("identity has nonzero cost")
	}
}

func TestThumbnailShrinksImagesOnly(t *testing.T) {
	page := samplePage(t)
	orig, err := workload.Parse(page)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewThumbnail(2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tc.Transform(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) >= len(page) {
		t.Fatalf("thumbnail did not shrink: %d -> %d", len(page), len(out))
	}
	thumb, err := workload.Parse(out)
	if err != nil {
		t.Fatalf("thumbnail output unparseable: %v", err)
	}
	if !bytes.Equal(thumb.Text, orig.Text) {
		t.Fatal("thumbnail modified text")
	}
	if len(thumb.Images) != len(orig.Images) {
		t.Fatalf("image count %d -> %d", len(orig.Images), len(thumb.Images))
	}
	for i := range thumb.Images {
		want := (len(orig.Images[i]) + 1) / 2
		if len(thumb.Images[i]) != want {
			t.Fatalf("image %d: %d bytes, want %d", i, len(thumb.Images[i]), want)
		}
	}
}

func TestThumbnailDeterministic(t *testing.T) {
	page := samplePage(t)
	tc, err := NewThumbnail(4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tc.Transform(page)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tc.Transform(page)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("thumbnail transform not deterministic")
	}
	if tc.Factor() != 4 {
		t.Fatalf("factor = %d", tc.Factor())
	}
}

func TestThumbnailValidation(t *testing.T) {
	if _, err := NewThumbnail(1); err == nil {
		t.Fatal("factor 1 accepted")
	}
	if _, err := NewThumbnail(100); err == nil {
		t.Fatal("factor 100 accepted")
	}
	tc, err := NewThumbnail(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Transform([]byte("not a page")); err == nil {
		t.Fatal("garbage page transformed")
	}
}

func TestDecimate(t *testing.T) {
	got := decimate([]byte{10, 20, 30, 40, 50}, 2)
	if len(got) != 3 || got[0] != 15 || got[1] != 35 || got[2] != 50 {
		t.Fatalf("decimate = %v", got)
	}
	if decimate(nil, 2) != nil {
		t.Fatal("decimate(nil) != nil")
	}
}

// Property: decimation output length is ceil(n/factor) and values are
// bounded by the input range.
func TestDecimateProperty(t *testing.T) {
	f := func(data []byte, fRaw uint8) bool {
		factor := int(fRaw%8) + 2
		out := decimate(data, factor)
		wantLen := (len(data) + factor - 1) / factor
		if len(data) == 0 {
			return out == nil
		}
		return len(out) == wantLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
