package appserver

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fractal/internal/cdn"
	"fractal/internal/codec"
	"fractal/internal/inp"
	"fractal/internal/mobilecode"
	"fractal/internal/workload"
)

func testCorpora(t testing.TB, pages int) (*workload.Corpus, *workload.Corpus) {
	t.Helper()
	v1, err := workload.Generate(workload.Config{
		Pages: pages, TextBytes: 2048, Images: 2, ImageBytes: 16384, Seed: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := workload.MutateCorpus(v1, workload.DefaultMutation(101))
	if err != nil {
		t.Fatal(err)
	}
	return v1, v2
}

func testServer(t testing.TB) *Server {
	t.Helper()
	signer, err := mobilecode.NewSigner("app-server")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New("webapp", signer)
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := testCorpora(t, 4)
	if err := s.InstallCorpus(v1, v2); err != nil {
		t.Fatal(err)
	}
	if err := s.DeployPADs("1.0"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	signer, err := mobilecode.NewSigner("e")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New("", signer); err == nil {
		t.Error("empty app id accepted")
	}
	if _, err := New("app", nil); err == nil {
		t.Error("nil signer accepted")
	}
}

func TestInstallCorpusVersioning(t *testing.T) {
	s := testServer(t)
	if s.Resources() != 4 {
		t.Fatalf("resources = %d, want 4", s.Resources())
	}
	data, v, err := s.Current("page-000")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("current version = %d, want 2", v)
	}
	if len(data) == 0 {
		t.Fatal("empty current version")
	}
	if _, _, err := s.Current("page-999"); err == nil {
		t.Fatal("missing resource served")
	}
	// A later install appends as a content update.
	v1, _ := testCorpora(t, 2)
	if err := s.InstallCorpus(v1); err != nil {
		t.Fatalf("appending an update failed: %v", err)
	}
	if _, v, err := s.Current("page-000"); err != nil || v != 3 {
		t.Fatalf("after update version = %d, %v; want 3", v, err)
	}
	// page-002/003 were not in the 2-page update; their chains stay at 2.
	if _, v, err := s.Current("page-003"); err != nil || v != 2 {
		t.Fatalf("untouched resource version = %d, %v; want 2", v, err)
	}
	if err := s.InstallCorpus(); err == nil {
		t.Fatal("empty install accepted")
	}
}

func TestDeployPADsAndIDs(t *testing.T) {
	s := testServer(t)
	ids := s.PADIDs()
	if len(ids) != 4 {
		t.Fatalf("deployed %d PADs, want 4", len(ids))
	}
}

func TestMeasureAppMeta(t *testing.T) {
	s := testServer(t)
	app, err := s.MeasureAppMeta(4)
	if err != nil {
		t.Fatal(err)
	}
	if app.AppID != "webapp" || len(app.PADs) != 4 {
		t.Fatalf("app meta = %s with %d PADs", app.AppID, len(app.PADs))
	}
	byProto := map[string]int64{}
	for _, p := range app.PADs {
		if p.URL == "" || p.Size == 0 {
			t.Errorf("PAD %s missing URL or size", p.ID)
		}
		if p.Digest == [20]byte{} {
			t.Errorf("PAD %s has zero digest", p.ID)
		}
		byProto[p.Protocol] = p.Overhead.TrafficBytes + p.Overhead.UpstreamBytes
	}
	// The measured traffic must reproduce the Figure 11(a) ordering.
	if !(byProto[codec.NameDirect] > byProto[codec.NameGzip] &&
		byProto[codec.NameGzip] > byProto[codec.NameBitmap] &&
		byProto[codec.NameBitmap] > byProto[codec.NameVaryBlock]) {
		t.Fatalf("measured traffic ordering wrong: %v", byProto)
	}
	// Vary-sized blocking's server compute must dominate.
	var varyServer, gzipServer int64
	for _, p := range app.PADs {
		switch p.Protocol {
		case codec.NameVaryBlock:
			varyServer = p.Overhead.ServerCompStd.Nanoseconds()
		case codec.NameGzip:
			gzipServer = p.Overhead.ServerCompStd.Nanoseconds()
		}
	}
	if varyServer < 10*gzipServer {
		t.Fatalf("vary server compute %d not dominant over gzip %d", varyServer, gzipServer)
	}
}

func TestMeasureAppMetaErrors(t *testing.T) {
	signer, err := mobilecode.NewSigner("e")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New("app", signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MeasureAppMeta(0); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := s.MeasureAppMeta(4); err == nil {
		t.Error("measuring with no PADs succeeded")
	}
	if err := s.DeployPADs("1.0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MeasureAppMeta(4); err == nil {
		t.Error("measuring with no content succeeded")
	}
}

func TestPublishPADs(t *testing.T) {
	s := testServer(t)
	topo, err := cdn.DefaultTopology(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PublishPADs(topo.Origin()); err != nil {
		t.Fatal(err)
	}
	paths := topo.Origin().Paths()
	if len(paths) != 4 {
		t.Fatalf("published %d objects, want 4", len(paths))
	}
	for _, p := range paths {
		if !strings.HasPrefix(p, "/pads/pad-") {
			t.Errorf("unexpected path %s", p)
		}
	}
	// Published modules must unpack and verify.
	data, err := topo.Origin().Get("/pads/pad-gzip")
	if err != nil {
		t.Fatal(err)
	}
	m, err := mobilecode.Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != "pad-gzip" {
		t.Fatalf("unpacked id = %s", m.ID)
	}
	if err := s.PublishPADs(nil); err == nil {
		t.Error("nil origin accepted")
	}
}

func TestEncodeReactiveRoundTrip(t *testing.T) {
	s := testServer(t)
	cur, curV, err := s.Current("page-001")
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []string{"pad-direct", "pad-gzip", "pad-bitmap", "pad-vary"} {
		// Cold start (client holds nothing).
		res, err := s.Encode([]string{proto}, "page-001", 0)
		if err != nil {
			t.Fatalf("%s cold: %v", proto, err)
		}
		if res.Version != curV || res.PADID != proto {
			t.Fatalf("%s: version/pad = %d/%s", proto, res.Version, res.PADID)
		}
		impl, err := codec.New(map[string]string{
			"pad-direct": "direct", "pad-gzip": "gzip",
			"pad-bitmap": "bitmap", "pad-vary": "varyblock",
		}[proto])
		if err != nil {
			t.Fatal(err)
		}
		got, err := impl.Decode(nil, res.Payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", proto, err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("%s: cold round trip mismatch", proto)
		}
	}
}

func TestEncodeDifferentialSmallerThanCold(t *testing.T) {
	s := testServer(t)
	cold, err := s.Encode([]string{"pad-vary"}, "page-000", 0)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := s.Encode([]string{"pad-vary"}, "page-000", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Payload) >= len(cold.Payload)/2 {
		t.Fatalf("differential payload %d not much smaller than cold %d", len(diff.Payload), len(cold.Payload))
	}
}

func TestEncodeErrors(t *testing.T) {
	s := testServer(t)
	if _, err := s.Encode([]string{"pad-ghost"}, "page-000", 0); err == nil {
		t.Error("undeployed PAD accepted")
	}
	if _, err := s.Encode([]string{"pad-direct"}, "page-404", 0); err == nil {
		t.Error("missing resource served")
	}
	if _, err := s.Encode([]string{"pad-direct"}, "page-000", 99); err == nil {
		t.Error("future version claim accepted")
	}
	if _, err := s.Encode([]string{"pad-direct"}, "page-000", -1); err == nil {
		t.Error("negative version accepted")
	}
}

func TestEncodeClientAlreadyCurrent(t *testing.T) {
	s := testServer(t)
	res, err := s.Encode([]string{"pad-bitmap"}, "page-000", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 {
		t.Fatalf("version = %d, want 2", res.Version)
	}
}

func TestProactiveStrategy(t *testing.T) {
	s := testServer(t)
	if s.Strategy() != Reactive {
		t.Fatal("default strategy not reactive")
	}
	if err := s.SetStrategy(Proactive); err != nil {
		t.Fatal(err)
	}
	if s.Strategy().String() != "proactive" {
		t.Fatal("strategy string wrong")
	}
	res, err := s.Encode([]string{"pad-vary"}, "page-002", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Precomputed {
		t.Fatal("proactive encode was not served from the precomputed store")
	}
	st := s.Stats()
	if st.PrecomputeHits != 1 || st.ReactiveEncod != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Equivalence: proactive and reactive payloads decode identically.
	cur, _, err := s.Current("page-002")
	if err != nil {
		t.Fatal(err)
	}
	old, err := s.version("page-002", 1)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := codec.New("varyblock")
	if err != nil {
		t.Fatal(err)
	}
	got, err := vb.Decode(old, res.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("precomputed payload does not reconstruct current version")
	}
	if err := s.SetStrategy(Strategy(42)); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestINPServerSession(t *testing.T) {
	s := testServer(t)
	srv, err := NewINPServer(s, 8, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Logf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := inp.NewConn(conn)

	var rep inp.AppRep
	err = c.Call(inp.MsgAppReq,
		inp.AppReq{AppID: "webapp", Resource: "page-000", ProtocolIDs: []string{"pad-gzip"}},
		inp.MsgAppRep, &rep)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PADID != "pad-gzip" || rep.Version != 2 {
		t.Fatalf("rep = %+v", rep)
	}
	gz, err := codec.New("gzip")
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := s.Current("page-000")
	if err != nil {
		t.Fatal(err)
	}
	got, err := gz.Decode(nil, rep.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("TCP session round trip mismatch")
	}

	// Errors are in-band, session continues.
	err = c.Call(inp.MsgAppReq,
		inp.AppReq{AppID: "wrong", Resource: "page-000"},
		inp.MsgAppRep, &rep)
	if err == nil || !strings.Contains(err.Error(), "unknown application") {
		t.Fatalf("err = %v, want unknown application", err)
	}
	err = c.Call(inp.MsgAppReq,
		inp.AppReq{AppID: "webapp", Resource: "page-000", ProtocolIDs: []string{"pad-gzip"}},
		inp.MsgAppRep, &rep)
	if err != nil {
		t.Fatalf("session did not survive in-band error: %v", err)
	}
	if st := s.Stats(); st.Requests < 2 {
		t.Fatalf("requests = %d", st.Requests)
	}
}

func TestINPServerIdleTimeout(t *testing.T) {
	s := testServer(t)
	srv, err := NewINPServer(s, 4, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetIdleTimeout(150 * time.Millisecond)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() { _ = srv.Close(); <-done }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle session kept open")
	} else if strings.Contains(err.Error(), "i/o timeout") {
		t.Fatal("server never dropped the idle session")
	}
}

func TestLongVersionChainDifferentials(t *testing.T) {
	// A client may hold ANY historical version; the server must diff the
	// current version against exactly that basis.
	signer, err := mobilecode.NewSigner("chain")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New("webapp", signer)
	if err != nil {
		t.Fatal(err)
	}
	v, err := workload.Generate(workload.Config{Pages: 1, TextBytes: 1024, Images: 2, ImageBytes: 16384, Seed: 70})
	if err != nil {
		t.Fatal(err)
	}
	chain := []*workload.Corpus{v}
	for i := 1; i < 5; i++ {
		v, err = workload.MutateCorpus(v, workload.DefaultMutation(int64(70+i)))
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, v)
	}
	if err := s.InstallCorpus(chain...); err != nil {
		t.Fatal(err)
	}
	if err := s.DeployPADs("1.0"); err != nil {
		t.Fatal(err)
	}
	cur, curV, err := s.Current("page-000")
	if err != nil {
		t.Fatal(err)
	}
	if curV != 5 {
		t.Fatalf("current = v%d, want v5", curV)
	}
	vb, err := codec.New("varyblock")
	if err != nil {
		t.Fatal(err)
	}
	var prevLen int
	for have := 0; have <= 5; have++ {
		res, err := s.Encode([]string{"pad-vary"}, "page-000", have)
		if err != nil {
			t.Fatalf("have=%d: %v", have, err)
		}
		old := []byte(nil)
		if have > 0 {
			old = chain[have-1].Pages[0].Bytes()
		}
		got, err := vb.Decode(old, res.Payload)
		if err != nil {
			t.Fatalf("have=%d: decode: %v", have, err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("have=%d: reconstruction mismatch", have)
		}
		if have == 0 {
			prevLen = len(res.Payload)
			continue
		}
		// A newer basis never costs more than the cold start.
		if len(res.Payload) > prevLen {
			t.Logf("have=%d payload %d > cold %d (acceptable but unusual)", have, len(res.Payload), prevLen)
		}
	}
}

func TestEncodeConcurrentSafety(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pads := []string{"pad-direct", "pad-gzip", "pad-bitmap", "pad-vary"}
			res := fmt.Sprintf("page-%03d", i%4)
			r, err := s.Encode([]string{pads[i%4]}, res, i%3)
			if err != nil {
				errs <- err
				return
			}
			if len(r.Payload) == 0 && i%4 != 0 {
				errs <- fmt.Errorf("goroutine %d: empty payload", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestProactiveStoreRefreshedOnNewVersion(t *testing.T) {
	s := testServer(t)
	if err := s.SetStrategy(Proactive); err != nil {
		t.Fatal(err)
	}
	// Serve once from the precomputed store.
	if _, err := s.Encode([]string{"pad-gzip"}, "page-000", 0); err != nil {
		t.Fatal(err)
	}
	// A third content version arrives.
	v1, v2 := testCorpora(t, 4)
	_ = v1
	v3, err := workload.MutateCorpus(v2, workload.DefaultMutation(102))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InstallCorpus(v3); err != nil {
		t.Fatal(err)
	}
	res, err := s.Encode([]string{"pad-gzip"}, "page-000", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 3 {
		t.Fatalf("version = %d, want 3", res.Version)
	}
	gz, err := codec.New("gzip")
	if err != nil {
		t.Fatal(err)
	}
	got, err := gz.Decode(nil, res.Payload)
	if err != nil {
		t.Fatal(err)
	}
	want := v3.Pages[0].Bytes()
	if !bytes.Equal(got, want) {
		t.Fatal("proactive store served a stale version after content update")
	}
	if !res.Precomputed {
		t.Fatal("refreshed store not used")
	}
}
