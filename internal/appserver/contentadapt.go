package appserver

import (
	"fmt"
	"sort"

	"fractal/internal/codec"
	"fractal/internal/core"
	"fractal/internal/mobilecode"
	"fractal/internal/mobilecode/verify"
	"fractal/internal/transcode"
)

// DeployContentAdaptation installs the content-adaptation PAD layer (the
// Section 5 extension): the full-fidelity and thumbnail transcoders are
// built as signed mobile-code modules, registered server-side, and made
// available for a two-level protocol adaptation tree. DeployPADs must have
// run first, since the communication-optimization PADs form the second
// level.
func (s *Server) DeployContentAdaptation(moduleVersion string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pads) == 0 {
		return fmt.Errorf("appserver: deploy communication PADs before content adaptation")
	}
	for _, spec := range mobilecode.TranscoderSpecs() {
		m, err := mobilecode.BuildModule(spec, moduleVersion, s.signer)
		if err != nil {
			return fmt.Errorf("appserver: building %s: %w", spec.ID, err)
		}
		if _, err := verify.Module(m, mobilecode.DefaultSandbox()); err != nil {
			return fmt.Errorf("appserver: %s: %w", spec.ID, err)
		}
		tc, err := transcode.New(spec.Protocol)
		if err != nil {
			return fmt.Errorf("appserver: transcoder for %s: %w", spec.ID, err)
		}
		s.transcoders[m.ID] = tc
		// The transcoder PAD participates in distribution like any other
		// module: clients download and verify it.
		s.pads[m.ID] = &pad{module: m, impl: transcoderShim{tc}}
	}
	return nil
}

// MeasureContentAdaptationAppMeta builds the two-level AppMeta of the
// content-adaptation application: transcoder PADs at the first level, the
// communication-optimization PADs at the second, measured separately under
// each rendition because the adapted content changes every overhead
// vector. Second-level entries under a non-identity rendition get
// context-qualified ids ("pad-gzip@thumbnail") pointing at the same
// module.
func (s *Server) MeasureContentAdaptationAppMeta(appID string, samplePages int) (core.AppMeta, error) {
	if appID == "" {
		return core.AppMeta{}, fmt.Errorf("appserver: content-adaptation AppMeta needs an app id")
	}
	if samplePages < 1 {
		return core.AppMeta{}, fmt.Errorf("appserver: need >= 1 sample page, got %d", samplePages)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.transcoders) == 0 {
		return core.AppMeta{}, fmt.Errorf("appserver: no content adaptation deployed")
	}

	pairs, avgContent, err := s.samplePairsLocked(samplePages)
	if err != nil {
		return core.AppMeta{}, err
	}

	app := core.AppMeta{AppID: appID}
	tcIDs := make([]string, 0, len(s.transcoders))
	for id := range s.transcoders {
		tcIDs = append(tcIDs, id)
	}
	sort.Strings(tcIDs)
	commIDs := make([]string, 0, len(s.pads))
	for id := range s.pads {
		if _, isTC := s.transcoders[id]; !isTC {
			commIDs = append(commIDs, id)
		}
	}
	sort.Strings(commIDs)

	for _, tcID := range tcIDs {
		tc := s.transcoders[tcID]
		tcPad := s.pads[tcID]
		tcCost := tc.Cost()
		root := core.PADMeta{
			ID:       tcID,
			Version:  tcPad.module.Version,
			Protocol: tc.Name(),
			Size:     tcPad.module.Size(),
			Digest:   tcPad.module.Digest,
			URL:      "/pads/" + tcID,
			Overhead: core.PADOverhead{
				ServerCompStd: tcCost.ServerTime(avgContent),
				ClientCompStd: tcCost.ClientTime(avgContent),
			},
		}
		for _, commID := range commIDs {
			p := s.pads[commID]
			metaID := commID
			if tc.Name() != transcode.NameIdentity {
				metaID = commID + "@" + tc.Name()
			}
			var traffic, upstream, content int64
			for _, pr := range pairs {
				tOld := pr.old
				if tOld != nil {
					if tOld, err = s.transformLocked(tcID, tOld); err != nil {
						return core.AppMeta{}, err
					}
				}
				tCur, err := s.transformLocked(tcID, pr.cur)
				if err != nil {
					return core.AppMeta{}, err
				}
				payload, err := p.impl.Encode(tOld, tCur)
				if err != nil {
					return core.AppMeta{}, fmt.Errorf("appserver: measuring %s under %s: %w", commID, tcID, err)
				}
				traffic += int64(len(payload))
				content += int64(len(tCur))
				if uc, ok := codec.Codec(p.impl).(codec.UpstreamCoster); ok {
					upstream += uc.UpstreamBytes(tOld)
				}
			}
			n := int64(len(pairs))
			cost := p.impl.Cost()
			child := core.PADMeta{
				ID:       metaID,
				Version:  p.module.Version,
				Protocol: p.impl.Name(),
				Size:     p.module.Size(),
				Digest:   p.module.Digest,
				URL:      "/pads/" + commID,
				Parent:   tcID,
				Overhead: core.PADOverhead{
					ServerCompStd: cost.ServerTime(content / n),
					ClientCompStd: cost.ClientTime(content / n),
					TrafficBytes:  traffic / n,
					UpstreamBytes: upstream / n,
				},
			}
			root.Children = append(root.Children, metaID)
			app.PADs = append(app.PADs, child)
		}
		app.PADs = append(app.PADs, root)
	}
	return app, nil
}

// DeployExtraPAD extends a running server with an additional protocol
// adaptor: the spec is built and signed, the native implementation is
// registered for serving, and the returned metadata — measured on the
// installed corpus like the builtin set — is ready to be appended to the
// application's AppMeta and pushed to the adaptation proxy. PublishPADs
// republishes all modules including the new one.
func (s *Server) DeployExtraPAD(spec mobilecode.BuiltinSpec, moduleVersion string, samplePages int) (core.PADMeta, error) {
	if samplePages < 1 {
		return core.PADMeta{}, fmt.Errorf("appserver: need >= 1 sample page, got %d", samplePages)
	}
	m, err := mobilecode.BuildModule(spec, moduleVersion, s.signer)
	if err != nil {
		return core.PADMeta{}, fmt.Errorf("appserver: building %s: %w", spec.ID, err)
	}
	if _, err := verify.Module(m, mobilecode.DefaultSandbox()); err != nil {
		return core.PADMeta{}, fmt.Errorf("appserver: %s: %w", spec.ID, err)
	}
	impl, err := s.implFor(spec, m)
	if err != nil {
		return core.PADMeta{}, err
	}
	s.mu.Lock()
	if _, dup := s.pads[m.ID]; dup {
		s.mu.Unlock()
		return core.PADMeta{}, fmt.Errorf("appserver: PAD %s already deployed", m.ID)
	}
	s.pads[m.ID] = &pad{module: m, impl: impl}
	s.protoPAD[spec.Protocol] = m.ID
	s.mu.Unlock()

	s.mu.RLock()
	defer s.mu.RUnlock()
	pairs, _, err := s.samplePairsLocked(samplePages)
	if err != nil {
		return core.PADMeta{}, err
	}
	var traffic, upstream, content int64
	for _, pr := range pairs {
		payload, err := impl.Encode(pr.old, pr.cur)
		if err != nil {
			return core.PADMeta{}, fmt.Errorf("appserver: measuring %s: %w", m.ID, err)
		}
		traffic += int64(len(payload))
		content += int64(len(pr.cur))
		if uc, ok := codec.Codec(impl).(codec.UpstreamCoster); ok {
			upstream += uc.UpstreamBytes(pr.old)
		}
	}
	n := int64(len(pairs))
	cost := impl.Cost()
	meta := core.PADMeta{
		ID:       m.ID,
		Version:  m.Version,
		Protocol: impl.Name(),
		Size:     m.Size(),
		Digest:   m.Digest,
		URL:      "/pads/" + m.ID,
		Overhead: core.PADOverhead{
			ServerCompStd: cost.ServerTime(content / n),
			ClientCompStd: cost.ClientTime(content / n),
			TrafficBytes:  traffic / n,
			UpstreamBytes: upstream / n,
		},
	}
	s.pads[m.ID].meta = meta
	return meta, nil
}

// samplePairsLocked collects deterministic (old, cur) measurement pairs;
// the caller holds s.mu (read).
func (s *Server) samplePairsLocked(samplePages int) ([]measurePair, int64, error) {
	ids := make([]string, 0, len(s.resources))
	for id := range s.resources {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var pairs []measurePair
	var content int64
	for _, id := range ids {
		if len(pairs) >= samplePages {
			break
		}
		chain := s.resources[id]
		if len(chain) == 0 {
			continue
		}
		cur := chain[len(chain)-1]
		var old []byte
		if len(chain) > 1 {
			old = chain[len(chain)-2]
		}
		pairs = append(pairs, measurePair{old: old, cur: cur})
		content += int64(len(cur))
	}
	if len(pairs) == 0 {
		return nil, 0, fmt.Errorf("appserver: no content installed to measure against")
	}
	return pairs, content / int64(len(pairs)), nil
}

// measurePair is one (old, cur) measurement sample.
type measurePair struct{ old, cur []byte }

// implFor resolves a spec's serving implementation: the registered native
// codec when one exists, otherwise the server deploys the module's own
// mobile code in a sandbox and runs it natively — pure VM compositions
// like CascadeSpec need no Go implementation at all.
func (s *Server) implFor(spec mobilecode.BuiltinSpec, m *mobilecode.Module) (codec.Costed, error) {
	if impl, err := codec.New(spec.Protocol); err == nil {
		return impl, nil
	}
	trust := mobilecode.NewTrustList()
	if err := trust.Add(s.signer.Entity, s.signer.PublicKey()); err != nil {
		return nil, fmt.Errorf("appserver: self-trust for %s: %w", spec.ID, err)
	}
	loader, err := mobilecode.NewLoader(trust, mobilecode.DefaultSandbox())
	if err != nil {
		return nil, err
	}
	loader.SetVerifier(verify.LoaderVerifier())
	packed, err := m.Pack()
	if err != nil {
		return nil, err
	}
	deployed, err := loader.Load(packed)
	if err != nil {
		return nil, fmt.Errorf("appserver: deploying VM impl for %s: %w", spec.ID, err)
	}
	return vmPad{DeployedPAD: deployed, cost: spec.Cost}, nil
}

// vmPad serves a protocol through its own mobile code with a spec-supplied
// cost model.
type vmPad struct {
	*mobilecode.DeployedPAD
	cost codec.CostModel
}

// Cost implements codec.Costed.
func (v vmPad) Cost() codec.CostModel { return v.cost }

// transcoderShim adapts a Transcoder to the internal pad slot; its
// Encode/Decode are never used for wire traffic (the transcoder runs
// inside the chain), but the module plumbing (publish, digest, size) is
// shared.
type transcoderShim struct {
	tc transcode.Transcoder
}

func (t transcoderShim) Name() string { return t.tc.Name() }
func (t transcoderShim) Encode(old, cur []byte) ([]byte, error) {
	return t.tc.Transform(cur)
}
func (t transcoderShim) Decode(old, payload []byte) ([]byte, error) {
	return append([]byte(nil), payload...), nil
}
func (t transcoderShim) Cost() codec.CostModel { return t.tc.Cost() }
