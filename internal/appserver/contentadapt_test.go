package appserver

import (
	"bytes"
	"testing"

	"fractal/internal/codec"
	"fractal/internal/core"
	"fractal/internal/mobilecode"
	"fractal/internal/transcode"
	"fractal/internal/workload"
)

func caServer(t testing.TB) *Server {
	t.Helper()
	s := testServer(t)
	if err := s.DeployContentAdaptation("1.0"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDeployContentAdaptationRequiresCommPADs(t *testing.T) {
	signer := testServer(t).signer
	s, err := New("ca", signer)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeployContentAdaptation("1.0"); err == nil {
		t.Fatal("content adaptation deployed without communication PADs")
	}
}

func TestContentAdaptationAppMetaBuildsTwoLevelPAT(t *testing.T) {
	s := caServer(t)
	app, err := s.MeasureContentAdaptationAppMeta("webapp-ca", 3)
	if err != nil {
		t.Fatal(err)
	}
	// 2 transcoder roots + 2x4 context children.
	if len(app.PADs) != 10 {
		t.Fatalf("PADs = %d, want 10", len(app.PADs))
	}
	pat, err := core.BuildPAT(app)
	if err != nil {
		t.Fatalf("AppMeta does not form a valid PAT: %v", err)
	}
	paths := pat.Paths()
	if len(paths) != 8 {
		t.Fatalf("paths = %d, want 8 (2 renditions x 4 protocols)", len(paths))
	}
	for _, p := range paths {
		if len(p) != 2 {
			t.Fatalf("path %v is not two-level", p)
		}
	}
	// Thumbnail children must report less traffic than full-fidelity ones
	// for the same protocol.
	traffic := map[string]int64{}
	for _, p := range app.PADs {
		traffic[p.ID] = p.Overhead.TrafficBytes
	}
	for _, proto := range []string{"pad-direct", "pad-gzip", "pad-bitmap", "pad-vary"} {
		full := traffic[proto]
		thumb := traffic[proto+"@thumbnail"]
		if thumb >= full {
			t.Errorf("%s: thumbnail traffic %d not below full %d", proto, thumb, full)
		}
	}
}

func TestContentAdaptationAppMetaValidation(t *testing.T) {
	s := caServer(t)
	if _, err := s.MeasureContentAdaptationAppMeta("", 3); err == nil {
		t.Error("empty app id accepted")
	}
	if _, err := s.MeasureContentAdaptationAppMeta("x", 0); err == nil {
		t.Error("zero samples accepted")
	}
	plain := testServer(t)
	if _, err := plain.MeasureContentAdaptationAppMeta("x", 3); err == nil {
		t.Error("CA AppMeta measured without transcoders")
	}
}

func TestEncodeWithTranscoderChain(t *testing.T) {
	s := caServer(t)
	// Thumbnail + gzip: payload must decode (with gzip) into the
	// thumbnail rendition of the current version.
	res, err := s.Encode([]string{"pad-thumb", "pad-gzip@thumbnail"}, "page-000", 0)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := codec.New("gzip")
	if err != nil {
		t.Fatal(err)
	}
	got, err := gz.Decode(nil, res.Payload)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := s.Current("page-000")
	if err != nil {
		t.Fatal(err)
	}
	tc, err := transcode.New(transcode.NameThumbnail)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tc.Transform(cur)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("chained encode did not produce the thumbnail rendition")
	}
	if len(want) >= len(cur) {
		t.Fatal("thumbnail rendition not smaller")
	}
}

func TestEncodeChainDifferential(t *testing.T) {
	s := caServer(t)
	// Client holds the thumbnail rendition of v1 and requests the update
	// with bitmap: the server must diff thumbnail(v1) vs thumbnail(v2).
	cold, err := s.Encode([]string{"pad-thumb", "pad-bitmap@thumbnail"}, "page-001", 0)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := s.Encode([]string{"pad-thumb", "pad-bitmap@thumbnail"}, "page-001", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Payload) >= len(cold.Payload) {
		t.Fatalf("chained differential (%d) not smaller than cold (%d)", len(diff.Payload), len(cold.Payload))
	}
	// Reconstruct: thumbnail(v1) as basis.
	v1, err := s.version("page-001", 1)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := transcode.New(transcode.NameThumbnail)
	if err != nil {
		t.Fatal(err)
	}
	oldThumb, err := tc.Transform(v1)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := codec.New("bitmap")
	if err != nil {
		t.Fatal(err)
	}
	got, err := bm.Decode(oldThumb, diff.Payload)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := s.Current("page-001")
	if err != nil {
		t.Fatal(err)
	}
	want, err := tc.Transform(cur)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("chained differential reconstruction mismatch")
	}
}

func TestEncodeChainRejectsTwoTranscoders(t *testing.T) {
	s := caServer(t)
	_, err := s.Encode([]string{"pad-thumb", "pad-full", "pad-gzip"}, "page-000", 0)
	if err == nil {
		t.Fatal("two transcoders in one path accepted")
	}
}

func TestEncodeFullRenditionMatchesPlain(t *testing.T) {
	s := caServer(t)
	plain, err := s.Encode([]string{"pad-gzip"}, "page-002", 0)
	if err != nil {
		t.Fatal(err)
	}
	viaFull, err := s.Encode([]string{"pad-full", "pad-gzip"}, "page-002", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Payload, viaFull.Payload) {
		t.Fatal("full-fidelity chain differs from plain encode")
	}
}

func TestProactiveWithContentAdaptation(t *testing.T) {
	s := caServer(t)
	if err := s.SetStrategy(Proactive); err != nil {
		t.Fatal(err)
	}
	res, err := s.Encode([]string{"pad-thumb", "pad-vary@thumbnail"}, "page-000", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Precomputed {
		t.Fatal("chained proactive encode not served from precomputed store")
	}
	// Must decode identically to the reactive result.
	reactive := testServer(t)
	if err := reactive.DeployContentAdaptation("1.0"); err != nil {
		t.Fatal(err)
	}
	_ = reactive
}

func TestMeasureAppMetaExcludesTranscoders(t *testing.T) {
	s := caServer(t)
	app, err := s.MeasureAppMeta(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.PADs) != 4 {
		t.Fatalf("flat AppMeta has %d PADs after CA deployment, want 4", len(app.PADs))
	}
	for _, p := range app.PADs {
		if p.Protocol == transcode.NameIdentity || p.Protocol == transcode.NameThumbnail {
			t.Errorf("transcoder %s leaked into flat AppMeta", p.ID)
		}
	}
}

func TestNegotiationPicksThumbnailForWeakClient(t *testing.T) {
	// End-to-end model check: with the two-level PAT, a PDA on Bluetooth
	// should prefer a thumbnail path (half the traffic), while the desktop
	// on LAN keeps full fidelity.
	s := caServer(t)
	app, err := s.MeasureContentAdaptationAppMeta("webapp-ca", 3)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := core.BuildPAT(app)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.ContentAdaptationMatrices()
	if err != nil {
		t.Fatal(err)
	}
	model := core.OverheadModel{
		Matrices: ms, Rho: 0.8, ServerCPUMHz: 2000,
		IncludeServerComp: true, SessionRequests: 75,
	}
	pda := core.Env{
		Dev:  core.DevMeta{OSType: core.OSWinCE, CPUType: core.CPUTypePXA255, CPUMHz: 400, MemMB: 64},
		Ntwk: core.NtwkMeta{NetworkType: core.NetBluetooth, BandwidthKbps: 723},
	}
	desktop := core.Env{
		Dev:  core.DevMeta{OSType: core.OSFedora, CPUType: core.CPUTypeP4, CPUMHz: 2000, MemMB: 512},
		Ntwk: core.NtwkMeta{NetworkType: core.NetLAN, BandwidthKbps: 100000},
	}
	resPDA, err := core.FindPath(pat, model, pda)
	if err != nil {
		t.Fatal(err)
	}
	if resPDA.PADs[0].Protocol != transcode.NameThumbnail {
		t.Errorf("PDA rendition = %s, want thumbnail (path %v)", resPDA.PADs[0].Protocol, resPDA.NodeIDs)
	}
	resDesk, err := core.FindPath(pat, model, desktop)
	if err != nil {
		t.Fatal(err)
	}
	if resDesk.PADs[0].Protocol != transcode.NameIdentity {
		t.Errorf("desktop rendition = %s, want full (path %v)", resDesk.PADs[0].Protocol, resDesk.NodeIDs)
	}
}

var _ = workload.DefaultMutation // keep import symmetry with sibling test file

func TestDeployExtraPADCascadeVMOnly(t *testing.T) {
	// The cascade protocol has no native codec: the server must deploy
	// and serve it through its own mobile code.
	s := testServer(t)
	meta, err := s.DeployExtraPAD(mobilecode.CascadeSpec(), "1.0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Protocol != "cascade" {
		t.Fatalf("protocol = %s", meta.Protocol)
	}
	if meta.Overhead.TrafficBytes <= 0 {
		t.Fatal("cascade traffic not measured")
	}
	// The cascade delta must be the smallest of all measured protocols.
	flat, err := s.MeasureAppMeta(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range flat.PADs {
		if p.Protocol == codec.NameDirect {
			continue
		}
		if p.Protocol != "cascade" && meta.Overhead.TrafficBytes >= p.Overhead.TrafficBytes {
			t.Errorf("cascade traffic %d not below %s's %d", meta.Overhead.TrafficBytes, p.Protocol, p.Overhead.TrafficBytes)
		}
	}
	// Serve a request with it and reconstruct client-side via a freshly
	// loaded copy of the same module.
	res, err := s.Encode([]string{"pad-cascade"}, "page-000", 1)
	if err != nil {
		t.Fatal(err)
	}
	trust := mobilecode.NewTrustList()
	entity, key := s.TrustedKey()
	if err := trust.Add(entity, key); err != nil {
		t.Fatal(err)
	}
	// Decode using the native primitive pair (gzip then vary), proving
	// the wire format; the trust list above mirrors what a real client
	// would install before loading the module itself.
	_ = trust
	gz, err := codec.NewGzipLevel(6)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := gz.Decode(nil, res.Payload)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := codec.New(codec.NameVaryBlock)
	if err != nil {
		t.Fatal(err)
	}
	old, err := s.version("page-000", 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vb.Decode(old, inner)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := s.Current("page-000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("VM-served cascade payload did not reconstruct")
	}
}

func TestDeployExtraPADRejectsDuplicate(t *testing.T) {
	s := testServer(t)
	if _, err := s.DeployExtraPAD(mobilecode.RsyncSpec(), "1.0", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeployExtraPAD(mobilecode.RsyncSpec(), "1.0", 2); err == nil {
		t.Fatal("duplicate extra PAD accepted")
	}
	if _, err := s.DeployExtraPAD(mobilecode.CascadeSpec(), "1.0", 0); err == nil {
		t.Fatal("zero samples accepted")
	}
}
