package appserver

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"fractal/internal/arena"
	"fractal/internal/core"
	"fractal/internal/inp"
)

// INPServer is the application server's network front end: each connection
// carries an application session, a stream of APP_REQ messages answered
// with APP_REP carrying PAD-encoded content. INPServer serves each
// connection on its own goroutine and is safe for concurrent use; the
// underlying Server provides the locking.
type INPServer struct {
	app  *Server
	sem  chan struct{}
	logf func(string, ...interface{})
	idle time.Duration

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// SetIdleTimeout bounds the gap between requests on each session; it must
// be called before Serve.
func (s *INPServer) SetIdleTimeout(d time.Duration) { s.idle = d }

// NewINPServer wraps an application server.
func NewINPServer(app *Server, maxConcurrent int, logf func(string, ...interface{})) (*INPServer, error) {
	if app == nil {
		return nil, errors.New("appserver: INP server needs an application server")
	}
	if maxConcurrent < 1 {
		return nil, fmt.Errorf("appserver: concurrency must be >= 1, got %d", maxConcurrent)
	}
	if logf == nil {
		logf = log.Printf
	}
	return &INPServer{app: app, sem: make(chan struct{}, maxConcurrent), logf: logf}, nil
}

// Serve accepts sessions until Close.
func (s *INPServer) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("appserver: server already closed")
	}
	s.ln = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("appserver: accept: %w", err)
		}
		s.sem <- struct{}{}
		s.wg.Add(1)
		go func() {
			defer func() {
				<-s.sem
				s.wg.Done()
			}()
			defer conn.Close()
			if err := s.ServeConn(conn); err != nil && !errors.Is(err, io.EOF) {
				s.logf("appserver: session from %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Close stops accepting and waits for in-flight sessions.
func (s *INPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

// pushTimeout bounds the AppMeta push: the dial and each read/write of
// the exchange. A dead or stalled proxy costs one timeout, not a hang.
const pushTimeout = 30 * time.Second

// PushAppMetaTCP pushes an application topology to a remote adaptation
// proxy over INP.
func PushAppMetaTCP(proxyAddr string, app core.AppMeta) error {
	conn, err := net.DialTimeout("tcp", proxyAddr, pushTimeout)
	if err != nil {
		return fmt.Errorf("appserver: dialing proxy %s: %w", proxyAddr, err)
	}
	defer conn.Close()
	c := inp.NewConn(conn)
	c.SetTimeout(pushTimeout)
	var ack inp.AppMetaAck
	if err := c.Call(inp.MsgAppMetaPush, inp.AppMetaPush{App: app}, inp.MsgAppMetaAck, &ack); err != nil {
		return fmt.Errorf("appserver: pushing AppMeta: %w", err)
	}
	if !ack.OK {
		return fmt.Errorf("appserver: proxy rejected AppMeta: %s", ack.Reason)
	}
	return nil
}

// ServeConn answers APP_REQ messages until the peer disconnects. The
// connection's read and body buffers come from one arena session released
// when it ends, and a request advertising WireVersion >= 2 switches the
// replies to the INP binary fast path.
func (s *INPServer) ServeConn(rw net.Conn) error {
	sess := arena.AcquireSession()
	defer sess.Release()
	c := inp.NewConnSession(rw, sess)
	for {
		if s.idle > 0 {
			//fractal:allow simtime — real socket read deadline, not simulated time
			_ = rw.SetReadDeadline(time.Now().Add(s.idle))
			// A session that stops reading our replies is as dead as one
			// that stops sending requests.
			//fractal:allow simtime — real socket write deadline, not simulated time
			_ = rw.SetWriteDeadline(time.Now().Add(s.idle))
		}
		var req inp.AppReq
		if err := c.RecvInto(inp.MsgAppReq, &req); err != nil {
			if errors.Is(err, io.EOF) {
				return io.EOF
			}
			return fmt.Errorf("reading APP_REQ: %w", err)
		}
		if req.WireVersion >= inp.Version2 {
			c.EnableBinary()
		}
		if req.AppID != s.app.AppID() {
			_ = c.SendError(fmt.Sprintf("unknown application %q", req.AppID))
			continue
		}
		res, err := s.app.Encode(req.ProtocolIDs, req.Resource, req.HaveVersion)
		if err != nil {
			_ = c.SendError(err.Error())
			continue
		}
		rep := inp.AppRep{
			Resource: req.Resource,
			Version:  res.Version,
			PADID:    res.PADID,
			Payload:  res.Payload,
		}
		if err := c.Send(inp.MsgAppRep, &rep); err != nil {
			return fmt.Errorf("sending APP_REP: %w", err)
		}
	}
}
