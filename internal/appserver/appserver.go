// Package appserver implements Fractal's application server: it stores
// versioned adaptive content, pre-deploys every PAD (Section 3.1 assumes
// "the application server has already deployed all PADs in advance"),
// measures the per-PAD overhead vectors (Equation 1) on its own corpus,
// pushes AppMeta to the adaptation proxy, publishes PAD modules to the
// CDN origin, and answers APP_REQ with content encoded by the negotiated
// protocol — either reactively (encode per request) or proactively
// (difference precomputed, the Figure 10(d)/11(c) server strategy).
package appserver

import (
	"crypto/sha1"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"fractal/internal/cdn"
	"fractal/internal/codec"
	"fractal/internal/core"
	"fractal/internal/mobilecode"
	"fractal/internal/mobilecode/verify"
	"fractal/internal/transcode"
	"fractal/internal/workload"
)

// Strategy selects how adaptive content is produced.
type Strategy int

const (
	// Reactive computes each encoding on demand: small memory, CPU per
	// request (the default in Figures 10(a–c)/11(b)).
	Reactive Strategy = iota
	// Proactive precomputes encodings so no server-side computing happens
	// at request time (Figures 10(d)/11(c)).
	Proactive
)

// String names the strategy.
func (s Strategy) String() string {
	if s == Proactive {
		return "proactive"
	}
	return "reactive"
}

// pad couples a deployed PAD module with its native protocol
// implementation (the server always runs native code; mobile code is for
// clients).
type pad struct {
	module *mobilecode.Module
	impl   codec.Costed
	meta   core.PADMeta
}

// Stats counts server activity.
type Stats struct {
	Requests       int64
	ReactiveEncod  int64
	PrecomputeHits int64
}

// serverChunkCacheEntries bounds the server's shared chunk-index cache.
// The corpus is 75 pages × a few versions × two differencing protocols;
// 512 entries keeps every live (version, config) index resident while an
// LRU bound still protects a server holding far more content.
const serverChunkCacheEntries = 512

// Server is one Fractal application server instance. Server is safe for
// concurrent use: all mutable state (resources, PADs, transcoders, the
// encode cache, and stats) is guarded by a single RWMutex, so many
// sessions may encode and negotiate at once. The chunk-index cache shared
// by the differencing PADs is internally synchronized.
type Server struct {
	appID  string
	signer *mobilecode.Signer
	chunks *codec.ChunkCache

	mu          sync.RWMutex
	resources   map[string][][]byte             // resource -> versions (index 0 = v1)
	pads        map[string]*pad                 // by PAD id
	protoPAD    map[string]string               // protocol name -> PAD id
	transcoders map[string]transcode.Transcoder // content-adaptation PADs by id
	strategy    Strategy
	// precomputed holds proactive encodings keyed by
	// "padID|resource|haveVersion".
	precomputed map[string][]byte

	requests    atomic.Int64
	reactive    atomic.Int64
	precompHits atomic.Int64
}

// New builds an application server. The signer is the code-signing
// identity whose public key clients must trust.
func New(appID string, signer *mobilecode.Signer) (*Server, error) {
	if appID == "" {
		return nil, fmt.Errorf("appserver: needs an application id")
	}
	if signer == nil {
		return nil, fmt.Errorf("appserver: needs a signing identity")
	}
	return &Server{
		appID:       appID,
		signer:      signer,
		chunks:      codec.NewChunkCache(serverChunkCacheEntries),
		resources:   map[string][][]byte{},
		pads:        map[string]*pad{},
		protoPAD:    map[string]string{},
		transcoders: map[string]transcode.Transcoder{},
		precomputed: map[string][]byte{},
	}, nil
}

// AppID returns the application identifier.
func (s *Server) AppID() string { return s.appID }

// SetStrategy switches between reactive and proactive adaptive content.
// Switching to Proactive precomputes every (PAD, resource, version-1)
// encoding immediately.
func (s *Server) SetStrategy(st Strategy) error {
	if st != Reactive && st != Proactive {
		return fmt.Errorf("appserver: unknown strategy %d", st)
	}
	s.mu.Lock()
	s.strategy = st
	s.mu.Unlock()
	if st == Proactive {
		return s.precomputeAll()
	}
	return nil
}

// Strategy returns the current content strategy.
func (s *Server) Strategy() Strategy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.strategy
}

// InstallCorpus loads version chains built from a workload corpus: each
// page contributes its serialized versions in order. Calling it again
// appends further versions to the existing chains (a content update on a
// live server); with the proactive strategy active, the precomputed store
// is rebuilt so no stale encodings survive the update.
func (s *Server) InstallCorpus(versions ...*workload.Corpus) error {
	if len(versions) == 0 {
		return fmt.Errorf("appserver: no corpus versions to install")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base := map[string]int{}
	for vi, c := range versions {
		for _, p := range c.Pages {
			b, seen := base[p.ID]
			if !seen {
				b = len(s.resources[p.ID])
				base[p.ID] = b
			}
			chain := s.resources[p.ID]
			if len(chain) != b+vi {
				return fmt.Errorf("appserver: resource %s has %d versions installing update %d of this batch (base %d)", p.ID, len(chain), vi+1, b)
			}
			s.resources[p.ID] = append(chain, p.Bytes())
		}
	}
	if s.strategy == Proactive {
		s.precomputed = map[string][]byte{}
		return s.precomputeAllLocked()
	}
	return nil
}

// Resources returns the number of installed resources.
func (s *Server) Resources() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.resources)
}

// Current returns a resource's newest version data and number.
func (s *Server) Current(resource string) ([]byte, int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain, ok := s.resources[resource]
	if !ok || len(chain) == 0 {
		return nil, 0, fmt.Errorf("appserver: no resource %q", resource)
	}
	return chain[len(chain)-1], len(chain), nil
}

// version returns a specific version's data (1-indexed), nil for 0.
func (s *Server) version(resource string, v int) ([]byte, error) {
	if v == 0 {
		return nil, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain, ok := s.resources[resource]
	if !ok || v < 1 || v > len(chain) {
		return nil, fmt.Errorf("appserver: resource %q has no version %d", resource, v)
	}
	return chain[v-1], nil
}

// DeployPADs builds, signs, and installs the case-study PAD set at the
// given module version.
func (s *Server) DeployPADs(moduleVersion string) error {
	specs := mobilecode.BuiltinSpecs()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, spec := range specs {
		m, err := mobilecode.BuildModule(spec, moduleVersion, s.signer)
		if err != nil {
			return fmt.Errorf("appserver: building %s: %w", spec.ID, err)
		}
		// Static verification before registration: a module the server
		// cannot prove safe is never published, measured, or pushed to the
		// proxy — the same gate clients apply on deployment.
		if _, err := verify.Module(m, mobilecode.DefaultSandbox()); err != nil {
			return fmt.Errorf("appserver: %s: %w", spec.ID, err)
		}
		impl, err := codec.New(spec.Protocol)
		if err != nil {
			return fmt.Errorf("appserver: native impl for %s: %w", spec.ID, err)
		}
		// Differencing protocols share the server-wide chunk-index cache:
		// each installed version is chunked and digested once, not once per
		// request (or once per precompute pass).
		if cu, ok := codec.Codec(impl).(codec.ChunkCacheUser); ok {
			cu.UseChunkCache(s.chunks)
		}
		s.pads[m.ID] = &pad{module: m, impl: impl}
		s.protoPAD[spec.Protocol] = m.ID
	}
	return nil
}

// ChunkCacheStats reports the shared chunk-index cache's effectiveness —
// on a warm server Hits should dwarf Misses, the whole point of the
// hot-path engine.
func (s *Server) ChunkCacheStats() codec.ChunkCacheStats {
	return s.chunks.Stats()
}

// PADIDs returns the deployed PAD ids.
func (s *Server) PADIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.pads))
	for id := range s.pads {
		out = append(out, id)
	}
	return out
}

// MeasureAppMeta pre-tests every deployed PAD against up to samplePages of
// the installed corpus (latest version against its predecessor) to fill
// the PADMeta overhead vectors, producing the AppMeta to push to the
// adaptation proxy. Digest and URL are filled from the module and the
// CDN publishing convention.
func (s *Server) MeasureAppMeta(samplePages int) (core.AppMeta, error) {
	if samplePages < 1 {
		return core.AppMeta{}, fmt.Errorf("appserver: need >= 1 sample page, got %d", samplePages)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.pads) == 0 {
		return core.AppMeta{}, fmt.Errorf("appserver: no PADs deployed")
	}
	// Collect sample (old, cur) pairs deterministically.
	type pair struct{ old, cur []byte }
	var pairs []pair
	ids := make([]string, 0, len(s.resources))
	for id := range s.resources {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if len(pairs) >= samplePages {
			break
		}
		chain := s.resources[id]
		if len(chain) == 0 {
			continue
		}
		cur := chain[len(chain)-1]
		var old []byte
		if len(chain) > 1 {
			old = chain[len(chain)-2]
		}
		pairs = append(pairs, pair{old: old, cur: cur})
	}
	if len(pairs) == 0 {
		return core.AppMeta{}, fmt.Errorf("appserver: no content installed to measure against")
	}

	app := core.AppMeta{AppID: s.appID}
	padIDs := make([]string, 0, len(s.pads))
	for id := range s.pads {
		// Transcoder PADs belong to the content-adaptation topology
		// (MeasureContentAdaptationAppMeta), not the flat one.
		if _, isTC := s.transcoders[id]; isTC {
			continue
		}
		padIDs = append(padIDs, id)
	}
	sort.Strings(padIDs)
	for _, id := range padIDs {
		p := s.pads[id]
		var traffic, upstream, content int64
		for _, pr := range pairs {
			payload, err := p.impl.Encode(pr.old, pr.cur)
			if err != nil {
				return core.AppMeta{}, fmt.Errorf("appserver: measuring %s: %w", id, err)
			}
			traffic += int64(len(payload))
			content += int64(len(pr.cur))
			if uc, ok := codec.Codec(p.impl).(codec.UpstreamCoster); ok {
				upstream += uc.UpstreamBytes(pr.old)
			}
		}
		n := int64(len(pairs))
		avgContent := content / n
		cost := p.impl.Cost()
		meta := core.PADMeta{
			ID:       p.module.ID,
			Version:  p.module.Version,
			Protocol: p.impl.Name(),
			Size:     p.module.Size(),
			Digest:   p.module.Digest,
			URL:      "/pads/" + p.module.ID,
			Overhead: core.PADOverhead{
				ServerCompStd: cost.ServerTime(avgContent),
				ClientCompStd: cost.ClientTime(avgContent),
				TrafficBytes:  traffic / n,
				UpstreamBytes: upstream / n,
			},
		}
		p.meta = meta
		app.PADs = append(app.PADs, meta)
	}
	return app, nil
}

// PublishPADs uploads every deployed PAD module to the CDN origin under
// its metadata URL.
func (s *Server) PublishPADs(origin *cdn.Origin) error {
	if origin == nil {
		return fmt.Errorf("appserver: nil CDN origin")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id, p := range s.pads {
		packed, err := p.module.Pack()
		if err != nil {
			return fmt.Errorf("appserver: packing %s: %w", id, err)
		}
		if err := origin.Publish("/pads/"+id, packed); err != nil {
			return fmt.Errorf("appserver: publishing %s: %w", id, err)
		}
	}
	return nil
}

// TrustedKey returns the signing identity's public key for client trust
// lists.
func (s *Server) TrustedKey() (string, []byte) {
	return s.signer.Entity, s.signer.PublicKey()
}

// precomputeAll fills the proactive cache for every (transcoder, PAD,
// resource) combination against each predecessor version and the
// cold-start case.
func (s *Server) precomputeAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.precomputeAllLocked()
}

// precomputeAllLocked is precomputeAll with s.mu already held.
func (s *Server) precomputeAllLocked() error {
	tcs := []string{""}
	for id := range s.transcoders {
		tcs = append(tcs, id)
	}
	for res, chain := range s.resources {
		curV := len(chain)
		for _, tcID := range tcs {
			cur, err := s.transformLocked(tcID, chain[curV-1])
			if err != nil {
				return err
			}
			for id, p := range s.pads {
				for have := 0; have <= curV; have++ {
					var old []byte
					if have > 0 {
						if old, err = s.transformLocked(tcID, chain[have-1]); err != nil {
							return err
						}
					}
					payload, err := p.impl.Encode(old, cur)
					if err != nil {
						return fmt.Errorf("appserver: precomputing %s/%s/%s@%d: %w", tcID, id, res, have, err)
					}
					s.precomputed[precompKey(tcID, id, res, have)] = payload
				}
			}
		}
	}
	return nil
}

// transformLocked applies a registered transcoder ("" = none); the caller
// holds s.mu.
func (s *Server) transformLocked(tcID string, content []byte) ([]byte, error) {
	if tcID == "" {
		return content, nil
	}
	tc, ok := s.transcoders[tcID]
	if !ok {
		return nil, fmt.Errorf("appserver: unknown transcoder PAD %q", tcID)
	}
	out, err := tc.Transform(content)
	if err != nil {
		return nil, fmt.Errorf("appserver: transcoding with %s: %w", tcID, err)
	}
	return out, nil
}

func precompKey(transcoderID, padID, resource string, have int) string {
	return fmt.Sprintf("%s|%s|%s|%d", transcoderID, padID, resource, have)
}

// EncodeResult is the outcome of serving one request.
type EncodeResult struct {
	Payload      []byte
	Version      int
	PADID        string
	ContentBytes int64 // size of the full current version
	Precomputed  bool
}

// Encode serves a resource for a client that negotiated the given PAD
// path and holds haveVersion (0 = nothing). The path may contain one
// content-adaptation PAD (applied to the content first) and must contain
// one communication-optimization PAD. Context-specific metadata ids of the
// form "<module-id>@<context>" resolve to their module.
func (s *Server) Encode(padIDs []string, resource string, haveVersion int) (EncodeResult, error) {
	s.requests.Add(1)
	s.mu.RLock()
	var chosen *pad
	var chosenID, tcID string
	for _, id := range padIDs {
		if _, ok := s.transcoders[id]; ok {
			if tcID != "" && tcID != id {
				s.mu.RUnlock()
				return EncodeResult{}, fmt.Errorf("appserver: path names two transcoders (%s, %s)", tcID, id)
			}
			tcID = id
			continue
		}
		if chosen != nil {
			continue
		}
		moduleID := id
		if i := strings.IndexByte(id, '@'); i >= 0 {
			moduleID = id[:i]
		}
		if p, ok := s.pads[moduleID]; ok {
			chosen, chosenID = p, id
		}
	}
	strategy := s.strategy
	s.mu.RUnlock()
	if chosen == nil {
		return EncodeResult{}, fmt.Errorf("appserver: none of the negotiated PADs %v is deployed", padIDs)
	}
	cur, curV, err := s.Current(resource)
	if err != nil {
		return EncodeResult{}, err
	}
	if haveVersion < 0 || haveVersion > curV {
		return EncodeResult{}, fmt.Errorf("appserver: client claims version %d of %s, newest is %d", haveVersion, resource, curV)
	}
	// Note haveVersion may equal curV (client already current): the old
	// version is then the current content itself, and differencing
	// protocols collapse the payload to nearly nothing.
	if strategy == Proactive {
		s.mu.RLock()
		payload, ok := s.precomputed[precompKey(tcID, moduleOf(chosenID), resource, haveVersion)]
		s.mu.RUnlock()
		if ok {
			s.precompHits.Add(1)
			return EncodeResult{Payload: payload, Version: curV, PADID: chosenID, ContentBytes: int64(len(cur)), Precomputed: true}, nil
		}
	}
	old, err := s.version(resource, haveVersion)
	if err != nil {
		return EncodeResult{}, err
	}
	s.mu.RLock()
	cur, err = s.transformLocked(tcID, cur)
	if err == nil && old != nil {
		old, err = s.transformLocked(tcID, old)
	}
	s.mu.RUnlock()
	if err != nil {
		return EncodeResult{}, err
	}
	payload, err := chosen.impl.Encode(old, cur)
	if err != nil {
		return EncodeResult{}, fmt.Errorf("appserver: encoding %s with %s: %w", resource, chosenID, err)
	}
	s.reactive.Add(1)
	return EncodeResult{Payload: payload, Version: curV, PADID: chosenID, ContentBytes: int64(len(cur))}, nil
}

// moduleOf strips a context suffix from a metadata PAD id.
func moduleOf(metaID string) string {
	if i := strings.IndexByte(metaID, '@'); i >= 0 {
		return metaID[:i]
	}
	return metaID
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:       s.requests.Load(),
		ReactiveEncod:  s.reactive.Load(),
		PrecomputeHits: s.precompHits.Load(),
	}
}

// DigestOf is a convenience for tests: SHA-1 of a blob.
func DigestOf(b []byte) [sha1.Size]byte { return sha1.Sum(b) }
