package experiment

import (
	"strings"
	"sync"
	"testing"
	"time"

	"fractal/internal/codec"
	"fractal/internal/netsim"
	"fractal/internal/workload"
)

// sharedSetup builds the default platform once; experiments treat it
// read-only (except the CDN warm-up, which is idempotent).
var (
	setupOnce sync.Once
	setupVal  *Setup
	setupErr  error
)

func testSetup(t testing.TB) *Setup {
	t.Helper()
	setupOnce.Do(func() {
		setupVal, setupErr = NewSetup(DefaultSetupConfig())
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return setupVal
}

func TestSetupConfigValidation(t *testing.T) {
	bad := DefaultSetupConfig()
	bad.Pages = 0
	if _, err := NewSetup(bad); err == nil {
		t.Fatal("zero pages accepted")
	}
	bad = DefaultSetupConfig()
	bad.Edges = 0
	if _, err := NewSetup(bad); err == nil {
		t.Fatal("zero edges accepted")
	}
}

func TestSetupBuildsCompletePlatform(t *testing.T) {
	s := testSetup(t)
	if s.App.Resources() != 75 {
		t.Fatalf("resources = %d, want 75", s.App.Resources())
	}
	if len(s.AppMeta.PADs) != 4 {
		t.Fatalf("PADs = %d, want 4", len(s.AppMeta.PADs))
	}
	// Count only PAD modules: RunFig9b may already have published its
	// synthetic average-size object on the shared setup.
	mods := 0
	for _, path := range s.CDN.Origin().Paths() {
		if strings.HasPrefix(path, "/pads/pad-") {
			mods++
		}
	}
	if mods != 4 {
		t.Fatalf("published PAD modules = %d, want 4", mods)
	}
	if len(s.CDN.Edges()) != 10 {
		t.Fatalf("edges = %d, want 10", len(s.CDN.Edges()))
	}
}

func TestEnvForStations(t *testing.T) {
	env := EnvFor(netsim.PDA)
	if env.Dev.OSType != "WinCE4.2" || env.Ntwk.NetworkType != "Bluetooth" {
		t.Fatalf("env = %+v", env)
	}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Figure 11(a): Direct > Gzip > Bitmap > Vary in bytes transferred.
func TestFig11aByteOrdering(t *testing.T) {
	s := testSetup(t)
	r, err := RunFig11a(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	by := map[string]int64{}
	for _, row := range r.Rows {
		by[row.Protocol] = row.Bytes
	}
	t.Logf("fig11a bytes: %v", by)
	if !(by[codec.NameDirect] > by[codec.NameGzip] &&
		by[codec.NameGzip] > by[codec.NameBitmap] &&
		by[codec.NameBitmap] > by[codec.NameVaryBlock]) {
		t.Fatalf("byte ordering violates Figure 11(a): %v", by)
	}
}

// Figure 11(b): with server-side computing the winners are Direct
// (Desktop-LAN), Gzip (Laptop-WLAN), Bitmap (PDA-Bluetooth), and
// Vary-sized blocking is disqualified everywhere by server compute.
func TestFig11bWinners(t *testing.T) {
	s := testSetup(t)
	g, err := RunFig11Grid(s, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range g.Rows() {
		t.Log(row)
	}
	want := map[string]string{
		"Desktop": codec.NameDirect,
		"Laptop":  codec.NameGzip,
		"PDA":     codec.NameBitmap,
	}
	for station, proto := range want {
		if g.Winner[station] != proto {
			t.Errorf("%s winner = %s, want %s", station, g.Winner[station], proto)
		}
		if g.Totals[station][codec.NameVaryBlock] <= g.Totals[station][proto] {
			t.Errorf("%s: vary (%v) not disqualified vs %s (%v)",
				station, g.Totals[station][codec.NameVaryBlock], proto, g.Totals[station][proto])
		}
	}
}

// Figure 11(c)/10(d): without server-side computing Desktop and Laptop
// keep their protocols but the PDA flips Bitmap -> Vary-sized blocking.
func TestFig11cFlip(t *testing.T) {
	s := testSetup(t)
	g, err := RunFig11Grid(s, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range g.Rows() {
		t.Log(row)
	}
	want := map[string]string{
		"Desktop": codec.NameDirect,
		"Laptop":  codec.NameGzip,
		"PDA":     codec.NameVaryBlock,
	}
	for station, proto := range want {
		if g.Winner[station] != proto {
			t.Errorf("%s winner without server comp = %s, want %s", station, g.Winner[station], proto)
		}
	}
}

// Figure 10: scenario grid consistency — the adaptive scenario's protocol
// equals the per-station winner, and Vary's server compute dominates.
func TestFig10Scenarios(t *testing.T) {
	s := testSetup(t)
	sc, err := RunScenarios(s, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Rows) != 9 {
		t.Fatalf("rows = %d, want 3 stations x 3 scenarios", len(sc.Rows))
	}
	grid, err := RunFig11Grid(s, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, station := range []string{"Desktop", "Laptop", "PDA"} {
		ad, err := sc.Row(station, ScenarioAdaptive)
		if err != nil {
			t.Fatal(err)
		}
		if ad.Protocol != grid.Winner[station] {
			t.Errorf("%s adaptive scenario picked %s, grid winner is %s", station, ad.Protocol, grid.Winner[station])
		}
		static, err := sc.Row(station, ScenarioStatic)
		if err != nil {
			t.Fatal(err)
		}
		if static.Protocol != codec.NameVaryBlock {
			t.Errorf("static scenario protocol = %s", static.Protocol)
		}
		// "Vary-sized blocking has huge server side computing time".
		if static.ServerComp < 10*ad.ServerComp && ad.Protocol != codec.NameVaryBlock {
			t.Errorf("%s: vary server comp %v not dominant over adaptive %v", station, static.ServerComp, ad.ServerComp)
		}
		none, err := sc.Row(station, ScenarioNone)
		if err != nil {
			t.Fatal(err)
		}
		if none.ServerComp != 0 || none.ClientComp != 0 {
			t.Errorf("%s: direct sending has computing overhead %v/%v", station, none.ServerComp, none.ClientComp)
		}
	}
	// Proactive strategy rows differ only in server comp.
	scd, err := RunScenarios(s, false)
	if err != nil {
		t.Fatal(err)
	}
	pdaAdaptive, err := scd.Row("PDA", ScenarioAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	if pdaAdaptive.Protocol != codec.NameVaryBlock {
		t.Errorf("Figure 10(d): PDA adaptive = %s, want varyblock", pdaAdaptive.Protocol)
	}
	if pdaAdaptive.ServerComp != 0 {
		t.Errorf("proactive scenario has server comp %v", pdaAdaptive.ServerComp)
	}
}

// The headline numbers: adaptive beats none and static, with savings of
// the same order as the paper's 41%/14%.
func TestHeadlineSavings(t *testing.T) {
	s := testSetup(t)
	r, err := RunHeadline(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Render() {
		t.Log(row)
	}
	for _, row := range r.Rows {
		if row.AdaptiveTotal > row.NoneTotal+1e-9 {
			t.Errorf("%s: adaptive (%v) worse than none (%v)", row.Station, row.AdaptiveTotal, row.NoneTotal)
		}
		if row.AdaptiveTotal > row.StaticTotal+1e-9 {
			t.Errorf("%s: adaptive (%v) worse than static (%v)", row.Station, row.AdaptiveTotal, row.StaticTotal)
		}
	}
	if r.BestVsNone < 0.20 {
		t.Errorf("best savings vs none = %.0f%%, want >= 20%% (paper: 41%%)", r.BestVsNone*100)
	}
	if r.BestVsStatic < 0.05 {
		t.Errorf("best savings vs static = %.0f%%, want >= 5%% (paper: 14%%)", r.BestVsStatic*100)
	}
}

// Figure 9(b): centralized retrieval degrades with client count; CDN
// stays flat and wins at scale.
func TestFig9bShape(t *testing.T) {
	s := testSetup(t)
	r, err := RunFig9b(s, []int{1, 50, 100, 200, 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows() {
		t.Log(row)
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if ratio := last.Centralized.Seconds() / first.Centralized.Seconds(); ratio < 5 {
		t.Errorf("centralized slowdown at 300 clients only %.1fx", ratio)
	}
	if ratio := last.Distributed.Seconds() / first.Distributed.Seconds(); ratio > 3 {
		t.Errorf("distributed slowdown %.1fx, should stay nearly flat", ratio)
	}
	if last.Centralized <= last.Distributed {
		t.Error("centralized not slower than distributed at 300 clients")
	}
	// Monotone degradation for the centralized curve.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Centralized < r.Points[i-1].Centralized {
			t.Errorf("centralized curve not monotone at %d clients", r.Points[i].Clients)
		}
	}
}

// Figure 9(a): real concurrent negotiations stay in a stable range
// (no super-linear blowup) thanks to search efficiency + the adaptation
// cache.
func TestFig9aStability(t *testing.T) {
	if testing.Short() {
		t.Skip("network experiment")
	}
	s := testSetup(t)
	r, err := RunFig9a(s, []int{1, 8, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows() {
		t.Log(row)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// All negotiations completed (RunFig9a errors otherwise). Guard only
	// against a pathological blowup: mean at 64 clients should stay within
	// 200x of mean at 1 client even on a loaded CI machine.
	if r.Points[3].Mean > 200*r.Points[0].Mean {
		t.Errorf("negotiation mean exploded: %v -> %v", r.Points[0].Mean, r.Points[3].Mean)
	}
}

func TestTable1(t *testing.T) {
	s := testSetup(t)
	rows, err := RunTable1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("table 1 rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Function == "" || r.Implementation == "" || r.ModuleBytes == 0 {
			t.Errorf("incomplete Table 1 row: %+v", r)
		}
	}
}

func TestRunFig9InputValidation(t *testing.T) {
	s := testSetup(t)
	if _, err := RunFig9b(s, nil); err == nil {
		t.Error("fig9b with no counts accepted")
	}
	if _, err := RunFig9b(s, []int{0}); err == nil {
		t.Error("fig9b with zero count accepted")
	}
	if _, err := RunFig9a(s, nil); err == nil {
		t.Error("fig9a with no counts accepted")
	}
}

func TestCapacityScenarioOrdering(t *testing.T) {
	s := testSetup(t)
	trace, err := workload.GenerateTrace(s.V2, workload.DefaultTraceConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunCapacity(s, trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Render() {
		t.Log(row)
	}
	var none, static, adaptive CapacityRow
	for _, row := range r.Rows {
		switch row.Scenario {
		case ScenarioNone:
			none = row
		case ScenarioStatic:
			static = row
		case ScenarioAdaptive:
			adaptive = row
		}
	}
	// Direct has no server computing; static (vary) is the most
	// expensive; adaptive sits in between, so adaptive capacity beats
	// static — the paper's system-capacity claim.
	if none.ServerSecPerReq != 0 {
		t.Errorf("no-adaptation server compute = %v, want 0", none.ServerSecPerReq)
	}
	if !(adaptive.ServerSecPerReq < static.ServerSecPerReq) {
		t.Errorf("adaptive server demand %v not below static %v", adaptive.ServerSecPerReq, static.ServerSecPerReq)
	}
	if !(adaptive.MaxReqPerSec > static.MaxReqPerSec) {
		t.Errorf("adaptive capacity %v not above static %v", adaptive.MaxReqPerSec, static.MaxReqPerSec)
	}
	if _, err := RunCapacity(s, nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestTimelinePhases(t *testing.T) {
	s := testSetup(t)
	for _, st := range netsim.Stations() {
		tl, err := RunTimeline(s, st)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tl.Render() {
			t.Log(row)
		}
		if len(tl.Phases) != 5 {
			t.Fatalf("%s: %d phases, want 5", st.Device.Name, len(tl.Phases))
		}
		// Phases are contiguous and ordered.
		var prev time.Duration
		for _, p := range tl.Phases {
			if p.Start != prev {
				t.Fatalf("%s: phase %s starts at %v, want %v", st.Device.Name, p.Name, p.Start, prev)
			}
			if p.End < p.Start {
				t.Fatalf("%s: phase %s ends before it starts", st.Device.Name, p.Name)
			}
			prev = p.End
		}
		if tl.Total != prev {
			t.Fatalf("%s: total %v != last phase end %v", st.Device.Name, tl.Total, prev)
		}
	}
	// The PDA's first contact is dominated by the slow link; it must take
	// far longer than the desktop's.
	desk, err := RunTimeline(s, netsim.Desktop)
	if err != nil {
		t.Fatal(err)
	}
	pda, err := RunTimeline(s, netsim.PDA)
	if err != nil {
		t.Fatal(err)
	}
	if pda.Total < 10*desk.Total {
		t.Errorf("PDA first contact %v not much slower than desktop %v", pda.Total, desk.Total)
	}
}

// The paper's premise, from the authors' prior study [30]: no single
// protocol wins across document classes and environments.
func TestPremiseNoUniversalWinner(t *testing.T) {
	r, err := RunPremise(2005)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Render() {
		t.Log(row)
	}
	if len(r.Cells) != 12 {
		t.Fatalf("cells = %d, want 4 classes x 3 stations", len(r.Cells))
	}
	if r.DistinctWinners() < 2 {
		t.Fatal("a single protocol won everywhere; the premise experiment is broken")
	}
	// Pre-compressed content must defeat gzip: direct (or a differencing
	// protocol) should beat it on bytes.
	pc := r.Bytes["precompressed"]
	if pc[codec.NameGzip] < pc[codec.NameDirect]*9/10 {
		t.Errorf("gzip compressed the incompressible class: %d vs direct %d", pc[codec.NameGzip], pc[codec.NameDirect])
	}
	// Static archives are nearly free for differencing protocols.
	sa := r.Bytes["static-archive"]
	if sa[codec.NameVaryBlock] > sa[codec.NameDirect]/10 {
		t.Errorf("vary on static archive = %d bytes vs direct %d; diffing broken", sa[codec.NameVaryBlock], sa[codec.NameDirect])
	}
}

// The rho ablation: the per-station selection must be stable across the
// paper's observed deployment band [0.6, 0.8].
func TestRhoSweepStability(t *testing.T) {
	s := testSetup(t)
	points, err := RunRhoSweep(s, []float64{0.6, 0.7, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	base := points[0].Winners
	for _, p := range points[1:] {
		for station, proto := range p.Winners {
			if base[station] != proto {
				t.Errorf("rho %.2f flips %s from %s to %s", p.Rho, station, base[station], proto)
			}
		}
	}
	if _, err := RunRhoSweep(s, nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

// Session-level client total delay: adaptive wins whole sessions on the
// constrained stations even after paying for negotiation and PAD
// download; on the desktop LAN the startup cost makes it a wash with
// direct, never a loss beyond that startup.
func TestSessionTotals(t *testing.T) {
	s := testSetup(t)
	r, err := RunSessionTotals(s, 75)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Render() {
		t.Log(row)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, station := range []string{"Laptop", "PDA"} {
		none, err := r.Row(station, ScenarioNone)
		if err != nil {
			t.Fatal(err)
		}
		adaptive, err := r.Row(station, ScenarioAdaptive)
		if err != nil {
			t.Fatal(err)
		}
		if adaptive.Total >= none.Total {
			t.Errorf("%s: adaptive session %v not below none %v", station, adaptive.Total, none.Total)
		}
		static, err := r.Row(station, ScenarioStatic)
		if err != nil {
			t.Fatal(err)
		}
		if adaptive.Total >= static.Total {
			t.Errorf("%s: adaptive session %v not below static %v", station, adaptive.Total, static.Total)
		}
	}
	// Desktop: adaptive == direct protocol, so the only delta is the
	// bounded startup cost.
	dNone, _ := r.Row("Desktop", ScenarioNone)
	dAd, _ := r.Row("Desktop", ScenarioAdaptive)
	if dAd.Total < dNone.Total {
		t.Error("desktop adaptive cheaper than direct despite startup cost")
	}
	if dAd.Total > dNone.Total+time.Second {
		t.Errorf("desktop startup cost %v unreasonable", dAd.Total-dNone.Total)
	}
	if _, err := RunSessionTotals(s, 0); err == nil {
		t.Error("zero-request session accepted")
	}
}
