package experiment

import (
	"fmt"
	"time"

	"fractal/internal/codec"
	"fractal/internal/core"
	"fractal/internal/netsim"
)

// Scenario names the three adaptation strategies compared in Figures 10
// and 11.
type Scenario string

// The compared strategies (Section 4.4.2).
const (
	// ScenarioNone: no communication optimization protocol; the client
	// receives the original page directly.
	ScenarioNone Scenario = "none"
	// ScenarioStatic: every client always uses Vary-sized blocking
	// without negotiation (the paper's "fixed protocol adaptation").
	ScenarioStatic Scenario = "static"
	// ScenarioAdaptive: the full Fractal negotiation.
	ScenarioAdaptive Scenario = "adaptive"
)

// OverheadRow is one bar of Figure 10/11: a station under a scenario, the
// protocol that scenario uses there, and the Equation 3 terms.
type OverheadRow struct {
	Station  string
	Scenario Scenario
	Protocol string
	// Per-request seconds.
	ServerComp float64
	ClientComp float64
	Traffic    float64
	Download   float64
	Bytes      int64 // traffic + upstream bytes per request
}

// Total returns the summed per-request overhead in seconds.
func (r OverheadRow) Total() float64 {
	return r.ServerComp + r.ClientComp + r.Traffic + r.Download
}

// ScenarioResult is the full Figure 10/11 grid for one server strategy.
type ScenarioResult struct {
	IncludeServerComp bool
	Rows              []OverheadRow
}

// protocolFor resolves the protocol a scenario uses for an environment;
// for the adaptive scenario it runs the real negotiation through the
// proxy.
func (s *Setup) protocolFor(sc Scenario, env core.Env, includeServer bool) (string, error) {
	switch sc {
	case ScenarioNone:
		return codec.NameDirect, nil
	case ScenarioStatic:
		return codec.NameVaryBlock, nil
	case ScenarioAdaptive:
		model := s.Model
		model.IncludeServerComp = includeServer
		// Use a throwaway negotiation manager so the Fig 11(b) and (c)
		// runs don't pollute each other through the adaptation cache.
		res, err := core.FindPath(mustPAT(s), model, env)
		if err != nil {
			return "", err
		}
		return res.PADs[len(res.PADs)-1].Protocol, nil
	default:
		return "", fmt.Errorf("experiment: unknown scenario %q", sc)
	}
}

// mustPAT rebuilds the PAT from the measured AppMeta (cheap; a handful of
// nodes).
func mustPAT(s *Setup) *core.PAT {
	t, err := core.BuildPAT(s.AppMeta)
	if err != nil {
		panic(fmt.Sprintf("experiment: AppMeta no longer builds a PAT: %v", err))
	}
	return t
}

// RunScenarios evaluates the three adaptation scenarios for each of the
// paper's stations under the given server strategy. With
// includeServerComp=true this is Figures 10(a–c)/11(b); with false it is
// Figures 10(d)/11(c).
func RunScenarios(s *Setup, includeServerComp bool) (ScenarioResult, error) {
	model := s.Model
	model.IncludeServerComp = includeServerComp
	out := ScenarioResult{IncludeServerComp: includeServerComp}
	for _, st := range netsim.Stations() {
		env := EnvFor(st)
		for _, sc := range []Scenario{ScenarioNone, ScenarioStatic, ScenarioAdaptive} {
			proto, err := s.protocolFor(sc, env, includeServerComp)
			if err != nil {
				return ScenarioResult{}, fmt.Errorf("experiment: %s/%s: %w", st.Device.Name, sc, err)
			}
			pad, err := s.PADByProtocol(proto)
			if err != nil {
				return ScenarioResult{}, err
			}
			b, err := model.PADTotal(pad, env)
			if err != nil {
				return ScenarioResult{}, fmt.Errorf("experiment: %s/%s: %w", st.Device.Name, sc, err)
			}
			out.Rows = append(out.Rows, OverheadRow{
				Station:    st.Device.Name,
				Scenario:   sc,
				Protocol:   proto,
				ServerComp: b.ServerComp,
				ClientComp: b.ClientComp,
				Traffic:    b.Traffic,
				Download:   b.Download,
				Bytes:      pad.Overhead.TrafficBytes + pad.Overhead.UpstreamBytes,
			})
		}
	}
	return out, nil
}

// Row returns the entry for a station/scenario pair.
func (r ScenarioResult) Row(station string, sc Scenario) (OverheadRow, error) {
	for _, row := range r.Rows {
		if row.Station == station && row.Scenario == sc {
			return row, nil
		}
	}
	return OverheadRow{}, fmt.Errorf("experiment: no row for %s/%s", station, sc)
}

// ComputingRows renders Figure 10: the computing-overhead components per
// station and scenario.
func (r ScenarioResult) ComputingRows() []string {
	rows := []string{fmt.Sprintf("station\tscenario\tprotocol\tserver_comp\tclient_comp\t(server_comp_included=%v)", r.IncludeServerComp)}
	for _, row := range r.Rows {
		rows = append(rows, fmt.Sprintf("%s\t%s\t%s\t%s\t%s",
			row.Station, row.Scenario, row.Protocol,
			secs(row.ServerComp), secs(row.ClientComp)))
	}
	return rows
}

// TotalRows renders Figure 11(b)/(c): total time per station and scenario.
func (r ScenarioResult) TotalRows() []string {
	rows := []string{fmt.Sprintf("station\tscenario\tprotocol\ttotal_time\t(server_comp_included=%v)", r.IncludeServerComp)}
	for _, row := range r.Rows {
		rows = append(rows, fmt.Sprintf("%s\t%s\t%s\t%s",
			row.Station, row.Scenario, row.Protocol, secs(row.Total())))
	}
	return rows
}

func secs(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// Fig11aRow is one bar of Figure 11(a): bytes transferred per protocol.
type Fig11aRow struct {
	Protocol string
	Bytes    int64 // downstream + upstream per request
}

// Fig11aResult is the bytes-transferred comparison, smallest last as the
// paper plots it.
type Fig11aResult struct {
	Rows []Fig11aRow
}

// RunFig11a reports the measured per-request bytes of each protocol on
// the corpus. "The same protocol should generate the same number of bytes
// transferred, no matter the kind of client environment."
func RunFig11a(s *Setup) (Fig11aResult, error) {
	order := []string{codec.NameDirect, codec.NameGzip, codec.NameBitmap, codec.NameVaryBlock}
	var out Fig11aResult
	for _, proto := range order {
		pad, err := s.PADByProtocol(proto)
		if err != nil {
			return Fig11aResult{}, err
		}
		out.Rows = append(out.Rows, Fig11aRow{
			Protocol: proto,
			Bytes:    pad.Overhead.TrafficBytes + pad.Overhead.UpstreamBytes,
		})
	}
	return out, nil
}

// Render renders the comparison.
func (r Fig11aResult) Render() []string {
	rows := []string{"protocol\tbytes_per_request"}
	for _, row := range r.Rows {
		rows = append(rows, fmt.Sprintf("%s\t%d", row.Protocol, row.Bytes))
	}
	return rows
}

// Fig11Grid is the per-protocol total time per station: every bar of
// Figures 11(b)/(c), not only the scenario winners.
type Fig11Grid struct {
	IncludeServerComp bool
	// Totals[station][protocol] = per-request total seconds.
	Totals map[string]map[string]float64
	// Winner[station] = least-total protocol, which must match the
	// adaptive negotiation.
	Winner map[string]string
}

// RunFig11Grid evaluates every protocol in every environment.
func RunFig11Grid(s *Setup, includeServerComp bool) (Fig11Grid, error) {
	model := s.Model
	model.IncludeServerComp = includeServerComp
	grid := Fig11Grid{
		IncludeServerComp: includeServerComp,
		Totals:            map[string]map[string]float64{},
		Winner:            map[string]string{},
	}
	protos := []string{codec.NameDirect, codec.NameGzip, codec.NameBitmap, codec.NameVaryBlock}
	for _, st := range netsim.Stations() {
		env := EnvFor(st)
		grid.Totals[st.Device.Name] = map[string]float64{}
		best, bestTotal := "", -1.0
		for _, proto := range protos {
			pad, err := s.PADByProtocol(proto)
			if err != nil {
				return Fig11Grid{}, err
			}
			b, err := model.PADTotal(pad, env)
			if err != nil {
				return Fig11Grid{}, err
			}
			total := b.Total()
			grid.Totals[st.Device.Name][proto] = total
			if bestTotal < 0 || total < bestTotal {
				best, bestTotal = proto, total
			}
		}
		grid.Winner[st.Device.Name] = best
	}
	return grid, nil
}

// Rows renders the grid.
func (g Fig11Grid) Rows() []string {
	rows := []string{fmt.Sprintf("station\tdirect\tgzip\tbitmap\tvaryblock\twinner\t(server_comp_included=%v)", g.IncludeServerComp)}
	for _, st := range netsim.Stations() {
		name := st.Device.Name
		t := g.Totals[name]
		rows = append(rows, fmt.Sprintf("%s\t%s\t%s\t%s\t%s\t%s",
			name, secs(t[codec.NameDirect]), secs(t[codec.NameGzip]),
			secs(t[codec.NameBitmap]), secs(t[codec.NameVaryBlock]), g.Winner[name]))
	}
	return rows
}

// RhoPoint is the winner set at one value of the available-bandwidth
// fraction ρ.
type RhoPoint struct {
	Rho     float64
	Winners map[string]string // station -> protocol
}

// RunRhoSweep evaluates the Figure 11(b) winner per station across a ρ
// range, the sensitivity ablation DESIGN.md calls out: the paper fixes
// ρ≈0.8 after observing deployments between 0.6 and 0.8, so the selection
// should be stable across that band.
func RunRhoSweep(s *Setup, rhos []float64) ([]RhoPoint, error) {
	if len(rhos) == 0 {
		return nil, fmt.Errorf("experiment: rho sweep needs values")
	}
	var out []RhoPoint
	for _, rho := range rhos {
		model := s.Model
		model.Rho = rho
		point := RhoPoint{Rho: rho, Winners: map[string]string{}}
		for _, st := range netsim.Stations() {
			env := EnvFor(st)
			best, bestTotal := "", -1.0
			for _, proto := range []string{codec.NameDirect, codec.NameGzip, codec.NameBitmap, codec.NameVaryBlock} {
				pad, err := s.PADByProtocol(proto)
				if err != nil {
					return nil, err
				}
				b, err := model.PADTotal(pad, env)
				if err != nil {
					return nil, fmt.Errorf("experiment: rho %.2f: %w", rho, err)
				}
				if total := b.Total(); bestTotal < 0 || total < bestTotal {
					best, bestTotal = proto, total
				}
			}
			point.Winners[st.Device.Name] = best
		}
		out = append(out, point)
	}
	return out, nil
}
