package experiment

import (
	"fmt"
)

// HeadlineRow quantifies the abstract's claim for one station: the total
// communication overhead reduction of adaptive protocol adaptation
// compared with no adaptation and with the static (always Vary-sized
// blocking) approach.
type HeadlineRow struct {
	Station          string
	AdaptiveProtocol string
	NoneTotal        float64 // seconds per request
	StaticTotal      float64
	AdaptiveTotal    float64
	SavingsVsNone    float64 // fraction in [0,1)
	SavingsVsStatic  float64
}

// HeadlineResult is the savings summary; the paper reports "for some
// clients, the total communication overhead reduces 41% compared with no
// protocol adaptation mechanism, and 14% compared with the static protocol
// adaptation approach".
type HeadlineResult struct {
	Rows []HeadlineRow
	// Best* are the maxima over stations, the "for some clients" numbers.
	BestVsNone   float64
	BestVsStatic float64
}

// RunHeadline derives the savings from the Figure 11(b) scenario totals
// (reactive server strategy, as in the paper's main comparison).
func RunHeadline(s *Setup) (HeadlineResult, error) {
	sc, err := RunScenarios(s, true)
	if err != nil {
		return HeadlineResult{}, err
	}
	var out HeadlineResult
	for _, station := range []string{"Desktop", "Laptop", "PDA"} {
		none, err := sc.Row(station, ScenarioNone)
		if err != nil {
			return HeadlineResult{}, err
		}
		static, err := sc.Row(station, ScenarioStatic)
		if err != nil {
			return HeadlineResult{}, err
		}
		adaptive, err := sc.Row(station, ScenarioAdaptive)
		if err != nil {
			return HeadlineResult{}, err
		}
		row := HeadlineRow{
			Station:          station,
			AdaptiveProtocol: adaptive.Protocol,
			NoneTotal:        none.Total(),
			StaticTotal:      static.Total(),
			AdaptiveTotal:    adaptive.Total(),
		}
		if row.NoneTotal > 0 {
			row.SavingsVsNone = 1 - row.AdaptiveTotal/row.NoneTotal
		}
		if row.StaticTotal > 0 {
			row.SavingsVsStatic = 1 - row.AdaptiveTotal/row.StaticTotal
		}
		if row.SavingsVsNone > out.BestVsNone {
			out.BestVsNone = row.SavingsVsNone
		}
		if row.SavingsVsStatic > out.BestVsStatic {
			out.BestVsStatic = row.SavingsVsStatic
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render renders the summary.
func (r HeadlineResult) Render() []string {
	rows := []string{"station\tadaptive_protocol\tnone\tstatic\tadaptive\tsavings_vs_none\tsavings_vs_static"}
	for _, row := range r.Rows {
		rows = append(rows, fmt.Sprintf("%s\t%s\t%s\t%s\t%s\t%.0f%%\t%.0f%%",
			row.Station, row.AdaptiveProtocol,
			secs(row.NoneTotal), secs(row.StaticTotal), secs(row.AdaptiveTotal),
			row.SavingsVsNone*100, row.SavingsVsStatic*100))
	}
	rows = append(rows, fmt.Sprintf("best\t\t\t\t\t%.0f%%\t%.0f%%", r.BestVsNone*100, r.BestVsStatic*100))
	return rows
}

// Table1Row describes one PAD, reproducing Table 1.
type Table1Row struct {
	Name           string
	Function       string
	Implementation string
	ModuleBytes    int64
}

// RunTable1 reports the deployed PAD set.
func RunTable1(s *Setup) ([]Table1Row, error) {
	desc := map[string][2]string{
		"direct":    {"null", "mobile-code module (identity program)"},
		"gzip":      {"Compression", "mobile-code module (VM program + gzip primitive)"},
		"varyblock": {"Differencing files using Fingerprint", "mobile-code module (VM program + Rabin chunking primitive)"},
		"bitmap":    {"Differencing files bit by bit", "mobile-code module (VM program + fixed blocking primitive)"},
	}
	var rows []Table1Row
	for _, p := range s.AppMeta.PADs {
		d := desc[p.Protocol]
		rows = append(rows, Table1Row{
			Name:           p.ID,
			Function:       d[0],
			Implementation: d[1],
			ModuleBytes:    p.Size,
		})
	}
	return rows, nil
}
