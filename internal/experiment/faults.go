package experiment

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"fractal/internal/appserver"
	"fractal/internal/client"
	"fractal/internal/core"
	"fractal/internal/faultnet"
	"fractal/internal/inp"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
	"fractal/internal/proxy"
)

// The fault-schedule scenario set: the client plane is driven over real
// TCP through faultnet's deterministic injector, one scenario at a time,
// and every scenario must end in one of three contract outcomes —
// completed, failed fast with a typed error, or degraded to the Direct
// builtin. Scenarios run sequentially with a single client each, so a
// fixed (workload seed, fault seed) pair reproduces identical rows.

// faultsCallTimeout bounds each read/write of a faulted exchange; an
// injected stall therefore costs one deadline, not a hung run.
const faultsCallTimeout = 250 * time.Millisecond

// Scenario outcomes (the resilience contract).
const (
	OutcomeCompleted  = "completed"
	OutcomeFailedFast = "failed-fast"
	OutcomeDegraded   = "degraded"
)

// FaultScenario is one row of the fault suite.
type FaultScenario struct {
	Name    string
	Outcome string
	Detail  string
	// Faults is the schedule's consumed-fault census, keyed by fault kind.
	Faults map[string]int64
}

// FaultsResult is the scenario series.
type FaultsResult struct {
	Seed      int64
	Scenarios []FaultScenario
}

// RunFaults exercises the hardened client plane under scripted faults.
// The seed drives every fault schedule and retry-jitter source; two runs
// with the same setup and seed produce identical rows.
func RunFaults(s *Setup, seed int64) (FaultsResult, error) {
	srv, err := proxy.NewServer(s.Proxy, 16, func(string, ...interface{}) {})
	if err != nil {
		return FaultsResult{}, err
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return FaultsResult{}, fmt.Errorf("experiment: faults listen: %w", err)
	}
	pdone := make(chan error, 1)
	go func() { pdone <- srv.Serve(pln) }()
	defer func() { _ = srv.Close(); <-pdone }()

	asrv, err := appserver.NewINPServer(s.App, 16, func(string, ...interface{}) {})
	if err != nil {
		return FaultsResult{}, err
	}
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return FaultsResult{}, fmt.Errorf("experiment: faults app listen: %w", err)
	}
	adone := make(chan error, 1)
	go func() { adone <- asrv.Serve(aln) }()
	defer func() { _ = asrv.Close(); <-adone }()

	env := EnvFor(netsim.Stations()[0])
	proxyAddr, appAddr := pln.Addr().String(), aln.Addr().String()

	out := FaultsResult{Seed: seed}
	for _, run := range []func() (FaultScenario, error){
		func() (FaultScenario, error) { return faultsClean(s, proxyAddr, env, seed) },
		func() (FaultScenario, error) { return faultsRefuseRetry(s, proxyAddr, env, seed) },
		func() (FaultScenario, error) { return faultsStallDeadline(s, proxyAddr, env, seed) },
		func() (FaultScenario, error) { return faultsCorruptRetry(s, proxyAddr, env, seed) },
		func() (FaultScenario, error) { return faultsTruncateRedial(appAddr, seed) },
		func() (FaultScenario, error) { return faultsProxyDownDegrade(s, proxyAddr, env, seed) },
		func() (FaultScenario, error) { return faultsUnverifiableDegrade(s, proxyAddr, env, seed) },
	} {
		sc, err := run()
		if err != nil {
			return FaultsResult{}, err
		}
		out.Scenarios = append(out.Scenarios, sc)
	}
	return out, nil
}

// padSource adapts a function to client.PADFetcher so a scenario can
// script exactly which module bytes the client receives.
type padSource func(core.PADMeta) ([]byte, error)

func (f padSource) FetchPAD(m core.PADMeta) ([]byte, error) { return f(m) }

// newFaultsClient wires a single-session client: the given negotiator,
// the simulated CDN for PAD downloads, and the in-process app server.
func newFaultsClient(s *Setup, env core.Env, neg client.Negotiator, fallback []byte) (*client.Client, error) {
	pads := &client.CDNFetcher{CDN: s.CDN, Region: "region-0", Link: netsim.WLAN, Concurrent: 1}
	return newFaultsClientWith(s, env, neg, fallback, s.Trust, pads)
}

// newFaultsClientWith is newFaultsClient with the trust list and PAD
// source swapped out, for scenarios that script the module wire itself.
func newFaultsClientWith(s *Setup, env core.Env, neg client.Negotiator, fallback []byte, trust *mobilecode.TrustList, pads client.PADFetcher) (*client.Client, error) {
	cfg := client.Config{
		Env:             env,
		SessionRequests: s.Config.SessionRequests,
		Trust:           trust,
		Sandbox:         mobilecode.DefaultSandbox(),
		FallbackDirect:  fallback,
	}
	content := client.LocalAppServer{Encode: func(ids []string, res string, have int) ([]byte, int, string, error) {
		r, err := s.App.Encode(ids, res, have)
		if err != nil {
			return nil, 0, "", err
		}
		return r.Payload, r.Version, r.PADID, nil
	}}
	return client.New(cfg, neg, pads, content)
}

func retriedNegotiator(addr string, d *faultnet.Dialer, attempts int, seed int64) (*client.RetryingNegotiator, error) {
	neg := &client.TCPNegotiator{Addr: addr, CallTimeout: faultsCallTimeout}
	if d != nil {
		neg.Dial = d.Dial
	}
	return client.NewRetryingNegotiator(neg,
		client.RetryPolicy{Attempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}, seed)
}

func faultsClean(s *Setup, addr string, env core.Env, seed int64) (FaultScenario, error) {
	sched := faultnet.NewSchedule(seed)
	d := &faultnet.Dialer{Schedule: sched}
	rn, err := retriedNegotiator(addr, d, 3, seed)
	if err != nil {
		return FaultScenario{}, err
	}
	c, err := newFaultsClient(s, env, rn, nil)
	if err != nil {
		return FaultScenario{}, err
	}
	for _, res := range []string{"page-000", "page-001"} {
		if _, err := c.Request("webapp", res); err != nil {
			return FaultScenario{}, fmt.Errorf("experiment: clean scenario: %w", err)
		}
	}
	st := c.Stats()
	return FaultScenario{
		Name:    "clean",
		Outcome: OutcomeCompleted,
		Detail:  fmt.Sprintf("negotiations=%d requests=%d", st.Negotiations, st.Requests),
		Faults:  sched.Counts(),
	}, nil
}

func faultsRefuseRetry(s *Setup, addr string, env core.Env, seed int64) (FaultScenario, error) {
	sched := faultnet.NewSchedule(seed, faultnet.Fault{Kind: faultnet.Refuse}, faultnet.Fault{})
	d := &faultnet.Dialer{Schedule: sched}
	rn, err := retriedNegotiator(addr, d, 3, seed)
	if err != nil {
		return FaultScenario{}, err
	}
	c, err := newFaultsClient(s, env, rn, nil)
	if err != nil {
		return FaultScenario{}, err
	}
	if _, err := c.Request("webapp", "page-000"); err != nil {
		return FaultScenario{}, fmt.Errorf("experiment: refuse-retry scenario: %w", err)
	}
	return FaultScenario{
		Name:    "refuse-then-retry",
		Outcome: OutcomeCompleted,
		Detail:  fmt.Sprintf("retries=%d", rn.Stats().Retries),
		Faults:  sched.Counts(),
	}, nil
}

func faultsStallDeadline(s *Setup, addr string, env core.Env, seed int64) (FaultScenario, error) {
	sched := faultnet.NewSchedule(seed, faultnet.Fault{Kind: faultnet.StallRead})
	d := &faultnet.Dialer{Schedule: sched}
	neg := &client.TCPNegotiator{Addr: addr, CallTimeout: faultsCallTimeout, Dial: d.Dial}
	_, err := neg.Negotiate("webapp", env, s.Config.SessionRequests)
	if err == nil {
		return FaultScenario{}, fmt.Errorf("experiment: stalled negotiation unexpectedly completed")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		return FaultScenario{}, fmt.Errorf("experiment: stalled negotiation failed untyped: %w", err)
	}
	return FaultScenario{
		Name:    "stall-read",
		Outcome: OutcomeFailedFast,
		Detail:  "deadline-exceeded",
		Faults:  sched.Counts(),
	}, nil
}

func faultsCorruptRetry(s *Setup, addr string, env core.Env, seed int64) (FaultScenario, error) {
	sched := faultnet.NewSchedule(seed, faultnet.Fault{Kind: faultnet.Corrupt, Count: 2}, faultnet.Fault{})
	d := &faultnet.Dialer{Schedule: sched}
	rn, err := retriedNegotiator(addr, d, 3, seed)
	if err != nil {
		return FaultScenario{}, err
	}
	c, err := newFaultsClient(s, env, rn, nil)
	if err != nil {
		return FaultScenario{}, err
	}
	if _, err := c.Request("webapp", "page-000"); err != nil {
		return FaultScenario{}, fmt.Errorf("experiment: corrupt-retry scenario: %w", err)
	}
	return FaultScenario{
		Name:    "corrupt-then-retry",
		Outcome: OutcomeCompleted,
		Detail:  fmt.Sprintf("retries=%d", rn.Stats().Retries),
		Faults:  sched.Counts(),
	}, nil
}

func faultsTruncateRedial(appAddr string, seed int64) (FaultScenario, error) {
	sched := faultnet.NewSchedule(seed,
		faultnet.Fault{Kind: faultnet.Truncate, After: 20}, faultnet.Fault{})
	d := &faultnet.Dialer{Schedule: sched}
	session, err := client.DialAppSession(appAddr, client.SessionConfig{CallTimeout: faultsCallTimeout, Dial: d.Dial})
	if err != nil {
		return FaultScenario{}, err
	}
	defer session.Close()
	req := inp.AppReq{AppID: "webapp", Resource: "page-000", ProtocolIDs: []string{"pad-direct"}}
	if _, err := session.FetchContent(req); !errors.Is(err, client.ErrSessionBroken) {
		return FaultScenario{}, fmt.Errorf("experiment: truncation err = %v, want ErrSessionBroken", err)
	}
	if _, err := session.FetchContent(req); err != nil {
		return FaultScenario{}, fmt.Errorf("experiment: redial after truncation: %w", err)
	}
	return FaultScenario{
		Name:    "truncate-then-redial",
		Outcome: OutcomeCompleted,
		Detail:  fmt.Sprintf("redials=%d", session.Redials()),
		Faults:  sched.Counts(),
	}, nil
}

func faultsProxyDownDegrade(s *Setup, addr string, env core.Env, seed int64) (FaultScenario, error) {
	// Provision the fallback module the way a device vendor would: the
	// published pad-direct module itself (already signed by the trusted
	// operator), fetched once over a healthy link and kept locally.
	r, err := s.CDN.Retrieve("region-0", "/pads/pad-direct", netsim.WLAN, 1)
	if err != nil {
		return FaultScenario{}, fmt.Errorf("experiment: provisioning fallback module: %w", err)
	}
	sched := faultnet.NewSchedule(seed,
		faultnet.Fault{Kind: faultnet.Refuse}, faultnet.Fault{Kind: faultnet.Refuse})
	d := &faultnet.Dialer{Schedule: sched}
	rn, err := retriedNegotiator(addr, d, 2, seed)
	if err != nil {
		return FaultScenario{}, err
	}
	c, err := newFaultsClient(s, env, rn, r.Data)
	if err != nil {
		return FaultScenario{}, err
	}
	if _, err := c.Request("webapp", "page-000"); err != nil {
		return FaultScenario{}, fmt.Errorf("experiment: degraded scenario: %w", err)
	}
	st := c.Stats()
	if st.Degradations != 1 {
		return FaultScenario{}, fmt.Errorf("experiment: degradations = %d, want 1", st.Degradations)
	}
	return FaultScenario{
		Name:    "proxy-down-degrade",
		Outcome: OutcomeDegraded,
		Detail:  fmt.Sprintf("degradations=%d requests=%d", st.Degradations, st.Requests),
		Faults:  sched.Counts(),
	}, nil
}

// faultsUnverifiableDegrade models a compromised module mirror: the PAD
// bytes arrive properly signed by an entity on the device's trust list,
// but the decode program calls a capability outside the sandbox manifest.
// Signature and digest checks cannot catch that — only the static
// bytecode verifier can — and its rejection must funnel into the same
// degraded mode as any other deploy failure.
func faultsUnverifiableDegrade(s *Setup, addr string, env core.Env, seed int64) (FaultScenario, error) {
	fallback, err := s.CDN.Retrieve("region-0", "/pads/pad-direct", netsim.WLAN, 1)
	if err != nil {
		return FaultScenario{}, fmt.Errorf("experiment: provisioning fallback module: %w", err)
	}
	rogue, err := mobilecode.NewSigner("rogue-mirror")
	if err != nil {
		return FaultScenario{}, err
	}
	evil, err := buildUnverifiableModule(rogue)
	if err != nil {
		return FaultScenario{}, err
	}
	// The device mistrusts its mirror: both the legitimate operator and the
	// rogue entity are on the list, so provenance checks pass either way.
	trust := mobilecode.NewTrustList()
	entity, key := s.App.TrustedKey()
	if err := trust.Add(entity, key); err != nil {
		return FaultScenario{}, err
	}
	if err := trust.Add(rogue.Entity, rogue.PublicKey()); err != nil {
		return FaultScenario{}, err
	}
	rn, err := retriedNegotiator(addr, nil, 2, seed)
	if err != nil {
		return FaultScenario{}, err
	}
	pads := padSource(func(core.PADMeta) ([]byte, error) { return evil, nil })
	c, err := newFaultsClientWith(s, env, rn, fallback.Data, trust, pads)
	if err != nil {
		return FaultScenario{}, err
	}
	if _, err := c.Request("webapp", "page-000"); err != nil {
		return FaultScenario{}, fmt.Errorf("experiment: unverifiable-module scenario: %w", err)
	}
	st := c.Stats()
	if st.VerifierRejections < 1 {
		return FaultScenario{}, fmt.Errorf("experiment: verifier rejections = %d, want >= 1", st.VerifierRejections)
	}
	if st.Degradations != 1 {
		return FaultScenario{}, fmt.Errorf("experiment: degradations = %d, want 1", st.Degradations)
	}
	return FaultScenario{
		Name:    "unverifiable-module-degrade",
		Outcome: OutcomeDegraded,
		Detail:  fmt.Sprintf("verifier_rejections=%d degradations=%d", st.VerifierRejections, st.Degradations),
		Faults:  map[string]int64{"unverifiable-module": 1},
	}, nil
}

// buildUnverifiableModule packs a signed module whose decode program calls
// a host capability the sandbox manifest does not declare.
func buildUnverifiableModule(signer *mobilecode.Signer) ([]byte, error) {
	enc, err := mobilecode.Assemble("CALL identity\nHALT")
	if err != nil {
		return nil, err
	}
	dec, err := mobilecode.Assemble("CALL backdoor.fetch\nHALT")
	if err != nil {
		return nil, err
	}
	encBin, err := enc.MarshalBinary()
	if err != nil {
		return nil, err
	}
	decBin, err := dec.MarshalBinary()
	if err != nil {
		return nil, err
	}
	m, err := mobilecode.NewModule("pad-mirror", "1.0", mobilecode.Payload{
		Protocol: "Direct",
		Encode:   encBin,
		Decode:   decBin,
	}, signer)
	if err != nil {
		return nil, err
	}
	return m.Pack()
}

// Rows renders the scenario series for the bench harness.
func (r FaultsResult) Rows() []string {
	rows := []string{"scenario\toutcome\tdetail\tfaults"}
	for _, sc := range r.Scenarios {
		keys := make([]string, 0, len(sc.Faults))
		for k := range sc.Faults {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%d", k, sc.Faults[k]))
		}
		census := strings.Join(parts, ",")
		if census == "" {
			census = "-"
		}
		rows = append(rows, fmt.Sprintf("%s\t%s\t%s\t%s", sc.Name, sc.Outcome, sc.Detail, census))
	}
	return rows
}
