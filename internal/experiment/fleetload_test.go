package experiment

import (
	"reflect"
	"testing"
	"time"
)

// smokeLoadConfig is small enough for CI but saturates a single shard.
func smokeLoadConfig() FleetLoadConfig {
	cfg := DefaultFleetLoadConfig()
	cfg.Sessions = 20000
	cfg.Profiles = 256
	cfg.Horizon = 100 * time.Millisecond
	cfg.Shards = 4
	return cfg
}

func TestFleetLoadDeterministic(t *testing.T) {
	cfg := smokeLoadConfig()
	a, err := RunFleetLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleetLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The heap-delta field reflects the real allocator; everything else is
	// a pure function of (config, seed).
	a.AllocsPerSession, b.AllocsPerSession = 0, 0
	// Real search wall-nanos differ run to run; the simulated figures must not.
	a.Proxy.TotalSearchNanos, b.Proxy.TotalSearchNanos = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different results:\n a: %+v\n b: %+v", a, b)
	}
	if a.P50 <= 0 || a.P99 < a.P50 || a.P999 < a.P99 || a.Max < a.P999 {
		t.Fatalf("percentiles not monotone: p50=%d p99=%d p999=%d max=%d", a.P50, a.P99, a.P999, a.Max)
	}
}

func TestFleetLoadAccounting(t *testing.T) {
	cfg := smokeLoadConfig()
	res, err := RunFleetLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sessions, hits, searches, collapsed int64
	for _, s := range res.Shards {
		sessions += s.Sessions
		hits += s.Hits
		searches += s.Searches
		collapsed += s.Collapsed
	}
	if sessions != int64(cfg.Sessions) {
		t.Fatalf("shard sessions sum to %d, want %d", sessions, cfg.Sessions)
	}
	if hits+searches+collapsed != int64(cfg.Sessions) {
		t.Fatalf("outcomes %d+%d+%d don't partition %d sessions", hits, searches, collapsed, cfg.Sessions)
	}
	// One search leader per touched profile, and the real proxies agree
	// (RunFleetLoad already enforces the equality; pin the magnitude too).
	if searches > int64(cfg.Profiles) {
		t.Fatalf("%d searches for %d profiles with no repushes", searches, cfg.Profiles)
	}
	if res.Proxy.Searches != searches {
		t.Fatalf("real searches %d != simulated %d", res.Proxy.Searches, searches)
	}
	if res.HitRate < 0.9 {
		t.Fatalf("hit rate %.3f, want >0.9 (%d profiles, %d sessions)", res.HitRate, cfg.Profiles, cfg.Sessions)
	}
	if res.Fleet.InvalidationsApplied != int64(cfg.Shards) {
		t.Fatalf("initial push applied %d invalidations, want %d", res.Fleet.InvalidationsApplied, cfg.Shards)
	}
	if res.Makespan < cfg.Horizon {
		t.Fatalf("makespan %v shorter than the arrival horizon %v", res.Makespan, cfg.Horizon)
	}
}

// TestFleetLoadScaling pins the point of the tier: under demand that
// saturates one shard, widening to eight multiplies modeled throughput.
// The committed BENCH_fleet.json shows the >=6x figure at a million
// sessions; this CI-sized check asserts >=4x.
func TestFleetLoadScaling(t *testing.T) {
	cfg := smokeLoadConfig()
	cfg.Sessions = 40000
	run := func(shards int) FleetLoadResult {
		c := cfg
		c.Shards = shards
		res, err := RunFleetLoad(c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	eight := run(8)
	ratio := eight.SimSessionsPerSec / one.SimSessionsPerSec
	if ratio < 4 {
		t.Fatalf("1->8 shard scaling %.2fx (%.0f -> %.0f sessions/sec), want >=4x",
			ratio, one.SimSessionsPerSec, eight.SimSessionsPerSec)
	}
	if one.Shards[0].Utilization < 0.95 {
		t.Fatalf("single shard utilization %.3f; demand does not saturate it", one.Shards[0].Utilization)
	}
	if eight.P99 >= one.P99 {
		t.Fatalf("p99 did not improve with shards: 1-shard %d, 8-shard %d", one.P99, eight.P99)
	}
}

func TestFleetLoadArrivalCurves(t *testing.T) {
	base := smokeLoadConfig()
	results := map[string]FleetLoadResult{}
	for _, curve := range []string{ArrivalConstant, ArrivalDiurnal, ArrivalFlash} {
		cfg := base
		cfg.Arrival = curve
		res, err := RunFleetLoad(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[curve] = res
	}
	// A flash crowd packs ~half the arrivals into 5% of the horizon: its
	// queues (and thus tail latency) must dwarf the constant curve's.
	if f, c := results[ArrivalFlash], results[ArrivalConstant]; f.P999 <= c.P999 {
		t.Fatalf("flash p999 %d not above constant p999 %d", f.P999, c.P999)
	}
	peak := func(r FleetLoadResult) int {
		max := 0
		for _, s := range r.Shards {
			if s.PeakQueue > max {
				max = s.PeakQueue
			}
		}
		return max
	}
	if f, c := peak(results[ArrivalFlash]), peak(results[ArrivalConstant]); f <= c {
		t.Fatalf("flash peak queue %d not above constant %d", f, c)
	}
}

// TestFleetLoadRepush drives the coherence plane under load: each repush
// bumps the topology digest, fans out invalidation, and forces one fresh
// search per profile in the new epoch — visible in both the simulated and
// the real counters.
func TestFleetLoadRepush(t *testing.T) {
	cfg := smokeLoadConfig()
	cfg.Repushes = 2
	res, err := RunFleetLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var searches int64
	for _, s := range res.Shards {
		searches += s.Searches
	}
	if searches <= int64(cfg.Profiles) {
		t.Fatalf("%d searches; repushes did not force re-searching (%d profiles)", searches, cfg.Profiles)
	}
	if max := int64(cfg.Profiles) * int64(cfg.Repushes+1); searches > max {
		t.Fatalf("%d searches exceed %d epochs x %d profiles", searches, cfg.Repushes+1, cfg.Profiles)
	}
	want := int64(cfg.Shards) * int64(cfg.Repushes+1)
	if res.Fleet.InvalidationsApplied != want {
		t.Fatalf("invalidations applied %d, want %d (%d pushes x %d shards)",
			res.Fleet.InvalidationsApplied, want, cfg.Repushes+1, cfg.Shards)
	}
}

func TestFleetLoadReplication(t *testing.T) {
	cfg := smokeLoadConfig()
	cfg.Replicas = 2
	res, err := RunFleetLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var searches int64
	for _, s := range res.Shards {
		searches += s.Searches
	}
	if res.Fleet.ReplicatedFills != searches {
		t.Fatalf("replicated fills %d, want one per search (%d)", res.Fleet.ReplicatedFills, searches)
	}
}

func TestFleetLoadConfigValidation(t *testing.T) {
	bad := []func(*FleetLoadConfig){
		func(c *FleetLoadConfig) { c.Shards = 0 },
		func(c *FleetLoadConfig) { c.Sessions = 0 },
		func(c *FleetLoadConfig) { c.Arrival = "sawtooth" },
		func(c *FleetLoadConfig) { c.Repushes = -1 },
		func(c *FleetLoadConfig) { c.Sessions = 1 << 30 },
	}
	for i, mutate := range bad {
		cfg := smokeLoadConfig()
		mutate(&cfg)
		if _, err := RunFleetLoad(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
