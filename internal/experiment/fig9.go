package experiment

import (
	"fmt"
	"net"
	"sync"
	"time"

	"fractal/internal/client"
	"fractal/internal/netsim"
	"fractal/internal/proxy"
)

// Fig9aPoint is one x/y point of Figure 9(a): average negotiation time
// (INIT_REQ through PAD_META_REP) against the number of simultaneous
// clients served by one adaptation proxy.
type Fig9aPoint struct {
	Clients int
	Mean    time.Duration
	Max     time.Duration
}

// Fig9aResult is the negotiation-capacity series.
type Fig9aResult struct {
	Points []Fig9aPoint
}

// RunFig9a measures real concurrent negotiations over TCP against the
// setup's proxy. Client environments cycle through the paper's three
// stations, so the adaptation cache behaves as in the deployment (each
// configuration negotiates once, later clients hit the cache).
func RunFig9a(s *Setup, clientCounts []int) (Fig9aResult, error) {
	if len(clientCounts) == 0 {
		return Fig9aResult{}, fmt.Errorf("experiment: fig9a needs client counts")
	}
	srv, err := proxy.NewServer(s.Proxy, 64, func(string, ...interface{}) {})
	if err != nil {
		return Fig9aResult{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Fig9aResult{}, fmt.Errorf("experiment: fig9a listen: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		_ = srv.Close()
		<-done
	}()
	neg := &client.TCPNegotiator{Addr: ln.Addr().String()}
	stations := netsim.Stations()

	var out Fig9aResult
	for _, n := range clientCounts {
		if n < 1 {
			return Fig9aResult{}, fmt.Errorf("experiment: fig9a client count %d", n)
		}
		durs := make([]time.Duration, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				env := EnvFor(stations[i%len(stations)])
				//fractal:allow simtime — fig9a measures real TCP negotiation latency
				start := time.Now()
				_, err := neg.Negotiate(s.App.AppID(), env, s.Config.SessionRequests)
				durs[i] = time.Since(start)
				errs[i] = err
			}(i)
		}
		wg.Wait()
		var sum, max time.Duration
		for i := range durs {
			if errs[i] != nil {
				return Fig9aResult{}, fmt.Errorf("experiment: fig9a client %d: %w", i, errs[i])
			}
			sum += durs[i]
			if durs[i] > max {
				max = durs[i]
			}
		}
		out.Points = append(out.Points, Fig9aPoint{
			Clients: n,
			Mean:    sum / time.Duration(n),
			Max:     max,
		})
	}
	return out, nil
}

// Rows renders the series for the bench harness.
func (r Fig9aResult) Rows() []string {
	rows := []string{"clients\tmean_negotiation\tmax_negotiation"}
	for _, p := range r.Points {
		rows = append(rows, fmt.Sprintf("%d\t%v\t%v", p.Clients, p.Mean.Round(time.Microsecond), p.Max.Round(time.Microsecond)))
	}
	return rows
}

// Fig9bPoint is one x/y pair of points of Figure 9(b): average PAD
// retrieval time under N simultaneous downloads, centralized PAD server
// versus CDN edgeservers.
type Fig9bPoint struct {
	Clients     int
	Centralized time.Duration
	Distributed time.Duration
}

// Fig9bResult is the retrieval-scaling comparison.
type Fig9bResult struct {
	PADBytes int64
	Points   []Fig9bPoint
}

// RunFig9b evaluates the deterministic contention model: N clients
// simultaneously download the average-size PAD module either from the
// single centralized server (uplink shared N ways) or from the CDN, where
// the N clients spread across the edges. Clients connect over WLAN as a
// representative access link.
func RunFig9b(s *Setup, clientCounts []int) (Fig9bResult, error) {
	if len(clientCounts) == 0 {
		return Fig9bResult{}, fmt.Errorf("experiment: fig9b needs client counts")
	}
	// Average PAD size across the deployed module set.
	var total int64
	for _, p := range s.AppMeta.PADs {
		total += p.Size
	}
	avg := total / int64(len(s.AppMeta.PADs))
	// Publish a synthetic object of exactly the average size so both
	// sides serve identical bytes.
	blob := make([]byte, avg)
	if err := s.CDN.Origin().Publish("/pads/_avg", blob); err != nil {
		return Fig9bResult{}, err
	}
	edges := len(s.CDN.Edges())
	// Warm every edge cache so the steady-state (hit) path is measured,
	// as a publisher does after uploading modules.
	if _, err := s.CDN.Prefetch("/pads/_avg"); err != nil {
		return Fig9bResult{}, err
	}
	out := Fig9bResult{PADBytes: avg}
	for _, n := range clientCounts {
		if n < 1 {
			return Fig9bResult{}, fmt.Errorf("experiment: fig9b client count %d", n)
		}
		cen, err := s.CDN.RetrieveCentralized("/pads/_avg", netsim.WLAN, n)
		if err != nil {
			return Fig9bResult{}, err
		}
		perEdge := (n + edges - 1) / edges
		dist, err := s.CDN.Retrieve("region-0", "/pads/_avg", netsim.WLAN, perEdge)
		if err != nil {
			return Fig9bResult{}, err
		}
		out.Points = append(out.Points, Fig9bPoint{
			Clients:     n,
			Centralized: cen.Time,
			Distributed: dist.Time,
		})
	}
	return out, nil
}

// Rows renders the series for the bench harness.
func (r Fig9bResult) Rows() []string {
	rows := []string{fmt.Sprintf("clients\tcentralized\tdistributed\t(PAD %d bytes)", r.PADBytes)}
	for _, p := range r.Points {
		rows = append(rows, fmt.Sprintf("%d\t%v\t%v", p.Clients,
			p.Centralized.Round(time.Millisecond), p.Distributed.Round(time.Millisecond)))
	}
	return rows
}
