package experiment

import (
	"fmt"
	"time"

	"fractal/internal/core"
	"fractal/internal/netsim"
	"fractal/internal/workload"
)

// CapacityRow reports the application server's sustainable request rate
// under one adaptation scenario: the paper's contribution list claims the
// framework "greatly improves both the client side and server side
// performance, e.g., the system capacity". Server capacity is bounded by
// the per-request server-side computing of the protocol each client
// population uses.
type CapacityRow struct {
	Scenario        Scenario
	ServerSecPerReq float64
	MaxReqPerSec    float64
}

// CapacityResult is the scenario comparison driven by a Zipf request
// trace over the paper's three client populations in equal shares.
type CapacityResult struct {
	TraceRequests int
	Rows          []CapacityRow
}

// RunCapacity replays a request trace under each scenario and derives the
// server-side computing demand per request, hence the requests/second one
// application server sustains when CPU-bound.
func RunCapacity(s *Setup, trace []workload.Request) (CapacityResult, error) {
	if len(trace) == 0 {
		return CapacityResult{}, fmt.Errorf("experiment: capacity needs a trace")
	}
	stations := netsim.Stations()
	model := s.Model
	out := CapacityResult{TraceRequests: len(trace)}
	for _, sc := range []Scenario{ScenarioNone, ScenarioStatic, ScenarioAdaptive} {
		var busy time.Duration
		for _, req := range trace {
			st := stations[req.Client%len(stations)]
			env := EnvFor(st)
			proto, err := s.protocolFor(sc, env, model.IncludeServerComp)
			if err != nil {
				return CapacityResult{}, fmt.Errorf("experiment: capacity %s: %w", sc, err)
			}
			pad, err := s.PADByProtocol(proto)
			if err != nil {
				return CapacityResult{}, err
			}
			// Server compute scaled from the reference CPU to the
			// deployment server.
			busy += time.Duration(float64(pad.Overhead.ServerCompStd) *
				core.StdCPUMHz / model.ServerCPUMHz)
		}
		perReq := busy.Seconds() / float64(len(trace))
		row := CapacityRow{Scenario: sc, ServerSecPerReq: perReq}
		if perReq > 0 {
			row.MaxReqPerSec = 1 / perReq
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render renders the comparison.
func (r CapacityResult) Render() []string {
	rows := []string{fmt.Sprintf("scenario\tserver_cpu_per_request\tmax_req_per_sec\t(trace %d requests)", r.TraceRequests)}
	for _, row := range r.Rows {
		rate := "unbounded (no server computing)"
		if row.MaxReqPerSec > 0 {
			rate = fmt.Sprintf("%.1f", row.MaxReqPerSec)
		}
		rows = append(rows, fmt.Sprintf("%s\t%s\t%s", row.Scenario, secs(row.ServerSecPerReq), rate))
	}
	return rows
}
