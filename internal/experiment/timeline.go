package experiment

import (
	"fmt"
	"time"

	"fractal/internal/core"
	"fractal/internal/netsim"
)

// TimelinePhase is one stage of a client's first contact with a Fractal
// application, following Figure 4 top to bottom.
type TimelinePhase struct {
	Name  string
	Start time.Duration
	End   time.Duration
}

// Timeline is the simulated end-to-end schedule of one client session:
// negotiation round trips, PAD retrieval, deployment, and the first
// adapted application request, on the discrete-event virtual clock.
type Timeline struct {
	Station string
	PADID   string
	Phases  []TimelinePhase
	Total   time.Duration
}

// timelineParams are the latency/compute constants of the simulated
// control plane (negotiation messages are small; one RTT per exchange).
type timelineParams struct {
	negotiationCPU time.Duration // proxy-side search + cache work
	deployCPUStd   time.Duration // client-side verify+deploy on the reference CPU
}

var defaultTimelineParams = timelineParams{
	negotiationCPU: 200 * time.Microsecond,
	deployCPUStd:   12 * time.Millisecond,
}

// RunTimeline simulates the Figure 4 message sequence for one station on
// the virtual clock: INIT_REQ/REP + CLI_META exchanges (two proxy round
// trips), PAD_META computation, PAD download from the closest edge,
// security checks and deployment, then APP_REQ/REP with the negotiated
// protocol's traffic and computing overheads from Equation 3.
func RunTimeline(s *Setup, station netsim.Station) (Timeline, error) {
	env := EnvFor(station)
	res, err := core.FindPath(mustPAT(s), s.Model, env)
	if err != nil {
		return Timeline{}, fmt.Errorf("experiment: timeline: %w", err)
	}
	pad := res.PADs[len(res.PADs)-1]
	breakdown := res.Breakdown[res.NodeIDs[len(res.NodeIDs)-1]]

	clock := netsim.NewVirtualClock()
	tl := Timeline{Station: station.Device.Name, PADID: pad.ID}
	link := station.Link

	phase := func(name string, d time.Duration) {
		start := clock.Now()
		clock.Schedule(d, func() {})
		clock.Run()
		tl.Phases = append(tl.Phases, TimelinePhase{Name: name, Start: start, End: clock.Now()})
	}

	// Negotiation: INIT_REQ -> INIT_REP + CLI_META_REQ (one round trip),
	// CLI_META_REP -> PAD_META_REP (one round trip + proxy computation).
	phase("negotiate:init", link.RTT)
	phase("negotiate:metadata", link.RTT+defaultTimelineParams.negotiationCPU)

	// PAD retrieval from the closest edge (uncontended).
	ret, err := s.CDN.Retrieve("region-0", pad.URL, link, 1)
	if err != nil {
		return Timeline{}, fmt.Errorf("experiment: timeline retrieval: %w", err)
	}
	phase("pad:download", ret.Time)

	// Security checks + sandbox deployment, scaled to the device.
	deploy, err := station.Device.ScaleCompute(defaultTimelineParams.deployCPUStd)
	if err != nil {
		return Timeline{}, err
	}
	phase("pad:deploy", deploy)

	// First application request: server compute, downstream transfer,
	// client compute (Equation 3 terms for one request).
	appTime, err := netsim.Seconds(breakdown.ServerComp + breakdown.Traffic + breakdown.ClientComp)
	if err != nil {
		return Timeline{}, err
	}
	phase("app:first-request", link.RTT+appTime)

	tl.Total = clock.Now()
	return tl, nil
}

// Render renders the timeline.
func (t Timeline) Render() []string {
	rows := []string{fmt.Sprintf("%s first contact via %s (total %v)", t.Station, t.PADID, t.Total.Round(time.Microsecond))}
	for _, p := range t.Phases {
		rows = append(rows, fmt.Sprintf("  %-22s %12v -> %12v (%v)",
			p.Name, p.Start.Round(time.Microsecond), p.End.Round(time.Microsecond),
			(p.End-p.Start).Round(time.Microsecond)))
	}
	return rows
}
