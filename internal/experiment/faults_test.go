package experiment

import (
	"reflect"
	"strings"
	"testing"
)

func faultsSetup(t *testing.T) *Setup {
	t.Helper()
	cfg := DefaultSetupConfig()
	cfg.Pages = 6
	cfg.SamplePages = 3
	cfg.Edges = 3
	s, err := NewSetup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunFaultsContract(t *testing.T) {
	s := faultsSetup(t)
	r, err := RunFaults(s, 41)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"clean":                       OutcomeCompleted,
		"refuse-then-retry":           OutcomeCompleted,
		"stall-read":                  OutcomeFailedFast,
		"corrupt-then-retry":          OutcomeCompleted,
		"truncate-then-redial":        OutcomeCompleted,
		"proxy-down-degrade":          OutcomeDegraded,
		"unverifiable-module-degrade": OutcomeDegraded,
	}
	if len(r.Scenarios) != len(want) {
		t.Fatalf("got %d scenarios, want %d", len(r.Scenarios), len(want))
	}
	for _, sc := range r.Scenarios {
		w, ok := want[sc.Name]
		if !ok {
			t.Errorf("unexpected scenario %q", sc.Name)
			continue
		}
		if sc.Outcome != w {
			t.Errorf("scenario %s outcome = %s, want %s", sc.Name, sc.Outcome, w)
		}
	}
	rows := r.Rows()
	if len(rows) != len(want)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(want)+1)
	}
	if !strings.HasPrefix(rows[0], "scenario\t") {
		t.Fatalf("header row = %q", rows[0])
	}
	// Every faulted scenario reports its fault census.
	for _, row := range rows[1:] {
		if strings.HasSuffix(row, "\t") {
			t.Errorf("row missing census: %q", row)
		}
	}
}

// TestRunFaultsReproducible: same setup seeds, same fault seed — the
// rendered rows must be identical across runs.
func TestRunFaultsReproducible(t *testing.T) {
	run := func() []string {
		s := faultsSetup(t)
		r, err := RunFaults(s, 41)
		if err != nil {
			t.Fatal(err)
		}
		return r.Rows()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault rows differ across identical runs:\n%v\nvs\n%v", a, b)
	}
}
