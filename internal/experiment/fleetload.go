package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"fractal/internal/core"
	"fractal/internal/fleet"
	"fractal/internal/netsim"
	"fractal/internal/proxy"
)

// The fleet load harness: a discrete-event simulation that drives a real
// fleet.Fleet with up to millions of client sessions under simulated
// time. Time never comes from the wall clock — arrivals, queueing, and
// service all advance on a netsim.EventQueue — so every latency figure
// (p50/p99/p999, makespan, simulated sessions/sec) is a pure function of
// the configuration and seed, reproducible bit-for-bit on any machine.
// The wall clock only matters to fractal-bench, which times the drive
// loop around this function to report real sessions/sec.
//
// Each session is an arrival event; its shard is the rendezvous owner of
// its profile's canonical cache key. A shard has a fixed worker pool:
// free worker → service starts immediately, else the session waits FIFO.
// Service time depends on how the negotiation is satisfied, classified in
// simulated time (the sequential drive loop cannot exhibit real
// concurrency): first session of a profile per topology epoch is the
// search leader; sessions starting while the leader is in flight collapse
// onto it and finish when it does; everyone else hits the cache. Every
// service start also performs the real negotiation against the fleet, so
// the simulation's classification is checkable against the proxies' own
// counters: simulated searches == real searches, exactly.

// Arrival-curve names.
const (
	ArrivalConstant = "constant"
	ArrivalDiurnal  = "diurnal"
	ArrivalFlash    = "flash"
)

// FleetLoadConfig parameterizes one load run.
type FleetLoadConfig struct {
	Shards   int    // proxy shards (>= 1)
	Workers  int    // simulated negotiation workers per shard
	Sessions int    // client sessions to drive
	Profiles int    // distinct client profiles (device x network scalars)
	Arrival  string // constant | diurnal | flash
	Seed     int64  // drives profiles, assignment, and arrival times

	// Horizon is the simulated span over which arrivals land. Shorter
	// horizons push the tier into saturation; the makespan extends past
	// the horizon until the queues drain.
	Horizon time.Duration

	// Repushes is the number of topology re-pushes injected at evenly
	// spaced simulated times: each bumps every PAD's version, fans out the
	// digest-keyed invalidation, and forces the next session per profile
	// to search again.
	Repushes int

	Replicas      int // warm-replication factor (fleet.Config.Replicas)
	CacheCapacity int // per-shard cache entries; 0 = fit all profiles

	// Simulated service times by outcome.
	SearchCost   time.Duration // path search (cold key) service time
	HitCost      time.Duration // adaptation-cache hit service time
	CollapseCost time.Duration // joining an in-flight search, after the leader finishes

	SessionRequests int // requests per session (the paper's 75)
}

// DefaultFleetLoadConfig is the benchmark shape: a million sessions over
// eight shards in a two-second arrival horizon — enough demand to
// saturate a single shard ~7x over.
func DefaultFleetLoadConfig() FleetLoadConfig {
	return FleetLoadConfig{
		Shards:          8,
		Workers:         4,
		Sessions:        1_000_000,
		Profiles:        4096,
		Arrival:         ArrivalConstant,
		Seed:            2005,
		Horizon:         2 * time.Second,
		Repushes:        0,
		Replicas:        1,
		SearchCost:      2 * time.Millisecond,
		HitCost:         50 * time.Microsecond,
		CollapseCost:    10 * time.Microsecond,
		SessionRequests: 75,
	}
}

// normalized fills defaults and validates.
func (c FleetLoadConfig) normalized() (FleetLoadConfig, error) {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Profiles == 0 {
		c.Profiles = 4096
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalConstant
	}
	if c.Horizon == 0 {
		c.Horizon = 2 * time.Second
	}
	if c.SearchCost == 0 {
		c.SearchCost = 2 * time.Millisecond
	}
	if c.HitCost == 0 {
		c.HitCost = 50 * time.Microsecond
	}
	if c.CollapseCost == 0 {
		c.CollapseCost = 10 * time.Microsecond
	}
	if c.SessionRequests == 0 {
		c.SessionRequests = 75
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.CacheCapacity == 0 {
		// Hold every profile with headroom: eviction would make the real
		// proxies search more often than the simulated classification,
		// breaking the searches-match invariant the harness asserts. The
		// adaptation cache splits capacity across up to 16 internal LRU
		// shards, so 4x leaves room for hash imbalance and replication.
		c.CacheCapacity = 4 * c.Profiles
	}
	if c.Shards < 1 || c.Workers < 1 || c.Sessions < 1 || c.Profiles < 1 || c.Repushes < 0 {
		return c, fmt.Errorf("experiment: fleet load counts must be positive: %+v", c)
	}
	if max := int(1) << 29; c.Sessions > max {
		return c, fmt.Errorf("experiment: at most %d sessions per run, got %d", max, c.Sessions)
	}
	switch c.Arrival {
	case ArrivalConstant, ArrivalDiurnal, ArrivalFlash:
	default:
		return c, fmt.Errorf("experiment: unknown arrival curve %q", c.Arrival)
	}
	return c, nil
}

// ShardLoad is one shard's slice of the run.
type ShardLoad struct {
	Name        string
	Sessions    int64
	Hits        int64
	Searches    int64
	Collapsed   int64
	BusyNanos   int64   // summed service time
	PeakQueue   int     // deepest FIFO backlog observed
	Utilization float64 // BusyNanos / (Workers x makespan)
	P50         int64   // per-shard session latency percentiles, simulated ns
	P99         int64
	P999        int64
}

// FleetLoadResult is the run's measurement set. All latencies are
// simulated nanoseconds from a session's arrival to its completion
// (queueing + service).
type FleetLoadResult struct {
	Config   FleetLoadConfig
	Makespan time.Duration // arrival of first session to completion of last

	// Global latency distribution (merged across shards).
	P50, P99, P999 int64
	Mean, Max      int64

	// SimSessionsPerSec is Sessions divided by the simulated makespan:
	// the tier's modeled capacity, the figure the 1->8 shard scaling gate
	// reads. Deterministic, unlike wall-clock throughput.
	SimSessionsPerSec float64

	HitRate      float64 // simulated cache-hit fraction
	CollapseRate float64 // simulated collapsed-search fraction

	// AllocsPerSession is real allocations in the drive loop divided by
	// sessions (runtime.ReadMemStats delta): the bench gate pins it
	// constant across shard counts.
	AllocsPerSession float64

	Shards []ShardLoad
	Fleet  fleet.Stats // coherence counters (invalidations, replication)
	Proxy  proxy.Stats // real aggregated negotiation counters
}

// loadApp is the case-study topology (Figure 8) the load fleet serves:
// three PADs whose costs split the profile space across different
// winners. version stamps each PAD so repushes change the topology
// digest.
func loadApp(version string) core.AppMeta {
	pad := func(id, proto string, clientStd time.Duration, traffic int64) core.PADMeta {
		return core.PADMeta{
			ID: id, Version: version, Protocol: proto, Size: 4096,
			Overhead: core.PADOverhead{ClientCompStd: clientStd, TrafficBytes: traffic},
		}
	}
	return core.AppMeta{
		AppID: "webapp",
		PADs: []core.PADMeta{
			pad("pad-direct", "direct", 0, 140000),
			pad("pad-gzip", "gzip", 40*time.Millisecond, 50000),
			pad("pad-bitmap", "bitmap", 85*time.Millisecond, 30000),
		},
	}
}

// loadProfiles generates the distinct client profiles: a seeded mix of
// the case study's two device classes and three networks, with scalar
// CPU/bandwidth spreads that make every profile's canonical cache key
// unique. Returns the environments, rendered keys, and each profile's
// rendezvous shard.
func loadProfiles(cfg FleetLoadConfig, router *fleet.Router) ([]core.Env, []string, []int32) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	envs := make([]core.Env, cfg.Profiles)
	keys := make([]string, cfg.Profiles)
	shards := make([]int32, cfg.Profiles)
	nets := []struct {
		name string
		bw   float64
	}{
		{core.NetLAN, 100000},
		{core.NetWLAN, 11000},
		{core.NetBluetooth, 723},
	}
	for i := range envs {
		nw := nets[rng.Intn(len(nets))]
		var dev core.DevMeta
		if rng.Intn(2) == 0 {
			dev = core.DevMeta{OSType: core.OSFedora, CPUType: core.CPUTypeP4, CPUMHz: 2000, MemMB: 512}
		} else {
			dev = core.DevMeta{OSType: core.OSWinCE, CPUType: core.CPUTypePXA255, CPUMHz: 400, MemMB: 64}
		}
		// Injective scalar spread: (i/64, i%64) perturb CPU and bandwidth,
		// so no two profiles share a cache key even within a class.
		dev.CPUMHz += float64(i >> 6)
		env := core.Env{Dev: dev, Ntwk: core.NtwkMeta{NetworkType: nw.name, BandwidthKbps: nw.bw + float64(i&63)}}
		envs[i] = env
		keys[i] = fleet.Key("webapp", "", env)
		shards[i] = int32(router.Shard(keys[i]))
	}
	return envs, keys, shards
}

// arrivalSlots is the resolution of the integer arrival-curve weight
// table. All curves are integer-weighted so sampling is exact and
// portable: no float accumulation, no math.Sin.
const arrivalSlots = 1024

// arrivalWeights renders the named curve as per-slot weights across the
// horizon.
func arrivalWeights(curve string) [arrivalSlots]int64 {
	var w [arrivalSlots]int64
	switch curve {
	case ArrivalDiurnal:
		// Triangle wave: quiet edges, a mid-horizon peak ~9x the trough.
		for i := range w {
			d := i
			if d > arrivalSlots-1-i {
				d = arrivalSlots - 1 - i
			}
			w[i] = int64(64 + d)
		}
	case ArrivalFlash:
		// Flat background with a flash crowd in [45%, 50%) of the horizon:
		// those 5% of slots carry ~46% of the arrivals.
		for i := range w {
			w[i] = 8
			if i >= arrivalSlots*45/100 && i < arrivalSlots*50/100 {
				w[i] = 128
			}
		}
	default: // constant
		for i := range w {
			w[i] = 1
		}
	}
	return w
}

// sampleArrivals draws each session's arrival offset in [0, horizon) by
// integer inverse-CDF over the slot weights.
func sampleArrivals(rng *rand.Rand, n int, horizon time.Duration, w [arrivalSlots]int64) []time.Duration {
	var cum [arrivalSlots]int64
	var total int64
	for i, wi := range w {
		total += wi
		cum[i] = total
	}
	slotWidth := int64(horizon) / arrivalSlots
	if slotWidth < 1 {
		slotWidth = 1
	}
	out := make([]time.Duration, n)
	for s := range out {
		r := rng.Int63n(total)
		// Binary search the cumulative table for the first slot with cum > r.
		lo, hi := 0, arrivalSlots-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] > r {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		out[s] = time.Duration(int64(lo)*slotWidth + rng.Int63n(slotWidth))
	}
	return out
}

// shardState is one simulated shard's scheduler: a worker pool and a FIFO
// backlog, plus its slice of the measurement.
type shardState struct {
	busy      int
	queue     []int32 // waiting session ids; head indexes the front
	head      int
	peakQueue int

	hits, searches, collapsed int64
	busyNanos                 int64
	hist                      *fleet.Hist
}

func (s *shardState) pushWait(id int32) {
	s.queue = append(s.queue, id)
	if depth := len(s.queue) - s.head; depth > s.peakQueue {
		s.peakQueue = depth
	}
}

func (s *shardState) popWait() (int32, bool) {
	if s.head == len(s.queue) {
		return 0, false
	}
	id := s.queue[s.head]
	s.head++
	if s.head > 4096 && s.head*2 > len(s.queue) {
		s.queue = append(s.queue[:0], s.queue[s.head:]...)
		s.head = 0
	}
	return id, true
}

// RunFleetLoad drives one configured load run and returns its
// measurements. Two calls with equal configurations return equal results
// (AllocsPerSession aside, which reflects the real heap).
func RunFleetLoad(cfg FleetLoadConfig) (FleetLoadResult, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return FleetLoadResult{}, err
	}
	ms, err := core.CaseStudyMatrices()
	if err != nil {
		return FleetLoadResult{}, err
	}
	model := core.OverheadModel{
		Matrices:          ms,
		Rho:               netsim.DefaultRho,
		ServerCPUMHz:      netsim.ServerDevice.CPUMHz,
		IncludeServerComp: true,
		SessionRequests:   cfg.SessionRequests,
	}
	fl, err := fleet.New(fleet.Config{
		Shards:        cfg.Shards,
		Model:         model,
		CacheCapacity: cfg.CacheCapacity,
		Replicas:      cfg.Replicas,
	})
	if err != nil {
		return FleetLoadResult{}, err
	}
	if err := fl.PushAppMeta(loadApp("1.0")); err != nil {
		return FleetLoadResult{}, err
	}

	envs, keys, profShard := loadProfiles(cfg, fl.Router())

	// Struct-of-arrays session table: parallel slices, no per-session
	// struct, no pointers for the GC to chase.
	n := cfg.Sessions
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	arrival := sampleArrivals(rng, n, cfg.Horizon, arrivalWeights(cfg.Arrival))
	profile := make([]int32, n)
	for i := range profile {
		profile[i] = int32(rng.Intn(cfg.Profiles))
	}

	// Event ids: [0,n) arrivals, [n,2n) completions, [2n,2n+R) repushes.
	q := netsim.NewEventQueue(n + cfg.Repushes + 64)
	for i := 0; i < n; i++ {
		q.Push(arrival[i], int32(i))
	}
	for k := 0; k < cfg.Repushes; k++ {
		at := cfg.Horizon * time.Duration(k+1) / time.Duration(cfg.Repushes+1)
		q.Push(at, int32(2*n+k))
	}

	shards := make([]shardState, cfg.Shards)
	for i := range shards {
		shards[i].hist = fleet.NewHist()
	}
	seen := make([]bool, cfg.Profiles)      // profile served this epoch
	leaderOf := make([]int32, cfg.Profiles) // in-flight search leader, -1 = none
	leaderDone := make([]int64, cfg.Profiles)
	for i := range leaderOf {
		leaderOf[i] = -1
	}
	epoch := 0

	var driveErr error
	// startService classifies the session in simulated time, performs the
	// real negotiation, and schedules its completion.
	startService := func(sid int32, now time.Duration) {
		p := profile[sid]
		sh := &shards[profShard[p]]
		sh.busy++
		var cost time.Duration
		switch {
		case seen[p]:
			sh.hits++
			cost = cfg.HitCost
		case leaderOf[p] >= 0:
			sh.collapsed++
			cost = time.Duration(leaderDone[p]) - now + cfg.CollapseCost
		default:
			sh.searches++
			cost = cfg.SearchCost
			leaderOf[p] = sid
			leaderDone[p] = int64(now + cost)
		}
		if driveErr == nil {
			if _, _, _, err := fl.NegotiateKeyed(keys[p], "", "webapp", envs[p], cfg.SessionRequests); err != nil {
				driveErr = fmt.Errorf("experiment: fleet load session %d (profile %d): %w", sid, p, err)
			}
		}
		sh.busyNanos += int64(cost)
		q.Push(now+cost, int32(int(sid)+n))
	}

	var memBefore, memAfter runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	var makespan time.Duration
	var completed int64
	for {
		now, id, ok := q.Pop()
		if !ok {
			break
		}
		switch {
		case int(id) < n: // arrival
			sh := &shards[profShard[profile[id]]]
			if sh.busy < cfg.Workers {
				startService(id, now)
			} else {
				sh.pushWait(id)
			}
		case int(id) < 2*n: // completion
			sid := id - int32(n)
			p := profile[sid]
			sh := &shards[profShard[p]]
			sh.hist.Record(int64(now - arrival[sid]))
			completed++
			if now > makespan {
				makespan = now
			}
			if leaderOf[p] == sid {
				leaderOf[p] = -1
				seen[p] = true
			}
			sh.busy--
			if next, ok := sh.popWait(); ok {
				startService(next, now)
			}
		default: // topology repush: new epoch, caches invalid everywhere
			epoch++
			if err := fl.PushAppMeta(loadApp(fmt.Sprintf("1.%d", epoch))); err != nil {
				return FleetLoadResult{}, err
			}
			for i := range seen {
				seen[i] = false
				leaderOf[i] = -1
			}
		}
	}
	runtime.ReadMemStats(&memAfter)
	if driveErr != nil {
		return FleetLoadResult{}, driveErr
	}
	if completed != int64(n) {
		return FleetLoadResult{}, fmt.Errorf("experiment: %d of %d sessions completed", completed, n)
	}

	global := fleet.NewHist()
	res := FleetLoadResult{
		Config:   cfg,
		Makespan: makespan,
		Shards:   make([]ShardLoad, cfg.Shards),
		Fleet:    fl.Stats(),
		Proxy:    fl.AggregateStats(),
	}
	var hits, searches, collapsed int64
	for i := range shards {
		sh := &shards[i]
		global.Merge(sh.hist)
		hits += sh.hits
		searches += sh.searches
		collapsed += sh.collapsed
		util := 0.0
		if makespan > 0 {
			util = float64(sh.busyNanos) / (float64(cfg.Workers) * float64(makespan))
		}
		res.Shards[i] = ShardLoad{
			Name:        fl.Router().Name(i),
			Sessions:    sh.hist.Count(),
			Hits:        sh.hits,
			Searches:    sh.searches,
			Collapsed:   sh.collapsed,
			BusyNanos:   sh.busyNanos,
			PeakQueue:   sh.peakQueue,
			Utilization: util,
			P50:         sh.hist.Quantile(0.50),
			P99:         sh.hist.Quantile(0.99),
			P999:        sh.hist.Quantile(0.999),
		}
	}
	res.P50 = global.Quantile(0.50)
	res.P99 = global.Quantile(0.99)
	res.P999 = global.Quantile(0.999)
	res.Mean = global.Mean()
	res.Max = global.Max()
	if makespan > 0 {
		res.SimSessionsPerSec = float64(n) / makespan.Seconds()
	}
	res.HitRate = float64(hits) / float64(n)
	res.CollapseRate = float64(collapsed) / float64(n)
	res.AllocsPerSession = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(n)

	// Cross-check the simulation against the real tier: every simulated
	// search ran a real one, and every session really negotiated.
	if res.Proxy.Searches != searches {
		return FleetLoadResult{}, fmt.Errorf("experiment: simulated %d searches but proxies ran %d", searches, res.Proxy.Searches)
	}
	if res.Proxy.Negotiations != int64(n) {
		return FleetLoadResult{}, fmt.Errorf("experiment: %d sessions but %d real negotiations", n, res.Proxy.Negotiations)
	}
	return res, nil
}

// Rows renders the run for the bench harness: a global summary row and
// one row per shard.
func (r FleetLoadResult) Rows() []string {
	rows := []string{
		"scope\tsessions\tp50_ns\tp99_ns\tp999_ns\tmax_ns\tsim_sessions_per_sec\thit_rate\tcollapse_rate\tutilization\tpeak_queue",
		fmt.Sprintf("fleet/%d\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.4f\t%.4f\t-\t-",
			r.Config.Shards, r.Config.Sessions, r.P50, r.P99, r.P999, r.Max,
			r.SimSessionsPerSec, r.HitRate, r.CollapseRate),
	}
	for _, s := range r.Shards {
		rows = append(rows, fmt.Sprintf("%s\t%d\t%d\t%d\t%d\t-\t-\t-\t-\t%.3f\t%d",
			s.Name, s.Sessions, s.P50, s.P99, s.P999, s.Utilization, s.PeakQueue))
	}
	return rows
}
