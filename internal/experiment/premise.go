package experiment

import (
	"fmt"

	"fractal/internal/codec"
	"fractal/internal/core"
	"fractal/internal/netsim"
	"fractal/internal/workload"
)

// DocumentClass is one content mix of the premise study: the paper's
// motivation rests on the authors' prior evaluation [30] that "no single
// algorithm outperformed others in all cases. Different approaches have
// different performance in terms of different network types, document
// types, and device configurations."
type DocumentClass struct {
	Name     string
	Config   workload.Config
	Mutation workload.Mutation
}

// PremiseClasses returns document mixes spanning the axes of [30]:
// text-heavy markup, the default medical image mix, incompressible
// (pre-compressed) imagery, and a mostly-static archive.
func PremiseClasses(seed int64) []DocumentClass {
	return []DocumentClass{
		{
			Name:     "text-heavy",
			Config:   workload.Config{Pages: 4, TextBytes: 96 * 1024, Images: 0, ImageBytes: 0, Seed: seed},
			Mutation: workload.Mutation{TextEditFrac: 0.05, TextInsertFrac: 0.01, Seed: seed + 1},
		},
		{
			Name:     "medical-images",
			Config:   workload.Config{Pages: 4, TextBytes: 5 * 1024, Images: 4, ImageBytes: 32 * 1024, Seed: seed},
			Mutation: workload.DefaultMutation(seed + 1),
		},
		{
			Name: "precompressed",
			Config: workload.Config{
				Pages: 4, TextBytes: 1024, Images: 4, ImageBytes: 32 * 1024,
				Seed: seed, NoiseEvery: 1,
			},
			Mutation: workload.Mutation{ImageRegionFrac: 0.5, ImageFreshFrac: 0.9, Seed: seed + 1},
		},
		{
			Name:     "static-archive",
			Config:   workload.Config{Pages: 4, TextBytes: 5 * 1024, Images: 4, ImageBytes: 32 * 1024, Seed: seed},
			Mutation: workload.Mutation{ImageRegionFrac: 0.01, Seed: seed + 1},
		},
	}
}

// PremiseCell is one (document class, station) outcome.
type PremiseCell struct {
	Class    string
	Station  string
	Winner   string
	TotalSec float64
}

// PremiseResult is the winner matrix plus the measured per-class bytes.
type PremiseResult struct {
	Cells []PremiseCell
	// Bytes[class][protocol] = measured per-request wire bytes.
	Bytes map[string]map[string]int64
}

// RunPremise measures every protocol on every document class and evaluates
// Equation 3 per station, reproducing the heterogeneity argument: the
// winner set must not collapse to a single protocol.
func RunPremise(seed int64) (PremiseResult, error) {
	ms, err := core.CaseStudyMatrices()
	if err != nil {
		return PremiseResult{}, err
	}
	model := core.OverheadModel{
		Matrices:          ms,
		Rho:               netsim.DefaultRho,
		ServerCPUMHz:      netsim.ServerDevice.CPUMHz,
		IncludeServerComp: true,
		SessionRequests:   75,
	}
	protos := []string{codec.NameDirect, codec.NameGzip, codec.NameBitmap, codec.NameVaryBlock, codec.NameRsync}
	out := PremiseResult{Bytes: map[string]map[string]int64{}}
	for _, class := range PremiseClasses(seed) {
		v1, err := workload.Generate(class.Config)
		if err != nil {
			return PremiseResult{}, fmt.Errorf("experiment: premise %s: %w", class.Name, err)
		}
		v2, err := workload.MutateCorpus(v1, class.Mutation)
		if err != nil {
			return PremiseResult{}, fmt.Errorf("experiment: premise %s: %w", class.Name, err)
		}
		out.Bytes[class.Name] = map[string]int64{}
		metas := map[string]core.PADMeta{}
		for _, proto := range protos {
			impl, err := codec.New(proto)
			if err != nil {
				return PremiseResult{}, err
			}
			var traffic, upstream, content int64
			for i := range v1.Pages {
				old := v1.Pages[i].Bytes()
				cur := v2.Pages[i].Bytes()
				payload, err := impl.Encode(old, cur)
				if err != nil {
					return PremiseResult{}, fmt.Errorf("experiment: premise %s/%s: %w", class.Name, proto, err)
				}
				traffic += int64(len(payload))
				content += int64(len(cur))
				if uc, ok := codec.Codec(impl).(codec.UpstreamCoster); ok {
					upstream += uc.UpstreamBytes(old)
				}
			}
			n := int64(len(v1.Pages))
			cost := impl.Cost()
			metas[proto] = core.PADMeta{
				ID: "pad-" + proto, Protocol: proto, Size: 20 * 1024,
				Overhead: core.PADOverhead{
					ServerCompStd: cost.ServerTime(content / n),
					ClientCompStd: cost.ClientTime(content / n),
					TrafficBytes:  traffic / n,
					UpstreamBytes: upstream / n,
				},
			}
			out.Bytes[class.Name][proto] = (traffic + upstream) / n
		}
		for _, st := range netsim.Stations() {
			env := EnvFor(st)
			best, bestTotal := "", -1.0
			for _, proto := range protos {
				b, err := model.PADTotal(metas[proto], env)
				if err != nil {
					return PremiseResult{}, err
				}
				if total := b.Total(); bestTotal < 0 || total < bestTotal {
					best, bestTotal = proto, total
				}
			}
			out.Cells = append(out.Cells, PremiseCell{
				Class: class.Name, Station: st.Device.Name, Winner: best, TotalSec: bestTotal,
			})
		}
	}
	return out, nil
}

// DistinctWinners returns the set size of protocols that win at least one
// cell.
func (r PremiseResult) DistinctWinners() int {
	set := map[string]bool{}
	for _, c := range r.Cells {
		set[c.Winner] = true
	}
	return len(set)
}

// Render renders the winner matrix.
func (r PremiseResult) Render() []string {
	rows := []string{"document_class\tstation\twinner\ttotal_time"}
	for _, c := range r.Cells {
		rows = append(rows, fmt.Sprintf("%s\t%s\t%s\t%s", c.Class, c.Station, c.Winner, secs(c.TotalSec)))
	}
	rows = append(rows, fmt.Sprintf("distinct winners: %d (premise requires > 1)", r.DistinctWinners()))
	return rows
}
