// Package experiment regenerates every table and figure of the paper's
// evaluation (Section 4.4) against the simulated substrate. Each
// experiment returns a typed result whose Rows/String render the same
// series the paper plots; tests in this package assert the qualitative
// shapes the paper reports (who wins where, which curves stay flat, where
// the Bitmap→Vary flip happens).
package experiment

import (
	"fmt"

	"fractal/internal/appserver"
	"fractal/internal/cdn"
	"fractal/internal/core"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
	"fractal/internal/proxy"
	"fractal/internal/workload"
)

// SetupConfig parameterizes the experimental platform of Figure 7.
type SetupConfig struct {
	Pages           int   // corpus size (75 in the paper)
	Seed            int64 // workload determinism
	Edges           int   // CDN edgeservers standing in for PlanetLab nodes
	SessionRequests int   // requests per application session
	SamplePages     int   // pages used to pre-measure PAD overheads
	CacheCapacity   int   // adaptation-cache entries at the proxy
}

// DefaultSetupConfig matches the paper's platform.
func DefaultSetupConfig() SetupConfig {
	return SetupConfig{
		Pages:           workload.DefaultPages,
		Seed:            2005, // IPPS 2005
		Edges:           10,
		SessionRequests: 75,
		SamplePages:     8,
		CacheCapacity:   1024,
	}
}

// Validate reports whether the configuration is usable.
func (c SetupConfig) Validate() error {
	if c.Pages < 1 || c.Edges < 1 || c.SessionRequests < 1 || c.SamplePages < 1 || c.CacheCapacity < 1 {
		return fmt.Errorf("experiment: all setup counts must be >= 1: %+v", c)
	}
	return nil
}

// Setup is a fully wired Fractal deployment on the simulated platform.
type Setup struct {
	Config  SetupConfig
	App     *appserver.Server
	Proxy   *proxy.Proxy
	CDN     *cdn.CDN
	AppMeta core.AppMeta
	Trust   *mobilecode.TrustList
	V1, V2  *workload.Corpus
	Model   core.OverheadModel
}

// NewSetup builds the experimental platform: the 75-page two-version
// corpus, the application server with all four PADs deployed and measured,
// the adaptation proxy with the pushed topology, and the CDN with
// published modules.
func NewSetup(cfg SetupConfig) (*Setup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	signer, err := mobilecode.NewSigner("app-operator")
	if err != nil {
		return nil, err
	}
	app, err := appserver.New("webapp", signer)
	if err != nil {
		return nil, err
	}
	wcfg := workload.DefaultConfig(cfg.Seed)
	wcfg.Pages = cfg.Pages
	v1, err := workload.Generate(wcfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: generating corpus: %w", err)
	}
	v2, err := workload.MutateCorpus(v1, workload.DefaultMutation(cfg.Seed+1))
	if err != nil {
		return nil, fmt.Errorf("experiment: evolving corpus: %w", err)
	}
	if err := app.InstallCorpus(v1, v2); err != nil {
		return nil, err
	}
	if err := app.DeployPADs("1.0"); err != nil {
		return nil, err
	}
	appMeta, err := app.MeasureAppMeta(cfg.SamplePages)
	if err != nil {
		return nil, err
	}
	ms, err := core.CaseStudyMatrices()
	if err != nil {
		return nil, err
	}
	model := core.OverheadModel{
		Matrices:          ms,
		Rho:               netsim.DefaultRho,
		ServerCPUMHz:      netsim.ServerDevice.CPUMHz,
		IncludeServerComp: true,
		SessionRequests:   cfg.SessionRequests,
	}
	px, err := proxy.New(model, cfg.CacheCapacity)
	if err != nil {
		return nil, err
	}
	topo, err := cdn.DefaultTopology(cfg.Edges)
	if err != nil {
		return nil, err
	}
	if err := app.PublishPADs(topo.Origin()); err != nil {
		return nil, err
	}
	// Arm the proxy's registration gate before any topology is pushed: the
	// proxy fetches every referenced module from the origin (modules are
	// published above, so the fetch resolves) and statically verifies its
	// bytecode, so a malformed module never enters the PAT.
	origin := topo.Origin()
	fetch := func(m core.PADMeta) ([]byte, error) { return origin.Get(m.URL) }
	if err := px.SetModuleSource(fetch, mobilecode.DefaultSandbox()); err != nil {
		return nil, err
	}
	if err := px.PushAppMeta(appMeta); err != nil {
		return nil, err
	}
	trust := mobilecode.NewTrustList()
	entity, key := app.TrustedKey()
	if err := trust.Add(entity, key); err != nil {
		return nil, err
	}
	return &Setup{
		Config: cfg, App: app, Proxy: px, CDN: topo,
		AppMeta: appMeta, Trust: trust, V1: v1, V2: v2, Model: model,
	}, nil
}

// EnvFor converts a simulator station into negotiation metadata, the
// client-side "probing the system using system calls".
func EnvFor(st netsim.Station) core.Env {
	return core.Env{
		Dev: core.DevMeta{
			OSType:  string(st.Device.OS),
			CPUType: string(st.Device.CPU),
			CPUMHz:  st.Device.CPUMHz,
			MemMB:   st.Device.MemMB,
		},
		Ntwk: core.NtwkMeta{
			NetworkType:   string(st.Link.Type),
			BandwidthKbps: st.Link.BandwidthKbps,
		},
	}
}

// PADByProtocol finds the measured PADMeta for a protocol name.
func (s *Setup) PADByProtocol(proto string) (core.PADMeta, error) {
	for _, p := range s.AppMeta.PADs {
		if p.Protocol == proto {
			return p, nil
		}
	}
	return core.PADMeta{}, fmt.Errorf("experiment: no PAD for protocol %q", proto)
}
