package experiment

import (
	"fmt"
	"time"

	"fractal/internal/netsim"
)

// SessionRow is the end-to-end cost of one full application session (the
// paper's "client total delay" improvement, contribution 4): negotiation,
// one PAD download, and N adapted requests.
type SessionRow struct {
	Station    string
	Scenario   Scenario
	Protocol   string
	Total      time.Duration
	PerRequest time.Duration
}

// SessionResult compares session totals per station and scenario.
type SessionResult struct {
	Requests int
	Rows     []SessionRow
}

// RunSessionTotals evaluates the complete session for each station under
// each scenario: Equation 3 per request (with the PAD download amortized
// over the session) plus the negotiation round trips and per-request RTTs.
// The no-adaptation scenario skips negotiation and PAD download entirely,
// which is exactly its trade: no startup cost, no per-request savings.
func RunSessionTotals(s *Setup, requests int) (SessionResult, error) {
	if requests < 1 {
		return SessionResult{}, fmt.Errorf("experiment: session needs >= 1 request, got %d", requests)
	}
	model := s.Model
	model.SessionRequests = requests
	out := SessionResult{Requests: requests}
	for _, st := range netsim.Stations() {
		env := EnvFor(st)
		for _, sc := range []Scenario{ScenarioNone, ScenarioStatic, ScenarioAdaptive} {
			proto, err := s.protocolFor(sc, env, model.IncludeServerComp)
			if err != nil {
				return SessionResult{}, err
			}
			pad, err := s.PADByProtocol(proto)
			if err != nil {
				return SessionResult{}, err
			}
			if sc == ScenarioNone {
				// Direct sending without Fractal: no PAD to fetch.
				pad.Size = 0
			}
			b, err := model.PADTotal(pad, env)
			if err != nil {
				return SessionResult{}, err
			}
			perReq, err := netsim.Seconds(b.Total())
			if err != nil {
				return SessionResult{}, err
			}
			total := time.Duration(requests) * (perReq + st.Link.RTT)
			if sc != ScenarioNone {
				// Two negotiation round trips plus proxy computation.
				total += 2*st.Link.RTT + defaultTimelineParams.negotiationCPU
				deploy, err := st.Device.ScaleCompute(defaultTimelineParams.deployCPUStd)
				if err != nil {
					return SessionResult{}, err
				}
				total += deploy
			}
			out.Rows = append(out.Rows, SessionRow{
				Station:    st.Device.Name,
				Scenario:   sc,
				Protocol:   proto,
				Total:      total,
				PerRequest: perReq,
			})
		}
	}
	return out, nil
}

// Row returns the entry for a station/scenario pair.
func (r SessionResult) Row(station string, sc Scenario) (SessionRow, error) {
	for _, row := range r.Rows {
		if row.Station == station && row.Scenario == sc {
			return row, nil
		}
	}
	return SessionRow{}, fmt.Errorf("experiment: no session row for %s/%s", station, sc)
}

// Render renders the comparison.
func (r SessionResult) Render() []string {
	rows := []string{fmt.Sprintf("station\tscenario\tprotocol\tsession_total\tper_request\t(%d requests)", r.Requests)}
	for _, row := range r.Rows {
		rows = append(rows, fmt.Sprintf("%s\t%s\t%s\t%v\t%v",
			row.Station, row.Scenario, row.Protocol,
			row.Total.Round(time.Millisecond), row.PerRequest.Round(10*time.Microsecond)))
	}
	return rows
}
