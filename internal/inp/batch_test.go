package inp

import (
	"bytes"
	"io"
	"math"
	"net"
	"reflect"
	"testing"
	"time"
	"unicode/utf8"

	"fractal/internal/arena"
	"fractal/internal/core"
)

// FuzzFrameBatch pins the tentpole equivalence: a batch of JSON frames
// queued through FrameWriter and emitted by one Flush is byte-identical
// to the same frames written sequentially with WriteMessage.
func FuzzFrameBatch(f *testing.F) {
	f.Add("webapp", "mail/inbox", 3, []byte("payload"))
	f.Add("", "", 0, []byte(nil))
	f.Add("a", string(bytes.Repeat([]byte("r"), 300)), -9, bytes.Repeat([]byte("z"), 9000))
	f.Fuzz(func(t *testing.T, appID, resource string, n int, payload []byte) {
		type frame struct {
			t    MsgType
			body interface{}
		}
		frames := []frame{
			{MsgInitReq, InitReq{AppID: appID, Resource: resource}},
			{MsgInitRep, InitRep{OK: n%2 == 0, Reason: appID}},
			{MsgCliMetaRep, CliMetaRep{SessionRequests: n}},
			{MsgAppRep, AppRep{Resource: resource, Version: n, Payload: payload}},
			{MsgError, ErrorRep{Message: resource}},
		}
		var sequential bytes.Buffer
		seq := uint32(0)
		for _, fr := range frames {
			seq++
			if err := WriteMessage(&sequential, Header{Version: Version, Type: fr.t, Seq: seq}, fr.body); err != nil {
				t.Fatalf("sequential WriteMessage(%v): %v", fr.t, err)
			}
		}
		var batched bytes.Buffer
		fw := NewFrameWriter(&batched)
		seq = 0
		for _, fr := range frames {
			seq++
			if err := fw.WriteMessage(Header{Version: Version, Type: fr.t, Seq: seq}, fr.body); err != nil {
				t.Fatalf("batched WriteMessage(%v): %v", fr.t, err)
			}
		}
		if batched.Len() != 0 {
			t.Fatal("frames reached the stream before Flush")
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sequential.Bytes(), batched.Bytes()) {
			t.Fatalf("batched output diverges from sequential: %d vs %d bytes", batched.Len(), sequential.Len())
		}
	})
}

// binaryRoundTrip encodes body as one Version2 frame and decodes it back
// into out, exercising the full frame path (header parse included).
func binaryRoundTrip(t *testing.T, mt MsgType, body, out interface{}) {
	t.Helper()
	var wire bytes.Buffer
	fw := NewFrameWriter(&wire)
	if err := fw.WriteMessage(Header{Version: Version2, Type: mt, Seq: 1}, body); err != nil {
		t.Fatalf("binary WriteMessage(%v): %v", mt, err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	h, raw, err := ReadMessage(&wire)
	if err != nil {
		t.Fatalf("reading binary %v frame: %v", mt, err)
	}
	if h.Version != Version2 || h.Type != mt {
		t.Fatalf("header mangled: %+v", h)
	}
	if err := decodeBinaryBody(mt, raw, out); err != nil {
		t.Fatalf("decoding binary %v body: %v", mt, err)
	}
}

// jsonRoundTrip runs the same body through the JSON wire path.
func jsonRoundTrip(t *testing.T, mt MsgType, body, out interface{}) {
	t.Helper()
	var wire bytes.Buffer
	if err := WriteMessage(&wire, Header{Version: Version, Type: mt, Seq: 1}, body); err != nil {
		t.Fatalf("json WriteMessage(%v): %v", mt, err)
	}
	_, raw, err := ReadMessage(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeBody(raw, out); err != nil {
		t.Fatal(err)
	}
}

// FuzzBinaryBodyDifferential pins the binary fast-path semantically
// identical to JSON: for every hot body type, a binary round trip must
// reproduce the original value exactly, and (for JSON-representable
// inputs) agree field-for-field with a JSON round trip of the same value,
// including the nil-vs-empty distinctions JSON encodes as null vs ""/[].
func FuzzBinaryBodyDifferential(f *testing.F) {
	f.Add("app", "res", "p1", "p2", 2, 3, []byte("module"), byte(0))
	f.Add("", "", "", "", 0, 0, []byte(nil), byte(3))
	f.Add("x", "y", "", "q", -5, 1<<30, bytes.Repeat([]byte{0xff, 0}, 5000), byte(1))
	f.Fuzz(func(t *testing.T, appID, resource, p1, p2 string, hv, wv int, blob []byte, flags byte) {
		var pids []string
		switch flags % 3 {
		case 1:
			pids = []string{}
		case 2:
			pids = []string{p1, p2}
		}
		if flags&4 != 0 && blob == nil {
			blob = []byte{}
		}
		jsonSafe := utf8.ValidString(appID) && utf8.ValidString(resource) &&
			utf8.ValidString(p1) && utf8.ValidString(p2)
		check := func(mt MsgType, orig, bin, js interface{}) {
			t.Helper()
			binaryRoundTrip(t, mt, orig, bin)
			if !reflect.DeepEqual(bin, orig) {
				t.Fatalf("%v binary round trip diverged:\n got %+v\nwant %+v", mt, bin, orig)
			}
			if !jsonSafe {
				return // JSON sanitizes invalid UTF-8; binary is exact
			}
			jsonRoundTrip(t, mt, orig, js)
			if !reflect.DeepEqual(bin, js) {
				t.Fatalf("%v binary and JSON round trips disagree:\n bin %+v\njson %+v", mt, bin, js)
			}
		}
		check(MsgAppReq,
			&AppReq{AppID: appID, Resource: resource, ProtocolIDs: pids, HaveVersion: hv, WireVersion: wv},
			&AppReq{}, &AppReq{})
		check(MsgAppRep,
			&AppRep{Resource: resource, Version: hv, PADID: appID, Payload: blob},
			&AppRep{}, &AppRep{})
		check(MsgPADDownloadReq,
			&PADDownloadReq{PADID: appID, URL: resource, WireVersion: wv},
			&PADDownloadReq{}, &PADDownloadReq{})
		check(MsgPADDownloadRep,
			&PADDownloadRep{PADID: appID, Module: blob},
			&PADDownloadRep{}, &PADDownloadRep{})
	})
}

// FuzzBinaryNegotiationDifferential extends the differential pin to the
// negotiation-burst bodies: metadata structs with floats, durations, a
// fixed-width digest, and nested PADMeta arrays. NaN is normalized to
// zero up front (reflect.DeepEqual cannot compare it; see
// TestBinaryFloatSpecials for the NaN/Inf wire behaviour), and JSON
// comparison is skipped for the non-finite values json.Marshal rejects.
func FuzzBinaryNegotiationDifferential(f *testing.F) {
	f.Add("app", "cli", "GPRS", 2100.5, 42.25, int64(100), int64(-7), 3, []byte("digest-seed-bytes-20"), byte(2))
	f.Add("", "", "", 0.0, 0.0, int64(0), int64(0), 0, []byte(nil), byte(0))
	f.Add("x", "y", "z", math.Inf(1), -1e300, int64(1)<<60, int64(-1)<<60, -1, bytes.Repeat([]byte{0xee}, 64), byte(5))
	f.Fuzz(func(t *testing.T, appID, clientID, netType string, mhz, kbps float64, d1, d2 int64, n int, dig []byte, flags byte) {
		if math.IsNaN(mhz) {
			mhz = 0
		}
		if math.IsNaN(kbps) {
			kbps = 0
		}
		dev := core.DevMeta{OSType: appID, CPUType: netType, CPUMHz: mhz, MemMB: n}
		ntwk := core.NtwkMeta{NetworkType: netType, BandwidthKbps: kbps}
		pad := core.PADMeta{
			ID: appID, Version: clientID, Protocol: netType, Size: d1,
			Overhead: core.PADOverhead{
				ServerCompStd: time.Duration(d1), ClientCompStd: time.Duration(d2),
				TrafficBytes: d2, UpstreamBytes: d1,
			},
			URL: clientID, Parent: appID, Alias: netType,
		}
		copy(pad.Digest[:], dig)
		switch flags % 3 {
		case 1:
			pad.Children = []string{}
		case 2:
			pad.Children = []string{appID, clientID}
		}
		var pads []core.PADMeta
		switch flags / 3 % 3 {
		case 1:
			pads = []core.PADMeta{}
		case 2:
			pads = []core.PADMeta{pad, pad}
		}
		jsonSafe := utf8.ValidString(appID) && utf8.ValidString(clientID) && utf8.ValidString(netType) &&
			!math.IsInf(mhz, 0) && !math.IsInf(kbps, 0)
		check := func(mt MsgType, orig, bin, js interface{}) {
			t.Helper()
			binaryRoundTrip(t, mt, orig, bin)
			if !reflect.DeepEqual(bin, orig) {
				t.Fatalf("%v binary round trip diverged:\n got %+v\nwant %+v", mt, bin, orig)
			}
			if !jsonSafe {
				return
			}
			jsonRoundTrip(t, mt, orig, js)
			if !reflect.DeepEqual(bin, js) {
				t.Fatalf("%v binary and JSON round trips disagree:\n bin %+v\njson %+v", mt, bin, js)
			}
		}
		check(MsgInitReq,
			&InitReq{AppID: appID, Resource: netType, ClientID: clientID, WireVersion: n},
			&InitReq{}, &InitReq{})
		check(MsgInitRep,
			&InitRep{OK: flags&8 != 0, Reason: clientID},
			&InitRep{}, &InitRep{})
		check(MsgCliMetaReq,
			&CliMetaReq{Dev: dev, Ntwk: ntwk},
			&CliMetaReq{}, &CliMetaReq{})
		check(MsgCliMetaRep,
			&CliMetaRep{Dev: dev, Ntwk: ntwk, SessionRequests: n},
			&CliMetaRep{}, &CliMetaRep{})
		check(MsgPADMetaRep,
			&PADMetaRep{PADs: pads},
			&PADMetaRep{}, &PADMetaRep{})
	})
}

// TestBinaryFloatSpecials pins the binary codec's edge over JSON on
// non-finite floats: NaN and the infinities round-trip bit-exact, where
// json.Marshal simply refuses them.
func TestBinaryFloatSpecials(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)} {
		orig := &CliMetaReq{Dev: core.DevMeta{CPUMHz: f}, Ntwk: core.NtwkMeta{BandwidthKbps: f}}
		var got CliMetaReq
		binaryRoundTrip(t, MsgCliMetaReq, orig, &got)
		if math.Float64bits(got.Dev.CPUMHz) != math.Float64bits(f) ||
			math.Float64bits(got.Ntwk.BandwidthKbps) != math.Float64bits(f) {
			t.Errorf("float %v (bits %#x) did not round-trip bit-exact: got %v/%v",
				f, math.Float64bits(f), got.Dev.CPUMHz, got.Ntwk.BandwidthKbps)
		}
	}
}

// FuzzBinaryDecodeGarbage pins that hostile binary bodies never panic and
// never silently succeed with trailing bytes.
func FuzzBinaryDecodeGarbage(f *testing.F) {
	f.Add([]byte{0x01, 0x61, 0x00, 0x00, 0x00}, byte(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, byte(1))
	f.Fuzz(func(t *testing.T, raw []byte, which byte) {
		switch which % 9 {
		case 0:
			_ = decodeBinaryBody(MsgAppReq, raw, &AppReq{})
		case 1:
			_ = decodeBinaryBody(MsgAppRep, raw, &AppRep{})
		case 2:
			_ = decodeBinaryBody(MsgPADDownloadReq, raw, &PADDownloadReq{})
		case 3:
			_ = decodeBinaryBody(MsgPADDownloadRep, raw, &PADDownloadRep{})
		case 4:
			_ = decodeBinaryBody(MsgInitReq, raw, &InitReq{})
		case 5:
			_ = decodeBinaryBody(MsgInitRep, raw, &InitRep{})
		case 6:
			_ = decodeBinaryBody(MsgCliMetaReq, raw, &CliMetaReq{})
		case 7:
			_ = decodeBinaryBody(MsgCliMetaRep, raw, &CliMetaRep{})
		case 8:
			_ = decodeBinaryBody(MsgPADMetaRep, raw, &PADMetaRep{})
		}
	})
}

// TestFrameWriterSpliceInterleaving pins the vectored path: a batch
// mixing JSON frames with a binary frame whose module is large enough to
// splice must coalesce to exactly the concatenation of the frames flushed
// one at a time.
func TestFrameWriterSpliceInterleaving(t *testing.T) {
	module := bytes.Repeat([]byte{0xab}, spliceMin+100)
	frames := []struct {
		h    Header
		body interface{}
	}{
		{Header{Version: Version, Type: MsgInitRep, Seq: 1}, InitRep{OK: true}},
		{Header{Version: Version2, Type: MsgPADDownloadRep, Seq: 2}, &PADDownloadRep{PADID: "p", Module: module}},
		{Header{Version: Version, Type: MsgError, Seq: 3}, ErrorRep{Message: "tail"}},
	}
	var want bytes.Buffer
	for _, fr := range frames {
		fw := NewFrameWriter(&want)
		if err := fw.WriteMessage(fr.h, fr.body); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	var got bytes.Buffer
	fw := NewFrameWriter(&got)
	for _, fr := range frames {
		if err := fw.WriteMessage(fr.h, fr.body); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("spliced batch diverges: %d vs %d bytes", got.Len(), want.Len())
	}
	// And the spliced frame still decodes.
	r := bytes.NewReader(got.Bytes())
	for i := 0; i < 3; i++ {
		if _, _, err := ReadMessage(r); err != nil {
			t.Fatalf("frame %d unreadable: %v", i, err)
		}
	}
}

// TestConnSessionPipelineDetection pins the serving-path fast path: after
// one Recv from a flushed two-frame burst, InputPending reports the
// second frame already buffered.
func TestConnSessionPipelineDetection(t *testing.T) {
	var wire bytes.Buffer
	cc := NewConn(&wire)
	if err := cc.Queue(MsgInitReq, InitReq{AppID: "app"}); err != nil {
		t.Fatal(err)
	}
	if err := cc.Queue(MsgCliMetaRep, CliMetaRep{SessionRequests: 4}); err != nil {
		t.Fatal(err)
	}
	if err := cc.Flush(); err != nil {
		t.Fatal(err)
	}
	sess := arena.AcquireSession()
	defer sess.Release()
	sc := NewConnSession(&wire, sess)
	var init InitReq
	if err := sc.RecvInto(MsgInitReq, &init); err != nil {
		t.Fatal(err)
	}
	if init.AppID != "app" {
		t.Fatalf("init decoded as %+v", init)
	}
	if !sc.InputPending() {
		t.Fatal("pipelined frame not detected after first Recv")
	}
	var meta CliMetaRep
	if err := sc.RecvInto(MsgCliMetaRep, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.SessionRequests != 4 {
		t.Fatalf("meta decoded as %+v", meta)
	}
	if sc.InputPending() {
		t.Fatal("InputPending true after stream drained")
	}
}

// TestConnBinaryNegotiationUpgrade walks the version negotiation end to
// end over a real duplex pipe: the first request is JSON with a
// WireVersion advertisement, the server enables binary, its reply arrives
// as a Version2 frame, and the client's second request upgrades to binary
// automatically.
func TestConnBinaryNegotiationUpgrade(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	done := make(chan error, 1)
	go func() {
		sess := arena.AcquireSession()
		defer sess.Release()
		sc := NewConnSession(server, sess)
		for i := 0; i < 2; i++ {
			var req AppReq
			if err := sc.RecvInto(MsgAppReq, &req); err != nil {
				done <- err
				return
			}
			if req.WireVersion >= Version2 {
				sc.EnableBinary()
			}
			if err := sc.Send(MsgAppRep, &AppRep{Resource: req.Resource, Version: i + 1, Payload: []byte(req.AppID)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	cc := NewConn(client)
	if cc.BinaryEnabled() {
		t.Fatal("client started in binary mode")
	}
	var rep AppRep
	req := &AppReq{AppID: "app", Resource: "res", WireVersion: Version2}
	if err := cc.Call(MsgAppReq, req, MsgAppRep, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 || string(rep.Payload) != "app" {
		t.Fatalf("first reply %+v", rep)
	}
	if !cc.BinaryEnabled() {
		t.Fatal("client did not upgrade after a Version2 reply")
	}
	if err := cc.Call(MsgAppReq, req, MsgAppRep, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Version != 2 {
		t.Fatalf("second reply %+v", rep)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestSessionConnRejectsHostileHeader keeps the hostile-length discipline
// on the session read path: a header claiming 64 MB with a truncated body
// must fail without reserving the claimed size.
func TestSessionConnRejectsHostileHeader(t *testing.T) {
	var wire bytes.Buffer
	hdr := make([]byte, headerLen)
	copy(hdr, magic[:])
	hdr[4] = Version
	hdr[5] = uint8(MsgAppReq)
	hdr[8+3] = 1 // seq 1
	hdr[12] = 0x04
	wire.Write(hdr) // claims 0x04000000 = 64 MB, delivers nothing
	sess := arena.AcquireSession()
	defer sess.Release()
	sc := NewConnSession(&wire, sess)
	if _, _, err := sc.Recv(); err == nil {
		t.Fatal("truncated 64 MB claim accepted")
	}
}

// TestBatchedFramingSteadyStateAllocs pins the arena promise on the write
// path: a warm queue+flush of a JSON burst stays within two allocations
// (the JSON encoder's own scratch), and the binary fast path allocates
// nothing at all.
func TestBatchedFramingSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	initReq := &InitReq{AppID: "app", Resource: "res"}
	rep := &AppRep{Resource: "res", Version: 3, PADID: "pad", Payload: bytes.Repeat([]byte("x"), 256)}
	fw := NewFrameWriter(io.Discard)
	warm := func(fn func()) float64 {
		for i := 0; i < 16; i++ {
			fn()
		}
		return testing.AllocsPerRun(200, fn)
	}
	jsonBurst := func() {
		if err := fw.WriteMessage(Header{Version: Version, Type: MsgInitReq, Seq: 1}, initReq); err != nil {
			t.Fatal(err)
		}
		if err := fw.WriteMessage(Header{Version: Version, Type: MsgInitRep, Seq: 2}, InitRep{OK: true}); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if avg := warm(jsonBurst); avg > 2 {
		t.Errorf("warm JSON burst allocates %.1f per run, want <= 2", avg)
	}
	binarySend := func() {
		if err := fw.WriteMessage(Header{Version: Version2, Type: MsgAppRep, Seq: 1}, rep); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if avg := warm(binarySend); avg > 0 {
		t.Errorf("warm binary send allocates %.1f per run, want 0", avg)
	}
}

// BenchmarkINPRoundTrip measures framing cost alone — encode one hot
// message and decode it back, no sockets — for the JSON wire default and
// the Version2 binary fast path. Snapshotted in BENCH_proxy.json.
func BenchmarkINPRoundTrip(b *testing.B) {
	rep := &AppRep{Resource: "mail/inbox", Version: 7, PADID: "pad-differential", Payload: bytes.Repeat([]byte("x"), 512)}
	b.Run("json", func(b *testing.B) {
		var wire bytes.Buffer
		var got AppRep
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wire.Reset()
			if err := WriteMessage(&wire, Header{Version: Version, Type: MsgAppRep, Seq: 1}, rep); err != nil {
				b.Fatal(err)
			}
			_, raw, err := ReadMessage(&wire)
			if err != nil {
				b.Fatal(err)
			}
			got = AppRep{}
			if err := DecodeBody(raw, &got); err != nil {
				b.Fatal(err)
			}
		}
		_ = got
	})
	b.Run("binary", func(b *testing.B) {
		var wire bytes.Buffer
		fw := NewFrameWriter(&wire)
		var got AppRep
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wire.Reset()
			if err := fw.WriteMessage(Header{Version: Version2, Type: MsgAppRep, Seq: 1}, rep); err != nil {
				b.Fatal(err)
			}
			if err := fw.Flush(); err != nil {
				b.Fatal(err)
			}
			_, raw, err := ReadMessage(&wire)
			if err != nil {
				b.Fatal(err)
			}
			got = AppRep{}
			if err := decodeBinaryBody(MsgAppRep, raw, &got); err != nil {
				b.Fatal(err)
			}
		}
		_ = got
	})
}
