package inp

import (
	"fmt"
	"io"
	"net"

	"fractal/internal/arena"
)

// FrameWriter coalesces consecutive frames into one write: frames queued
// with WriteMessage are assembled contiguously in an arena buffer and
// nothing reaches the stream until Flush, which issues a single vectored
// write (writev via net.Buffers) on TCP and a single coalesced Write on
// any other stream. Large binary bodies are spliced as their own vector
// entries instead of being copied into the assembly buffer.
//
// A FrameWriter serves one connection and is not safe for concurrent use.
// The JSON wire bytes are byte-identical to sequential WriteMessage calls,
// pinned by FuzzFrameBatch.
type FrameWriter struct {
	w   io.Writer
	tcp *net.TCPConn // non-nil when vectored writes are available
	// es is borrowed from encPool while frames are queued and returned on
	// Flush, so idle connections pin no assembly storage.
	es     *encodeState
	vecs   []frameVec
	nb     net.Buffers // reusable backing for the vectored flush
	extLen int         // total spliced (zero-copy) bytes queued
	queued int
}

// frameVec marks a splice point in the queued byte stream: the internal
// assembly buffer up to offset end is followed by the external slice ext.
type frameVec struct {
	end int
	ext []byte
}

// NewFrameWriter returns a batching frame writer over w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	fw := &FrameWriter{}
	fw.init(w)
	return fw
}

// init prepares an embedded FrameWriter in place.
func (fw *FrameWriter) init(w io.Writer) {
	fw.w = w
	if tc, ok := w.(*net.TCPConn); ok {
		fw.tcp = tc
	}
}

// state returns the assembly buffer, borrowing one on first use.
func (fw *FrameWriter) state() *encodeState {
	if fw.es == nil {
		fw.es = encPool.Get().(*encodeState)
	}
	return fw.es
}

// WriteMessage queues one frame; nothing reaches the stream until Flush.
// Headers carrying Version2 use the binary body codec (the type must be
// binary-capable); all others encode JSON byte-identically to the
// package-level WriteMessage.
//
//fractal:hotpath every batched exchange queues frames here
func (fw *FrameWriter) WriteMessage(h Header, body interface{}) error {
	if h.Type == MsgInvalid || h.Type >= msgMax {
		return fmt.Errorf("inp: cannot write message of type %v", h.Type)
	}
	es := fw.state()
	var err error
	if h.Version >= Version2 {
		err = fw.appendFrameBinary(h, body)
	} else {
		err = appendFrameJSON(&es.buf, es.enc, h, body)
	}
	if err != nil {
		return err
	}
	fw.queued++
	return nil
}

// splice records p as a zero-copy vector entry following everything
// queued so far. p must stay unmodified until Flush returns.
func (fw *FrameWriter) splice(p []byte) {
	fw.vecs = append(fw.vecs, frameVec{end: fw.es.buf.Len(), ext: p})
	fw.extLen += len(p)
}

// Buffered reports how many queued bytes await Flush.
func (fw *FrameWriter) Buffered() int {
	if fw.es == nil {
		return 0
	}
	return fw.es.buf.Len() + fw.extLen
}

// Flush writes every queued frame in one call and releases the assembly
// buffer back to the arena. Flushing an empty writer is a no-op.
//
//fractal:hotpath one flush per direction per session phase
func (fw *FrameWriter) Flush() error {
	es := fw.es
	if es == nil {
		return nil
	}
	n := fw.queued
	fw.es = nil
	fw.queued = 0
	defer putEncState(es)
	var err error
	if len(fw.vecs) == 0 {
		if es.buf.Len() > 0 {
			_, err = fw.w.Write(es.buf.Bytes())
		}
	} else {
		err = fw.flushVectored(es)
	}
	if err != nil {
		return fmt.Errorf("inp: flushing %d queued frame(s): %w", n, err)
	}
	return nil
}

// flushVectored interleaves the internal buffer segments with the spliced
// slices. On TCP the segments go out as one writev; elsewhere they are
// coalesced into scratch arena storage for a single Write.
func (fw *FrameWriter) flushVectored(es *encodeState) error {
	b := es.buf.Bytes()
	fw.nb = fw.nb[:0]
	off := 0
	for _, v := range fw.vecs {
		if v.end > off {
			fw.nb = append(fw.nb, b[off:v.end])
			off = v.end
		}
		if len(v.ext) > 0 {
			fw.nb = append(fw.nb, v.ext)
		}
	}
	if off < len(b) {
		fw.nb = append(fw.nb, b[off:])
	}
	fw.vecs = fw.vecs[:0]
	fw.extLen = 0
	if fw.tcp != nil {
		// net.Buffers.WriteTo consumes its receiver slice, so hand it a
		// view; fw.nb's backing array stays reusable for the next flush.
		bufs := fw.nb
		_, err := bufs.WriteTo(fw.tcp)
		return err
	}
	var scratch arena.Buffer
	for _, seg := range fw.nb {
		scratch.Write(seg)
	}
	_, err := fw.w.Write(scratch.Bytes())
	scratch.Release()
	return err
}

// readBufSize is the per-connection buffered-read window: one mid-class
// arena borrow, large enough that a pipelined negotiation burst arrives
// in a single fill.
const readBufSize = 4 << 10

// bufReader is a minimal buffered reader over session-scoped arena
// storage. Unlike bufio.Reader it exposes how many undrained bytes sit in
// its buffer, which the serving path uses to detect pipelined requests,
// and its buffer returns to the arena with the owning session instead of
// being pinned by an idle connection.
type bufReader struct {
	src  io.Reader
	buf  []byte
	r, w int
}

// buffered reports the undrained byte count.
func (b *bufReader) buffered() int { return b.w - b.r }

// Read refills from src at most once per call; reads at least as large as
// the buffer bypass it entirely so large bodies stream straight through.
//
//fractal:hotpath every buffered session read lands here
func (b *bufReader) Read(p []byte) (int, error) {
	if b.r == b.w {
		if len(p) >= len(b.buf) {
			return b.src.Read(p)
		}
		n, err := b.src.Read(b.buf)
		if n <= 0 {
			return 0, err
		}
		b.r, b.w = 0, n
	}
	n := copy(p, b.buf[b.r:b.w])
	b.r += n
	return n, nil
}
