package inp

import (
	"bytes"
	"errors"
	"net"
	"os"
	"testing"
	"testing/quick"
	"time"
)

// TestConnRejectsStaleSequence is the regression test for the unchecked
// reply sequence numbers: a duplicated (replayed) frame must not be
// accepted as the answer to a later request.
func TestConnRejectsStaleSequence(t *testing.T) {
	var wire bytes.Buffer
	// The "peer" sends frame seq=1 twice: a legitimate reply followed by
	// a duplicate of it (a replay or a stale retransmission).
	if err := WriteMessage(&wire, Header{Version: Version, Type: MsgInitRep, Seq: 1}, InitRep{OK: true}); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), wire.Bytes()...)
	wire.Write(frame)

	c := NewConn(&wire)
	var rep InitRep
	if err := c.RecvInto(MsgInitRep, &rep); err != nil {
		t.Fatalf("first frame rejected: %v", err)
	}
	err := c.RecvInto(MsgInitRep, &rep)
	if !errors.Is(err, ErrSeqMismatch) {
		t.Fatalf("duplicated frame err = %v, want ErrSeqMismatch", err)
	}
}

func TestConnRejectsSkippedSequence(t *testing.T) {
	var wire bytes.Buffer
	// First frame from a fresh peer must carry seq 1; seq 5 means four
	// frames were lost or reordered and the stream cannot be trusted.
	if err := WriteMessage(&wire, Header{Version: Version, Type: MsgInitRep, Seq: 5}, InitRep{OK: true}); err != nil {
		t.Fatal(err)
	}
	c := NewConn(&wire)
	var rep InitRep
	if err := c.RecvInto(MsgInitRep, &rep); !errors.Is(err, ErrSeqMismatch) {
		t.Fatalf("skipped-ahead frame err = %v, want ErrSeqMismatch", err)
	}
}

// Property: for any claimed sequence number other than 1, a fresh Conn
// rejects the frame; for exactly 1 it accepts.
func TestConnSequenceGateProperty(t *testing.T) {
	f := func(seq uint32) bool {
		var wire bytes.Buffer
		if err := WriteMessage(&wire, Header{Version: Version, Type: MsgInitRep, Seq: seq}, InitRep{OK: true}); err != nil {
			return false
		}
		var rep InitRep
		err := NewConn(&wire).RecvInto(MsgInitRep, &rep)
		if seq == 1 {
			return err == nil
		}
		return errors.Is(err, ErrSeqMismatch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConnPeerErrorIsTyped(t *testing.T) {
	var wire bytes.Buffer
	peer := NewConn(&wire)
	if err := peer.SendError("no such resource"); err != nil {
		t.Fatal(err)
	}
	var rep AppRep
	err := NewConn(&wire).RecvInto(MsgAppRep, &rep)
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PeerError", err, err)
	}
	if pe.Message != "no such resource" {
		t.Fatalf("peer message = %q", pe.Message)
	}
	if err.Error() != "inp: peer error: no such resource" {
		t.Fatalf("historical rendering changed: %q", err.Error())
	}
	if (&PeerError{}).Error() != "inp: peer error (unparseable body)" {
		t.Fatalf("empty rendering changed: %q", (&PeerError{}).Error())
	}
}

// TestConnTimeoutBoundsStalledRead proves a Conn.Call against a peer that
// never answers returns within the configured timeout instead of hanging.
func TestConnTimeoutBoundsStalledRead(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	// Drain the request so the write completes, then go silent.
	go func() {
		_, _, _ = ReadMessage(server)
	}()
	c := NewConn(client)
	c.SetTimeout(80 * time.Millisecond)
	var rep InitRep
	start := time.Now()
	err := c.Call(MsgInitReq, InitReq{AppID: "x"}, MsgInitRep, &rep)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled call err = %v, want deadline", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout did not bound the stalled call")
	}
}

func TestConnTimeoutNoopOnPlainStream(t *testing.T) {
	var wire bytes.Buffer
	c := NewConn(&wire)
	c.SetTimeout(time.Millisecond) // bytes.Buffer has no deadlines
	if err := c.Send(MsgInitRep, InitRep{OK: true}); err != nil {
		t.Fatal(err)
	}
	var rep InitRep
	if err := NewConn(&wire).RecvInto(MsgInitRep, &rep); err != nil {
		t.Fatal(err)
	}
}
