package inp

import (
	"bytes"
	"errors"
	"net"
	"os"
	"testing"
	"testing/quick"
	"time"
)

// TestConnRejectsStaleSequence is the regression test for the unchecked
// reply sequence numbers: a duplicated (replayed) frame must not be
// accepted as the answer to a later request.
func TestConnRejectsStaleSequence(t *testing.T) {
	var wire bytes.Buffer
	// The "peer" sends frame seq=1 twice: a legitimate reply followed by
	// a duplicate of it (a replay or a stale retransmission).
	if err := WriteMessage(&wire, Header{Version: Version, Type: MsgInitRep, Seq: 1}, InitRep{OK: true}); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), wire.Bytes()...)
	wire.Write(frame)

	c := NewConn(&wire)
	var rep InitRep
	if err := c.RecvInto(MsgInitRep, &rep); err != nil {
		t.Fatalf("first frame rejected: %v", err)
	}
	err := c.RecvInto(MsgInitRep, &rep)
	if !errors.Is(err, ErrSeqMismatch) {
		t.Fatalf("duplicated frame err = %v, want ErrSeqMismatch", err)
	}
}

func TestConnRejectsSkippedSequence(t *testing.T) {
	var wire bytes.Buffer
	// First frame from a fresh peer must carry seq 1; seq 5 means four
	// frames were lost or reordered and the stream cannot be trusted.
	if err := WriteMessage(&wire, Header{Version: Version, Type: MsgInitRep, Seq: 5}, InitRep{OK: true}); err != nil {
		t.Fatal(err)
	}
	c := NewConn(&wire)
	var rep InitRep
	if err := c.RecvInto(MsgInitRep, &rep); !errors.Is(err, ErrSeqMismatch) {
		t.Fatalf("skipped-ahead frame err = %v, want ErrSeqMismatch", err)
	}
}

// Property: for any claimed sequence number other than 1, a fresh Conn
// rejects the frame; for exactly 1 it accepts.
func TestConnSequenceGateProperty(t *testing.T) {
	f := func(seq uint32) bool {
		var wire bytes.Buffer
		if err := WriteMessage(&wire, Header{Version: Version, Type: MsgInitRep, Seq: seq}, InitRep{OK: true}); err != nil {
			return false
		}
		var rep InitRep
		err := NewConn(&wire).RecvInto(MsgInitRep, &rep)
		if seq == 1 {
			return err == nil
		}
		return errors.Is(err, ErrSeqMismatch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConnPeerErrorIsTyped(t *testing.T) {
	var wire bytes.Buffer
	peer := NewConn(&wire)
	if err := peer.SendError("no such resource"); err != nil {
		t.Fatal(err)
	}
	var rep AppRep
	err := NewConn(&wire).RecvInto(MsgAppRep, &rep)
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PeerError", err, err)
	}
	if pe.Message != "no such resource" {
		t.Fatalf("peer message = %q", pe.Message)
	}
	if err.Error() != "inp: peer error: no such resource" {
		t.Fatalf("historical rendering changed: %q", err.Error())
	}
	if (&PeerError{}).Error() != "inp: peer error (unparseable body)" {
		t.Fatalf("empty rendering changed: %q", (&PeerError{}).Error())
	}
}

// TestConnTimeoutBoundsStalledRead proves a Conn.Call against a peer that
// never answers returns within the configured timeout instead of hanging.
func TestConnTimeoutBoundsStalledRead(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	// Drain the request so the write completes, then go silent.
	go func() {
		_, _, _ = ReadMessage(server)
	}()
	c := NewConn(client)
	c.SetTimeout(80 * time.Millisecond)
	var rep InitRep
	start := time.Now()
	err := c.Call(MsgInitReq, InitReq{AppID: "x"}, MsgInitRep, &rep)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled call err = %v, want deadline", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout did not bound the stalled call")
	}
}

// TestConnQueueEncodeFailureKeepsSequence is the unit-level regression for
// the seq-burn bug the conformance model flushed out (see
// internal/inp/conformance/regress_test.go for the shrunk trace): a body
// that fails to encode must not consume a sequence number, or the next
// successful frame skips one and a healthy peer rejects the stream.
func TestConnQueueEncodeFailureKeepsSequence(t *testing.T) {
	var wire bytes.Buffer
	c := NewConn(&wire)
	if err := c.Send(MsgInitReq, InitReq{AppID: "webapp"}); err != nil {
		t.Fatal(err)
	}
	// Channels are not JSON-encodable; staging must fail without a frame.
	if err := c.Queue(MsgCliMetaRep, make(chan int)); err == nil {
		t.Fatal("queueing an unencodable body succeeded")
	}
	if err := c.Send(MsgCliMetaRep, CliMetaRep{}); err != nil {
		t.Fatal(err)
	}

	// The receiving side must see seq 1, 2 — no gap.
	peer := NewConn(&wire)
	for want := uint32(1); want <= 2; want++ {
		h, _, err := peer.Recv()
		if err != nil {
			t.Fatalf("frame %d rejected: %v", want, err)
		}
		if h.Seq != want {
			t.Fatalf("frame seq = %d, want %d", h.Seq, want)
		}
	}
}

// TestConnRejectedV2FrameDoesNotUpgrade pins that only an accepted frame
// mutates conn state: a stale/replayed Version2 frame that fails the
// sequence gate must not flip the conn to the binary encoding.
func TestConnRejectedV2FrameDoesNotUpgrade(t *testing.T) {
	var wire bytes.Buffer
	// A stale v2 frame: wrong seq (5 on a fresh conn), binary body.
	var fw FrameWriter
	fw.init(&wire)
	if err := fw.WriteMessage(Header{Version: Version2, Type: MsgInitRep, Seq: 5}, InitRep{OK: true}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	c := NewConn(&wire)
	if _, _, err := c.Recv(); !errors.Is(err, ErrSeqMismatch) {
		t.Fatalf("stale v2 frame err = %v, want ErrSeqMismatch", err)
	}
	if c.BinaryEnabled() {
		t.Fatal("rejected v2 frame flipped the conn to binary")
	}

	// The same frame with the correct seq does upgrade.
	wire.Reset()
	fw.init(&wire)
	if err := fw.WriteMessage(Header{Version: Version2, Type: MsgInitRep, Seq: 1}, InitRep{OK: true}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Recv(); err != nil {
		t.Fatalf("accepted v2 frame err = %v", err)
	}
	if !c.BinaryEnabled() {
		t.Fatal("accepted v2 frame did not upgrade the conn")
	}
}

// TestConnSetTimeoutZeroClearsDeadline pins that disabling the per-op
// bound also clears a previously armed absolute deadline: a later
// long-running Recv must block until the peer answers, not fail against
// the stale deadline of an earlier bounded call.
func TestConnSetTimeoutZeroClearsDeadline(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	go func() {
		// Answer the first (bounded) call promptly.
		_, _, _ = ReadMessage(server)
		_ = WriteMessage(server, Header{Version: Version, Type: MsgInitRep, Seq: 1}, InitRep{OK: true})
		// Answer the second call only after the first call's stale
		// deadline has long passed.
		_, _, _ = ReadMessage(server)
		time.Sleep(150 * time.Millisecond)
		_ = WriteMessage(server, Header{Version: Version, Type: MsgCliMetaReq, Seq: 2}, CliMetaReq{})
	}()

	c := NewConn(client)
	c.SetTimeout(50 * time.Millisecond)
	var rep InitRep
	if err := c.Call(MsgInitReq, InitReq{AppID: "x"}, MsgInitRep, &rep); err != nil {
		t.Fatalf("bounded call: %v", err)
	}
	c.SetTimeout(0) // disable the bound; must clear the armed deadline
	var req CliMetaReq
	if err := c.Call(MsgCliMetaRep, CliMetaRep{}, MsgCliMetaReq, &req); err != nil {
		t.Fatalf("unbounded call after SetTimeout(0) failed: %v (stale deadline left armed?)", err)
	}
}

// TestConnSetTimeoutZeroLeavesForeignDeadlines pins the ownership rule:
// SetTimeout(0) clears only deadlines this Conn armed, never one some
// other owner (a server idle policy) set on the same stream.
func TestConnSetTimeoutZeroLeavesForeignDeadlines(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	// A server-side idle policy arms a deadline directly on the conn.
	if err := client.SetReadDeadline(time.Now().Add(60 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	c := NewConn(client)
	c.SetTimeout(0) // Conn never armed anything: must not clear the idle deadline
	_, _, err := c.Recv()
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Recv = %v, want the foreign idle deadline to fire", err)
	}
}

func TestConnTimeoutNoopOnPlainStream(t *testing.T) {
	var wire bytes.Buffer
	c := NewConn(&wire)
	c.SetTimeout(time.Millisecond) // bytes.Buffer has no deadlines
	if err := c.Send(MsgInitRep, InitRep{OK: true}); err != nil {
		t.Fatal(err)
	}
	var rep InitRep
	if err := NewConn(&wire).RecvInto(MsgInitRep, &rep); err != nil {
		t.Fatal(err)
	}
}
