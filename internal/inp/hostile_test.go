package inp

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"strings"
	"testing"
)

// TestReadMessageHostileLengthNoHugeAllocation pins the allocation
// behaviour for a hostile frame header: a peer claiming the full 64 MB
// MaxBody and then hanging up must not cost the reader a 64 MB buffer —
// the body grows in maxBodyReserve steps as bytes actually arrive, so a
// truncated stream fails after at most one ~1 MB step. The bound below
// leaves megabytes of headroom so runtime noise cannot flake it; the
// regression it catches is the original make([]byte, n) sized straight
// from the wire.
func TestReadMessageHostileLengthNoHugeAllocation(t *testing.T) {
	var hdr [headerLen]byte
	copy(hdr[0:4], magic[:])
	hdr[4] = Version
	hdr[5] = uint8(MsgAppRep)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(MaxBody))

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, _, err := ReadMessage(bytes.NewReader(hdr[:]))
	runtime.ReadMemStats(&after)

	if err == nil {
		t.Fatal("truncated 64 MB-claiming frame read without error")
	}
	if !strings.Contains(err.Error(), "reading APP_REP body") {
		t.Fatalf("unexpected read error: %v", err)
	}
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 8<<20 {
		t.Fatalf("reading a truncated 64 MB-claiming frame allocated %d bytes", delta)
	}
}
