package inp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"fractal/internal/core"
)

// Binary body fast-path. JSON stays the wire default for inspectability,
// but the hot session bodies — the application exchange (AppReq/AppRep,
// PADDownloadReq/Rep) and the negotiation burst (InitReq/InitRep,
// CliMetaReq/CliMetaRep, PADMetaRep) — gain a hand-rolled binary codec
// behind a negotiated version flag: requests advertise decode capability
// in their (JSON-ignored) WireVersion field, and a peer that has proven
// Version2 support receives hot bodies as Version2 frames. Old peers
// never see a v2 frame and new peers fall back to JSON transparently,
// pinned semantically identical by differential round-trip fuzz
// (FuzzBinaryBodyDifferential).
//
// Wire format: strings are uvarint length + bytes; byte slices, string
// slices, and meta arrays use a presence-aware prefix (0 = nil, n+1 = n
// elements) so nil and empty survive the round trip exactly as JSON's
// null vs ""/[] do; ints are signed varints; float64s are 8 fixed
// big-endian IEEE-754 bytes; digests are raw fixed-width bytes.

const (
	// Version2 is the binary-body protocol revision. Headers carry it only
	// on frames whose body uses the binary codec; everything else stays
	// JSON at Version.
	Version2 = 2
	// spliceMin is the smallest []byte field worth splicing as its own
	// writev vector instead of copying into the assembly buffer.
	spliceMin = 4 << 10
)

// binaryMsgType reports whether t's body has a binary codec.
func binaryMsgType(t MsgType) bool {
	switch t {
	case MsgAppReq, MsgAppRep, MsgPADDownloadReq, MsgPADDownloadRep,
		MsgInitReq, MsgInitRep, MsgCliMetaReq, MsgCliMetaRep, MsgPADMetaRep:
		return true
	}
	return false
}

// binaryEncodable reports whether body is a value the binary codec for t
// understands (the matching struct, by value or pointer).
func binaryEncodable(t MsgType, body interface{}) bool {
	switch t {
	case MsgAppReq:
		switch body.(type) {
		case AppReq, *AppReq:
			return true
		}
	case MsgAppRep:
		switch body.(type) {
		case AppRep, *AppRep:
			return true
		}
	case MsgPADDownloadReq:
		switch body.(type) {
		case PADDownloadReq, *PADDownloadReq:
			return true
		}
	case MsgPADDownloadRep:
		switch body.(type) {
		case PADDownloadRep, *PADDownloadRep:
			return true
		}
	case MsgInitReq:
		switch body.(type) {
		case InitReq, *InitReq:
			return true
		}
	case MsgInitRep:
		switch body.(type) {
		case InitRep, *InitRep:
			return true
		}
	case MsgCliMetaReq:
		switch body.(type) {
		case CliMetaReq, *CliMetaReq:
			return true
		}
	case MsgCliMetaRep:
		switch body.(type) {
		case CliMetaRep, *CliMetaRep:
			return true
		}
	case MsgPADMetaRep:
		switch body.(type) {
		case PADMetaRep, *PADMetaRep:
			return true
		}
	}
	return false
}

// appendFrameBinary appends one complete Version2 frame. On error every
// queued-but-unfinished byte (including splice vectors) is rolled back so
// the batch survives intact.
//
//fractal:hotpath binary bodies are assembled here on every hot exchange
func (fw *FrameWriter) appendFrameBinary(h Header, body interface{}) error {
	es := fw.state()
	start := es.buf.Len()
	vecs, ext := len(fw.vecs), fw.extLen
	es.buf.Write(zeroHeader[:]) // reserve the header slot
	if err := fw.appendBinaryBody(h.Type, body); err != nil {
		es.buf.SetBytes(es.buf.Bytes()[:start])
		fw.vecs = fw.vecs[:vecs]
		fw.extLen = ext
		return err
	}
	n := es.buf.Len() - start - headerLen + (fw.extLen - ext)
	if n > MaxBody {
		es.buf.SetBytes(es.buf.Bytes()[:start])
		fw.vecs = fw.vecs[:vecs]
		fw.extLen = ext
		return fmt.Errorf("inp: %v body of %d bytes exceeds limit", h.Type, n)
	}
	patchHeader(es.buf.Bytes()[start:start+headerLen], h, uint32(n))
	return nil
}

// appendBinaryBody dispatches to the per-type field encoders.
func (fw *FrameWriter) appendBinaryBody(t MsgType, body interface{}) error {
	switch t {
	case MsgAppReq:
		if m, ok := toAppReq(body); ok {
			fw.appendString(m.AppID)
			fw.appendString(m.Resource)
			fw.appendStrings(m.ProtocolIDs)
			fw.appendInt(m.HaveVersion)
			fw.appendInt(m.WireVersion)
			return nil
		}
	case MsgAppRep:
		if m, ok := toAppRep(body); ok {
			fw.appendString(m.Resource)
			fw.appendInt(m.Version)
			fw.appendString(m.PADID)
			fw.appendBlob(m.Payload)
			return nil
		}
	case MsgPADDownloadReq:
		if m, ok := toPADDownloadReq(body); ok {
			fw.appendString(m.PADID)
			fw.appendString(m.URL)
			fw.appendInt(m.WireVersion)
			return nil
		}
	case MsgPADDownloadRep:
		if m, ok := toPADDownloadRep(body); ok {
			fw.appendString(m.PADID)
			fw.appendBlob(m.Module)
			return nil
		}
	case MsgInitReq:
		if m, ok := toInitReq(body); ok {
			fw.appendString(m.AppID)
			fw.appendString(m.Resource)
			fw.appendString(m.ClientID)
			fw.appendInt(m.WireVersion)
			return nil
		}
	case MsgInitRep:
		if m, ok := toInitRep(body); ok {
			fw.appendBool(m.OK)
			fw.appendString(m.Reason)
			return nil
		}
	case MsgCliMetaReq:
		if m, ok := toCliMetaReq(body); ok {
			fw.appendDevMeta(&m.Dev)
			fw.appendNtwkMeta(&m.Ntwk)
			return nil
		}
	case MsgCliMetaRep:
		if m, ok := toCliMetaRep(body); ok {
			fw.appendDevMeta(&m.Dev)
			fw.appendNtwkMeta(&m.Ntwk)
			fw.appendInt(m.SessionRequests)
			return nil
		}
	case MsgPADMetaRep:
		if m, ok := toPADMetaRep(body); ok {
			if m.PADs == nil {
				fw.appendUvarint(0)
				return nil
			}
			fw.appendUvarint(uint64(len(m.PADs)) + 1)
			for i := range m.PADs {
				fw.appendPADMeta(&m.PADs[i])
			}
			return nil
		}
	}
	return fmt.Errorf("inp: no binary codec for %v body of type %T", t, body)
}

//fractal:hotpath device metadata rides every negotiation burst
func (fw *FrameWriter) appendDevMeta(d *core.DevMeta) {
	fw.appendString(d.OSType)
	fw.appendString(d.CPUType)
	fw.appendFloat(d.CPUMHz)
	fw.appendInt(d.MemMB)
}

//fractal:hotpath network metadata rides every negotiation burst
func (fw *FrameWriter) appendNtwkMeta(n *core.NtwkMeta) {
	fw.appendString(n.NetworkType)
	fw.appendFloat(n.BandwidthKbps)
}

//fractal:hotpath PAD metadata arrays ride every PAD_META_REP
func (fw *FrameWriter) appendPADMeta(p *core.PADMeta) {
	fw.appendString(p.ID)
	fw.appendString(p.Version)
	fw.appendString(p.Protocol)
	fw.appendInt64(p.Size)
	fw.appendInt64(int64(p.Overhead.ServerCompStd))
	fw.appendInt64(int64(p.Overhead.ClientCompStd))
	fw.appendInt64(p.Overhead.TrafficBytes)
	fw.appendInt64(p.Overhead.UpstreamBytes)
	fw.es.buf.Write(p.Digest[:])
	fw.appendString(p.URL)
	fw.appendString(p.Parent)
	fw.appendStrings(p.Children)
	fw.appendString(p.Alias)
}

func toAppReq(body interface{}) (*AppReq, bool) {
	switch m := body.(type) {
	case *AppReq:
		return m, true
	case AppReq:
		return &m, true
	}
	return nil, false
}

func toAppRep(body interface{}) (*AppRep, bool) {
	switch m := body.(type) {
	case *AppRep:
		return m, true
	case AppRep:
		return &m, true
	}
	return nil, false
}

func toPADDownloadReq(body interface{}) (*PADDownloadReq, bool) {
	switch m := body.(type) {
	case *PADDownloadReq:
		return m, true
	case PADDownloadReq:
		return &m, true
	}
	return nil, false
}

func toPADDownloadRep(body interface{}) (*PADDownloadRep, bool) {
	switch m := body.(type) {
	case *PADDownloadRep:
		return m, true
	case PADDownloadRep:
		return &m, true
	}
	return nil, false
}

func toInitReq(body interface{}) (*InitReq, bool) {
	switch m := body.(type) {
	case *InitReq:
		return m, true
	case InitReq:
		return &m, true
	}
	return nil, false
}

func toInitRep(body interface{}) (*InitRep, bool) {
	switch m := body.(type) {
	case *InitRep:
		return m, true
	case InitRep:
		return &m, true
	}
	return nil, false
}

func toCliMetaReq(body interface{}) (*CliMetaReq, bool) {
	switch m := body.(type) {
	case *CliMetaReq:
		return m, true
	case CliMetaReq:
		return &m, true
	}
	return nil, false
}

func toCliMetaRep(body interface{}) (*CliMetaRep, bool) {
	switch m := body.(type) {
	case *CliMetaRep:
		return m, true
	case CliMetaRep:
		return &m, true
	}
	return nil, false
}

func toPADMetaRep(body interface{}) (*PADMetaRep, bool) {
	switch m := body.(type) {
	case *PADMetaRep:
		return m, true
	case PADMetaRep:
		return &m, true
	}
	return nil, false
}

// --- encode primitives ---

//fractal:hotpath varint fields are appended here
func (fw *FrameWriter) appendUvarint(x uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	fw.es.buf.Write(tmp[:n])
}

//fractal:hotpath signed fields are appended here
func (fw *FrameWriter) appendInt(v int) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], int64(v))
	fw.es.buf.Write(tmp[:n])
}

//fractal:hotpath 64-bit counters and durations are appended here
func (fw *FrameWriter) appendInt64(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	fw.es.buf.Write(tmp[:n])
}

//fractal:hotpath boolean fields are appended here
func (fw *FrameWriter) appendBool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	fw.es.buf.WriteByte(b)
}

// appendFloat encodes f as 8 fixed big-endian IEEE-754 bytes — unlike
// JSON it round-trips NaN and the infinities.
//
//fractal:hotpath metadata rates are appended here
func (fw *FrameWriter) appendFloat(f float64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(f))
	fw.es.buf.Write(tmp[:])
}

//fractal:hotpath string fields are appended here
func (fw *FrameWriter) appendString(s string) {
	fw.appendUvarint(uint64(len(s)))
	fw.es.buf.WriteString(s)
}

// appendBlob encodes b with a presence-aware prefix (0 = nil, n+1 = n
// bytes). Large payloads splice as their own writev vector instead of
// being copied; they must stay unmodified until Flush.
//
//fractal:hotpath payload and module bodies are appended here
func (fw *FrameWriter) appendBlob(b []byte) {
	if b == nil {
		fw.appendUvarint(0)
		return
	}
	fw.appendUvarint(uint64(len(b)) + 1)
	if len(b) >= spliceMin {
		fw.splice(b)
		return
	}
	fw.es.buf.Write(b)
}

//fractal:hotpath protocol-id lists are appended here
func (fw *FrameWriter) appendStrings(ss []string) {
	if ss == nil {
		fw.appendUvarint(0)
		return
	}
	fw.appendUvarint(uint64(len(ss)) + 1)
	for _, s := range ss {
		fw.appendString(s)
	}
}

// --- decode ---

var errBinTruncated = errors.New("truncated field")

// binReader decodes the binary wire format. Every wire-declared length is
// bound-checked against the bytes actually present before any allocation
// is sized from it, so a hostile length cannot inflate memory.
type binReader struct {
	b   []byte
	off int
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errBinTruncated
	}
	r.off += n
	return v, nil
}

func (r *binReader) int_() (int, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, errBinTruncated
	}
	r.off += n
	return int(v), nil
}

func (r *binReader) int64_() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, errBinTruncated
	}
	r.off += n
	return v, nil
}

func (r *binReader) bool_() (bool, error) {
	if r.off >= len(r.b) {
		return false, errBinTruncated
	}
	b := r.b[r.off]
	r.off++
	if b > 1 {
		return false, fmt.Errorf("bad bool byte %d", b)
	}
	return b == 1, nil
}

func (r *binReader) float() (float64, error) {
	if len(r.b)-r.off < 8 {
		return 0, errBinTruncated
	}
	f := math.Float64frombits(binary.BigEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return f, nil
}

// fixed copies an exact-width field (e.g. a digest) out of the raw body.
func (r *binReader) fixed(dst []byte) error {
	if len(r.b)-r.off < len(dst) {
		return errBinTruncated
	}
	copy(dst, r.b[r.off:])
	r.off += len(dst)
	return nil
}

func (r *binReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)-r.off) {
		return "", errBinTruncated
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *binReader) blob() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil || n == 0 {
		return nil, err
	}
	n--
	if n > uint64(len(r.b)-r.off) {
		return nil, errBinTruncated
	}
	// Copied out rather than aliased: raw bodies live in a
	// connection-scoped buffer the next Recv overwrites, while decoded
	// payloads outlive it.
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	return out, nil
}

func (r *binReader) strs() ([]string, error) {
	n, err := r.uvarint()
	if err != nil || n == 0 {
		return nil, err
	}
	n--
	if n > uint64(len(r.b)-r.off) { // each element costs at least one byte
		return nil, errBinTruncated
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodeRaw decodes a raw body returned by Recv into v according to the
// header's wire version: Version2 bodies use the binary codec, all
// others JSON.
func DecodeRaw(h Header, raw []byte, v interface{}) error {
	if h.Version >= Version2 {
		return decodeBinaryBody(h.Type, raw, v)
	}
	return DecodeBody(raw, v)
}

// decodeBinaryBody decodes a Version2 raw body into v, which must be a
// pointer to the matching struct. Trailing bytes are rejected.
func decodeBinaryBody(t MsgType, raw []byte, v interface{}) error {
	r := binReader{b: raw}
	var err error
	ok := true
	switch t {
	case MsgAppReq:
		if m, isT := v.(*AppReq); isT {
			err = r.decodeAppReq(m)
		} else {
			ok = false
		}
	case MsgAppRep:
		if m, isT := v.(*AppRep); isT {
			err = r.decodeAppRep(m)
		} else {
			ok = false
		}
	case MsgPADDownloadReq:
		if m, isT := v.(*PADDownloadReq); isT {
			err = r.decodePADDownloadReq(m)
		} else {
			ok = false
		}
	case MsgPADDownloadRep:
		if m, isT := v.(*PADDownloadRep); isT {
			err = r.decodePADDownloadRep(m)
		} else {
			ok = false
		}
	case MsgInitReq:
		if m, isT := v.(*InitReq); isT {
			err = r.decodeInitReq(m)
		} else {
			ok = false
		}
	case MsgInitRep:
		if m, isT := v.(*InitRep); isT {
			err = r.decodeInitRep(m)
		} else {
			ok = false
		}
	case MsgCliMetaReq:
		if m, isT := v.(*CliMetaReq); isT {
			err = r.decodeCliMetaReq(m)
		} else {
			ok = false
		}
	case MsgCliMetaRep:
		if m, isT := v.(*CliMetaRep); isT {
			err = r.decodeCliMetaRep(m)
		} else {
			ok = false
		}
	case MsgPADMetaRep:
		if m, isT := v.(*PADMetaRep); isT {
			err = r.decodePADMetaRep(m)
		} else {
			ok = false
		}
	default:
		return fmt.Errorf("inp: no binary codec for %v", t)
	}
	if !ok {
		return fmt.Errorf("inp: decoding %v binary body into %T", t, v)
	}
	if err != nil {
		return fmt.Errorf("inp: decoding %v binary body: %w", t, err)
	}
	if r.off != len(raw) {
		return fmt.Errorf("inp: %v binary body has %d trailing bytes", t, len(raw)-r.off)
	}
	return nil
}

func (r *binReader) decodeAppReq(m *AppReq) (err error) {
	if m.AppID, err = r.str(); err != nil {
		return err
	}
	if m.Resource, err = r.str(); err != nil {
		return err
	}
	if m.ProtocolIDs, err = r.strs(); err != nil {
		return err
	}
	if m.HaveVersion, err = r.int_(); err != nil {
		return err
	}
	m.WireVersion, err = r.int_()
	return err
}

func (r *binReader) decodeAppRep(m *AppRep) (err error) {
	if m.Resource, err = r.str(); err != nil {
		return err
	}
	if m.Version, err = r.int_(); err != nil {
		return err
	}
	if m.PADID, err = r.str(); err != nil {
		return err
	}
	m.Payload, err = r.blob()
	return err
}

func (r *binReader) decodePADDownloadReq(m *PADDownloadReq) (err error) {
	if m.PADID, err = r.str(); err != nil {
		return err
	}
	if m.URL, err = r.str(); err != nil {
		return err
	}
	m.WireVersion, err = r.int_()
	return err
}

func (r *binReader) decodePADDownloadRep(m *PADDownloadRep) (err error) {
	if m.PADID, err = r.str(); err != nil {
		return err
	}
	m.Module, err = r.blob()
	return err
}

func (r *binReader) decodeInitReq(m *InitReq) (err error) {
	if m.AppID, err = r.str(); err != nil {
		return err
	}
	if m.Resource, err = r.str(); err != nil {
		return err
	}
	if m.ClientID, err = r.str(); err != nil {
		return err
	}
	m.WireVersion, err = r.int_()
	return err
}

func (r *binReader) decodeInitRep(m *InitRep) (err error) {
	if m.OK, err = r.bool_(); err != nil {
		return err
	}
	m.Reason, err = r.str()
	return err
}

func (r *binReader) decodeDevMeta(d *core.DevMeta) (err error) {
	if d.OSType, err = r.str(); err != nil {
		return err
	}
	if d.CPUType, err = r.str(); err != nil {
		return err
	}
	if d.CPUMHz, err = r.float(); err != nil {
		return err
	}
	d.MemMB, err = r.int_()
	return err
}

func (r *binReader) decodeNtwkMeta(n *core.NtwkMeta) (err error) {
	if n.NetworkType, err = r.str(); err != nil {
		return err
	}
	n.BandwidthKbps, err = r.float()
	return err
}

func (r *binReader) decodeCliMetaReq(m *CliMetaReq) (err error) {
	if err = r.decodeDevMeta(&m.Dev); err != nil {
		return err
	}
	return r.decodeNtwkMeta(&m.Ntwk)
}

func (r *binReader) decodeCliMetaRep(m *CliMetaRep) (err error) {
	if err = r.decodeDevMeta(&m.Dev); err != nil {
		return err
	}
	if err = r.decodeNtwkMeta(&m.Ntwk); err != nil {
		return err
	}
	m.SessionRequests, err = r.int_()
	return err
}

func (r *binReader) decodePADMeta(p *core.PADMeta) (err error) {
	if p.ID, err = r.str(); err != nil {
		return err
	}
	if p.Version, err = r.str(); err != nil {
		return err
	}
	if p.Protocol, err = r.str(); err != nil {
		return err
	}
	if p.Size, err = r.int64_(); err != nil {
		return err
	}
	var d int64
	if d, err = r.int64_(); err != nil {
		return err
	}
	p.Overhead.ServerCompStd = time.Duration(d)
	if d, err = r.int64_(); err != nil {
		return err
	}
	p.Overhead.ClientCompStd = time.Duration(d)
	if p.Overhead.TrafficBytes, err = r.int64_(); err != nil {
		return err
	}
	if p.Overhead.UpstreamBytes, err = r.int64_(); err != nil {
		return err
	}
	if err = r.fixed(p.Digest[:]); err != nil {
		return err
	}
	if p.URL, err = r.str(); err != nil {
		return err
	}
	if p.Parent, err = r.str(); err != nil {
		return err
	}
	if p.Children, err = r.strs(); err != nil {
		return err
	}
	p.Alias, err = r.str()
	return err
}

func (r *binReader) decodePADMetaRep(m *PADMetaRep) error {
	n, err := r.uvarint()
	if err != nil || n == 0 {
		m.PADs = nil
		return err
	}
	n--
	// Each PADMeta costs well over one byte on the wire; one is a safe
	// floor for pre-sizing against a hostile count.
	if n > uint64(len(r.b)-r.off) {
		return errBinTruncated
	}
	m.PADs = make([]core.PADMeta, n)
	for i := range m.PADs {
		if err := r.decodePADMeta(&m.PADs[i]); err != nil {
			return err
		}
	}
	return nil
}
