package inp

import (
	"bytes"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"fractal/internal/core"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := InitReq{AppID: "webapp", Resource: "page-001"}
	if err := WriteMessage(&buf, Header{Version: Version, Type: MsgInitReq, Seq: 7}, want); err != nil {
		t.Fatal(err)
	}
	h, raw, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgInitReq || h.Seq != 7 || h.Version != Version {
		t.Fatalf("header = %+v", h)
	}
	var got InitReq
	if err := DecodeBody(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("body = %+v, want %+v", got, want)
	}
}

func TestAllMessageTypesRoundTrip(t *testing.T) {
	bodies := map[MsgType]interface{}{
		MsgInitReq:        InitReq{AppID: "a", Resource: "r"},
		MsgInitRep:        InitRep{OK: true},
		MsgCliMetaReq:     CliMetaReq{},
		MsgCliMetaRep:     CliMetaRep{Dev: core.DevMeta{OSType: "os", CPUType: "c", CPUMHz: 500, MemMB: 64}, Ntwk: core.NtwkMeta{NetworkType: "LAN", BandwidthKbps: 1000}, SessionRequests: 75},
		MsgPADMetaRep:     PADMetaRep{PADs: []core.PADMeta{{ID: "pad-gzip", Protocol: "gzip", URL: "/pads/pad-gzip"}}},
		MsgPADDownloadReq: PADDownloadReq{PADID: "pad-gzip", URL: "/pads/pad-gzip"},
		MsgPADDownloadRep: PADDownloadRep{PADID: "pad-gzip", Module: []byte{1, 2, 3}},
		MsgAppReq:         AppReq{AppID: "a", Resource: "r", ProtocolIDs: []string{"pad-gzip"}, HaveVersion: 1},
		MsgAppRep:         AppRep{Resource: "r", Version: 2, PADID: "pad-gzip", Payload: []byte{9}},
		MsgError:          ErrorRep{Message: "boom"},
	}
	var buf bytes.Buffer
	seq := uint32(0)
	for mt, body := range bodies {
		seq++
		if err := WriteMessage(&buf, Header{Version: Version, Type: mt, Seq: seq}, body); err != nil {
			t.Fatalf("%v: %v", mt, err)
		}
	}
	for i := 0; i < len(bodies); i++ {
		h, _, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if _, ok := bodies[h.Type]; !ok {
			t.Fatalf("read unexpected type %v", h.Type)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes", buf.Len())
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if MsgInitReq.String() != "INIT_REQ" || MsgPADMetaRep.String() != "PAD_META_REP" {
		t.Fatal("paper message names not preserved")
	}
	if !strings.HasPrefix(MsgType(200).String(), "MSG(") {
		t.Fatal("unknown type string")
	}
}

func TestWriteMessageRejectsInvalidType(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Header{Version: Version, Type: MsgInvalid}, nil); err == nil {
		t.Fatal("invalid type written")
	}
	if err := WriteMessage(&buf, Header{Version: Version, Type: msgMax}, nil); err == nil {
		t.Fatal("out-of-range type written")
	}
}

func TestReadMessageRejectsCorruptFrames(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, Header{Version: Version, Type: MsgInitRep, Seq: 1}, InitRep{OK: true}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, _, err := ReadMessage(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), good...)
	bad[4] = 99
	if _, _, err := ReadMessage(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Unknown type.
	bad = append([]byte(nil), good...)
	bad[5] = 250
	if _, _, err := ReadMessage(bytes.NewReader(bad)); err == nil {
		t.Error("unknown type accepted")
	}
	// Oversized length.
	bad = append([]byte(nil), good...)
	binary.BigEndian.PutUint32(bad[12:16], MaxBody+1)
	if _, _, err := ReadMessage(bytes.NewReader(bad)); err == nil {
		t.Error("oversized body accepted")
	}
	// Truncated body.
	if _, _, err := ReadMessage(bytes.NewReader(good[:len(good)-2])); err == nil {
		t.Error("truncated body accepted")
	}
	// Truncated header.
	if _, _, err := ReadMessage(bytes.NewReader(good[:8])); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestConnCallOverPipe(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	done := make(chan error, 1)
	go func() {
		sc := NewConn(server)
		var req InitReq
		if err := sc.RecvInto(MsgInitReq, &req); err != nil {
			done <- err
			return
		}
		if req.AppID != "webapp" {
			done <- &net.AddrError{Err: "wrong app", Addr: req.AppID}
			return
		}
		done <- sc.Send(MsgInitRep, InitRep{OK: true})
	}()
	cc := NewConn(client)
	var rep InitRep
	if err := cc.Call(MsgInitReq, InitReq{AppID: "webapp", Resource: "r"}, MsgInitRep, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatal("negative reply")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConnPeerErrorSurfaces(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		sc := NewConn(server)
		if _, _, err := sc.Recv(); err != nil {
			return
		}
		_ = sc.SendError("negotiation refused")
	}()
	cc := NewConn(client)
	var rep InitRep
	err := cc.Call(MsgInitReq, InitReq{AppID: "x"}, MsgInitRep, &rep)
	if err == nil || !strings.Contains(err.Error(), "negotiation refused") {
		t.Fatalf("err = %v, want peer error", err)
	}
}

func TestConnWrongTypeRejected(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		sc := NewConn(server)
		if _, _, err := sc.Recv(); err != nil {
			return
		}
		_ = sc.Send(MsgAppRep, AppRep{})
	}()
	cc := NewConn(client)
	var rep InitRep
	err := cc.Call(MsgInitReq, InitReq{AppID: "x"}, MsgInitRep, &rep)
	if err == nil || !strings.Contains(err.Error(), "expected INIT_REP") {
		t.Fatalf("err = %v, want type mismatch", err)
	}
}

func TestConnSequenceNumbersIncrease(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	for i := 0; i < 3; i++ {
		if err := c.Send(MsgInitRep, InitRep{OK: true}); err != nil {
			t.Fatal(err)
		}
	}
	var last uint32
	for i := 0; i < 3; i++ {
		h, _, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if h.Seq <= last {
			t.Fatalf("seq %d not increasing after %d", h.Seq, last)
		}
		last = h.Seq
	}
}

// Property: arbitrary InitReq bodies survive the frame round trip.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(app, res string, seq uint32) bool {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, Header{Version: Version, Type: MsgInitReq, Seq: seq}, InitReq{AppID: app, Resource: res}); err != nil {
			return false
		}
		h, raw, err := ReadMessage(&buf)
		if err != nil || h.Seq != seq {
			return false
		}
		var got InitReq
		if err := DecodeBody(raw, &got); err != nil {
			return false
		}
		return got.AppID == app && got.Resource == res
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ReadMessage never panics on arbitrary bytes.
func TestReadMessageGarbageNeverPanicsProperty(t *testing.T) {
	f := func(junk []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadMessage panicked: %v", r)
			}
		}()
		_, _, _ = ReadMessage(bytes.NewReader(junk))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
