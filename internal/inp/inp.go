// Package inp implements the Interactive Negotiation Protocol of Section
// 3.3 (Figure 4): the framed message exchange between client, adaptation
// proxy, CDN, and application server. Every packet carries an INP header
// maintaining protocol integrity (magic, version, type, sequence number,
// body length); bodies are JSON for inspectability.
package inp

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"sync"

	"fractal/internal/arena"
	"fractal/internal/core"
)

// MsgType identifies an INP message (Figure 4's message formats).
type MsgType uint8

// The message types of the negotiation and application exchanges.
const (
	MsgInvalid MsgType = iota
	MsgInitReq
	MsgInitRep
	MsgCliMetaReq
	MsgCliMetaRep
	MsgPADMetaRep
	MsgPADDownloadReq
	MsgPADDownloadRep
	MsgAppReq
	MsgAppRep
	MsgError
	MsgAppMetaPush
	MsgAppMetaAck
	msgMax
)

var msgNames = map[MsgType]string{
	MsgInitReq:        "INIT_REQ",
	MsgInitRep:        "INIT_REP",
	MsgCliMetaReq:     "CLI_META_REQ",
	MsgCliMetaRep:     "CLI_META_REP",
	MsgPADMetaRep:     "PAD_META_REP",
	MsgPADDownloadReq: "PAD_DOWNLOAD_REQ",
	MsgPADDownloadRep: "PAD_DOWNLOAD_REP",
	MsgAppReq:         "APP_REQ",
	MsgAppRep:         "APP_REP",
	MsgError:          "ERROR",
	MsgAppMetaPush:    "APP_META_PUSH",
	MsgAppMetaAck:     "APP_META_ACK",
}

// String returns the paper's message name.
func (t MsgType) String() string {
	if n, ok := msgNames[t]; ok {
		return n
	}
	return fmt.Sprintf("MSG(%d)", uint8(t))
}

// Protocol constants.
const (
	// Version is the INP protocol version carried in every header.
	Version = 1
	// MaxBody bounds a message body; larger frames are rejected before
	// allocation.
	MaxBody = 64 << 20
	// headerLen is the fixed frame header size: magic(4) version(1)
	// type(1) reserved(2) seq(4) length(4).
	headerLen = 16
)

var magic = [4]byte{'I', 'N', 'P', '1'}

// Header is the INP header segment present in each packet.
type Header struct {
	Version uint8
	Type    MsgType
	Seq     uint32
}

// encodeState is a pooled frame-assembly buffer with a JSON encoder bound
// to it, so a frame (header + body) is built contiguously with no
// per-message allocations on the steady state. Its storage comes from the
// arena and is returned on put, so the retention policy (size classes,
// oversized frames dropped) lives in one place.
type encodeState struct {
	buf arena.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() interface{} {
	es := &encodeState{}
	es.enc = json.NewEncoder(&es.buf)
	return es
}}

var zeroHeader [headerLen]byte

// putEncState returns an encode state to the pool. A named function rather
// than a deferred closure so the hot framing path does not allocate a
// capturing closure per message.
func putEncState(es *encodeState) {
	es.buf.Release()
	encPool.Put(es)
}

// patchHeader backfills a reserved header slot once the body length is
// known.
func patchHeader(hdr []byte, h Header, n uint32) {
	copy(hdr[0:4], magic[:])
	hdr[4] = h.Version
	hdr[5] = uint8(h.Type)
	binary.BigEndian.PutUint32(hdr[8:12], h.Seq)
	binary.BigEndian.PutUint32(hdr[12:16], n)
}

// appendFrameJSON appends one complete framed JSON message to buf; enc
// must be the encoder bound to buf. On error the buffer is restored to its
// prior length, so a batch of already-queued frames survives intact.
//
//fractal:hotpath every JSON frame is assembled here
func appendFrameJSON(buf *arena.Buffer, enc *json.Encoder, h Header, body interface{}) error {
	start := buf.Len()
	buf.Write(zeroHeader[:]) // reserve the header slot
	// Encoder.Encode emits exactly json.Marshal's bytes plus one newline,
	// so the frames stay byte-identical to the unpooled encoding.
	if err := enc.Encode(body); err != nil {
		buf.SetBytes(buf.Bytes()[:start])
		return fmt.Errorf("inp: encoding %v body: %w", h.Type, err)
	}
	frame := buf.Bytes()
	frame = frame[:len(frame)-1] // drop the encoder's trailing newline
	buf.SetBytes(frame)
	n := len(frame) - start - headerLen
	if n > MaxBody {
		buf.SetBytes(frame[:start])
		return fmt.Errorf("inp: %v body of %d bytes exceeds limit", h.Type, n)
	}
	patchHeader(frame[start:start+headerLen], h, uint32(n))
	return nil
}

// WriteMessage frames and writes one message as a single Write call.
//
//fractal:hotpath every INP exchange writes through here
func WriteMessage(w io.Writer, h Header, body interface{}) error {
	if h.Type == MsgInvalid || h.Type >= msgMax {
		return fmt.Errorf("inp: cannot write message of type %v", h.Type)
	}
	es := encPool.Get().(*encodeState)
	defer putEncState(es)
	if err := appendFrameJSON(&es.buf, es.enc, h, body); err != nil {
		return err
	}
	if _, err := w.Write(es.buf.Bytes()); err != nil {
		return fmt.Errorf("inp: writing %v frame: %w", h.Type, err)
	}
	return nil
}

// maxBodyReserve caps how much body memory is allocated ahead of bytes
// actually arriving: a header may claim up to MaxBody, but the buffer only
// grows in maxBodyReserve steps as the stream delivers, so a hostile
// header alone cannot size a 64 MB allocation.
const maxBodyReserve = 1 << 20

// parseHeader validates a raw header and returns it with the body length.
// Version 1 is accepted on every type; Version2 only on the hot types
// that have a binary body codec.
func parseHeader(hdr []byte) (Header, uint32, error) {
	if [4]byte(hdr[0:4]) != magic {
		return Header{}, 0, fmt.Errorf("inp: bad magic %q", hdr[0:4])
	}
	h := Header{Version: hdr[4], Type: MsgType(hdr[5]), Seq: binary.BigEndian.Uint32(hdr[8:12])}
	if h.Version != Version && !(h.Version == Version2 && binaryMsgType(h.Type)) {
		return Header{}, 0, fmt.Errorf("inp: unsupported protocol version %d", h.Version)
	}
	if h.Type == MsgInvalid || h.Type >= msgMax {
		return Header{}, 0, fmt.Errorf("inp: unknown message type %d", hdr[5])
	}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > MaxBody {
		return Header{}, 0, fmt.Errorf("inp: %v body of %d bytes exceeds limit", h.Type, n)
	}
	return h, n, nil
}

// ReadMessage reads one framed message, returning its header and raw body.
//
//fractal:hotpath every INP exchange reads through here
func ReadMessage(r io.Reader) (Header, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Header{}, nil, fmt.Errorf("inp: reading header: %w", err)
	}
	h, n, err := parseHeader(hdr[:])
	if err != nil {
		return Header{}, nil, err
	}
	reserve := n
	if reserve > maxBodyReserve {
		reserve = maxBodyReserve
	}
	body := make([]byte, 0, reserve)
	for len(body) < int(n) {
		step := int(n) - len(body)
		if step > maxBodyReserve {
			step = maxBodyReserve
		}
		off := len(body)
		body = slices.Grow(body, step)[:off+step]
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return Header{}, nil, fmt.Errorf("inp: reading %v body: %w", h.Type, err)
		}
	}
	return h, body, nil
}

// DecodeBody unmarshals a raw body into a typed message.
func DecodeBody(raw []byte, v interface{}) error {
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("inp: decoding body: %w", err)
	}
	return nil
}

// --- message bodies (Figure 4, bottom) ---

// InitReq opens a negotiation; its payload is the application request.
// ClientID optionally identifies an authenticated principal for the
// proxy's access-control policy (empty = anonymous).
type InitReq struct {
	AppID    string `json:"app_id"`
	Resource string `json:"resource"`
	ClientID string `json:"client_id,omitempty"`
	// WireVersion advertises the highest INP body encoding the client can
	// decode. Old decoders ignore the field; omitempty keeps old frames
	// byte-identical.
	WireVersion int `json:"inp_version,omitempty"`
}

// InitRep acknowledges INIT_REQ.
type InitRep struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// CliMetaReq carries empty DevMeta/NtwkMeta templates "to be filled by
// the client".
type CliMetaReq struct {
	Dev  core.DevMeta  `json:"dev"`
	Ntwk core.NtwkMeta `json:"ntwk"`
}

// CliMetaRep returns the client's probed metadata plus the expected
// session length used to amortize PAD downloads.
type CliMetaRep struct {
	Dev             core.DevMeta  `json:"dev"`
	Ntwk            core.NtwkMeta `json:"ntwk"`
	SessionRequests int           `json:"session_requests"`
}

// PADMetaRep delivers the negotiated PAD metadata array (redacted: no tree
// links), with digests and URLs inserted by the distribution manager.
type PADMetaRep struct {
	PADs []core.PADMeta `json:"pads"`
}

// PADDownloadReq asks a PAD server/edge for a module by id.
type PADDownloadReq struct {
	PADID string `json:"pad_id"`
	URL   string `json:"url"`
	// WireVersion advertises the highest INP frame version the requester
	// decodes (0 or 1 = JSON only). Old peers' JSON decoders ignore the
	// field; new peers answer hot replies in binary when it is >= Version2.
	WireVersion int `json:"inp_version,omitempty"`
}

// PADDownloadRep returns the packed mobile-code module.
type PADDownloadRep struct {
	PADID  string `json:"pad_id"`
	Module []byte `json:"module"`
}

// AppReq starts (or continues) the application session, carrying the
// negotiated protocol identifications so the server selects matching PADs.
type AppReq struct {
	AppID       string   `json:"app_id"`
	Resource    string   `json:"resource"`
	ProtocolIDs []string `json:"protocol_ids"`
	// HaveVersion tells the server which version of the resource the
	// client already holds (0 = none), enabling differential encoding.
	HaveVersion int `json:"have_version"`
	// WireVersion advertises the highest INP frame version the requester
	// decodes, as on PADDownloadReq.
	WireVersion int `json:"inp_version,omitempty"`
}

// AppRep returns the adapted application content.
type AppRep struct {
	Resource string `json:"resource"`
	Version  int    `json:"version"`
	PADID    string `json:"pad_id"`
	Payload  []byte `json:"payload"`
}

// ErrorRep reports a failure to the peer.
type ErrorRep struct {
	Message string `json:"message"`
}

// AppMetaPush is the application server's topology push to the adaptation
// proxy ("The application server pushes new AppMeta to the negotiation
// manager when the protocol adaptation topology is first created or
// changed later").
type AppMetaPush struct {
	App core.AppMeta `json:"app"`
}

// AppMetaAck acknowledges a topology push.
type AppMetaAck struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}
