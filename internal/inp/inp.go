// Package inp implements the Interactive Negotiation Protocol of Section
// 3.3 (Figure 4): the framed message exchange between client, adaptation
// proxy, CDN, and application server. Every packet carries an INP header
// maintaining protocol integrity (magic, version, type, sequence number,
// body length); bodies are JSON for inspectability.
package inp

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"sync"

	"fractal/internal/core"
)

// MsgType identifies an INP message (Figure 4's message formats).
type MsgType uint8

// The message types of the negotiation and application exchanges.
const (
	MsgInvalid MsgType = iota
	MsgInitReq
	MsgInitRep
	MsgCliMetaReq
	MsgCliMetaRep
	MsgPADMetaRep
	MsgPADDownloadReq
	MsgPADDownloadRep
	MsgAppReq
	MsgAppRep
	MsgError
	MsgAppMetaPush
	MsgAppMetaAck
	msgMax
)

var msgNames = map[MsgType]string{
	MsgInitReq:        "INIT_REQ",
	MsgInitRep:        "INIT_REP",
	MsgCliMetaReq:     "CLI_META_REQ",
	MsgCliMetaRep:     "CLI_META_REP",
	MsgPADMetaRep:     "PAD_META_REP",
	MsgPADDownloadReq: "PAD_DOWNLOAD_REQ",
	MsgPADDownloadRep: "PAD_DOWNLOAD_REP",
	MsgAppReq:         "APP_REQ",
	MsgAppRep:         "APP_REP",
	MsgError:          "ERROR",
	MsgAppMetaPush:    "APP_META_PUSH",
	MsgAppMetaAck:     "APP_META_ACK",
}

// String returns the paper's message name.
func (t MsgType) String() string {
	if n, ok := msgNames[t]; ok {
		return n
	}
	return fmt.Sprintf("MSG(%d)", uint8(t))
}

// Protocol constants.
const (
	// Version is the INP protocol version carried in every header.
	Version = 1
	// MaxBody bounds a message body; larger frames are rejected before
	// allocation.
	MaxBody = 64 << 20
	// headerLen is the fixed frame header size: magic(4) version(1)
	// type(1) reserved(2) seq(4) length(4).
	headerLen = 16
)

var magic = [4]byte{'I', 'N', 'P', '1'}

// Header is the INP header segment present in each packet.
type Header struct {
	Version uint8
	Type    MsgType
	Seq     uint32
}

// frameBuffer is a pooled encode buffer with a JSON encoder bound to it,
// so a frame is assembled (header + body) and written in one Write with no
// per-message allocations on the steady state.
type frameBuffer struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// maxPooledFrame caps how large a buffer the pool retains; oversized
// frames (PAD module downloads) are returned to the allocator instead of
// pinning their capacity forever.
const maxPooledFrame = 64 << 10

var framePool = sync.Pool{New: func() interface{} {
	f := &frameBuffer{}
	f.enc = json.NewEncoder(&f.buf)
	return f
}}

var zeroHeader [headerLen]byte

// putFrame returns a frame buffer to the pool unless it grew past the
// retention cap. A named function rather than a deferred closure so the
// hot framing path does not allocate a capturing closure per message.
func putFrame(f *frameBuffer) {
	if f.buf.Cap() <= maxPooledFrame {
		framePool.Put(f)
	}
}

// WriteMessage frames and writes one message as a single Write call.
//
//fractal:hotpath every INP exchange writes through here
func WriteMessage(w io.Writer, h Header, body interface{}) error {
	if h.Type == MsgInvalid || h.Type >= msgMax {
		return fmt.Errorf("inp: cannot write message of type %v", h.Type)
	}
	f := framePool.Get().(*frameBuffer)
	defer putFrame(f)
	f.buf.Reset()
	f.buf.Write(zeroHeader[:]) // reserve the header slot
	// Encoder.Encode emits exactly json.Marshal's bytes plus one newline,
	// so the frames stay byte-identical to the unpooled encoding.
	if err := f.enc.Encode(body); err != nil {
		return fmt.Errorf("inp: encoding %v body: %w", h.Type, err)
	}
	frame := f.buf.Bytes()
	frame = frame[:len(frame)-1] // drop the encoder's trailing newline
	raw := frame[headerLen:]
	if len(raw) > MaxBody {
		return fmt.Errorf("inp: %v body of %d bytes exceeds limit", h.Type, len(raw))
	}
	copy(frame[0:4], magic[:])
	frame[4] = h.Version
	frame[5] = uint8(h.Type)
	binary.BigEndian.PutUint32(frame[8:12], h.Seq)
	binary.BigEndian.PutUint32(frame[12:16], uint32(len(raw)))
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("inp: writing %v frame: %w", h.Type, err)
	}
	return nil
}

// maxBodyReserve caps how much body memory is allocated ahead of bytes
// actually arriving: a header may claim up to MaxBody, but the buffer only
// grows in maxBodyReserve steps as the stream delivers, so a hostile
// header alone cannot size a 64 MB allocation.
const maxBodyReserve = 1 << 20

// ReadMessage reads one framed message, returning its header and raw body.
//
//fractal:hotpath every INP exchange reads through here
func ReadMessage(r io.Reader) (Header, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Header{}, nil, fmt.Errorf("inp: reading header: %w", err)
	}
	if [4]byte(hdr[0:4]) != magic {
		return Header{}, nil, fmt.Errorf("inp: bad magic %q", hdr[0:4])
	}
	h := Header{Version: hdr[4], Type: MsgType(hdr[5]), Seq: binary.BigEndian.Uint32(hdr[8:12])}
	if h.Version != Version {
		return Header{}, nil, fmt.Errorf("inp: unsupported protocol version %d", h.Version)
	}
	if h.Type == MsgInvalid || h.Type >= msgMax {
		return Header{}, nil, fmt.Errorf("inp: unknown message type %d", hdr[5])
	}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > MaxBody {
		return Header{}, nil, fmt.Errorf("inp: %v body of %d bytes exceeds limit", h.Type, n)
	}
	reserve := n
	if reserve > maxBodyReserve {
		reserve = maxBodyReserve
	}
	body := make([]byte, 0, reserve)
	for len(body) < int(n) {
		step := int(n) - len(body)
		if step > maxBodyReserve {
			step = maxBodyReserve
		}
		off := len(body)
		body = slices.Grow(body, step)[:off+step]
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return Header{}, nil, fmt.Errorf("inp: reading %v body: %w", h.Type, err)
		}
	}
	return h, body, nil
}

// DecodeBody unmarshals a raw body into a typed message.
func DecodeBody(raw []byte, v interface{}) error {
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("inp: decoding body: %w", err)
	}
	return nil
}

// --- message bodies (Figure 4, bottom) ---

// InitReq opens a negotiation; its payload is the application request.
// ClientID optionally identifies an authenticated principal for the
// proxy's access-control policy (empty = anonymous).
type InitReq struct {
	AppID    string `json:"app_id"`
	Resource string `json:"resource"`
	ClientID string `json:"client_id,omitempty"`
}

// InitRep acknowledges INIT_REQ.
type InitRep struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// CliMetaReq carries empty DevMeta/NtwkMeta templates "to be filled by
// the client".
type CliMetaReq struct {
	Dev  core.DevMeta  `json:"dev"`
	Ntwk core.NtwkMeta `json:"ntwk"`
}

// CliMetaRep returns the client's probed metadata plus the expected
// session length used to amortize PAD downloads.
type CliMetaRep struct {
	Dev             core.DevMeta  `json:"dev"`
	Ntwk            core.NtwkMeta `json:"ntwk"`
	SessionRequests int           `json:"session_requests"`
}

// PADMetaRep delivers the negotiated PAD metadata array (redacted: no tree
// links), with digests and URLs inserted by the distribution manager.
type PADMetaRep struct {
	PADs []core.PADMeta `json:"pads"`
}

// PADDownloadReq asks a PAD server/edge for a module by id.
type PADDownloadReq struct {
	PADID string `json:"pad_id"`
	URL   string `json:"url"`
}

// PADDownloadRep returns the packed mobile-code module.
type PADDownloadRep struct {
	PADID  string `json:"pad_id"`
	Module []byte `json:"module"`
}

// AppReq starts (or continues) the application session, carrying the
// negotiated protocol identifications so the server selects matching PADs.
type AppReq struct {
	AppID       string   `json:"app_id"`
	Resource    string   `json:"resource"`
	ProtocolIDs []string `json:"protocol_ids"`
	// HaveVersion tells the server which version of the resource the
	// client already holds (0 = none), enabling differential encoding.
	HaveVersion int `json:"have_version"`
}

// AppRep returns the adapted application content.
type AppRep struct {
	Resource string `json:"resource"`
	Version  int    `json:"version"`
	PADID    string `json:"pad_id"`
	Payload  []byte `json:"payload"`
}

// ErrorRep reports a failure to the peer.
type ErrorRep struct {
	Message string `json:"message"`
}

// AppMetaPush is the application server's topology push to the adaptation
// proxy ("The application server pushes new AppMeta to the negotiation
// manager when the protocol adaptation topology is first created or
// changed later").
type AppMetaPush struct {
	App core.AppMeta `json:"app"`
}

// AppMetaAck acknowledges a topology push.
type AppMetaAck struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}
