package conformance

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"time"

	"fractal/internal/inp"
)

// Stack is one deployment of the world's servers a trace can be replayed
// against: the real TCP stack or the in-memory netsim stack.
type Stack interface {
	Name() string
	Dial(t Target) (net.Conn, error)
}

// RecvObs is one observed reply frame (or the classified error that
// arrived in its place).
type RecvObs struct {
	Type    inp.MsgType
	Version uint8
	Seq     uint32
	Body    []byte
	Err     string
}

func (r RecvObs) String() string {
	if r.Err != "" {
		return "err:" + r.Err
	}
	return fmt.Sprintf("%v/v%d/seq%d(%dB)", r.Type, r.Version, r.Seq, len(r.Body))
}

// StepObs is what the driver observed for one step.
type StepObs struct {
	QueueErr bool
	SendErr  string
	Replies  []RecvObs
	TermErr  string
}

// Outcome is the full observation of one trace replay on one stack.
type Outcome struct {
	Stack        string
	Steps        []StepObs
	DriverBinary bool
	DrainErr     string
}

// Error classes: every transport error collapses to one of these so TCP
// (RST, EPIPE) and netsim (EOF, ErrClosedPipe) compare equal where the
// protocol outcome is the same.
const (
	errClosed  = "closed"
	errSeq     = "seq-mismatch"
	errTimeout = "timeout"
	errPeer    = "peer-error"
	errProto   = "proto-error"
	obsFrame   = "frame" // a frame arrived where an error was expected
	obsNone    = ""
)

func classify(err error) string {
	var pe *inp.PeerError
	switch {
	case err == nil:
		return obsNone
	case errors.Is(err, inp.ErrSeqMismatch):
		return errSeq
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed), errors.Is(err, io.ErrClosedPipe),
		errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.EPIPE):
		return errClosed
	case errors.Is(err, os.ErrDeadlineExceeded):
		return errTimeout
	case errors.As(err, &pe):
		return errPeer
	default:
		return errProto
	}
}

// driverTimeout bounds every driver I/O operation so a non-conforming
// server costs one timeout observation, never a hung suite; watchdogTime
// backstops even unbounded (SetTimeout(0)) trace segments.
const (
	driverTimeout = 5 * time.Second
	watchdogTime  = 15 * time.Second
)

// Run replays one trace against a stack and records everything a client
// can observe. The returned error means the harness itself failed (dial
// error, staging a frame the spec says must stage); protocol divergence
// never errors here — it shows up when the Outcome is compared.
func Run(stack Stack, tr Trace, ex *Expect) (*Outcome, error) {
	nc, err := stack.Dial(tr.Target)
	if err != nil {
		return nil, fmt.Errorf("dialing %v: %w", tr.Target, err)
	}
	defer closeQuick(nc)
	// Belt and suspenders against a hung conformance suite: the per-op
	// timeout below bounds each read, and the watchdog kills the conn if
	// a trace segment runs unbounded (OpSetTimeout(0)).
	watchdog := time.AfterFunc(watchdogTime, func() { nc.Close() })
	defer watchdog.Stop()

	rc := &rewriteConn{Conn: nc}
	c := inp.NewConn(rc)
	c.SetTimeout(driverTimeout)

	out := &Outcome{Stack: stack.Name()}
	var rawReplies [][]byte   // reconstructed reply frames, inbound-tamper pool
	var metaReplies []RecvObs // accepted replies, for stale-v2 candidate selection
	terminated := false

	for i, est := range ex.Steps {
		s := tr.Steps[i]
		so := StepObs{}
		switch s.Op {
		case OpSetTimeout:
			c.SetTimeout(time.Duration(s.Ms) * time.Millisecond)
			out.Steps = append(out.Steps, so)
			continue
		case OpQueueBad:
			// Channels defeat both codecs; staging must fail in place.
			so.QueueErr = c.Queue(inp.MsgCliMetaRep, make(chan int)) != nil
			out.Steps = append(out.Steps, so)
			continue
		}

		rc.muts = s.Muts
		if im, ok := hasInbound(s); ok {
			armInbound(rc, im, rawReplies, metaReplies)
		}
		for _, msg := range stepMessages(tr, s) {
			if qerr := c.Queue(msg.t, msg.body); qerr != nil {
				return nil, fmt.Errorf("staging %v: %w", msg.t, qerr)
			}
		}
		if ferr := c.Flush(); ferr != nil {
			so.SendErr = classify(ferr)
		}
		if est.CloseAfterWrite {
			rc.closeWrite()
		}

		readFailed := false
		for range est.Replies {
			h, raw, rerr := c.Recv()
			if rerr != nil {
				so.Replies = append(so.Replies, RecvObs{Err: classify(rerr)})
				readFailed = true
				break
			}
			obs := RecvObs{Type: h.Type, Version: h.Version, Seq: h.Seq, Body: append([]byte(nil), raw...)}
			so.Replies = append(so.Replies, obs)
			rawReplies = append(rawReplies, buildFrame(h, obs.Body))
			metaReplies = append(metaReplies, obs)
		}
		if !readFailed && est.Term != TermNone {
			_, _, terr := c.Recv()
			if terr == nil {
				so.TermErr = obsFrame
			} else {
				so.TermErr = classify(terr)
			}
			readFailed = true
		}
		out.Steps = append(out.Steps, so)
		if readFailed {
			terminated = true
			break
		}
	}

	if !terminated {
		// Clean end of trace: half-close and expect the server to close
		// in turn — EOF at a session boundary is a clean goodbye.
		rc.closeWrite()
		if _, _, derr := c.Recv(); derr == nil {
			out.DrainErr = obsFrame
		} else {
			out.DrainErr = classify(derr)
		}
	}
	out.DriverBinary = c.BinaryEnabled()
	return out, nil
}

// armInbound prepares the read-side tamper for a step, mirroring the
// model's eligibility rules exactly.
func armInbound(rc *rewriteConn, im Mutation, rawReplies [][]byte, metaReplies []RecvObs) {
	switch im.Kind {
	case MutInDupReply:
		if n := len(rawReplies); n > 0 {
			rc.inject = append(rc.inject, append([]byte(nil), rawReplies[n-1]...))
		}
	case MutInStaleV2:
		var cands [][]byte
		for i, r := range metaReplies {
			if r.Version == inp.Version && binaryCapable(r.Type) {
				cands = append(cands, rawReplies[i])
			}
		}
		if len(cands) > 0 {
			f := append([]byte(nil), cands[int(im.Sel)%len(cands)]...)
			f[offVersion] = 2
			rc.inject = append(rc.inject, f)
		}
	case MutInDelay:
		rc.delay = time.Duration(im.Ms) * time.Millisecond
	}
}

// buildFrame reconstructs the wire bytes of a received frame from its
// parsed header and body — the spec's independent statement of the header
// layout, used to forge tampered inbound frames.
func buildFrame(h inp.Header, body []byte) []byte {
	f := make([]byte, frameHeaderLen+len(body))
	copy(f, "INP1")
	f[offVersion] = h.Version
	f[offType] = byte(h.Type)
	binary.BigEndian.PutUint32(f[offSeq:], h.Seq)
	binary.BigEndian.PutUint32(f[offLen:], uint32(len(body)))
	copy(f[frameHeaderLen:], body)
	return f
}

// rewriteConn sits between the driver's inp.Conn and the real transport:
// outbound, it splits each flushed batch back into frames and applies the
// step's mutations through the same applyOutMuts the model uses; inbound,
// it can inject forged frames or delay delivery. Deadline methods promote
// from the embedded conn, so the driver's SetTimeout bounds the real
// stream underneath the rewriting.
type rewriteConn struct {
	net.Conn
	muts   []Mutation
	hist   [][]byte
	inject [][]byte
	delay  time.Duration
	inbuf  []byte
}

func (rc *rewriteConn) Write(p []byte) (int, error) {
	frames, err := splitFrames(p)
	if err != nil {
		return 0, err
	}
	out, _ := applyOutMuts(rc.muts, frames, rc.hist)
	rc.muts = nil
	rc.hist = append(rc.hist, out...)
	var buf []byte
	for _, f := range out {
		buf = append(buf, f...)
	}
	// The driver arms its own bound through the promoted deadline
	// methods before every flush; this inner write inherits it.
	//fractal:allow deadline — bounded by the deadline the driver conn armed on the embedded conn
	if _, err := rc.Conn.Write(buf); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (rc *rewriteConn) Read(p []byte) (int, error) {
	if rc.delay > 0 {
		d := rc.delay
		rc.delay = 0
		time.Sleep(d)
	}
	if len(rc.inbuf) == 0 && len(rc.inject) > 0 {
		rc.inbuf = rc.inject[0]
		rc.inject = rc.inject[1:]
	}
	if len(rc.inbuf) > 0 {
		n := copy(p, rc.inbuf)
		rc.inbuf = rc.inbuf[n:]
		return n, nil
	}
	//fractal:allow deadline — bounded by the deadline the driver conn armed on the embedded conn
	return rc.Conn.Read(p)
}

// closeWrite half-closes the underlying stream (FIN / shutdown(WR)):
// both *net.TCPConn and *netsim.Stream support it.
func (rc *rewriteConn) closeWrite() {
	if cw, ok := rc.Conn.(interface{ CloseWrite() error }); ok {
		_ = cw.CloseWrite()
	}
}

// closeQuick closes a driver conn without lingering: the suite opens tens
// of thousands of connections, and a TIME_WAIT per trace would exhaust
// the ephemeral port range. Both directions are already drained when this
// runs, so the RST a zero linger turns the close into is invisible to the
// protocol outcome.
func closeQuick(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = nc.Close()
}
