package conformance

import "math/rand"

// Gen deterministically derives traces from a seed: the same seed always
// yields the same suite, so a CI failure replays locally bit-for-bit.
type Gen struct {
	rng *rand.Rand
}

// NewGen returns a generator over its own seeded source.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// Valid emits a well-formed trace: one to three protocol units against a
// random target, every parameter drawn from the valid vocabulary, with an
// occasional failed staging attempt or timeout adjustment mixed in (both
// must be invisible on the wire).
func (g *Gen) Valid() Trace {
	tr := Trace{Target: Target(g.rng.Intn(3)), Binary: g.rng.Intn(2) == 0}
	units := 1 + g.rng.Intn(3)
	for u := 0; u < units; u++ {
		switch tr.Target {
		case TargetProxy:
			switch g.rng.Intn(4) {
			case 0, 1:
				tr.Steps = append(tr.Steps, Step{Op: OpInitBurst, Env: g.rng.Intn(2)})
			case 2:
				tr.Steps = append(tr.Steps, Step{Op: OpInit}, Step{Op: OpCliMeta, Env: g.rng.Intn(2)})
			default:
				tr.Steps = append(tr.Steps, Step{Op: OpMetaPush})
			}
		case TargetApp:
			tr.Steps = append(tr.Steps, Step{Op: OpAppReq})
		default:
			tr.Steps = append(tr.Steps, Step{Op: OpPADReq})
		}
	}
	if g.rng.Intn(4) == 0 {
		i := g.rng.Intn(len(tr.Steps) + 1)
		tr.Steps = append(tr.Steps[:i:i], append([]Step{{Op: OpQueueBad}}, tr.Steps[i:]...)...)
	}
	if g.rng.Intn(5) == 0 {
		tr.Steps = append([]Step{{Op: OpSetTimeout, Ms: 2000}}, tr.Steps...)
	}
	return tr
}

// Mutants derives up to n single-fault variants of a valid base trace:
// each carries exactly one semantic or wire-level fault, so a divergence
// pins a single cause.
func (g *Gen) Mutants(base Trace, n int) []Trace {
	out := make([]Trace, 0, n)
	for tries := 0; len(out) < n && tries < 50*n; tries++ {
		if m, ok := g.mutate(base); ok {
			out = append(out, m)
		}
	}
	return out
}

// mutate applies one fault to a clone of base. Faults that can race the
// transport are constrained to stay deterministic: a mutation that makes
// the server reply and then drop the connection is only planted where no
// unread client bytes remain (an unread byte at close turns a TCP FIN
// into an RST that can destroy the in-flight reply), which is why
// type/version rewrites land on the last frame of a step's batch and
// truncation ends the trace.
func (g *Gen) mutate(base Trace) (Trace, bool) {
	tr := base.clone()
	ws := wireSteps(tr)
	if len(ws) == 0 {
		return tr, false
	}
	i := ws[g.rng.Intn(len(ws))]
	s := &tr.Steps[i]
	last := frameCount(s.Op) - 1
	switch g.rng.Intn(10) {
	case 0: // invalid parameter: the semantic refusals
		return g.paramMutant(tr, i)
	case 1: // in-band client error frame at an arbitrary point
		j := g.rng.Intn(len(tr.Steps) + 1)
		tr.Steps = append(tr.Steps[:j:j], append([]Step{{Op: OpClientError}}, tr.Steps[j:]...)...)
	case 2:
		s.Muts = append(s.Muts, Mutation{Kind: MutDupFrame, Frame: g.rng.Intn(last + 1)})
	case 3:
		s.Muts = append(s.Muts, Mutation{Kind: MutReplay, Sel: uint32(g.rng.Intn(64))})
	case 4:
		deltas := []int32{-1, 1, 2, 7}
		s.Muts = append(s.Muts, Mutation{
			Kind: MutSeqDelta, Frame: g.rng.Intn(last + 1), Delta: deltas[g.rng.Intn(len(deltas))],
		})
	case 5:
		types := []uint8{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 200}
		s.Muts = append(s.Muts, Mutation{Kind: MutWrongType, Frame: last, Type: types[g.rng.Intn(len(types))]})
	case 6: // v2-before-advertise
		if tr.Binary {
			return tr, false
		}
		s.Muts = append(s.Muts, Mutation{Kind: MutVersion2, Frame: last})
	case 7:
		s.Muts = append(s.Muts, Mutation{Kind: MutTrailing, Frame: g.rng.Intn(last + 1), Sel: uint32(g.rng.Intn(256))})
	case 8: // truncation is terminal: cut the last frame and half-close
		tr.Steps = tr.Steps[:i+1]
		s.Muts = append(s.Muts, Mutation{Kind: MutTruncate, Sel: uint32(g.rng.Intn(4096))})
	case 9: // tampered inbound frame; needs reply history to clone from
		if i == 0 || ws[0] >= i {
			return tr, false
		}
		if g.rng.Intn(2) == 0 {
			s.Muts = append(s.Muts, Mutation{Kind: MutInDupReply})
		} else {
			if tr.Binary {
				return tr, false
			}
			s.Muts = append(s.Muts, Mutation{Kind: MutInStaleV2, Sel: uint32(g.rng.Intn(8))})
		}
	}
	return tr, true
}

// paramMutant flips one selector on step i to an invalid value.
func (g *Gen) paramMutant(tr Trace, i int) (Trace, bool) {
	s := &tr.Steps[i]
	switch s.Op {
	case OpInit, OpInitBurst:
		s.App = 1 + g.rng.Intn(2)
	case OpAppReq:
		switch g.rng.Intn(4) {
		case 0:
			s.App = 1 + g.rng.Intn(2)
		case 1:
			s.Resource = 1
		default:
			s.Proto = 1
		}
	case OpPADReq:
		s.PAD = 1
	case OpMetaPush:
		s.Bad = true
	default:
		return tr, false
	}
	return tr, true
}

// wireSteps returns the indexes of steps that put frames on the wire.
func wireSteps(tr Trace) []int {
	var ws []int
	for i, s := range tr.Steps {
		switch s.Op {
		case OpQueueBad, OpSetTimeout:
		default:
			ws = append(ws, i)
		}
	}
	return ws
}

// frameCount is how many frames a step's batch stages.
func frameCount(op TraceOp) int {
	if op == OpInitBurst {
		return 2
	}
	return 1
}
