package conformance

import "testing"

// FuzzTraceConformance drives the differential oracle from fuzzed seeds.
// The fuzzer explores generator space rather than raw bytes: every input
// maps to a well-typed trace (one of a base and its mutants), so all
// fuzzing effort lands on protocol behaviour instead of on the input
// parser, and a crash reproduces from a two-integer corpus entry.
func FuzzTraceConformance(f *testing.F) {
	f.Add(int64(1), uint32(0))
	f.Add(int64(0x46726163), uint32(3))
	f.Add(int64(-99), uint32(11))
	f.Fuzz(func(t *testing.T, seed int64, sel uint32) {
		ss := bothStacks(t)
		g := NewGen(seed)
		base := g.Valid()
		pool := append([]Trace{base}, g.Mutants(base, 8)...)
		checkOrShrink(t, ss, pool[int(sel)%len(pool)])
	})
}
