package conformance

import (
	"bytes"
	"fmt"
	"strings"

	"fractal/internal/core"
	"fractal/internal/inp"
)

// Term says how a step terminates the connection, if it does.
type Term int

const (
	// TermNone: the session continues into the next step.
	TermNone Term = iota
	// TermServerClosed: the server drops the connection after this step's
	// replies (possibly zero of them); the driver's next read must fail
	// with a closed-stream error.
	TermServerClosed
	// TermDriverReject: the driver itself refuses a tampered inbound
	// frame with ErrSeqMismatch and abandons the connection.
	TermDriverReject
)

func (t Term) String() string {
	switch t {
	case TermNone:
		return "none"
	case TermServerClosed:
		return "server-closed"
	case TermDriverReject:
		return "driver-reject"
	}
	return fmt.Sprintf("Term(%d)", int(t))
}

// FrameExpect is the spec's prediction for one reply frame: its type, its
// wire version (the v1/v2 lattice made observable), and its sequence
// number (the server must never skip or repeat one).
type FrameExpect struct {
	Type    inp.MsgType
	Version uint8
	Seq     uint32
}

func (f FrameExpect) String() string {
	return fmt.Sprintf("%v/v%d/seq%d", f.Type, f.Version, f.Seq)
}

// StepExpect is the spec's prediction for one step.
type StepExpect struct {
	// QueueErr: staging must fail locally (OpQueueBad) and consume
	// nothing — no wire bytes, no sequence number.
	QueueErr bool
	// Replies the driver must read, in order.
	Replies []FrameExpect
	// Term is how (whether) the connection ends at this step.
	Term Term
	// CloseAfterWrite: the driver half-closes after writing (truncation).
	CloseAfterWrite bool
}

// Expect is the spec's prediction for a whole trace. Steps is a prefix of
// the trace's steps: everything after a terminating step is pruned, since
// no conforming client keeps writing into a dead connection.
type Expect struct {
	Steps []StepExpect
	// DriverBinary is the client conn's final encoding state: true only
	// if an *accepted* reply carried Version2.
	DriverBinary bool
}

// stagedMsg is one message a step stages, before framing.
type stagedMsg struct {
	t    inp.MsgType
	body interface{}
}

// stepMessages maps a step to the messages a conforming client stages for
// it. The driver sends exactly these through the real inp.Conn and the
// model frames exactly these through the raw frame writer, so any
// disagreement between the two byte streams is a Conn framing bug.
func stepMessages(tr Trace, s Step) []stagedMsg {
	wv := 0
	if tr.Binary {
		wv = inp.Version2
	}
	climeta := func() stagedMsg {
		env := envFor(s.Env)
		return stagedMsg{inp.MsgCliMetaRep, inp.CliMetaRep{Dev: env.Dev, Ntwk: env.Ntwk, SessionRequests: 75}}
	}
	switch s.Op {
	case OpInit:
		return []stagedMsg{{inp.MsgInitReq, inp.InitReq{AppID: appIDFor(s.App), WireVersion: wv}}}
	case OpCliMeta:
		return []stagedMsg{climeta()}
	case OpInitBurst:
		return []stagedMsg{
			{inp.MsgInitReq, inp.InitReq{AppID: appIDFor(s.App), WireVersion: wv}},
			climeta(),
		}
	case OpMetaPush:
		return []stagedMsg{{inp.MsgAppMetaPush, inp.AppMetaPush{App: pushMetaFor(s.Bad)}}}
	case OpAppReq:
		return []stagedMsg{{inp.MsgAppReq, inp.AppReq{
			AppID:       appIDFor(s.App),
			Resource:    resourceFor(s.Resource),
			ProtocolIDs: []string{protoFor(s.Proto)},
			HaveVersion: 0,
			WireVersion: wv,
		}}}
	case OpPADReq:
		return []stagedMsg{{inp.MsgPADDownloadReq, inp.PADDownloadReq{PADID: padFor(s.PAD), WireVersion: wv}}}
	case OpClientError:
		return []stagedMsg{{inp.MsgError, inp.ErrorRep{Message: "client abort"}}}
	}
	return nil
}

// proxy session phases.
const (
	phaseOpen      = iota // awaiting a session opener (INIT_REQ or push)
	phaseAwaitMeta        // classic negotiation: awaiting CLI_META_REP
)

// model is the executable spec state while evaluating one trace: both
// endpoints' sequence counters and encoding state, the proxy's session
// phase, and the frame history the mutation kinds draw from.
type model struct {
	tr Trace

	dSeq, dPeer uint32 // driver conn: next send seq - 1, last accepted reply seq
	dBinary     bool
	sSeq, sPeer uint32 // server conn
	sBinary     bool

	phase      int    // proxy only
	pendingApp string // proxy: AppID of the negotiation awaiting CLI_META_REP

	hist    [][]byte      // post-mutation frames written, replay pool
	replies []FrameExpect // replies emitted so far, inbound-tamper pool
	closed  bool
}

// Eval runs the spec over a trace and returns the expected observable
// outcome. An error means the trace could not be evaluated (a harness
// bug), never a protocol outcome.
func Eval(tr Trace) (*Expect, error) {
	m := &model{tr: tr}
	ex := &Expect{}
	for _, s := range tr.Steps {
		if m.closed {
			break
		}
		st, err := m.step(s)
		if err != nil {
			return nil, err
		}
		ex.Steps = append(ex.Steps, *st)
	}
	ex.DriverBinary = m.dBinary
	return ex, nil
}

func (m *model) step(s Step) (*StepExpect, error) {
	st := &StepExpect{}
	switch s.Op {
	case OpSetTimeout:
		return st, nil
	case OpQueueBad:
		// Staging an unencodable body fails without consuming a sequence
		// number (bugfix #1): dSeq deliberately not incremented.
		st.QueueErr = true
		return st, nil
	}

	// Stage and frame the step's messages exactly as a conforming client
	// conn would.
	var frames [][]byte
	for _, msg := range stepMessages(m.tr, s) {
		h := inp.Header{Version: inp.Version, Type: msg.t, Seq: m.dSeq + 1}
		if m.dBinary && binaryCapable(msg.t) {
			h.Version = inp.Version2
		}
		f, err := renderFrame(h, msg.body)
		if err != nil {
			return nil, fmt.Errorf("rendering %v: %w", msg.t, err)
		}
		m.dSeq++
		frames = append(frames, f)
	}
	out, closeAfter := applyOutMuts(s.Muts, frames, m.hist)
	m.hist = append(m.hist, out...)
	st.CloseAfterWrite = closeAfter

	// An inbound tamper the driver detects ends the trace before any of
	// this step's real replies are read: the injected frame fails the
	// sequence gate and a conforming client abandons the stream without
	// mutating conn state (bugfix #2 keeps dBinary false here).
	if im, ok := hasInbound(s); ok && m.inboundEligible(im) {
		st.Term = TermDriverReject
		m.closed = true
		return st, nil
	}

	// Feed the mutated byte stream to the spec server.
	var stream []byte
	for _, f := range out {
		stream = append(stream, f...)
	}
	rd := bytes.NewReader(stream)
	for rd.Len() > 0 {
		h, raw, err := inp.ReadMessage(rd)
		if err != nil {
			// Malformed or incomplete frame: parse failures and EOF
			// mid-header/mid-body all close the connection without a
			// reply.
			m.serverClose(st)
			break
		}
		if h.Seq != m.sPeer+1 {
			m.serverClose(st)
			break
		}
		m.sPeer = h.Seq
		if h.Version >= inp.Version2 {
			m.sBinary = true
		}
		if !m.dispatch(st, h, raw, rd) {
			break
		}
	}
	if closeAfter && st.Term == TermNone {
		// The driver half-closed after a truncated write; the leftover
		// partial frame above must already have closed the server. A
		// fully consumed stream here would mean the truncation vanished.
		return nil, fmt.Errorf("truncated step consumed cleanly")
	}
	return st, nil
}

// inboundEligible mirrors the driver's injection precondition: tampering
// needs reply history, and a stale-v2 injection needs a v1 reply of a
// binary-capable type to re-stamp.
func (m *model) inboundEligible(im Mutation) bool {
	switch im.Kind {
	case MutInDupReply:
		return len(m.replies) > 0
	case MutInStaleV2:
		for _, r := range m.replies {
			if r.Version == inp.Version && binaryCapable(r.Type) {
				return true
			}
		}
	}
	return false
}

// dispatch runs one accepted frame through the target's session state
// machine, mirroring the real servers' serve loops decision for
// decision. It returns false when the connection closes.
func (m *model) dispatch(st *StepExpect, h inp.Header, raw []byte, rd *bytes.Reader) bool {
	switch m.tr.Target {
	case TargetProxy:
		return m.dispatchProxy(st, h, raw, rd)
	case TargetApp:
		return m.dispatchApp(st, h, raw)
	default:
		return m.dispatchPAD(st, h, raw)
	}
}

func (m *model) dispatchProxy(st *StepExpect, h inp.Header, raw []byte, rd *bytes.Reader) bool {
	if m.phase == phaseAwaitMeta {
		// negotiate is blocked in RecvInto(CLI_META_REP): an error frame,
		// a wrong type, or an undecodable body aborts the exchange with
		// no reply.
		if h.Type == inp.MsgError || h.Type != inp.MsgCliMetaRep {
			return m.serverClose(st)
		}
		var meta inp.CliMetaRep
		if inp.DecodeRaw(h, raw, &meta) != nil {
			return m.serverClose(st)
		}
		m.phase = phaseOpen
		return m.finishNegotiate(st, false)
	}
	switch h.Type {
	case inp.MsgAppMetaPush:
		// Topology pushes are always v1 JSON.
		var push inp.AppMetaPush
		if inp.DecodeBody(raw, &push) != nil {
			return m.serverClose(st)
		}
		m.reply(st, inp.MsgAppMetaAck)
		if _, err := core.BuildPAT(push.App); err != nil {
			// Rejected topology: Ack{OK:false}, then the conn drops.
			return m.serverClose(st)
		}
		return true
	case inp.MsgInitReq:
		var req inp.InitReq
		if inp.DecodeRaw(h, raw, &req) != nil {
			return m.serverClose(st)
		}
		if req.WireVersion >= inp.Version2 {
			m.sBinary = true
		}
		// The serving fast path triggers on pipelined input: the client
		// flushed CLI_META_REP behind INIT_REQ, and the server drains it
		// before any refusal or reply.
		fast := rd.Len() > 0
		if fast {
			h2, raw2, err := inp.ReadMessage(rd)
			if err != nil {
				return m.serverClose(st)
			}
			if h2.Seq != m.sPeer+1 {
				return m.serverClose(st)
			}
			m.sPeer = h2.Seq
			if h2.Version >= inp.Version2 {
				m.sBinary = true
			}
			if h2.Type == inp.MsgError || h2.Type != inp.MsgCliMetaRep {
				return m.serverClose(st)
			}
			var meta inp.CliMetaRep
			if inp.DecodeRaw(h2, raw2, &meta) != nil {
				return m.serverClose(st)
			}
		}
		if req.AppID == "" {
			m.reply(st, inp.MsgError)
			return m.serverClose(st)
		}
		m.pendingApp = req.AppID
		if !fast {
			m.reply(st, inp.MsgInitRep)
			m.reply(st, inp.MsgCliMetaReq)
			m.phase = phaseAwaitMeta
			return true
		}
		return m.finishNegotiate(st, true)
	default:
		// Anything else cannot open a session: in-band error, then drop.
		m.reply(st, inp.MsgError)
		return m.serverClose(st)
	}
}

// finishNegotiate emits the negotiation answer. On the fast path the
// queued INIT_REP and CLI_META_REQ ride in the same flush — ahead of the
// error frame if the negotiation fails, keeping the stream sequential.
func (m *model) finishNegotiate(st *StepExpect, fast bool) bool {
	if fast {
		m.reply(st, inp.MsgInitRep)
		m.reply(st, inp.MsgCliMetaReq)
	}
	if m.pendingApp == validApp {
		m.reply(st, inp.MsgPADMetaRep)
		return true
	}
	m.reply(st, inp.MsgError)
	return m.serverClose(st)
}

func (m *model) dispatchApp(st *StepExpect, h inp.Header, raw []byte) bool {
	if h.Type == inp.MsgError || h.Type != inp.MsgAppReq {
		return m.serverClose(st)
	}
	var req inp.AppReq
	if inp.DecodeRaw(h, raw, &req) != nil {
		return m.serverClose(st)
	}
	if req.WireVersion >= inp.Version2 {
		m.sBinary = true
	}
	// Application-level refusals are in-band: the session survives them.
	if req.AppID != validApp {
		m.reply(st, inp.MsgError)
		return true
	}
	if !encodeOK(req) {
		m.reply(st, inp.MsgError)
		return true
	}
	m.reply(st, inp.MsgAppRep)
	return true
}

func (m *model) dispatchPAD(st *StepExpect, h inp.Header, raw []byte) bool {
	if h.Type == inp.MsgError || h.Type != inp.MsgPADDownloadReq {
		return m.serverClose(st)
	}
	var req inp.PADDownloadReq
	if inp.DecodeRaw(h, raw, &req) != nil {
		return m.serverClose(st)
	}
	if req.WireVersion >= inp.Version2 {
		m.sBinary = true
	}
	path := req.URL
	if path == "" {
		path = "/pads/" + req.PADID
	}
	if !padPathOK(path) {
		m.reply(st, inp.MsgError)
		return true
	}
	m.reply(st, inp.MsgPADDownloadRep)
	return true
}

// reply records one server frame: v2 only for binary-capable types once
// the server side upgraded, sequence numbers dense. An accepted v2 reply
// upgrades the driver conn (the observable half of the lattice).
func (m *model) reply(st *StepExpect, t inp.MsgType) {
	v := uint8(inp.Version)
	if m.sBinary && binaryCapable(t) {
		v = inp.Version2
	}
	m.sSeq++
	fe := FrameExpect{Type: t, Version: v, Seq: m.sSeq}
	st.Replies = append(st.Replies, fe)
	m.replies = append(m.replies, fe)
	m.dPeer = fe.Seq
	if v >= inp.Version2 {
		m.dBinary = true
	}
}

func (m *model) serverClose(st *StepExpect) bool {
	st.Term = TermServerClosed
	m.closed = true
	return false
}

// deployedPADs is the spec's statement of what the world serves: the
// three builtin modules, deployed by the app server and published to the
// origin. NewWorld.check pins this list against the real fixtures.
var deployedPADs = map[string]bool{
	"pad-direct": true,
	"pad-gzip":   true,
	"pad-bitmap": true,
}

// encodeOK mirrors appserver.Server.Encode's refusal conditions for the
// worlds this spec builds: the PAD path must name a deployed module, the
// resource must exist, and the claimed version must not exceed the two
// installed corpus versions.
func encodeOK(req inp.AppReq) bool {
	found := false
	for _, id := range req.ProtocolIDs {
		mid := id
		if i := strings.IndexByte(id, '@'); i >= 0 {
			mid = id[:i]
		}
		if deployedPADs[mid] {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	if !resourceValid(req.Resource) {
		return false
	}
	return req.HaveVersion >= 0 && req.HaveVersion <= 2
}

func resourceValid(r string) bool {
	for i := 0; i < worldPages; i++ {
		if r == fmt.Sprintf("page-%03d", i) {
			return true
		}
	}
	return false
}

// padPathOK mirrors the origin's published object set.
func padPathOK(path string) bool {
	const prefix = "/pads/"
	return strings.HasPrefix(path, prefix) && deployedPADs[strings.TrimPrefix(path, prefix)]
}
