package conformance

// Shrink greedily minimizes a failing trace to a counterexample a human
// can read: drop whole steps, then drop individual mutations, then clear
// the binary advertisement, keeping each simplification that still fails.
// budget bounds candidate evaluations — each one replays the candidate on
// every stack — so shrinking a pathological failure stays cheap.
func Shrink(tr Trace, failing func(Trace) bool, budget int) Trace {
	cur := tr.clone()
	for improved := true; improved && budget > 0; {
		improved = false
		for i := 0; i < len(cur.Steps) && budget > 0; i++ {
			cand := cur.clone()
			cand.Steps = append(cand.Steps[:i], cand.Steps[i+1:]...)
			budget--
			if failing(cand) {
				cur = cand
				improved = true
				i--
			}
		}
		for i := 0; i < len(cur.Steps) && budget > 0; i++ {
			for j := 0; j < len(cur.Steps[i].Muts) && budget > 0; j++ {
				cand := cur.clone()
				cand.Steps[i].Muts = append(cand.Steps[i].Muts[:j], cand.Steps[i].Muts[j+1:]...)
				budget--
				if failing(cand) {
					cur = cand
					improved = true
					j--
				}
			}
		}
		if cur.Binary && budget > 0 {
			cand := cur.clone()
			cand.Binary = false
			budget--
			if failing(cand) {
				cur = cand
				improved = true
			}
		}
	}
	return cur
}
