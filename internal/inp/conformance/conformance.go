// Package conformance is an executable state-machine specification of the
// INP protocol and a differential trace-testing harness around it.
//
// The spec (model.go) describes what a conforming INP server observable
// from the client side must do: the Figure 4 negotiation exchange
// (INIT_REQ -> INIT_REP + CLI_META_REQ -> CLI_META_REP -> PAD_META_REP,
// including the pipelined-burst variant answered in one vectored write),
// the PAD fetch and app session request/reply loops, re-negotiation on a
// persistent connection, in-band error frames, and the wire-version
// lattice: first contact is always v1 JSON, a client advertises Version2
// in its request body, hot replies upgrade to v2 binary once the peer has
// proven support, and an accepted v2 frame upgrades the receiving side —
// but a *rejected* frame never mutates connection state, and a conn never
// downgrades.
//
// A seeded generator (gen.go) emits valid traces plus systematic
// single-fault mutants: duplicated and replayed frames, stale/skipped
// sequence numbers, wrong message types, trailing bytes inside a body,
// truncated frames, v2-before-advertise version patches, error-frame
// interleavings, and tampered inbound replies. The differential driver
// (driver.go) replays each trace against the real TCP stack and the
// in-memory netsim stack and the checker (check.go) asserts three ways:
// each stack matches the model's expected frame-by-frame outcome, the two
// stacks match each other byte-for-byte, and — for valid traces — the
// JSON and binary encodings decode to equivalent bodies. Failing traces
// are shrunk (shrink.go) to a minimal counterexample.
package conformance

import (
	"fmt"
	"strings"
)

// Target selects which INP server a trace talks to.
type Target int

const (
	// TargetProxy is the adaptation proxy front end (negotiation,
	// re-negotiation, AppMeta push).
	TargetProxy Target = iota
	// TargetApp is the application server (APP_REQ/APP_REP sessions).
	TargetApp
	// TargetPAD is the CDN PAD server (PAD_DOWNLOAD_REQ/REP).
	TargetPAD
)

func (t Target) String() string {
	switch t {
	case TargetProxy:
		return "proxy"
	case TargetApp:
		return "app"
	case TargetPAD:
		return "pad"
	}
	return fmt.Sprintf("Target(%d)", int(t))
}

// TraceOp is one client-side action in a trace.
type TraceOp int

const (
	// OpInit sends INIT_REQ alone (the classic exchange; the following
	// step should be OpCliMeta).
	OpInit TraceOp = iota
	// OpCliMeta sends CLI_META_REP, answering the server's CLI_META_REQ.
	OpCliMeta
	// OpInitBurst pipelines INIT_REQ and CLI_META_REP in one flush (the
	// serving fast path: the whole negotiation is answered in one write).
	OpInitBurst
	// OpMetaPush sends APP_META_PUSH (an application-server topology
	// push; valid on the proxy only).
	OpMetaPush
	// OpAppReq sends APP_REQ (application server).
	OpAppReq
	// OpPADReq sends PAD_DOWNLOAD_REQ (PAD server).
	OpPADReq
	// OpClientError sends an in-band MsgError from the client.
	OpClientError
	// OpQueueBad stages a body that cannot be encoded. Nothing may reach
	// the wire and — the regression pinned by bugfix #1 — no sequence
	// number may be consumed.
	OpQueueBad
	// OpSetTimeout calls SetTimeout(Ms) on the driver conn; Ms == 0
	// disables the bound (and, per bugfix #3, clears any armed deadline).
	OpSetTimeout
)

func (o TraceOp) String() string {
	switch o {
	case OpInit:
		return "init"
	case OpCliMeta:
		return "climeta"
	case OpInitBurst:
		return "burst"
	case OpMetaPush:
		return "push"
	case OpAppReq:
		return "appreq"
	case OpPADReq:
		return "padreq"
	case OpClientError:
		return "clierr"
	case OpQueueBad:
		return "queuebad"
	case OpSetTimeout:
		return "settimeout"
	}
	return fmt.Sprintf("TraceOp(%d)", int(o))
}

// MutKind is a systematic trace mutation. Outbound kinds rewrite the
// byte stream the client writes; inbound kinds tamper with the reply
// stream the client reads.
type MutKind int

const (
	// MutNone is the zero mutation (ignored).
	MutNone MutKind = iota
	// MutDupFrame duplicates frame Frame of the step's batch in place.
	MutDupFrame
	// MutReplay appends a clone of an earlier frame (selected by Sel from
	// everything sent so far) after the step's batch.
	MutReplay
	// MutSeqDelta adds Delta to the sequence number of frame Frame.
	MutSeqDelta
	// MutWrongType overwrites the type byte of frame Frame with Type.
	MutWrongType
	// MutVersion2 stamps Version2 on frame Frame before the client ever
	// advertised it (v2-before-advertise).
	MutVersion2
	// MutTrailing appends 1+Sel%16 junk bytes inside the body of frame
	// Frame (the length field is bumped to cover them).
	MutTrailing
	// MutTruncate cuts 1..len-1 bytes (by Sel) off the end of the step's
	// last frame and half-closes the connection after the write, so the
	// server sees EOF mid-header or mid-body.
	MutTruncate
	// MutInDupReply injects a duplicate of the last accepted reply in
	// front of the step's real replies.
	MutInDupReply
	// MutInStaleV2 injects a clone of an earlier v1 reply (selected by
	// Sel among binary-capable types) re-stamped as Version2. The frame
	// fails the sequence gate; a conforming client must reject it
	// *without* upgrading to binary (bugfix #2).
	MutInStaleV2
	// MutInDelay delays delivery of the step's replies by Ms
	// milliseconds (exposes stale absolute deadlines; bugfix #3).
	MutInDelay
)

func (k MutKind) String() string {
	switch k {
	case MutNone:
		return "none"
	case MutDupFrame:
		return "dup"
	case MutReplay:
		return "replay"
	case MutSeqDelta:
		return "seqdelta"
	case MutWrongType:
		return "wrongtype"
	case MutVersion2:
		return "v2early"
	case MutTrailing:
		return "trailing"
	case MutTruncate:
		return "truncate"
	case MutInDupReply:
		return "in-dup"
	case MutInStaleV2:
		return "in-stalev2"
	case MutInDelay:
		return "in-delay"
	}
	return fmt.Sprintf("MutKind(%d)", int(k))
}

// Mutation is one applied fault. Frame indexes into the step's staged
// frames; Sel, Delta, Type, and Ms parameterize the kinds above.
type Mutation struct {
	Kind  MutKind
	Frame int
	Sel   uint32
	Delta int32
	Type  uint8
	Ms    int
}

func (m Mutation) String() string {
	return fmt.Sprintf("%v{f=%d sel=%d d=%d t=%d ms=%d}", m.Kind, m.Frame, m.Sel, m.Delta, m.Type, m.Ms)
}

// Step is one client action plus its parameters. The integer selectors
// index small fixed vocabularies (see world.go): index 0 is always the
// valid choice, higher indexes are invalid or hostile variants.
type Step struct {
	Op TraceOp
	// App selects the application id: 0 = the installed app, 1 = an
	// unknown app, 2 = empty (protocol violation).
	App int
	// Env selects the client environment: 0 = desktop/LAN, 1 = PDA/BT.
	Env int
	// Resource selects the requested resource: 0 = valid, 1 = missing.
	Resource int
	// Proto selects the negotiated PAD path: 0 = deployed, 1 = bogus.
	Proto int
	// PAD selects the PAD to download: 0 = published, 1 = missing.
	PAD int
	// Bad marks an OpMetaPush carrying an invalid topology.
	Bad bool
	// Ms is the OpSetTimeout argument in milliseconds.
	Ms int
	// Muts are the mutations applied to this step.
	Muts []Mutation
}

func (s Step) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v", s.Op)
	if s.App != 0 {
		fmt.Fprintf(&b, " app=%d", s.App)
	}
	if s.Env != 0 {
		fmt.Fprintf(&b, " env=%d", s.Env)
	}
	if s.Resource != 0 {
		fmt.Fprintf(&b, " res=%d", s.Resource)
	}
	if s.Proto != 0 {
		fmt.Fprintf(&b, " proto=%d", s.Proto)
	}
	if s.PAD != 0 {
		fmt.Fprintf(&b, " pad=%d", s.PAD)
	}
	if s.Bad {
		b.WriteString(" bad")
	}
	if s.Op == OpSetTimeout {
		fmt.Fprintf(&b, " ms=%d", s.Ms)
	}
	for _, m := range s.Muts {
		fmt.Fprintf(&b, " !%v", m)
	}
	return b.String()
}

// Trace is one complete client session against a target: the steps a
// client performs on a single persistent connection, plus whether it
// advertises Version2 in its requests.
type Trace struct {
	Target Target
	Binary bool
	Steps  []Step
}

func (t Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace target=%v binary=%v\n", t.Target, t.Binary)
	for i, s := range t.Steps {
		fmt.Fprintf(&b, "  %2d: %v\n", i, s)
	}
	return b.String()
}

// clone returns a deep copy (shrinking mutates candidates freely).
func (t Trace) clone() Trace {
	out := t
	out.Steps = make([]Step, len(t.Steps))
	for i, s := range t.Steps {
		out.Steps[i] = s
		if s.Muts != nil {
			out.Steps[i].Muts = append([]Mutation(nil), s.Muts...)
		}
	}
	return out
}
