//go:build !race

package conformance

// raceEnabled gates suite sizing: the race detector multiplies the cost
// of every trace replay, so the fixed-seed suite runs a sample instead
// of the full CI-smoke budget.
const raceEnabled = false
