package conformance

import (
	"net"
	"sync"
	"testing"

	"fractal/internal/faultnet"
)

// The world and both stacks are built once and shared by every test in
// the package: server state is append-only (topology pushes re-register
// the same metadata), and sharing one world guarantees both stacks serve
// byte-identical PAD modules despite the nondeterministic signing key.
var (
	setupOnce sync.Once
	setupErr  error
	theWorld  *World
	tcpStack  *TCPStack
	pipeStack *PipeStack
)

func bothStacks(t testing.TB) []Stack {
	t.Helper()
	setupOnce.Do(func() {
		if theWorld, setupErr = NewWorld(); setupErr != nil {
			return
		}
		if tcpStack, setupErr = NewTCPStack(theWorld); setupErr != nil {
			return
		}
		pipeStack = NewPipeStack(theWorld)
	})
	if setupErr != nil {
		t.Fatalf("building conformance world: %v", setupErr)
	}
	return []Stack{tcpStack, pipeStack}
}

// checkOrShrink fails with a shrunk counterexample on divergence.
func checkOrShrink(t *testing.T, ss []Stack, tr Trace) {
	t.Helper()
	err := CheckTrace(ss, tr)
	if err == nil {
		return
	}
	min := Shrink(tr, func(c Trace) bool { return CheckTrace(ss, c) != nil }, 200)
	minErr := CheckTrace(ss, min)
	t.Fatalf("conformance divergence: %v\n\nshrunk counterexample (%v):\n%v", err, minErr, min)
}

// suiteBases sizes the fixed-seed suite. The CI-smoke budget checks at
// least 10k traces; short and race runs keep a representative sample.
func suiteBases() int {
	if testing.Short() || raceEnabled {
		return 60
	}
	return 1250
}

// TestConformanceFixedSeed is the differential suite: seeded valid
// traces, seven single-fault mutants each, every trace replayed on the
// TCP stack and the netsim stack against the executable spec, plus a
// JSON/binary encoding-equivalence pass per base trace.
func TestConformanceFixedSeed(t *testing.T) {
	ss := bothStacks(t)
	g := NewGen(0x46726163)
	checked := 0
	for b, bases := 0, suiteBases(); b < bases; b++ {
		base := g.Valid()
		for _, tr := range append([]Trace{base}, g.Mutants(base, 7)...) {
			checkOrShrink(t, ss, tr)
			checked++
		}
		if err := CheckEncodings(pipeStack, base); err != nil {
			t.Fatalf("encoding equivalence broken on base %d:\n%v%v", b, base, err)
		}
	}
	if !testing.Short() && !raceEnabled && checked < 10000 {
		t.Fatalf("CI smoke checked %d traces, want >= 10000", checked)
	}
}

// faultedStack composes the conformance driver with the faultnet
// injector: every dialed conn carries the same scripted fault with the
// same seed, so both stacks take byte-identical damage.
type faultedStack struct {
	inner Stack
	fault faultnet.Fault
	seed  int64
}

func (f faultedStack) Name() string { return f.inner.Name() }

func (f faultedStack) Dial(tgt Target) (net.Conn, error) {
	nc, err := f.inner.Dial(tgt)
	if err != nil {
		return nil, err
	}
	return faultedConn{Conn: faultnet.WrapConn(nc, f.fault, f.seed), raw: nc}, nil
}

// faultedConn forwards the half-close the driver uses to say goodbye;
// the fault layer does not model shutdown(WR).
type faultedConn struct {
	*faultnet.Conn
	raw net.Conn
}

func (f faultedConn) CloseWrite() error {
	if cw, ok := f.raw.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}

// TestConformanceFaultComposition replays valid traces with deterministic
// transport damage injected under the driver. The damaged runs cannot be
// compared to the spec (the spec describes an undamaged transport), but
// the two stacks must still observe identical outcomes: fault handling
// may not depend on which transport the bytes crossed. The corrupt
// offsets deliberately avoid frame length fields — corrupting a length
// makes the reader wait for bytes that never come, which is a timeout on
// both stacks but a slow one.
func TestConformanceFaultComposition(t *testing.T) {
	ss := bothStacks(t)
	faults := []faultnet.Fault{
		{Kind: faultnet.Corrupt, After: 4},            // first reply's version byte
		{Kind: faultnet.Corrupt, After: 17, Count: 2}, // inside the first reply body
		{Kind: faultnet.Truncate, After: 20},          // EOF mid-reply
		{Kind: faultnet.Reset, After: 60},             // reset mid-session
	}
	g := NewGen(0x70616473)
	n := 12
	if testing.Short() || raceEnabled {
		n = 4
	}
	for i := 0; i < n; i++ {
		base := g.Valid()
		ex, err := Eval(base)
		if err != nil {
			t.Fatalf("spec eval:\n%v%v", base, err)
		}
		for _, fault := range faults {
			outs := make([]*Outcome, len(ss))
			for j, s := range ss {
				out, rerr := Run(faultedStack{inner: s, fault: fault, seed: 7}, base, ex)
				if rerr != nil {
					t.Fatalf("fault %v/%d on %s: %v\n%v", fault.Kind, fault.After, s.Name(), rerr, base)
				}
				outs[j] = out
			}
			if err := compareOutcomes(outs[0], outs[1]); err != nil {
				t.Fatalf("stacks disagree under identical %v/%d damage: %v\n%v",
					fault.Kind, fault.After, err, base)
			}
		}
	}
}
